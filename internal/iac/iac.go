// Package iac implements Digibox's Infrastructure-as-Code support
// (§3.4, §4): a committed testbed setup is rendered as a declarative
// multi-document YAML configuration that uniquely reproduces it — the
// kind references (pointing at versioned definitions in the scene
// repository, the analogue of container-image references) plus the
// full model documents with their attachments. Another Digibox parses
// the config, pulls the kinds, and recreates the mocks and scenes.
package iac

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/yamlite"
)

// Setup is a parsed testbed configuration.
type Setup struct {
	// Name identifies the setup in the scene repository.
	Name string
	// Kinds maps each referenced type to the repository version the
	// setup was built against ("Lamp" -> "v2").
	Kinds map[string]string
	// Models are the full model documents (meta.attach carries the
	// hierarchy).
	Models []model.Doc
	// Chaos is the optional scene-scoped fault plan (header "chaos"
	// section). Vet rule V013 checks its targets against the setup.
	Chaos *chaos.Plan
	// Swarm is the optional scale-out declaration (header "swarm"
	// section). Vet rule V015 checks it against the setup's device
	// fleet size.
	Swarm *SwarmConfig
	// Ctl is the optional control-plane declaration (header "ctl"
	// section): where the deployed daemon's /ctl API — and with it the
	// dashboard — should listen. Vet rule V017 checks the address
	// against ports the scene's own devices claim.
	Ctl *CtlConfig
	// Profile is the optional device-population traffic profile
	// (header "profile" section) the setup's swarm runs drive. Vet
	// rule V018 checks it for unsatisfiable cadence/burst/mix clauses
	// and population kinds with no kind reference.
	Profile *profile.Profile
}

// CtlConfig is the header "ctl" section.
type CtlConfig struct {
	// Listen is the host:port the control API binds.
	Listen string
}

// SwarmConfig is the header "swarm" section: how the setup's message
// plane should be provisioned when it is deployed at scale.
type SwarmConfig struct {
	// Shards is the broker shard count the setup deploys with.
	Shards int
}

// Marshal renders the setup. The first document is the header; every
// following document is one model.
func Marshal(s *Setup) ([]byte, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("iac: setup name required")
	}
	if err := Validate(s); err != nil {
		return nil, err
	}
	kinds := map[string]any{}
	for k, v := range s.Kinds {
		kinds[k] = v
	}
	header := map[string]any{
		"setup":   s.Name,
		"digibox": "v1",
		"kinds":   kinds,
	}
	if s.Chaos != nil {
		header["chaos"] = s.Chaos.Value()
	}
	if s.Swarm != nil {
		header["swarm"] = map[string]any{"shards": int64(s.Swarm.Shards)}
	}
	if s.Ctl != nil {
		header["ctl"] = map[string]any{"listen": s.Ctl.Listen}
	}
	if s.Profile != nil {
		header["profile"] = s.Profile.Value()
	}
	docs := []any{header}
	for _, m := range s.Models {
		docs = append(docs, map[string]any(m.DeepCopy()))
	}
	return yamlite.EncodeAll(docs)
}

// Unmarshal parses a setup configuration and validates its internal
// consistency.
func Unmarshal(data []byte) (*Setup, error) {
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if err := Validate(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Parse decodes a setup configuration without validating it. Analysis
// tools (internal/vet) use it to report rich diagnostics on setups
// Validate would reject at the first problem.
func Parse(data []byte) (*Setup, error) {
	docs, err := yamlite.DecodeAll(data)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("iac: empty setup config")
	}
	header, ok := docs[0].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("iac: first document must be the setup header")
	}
	name, _ := header["setup"].(string)
	if name == "" {
		return nil, fmt.Errorf("iac: header missing setup name")
	}
	s := &Setup{Name: name, Kinds: map[string]string{}}
	if kinds, ok := header["kinds"].(map[string]any); ok {
		for k, v := range kinds {
			ver, _ := v.(string)
			if ver == "" {
				return nil, fmt.Errorf("iac: kind %q has no version", k)
			}
			s.Kinds[k] = ver
		}
	}
	if raw, ok := header["chaos"]; ok {
		plan, err := chaos.PlanFromValue(raw)
		if err != nil {
			return nil, fmt.Errorf("iac: chaos section: %w", err)
		}
		s.Chaos = plan
	}
	if raw, ok := header["swarm"]; ok {
		m, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("iac: swarm section must be a mapping")
		}
		cfg := &SwarmConfig{}
		switch v := m["shards"].(type) {
		case int64:
			cfg.Shards = int(v)
		case int:
			cfg.Shards = v
		case float64:
			cfg.Shards = int(v)
		default:
			return nil, fmt.Errorf("iac: swarm section needs a numeric shards count")
		}
		s.Swarm = cfg
	}
	if raw, ok := header["ctl"]; ok {
		m, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("iac: ctl section must be a mapping")
		}
		listen, _ := m["listen"].(string)
		s.Ctl = &CtlConfig{Listen: listen}
	}
	if raw, ok := header["profile"]; ok {
		p, err := profile.FromValue(raw)
		if err != nil {
			return nil, fmt.Errorf("iac: profile section: %w", err)
		}
		s.Profile = p
	}
	for i, d := range docs[1:] {
		m, ok := d.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("iac: document %d is not a model", i+1)
		}
		s.Models = append(s.Models, model.Doc(m))
	}
	return s, nil
}

// Validate checks internal consistency: valid metas, unique names,
// attach references resolving to models in the setup, kind references
// present for every used type, and an acyclic attach hierarchy.
func Validate(s *Setup) error {
	names := map[string]model.Doc{}
	for _, m := range s.Models {
		meta, err := m.Meta()
		if err != nil {
			return fmt.Errorf("iac: %w", err)
		}
		if _, dup := names[meta.Name]; dup {
			return fmt.Errorf("iac: duplicate model name %q", meta.Name)
		}
		names[meta.Name] = m
		if s.Kinds != nil {
			if _, ok := s.Kinds[meta.Type]; !ok {
				return fmt.Errorf("iac: model %q uses type %q with no kind reference", meta.Name, meta.Type)
			}
		}
	}
	for _, m := range s.Models {
		for _, child := range m.Attach() {
			if _, ok := names[child]; !ok {
				return fmt.Errorf("iac: %q attaches unknown model %q", m.Name(), child)
			}
		}
	}
	if s.Chaos != nil {
		if err := s.Chaos.Validate(); err != nil {
			return fmt.Errorf("iac: %w", err)
		}
	}
	if s.Swarm != nil && s.Swarm.Shards < 1 {
		return fmt.Errorf("iac: swarm.shards must be at least 1, got %d", s.Swarm.Shards)
	}
	if s.Ctl != nil && s.Ctl.Listen == "" {
		return fmt.Errorf("iac: ctl section needs a listen address")
	}
	if s.Profile != nil {
		if err := s.Profile.Validate(); err != nil {
			return fmt.Errorf("iac: %w", err)
		}
	}
	return checkAcyclic(names)
}

func checkAcyclic(names map[string]model.Doc) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("iac: attach cycle through %q", n)
		case black:
			return nil
		}
		color[n] = gray
		for _, child := range names[n].Attach() {
			if err := visit(child); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// Roots returns the models not attached to any other model (the tops
// of the hierarchy), sorted by name.
func Roots(s *Setup) []string {
	attached := map[string]bool{}
	for _, m := range s.Models {
		for _, c := range m.Attach() {
			attached[c] = true
		}
	}
	var out []string
	for _, m := range s.Models {
		if !attached[m.Name()] {
			out = append(out, m.Name())
		}
	}
	sort.Strings(out)
	return out
}

// CreationOrder returns model names children-first (leaves before the
// scenes that attach them), so a recreating testbed can start each
// digi after everything it coordinates exists.
func CreationOrder(s *Setup) []string {
	names := map[string]model.Doc{}
	for _, m := range s.Models {
		names[m.Name()] = m
	}
	var out []string
	done := map[string]bool{}
	var visit func(string)
	visit = func(n string) {
		if done[n] {
			return
		}
		done[n] = true
		children := names[n].Attach()
		sorted := append([]string(nil), children...)
		sort.Strings(sorted)
		for _, c := range sorted {
			if _, ok := names[c]; ok {
				visit(c)
			}
		}
		out = append(out, n)
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		visit(n)
	}
	return out
}
