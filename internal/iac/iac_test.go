package iac

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/profile"
)

func mkModel(typ, name string, attach ...string) model.Doc {
	d := model.Doc{}
	d.SetMeta(model.Meta{Type: typ, Version: "v1", Name: name, Managed: true, Attach: attach})
	return d
}

func smartBuildingSetup() *Setup {
	return &Setup{
		Name: "smartbuilding",
		Kinds: map[string]string{
			"Occupancy": "v1",
			"Lamp":      "v1",
			"Room":      "v2",
			"Building":  "v3",
		},
		Models: []model.Doc{
			mkModel("Occupancy", "O1"),
			mkModel("Lamp", "L1"),
			mkModel("Occupancy", "O2"),
			mkModel("Room", "MeetingRoom", "L1", "O1"),
			mkModel("Room", "Kitchen", "O2"),
			mkModel("Building", "ConfCenter", "MeetingRoom", "Kitchen"),
		},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s := smartBuildingSetup()
	data, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if back.Name != s.Name {
		t.Errorf("name = %q", back.Name)
	}
	if !reflect.DeepEqual(back.Kinds, s.Kinds) {
		t.Errorf("kinds = %v", back.Kinds)
	}
	if len(back.Models) != len(s.Models) {
		t.Fatalf("models = %d", len(back.Models))
	}
	byName := map[string]model.Doc{}
	for _, m := range back.Models {
		byName[m.Name()] = m
	}
	if got := byName["ConfCenter"].Attach(); !reflect.DeepEqual(got, []string{"MeetingRoom", "Kitchen"}) {
		t.Errorf("ConfCenter attach = %v", got)
	}
}

func TestMarshalValidates(t *testing.T) {
	s := smartBuildingSetup()
	s.Name = ""
	if _, err := Marshal(s); err == nil {
		t.Error("empty name accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"no header":     "- 1\n- 2\n",
		"no setup name": "digibox: v1\n",
		"kind no ver":   "setup: s\nkinds:\n  Lamp:\n",
		"non-model doc": "setup: s\nkinds: {}\n---\n- a\n",
	}
	for name, src := range cases {
		if _, err := Unmarshal([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateDuplicateNames(t *testing.T) {
	s := &Setup{Name: "x", Models: []model.Doc{
		mkModel("Lamp", "L1"),
		mkModel("Fan", "L1"),
	}}
	if err := Validate(s); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateDanglingAttach(t *testing.T) {
	s := &Setup{Name: "x", Models: []model.Doc{
		mkModel("Room", "R", "Ghost"),
	}}
	if err := Validate(s); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateMissingKindRef(t *testing.T) {
	s := &Setup{
		Name:   "x",
		Kinds:  map[string]string{"Lamp": "v1"},
		Models: []model.Doc{mkModel("Fan", "F1")},
	}
	if err := Validate(s); err == nil || !strings.Contains(err.Error(), "kind reference") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateCycle(t *testing.T) {
	s := &Setup{Name: "x", Models: []model.Doc{
		mkModel("Room", "A", "B"),
		mkModel("Room", "B", "C"),
		mkModel("Room", "C", "A"),
	}}
	if err := Validate(s); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateModelWithoutMeta(t *testing.T) {
	s := &Setup{Name: "x", Models: []model.Doc{{"no": "meta"}}}
	if err := Validate(s); err == nil {
		t.Error("model without meta accepted")
	}
}

func TestRoots(t *testing.T) {
	s := smartBuildingSetup()
	if got := Roots(s); !reflect.DeepEqual(got, []string{"ConfCenter"}) {
		t.Errorf("roots = %v", got)
	}
}

func TestCreationOrderChildrenFirst(t *testing.T) {
	s := smartBuildingSetup()
	order := CreationOrder(s)
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for parent, children := range map[string][]string{
		"MeetingRoom": {"L1", "O1"},
		"Kitchen":     {"O2"},
		"ConfCenter":  {"MeetingRoom", "Kitchen"},
	} {
		for _, c := range children {
			if pos[c] > pos[parent] {
				t.Errorf("%s created after %s: %v", c, parent, order)
			}
		}
	}
}

func TestSetupWithoutKindsSkipsKindCheck(t *testing.T) {
	// Kinds == nil means "types resolved locally" (a setup sketched by
	// hand before any repo commit) and must not fail validation.
	s := &Setup{Name: "x", Models: []model.Doc{mkModel("Lamp", "L1")}}
	if err := Validate(s); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestSwarmSectionRoundTrip(t *testing.T) {
	s := smartBuildingSetup()
	s.Swarm = &SwarmConfig{Shards: 4}
	data, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if back.Swarm == nil || back.Swarm.Shards != 4 {
		t.Fatalf("swarm section = %+v, want shards 4", back.Swarm)
	}

	// No section stays absent.
	plain, err := Marshal(smartBuildingSetup())
	if err != nil {
		t.Fatal(err)
	}
	if back, err := Unmarshal(plain); err != nil || back.Swarm != nil {
		t.Fatalf("swarm = %+v, err %v; want absent", back.Swarm, err)
	}
}

func TestSwarmSectionValidates(t *testing.T) {
	s := smartBuildingSetup()
	s.Swarm = &SwarmConfig{Shards: 0}
	if _, err := Marshal(s); err == nil || !strings.Contains(err.Error(), "swarm.shards") {
		t.Fatalf("zero shards accepted: %v", err)
	}
	if _, err := Parse([]byte("setup: t\nswarm:\n  shards: nope\n")); err == nil {
		t.Fatal("non-numeric shards accepted")
	}
}

func TestCtlSectionRoundTrip(t *testing.T) {
	s := smartBuildingSetup()
	s.Ctl = &CtlConfig{Listen: "127.0.0.1:7825"}
	data, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if back.Ctl == nil || back.Ctl.Listen != "127.0.0.1:7825" {
		t.Fatalf("ctl section = %+v, want listen 127.0.0.1:7825", back.Ctl)
	}

	// No section stays absent, and an empty listen fails validation.
	plain, err := Marshal(smartBuildingSetup())
	if err != nil {
		t.Fatal(err)
	}
	if back, err := Unmarshal(plain); err != nil || back.Ctl != nil {
		t.Fatalf("ctl = %+v, err %v; want absent", back.Ctl, err)
	}
	empty := smartBuildingSetup()
	empty.Ctl = &CtlConfig{}
	if _, err := Marshal(empty); err == nil {
		t.Fatal("empty ctl.listen marshalled, want validation error")
	}
}

func TestProfileSectionRoundTrip(t *testing.T) {
	s := smartBuildingSetup()
	s.Profile = &profile.Profile{
		Name: "city",
		Seed: 7,
		Populations: []profile.Population{
			{Kind: "thermostat", Count: 4,
				Cadence: profile.Cadence{Dist: profile.DistPoisson, Mean: 200 * time.Millisecond},
				Fields:  []profile.Field{{Name: "temp_c", Gen: profile.GenSine, Min: 18, Max: 26, Period: time.Minute}}},
			{Kind: "meter", Count: 2,
				Cadence: profile.Cadence{Dist: profile.DistFixed, Mean: 100 * time.Millisecond}},
		},
	}
	data, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if back.Profile == nil || back.Profile.Name != "city" || back.Profile.Seed != 7 {
		t.Fatalf("profile section = %+v, want name city seed 7", back.Profile)
	}
	if n := len(back.Profile.Populations); n != 2 {
		t.Fatalf("populations = %d, want 2", n)
	}
	if got := back.Profile.Populations[0]; got.Kind != "thermostat" ||
		got.Cadence.Dist != profile.DistPoisson || got.Cadence.Mean != 200*time.Millisecond {
		t.Fatalf("population 0 = %+v", got)
	}

	// No section stays absent, and an invalid profile fails validation.
	plain, err := Marshal(smartBuildingSetup())
	if err != nil {
		t.Fatal(err)
	}
	if back, err := Unmarshal(plain); err != nil || back.Profile != nil {
		t.Fatalf("profile = %+v, err %v; want absent", back.Profile, err)
	}
	bad := smartBuildingSetup()
	bad.Profile = &profile.Profile{Name: "bad", Populations: []profile.Population{
		{Kind: "x", Count: 1, Cadence: profile.Cadence{Dist: "weibull", Mean: time.Second}},
	}}
	if _, err := Marshal(bad); err == nil {
		t.Fatal("unknown cadence dist marshalled, want validation error")
	}
	if _, err := Parse([]byte("setup: t\nprofile: notamap\n")); err == nil {
		t.Fatal("non-mapping profile section accepted")
	}
}
