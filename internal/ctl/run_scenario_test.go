package ctl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/replay"
)

func scenarioForRun(d time.Duration) *replay.Scenario {
	return &replay.Scenario{
		Name:     "over-http",
		Duration: d,
		Digis: []replay.Digi{
			{Type: "Occupancy", Name: "O1", Config: map[string]any{"interval_ms": int64(40), "trigger_prob": 1.0}},
			{Type: "Lamp", Name: "L1"},
			{Type: "MeetingRoom", Name: "MR", Attach: []string{"O1", "L1"}},
		},
	}
}

// TestRunScenarioOverHTTP drives the scenario form of POST /ctl/run:
// the same scenario at speed max and a paced speed must return the
// same digest, and the status document must grow a timewarp section.
func TestRunScenarioOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	sc := scenarioForRun(200 * time.Millisecond)

	fast, err := cli.RunScenario(sc, "max")
	if err != nil {
		t.Fatal(err)
	}
	if fast.Digest == "" || fast.Records == 0 || fast.Scenario != "over-http" {
		t.Fatalf("max run = %+v", fast)
	}
	if fast.Speed != "max" {
		t.Fatalf("speed echoed as %q, want max", fast.Speed)
	}

	paced, err := cli.RunScenario(sc, "20")
	if err != nil {
		t.Fatal(err)
	}
	if paced.Digest != fast.Digest {
		t.Fatalf("digest speed-dependent over HTTP:\n  max %s\n  20  %s", fast.Digest, paced.Digest)
	}
	if paced.WallMs < 5 {
		t.Errorf("speed-20 run of 200ms reported %dms wall; pacing missing", paced.WallMs)
	}
	if paced.CompressionX <= 0 {
		t.Errorf("compression_x = %v, want > 0", paced.CompressionX)
	}

	status, err := cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	tw, ok := status["timewarp"].(map[string]any)
	if !ok {
		t.Fatalf("status has no timewarp section: %v", status)
	}
	if tw["name"] != "over-http" || tw["running"] != false {
		t.Errorf("timewarp = %v, want finished over-http run", tw)
	}
	if ts, ok := status["time_scale"].(string); !ok || ts != "1" {
		t.Errorf("time_scale = %v, want \"1\" on a real-time testbed", status["time_scale"])
	}
}

// TestRunScenarioBadSpeed: unparseable speeds are a 400, not a hung
// run at some accidental default.
func TestRunScenarioBadSpeed(t *testing.T) {
	_, cli := startServer(t, "")
	sc := scenarioForRun(100 * time.Millisecond)
	_, err := cli.RunScenario(sc, "warp9")
	if err == nil || !strings.Contains(err.Error(), "invalid speed") {
		t.Fatalf("err = %v, want invalid speed", err)
	}
}
