package ctl

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/property"
	"repro/internal/scene"
	"repro/internal/vet"
)

// startServer builds a full testbed + control server + client, wired
// to a shared remote repo so push/pull round-trips can be tested.
func startServer(t *testing.T, remoteDir string) (*core.Testbed, *Client) {
	t.Helper()
	opts := core.Options{
		LocalRepoDir: filepath.Join(t.TempDir(), "repo"),
	}
	if remoteDir != "" {
		opts.RemoteRepoDir = remoteDir
	}
	tb, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := device.RegisterAll(tb.Registry); err != nil {
		t.Fatal(err)
	}
	if err := scene.RegisterAll(tb.Registry); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Stop)
	srv := &Server{TB: tb}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return tb, &Client{Base: "http://" + srv.Addr()}
}

func TestRunCheckStopOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	if err := cli.Run("Lamp", "L1", nil); err != nil {
		t.Fatal(err)
	}
	doc, err := cli.Check("L1")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Type() != "Lamp" {
		t.Errorf("doc = %v", doc)
	}
	names, err := cli.List()
	if err != nil || len(names) != 1 {
		t.Errorf("names = %v, %v", names, err)
	}
	if err := cli.Stop("L1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Check("L1"); err == nil {
		t.Error("stopped digi still checkable")
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	_, cli := startServer(t, "")
	if err := cli.Run("Bogus", "X", nil); err == nil {
		t.Error("bogus type accepted")
	}
	if err := cli.Stop("ghost"); err == nil {
		t.Error("stop of missing digi accepted")
	}
	if _, err := cli.Check("ghost"); err == nil {
		t.Error("check of missing digi accepted")
	}
}

func TestAttachEditOverHTTP(t *testing.T) {
	tb, cli := startServer(t, "")
	if err := cli.Run("Occupancy", "O1", nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Run("Room", "R1", map[string]any{"managed": false}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Attach("O1", "R1", false); err != nil {
		t.Fatal(err)
	}
	if err := cli.Edit("R1", map[string]any{"human_presence": true}); err != nil {
		t.Fatal(err)
	}
	if err := tb.WaitConverged(5*time.Second, func() bool {
		d, _ := tb.Check("O1")
		return d != nil && d.GetBool("triggered")
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Attach("O1", "R1", true); err != nil {
		t.Fatal(err)
	}
	d, _ := cli.Check("R1")
	if len(d.Attach()) != 0 {
		t.Errorf("attach list = %v", d.Attach())
	}
}

func TestWatchStreamOverHTTP(t *testing.T) {
	tb, cli := startServer(t, "")
	if err := cli.Run("Lamp", "L1", nil); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var gens []uint64
	done := make(chan error, 1)
	go func() {
		done <- cli.Watch("L1", 2, func(gen uint64, doc model.Doc, deleted bool) {
			mu.Lock()
			gens = append(gens, gen)
			mu.Unlock()
		})
	}()
	// The stream only carries updates committed after the server-side
	// subscription exists, and there is no connect handshake — so keep
	// committing distinct edits until the stream has seen its two.
	deadline := time.After(5 * time.Second)
	level := 0.1
	for waiting := true; waiting; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			waiting = false
		case <-deadline:
			t.Fatal("watch stream never completed")
		case <-time.After(20 * time.Millisecond):
			tb.Edit("L1", map[string]any{"intensity": map[string]any{"intent": level}})
			level += 0.01
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(gens) != 2 {
		t.Errorf("gens = %v", gens)
	}
	if gens[0] >= gens[1] {
		t.Errorf("generations not increasing: %v", gens)
	}
}

func TestShareWorkflowOverHTTP(t *testing.T) {
	remote := t.TempDir()
	_, dev := startServer(t, remote)
	other, reproducer := startServer(t, remote)

	// Developer: build, commit, push setup and trace.
	if err := dev.Run("Occupancy", "O1", nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run("Room", "R1", map[string]any{"managed": false}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Attach("O1", "R1", false); err != nil {
		t.Fatal(err)
	}
	if err := dev.Edit("R1", map[string]any{"human_presence": true}); err != nil {
		t.Fatal(err)
	}
	version, err := dev.Commit("R1", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if version != "v1" {
		t.Errorf("version = %q", version)
	}
	if err := dev.Push("R1"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.PushTrace("r1-trace"); err != nil {
		t.Fatal(err)
	}
	// Kind commit via -k flag path.
	if v, err := dev.Commit("Lamp", true, false); err != nil || v == "" {
		t.Errorf("kind commit: %q %v", v, err)
	}

	// Reproducer: pull, recreate, replay.
	if err := reproducer.Pull("R1"); err != nil {
		t.Fatal(err)
	}
	if err := reproducer.Recreate("R1", ""); err != nil {
		t.Fatal(err)
	}
	names, _ := reproducer.List()
	if len(names) != 2 {
		t.Fatalf("recreated models = %v", names)
	}
	n, err := reproducer.Replay("r1-trace", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("replayed 0 records")
	}
	if err := other.WaitConverged(5*time.Second, func() bool {
		d, _ := other.Check("O1")
		return d != nil && d.GetBool("triggered")
	}); err != nil {
		t.Fatal("replay did not reproduce the recorded state")
	}
}

func TestVetOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	if err := cli.Run("Occupancy", "O1", nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Run("Room", "R1", map[string]any{"managed": false}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Attach("O1", "R1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Commit("R1", false, false); err != nil {
		t.Fatal(err)
	}
	results, err := cli.Vet("R1", "", false)
	if err != nil {
		t.Fatal(err)
	}
	diags, ok := results["R1"]
	if !ok {
		t.Fatalf("results = %v", results)
	}
	if vet.HasErrors(diags) {
		t.Errorf("committed scene not vet-clean: %s", vet.Text(diags))
	}
	// --all covers every committed setup.
	all, err := cli.Vet("", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := all["R1"]; !ok {
		t.Errorf("vet --all missing R1: %v", all)
	}
	if _, err := cli.Vet("no-such-setup", "", false); err == nil {
		t.Error("vet of missing setup accepted")
	}
}

func TestTraceDownloadOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	if err := cli.Run("Occupancy", "O1", map[string]any{"interval_ms": int64(20)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs, raw, err := cli.DownloadTrace()
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			t.Fatal("empty archive")
		}
		if len(recs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no records in trace")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStatusOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	cli.Run("Lamp", "L1", nil)
	st, err := cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st["models"] != float64(1) {
		t.Errorf("status = %v", st)
	}
	if st["broker_addr"] == "" || st["rest_addr"] == "" {
		t.Errorf("addresses missing: %v", st)
	}
}

func TestControlAPIErrorPaths(t *testing.T) {
	_, cli := startServer(t, "")
	// Commit without a remote is fine (local repo exists), but pushing
	// is not.
	if err := cli.Push("nothing"); err == nil {
		t.Error("push without remote accepted")
	}
	if err := cli.Pull("nothing"); err == nil {
		t.Error("pull without remote accepted")
	}
	if err := cli.Recreate("nothing", ""); err == nil {
		t.Error("recreate of missing setup accepted")
	}
	if _, err := cli.Replay("nothing", "", 0); err == nil {
		t.Error("replay of missing trace accepted")
	}
	if _, err := cli.Commit("NoSuchScene", false, false); err == nil {
		t.Error("commit of missing scene accepted")
	}
	if err := cli.Attach("a", "b", false); err == nil {
		t.Error("attach of missing digis accepted")
	}
	if err := cli.Edit("ghost", map[string]any{"a": 1}); err == nil {
		t.Error("edit of missing digi accepted")
	}
	if err := cli.Watch("ghost", 1, nil); err == nil {
		t.Error("watch of missing digi accepted")
	}
}

func TestControlAPIRejectsBadJSON(t *testing.T) {
	_, cli := startServer(t, "")
	resp, err := cli.http().Post(cli.Base+"/ctl/run", "application/json",
		bytesReader([]byte("this is not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestCheckTraceOverHTTP(t *testing.T) {
	remote := t.TempDir()
	tb, cli := startServer(t, remote)
	if err := cli.Run("Lamp", "L1", nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Run("Occupancy", "O1", map[string]any{"managed": false}); err != nil {
		t.Fatal(err)
	}
	// Register the §3.3 property, then record a run that violates it.
	if err := tb.AddProperty(&property.Property{
		Name: "lamp-off-when-unoccupied",
		Kind: property.Never,
		Cond: property.Condition{
			{Model: "O1", Path: "triggered", Op: property.Eq, Value: false},
			{Model: "L1", Path: "power.status", Op: property.Eq, Value: "on"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Edit("L1", map[string]any{"power": map[string]any{"intent": "on"}}); err != nil {
		t.Fatal(err)
	}
	if err := tb.WaitConverged(5*time.Second, func() bool {
		d, _ := tb.Check("L1")
		return d != nil && d.GetString("power.status") == "on"
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.PushTrace("bad-run"); err != nil {
		t.Fatal(err)
	}
	n, violations, err := cli.CheckTrace("bad-run", "")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records checked")
	}
	if len(violations) != 1 || violations[0]["property"] != "lamp-off-when-unoccupied" {
		t.Fatalf("violations = %v", violations)
	}
	if _, _, err := cli.CheckTrace("no-such-trace", ""); err == nil {
		t.Error("missing trace accepted")
	}
}
