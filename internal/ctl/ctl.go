// Package ctl implements the dboxd control API: the HTTP surface the
// dbox command-line tool (Table 1) drives a running testbed through.
// The device-facing REST gateway (internal/rest) serves applications;
// this API serves the developer.
package ctl

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dash"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/swarm"
	"repro/internal/trace"
	"repro/internal/vet"
)

// Server exposes a testbed over HTTP.
type Server struct {
	TB *core.Testbed

	httpServer *http.Server
	listener   net.Listener
}

// RunRequest is the body of POST /ctl/run. Two forms:
//
//   - {type, name, config}: run one mock or scene as a pod (the
//     original dbox run verb).
//   - {scenario, speed}: execute a whole scenario on the daemon's
//     deterministic engine, time-compressed at the given speed
//     ("max", "100", "2.5"; empty = max). The connection stays open
//     for the run's wall duration and the reply is a
//     RunScenarioResponse.
type RunRequest struct {
	Type   string         `json:"type,omitempty"`
	Name   string         `json:"name,omitempty"`
	Config map[string]any `json:"config,omitempty"`

	Scenario any    `json:"scenario,omitempty"`
	Speed    string `json:"speed,omitempty"`
}

// RunScenarioResponse is the reply of the scenario form of
// POST /ctl/run: the digest plus the timewarp accounting.
type RunScenarioResponse struct {
	Scenario   string `json:"scenario"`
	Records    int    `json:"records"`
	Digest     string `json:"digest"`
	Speed      string `json:"speed"`
	ScenarioMs int64  `json:"scenario_ms"`
	WallMs     int64  `json:"wall_ms"`
	// CompressionX is scenario time over wall time actually achieved.
	CompressionX float64 `json:"compression_x"`
}

// NameRequest is the body of verbs addressing one digi.
type NameRequest struct {
	Name string `json:"name"`
}

// AttachRequest is the body of POST /ctl/attach.
type AttachRequest struct {
	Child  string `json:"child"`
	Parent string `json:"parent"`
	Detach bool   `json:"detach,omitempty"`
}

// EditRequest is the body of POST /ctl/edit.
type EditRequest struct {
	Name  string         `json:"name"`
	Patch map[string]any `json:"patch"`
}

// CommitRequest is the body of POST /ctl/commit.
type CommitRequest struct {
	Name string `json:"name"`
	// Kind commits a type definition instead of a scene setup.
	Kind bool `json:"kind,omitempty"`
	// Force bypasses the vet pre-commit gate ("dbox commit -f").
	Force bool `json:"force,omitempty"`
}

// VetRequest is the body of POST /ctl/vet: analyze one committed setup
// (empty version = latest) or, with All, every committed setup.
type VetRequest struct {
	Name    string `json:"name,omitempty"`
	Version string `json:"version,omitempty"`
	All     bool   `json:"all,omitempty"`
}

// ChaosRequest is the body of POST /ctl/chaos: a fault plan in its
// generic-value encoding (chaos.Plan.Value), applied to the running
// testbed. The response is the engine's chaos.Report.
type ChaosRequest struct {
	Plan any `json:"plan"`
}

// SwarmRequest is the body of POST /ctl/swarm: one swarm load run.
// Durations travel as seconds so the request stays tool-friendly; zero
// fields take the swarm defaults. The response is the swarm.Report.
type SwarmRequest struct {
	Profile     string  `json:"profile,omitempty"`
	Devices     int     `json:"devices,omitempty"`
	Rate        float64 `json:"rate,omitempty"`
	PeriodSec   float64 `json:"period_sec,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	QoS         int     `json:"qos,omitempty"`
	Payload     int     `json:"payload,omitempty"`
	Subscribers int     `json:"subscribers,omitempty"`
	Prefix      string  `json:"prefix,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	Mock        bool    `json:"mock,omitempty"`
	// Kills is the failover-drill schedule (`dbox swarm -kill-shard`).
	Kills []SwarmKill `json:"kills,omitempty"`
	// DeviceProfile is an optional device-population profile in its
	// generic-value encoding (profile.Profile.Value); setting it makes
	// the run profiled (`dbox swarm -profile FILE`).
	DeviceProfile any `json:"device_profile,omitempty"`
}

// SwarmKill schedules one shard crash: shard Shard dies at AtSec into
// the run; with ForSec > 0 it revives that many seconds later.
type SwarmKill struct {
	Shard  int     `json:"shard"`
	AtSec  float64 `json:"at_sec"`
	ForSec float64 `json:"for_sec,omitempty"`
}

// spec converts the wire request into the core spec.
func (r SwarmRequest) spec() (core.SwarmSpec, error) {
	var kills []core.ShardKill
	for _, k := range r.Kills {
		kills = append(kills, core.ShardKill{
			Shard: k.Shard,
			At:    time.Duration(k.AtSec * float64(time.Second)),
			For:   time.Duration(k.ForSec * float64(time.Second)),
		})
	}
	var prof *profile.Profile
	if r.DeviceProfile != nil {
		p, err := profile.FromValue(r.DeviceProfile)
		if err != nil {
			return core.SwarmSpec{}, fmt.Errorf("ctl: device_profile: %w", err)
		}
		prof = p
	}
	return core.SwarmSpec{
		Load: swarm.LoadSpec{
			Profile:       swarm.Profile(r.Profile),
			Devices:       r.Devices,
			Rate:          r.Rate,
			Period:        time.Duration(r.PeriodSec * float64(time.Second)),
			Duration:      time.Duration(r.DurationSec * float64(time.Second)),
			Workers:       r.Workers,
			Seed:          r.Seed,
			QoS:           byte(r.QoS),
			Payload:       r.Payload,
			Subs:          r.Subscribers,
			Prefix:        r.Prefix,
			DeviceProfile: prof,
		},
		Shards: r.Shards,
		Mock:   r.Mock,
		Kills:  kills,
	}, nil
}

// CaptureRequest is the body of POST /ctl/capture: record traffic
// into a fitted device profile. With Swarm set the capture drives
// that swarm load and taps it; otherwise the live broker is tapped
// for DurationSec of scenario time.
type CaptureRequest struct {
	DurationSec float64       `json:"duration_sec,omitempty"`
	Filter      string        `json:"filter,omitempty"`
	Name        string        `json:"name,omitempty"`
	Seed        int64         `json:"seed,omitempty"`
	Commit      bool          `json:"commit,omitempty"`
	Swarm       *SwarmRequest `json:"swarm,omitempty"`
}

// CaptureResponse carries the fitted profile (generic-value encoding)
// plus the observation accounting; Version is set when the request
// asked for a repository commit.
type CaptureResponse struct {
	Profile  any              `json:"profile"`
	Messages int64            `json:"messages"`
	Classes  map[string]int64 `json:"classes"`
	Report   *swarm.Report    `json:"report,omitempty"`
	Version  string           `json:"version,omitempty"`
}

// ShareRequest is the body of POST /ctl/push and /ctl/pull.
type ShareRequest struct {
	Name string `json:"name"`
}

// RecreateRequest is the body of POST /ctl/recreate.
type RecreateRequest struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// ReplayRequest is the body of POST /ctl/replay. Two forms:
//
//   - {trace, version, speed}: replay a shared trace by repository
//     name against the live testbed, at the given speed (0 = fast).
//   - {scenario, digest, verify}: re-execute a recorded scenario on
//     the deterministic engine (replay.Scenario in its generic-value
//     encoding); with verify set the run's chained digest must match
//     the expected one.
type ReplayRequest struct {
	Trace   string  `json:"trace,omitempty"`
	Version string  `json:"version,omitempty"`
	Speed   float64 `json:"speed,omitempty"`

	Scenario any    `json:"scenario,omitempty"`
	Digest   string `json:"digest,omitempty"`
	Verify   bool   `json:"verify,omitempty"`
}

// RecordRequest is the body of POST /ctl/record: execute a scenario on
// the deterministic replay engine (the scenario in its generic-value
// encoding, replay.Scenario.Value) and return the run's digest. With
// Archive set the response carries the full replay archive
// (base64-encoded zip) ready to save with `dbox record -o`.
type RecordRequest struct {
	Scenario any  `json:"scenario"`
	Archive  bool `json:"archive,omitempty"`
}

// RecordResponse is the reply of POST /ctl/record and of the scenario
// form of POST /ctl/replay.
type RecordResponse struct {
	Scenario string `json:"scenario"`
	Records  int    `json:"records"`
	Digest   string `json:"digest"`
	Archive  []byte `json:"archive,omitempty"`
}

// CheckTraceRequest is the body of POST /ctl/checktrace: evaluate the
// registered scene properties offline against a shared trace.
type CheckTraceRequest struct {
	Trace   string `json:"trace"`
	Version string `json:"version,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	data, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return false
	}
	if err := json.Unmarshal(data, dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// Handler returns the control API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /ctl/status", s.handleStatus)
	mux.HandleFunc("GET /ctl/events", s.handleEvents)
	mux.Handle("GET /ctl/dash", http.RedirectHandler("/ctl/dash/", http.StatusMovedPermanently))
	mux.Handle("GET /ctl/dash/", http.StripPrefix("/ctl/dash/", dash.Handler()))
	mux.HandleFunc("GET /ctl/metrics", s.handleMetrics)
	mux.HandleFunc("GET /ctl/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /ctl/list", s.handleList)
	mux.HandleFunc("POST /ctl/run", s.handleRun)
	mux.HandleFunc("POST /ctl/stop", s.handleStop)
	mux.HandleFunc("GET /ctl/check/{name}", s.handleCheck)
	mux.HandleFunc("GET /ctl/watch/{name}", s.handleWatch)
	mux.HandleFunc("POST /ctl/attach", s.handleAttach)
	mux.HandleFunc("POST /ctl/edit", s.handleEdit)
	mux.HandleFunc("POST /ctl/commit", s.handleCommit)
	mux.HandleFunc("POST /ctl/vet", s.handleVet)
	mux.HandleFunc("POST /ctl/push", s.handlePush)
	mux.HandleFunc("POST /ctl/pull", s.handlePull)
	mux.HandleFunc("POST /ctl/recreate", s.handleRecreate)
	mux.HandleFunc("POST /ctl/chaos", s.handleChaos)
	mux.HandleFunc("POST /ctl/swarm", s.handleSwarm)
	mux.HandleFunc("POST /ctl/capture", s.handleCapture)
	mux.HandleFunc("POST /ctl/record", s.handleRecord)
	mux.HandleFunc("POST /ctl/replay", s.handleReplay)
	mux.HandleFunc("POST /ctl/checktrace", s.handleCheckTrace)
	mux.HandleFunc("GET /ctl/trace", s.handleTraceDownload)
	mux.HandleFunc("POST /ctl/trace/push", s.handleTracePush)
	return mux
}

// ListenAndServe binds addr and serves in the background.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: s.Handler()}
	go s.httpServer.Serve(ln)
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the control server (not the testbed).
func (s *Server) Close() error {
	if s.httpServer == nil {
		return nil
	}
	return s.httpServer.Close()
}

// handleHealthz is the liveness probe: the process is up and serving,
// so the answer is always 200. Degraded state belongs to /readyz.
// Both probes answer JSON with the build version and start time so a
// fleet operator can correlate behaviour with builds from the probe
// alone.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"version":    s.TB.Version,
		"started_at": startedAt(s.TB),
	})
}

// handleReadyz is the readiness probe: 200 while every broker shard of
// the swarm run in flight (if any) is healthy, 503 with the down list
// while a failover is pending or a shard stays dead. A testbed with no
// swarm run is trivially ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	shards, down := s.TB.SwarmHealth()
	body := map[string]any{
		"ready":      len(down) == 0,
		"shards":     shards,
		"version":    s.TB.Version,
		"started_at": startedAt(s.TB),
	}
	if len(down) > 0 {
		body["down"] = down
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.TB.Names()})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Scenario != nil {
		s.runScenario(w, r, req)
		return
	}
	if err := s.TB.Run(req.Type, req.Name, req.Config); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "running", "name": req.Name})
}

// runScenario is the time-compressed scenario form of /ctl/run: the
// run executes at the requested speed (closing the connection cancels
// it) and the reply carries the digest plus timewarp accounting.
func (s *Server) runScenario(w http.ResponseWriter, r *http.Request, req RunRequest) {
	sc, err := replay.ScenarioFromValue(req.Scenario)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	speed := clock.SpeedMax
	if req.Speed != "" {
		if speed, err = clock.ParseSpeed(req.Speed); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	res, err := s.TB.RunScenario(r.Context(), sc, speed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := RunScenarioResponse{
		Scenario:   sc.Name,
		Records:    len(res.Records),
		Digest:     res.Digest,
		Speed:      clock.FormatSpeed(res.Speed),
		ScenarioMs: sc.Duration.Milliseconds(),
		WallMs:     res.Wall.Milliseconds(),
	}
	if resp.WallMs > 0 {
		resp.CompressionX = float64(resp.ScenarioMs) / float64(resp.WallMs)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	var req NameRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.TB.StopDigi(req.Name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stopped", "name": req.Name})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	doc, err := s.TB.Check(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any(doc))
}

// handleWatch streams model updates as JSONL until the client goes
// away or max_updates is reached.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.TB.Check(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	maxUpdates := 0
	if v, err := strconv.Atoi(r.URL.Query().Get("max")); err == nil && v > 0 {
		maxUpdates = v
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	watcher := s.TB.Watch(name)
	defer watcher.Close()
	enc := json.NewEncoder(w)
	sent := 0
	for {
		select {
		case u, ok := <-watcher.C:
			if !ok {
				return
			}
			out := map[string]any{"gen": u.Gen, "deleted": u.Deleted, "doc": map[string]any(u.Doc)}
			if err := enc.Encode(out); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
			if maxUpdates > 0 && sent >= maxUpdates {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	var req AttachRequest
	if !decode(w, r, &req) {
		return
	}
	var err error
	if req.Detach {
		err = s.TB.Detach(req.Child, req.Parent)
	} else {
		err = s.TB.Attach(req.Child, req.Parent)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	var req EditRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.TB.Edit(req.Name, req.Patch); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if !decode(w, r, &req) {
		return
	}
	var version string
	var err error
	switch {
	case req.Kind:
		version, err = s.TB.CommitKind(req.Name)
	case req.Force:
		version, err = s.TB.CommitSceneForce(req.Name)
	default:
		version, err = s.TB.CommitScene(req.Name)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"version": version})
}

func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	var req VetRequest
	if !decode(w, r, &req) {
		return
	}
	results := map[string][]vet.Diagnostic{}
	if req.All {
		all, err := s.TB.VetAll()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		results = all
	} else {
		diags, err := s.TB.VetSetup(req.Name, req.Version)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		results[req.Name] = diags
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	var req ShareRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.TB.Push(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "pushed"})
}

func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	var req ShareRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.TB.Pull(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "pulled"})
}

func (s *Server) handleRecreate(w http.ResponseWriter, r *http.Request) {
	var req RecreateRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.TB.Recreate(req.Name, req.Version); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "recreated"})
}

// handleChaos runs a fault plan to completion against the testbed; the
// connection stays open for the plan's duration (dbox chaos run).
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req ChaosRequest
	if !decode(w, r, &req) {
		return
	}
	plan, err := chaos.PlanFromValue(req.Plan)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := plan.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.TB.RunChaosPlan(r.Context(), plan)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleSwarm runs a swarm load session to completion; like chaos, the
// connection stays open for the run's duration (dbox swarm -remote).
func (s *Server) handleSwarm(w http.ResponseWriter, r *http.Request) {
	var req SwarmRequest
	if !decode(w, r, &req) {
		return
	}
	spec, err := req.spec()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.TB.RunSwarm(r.Context(), spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleCapture records traffic into a fitted device profile — the
// `dbox capture -remote` path. Like swarm, the connection stays open
// for the capture window.
func (s *Server) handleCapture(w http.ResponseWriter, r *http.Request) {
	var req CaptureRequest
	if !decode(w, r, &req) {
		return
	}
	spec := core.CaptureSpec{
		Duration: time.Duration(req.DurationSec * float64(time.Second)),
		Filter:   req.Filter,
		Name:     req.Name,
		Seed:     req.Seed,
	}
	if req.Swarm != nil {
		sw, err := req.Swarm.spec()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		spec.Swarm = &sw
	}
	res, err := s.TB.Capture(r.Context(), spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := CaptureResponse{
		Profile:  res.Profile.Value(),
		Messages: res.Messages,
		Classes:  res.Classes,
		Report:   res.Report,
	}
	if req.Commit {
		ver, err := s.TB.CommitProfile(res.Profile.Name, res.Profile)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		resp.Version = ver
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRecord executes a scenario on the deterministic replay engine
// and returns its digest (and optionally the full replay archive).
func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	var req RecordRequest
	if !decode(w, r, &req) {
		return
	}
	sc, err := replay.ScenarioFromValue(req.Scenario)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.TB.Record(sc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := RecordResponse{Scenario: sc.Name, Records: len(res.Records), Digest: res.Digest}
	if req.Archive {
		data, err := replay.ArchiveBytes(res)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp.Archive = data
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Scenario != nil {
		sc, err := replay.ScenarioFromValue(req.Scenario)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		res, err := s.TB.ReplayScenario(sc, req.Digest, req.Verify)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, RecordResponse{
			Scenario: sc.Name, Records: len(res.Records), Digest: res.Digest,
		})
		return
	}
	recs, err := s.TB.PullTrace(req.Trace, req.Version)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.TB.Replay(recs, req.Speed); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "replayed", "records": len(recs)})
}

func (s *Server) handleCheckTrace(w http.ResponseWriter, r *http.Request) {
	var req CheckTraceRequest
	if !decode(w, r, &req) {
		return
	}
	recs, err := s.TB.PullTrace(req.Trace, req.Version)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	violations, err := s.TB.CheckTraceRecords(recs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make([]map[string]any, 0, len(violations))
	for _, v := range violations {
		out = append(out, map[string]any{
			"property": v.Property,
			"detail":   v.Detail,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"records":    len(recs),
		"violations": out,
	})
}

func (s *Server) handleTraceDownload(w http.ResponseWriter, r *http.Request) {
	data, err := s.TB.Log.ArchiveBytes()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/zip")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.zip"`)
	w.Write(data)
}

func (s *Server) handleTracePush(w http.ResponseWriter, r *http.Request) {
	var req ShareRequest
	if !decode(w, r, &req) {
		return
	}
	version, err := s.TB.PushTrace(req.Name)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"version": version})
}

// Client is the dbox-side client of the control API.
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 60 * time.Second}
}

func (c *Client) post(path string, req, resp any) error {
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpResp, err := c.http().Post(c.Base+path, "application/json", bytesReader(data))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, 8<<20))
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("dboxd: %s", e.Error)
		}
		return fmt.Errorf("dboxd: %s returned %d", path, httpResp.StatusCode)
	}
	if resp != nil {
		return json.Unmarshal(body, resp)
	}
	return nil
}

func (c *Client) get(path string, resp any) error {
	httpResp, err := c.http().Get(c.Base + path)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, 32<<20))
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("dboxd: %s", e.Error)
		}
		return fmt.Errorf("dboxd: %s returned %d", path, httpResp.StatusCode)
	}
	if raw, ok := resp.(*[]byte); ok {
		*raw = body
		return nil
	}
	if resp != nil {
		return json.Unmarshal(body, resp)
	}
	return nil
}

// Run issues dbox run.
func (c *Client) Run(typ, name string, config map[string]any) error {
	return c.post("/ctl/run", RunRequest{Type: typ, Name: name, Config: config}, nil)
}

// RunScenario issues the scenario form of dbox run: execute a whole
// scenario on the daemon at the given speed ("max", "100", …; empty =
// max). The HTTP timeout must cover the run's wall duration —
// scenario duration divided by speed — so callers size Client.HTTP
// accordingly for slow speeds.
func (c *Client) RunScenario(sc *replay.Scenario, speed string) (*RunScenarioResponse, error) {
	var resp RunScenarioResponse
	if err := c.post("/ctl/run", RunRequest{Scenario: sc.Value(), Speed: speed}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stop issues dbox stop.
func (c *Client) Stop(name string) error {
	return c.post("/ctl/stop", NameRequest{Name: name}, nil)
}

// Check issues dbox check.
func (c *Client) Check(name string) (model.Doc, error) {
	var m map[string]any
	if err := c.get("/ctl/check/"+name, &m); err != nil {
		return nil, err
	}
	return model.Doc(m), nil
}

// List returns all model names.
func (c *Client) List() ([]string, error) {
	var resp struct {
		Models []string `json:"models"`
	}
	if err := c.get("/ctl/list", &resp); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// Status returns the daemon status map.
func (c *Client) Status() (map[string]any, error) {
	var m map[string]any
	if err := c.get("/ctl/status", &m); err != nil {
		return nil, err
	}
	return m, nil
}

// Attach issues dbox attach (or detach).
func (c *Client) Attach(child, parent string, detach bool) error {
	return c.post("/ctl/attach", AttachRequest{Child: child, Parent: parent, Detach: detach}, nil)
}

// Edit issues dbox edit.
func (c *Client) Edit(name string, patch map[string]any) error {
	return c.post("/ctl/edit", EditRequest{Name: name, Patch: patch}, nil)
}

// Commit issues dbox commit; kind selects type vs scene commit; force
// bypasses the vet pre-commit gate.
func (c *Client) Commit(name string, kind, force bool) (string, error) {
	var resp struct {
		Version string `json:"version"`
	}
	if err := c.post("/ctl/commit", CommitRequest{Name: name, Kind: kind, Force: force}, &resp); err != nil {
		return "", err
	}
	return resp.Version, nil
}

// Vet analyzes one committed setup (all=false) or every committed
// setup (all=true), returning diagnostics keyed by setup name.
func (c *Client) Vet(name, version string, all bool) (map[string][]vet.Diagnostic, error) {
	var resp struct {
		Results map[string][]vet.Diagnostic `json:"results"`
	}
	if err := c.post("/ctl/vet", VetRequest{Name: name, Version: version, All: all}, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Push issues dbox push.
func (c *Client) Push(name string) error {
	return c.post("/ctl/push", ShareRequest{Name: name}, nil)
}

// Pull issues dbox pull.
func (c *Client) Pull(name string) error {
	return c.post("/ctl/pull", ShareRequest{Name: name}, nil)
}

// Recreate instantiates a pulled setup.
func (c *Client) Recreate(name, version string) error {
	return c.post("/ctl/recreate", RecreateRequest{Name: name, Version: version}, nil)
}

// ChaosRun issues dbox chaos run: apply a fault plan and wait for the
// engine's report. The HTTP timeout must cover the plan's duration;
// callers with long plans should set Client.HTTP accordingly.
func (c *Client) ChaosRun(p *chaos.Plan) (*chaos.Report, error) {
	var rep chaos.Report
	if err := c.post("/ctl/chaos", ChaosRequest{Plan: p.Value()}, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Swarm issues dbox swarm -remote: run a swarm load session on the
// daemon and return its report. Like ChaosRun, the HTTP timeout must
// cover the run's duration; callers size Client.HTTP to the spec.
func (c *Client) Swarm(req SwarmRequest) (*swarm.Report, error) {
	var rep swarm.Report
	if err := c.post("/ctl/swarm", req, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Capture issues dbox capture -remote: the daemon records traffic
// into a fitted device profile and returns it with the observation
// accounting.
func (c *Client) Capture(req CaptureRequest) (*profile.Profile, *CaptureResponse, error) {
	var resp CaptureResponse
	if err := c.post("/ctl/capture", req, &resp); err != nil {
		return nil, nil, err
	}
	p, err := profile.FromValue(resp.Profile)
	if err != nil {
		return nil, nil, fmt.Errorf("ctl: capture response profile: %w", err)
	}
	return p, &resp, nil
}

// Replay issues dbox replay against a shared trace.
func (c *Client) Replay(traceName, version string, speed float64) (int, error) {
	var resp struct {
		Records int `json:"records"`
	}
	err := c.post("/ctl/replay", ReplayRequest{Trace: traceName, Version: version, Speed: speed}, &resp)
	return resp.Records, err
}

// Record issues dbox record: execute a scenario deterministically on
// the daemon and return the run's digest (plus the replay archive
// when withArchive is set).
func (c *Client) Record(sc *replay.Scenario, withArchive bool) (*RecordResponse, error) {
	var resp RecordResponse
	if err := c.post("/ctl/record", RecordRequest{Scenario: sc.Value(), Archive: withArchive}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ReplayScenario issues the scenario form of dbox replay: re-execute a
// recorded scenario on the daemon's deterministic engine, verifying
// against the expected digest when verify is set.
func (c *Client) ReplayScenario(sc *replay.Scenario, digest string, verify bool) (*RecordResponse, error) {
	var resp RecordResponse
	req := ReplayRequest{Scenario: sc.Value(), Digest: digest, Verify: verify}
	if err := c.post("/ctl/replay", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CheckTrace evaluates registered properties against a shared trace,
// returning (property, detail) pairs per violation.
func (c *Client) CheckTrace(traceName, version string) (records int, violations []map[string]any, err error) {
	var resp struct {
		Records    int              `json:"records"`
		Violations []map[string]any `json:"violations"`
	}
	err = c.post("/ctl/checktrace", CheckTraceRequest{Trace: traceName, Version: version}, &resp)
	return resp.Records, resp.Violations, err
}

// DownloadTrace fetches the daemon's trace archive.
func (c *Client) DownloadTrace() ([]trace.Record, []byte, error) {
	var raw []byte
	if err := c.get("/ctl/trace", &raw); err != nil {
		return nil, nil, err
	}
	recs, err := trace.ParseArchiveBytes(raw)
	return recs, raw, err
}

// PushTrace publishes the daemon's current trace under a name.
func (c *Client) PushTrace(name string) (string, error) {
	var resp struct {
		Version string `json:"version"`
	}
	if err := c.post("/ctl/trace/push", ShareRequest{Name: name}, &resp); err != nil {
		return "", err
	}
	return resp.Version, nil
}

// Watch streams up to max updates of a model, invoking fn per update.
func (c *Client) Watch(name string, max int, fn func(gen uint64, doc model.Doc, deleted bool)) error {
	url := fmt.Sprintf("%s/ctl/watch/%s?max=%d", c.Base, name, max)
	resp, err := c.http().Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dboxd: watch returned %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var u struct {
			Gen     uint64         `json:"gen"`
			Deleted bool           `json:"deleted"`
			Doc     map[string]any `json:"doc"`
		}
		if err := dec.Decode(&u); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		fn(u.Gen, model.Doc(u.Doc), u.Deleted)
	}
}

func bytesReader(b []byte) io.Reader { return &sliceReader{data: b} }

type sliceReader struct {
	data []byte
	pos  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}
