package ctl

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data map[string]any
}

// sseStream consumes GET /ctl/events incrementally.
type sseStream struct {
	events <-chan sseEvent
	cancel context.CancelFunc
	resp   *http.Response
}

func (s *sseStream) close() {
	s.cancel()
	s.resp.Body.Close()
	// Drain so the reader goroutine observes the closed body and exits
	// (leakcheck gates this package).
	for range s.events {
	}
}

// openSSE connects to /ctl/events{query} and parses the stream in the
// background. The returned channel closes when the server ends the
// stream or close() is called.
func openSSE(t *testing.T, base, query string) *sseStream {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/ctl/events"+query, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("GET /ctl/events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		cancel()
		t.Fatalf("content-type %q, want text/event-stream", ct)
	}
	ch := make(chan sseEvent, 4096)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var name, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && name != "":
				var doc map[string]any
				if json.Unmarshal([]byte(data), &doc) == nil {
					ch <- sseEvent{name: name, data: doc}
				}
				name, data = "", ""
			}
		}
	}()
	return &sseStream{events: ch, cancel: cancel, resp: resp}
}

// next returns the stream's next event, failing after a bounded wait.
func (s *sseStream) next(t *testing.T) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no SSE event within 10s")
		panic("unreachable")
	}
}

// faultKey extracts "action/fault" from a fault event's payload.
func faultKey(t *testing.T, ev sseEvent) string {
	t.Helper()
	inner, _ := ev.data["data"].(map[string]any)
	if inner == nil {
		t.Fatalf("fault event without data: %+v", ev)
	}
	return fmt.Sprintf("%v/%v", inner["action"], inner["fault"])
}

// TestEventsSSEChaosPairsSurviveConsumerKill subscribes two SSE
// consumers, kills one at a varying point mid-stream, and requires the
// surviving consumer to see every chaos inject/recover pair, in
// order, every time. The dead consumer must be detached (subscriber
// count back to one) without wedging the publishers: the chaos run
// completes on schedule regardless.
func TestEventsSSEChaosPairsSurviveConsumerKill(t *testing.T) {
	// The plan is deterministic: drop injects at 10ms and reverts at
	// 50ms, dropout injects at 20ms and reverts at 80ms. The bus
	// serialises publishes, so the fault-event order is exact.
	wantOrder := []string{"inject/drop", "inject/dropout", "recover/drop", "recover/dropout"}
	cases := []struct {
		name      string
		killAfter int // fault events the doomed consumer reads first
	}{
		{"kill-after-hello", 0},
		{"kill-mid-stream", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb, cli := startServer(t, "")
			if err := cli.Run("Occupancy", "O1", map[string]any{"interval_ms": 50}); err != nil {
				t.Fatal(err)
			}

			live := openSSE(t, cli.Base, "?kind=fault")
			defer live.close()
			doomed := openSSE(t, cli.Base, "?kind=fault,hello")
			if ev := doomed.next(t); ev.name != "hello" {
				t.Fatalf("first event %q, want hello", ev.name)
			}
			if tc.killAfter == 0 {
				doomed.close()
			}

			plan := &chaos.Plan{Name: "sse-drill", Seed: 7, Events: []chaos.Event{
				{At: 10 * time.Millisecond, Fault: chaos.FaultDrop, Topic: "digibox/#", Rate: 1, For: 40 * time.Millisecond},
				{At: 20 * time.Millisecond, Fault: chaos.FaultDropout, Digi: "O1", For: 60 * time.Millisecond},
			}}
			done := make(chan *chaos.Report, 1)
			go func() {
				rep, err := cli.ChaosRun(plan)
				if err != nil {
					t.Errorf("chaos run: %v", err)
				}
				done <- rep
			}()

			var got []string
			killed := tc.killAfter == 0
			for len(got) < len(wantOrder) {
				ev := live.next(t)
				if ev.name != "fault" {
					continue
				}
				got = append(got, faultKey(t, ev))
				if !killed && len(got) >= tc.killAfter {
					doomed.close()
					killed = true
				}
			}
			for i, want := range wantOrder {
				if got[i] != want {
					t.Fatalf("fault order = %v, want %v", got, wantOrder)
				}
			}

			select {
			case rep := <-done:
				if rep == nil || rep.Injected != 2 || rep.Reverted != 2 {
					t.Fatalf("report = %+v, want 2 injected / 2 reverted", rep)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("chaos run did not complete — a dead SSE consumer blocked a publisher")
			}

			// The killed consumer must be detached; the live one stays.
			deadline := time.Now().Add(5 * time.Second)
			for tb.Bus.Subscribers() != 1 {
				if time.Now().After(deadline) {
					t.Fatalf("subscribers = %d, want 1 after kill", tb.Bus.Subscribers())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// stalledSSE opens /ctl/events over a raw TCP connection, reads just
// past the hello event, then never reads again — a genuinely wedged
// consumer whose socket and 1-slot bus buffer both fill. (The normal
// openSSE helper drains the body in the background, which would keep
// the handler unblocked.)
func stalledSSE(t *testing.T, base, query string) net.Conn {
	t.Helper()
	addr := strings.TrimPrefix(base, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /ctl/events%s HTTP/1.1\r\nHost: %s\r\n\r\n", query, addr)
	var got []byte
	buf := make([]byte, 512)
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(string(got), "event: hello") {
		conn.SetReadDeadline(deadline)
		n, err := conn.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			t.Fatalf("reading hello: %v (got %q)", err, got)
		}
	}
	return conn
}

// TestEventsSSEShedsSlowConsumer stalls one subscriber (buffer=1,
// never read past the hello) while a live one consumes everything,
// then floods the bus with more bytes than any socket buffer holds.
// The flood must complete immediately (publishes never block), the
// live consumer must see every event in order, and the stalled
// consumer's overflow must surface in the dropped counter — the
// bounded-bus contract, observed through HTTP only.
func TestEventsSSEShedsSlowConsumer(t *testing.T) {
	const n = 2000
	tb, cli := startServer(t, "")

	live := openSSE(t, cli.Base, fmt.Sprintf("?kind=tick&buffer=%d&max=%d", 2*n, n))
	defer live.close()
	slow := stalledSSE(t, cli.Base, "?kind=tick&buffer=1")
	defer slow.Close()

	// 2000 × 8 KiB ≫ any loopback socket capacity: the stalled
	// handler must wedge mid-write, so its 1-slot buffer overflows
	// and the bus sheds for that subscriber alone.
	pad := strings.Repeat("x", 8192)
	start := time.Now()
	for i := 0; i < n; i++ {
		tb.Bus.Publish("tick", map[string]any{"i": i, "pad": pad})
	}
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("publishing %d events took %v — a stalled subscriber blocked the bus", n, elapsed)
	}

	for i := 0; i < n; i++ {
		ev := live.next(t)
		if ev.name == "hello" {
			i--
			continue
		}
		if ev.name != "tick" {
			t.Fatalf("event %d: kind %q", i, ev.name)
		}
		inner, _ := ev.data["data"].(map[string]any)
		if got := inner["i"].(float64); int(got) != i {
			t.Fatalf("live consumer saw i=%v at position %d — shed or reordered", got, i)
		}
	}

	if dropped := tb.Obs.Value("digibox_events_dropped_total"); dropped == 0 {
		t.Fatal("dropped counter is zero — the stalled consumer never shed")
	}
}
