package ctl

import (
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// This file exposes the testbed's metrics registry over the control
// API: GET /ctl/metrics serves the Prometheus text exposition format
// (scrapeable by stock tooling), GET /ctl/metrics.json serves the
// structured snapshot that dbox top renders.

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.TB.Obs == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("metrics disabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.TB.Obs.WriteText(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.TB.Obs == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("metrics disabled"))
		return
	}
	writeJSON(w, http.StatusOK, s.TB.Obs.Snapshot())
}

// MetricsText fetches the Prometheus text exposition.
func (c *Client) MetricsText() (string, error) {
	var raw []byte
	if err := c.get("/ctl/metrics", &raw); err != nil {
		return "", err
	}
	return string(raw), nil
}

// Metrics fetches the structured metrics snapshot.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := c.get("/ctl/metrics.json", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
