package ctl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/scene"
)

// startMetricsServer is startServer with the full observability stack:
// the runtime publishes over a real MQTT session and the wildcard
// observer closes delivery spans, so e2e latency histograms fill.
func startMetricsServer(t *testing.T) (*core.Testbed, *Client) {
	t.Helper()
	tb, err := core.New(core.Options{RuntimeMQTT: true, Observer: true})
	if err != nil {
		t.Fatal(err)
	}
	// The ensembles here publish a handful of messages; trace every one
	// instead of the production 1-in-8 sample so spans close promptly.
	tb.Tracer.SetSampleInterval(1)
	if err := device.RegisterAll(tb.Registry); err != nil {
		t.Fatal(err)
	}
	if err := scene.RegisterAll(tb.Registry); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Stop)
	srv := &Server{TB: tb}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return tb, &Client{Base: "http://" + srv.Addr()}
}

// sampleValue returns the first sample matching name, ok=false if
// absent.
func sampleValue(samples []obs.Sample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// TestMetricsExposition scrapes /ctl/metrics before and after a chaos
// drill: the text must parse back, families must span all four
// instrumented layers, and counters must be monotone across the drill.
func TestMetricsExposition(t *testing.T) {
	_, cli := startMetricsServer(t)
	if err := cli.Run("Occupancy", "O1",
		map[string]any{"interval_ms": int64(50), "trigger_prob": 1.0}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Run("Lamp", "L1", nil); err != nil {
		t.Fatal(err)
	}

	// Let the sensor publish a few status messages.
	deadline := time.Now().Add(10 * time.Second)
	var before []obs.Sample
	for {
		text, err := cli.MetricsText()
		if err != nil {
			t.Fatal(err)
		}
		before, _, err = obs.ParseText(text)
		if err != nil {
			t.Fatalf("scrape did not parse: %v", err)
		}
		if v, _ := sampleValue(before, "digibox_broker_publishes_total"); v >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no broker publishes observed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A short drill: drop the runtime session and half the traffic.
	rep, err := cli.ChaosRun(&chaos.Plan{
		Name: "scrape-drill",
		Seed: 7,
		Events: []chaos.Event{
			{At: 10 * time.Millisecond, Fault: chaos.FaultDisconnect, Client: "digi-runtime"},
			{At: 20 * time.Millisecond, Fault: chaos.FaultDrop, Topic: "digibox/#",
				Rate: 0.5, For: 200 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 2 {
		t.Fatalf("injected = %d, want 2", rep.Injected)
	}

	text, err := cli.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	after, families, err := obs.ParseText(text)
	if err != nil {
		t.Fatalf("scrape did not parse: %v", err)
	}
	if len(families) < 12 {
		t.Fatalf("family count = %d, want >= 12:\n%s", len(families), strings.Join(families, "\n"))
	}
	layers := map[string]bool{}
	for _, f := range families {
		for _, prefix := range []string{"digibox_broker_", "digibox_kube_", "digibox_digi_", "digibox_faults_", "digibox_e2e_"} {
			if strings.HasPrefix(f, prefix) {
				layers[prefix] = true
			}
		}
	}
	for _, prefix := range []string{"digibox_broker_", "digibox_kube_", "digibox_digi_", "digibox_faults_", "digibox_e2e_"} {
		if !layers[prefix] {
			t.Errorf("no family from layer %s*:\n%s", prefix, strings.Join(families, "\n"))
		}
	}

	// Counters must be monotone across the drill, and the drill itself
	// must have moved the fault counters.
	for _, name := range []string{
		"digibox_broker_publishes_total",
		"digibox_broker_deliveries_total",
		"digibox_kube_pods_created_total",
	} {
		b, okB := sampleValue(before, name)
		a, okA := sampleValue(after, name)
		if !okB || !okA {
			t.Errorf("%s missing from scrape (before=%v after=%v)", name, okB, okA)
			continue
		}
		if a < b {
			t.Errorf("%s went backwards: %v -> %v", name, b, a)
		}
	}
	injected := 0.0
	for _, s := range after {
		if s.Name == obs.FaultsInjectedName {
			injected += s.Value
		}
	}
	if injected < 2 {
		t.Errorf("faults injected = %v, want >= 2", injected)
	}
}

// TestMetricsJSON checks the structured endpoint renders the same
// registry, with quantiles precomputed on histograms.
func TestMetricsJSON(t *testing.T) {
	_, cli := startMetricsServer(t)
	if err := cli.Run("Occupancy", "O1",
		map[string]any{"interval_ms": int64(50), "trigger_prob": 1.0}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := cli.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if fs := snap.Family("digibox_e2e_latency_seconds"); fs != nil && len(fs.Metrics) > 0 {
			m := fs.Metrics[0]
			if m.Count == 0 || m.P50 <= 0 || m.P99 < m.P50 {
				t.Fatalf("e2e latency quantiles: %+v", m)
			}
			if snap.Family("digibox_broker_publishes_total") == nil {
				t.Fatal("broker family missing from JSON snapshot")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no e2e spans completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMetricsDisabled: with DisableMetrics the endpoints 404.
func TestMetricsDisabled(t *testing.T) {
	tb, err := core.New(core.Options{DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Stop)
	srv := &Server{TB: tb}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := &Client{Base: "http://" + srv.Addr()}
	if _, err := cli.MetricsText(); err == nil {
		t.Error("metrics served with DisableMetrics")
	}
	if _, err := cli.Metrics(); err == nil {
		t.Error("metrics.json served with DisableMetrics")
	}
}
