package ctl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/replay"
)

func recordScenario() *replay.Scenario {
	return &replay.Scenario{
		Name:     "ctl-record",
		Duration: 300 * time.Millisecond,
		Digis: []replay.Digi{
			{Type: "Occupancy", Name: "O1",
				Config: map[string]any{"interval_ms": int64(50), "trigger_prob": 1.0, "seed": int64(3)}},
			{Type: "Lamp", Name: "L1"},
			{Type: "Room", Name: "MeetingRoom",
				Config: map[string]any{"managed": false},
				Attach: []string{"O1", "L1"}},
		},
	}
}

func TestRecordOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	sc := recordScenario()
	resp, err := cli.Record(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scenario != "ctl-record" || resp.Records == 0 {
		t.Fatalf("resp = %+v", resp)
	}
	if !strings.HasPrefix(resp.Digest, "sha256:") {
		t.Fatalf("digest = %q", resp.Digest)
	}
	if len(resp.Archive) == 0 {
		t.Fatal("archive requested but empty")
	}
	// The returned archive must parse and carry the same digest.
	ar, err := replay.ParseArchiveBytes(resp.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Digest != resp.Digest {
		t.Fatalf("archive digest %s != response digest %s", ar.Digest, resp.Digest)
	}

	// Without the archive flag, no payload rides along.
	lean, err := cli.Record(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.Archive) != 0 {
		t.Fatal("archive returned without being requested")
	}
	if lean.Digest != resp.Digest {
		t.Fatalf("recording is nondeterministic across requests: %s vs %s", lean.Digest, resp.Digest)
	}
}

func TestReplayScenarioOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	sc := recordScenario()
	rec, err := cli.Record(sc, false)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := cli.ReplayScenario(sc, rec.Digest, true)
	if err != nil {
		t.Fatalf("verify replay failed: %v", err)
	}
	if rep.Digest != rec.Digest {
		t.Fatalf("replay digest %s != recorded %s", rep.Digest, rec.Digest)
	}

	// A wrong expected digest must fail the verify form.
	if _, err := cli.ReplayScenario(sc, "sha256:"+strings.Repeat("0", 64), true); err == nil {
		t.Fatal("verify accepted a wrong digest")
	}
	// Verify without a digest is an error, not a silent pass.
	if _, err := cli.ReplayScenario(sc, "", true); err == nil {
		t.Fatal("verify accepted an empty digest")
	}
	// Non-verify replay just re-executes and reports.
	free, err := cli.ReplayScenario(sc, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if free.Digest != rec.Digest {
		t.Fatalf("free replay diverged: %s vs %s", free.Digest, rec.Digest)
	}
}

func TestRecordRejectsBadScenario(t *testing.T) {
	_, cli := startServer(t, "")
	// Unknown kind fails validation inside the engine.
	bad := &replay.Scenario{
		Name:     "bad",
		Duration: 100 * time.Millisecond,
		Digis:    []replay.Digi{{Type: "NoSuchKind", Name: "X"}},
	}
	if _, err := cli.Record(bad, false); err == nil {
		t.Fatal("record accepted an unknown kind")
	}
	// A scenario without digis fails Validate.
	if _, err := cli.Record(&replay.Scenario{Name: "empty", Duration: time.Second}, false); err == nil {
		t.Fatal("record accepted an empty scenario")
	}
}
