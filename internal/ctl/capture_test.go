package ctl

import (
	"testing"
)

// TestCaptureOverHTTP drives a swarm-fed capture through the control
// API: the fitted profile must round-trip the wire encoding, commit
// into the daemon's repository when asked, and replay back into a
// profiled swarm request.
func TestCaptureOverHTTP(t *testing.T) {
	tb, cli := startServer(t, "")
	p, resp, err := cli.Capture(CaptureRequest{
		Name:   "wired",
		Seed:   5,
		Commit: true,
		Swarm: &SwarmRequest{
			Profile:     "closed",
			Devices:     10,
			PeriodSec:   0.05,
			DurationSec: 0.5,
			Workers:     2,
			QoS:         1,
			Subscribers: 1,
			Shards:      1,
			Seed:        5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Messages == 0 || resp.Report == nil {
		t.Fatalf("capture response = %+v, want messages and a swarm report", resp)
	}
	if p.Name != "wired" || len(p.Populations) == 0 {
		t.Fatalf("profile = %+v, want fitted populations named wired", p)
	}
	if resp.Version != "v1" {
		t.Fatalf("commit version = %q, want v1", resp.Version)
	}
	// The commit landed in the daemon's profiles class.
	committed, err := tb.GetProfile("wired", "")
	if err != nil {
		t.Fatal(err)
	}
	if committed.Name != "wired" {
		t.Fatalf("committed profile name = %q", committed.Name)
	}

	// The captured profile drives a profiled run over the same API.
	rep, err := cli.Swarm(SwarmRequest{
		DurationSec:   0.3,
		Workers:       2,
		QoS:           1,
		Subscribers:   1,
		Shards:        1,
		Seed:          5,
		DeviceProfile: p.Value(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile != "profiled" || rep.ProfileName != "wired" {
		t.Fatalf("report profile = %q/%q, want profiled/wired", rep.Profile, rep.ProfileName)
	}
	if rep.Published == 0 || rep.Lost != 0 {
		t.Fatalf("published %d lost %d, want traffic with no loss", rep.Published, rep.Lost)
	}

	// A malformed device_profile is a 400, not a panic.
	if _, err := cli.Swarm(SwarmRequest{DeviceProfile: "nonsense", DurationSec: 0.1}); err == nil {
		t.Fatal("malformed device_profile accepted")
	}
}
