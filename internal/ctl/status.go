package ctl

import (
	"net/http"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
)

// startedAt formats the testbed start time for probe/status bodies
// ("" before Start).
func startedAt(tb *core.Testbed) string {
	at := tb.StartedAt()
	if at.IsZero() {
		return ""
	}
	return at.UTC().Format(time.RFC3339Nano)
}

// handleStatus is the dashboard's one-document view of the fleet:
// scene topology from the attach graph, kube pod phases, swarm shard
// health, chaos progress, and uptime/build info — everything the
// dashboard renders, in one GET.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	tb := s.TB
	st := tb.Stats()

	// Topology: one node per model, one edge per attach entry.
	type topoNode struct {
		Name  string `json:"name"`
		Type  string `json:"type"`
		Scene bool   `json:"scene"`
	}
	type topoEdge struct {
		Parent string `json:"parent"`
		Child  string `json:"child"`
	}
	var nodes []topoNode
	var edges []topoEdge
	for _, name := range tb.Names() {
		doc, _, ok := tb.Store.Get(name)
		if !ok {
			continue
		}
		scene := false
		if k, ok := tb.Registry.Get(doc.Type()); ok {
			scene = k.Scene()
		}
		nodes = append(nodes, topoNode{Name: name, Type: doc.Type(), Scene: scene})
		for _, child := range doc.Attach() {
			edges = append(edges, topoEdge{Parent: name, Child: child})
		}
	}

	type podRow struct {
		Name     string `json:"name"`
		Phase    string `json:"phase"`
		Node     string `json:"node,omitempty"`
		Restarts int    `json:"restarts,omitempty"`
	}
	var pods []podRow
	for _, p := range tb.Cluster.ListPods() {
		pods = append(pods, podRow{
			Name:     p.Name,
			Phase:    string(p.Status.Phase),
			Node:     p.Status.NodeName,
			Restarts: p.Status.Restarts,
		})
	}
	sort.Slice(pods, func(i, j int) bool { return pods[i].Name < pods[j].Name })

	vals := tb.Obs.Values()
	shards, down := tb.SwarmHealth()
	if down == nil {
		down = []int{}
	}
	latency, _ := tb.Obs.LatencyClasses()

	body := map[string]any{
		"version":    tb.Version,
		"started_at": startedAt(tb),
		"uptime_sec": tb.Uptime().Seconds(),
		"time_scale": clock.FormatSpeed(tb.TimeScale()),

		"models":       st.Models,
		"pods_running": st.PodsRunning,
		"pods_pending": st.PodsPending,
		"violations":   st.Violations,
		"trace_len":    st.TraceLen,
		"broker_addr":  tb.BrokerAddr(),
		"rest_addr":    tb.RESTAddr(),

		"topology": map[string]any{"nodes": nodes, "edges": edges},
		"pods":     pods,
		"swarm": map[string]any{
			"shards":    shards,
			"down":      down,
			"failovers": vals["digibox_swarm_failovers_total"],
			"shed":      vals["digibox_swarm_shed_total"],
			"publishes": vals["digibox_swarm_publishes_total"],
			"stats":     tb.SwarmStats(),
		},
		"chaos": map[string]any{
			"injected":  vals[obs.FaultsInjectedName],
			"recovered": vals[obs.FaultsRecoveredName],
		},
		"events": map[string]any{
			"published":   vals["digibox_events_published_total"],
			"dropped":     vals["digibox_events_dropped_total"],
			"subscribers": tb.Bus.Subscribers(),
		},
		"latency": latency,
	}
	// Timewarp: scenario-time vs wall-time of the active (or most
	// recent) time-compressed scenario run, when there has been one.
	if ts := tb.ScenarioStatus(); ts != nil {
		body["timewarp"] = ts
	}
	writeJSON(w, http.StatusOK, body)
}
