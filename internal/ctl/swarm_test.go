package ctl

import (
	"testing"
)

// TestSwarmOverHTTP drives a short closed-loop swarm run through the
// control API and checks the report round-trips with exact accounting.
func TestSwarmOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	rep, err := cli.Swarm(SwarmRequest{
		Profile:     "closed",
		Devices:     30,
		PeriodSec:   0.05,
		DurationSec: 0.2,
		Workers:     2,
		QoS:         1,
		Subscribers: 2,
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published < 30 {
		t.Fatalf("published %d, want at least one fleet cycle (30)", rep.Published)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d of %d expected deliveries", rep.Lost, rep.Expected)
	}
	if rep.Shards != 2 {
		t.Fatalf("shards = %d, want 2", rep.Shards)
	}
	if len(rep.Placements) != 2 {
		t.Fatalf("placements = %v, want both worker pods", rep.Placements)
	}
}

// TestSwarmRejectsBadSpec pins error propagation over HTTP.
func TestSwarmRejectsBadSpec(t *testing.T) {
	_, cli := startServer(t, "")
	if _, err := cli.Swarm(SwarmRequest{Profile: "sideways"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}
