package ctl

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestSwarmOverHTTP drives a short closed-loop swarm run through the
// control API and checks the report round-trips with exact accounting.
func TestSwarmOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	rep, err := cli.Swarm(SwarmRequest{
		Profile:     "closed",
		Devices:     30,
		PeriodSec:   0.05,
		DurationSec: 0.2,
		Workers:     2,
		QoS:         1,
		Subscribers: 2,
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published < 30 {
		t.Fatalf("published %d, want at least one fleet cycle (30)", rep.Published)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d of %d expected deliveries", rep.Lost, rep.Expected)
	}
	if rep.Shards != 2 {
		t.Fatalf("shards = %d, want 2", rep.Shards)
	}
	if len(rep.Placements) != 2 {
		t.Fatalf("placements = %v, want both worker pods", rep.Placements)
	}
}

// TestHealthzReadyzOverHTTP pins the probe endpoints: /healthz is
// liveness and always answers 200 while the daemon serves; /readyz
// tracks swarm shard health — 200 when no shard is down, 503 naming
// the down shards while a killed shard stays dead mid-run, and 200
// again once the run ends.
func TestHealthzReadyzOverHTTP(t *testing.T) {
	_, cli := startServer(t, "")
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(cli.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Idle daemon: live and trivially ready. Both probes are JSON and
	// carry the build version plus the start timestamp.
	code, body := get("/healthz")
	var health struct {
		OK        bool   `json:"ok"`
		Version   string `json:"version"`
		StartedAt string `json:"started_at"`
	}
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d (%s), want 200", code, body)
	}
	if err := json.Unmarshal(body, &health); err != nil || !health.OK {
		t.Fatalf("GET /healthz body = %s (err %v), want ok:true", body, err)
	}
	if health.Version == "" || health.StartedAt == "" {
		t.Fatalf("GET /healthz body = %s, want version and started_at", body)
	}
	code, body = get("/readyz")
	if code != http.StatusOK {
		t.Fatalf("GET /readyz idle = %d (%s), want 200", code, body)
	}
	var ready struct {
		Ready     bool   `json:"ready"`
		Shards    int    `json:"shards"`
		Down      []int  `json:"down"`
		Version   string `json:"version"`
		StartedAt string `json:"started_at"`
	}
	if err := json.Unmarshal(body, &ready); err != nil || !ready.Ready {
		t.Fatalf("GET /readyz idle body = %s (err %v), want ready:true", body, err)
	}
	if ready.Version != health.Version || ready.StartedAt != health.StartedAt {
		t.Fatalf("probe build info disagrees: healthz %s vs readyz %s", body, body)
	}

	// A swarm run that loses shard 1 at 100ms and never revives it:
	// readiness must degrade to 503 for the rest of the run.
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		_, runErr = cli.Swarm(SwarmRequest{
			Profile:     "open",
			Devices:     40,
			Rate:        1500,
			DurationSec: 1.2,
			Workers:     2,
			QoS:         1,
			Subscribers: 1,
			Shards:      2,
			Kills:       []SwarmKill{{Shard: 1, AtSec: 0.1}},
		})
	}()
	sawDegraded := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := get("/readyz")
		if code == http.StatusServiceUnavailable {
			if err := json.Unmarshal(body, &ready); err != nil {
				t.Fatalf("degraded /readyz body %s: %v", body, err)
			}
			if ready.Ready || ready.Shards != 2 || len(ready.Down) != 1 || ready.Down[0] != 1 {
				t.Fatalf("degraded /readyz body = %s, want ready:false shards:2 down:[1]", body)
			}
			sawDegraded = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDegraded {
		t.Fatal("readyz never reported the killed shard")
	}
	// Liveness is unaffected by a dead shard.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("GET /healthz during degraded run = %d, want 200", code)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("swarm run failed: %v", runErr)
	}
	// The run is over: no active pool, trivially ready again.
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("GET /readyz after run = %d (%s), want 200", code, body)
	}
}

// TestSwarmRejectsBadSpec pins error propagation over HTTP.
func TestSwarmRejectsBadSpec(t *testing.T) {
	_, cli := startServer(t, "")
	if _, err := cli.Swarm(SwarmRequest{Profile: "sideways"}); err == nil {
		t.Fatal("bogus profile accepted")
	}
}
