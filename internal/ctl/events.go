package ctl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// handleEvents streams the testbed's fan-out event bus as Server-Sent
// Events: one SSE message per bus event, `event:` set to the bus kind
// ("fault", "shard", "pod", "client", "metrics", "latency"), `id:` to
// the bus sequence number, and `data:` to the event JSON. The stream
// opens with a "hello" message carrying build/uptime info.
//
// Query parameters:
//
//	kind=a,b  only stream the named kinds
//	max=N     close after N events (poll-style consumption, tests)
//	buffer=N  subscriber buffer size (default 256; the bus sheds
//	          events for this subscriber when the buffer is full and
//	          counts them in digibox_events_dropped_total)
//
// A slow consumer never blocks a publisher: shedding is per-subscriber
// and the dropped counter is the only evidence other consumers see.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.TB.Bus == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("event bus disabled (metrics off)"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	q := r.URL.Query()
	maxEvents := 0
	if v, err := strconv.Atoi(q.Get("max")); err == nil && v > 0 {
		maxEvents = v
	}
	buffer := 256
	if v, err := strconv.Atoi(q.Get("buffer")); err == nil && v > 0 {
		buffer = v
	}
	var kinds map[string]bool
	if raw := q.Get("kind"); raw != "" {
		kinds = map[string]bool{}
		for _, k := range strings.Split(raw, ",") {
			kinds[strings.TrimSpace(k)] = true
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sub := s.TB.Bus.Subscribe(buffer)
	defer sub.Close()

	hello, _ := json.Marshal(map[string]any{
		"version":    s.TB.Version,
		"started_at": startedAt(s.TB),
	})
	fmt.Fprintf(w, "event: hello\ndata: %s\n\n", hello)
	flusher.Flush()

	sent := 0
	for {
		select {
		case ev, open := <-sub.C():
			if !open {
				return
			}
			if kinds != nil && !kinds[ev.Kind] {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return
			}
			flusher.Flush()
			sent++
			if maxEvents > 0 && sent >= maxEvents {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
