package ctl

import (
	"fmt"
	"net/http"
	"os"
	"testing"

	"repro/internal/vet/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine (an SSE
// handler that outlives its client, a watcher left open). Idle
// keep-alive connections in the default transport are flushed first —
// their readLoops are pool residents, not leaks.
func TestMain(m *testing.M) {
	baseline := leakcheck.Baseline()
	code := m.Run()
	if code != 0 {
		os.Exit(code)
	}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	if err := leakcheck.Check(baseline); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}
