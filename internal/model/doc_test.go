package model

import (
	"reflect"
	"testing"
)

func lampDoc() Doc {
	d := Doc{}
	d.SetMeta(Meta{Type: "Lamp", Version: "v1", Name: "L1", Managed: true})
	d.Set("power", map[string]any{"intent": "on", "status": "on"})
	d.Set("intensity", map[string]any{"intent": 0.2, "status": 0.4})
	return d
}

func TestMetaRoundTrip(t *testing.T) {
	d := Doc{}
	in := Meta{
		Type: "Room", Version: "v2", Name: "MeetingRoom", Managed: true,
		Attach: []string{"L1", "O1"},
		Config: map[string]any{"interval_ms": int64(100)},
	}
	d.SetMeta(in)
	out, err := d.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Version != in.Version || out.Name != in.Name || out.Managed != in.Managed {
		t.Errorf("meta mismatch: %+v vs %+v", out, in)
	}
	if !reflect.DeepEqual(out.Attach, in.Attach) {
		t.Errorf("attach = %v", out.Attach)
	}
	if out.Config["interval_ms"] != int64(100) {
		t.Errorf("config = %v", out.Config)
	}
}

func TestMetaErrors(t *testing.T) {
	if _, err := (Doc{}).Meta(); err == nil {
		t.Error("missing meta should error")
	}
	d := Doc{"meta": map[string]any{"name": "x"}}
	if _, err := d.Meta(); err == nil {
		t.Error("missing type should error")
	}
	d = Doc{"meta": map[string]any{"type": "Lamp"}}
	if _, err := d.Meta(); err == nil {
		t.Error("missing name should error")
	}
}

func TestGetSetDottedPaths(t *testing.T) {
	d := lampDoc()
	if v, ok := d.Get("power.intent"); !ok || v != "on" {
		t.Errorf("power.intent = %v, %v", v, ok)
	}
	if v, ok := d.Get("intensity.status"); !ok || v != 0.4 {
		t.Errorf("intensity.status = %v, %v", v, ok)
	}
	if _, ok := d.Get("power.unknown"); ok {
		t.Error("nonexistent path should report !ok")
	}
	if _, ok := d.Get("power.intent.too.deep"); ok {
		t.Error("path through scalar should report !ok")
	}
	d.Set("a.b.c", 7)
	if v, _ := d.Get("a.b.c"); v != int64(7) {
		t.Errorf("a.b.c = %v (want normalized int64)", v)
	}
	if !d.Delete("a.b.c") {
		t.Error("delete existing path should return true")
	}
	if d.Delete("a.b.c") {
		t.Error("delete missing path should return false")
	}
}

func TestIntentStatusHelpers(t *testing.T) {
	d := lampDoc()
	d.SetIntent("power", "off")
	if v, _ := d.Intent("power"); v != "off" {
		t.Errorf("intent = %v", v)
	}
	if v, _ := d.Status("power"); v != "on" {
		t.Errorf("status should be untouched, got %v", v)
	}
	d.SetStatus("power", "off")
	if v, _ := d.Status("power"); v != "off" {
		t.Errorf("status = %v", v)
	}
}

func TestTypedGetters(t *testing.T) {
	d := Doc{"s": "x", "b": true, "i": int64(3), "f": 2.5, "fi": float64(4)}
	if d.GetString("s") != "x" || d.GetString("missing") != "" || d.GetString("i") != "" {
		t.Error("GetString misbehaves")
	}
	if !d.GetBool("b") || d.GetBool("s") {
		t.Error("GetBool misbehaves")
	}
	if n, ok := d.GetInt("i"); !ok || n != 3 {
		t.Error("GetInt int64")
	}
	if n, ok := d.GetInt("fi"); !ok || n != 4 {
		t.Error("GetInt float64 conversion")
	}
	if _, ok := d.GetInt("s"); ok {
		t.Error("GetInt on string should fail")
	}
	if f, ok := d.GetFloat("f"); !ok || f != 2.5 {
		t.Error("GetFloat")
	}
	if f, ok := d.GetFloat("i"); !ok || f != 3 {
		t.Error("GetFloat int conversion")
	}
}

func TestDeepCopyIndependence(t *testing.T) {
	d := lampDoc()
	c := d.DeepCopy()
	c.Set("power.status", "off")
	c.Set("meta.name", "L2")
	if v, _ := d.Get("power.status"); v != "on" {
		t.Error("mutating copy changed original nested map")
	}
	if d.Name() != "L1" {
		t.Error("mutating copy changed original meta")
	}
}

func TestMergeSemantics(t *testing.T) {
	d := lampDoc()
	d.Merge(map[string]any{
		"power":     map[string]any{"intent": "off"},
		"new_field": int64(1),
		"intensity": nil, // deletion
	})
	if v, _ := d.Get("power.intent"); v != "off" {
		t.Errorf("merge should set nested, got %v", v)
	}
	if v, _ := d.Get("power.status"); v != "on" {
		t.Errorf("merge should preserve sibling, got %v", v)
	}
	if _, ok := d.Get("intensity"); ok {
		t.Error("nil patch value should delete the key")
	}
	if v, _ := d.Get("new_field"); v != int64(1) {
		t.Errorf("new_field = %v", v)
	}
}

func TestMergeCopiesPatch(t *testing.T) {
	d := Doc{}
	inner := map[string]any{"a": int64(1)}
	d.Merge(map[string]any{"nested": inner})
	inner["a"] = int64(99)
	if v, _ := d.Get("nested.a"); v != int64(1) {
		t.Errorf("merge must deep-copy patch values, got %v", v)
	}
}

func TestEqualNumericTolerance(t *testing.T) {
	a := Doc{"x": int64(2)}
	b := Doc{"x": float64(2)}
	if !Equal(a, b) {
		t.Error("2 (int) and 2.0 (float) should compare equal")
	}
	if Equal(Doc{"x": int64(2)}, Doc{"x": int64(3)}) {
		t.Error("different values equal")
	}
	if Equal(Doc{"x": int64(2)}, Doc{"x": int64(2), "y": int64(1)}) {
		t.Error("extra key should break equality")
	}
}

func TestDiffAndApplyChanges(t *testing.T) {
	old := lampDoc()
	new := old.DeepCopy()
	new.Set("power.status", "off")
	new.Set("brightness", 0.7)
	new.Delete("intensity")

	changes := Diff(old, new)
	if len(changes) != 3 {
		t.Fatalf("got %d changes: %v", len(changes), changes)
	}
	byPath := map[string]Change{}
	for _, c := range changes {
		byPath[c.Path] = c
	}
	if c := byPath["power.status"]; c.Op != OpSet || c.Old != "on" || c.New != "off" {
		t.Errorf("power.status change = %+v", c)
	}
	if c := byPath["brightness"]; c.Op != OpSet || c.New != 0.7 {
		t.Errorf("brightness change = %+v", c)
	}
	if c := byPath["intensity"]; c.Op != OpDelete {
		t.Errorf("intensity change = %+v", c)
	}

	replayed := old.DeepCopy()
	replayed.ApplyChanges(changes)
	if !Equal(replayed, new) {
		t.Errorf("ApplyChanges(Diff(a,b)) != b:\n%v\nvs\n%v", replayed, new)
	}
}

func TestDiffDeterministicOrder(t *testing.T) {
	old := Doc{}
	new := Doc{"b": int64(1), "a": int64(2), "c": map[string]any{"z": int64(1), "y": int64(2)}}
	c1 := Diff(old, new)
	c2 := Diff(old, new)
	if !reflect.DeepEqual(c1, c2) {
		t.Error("diff not deterministic")
	}
	for i := 1; i < len(c1); i++ {
		if c1[i-1].Path >= c1[i].Path {
			t.Errorf("paths not sorted: %v", c1)
		}
	}
}

func TestDiffNoChanges(t *testing.T) {
	d := lampDoc()
	if c := Diff(d, d.DeepCopy()); len(c) != 0 {
		t.Errorf("diff of identical docs = %v", c)
	}
}

func TestPathsUnder(t *testing.T) {
	changes := []Change{
		{Path: "power.status"},
		{Path: "power.intent"},
		{Path: "powerful"},
		{Path: "power"},
	}
	got := PathsUnder(changes, "power")
	if len(got) != 3 {
		t.Errorf("PathsUnder = %v", got)
	}
}

func TestChangeString(t *testing.T) {
	set := Change{Op: OpSet, Path: "a.b", New: 5}
	del := Change{Op: OpDelete, Path: "a.b", Old: 4}
	if set.String() == "" || del.String() == "" {
		t.Error("Change.String should be non-empty")
	}
}

func TestParseDocEncode(t *testing.T) {
	src := `meta:
  managed: true
  name: L1
  type: Lamp
power:
  intent: "on"
  status: "off"
`
	d, err := ParseDoc([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "L1" || d.Type() != "Lamp" || !d.Managed() {
		t.Errorf("parsed doc wrong: %v", d)
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDoc(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, back) {
		t.Errorf("encode/parse round trip failed:\n%s", enc)
	}
}

func TestParseDocs(t *testing.T) {
	docs, err := ParseDocs([]byte("meta: {type: A, name: a}\n---\nmeta: {type: B, name: b}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].Type() != "A" || docs[1].Type() != "B" {
		t.Fatalf("docs = %v", docs)
	}
	if _, err := ParseDocs([]byte("- just\n- a\n- list\n")); err == nil {
		t.Error("non-mapping document should error")
	}
}

func TestAttachAccessor(t *testing.T) {
	d := Doc{}
	d.SetMeta(Meta{Type: "Room", Name: "R", Attach: []string{"L1", "O1"}})
	if got := d.Attach(); !reflect.DeepEqual(got, []string{"L1", "O1"}) {
		t.Errorf("attach = %v", got)
	}
	// Mutating the returned slice must not affect the doc.
	d.Attach()[0] = "X"
	if d.Attach()[0] != "L1" {
		t.Error("Attach must return a copy")
	}
}
