package model

import (
	"strings"
	"testing"
)

func lampSchema() *Schema {
	return &Schema{
		Type: "Lamp", Version: "v1",
		Doc: "A dimmable smart lamp.",
		Fields: map[string]FieldSpec{
			"power": {Kind: KindIntent, ElemKind: KindString, Enum: []string{"on", "off"}, Default: "off"},
			"intensity": {Kind: KindIntent, ElemKind: KindFloat,
				Min: Bound(0), Max: Bound(1), Default: 0.0},
			"watts": {Kind: KindInt, Min: Bound(0), Max: Bound(200), Default: int64(9)},
			"label": {Kind: KindString, Default: ""},
			"dim":   {Kind: KindBool, Default: false},
		},
	}
}

func TestSchemaNewAppliesDefaults(t *testing.T) {
	s := lampSchema()
	d := s.New("L1")
	if d.Name() != "L1" || d.Type() != "Lamp" || !d.Managed() {
		t.Fatalf("bad meta: %v", d)
	}
	if v, _ := d.Intent("power"); v != "off" {
		t.Errorf("power.intent default = %v", v)
	}
	if v, _ := d.Status("intensity"); v != float64(0) {
		t.Errorf("intensity.status default = %v (%T)", v, v)
	}
	if v, _ := d.GetInt("watts"); v != 9 {
		t.Errorf("watts default = %v", v)
	}
	if err := s.Validate(d); err != nil {
		t.Errorf("freshly minted doc invalid: %v", err)
	}
}

func TestSchemaValidateRejects(t *testing.T) {
	s := lampSchema()
	cases := []struct {
		name   string
		mutate func(Doc)
		want   string
	}{
		{"unknown field", func(d Doc) { d.Set("bogus", 1) }, "unknown field"},
		{"enum violation", func(d Doc) { d.SetStatus("power", "dim") }, "not in"},
		{"bounds", func(d Doc) { d.SetIntent("intensity", 1.5) }, "above maximum"},
		{"below min", func(d Doc) { d.Set("watts", int64(-1)) }, "below minimum"},
		{"wrong type", func(d Doc) { d.Set("dim", "yes") }, "want bool"},
		{"intent not map", func(d Doc) { d.Set("power", "on") }, "want {intent, status}"},
		{"intent missing half", func(d Doc) { d.Delete("power.status") }, "missing status"},
		{"intent extra key", func(d Doc) { d.Set("power.extra", 1) }, "unexpected key"},
	}
	for _, c := range cases {
		d := s.New("L1")
		c.mutate(d)
		err := s.Validate(d)
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestSchemaValidateTypeMismatch(t *testing.T) {
	s := lampSchema()
	d := Doc{}
	d.SetMeta(Meta{Type: "Fan", Name: "F1"})
	if err := s.Validate(d); err == nil {
		t.Error("wrong meta.type should fail validation")
	}
}

func TestSchemaValidateMissingRequired(t *testing.T) {
	s := &Schema{
		Type: "Probe", Version: "v1",
		Fields: map[string]FieldSpec{
			"serial": {Kind: KindString}, // no default -> required
		},
	}
	d := Doc{}
	d.SetMeta(Meta{Type: "Probe", Name: "P1"})
	err := s.Validate(d)
	if err == nil || !strings.Contains(err.Error(), "missing field") {
		t.Errorf("err = %v", err)
	}
	d.Set("serial", "abc")
	if err := s.Validate(d); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

func TestSchemaFloatAcceptsIntSpelling(t *testing.T) {
	s := lampSchema()
	d := s.New("L1")
	// A hand-written YAML file may spell 0.0 as 0 (decoded int64).
	d.SetIntent("intensity", int64(1))
	d.SetStatus("intensity", int64(0))
	if err := s.Validate(d); err != nil {
		t.Errorf("int spelling of float rejected: %v", err)
	}
}

func TestSchemaKey(t *testing.T) {
	if k := lampSchema().Key(); k != "Lamp/v1" {
		t.Errorf("Key = %q", k)
	}
}
