package model

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func storeWithLamp(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.Create(lampDoc()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreCreateGet(t *testing.T) {
	s := storeWithLamp(t)
	d, gen, ok := s.Get("L1")
	if !ok || gen == 0 {
		t.Fatalf("Get: ok=%v gen=%d", ok, gen)
	}
	if d.Name() != "L1" {
		t.Errorf("name = %q", d.Name())
	}
	// Returned snapshot must be independent.
	d.Set("power.status", "off")
	d2, _, _ := s.Get("L1")
	if v, _ := d2.Get("power.status"); v != "on" {
		t.Error("snapshot mutation leaked into store")
	}
}

func TestStoreCreateDuplicate(t *testing.T) {
	s := storeWithLamp(t)
	if err := s.Create(lampDoc()); err == nil {
		t.Error("duplicate create should fail")
	}
}

func TestStoreCreateRequiresMeta(t *testing.T) {
	s := NewStore()
	if err := s.Create(Doc{"x": int64(1)}); err == nil {
		t.Error("create without meta should fail")
	}
}

func TestStoreApplyPublishesDiff(t *testing.T) {
	s := storeWithLamp(t)
	w := s.WatchName("L1")
	defer w.Close()

	up, err := s.Apply("L1", func(d Doc) error {
		d.Set("power.status", "off")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Changes) != 1 || up.Changes[0].Path != "power.status" {
		t.Fatalf("changes = %v", up.Changes)
	}
	select {
	case got := <-w.C:
		if got.Gen != up.Gen || len(got.Changes) != 1 {
			t.Errorf("watch update = %+v", got)
		}
		if v, _ := got.Doc.Get("power.status"); v != "off" {
			t.Errorf("watch snapshot stale: %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no watch update")
	}
}

func TestStoreApplyNoopDoesNotNotify(t *testing.T) {
	s := storeWithLamp(t)
	w := s.WatchName("L1")
	defer w.Close()
	up, err := s.Apply("L1", func(d Doc) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Changes) != 0 {
		t.Errorf("noop produced changes %v", up.Changes)
	}
	select {
	case u := <-w.C:
		t.Errorf("unexpected update %+v", u)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestStoreApplyErrorRollsBack(t *testing.T) {
	s := storeWithLamp(t)
	_, err := s.Apply("L1", func(d Doc) error {
		d.Set("power.status", "off")
		return fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("want error")
	}
	d, _, _ := s.Get("L1")
	if v, _ := d.Get("power.status"); v != "on" {
		t.Error("failed apply mutated the store")
	}
}

func TestStoreApplyMissing(t *testing.T) {
	s := NewStore()
	if _, err := s.Apply("ghost", func(Doc) error { return nil }); err == nil {
		t.Error("apply on missing model should fail")
	}
}

func TestStorePatch(t *testing.T) {
	s := storeWithLamp(t)
	up, err := s.Patch("L1", map[string]any{"power": map[string]any{"intent": "off"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Changes) != 1 || up.Changes[0].Path != "power.intent" {
		t.Errorf("patch changes = %v", up.Changes)
	}
}

func TestStoreDelete(t *testing.T) {
	s := storeWithLamp(t)
	w := s.Watch(nil)
	defer w.Close()
	if !s.Delete("L1") {
		t.Fatal("delete failed")
	}
	if s.Delete("L1") {
		t.Error("second delete should return false")
	}
	if s.Has("L1") {
		t.Error("Has after delete")
	}
	select {
	case u := <-w.C:
		if !u.Deleted {
			t.Errorf("want deletion update, got %+v", u)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no deletion update")
	}
}

func TestStoreListAndSnapshot(t *testing.T) {
	s := NewStore()
	for _, n := range []string{"b", "a", "c"} {
		d := Doc{}
		d.SetMeta(Meta{Type: "Lamp", Name: n})
		if err := s.Create(d); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap["a"].Name() != "a" {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestWatcherOrderingUnderConcurrency(t *testing.T) {
	s := storeWithLamp(t)
	w := s.WatchName("L1")
	defer w.Close()

	const writers, each = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				_, err := s.Apply("L1", func(d Doc) error {
					n, _ := d.GetInt("counter")
					d.Set("counter", n+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	d, _, _ := s.Get("L1")
	n, _ := d.GetInt("counter")
	if n != writers*each {
		t.Errorf("counter = %d, want %d (lost updates)", n, writers*each)
	}

	// Every update must arrive, in strictly increasing generation order.
	var lastGen uint64
	for i := 0; i < writers*each; i++ {
		select {
		case u := <-w.C:
			if u.Gen <= lastGen {
				t.Fatalf("generation went backwards: %d after %d", u.Gen, lastGen)
			}
			lastGen = u.Gen
		case <-time.After(5 * time.Second):
			t.Fatalf("missing update %d", i)
		}
	}
}

func TestWatcherFilter(t *testing.T) {
	s := NewStore()
	a := Doc{}
	a.SetMeta(Meta{Type: "Lamp", Name: "A"})
	b := Doc{}
	b.SetMeta(Meta{Type: "Fan", Name: "B"})
	w := s.Watch(func(u Update) bool { return u.Type == "Fan" })
	defer w.Close()
	if err := s.Create(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(b); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-w.C:
		if u.Name != "B" {
			t.Errorf("filtered watch got %q", u.Name)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no update")
	}
}

func TestWatcherCloseUnblocksPump(t *testing.T) {
	s := storeWithLamp(t)
	w := s.WatchName("L1")
	// Queue several updates without reading, then close.
	for i := 0; i < 10; i++ {
		if _, err := s.Apply("L1", func(d Doc) error { d.Set("n", i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Channel must eventually close even though we never consumed.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-w.C:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("watcher channel never closed")
		}
	}
}

func TestWatcherDoubleCloseSafe(t *testing.T) {
	s := storeWithLamp(t)
	w := s.WatchName("L1")
	w.Close()
	w.Close() // must not panic
}

// Property: for any random sequence of Apply mutations, replaying the
// watch stream's diffs over the initial snapshot reproduces the final
// document. This is the invariant trace replay (§3.5) depends on.
func TestQuickWatchStreamReconstructsState(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		initial := Doc{}
		initial.SetMeta(Meta{Type: "Thing", Name: "T"})
		w := s.Watch(nil)
		defer w.Close()
		if err := s.Create(initial); err != nil {
			t.Log(err)
			return false
		}
		paths := []string{"a", "a.b", "c", "d.e.f", "g"}
		n := 5 + r.Intn(20)
		for i := 0; i < n; i++ {
			p := paths[r.Intn(len(paths))]
			if r.Intn(5) == 0 {
				s.Apply("T", func(d Doc) error { d.Delete(p); return nil })
			} else {
				val := r.Intn(10)
				s.Apply("T", func(d Doc) error { d.Set(p, val); return nil })
			}
		}
		final, _, _ := s.Get("T")

		rebuilt := Doc{}
		timeout := time.After(5 * time.Second)
		var seen uint64
		for !Equal(rebuilt, final) {
			select {
			case u := <-w.C:
				seen = u.Gen
				rebuilt.ApplyChanges(u.Changes)
			case <-timeout:
				t.Logf("rebuilt never converged (last gen %d):\n%v\nvs\n%v", seen, rebuilt, final)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
