package model

import (
	"fmt"
	"sort"
	"strings"
)

// ChangeOp classifies one element of a document diff.
type ChangeOp string

const (
	OpSet    ChangeOp = "set"    // value added or replaced
	OpDelete ChangeOp = "delete" // value removed
)

// Change is one leaf-level difference between two documents, addressed
// by dotted path. Changes drive the trace log (§3.5) and the
// scene-property checker.
type Change struct {
	Op   ChangeOp
	Path string
	Old  any // previous value (nil for pure additions)
	New  any // new value (nil for deletions)
}

func (c Change) String() string {
	switch c.Op {
	case OpDelete:
		return fmt.Sprintf("delete %s (was %v)", c.Path, c.Old)
	default:
		return fmt.Sprintf("set %s=%v", c.Path, c.New)
	}
}

// Diff computes the leaf-level changes that transform old into new.
// Paths are reported in sorted order for deterministic logs.
func Diff(old, new Doc) []Change {
	var out []Change
	diffValue("", map[string]any(old), map[string]any(new), &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func diffValue(prefix string, old, new any, out *[]Change) {
	om, ook := asMap(old)
	nm, nok := asMap(new)
	if ook && nok {
		keys := map[string]struct{}{}
		for k := range om {
			keys[k] = struct{}{}
		}
		for k := range nm {
			keys[k] = struct{}{}
		}
		for k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			ov, oHas := om[k]
			nv, nHas := nm[k]
			switch {
			case !oHas:
				addLeaves(p, nv, out)
			case !nHas:
				*out = append(*out, Change{Op: OpDelete, Path: p, Old: copyValue(ov)})
			default:
				diffValue(p, ov, nv, out)
			}
		}
		return
	}
	if !equalValue(old, new) {
		*out = append(*out, Change{Op: OpSet, Path: prefix, Old: copyValue(old), New: copyValue(new)})
	}
}

// addLeaves records additions; composite additions are flattened into
// leaf paths so every change is a scalar observation.
func addLeaves(prefix string, v any, out *[]Change) {
	if m, ok := asMap(v); ok {
		if len(m) == 0 {
			*out = append(*out, Change{Op: OpSet, Path: prefix, New: map[string]any{}})
			return
		}
		for k, val := range m {
			addLeaves(prefix+"."+k, val, out)
		}
		return
	}
	*out = append(*out, Change{Op: OpSet, Path: prefix, New: copyValue(v)})
}

// ApplyChanges replays a diff onto a document, producing the document
// the diff was computed against. Used by trace replay.
func (d Doc) ApplyChanges(changes []Change) {
	for _, c := range changes {
		switch c.Op {
		case OpDelete:
			d.Delete(c.Path)
		default:
			d.Set(c.Path, copyValue(c.New))
		}
	}
}

// Flatten renders a document as leaf path -> value pairs ("power.status"
// -> "on"). Digis log this snapshot when they start so traces are
// self-contained: a replayer or offline checker reconstructs initial
// state without access to the original testbed.
func Flatten(d Doc) map[string]any {
	var changes []Change
	diffValue("", map[string]any{}, map[string]any(d), &changes)
	out := make(map[string]any, len(changes))
	for _, c := range changes {
		out[c.Path] = c.New
	}
	return out
}

// PathsUnder returns the subset of changes whose path equals prefix or
// lies beneath it ("power" matches "power.status").
func PathsUnder(changes []Change, prefix string) []Change {
	var out []Change
	for _, c := range changes {
		if c.Path == prefix || strings.HasPrefix(c.Path, prefix+".") {
			out = append(out, c)
		}
	}
	return out
}
