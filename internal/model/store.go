package model

import (
	"fmt"
	"sort"
	"sync"
)

// Update describes one committed change to a stored model.
type Update struct {
	Name    string
	Type    string
	Gen     uint64 // store-wide monotonic generation
	Doc     Doc    // snapshot after the change (deep copy, caller-owned)
	Changes []Change
	Deleted bool // true when the model was removed
}

// Store holds the live models of a testbed. All methods are safe for
// concurrent use. Readers get deep-copied snapshots; writers mutate
// under an exclusive section so a mutation and its diff are atomic.
//
// Watchers receive every committed update in order. Each watcher has an
// unbounded in-memory queue pumped by its own goroutine, so a slow
// consumer never blocks writers (the same decoupling the k8s watch
// cache provides, minus the resync path since queues are unbounded).
type Store struct {
	mu       sync.RWMutex
	docs     map[string]*entry
	watchers map[int]*Watcher
	nextID   int
	gen      uint64
}

type entry struct {
	doc Doc
	gen uint64
}

// NewStore returns an empty model store.
func NewStore() *Store {
	return &Store{
		docs:     map[string]*entry{},
		watchers: map[int]*Watcher{},
	}
}

// Create adds a model. The name comes from meta.name and must be
// unique in the store.
func (s *Store) Create(d Doc) error {
	meta, err := d.Meta()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.docs[meta.Name]; exists {
		return fmt.Errorf("model: %q already exists", meta.Name)
	}
	s.gen++
	snapshot := d.DeepCopy()
	s.docs[meta.Name] = &entry{doc: snapshot, gen: s.gen}
	var changes []Change
	addLeavesForCreate(snapshot, &changes)
	s.broadcast(Update{Name: meta.Name, Type: meta.Type, Gen: s.gen, Doc: snapshot.DeepCopy(), Changes: changes})
	return nil
}

func addLeavesForCreate(d Doc, out *[]Change) {
	diffValue("", map[string]any{}, map[string]any(d), out)
	sort.Slice(*out, func(i, j int) bool { return (*out)[i].Path < (*out)[j].Path })
}

// Get returns a deep-copied snapshot and its generation.
func (s *Store) Get(name string) (Doc, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.docs[name]
	if !ok {
		return nil, 0, false
	}
	return e.doc.DeepCopy(), e.gen, true
}

// Has reports whether a model exists.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.docs[name]
	return ok
}

// List returns the stored model names in sorted order.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.docs))
	for n := range s.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns deep copies of all models, keyed by name.
func (s *Store) Snapshot() map[string]Doc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Doc, len(s.docs))
	for n, e := range s.docs {
		out[n] = e.doc.DeepCopy()
	}
	return out
}

// Apply atomically mutates a model via fn and publishes the diff. If
// fn returns an error the model is unchanged. If fn changes nothing,
// no update is published and the returned Update has Gen of the
// current entry with empty Changes.
func (s *Store) Apply(name string, fn func(Doc) error) (Update, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[name]
	if !ok {
		return Update{}, fmt.Errorf("model: %q not found", name)
	}
	work := e.doc.DeepCopy()
	if err := fn(work); err != nil {
		return Update{}, err
	}
	changes := Diff(e.doc, work)
	if len(changes) == 0 {
		return Update{Name: name, Type: work.Type(), Gen: e.gen, Doc: work}, nil
	}
	s.gen++
	e.doc = work
	e.gen = s.gen
	up := Update{Name: name, Type: work.Type(), Gen: s.gen, Doc: work.DeepCopy(), Changes: changes}
	s.broadcast(up)
	return up, nil
}

// Patch deep-merges a patch document into the model (see Doc.Merge).
func (s *Store) Patch(name string, patch map[string]any) (Update, error) {
	return s.Apply(name, func(d Doc) error {
		d.Merge(patch)
		return nil
	})
}

// Delete removes a model and notifies watchers.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[name]
	if !ok {
		return false
	}
	delete(s.docs, name)
	s.gen++
	s.broadcast(Update{Name: name, Type: e.doc.Type(), Gen: s.gen, Doc: e.doc.DeepCopy(), Deleted: true})
	return true
}

// Gen returns the store's current generation.
func (s *Store) Gen() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Watcher delivers updates on C until Close is called. Updates arrive
// in commit order; the queue is unbounded so no update is dropped.
type Watcher struct {
	C <-chan Update

	id     int
	store  *Store
	filter func(Update) bool

	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []Update
	closed bool
	done   chan struct{}
}

// Watch registers a watcher. filter may be nil to receive everything;
// otherwise only updates for which filter returns true are queued.
func (s *Store) Watch(filter func(Update) bool) *Watcher {
	ch := make(chan Update)
	w := &Watcher{C: ch, store: s, filter: filter, done: make(chan struct{})}
	w.qcond = sync.NewCond(&w.qmu)
	s.mu.Lock()
	w.id = s.nextID
	s.nextID++
	s.watchers[w.id] = w
	s.mu.Unlock()
	go w.pump(ch)
	return w
}

// WatchName is a convenience for watching a single model by name.
func (s *Store) WatchName(name string) *Watcher {
	return s.Watch(func(u Update) bool { return u.Name == name })
}

func (s *Store) broadcast(u Update) {
	// Called with s.mu held; enqueueing only takes the watcher queue
	// locks, never blocks on consumers.
	for _, w := range s.watchers {
		if w.filter != nil && !w.filter(u) {
			continue
		}
		w.enqueue(u)
	}
}

func (w *Watcher) enqueue(u Update) {
	w.qmu.Lock()
	if !w.closed {
		w.queue = append(w.queue, u)
		w.qcond.Signal()
	}
	w.qmu.Unlock()
}

func (w *Watcher) pump(ch chan Update) {
	defer close(ch)
	for {
		w.qmu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.qcond.Wait()
		}
		if w.closed && len(w.queue) == 0 {
			w.qmu.Unlock()
			return
		}
		u := w.queue[0]
		w.queue = w.queue[1:]
		w.qmu.Unlock()
		select {
		case ch <- u:
		case <-w.done:
			return
		}
	}
}

// Close unregisters the watcher. The consumer may stop reading C
// immediately; the pump goroutine exits and C is eventually closed.
func (w *Watcher) Close() {
	w.store.mu.Lock()
	delete(w.store.watchers, w.id)
	w.store.mu.Unlock()
	w.qmu.Lock()
	if !w.closed {
		w.closed = true
		close(w.done)
		w.qcond.Signal()
	}
	w.qmu.Unlock()
}
