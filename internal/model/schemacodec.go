package model

import (
	"fmt"
	"sort"

	"repro/internal/yamlite"
)

// EncodeSchema renders a schema as the canonical repository kind
// document — what "dbox commit -k TYPE" stores and what setups pin by
// version.
func EncodeSchema(s *Schema) ([]byte, error) {
	fields := map[string]any{}
	for name, f := range s.Fields {
		spec := map[string]any{"kind": string(f.Kind)}
		if f.ElemKind != "" {
			spec["elem"] = string(f.ElemKind)
		}
		if len(f.Enum) > 0 {
			enum := make([]any, len(f.Enum))
			for i, e := range f.Enum {
				enum[i] = e
			}
			spec["enum"] = enum
		}
		if f.Min != nil {
			spec["min"] = *f.Min
		}
		if f.Max != nil {
			spec["max"] = *f.Max
		}
		if f.Default != nil {
			spec["default"] = normalize(f.Default)
		}
		if f.Doc != "" {
			spec["doc"] = f.Doc
		}
		fields[name] = spec
	}
	doc := map[string]any{
		"kind":    s.Type,
		"version": s.Version,
		"scene":   s.Scene,
		"fields":  fields,
	}
	if s.Doc != "" {
		doc["doc"] = s.Doc
	}
	return yamlite.Encode(doc)
}

// DecodeSchema parses a repository kind document back into a schema,
// enabling a pulling Digibox (or an analyzer) to inspect kinds it does
// not have code for.
func DecodeSchema(data []byte) (*Schema, error) {
	v, err := yamlite.Decode(data)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("model: schema document is %T", v)
	}
	s := &Schema{Fields: map[string]FieldSpec{}}
	s.Type, _ = m["kind"].(string)
	s.Version, _ = m["version"].(string)
	s.Scene, _ = m["scene"].(bool)
	s.Doc, _ = m["doc"].(string)
	if s.Type == "" {
		return nil, fmt.Errorf("model: schema document missing kind")
	}
	fields, _ := m["fields"].(map[string]any)
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		raw, ok := fields[n].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("model: field %q malformed", n)
		}
		var f FieldSpec
		if k, ok := raw["kind"].(string); ok {
			f.Kind = FieldKind(k)
		}
		if e, ok := raw["elem"].(string); ok {
			f.ElemKind = FieldKind(e)
		}
		if enum, ok := raw["enum"].([]any); ok {
			for _, e := range enum {
				if sv, ok := e.(string); ok {
					f.Enum = append(f.Enum, sv)
				}
			}
		}
		if v, ok := raw["min"]; ok {
			if fv, ok := toFloat(v); ok {
				f.Min = Bound(fv)
			}
		}
		if v, ok := raw["max"]; ok {
			if fv, ok := toFloat(v); ok {
				f.Max = Bound(fv)
			}
		}
		if v, ok := raw["default"]; ok {
			f.Default = v
		}
		if d, ok := raw["doc"].(string); ok {
			f.Doc = d
		}
		s.Fields[n] = f
	}
	return s, nil
}
