package model

import (
	"fmt"
	"testing"
)

func benchDoc() Doc {
	d := Doc{}
	d.SetMeta(Meta{Type: "Lamp", Version: "v1", Name: "L1", Managed: true, Attach: []string{"a", "b"}})
	d.Set("power", map[string]any{"intent": "on", "status": "off"})
	d.Set("intensity", map[string]any{"intent": 0.2, "status": 0.4})
	d.Set("labels", []any{"x", "y", "z"})
	return d
}

func BenchmarkDocDeepCopy(b *testing.B) {
	d := benchDoc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.DeepCopy()
	}
}

func BenchmarkDocGetSet(b *testing.B) {
	d := benchDoc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Set("power.status", i%2 == 0)
		if _, ok := d.Get("power.status"); !ok {
			b.Fatal("lost path")
		}
	}
}

func BenchmarkDiffSmallChange(b *testing.B) {
	old := benchDoc()
	new := old.DeepCopy()
	new.Set("power.status", "on")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := Diff(old, new); len(c) != 1 {
			b.Fatalf("changes = %d", len(c))
		}
	}
}

func BenchmarkStoreApply(b *testing.B) {
	s := NewStore()
	if err := s.Create(benchDoc()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply("L1", func(d Doc) error {
			d.Set("counter", i)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreApplyWithWatchers measures the commit path under the
// watcher fan-out load a 1000-digi testbed puts on the store.
func BenchmarkStoreApplyWithWatchers(b *testing.B) {
	for _, watchers := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			s := NewStore()
			if err := s.Create(benchDoc()); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < watchers; i++ {
				name := fmt.Sprintf("other-%d", i)
				w := s.Watch(func(u Update) bool { return u.Name == name })
				defer w.Close()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Apply("L1", func(d Doc) error {
					d.Set("counter", i)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSchemaValidate(b *testing.B) {
	s := lampSchema()
	d := s.New("L1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(d); err != nil {
			b.Fatal(err)
		}
	}
}
