package model

import (
	"fmt"
	"sort"
	"strings"
)

// FieldKind is the declared type of a schema field.
type FieldKind string

const (
	KindString FieldKind = "string"
	KindBool   FieldKind = "bool"
	KindInt    FieldKind = "int"
	KindFloat  FieldKind = "float"
	// KindIntent declares an intent/status pair: the field's document
	// value is a map {intent: T, status: T} where T is ElemKind. Lamp
	// power (Fig. 3) is an intent field of element kind string.
	KindIntent FieldKind = "intent"
)

// FieldSpec declares one model field.
type FieldSpec struct {
	Kind     FieldKind
	ElemKind FieldKind // element kind for KindIntent fields
	Enum     []string  // allowed values for string-kinded fields
	Min, Max *float64  // numeric bounds, inclusive
	Default  any       // initial value (for intent fields, both halves)
	Doc      string    // one-line description for docs/CLI help
}

// Schema declares the model shape of a mock or scene kind. Schemas are
// what "dbox commit <type>" registers and what validation runs against
// when a model is created or edited (§3.2).
type Schema struct {
	Type    string // kind name, e.g. "Occupancy"
	Version string // kind version, e.g. "v1"
	Scene   bool   // true for scene kinds (Room, Building, ...)
	Fields  map[string]FieldSpec
	Doc     string // one-line description of the kind
}

// Bound returns a *float64 for use as a FieldSpec bound.
func Bound(v float64) *float64 { return &v }

// New instantiates a model document of this kind with all defaults
// applied and the given instance name.
func (s *Schema) New(name string) Doc {
	d := Doc{}
	d.SetMeta(Meta{Type: s.Type, Version: s.Version, Name: name, Managed: true})
	for field, spec := range s.Fields {
		switch spec.Kind {
		case KindIntent:
			d.Set(field, map[string]any{
				"intent": normalize(spec.Default),
				"status": normalize(spec.Default),
			})
		default:
			d.Set(field, normalize(spec.Default))
		}
	}
	return d
}

// Validate checks a document against the schema. Unknown top-level
// fields are rejected so typos in configs surface early; meta is
// validated structurally.
func (s *Schema) Validate(d Doc) error {
	meta, err := d.Meta()
	if err != nil {
		return err
	}
	if meta.Type != s.Type {
		return fmt.Errorf("model: document type %q does not match schema %q", meta.Type, s.Type)
	}
	var errs []string
	for key, v := range d {
		if key == metaKey {
			continue
		}
		spec, ok := s.Fields[key]
		if !ok {
			errs = append(errs, fmt.Sprintf("unknown field %q", key))
			continue
		}
		if err := spec.validate(key, v); err != nil {
			errs = append(errs, err.Error())
		}
	}
	for key, spec := range s.Fields {
		if _, ok := d[key]; !ok && spec.Default == nil && spec.Kind != KindIntent {
			// Fields without defaults are required.
			errs = append(errs, fmt.Sprintf("missing field %q", key))
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("model: %s %s invalid: %s", s.Type, meta.Name, strings.Join(errs, "; "))
	}
	return nil
}

func (f FieldSpec) validate(path string, v any) error {
	switch f.Kind {
	case KindIntent:
		m, ok := asMap(v)
		if !ok {
			return fmt.Errorf("field %q: want {intent, status} map, got %T", path, v)
		}
		elem := FieldSpec{Kind: f.ElemKind, Enum: f.Enum, Min: f.Min, Max: f.Max}
		for _, half := range []string{"intent", "status"} {
			hv, ok := m[half]
			if !ok {
				return fmt.Errorf("field %q: missing %s", path, half)
			}
			if err := elem.validate(path+"."+half, hv); err != nil {
				return err
			}
		}
		for k := range m {
			if k != "intent" && k != "status" {
				return fmt.Errorf("field %q: unexpected key %q", path, k)
			}
		}
		return nil
	case KindString:
		sv, ok := v.(string)
		if !ok {
			return fmt.Errorf("field %q: want string, got %T", path, v)
		}
		if len(f.Enum) > 0 {
			for _, e := range f.Enum {
				if sv == e {
					return nil
				}
			}
			return fmt.Errorf("field %q: %q not in %v", path, sv, f.Enum)
		}
		return nil
	case KindBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("field %q: want bool, got %T", path, v)
		}
		return nil
	case KindInt:
		n, ok := v.(int64)
		if !ok {
			return fmt.Errorf("field %q: want int, got %T", path, v)
		}
		return f.checkBounds(path, float64(n))
	case KindFloat:
		fv, ok := toFloat(v)
		if !ok {
			return fmt.Errorf("field %q: want float, got %T", path, v)
		}
		return f.checkBounds(path, fv)
	default:
		return fmt.Errorf("field %q: unknown kind %q", path, f.Kind)
	}
}

func (f FieldSpec) checkBounds(path string, v float64) error {
	if f.Min != nil && v < *f.Min {
		return fmt.Errorf("field %q: %v below minimum %v", path, v, *f.Min)
	}
	if f.Max != nil && v > *f.Max {
		return fmt.Errorf("field %q: %v above maximum %v", path, v, *f.Max)
	}
	return nil
}

// Key returns the repository reference key "Type/version".
func (s *Schema) Key() string { return s.Type + "/" + s.Version }
