// Package model implements the Digibox document model.
//
// Every mock and scene is described by a model: a document of key-value
// pairs holding the entity's status and its desired status (the
// "intent"), plus a "meta" section with the type, version, name,
// managed flag, attach list, and event-generation configuration — see
// Fig. 3 of the paper. The package provides the document type with
// dotted-path access and deep merging, typed schemas with validation
// and defaulting, change diffing for the trace log, and a concurrent
// store with generations and watch streams that the digi runtime and
// the REST gateway are built on.
package model

import (
	"fmt"
	"strings"

	"repro/internal/yamlite"
)

// Doc is a model document. The concrete value domain is the yamlite
// dynamic domain: map[string]any, []any, string, int64, float64, bool,
// and nil. Doc values are not safe for concurrent mutation; the Store
// hands out deep copies.
type Doc map[string]any

// Meta is the parsed "meta" section of a model (Fig. 3).
type Meta struct {
	Type    string // device or scene kind, e.g. "Occupancy", "Room"
	Version string // kind version, e.g. "v1"
	Name    string // instance name, e.g. "O1"
	// Managed reports whether the digi's own event generator drives the
	// model. A digi attached to a scene usually runs unmanaged: the
	// parent scene writes its correlated status instead (§3.1).
	Managed bool
	Attach  []string       // names of mocks/scenes attached to this scene
	Config  map[string]any // extra kind-specific config (interval, seed, ranges)
}

// Well-known meta keys.
const (
	metaKey        = "meta"
	metaType       = "type"
	metaVersion    = "version"
	metaName       = "name"
	metaManaged    = "managed"
	metaAttach     = "attach"
	reservedPrefix = "meta."
)

// ParseDoc decodes a single YAML model document.
func ParseDoc(data []byte) (Doc, error) {
	v, err := yamlite.Decode(data)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return Doc{}, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("model: document is %T, want mapping", v)
	}
	return Doc(m), nil
}

// ParseDocs decodes a multi-document stream of models.
func ParseDocs(data []byte) ([]Doc, error) {
	vs, err := yamlite.DecodeAll(data)
	if err != nil {
		return nil, err
	}
	docs := make([]Doc, 0, len(vs))
	for i, v := range vs {
		m, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("model: document %d is %T, want mapping", i, v)
		}
		docs = append(docs, Doc(m))
	}
	return docs, nil
}

// Encode renders the document as YAML with deterministic key order.
func (d Doc) Encode() ([]byte, error) {
	return yamlite.Encode(map[string]any(d))
}

// Meta extracts and validates the document's meta section.
func (d Doc) Meta() (Meta, error) {
	raw, ok := d[metaKey].(map[string]any)
	if !ok {
		return Meta{}, fmt.Errorf("model: document has no meta section")
	}
	m := Meta{Config: map[string]any{}}
	for k, v := range raw {
		switch k {
		case metaType:
			m.Type, _ = v.(string)
		case metaVersion:
			m.Version, _ = v.(string)
		case metaName:
			m.Name, _ = v.(string)
		case metaManaged:
			m.Managed, _ = v.(bool)
		case metaAttach:
			seq, _ := v.([]any)
			for _, item := range seq {
				if s, ok := item.(string); ok {
					m.Attach = append(m.Attach, s)
				}
			}
		default:
			m.Config[k] = v
		}
	}
	if m.Type == "" {
		return Meta{}, fmt.Errorf("model: meta.type missing")
	}
	if m.Name == "" {
		return Meta{}, fmt.Errorf("model: meta.name missing")
	}
	return m, nil
}

// SetMeta writes the meta section, preserving unknown config keys
// already present in the document.
func (d Doc) SetMeta(m Meta) {
	raw, _ := d[metaKey].(map[string]any)
	if raw == nil {
		raw = map[string]any{}
		d[metaKey] = raw
	}
	raw[metaType] = m.Type
	if m.Version != "" {
		raw[metaVersion] = m.Version
	}
	raw[metaName] = m.Name
	raw[metaManaged] = m.Managed
	att := make([]any, len(m.Attach))
	for i, a := range m.Attach {
		att[i] = a
	}
	raw[metaAttach] = att
	for k, v := range m.Config {
		raw[k] = v
	}
}

// Name returns meta.name, or "" if absent.
func (d Doc) Name() string {
	v, _ := d.Get("meta.name")
	s, _ := v.(string)
	return s
}

// Type returns meta.type, or "" if absent.
func (d Doc) Type() string {
	v, _ := d.Get("meta.type")
	s, _ := v.(string)
	return s
}

// Managed returns meta.managed (false if absent).
func (d Doc) Managed() bool {
	v, _ := d.Get("meta.managed")
	b, _ := v.(bool)
	return b
}

// Attach returns a copy of meta.attach.
func (d Doc) Attach() []string {
	v, _ := d.Get("meta.attach")
	seq, _ := v.([]any)
	out := make([]string, 0, len(seq))
	for _, item := range seq {
		if s, ok := item.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// Get resolves a dotted path like "power.intent". It returns the value
// and whether the full path exists. An empty path returns the document
// itself.
func (d Doc) Get(path string) (any, bool) {
	if path == "" {
		return map[string]any(d), true
	}
	var cur any = map[string]any(d)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// GetString returns the string at path, or "" if absent or mistyped.
func (d Doc) GetString(path string) string {
	v, _ := d.Get(path)
	s, _ := v.(string)
	return s
}

// GetBool returns the bool at path, or false if absent or mistyped.
func (d Doc) GetBool(path string) bool {
	v, _ := d.Get(path)
	b, _ := v.(bool)
	return b
}

// GetInt returns the integer at path, converting from float64 when the
// source document spelled the value with a decimal point.
func (d Doc) GetInt(path string) (int64, bool) {
	v, ok := d.Get(path)
	if !ok {
		return 0, false
	}
	switch t := v.(type) {
	case int64:
		return t, true
	case int:
		return int64(t), true
	case float64:
		return int64(t), true
	}
	return 0, false
}

// GetFloat returns the float at path, converting from integer values.
func (d Doc) GetFloat(path string) (float64, bool) {
	v, ok := d.Get(path)
	if !ok {
		return 0, false
	}
	switch t := v.(type) {
	case float64:
		return t, true
	case int64:
		return float64(t), true
	case int:
		return float64(t), true
	}
	return 0, false
}

// Set writes a value at a dotted path, creating intermediate maps as
// needed. Setting through a non-map value replaces it.
func (d Doc) Set(path string, v any) {
	parts := strings.Split(path, ".")
	cur := map[string]any(d)
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur[part].(map[string]any)
		if !ok {
			next = map[string]any{}
			cur[part] = next
		}
		cur = next
	}
	cur[parts[len(parts)-1]] = normalize(v)
}

// Delete removes the value at a dotted path. It reports whether the
// path existed.
func (d Doc) Delete(path string) bool {
	parts := strings.Split(path, ".")
	cur := map[string]any(d)
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur[part].(map[string]any)
		if !ok {
			return false
		}
		cur = next
	}
	last := parts[len(parts)-1]
	if _, ok := cur[last]; !ok {
		return false
	}
	delete(cur, last)
	return true
}

// Intent returns the "<field>.intent" value.
func (d Doc) Intent(field string) (any, bool) { return d.Get(field + ".intent") }

// Status returns the "<field>.status" value.
func (d Doc) Status(field string) (any, bool) { return d.Get(field + ".status") }

// SetIntent writes "<field>.intent" (what a user or app asks for).
func (d Doc) SetIntent(field string, v any) { d.Set(field+".intent", v) }

// SetStatus writes "<field>.status" (what the simulated device reports).
func (d Doc) SetStatus(field string, v any) { d.Set(field+".status", v) }

// DeepCopy returns a structurally independent copy of the document.
func (d Doc) DeepCopy() Doc {
	return Doc(copyValue(map[string]any(d)).(map[string]any))
}

func copyValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, val := range t {
			out[k] = copyValue(val)
		}
		return out
	case Doc:
		return copyValue(map[string]any(t))
	case []any:
		out := make([]any, len(t))
		for i, val := range t {
			out[i] = copyValue(val)
		}
		return out
	default:
		return t
	}
}

// Merge deep-merges patch into the document: maps merge recursively,
// everything else (including sequences) replaces. A nil patch value
// deletes the key, mirroring JSON-merge-patch semantics so "dbox edit"
// can remove fields.
func (d Doc) Merge(patch map[string]any) {
	mergeMap(map[string]any(d), patch)
}

func mergeMap(dst, patch map[string]any) {
	for k, pv := range patch {
		if pv == nil {
			delete(dst, k)
			continue
		}
		pm, pok := asMap(pv)
		dm, dok := asMap(dst[k])
		if pok && dok {
			mergeMap(dm, pm)
			continue
		}
		if pok {
			fresh := map[string]any{}
			mergeMap(fresh, pm)
			dst[k] = fresh
			continue
		}
		dst[k] = normalize(copyValue(pv))
	}
}

func asMap(v any) (map[string]any, bool) {
	switch t := v.(type) {
	case map[string]any:
		return t, true
	case Doc:
		return map[string]any(t), true
	}
	return nil, false
}

// normalize converts convenience Go types (int, float32, []string,
// Doc) into the canonical dynamic domain so comparisons and encoding
// behave uniformly.
func normalize(v any) any {
	switch t := v.(type) {
	case int:
		return int64(t)
	case int32:
		return int64(t)
	case float32:
		return float64(t)
	case []string:
		out := make([]any, len(t))
		for i, s := range t {
			out[i] = s
		}
		return out
	case Doc:
		return map[string]any(t)
	case map[string]any:
		for k, val := range t {
			t[k] = normalize(val)
		}
		return t
	case []any:
		for i, val := range t {
			t[i] = normalize(val)
		}
		return t
	default:
		return v
	}
}

// Equal reports deep equality of two documents.
func Equal(a, b Doc) bool {
	return equalValue(map[string]any(a), map[string]any(b))
}

func equalValue(a, b any) bool {
	am, aok := asMap(a)
	bm, bok := asMap(b)
	if aok || bok {
		if !aok || !bok || len(am) != len(bm) {
			return false
		}
		for k, av := range am {
			bv, ok := bm[k]
			if !ok || !equalValue(av, bv) {
				return false
			}
		}
		return true
	}
	as, aok := a.([]any)
	bs, bok := b.([]any)
	if aok || bok {
		if !aok || !bok || len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !equalValue(as[i], bs[i]) {
				return false
			}
		}
		return true
	}
	return scalarEqual(a, b)
}

func scalarEqual(a, b any) bool {
	if a == b {
		return true
	}
	// int64 vs float64 spelling differences from hand-written configs.
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	return aok && bok && af == bf
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case int:
		return float64(t), true
	case float64:
		return t, true
	}
	return 0, false
}
