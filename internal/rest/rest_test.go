package rest

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

func newGateway(t *testing.T) (*Gateway, *model.Store) {
	t.Helper()
	store := model.NewStore()
	lamp := model.Doc{}
	lamp.SetMeta(model.Meta{Type: "Lamp", Version: "v1", Name: "L1", Managed: true})
	lamp.Set("power", map[string]any{"intent": "off", "status": "off"})
	lamp.Set("intensity", map[string]any{"intent": 0.2, "status": 0.0})
	lamp.Set("note", "plain field")
	if err := store.Create(lamp); err != nil {
		t.Fatal(err)
	}
	return &Gateway{Store: store, Log: trace.NewLog()}, store
}

func serve(t *testing.T, g *Gateway) *Client {
	t.Helper()
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return &Client{Base: srv.URL, HTTP: srv.Client()}
}

func TestGetStatusElidesMetaAndIntent(t *testing.T) {
	g, _ := newGateway(t)
	c := serve(t, g)
	status, err := c.Status("L1")
	if err != nil {
		t.Fatal(err)
	}
	if _, has := status["meta"]; has {
		t.Error("status leaked meta")
	}
	if status["power"] != "off" {
		t.Errorf("power = %v, want flattened status", status["power"])
	}
	if status["note"] != "plain field" {
		t.Errorf("note = %v", status["note"])
	}
}

func TestGetModelFull(t *testing.T) {
	g, _ := newGateway(t)
	c := serve(t, g)
	doc, err := c.Model("L1")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name() != "L1" || doc.Type() != "Lamp" {
		t.Errorf("doc = %v", doc)
	}
	if v, _ := doc.Get("power.intent"); v != "off" {
		t.Errorf("power.intent = %v", v)
	}
}

func TestPatchSetsIntent(t *testing.T) {
	g, store := newGateway(t)
	c := serve(t, g)
	if err := c.Patch("L1", map[string]any{"power": map[string]any{"intent": "on"}}); err != nil {
		t.Fatal(err)
	}
	d, _, _ := store.Get("L1")
	if v, _ := d.Get("power.intent"); v != "on" {
		t.Errorf("power.intent = %v", v)
	}
	// Message logged.
	found := false
	for _, r := range g.Log.Records() {
		if r.Kind == trace.KindMessage && r.Name == "L1" && r.Direction == "recv" {
			found = true
		}
	}
	if !found {
		t.Error("patch not logged")
	}
}

func TestNotFoundAndBadRequests(t *testing.T) {
	g, _ := newGateway(t)
	c := serve(t, g)
	if _, err := c.Status("ghost"); err == nil {
		t.Error("missing model status succeeded")
	}
	if err := c.Patch("ghost", map[string]any{"a": 1}); err == nil {
		t.Error("missing model patch succeeded")
	}
	// Raw invalid JSON patch.
	req, _ := http.NewRequest(http.MethodPatch, c.Base+"/v1/models/L1", strings.NewReader("not json"))
	resp, err := c.HTTP.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid patch status = %d", resp.StatusCode)
	}
}

func TestList(t *testing.T) {
	g, store := newGateway(t)
	fan := model.Doc{}
	fan.SetMeta(model.Meta{Type: "Fan", Name: "F1"})
	store.Create(fan)
	c := serve(t, g)
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "F1" || names[1] != "L1" {
		t.Errorf("names = %v", names)
	}
}

func TestWatchLongPoll(t *testing.T) {
	g, store := newGateway(t)
	c := serve(t, g)
	_, gen, _ := store.Get("L1")

	var wg sync.WaitGroup
	wg.Add(1)
	var got model.Doc
	var newGen uint64
	var watchErr error
	go func() {
		defer wg.Done()
		got, newGen, watchErr = c.Watch("L1", gen, 5*time.Second)
	}()
	//dbox:allow sleepytest -- lets the long-poll park before the patch; the generation argument keeps the result correct either way
	time.Sleep(50 * time.Millisecond)
	store.Patch("L1", map[string]any{"power": map[string]any{"status": "on"}})
	wg.Wait()
	if watchErr != nil {
		t.Fatal(watchErr)
	}
	if newGen <= gen {
		t.Errorf("gen = %d, want > %d", newGen, gen)
	}
	if v, _ := got.Get("power.status"); v != "on" {
		t.Errorf("watched doc stale: %v", v)
	}
}

func TestWatchTimesOutWithCurrentDoc(t *testing.T) {
	g, store := newGateway(t)
	c := serve(t, g)
	_, gen, _ := store.Get("L1")
	start := time.Now()
	doc, newGen, err := c.Watch("L1", gen, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("returned too early: %v", elapsed)
	}
	if newGen != gen || doc.Name() != "L1" {
		t.Errorf("gen=%d doc=%v", newGen, doc)
	}
}

func TestWatchImmediateWhenBehind(t *testing.T) {
	g, store := newGateway(t)
	c := serve(t, g)
	store.Patch("L1", map[string]any{"x": 1})
	start := time.Now()
	_, newGen, err := c.Watch("L1", 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Error("watch with stale gen should return immediately")
	}
	if newGen == 0 {
		t.Error("gen not reported")
	}
}

func TestDelayInjection(t *testing.T) {
	g, _ := newGateway(t)
	g.Delay = func(name string) time.Duration { return 25 * time.Millisecond }
	c := serve(t, g)
	start := time.Now()
	if _, err := c.Status("L1"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("request took %v, want >= 50ms (2x one-way delay)", elapsed)
	}
}

func TestListenAndServe(t *testing.T) {
	g, _ := newGateway(t)
	if err := g.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Addr() == "" {
		t.Fatal("no addr")
	}
	c := &Client{Base: "http://" + g.Addr()}
	if _, err := c.Status("L1"); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationHeader(t *testing.T) {
	g, store := newGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	_, gen, _ := store.Get("L1")
	resp, err := http.Get(srv.URL + "/v1/models/L1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Digibox-Generation"); got == "" || got == "0" {
		t.Errorf("generation header = %q (store gen %d)", got, gen)
	}
}
