// Package rest implements Digibox's REST device gateway: the HTTP
// face that applications under test use to read mock status and send
// commands, alongside MQTT (Fig. 2). The paper's §4 microbenchmark —
// "the time it takes for a REST GET to return a mock's status" — is
// measured against this gateway.
//
// The gateway serves models from the testbed's store. When a Delay
// function is configured, each request sleeps the simulated network
// round-trip between the gateway's node and the node running the
// mock's pod, which is how the two-EC2-instance deployment point is
// reproduced in-process.
package rest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// Gateway is the REST device gateway.
type Gateway struct {
	Store *model.Store
	// Log, when non-nil, records request/response messages.
	Log *trace.Log
	// Delay, when non-nil, returns the simulated one-way network delay
	// to the named mock; the gateway sleeps twice that per request
	// (request + response legs).
	Delay func(name string) time.Duration

	server   *http.Server
	listener net.Listener
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// Handler returns the gateway's HTTP handler.
//
//	GET    /v1/models               list model names
//	GET    /v1/models/{name}        full model document
//	GET    /v1/models/{name}/status status fields only (the benched path)
//	PATCH  /v1/models/{name}        JSON merge-patch (e.g. set intents)
//	GET    /v1/models/{name}/watch?gen=N&timeout_ms=M  long-poll
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", g.handleList)
	mux.HandleFunc("GET /v1/models/{name}", g.handleGet)
	mux.HandleFunc("GET /v1/models/{name}/status", g.handleStatus)
	mux.HandleFunc("PATCH /v1/models/{name}", g.handlePatch)
	mux.HandleFunc("GET /v1/models/{name}/watch", g.handleWatch)
	return mux
}

// ListenAndServe binds addr and serves in the background.
func (g *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g.listener = ln
	g.server = &http.Server{Handler: g.Handler()}
	go g.server.Serve(ln)
	return nil
}

// Addr returns the bound address ("" before ListenAndServe).
func (g *Gateway) Addr() string {
	if g.listener == nil {
		return ""
	}
	return g.listener.Addr().String()
}

// Close shuts the gateway down.
func (g *Gateway) Close() error {
	if g.server == nil {
		return nil
	}
	return g.server.Close()
}

func (g *Gateway) injectDelay(name string) {
	if g.Delay == nil {
		return
	}
	if d := g.Delay(name); d > 0 {
		time.Sleep(2 * d) // request leg + response leg
	}
}

func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": g.Store.List()})
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g.injectDelay(name)
	doc, gen, ok := g.Store.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	w.Header().Set("X-Digibox-Generation", strconv.FormatUint(gen, 10))
	writeJSON(w, http.StatusOK, map[string]any(doc))
}

// handleStatus returns the mock's reportable state: everything except
// the meta section, with intent halves of intent/status pairs elided —
// what a real device would report on its status endpoint.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g.injectDelay(name)
	doc, gen, ok := g.Store.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	status := map[string]any{}
	for k, v := range doc {
		if k == "meta" {
			continue
		}
		if pair, ok := v.(map[string]any); ok {
			if s, has := pair["status"]; has && len(pair) <= 2 {
				if _, hasIntent := pair["intent"]; hasIntent {
					status[k] = s
					continue
				}
			}
		}
		status[k] = v
	}
	w.Header().Set("X-Digibox-Generation", strconv.FormatUint(gen, 10))
	if g.Log != nil {
		g.Log.Message(name, r.URL.Path, "", "recv")
	}
	writeJSON(w, http.StatusOK, status)
}

func (g *Gateway) handlePatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g.injectDelay(name)
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var patch map[string]any
	if err := json.Unmarshal(body, &patch); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON patch: %v", err)
		return
	}
	up, err := g.Store.Patch(name, patch)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if g.Log != nil {
		g.Log.Message(name, r.URL.Path, string(body), "recv")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": up.Gen,
		"changed":    len(up.Changes),
	})
}

// handleWatch long-polls until the model's generation exceeds gen or
// the timeout elapses, returning the current document either way.
func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sinceGen, _ := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
	timeout := 10 * time.Second
	if ms, err := strconv.Atoi(r.URL.Query().Get("timeout_ms")); err == nil && ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	doc, gen, ok := g.Store.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	if gen > sinceGen {
		g.injectDelay(name)
		w.Header().Set("X-Digibox-Generation", strconv.FormatUint(gen, 10))
		writeJSON(w, http.StatusOK, map[string]any(doc))
		return
	}
	watcher := g.Store.WatchName(name)
	defer watcher.Close()
	// Re-check after registration to close the race with writers.
	if doc, gen, ok = g.Store.Get(name); ok && gen > sinceGen {
		g.injectDelay(name)
		w.Header().Set("X-Digibox-Generation", strconv.FormatUint(gen, 10))
		writeJSON(w, http.StatusOK, map[string]any(doc))
		return
	}
	select {
	case u, open := <-watcher.C:
		if !open || u.Deleted {
			writeError(w, http.StatusGone, "model %q deleted", name)
			return
		}
		g.injectDelay(name)
		w.Header().Set("X-Digibox-Generation", strconv.FormatUint(u.Gen, 10))
		writeJSON(w, http.StatusOK, map[string]any(u.Doc))
	case <-time.After(timeout):
		g.injectDelay(name)
		w.Header().Set("X-Digibox-Generation", strconv.FormatUint(gen, 10))
		writeJSON(w, http.StatusOK, map[string]any(doc))
	case <-r.Context().Done():
	}
}

// Client is a minimal typed client for the gateway, used by example
// applications and the benchmark harness.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Status fetches a mock's status (the §4 benchmark request).
func (c *Client) Status(name string) (map[string]any, error) {
	resp, err := c.http().Get(c.Base + "/v1/models/" + name + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decodeMap(resp)
}

// Model fetches a full model document.
func (c *Client) Model(name string) (model.Doc, error) {
	resp, err := c.http().Get(c.Base + "/v1/models/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	m, err := decodeMap(resp)
	if err != nil {
		return nil, err
	}
	return model.Doc(m), nil
}

// Patch sends a JSON merge-patch (e.g. {"power":{"intent":"on"}}).
func (c *Client) Patch(name string, patch map[string]any) error {
	data, err := json.Marshal(patch)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPatch,
		c.Base+"/v1/models/"+name, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		m, _ := decodeMap(resp)
		return fmt.Errorf("rest: patch %s: status %d: %v", name, resp.StatusCode, m)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// List returns all model names.
func (c *Client) List() ([]string, error) {
	resp, err := c.http().Get(c.Base + "/v1/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	m, err := decodeMap(resp)
	if err != nil {
		return nil, err
	}
	raw, _ := m["models"].([]any)
	out := make([]string, 0, len(raw))
	for _, v := range raw {
		if s, ok := v.(string); ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// Watch long-polls for a change after gen.
func (c *Client) Watch(name string, gen uint64, timeout time.Duration) (model.Doc, uint64, error) {
	url := fmt.Sprintf("%s/v1/models/%s/watch?gen=%d&timeout_ms=%d",
		c.Base, name, gen, timeout.Milliseconds())
	resp, err := c.http().Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("rest: watch %s: status %d", name, resp.StatusCode)
	}
	newGen, _ := strconv.ParseUint(resp.Header.Get("X-Digibox-Generation"), 10, 64)
	m, err := decodeMap(resp)
	if err != nil {
		return nil, 0, err
	}
	return model.Doc(m), newGen, nil
}

func decodeMap(resp *http.Response) (map[string]any, error) {
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, errors.New("rest: not found")
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("rest: decode: %w", err)
	}
	return m, nil
}
