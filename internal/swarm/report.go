package swarm

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/broker"
)

// Report is the machine-readable result of one swarm run — the
// BENCH_swarm.json payload. Counters are exact (atomics, not
// samples); latency quantiles come from the obs span tracer and carry
// their sample count so readers can judge confidence.
type Report struct {
	// Configuration the run actually used (after defaulting).
	Profile     string  `json:"profile"`
	Devices     int     `json:"devices"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	Subscribers int     `json:"subscribers"`
	QoS         int     `json:"qos"`
	Seed        int64   `json:"seed"`
	RateTarget  float64 `json:"rate_target,omitempty"` // open-loop target msgs/s
	PeriodSec   float64 `json:"period_sec,omitempty"`  // closed-loop per-device period
	DurationSec float64 `json:"duration_sec"`          // measured wall-clock run length
	PayloadSize int     `json:"payload_size"`

	// Exact message accounting. Expected = Published × Subscribers
	// (every consumer holds a wildcard matching every device topic);
	// Lost must be 0 at QoS 1.
	Published int64 `json:"published"`
	Expected  int64 `json:"expected"`
	Delivered int64 `json:"delivered"`
	Lost      int64 `json:"lost"`
	// Dropped counts QoS 0 messages shed on slow wire sessions — the
	// back-pressure signal, distinct from QoS 1 loss.
	Dropped        int64 `json:"dropped"`
	BridgeForwards int64 `json:"bridge_forwards"`

	PublishRate  float64 `json:"publish_rate"`  // achieved publishes/s
	DeliveryRate float64 `json:"delivery_rate"` // achieved deliveries/s

	// Publish→deliver latency from sampled obs spans (1-in-8 by
	// default) over the swarm topic class.
	LatencySamples uint64  `json:"latency_samples"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`

	PerShard []broker.Stats `json:"per_shard"`
	// Placements maps generator pod name → kube node, recorded when
	// the run went through Testbed.RunSwarm's spread scheduling.
	Placements map[string]string `json:"placements,omitempty"`
}

// Gate checks the report against the swarm-gate CI criteria: zero
// QoS 1 loss, and (when maxP99Ms > 0) a p99 publish→deliver latency
// at or under the floor. It returns nil when the run passes.
func (r *Report) Gate(maxP99Ms float64) error {
	if r.Lost > 0 {
		return fmt.Errorf("swarm: %d of %d expected deliveries lost at QoS %d", r.Lost, r.Expected, r.QoS)
	}
	if maxP99Ms > 0 && r.P99Ms > maxP99Ms {
		return fmt.Errorf("swarm: p99 latency %.2f ms over the %.2f ms floor", r.P99Ms, maxP99Ms)
	}
	return nil
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
