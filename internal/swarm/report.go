package swarm

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/broker"
)

// Report is the machine-readable result of one swarm run — the
// BENCH_swarm.json payload. Counters are exact (atomics, not
// samples); latency quantiles come from the obs span tracer and carry
// their sample count so readers can judge confidence.
type Report struct {
	// Configuration the run actually used (after defaulting).
	Profile     string  `json:"profile"`
	Devices     int     `json:"devices"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	Subscribers int     `json:"subscribers"`
	QoS         int     `json:"qos"`
	Seed        int64   `json:"seed"`
	RateTarget  float64 `json:"rate_target,omitempty"`  // open-loop target msgs/s
	PeriodSec   float64 `json:"period_sec,omitempty"`   // closed-loop per-device period
	ProfileName string  `json:"profile_name,omitempty"` // device profile driving a profiled run
	DurationSec float64 `json:"duration_sec"`           // measured wall-clock run length
	PayloadSize int     `json:"payload_size"`

	// Exact message accounting. Expected = Published × Subscribers
	// (every consumer holds a wildcard matching every device topic);
	// Lost must be 0 at QoS 1.
	Published int64 `json:"published"`
	Expected  int64 `json:"expected"`
	Delivered int64 `json:"delivered"`
	Lost      int64 `json:"lost"`
	// Dropped counts QoS 0 messages shed on slow wire sessions — the
	// back-pressure signal, distinct from QoS 1 loss.
	Dropped        int64 `json:"dropped"`
	BridgeForwards int64 `json:"bridge_forwards"`

	PublishRate  float64 `json:"publish_rate"`  // achieved publishes/s
	DeliveryRate float64 `json:"delivery_rate"` // achieved deliveries/s

	// Publish→deliver latency from sampled obs spans (1-in-8 by
	// default) over the swarm topic class.
	LatencySamples uint64  `json:"latency_samples"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`

	// Self-healing columns: shard takeovers during the run, messages
	// redelivered from the failover journal, messages shed from it,
	// and detection→completion recovery quantiles.
	Failovers     int64   `json:"failovers"`
	Redelivered   int64   `json:"redelivered"`
	Shed          int64   `json:"shed"`
	RecoveryP50Ms float64 `json:"recovery_p50_ms,omitempty"`
	RecoveryP99Ms float64 `json:"recovery_p99_ms,omitempty"`
	// ShardsDown lists shards still down at report time (killed but
	// never revived).
	ShardsDown []int `json:"shards_down,omitempty"`

	PerShard []broker.Stats `json:"per_shard"`
	// Placements maps generator pod name → kube node, recorded when
	// the run went through Testbed.RunSwarm's spread scheduling.
	Placements map[string]string `json:"placements,omitempty"`
}

// Gate checks the report against the swarm-gate CI criteria: zero
// QoS 1 loss, and (when maxP99Ms > 0) a p99 publish→deliver latency
// at or under the floor. It returns nil when the run passes.
func (r *Report) Gate(maxP99Ms float64) error {
	if r.Lost > 0 {
		return fmt.Errorf("swarm: %d of %d expected deliveries lost at QoS %d", r.Lost, r.Expected, r.QoS)
	}
	if maxP99Ms > 0 && r.P99Ms > maxP99Ms {
		return fmt.Errorf("swarm: p99 latency %.2f ms over the %.2f ms floor", r.P99Ms, maxP99Ms)
	}
	return nil
}

// quantile returns the nearest-rank q-quantile of xs, or 0 when xs is
// empty. Exact over the full sample set — failover counts are small,
// so no sketch is needed.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	if frac := q*float64(len(s)-1) - float64(i); frac > 0 && i+1 < len(s) {
		return s[i] + frac*(s[i+1]-s[i])
	}
	return s[i]
}

// GateRecovery checks the failover-drill CI criteria on top of Gate:
// the run must have survived at least wantFailovers shard takeovers,
// shed nothing from the bounded journal, and (when maxRecoveryP99Ms
// > 0) recovered within the p99 bound.
func (r *Report) GateRecovery(wantFailovers int64, maxRecoveryP99Ms float64) error {
	if r.Failovers < wantFailovers {
		return fmt.Errorf("swarm: %d failover(s) completed, drill expected %d", r.Failovers, wantFailovers)
	}
	if r.Shed > 0 {
		return fmt.Errorf("swarm: %d message(s) shed from the failover journal", r.Shed)
	}
	if maxRecoveryP99Ms > 0 && r.RecoveryP99Ms > maxRecoveryP99Ms {
		return fmt.Errorf("swarm: recovery p99 %.2f ms over the %.2f ms bound", r.RecoveryP99Ms, maxRecoveryP99Ms)
	}
	return nil
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
