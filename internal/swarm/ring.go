// Package swarm scales the digibox message plane out across a pool of
// MQTT broker shards, keeps cross-shard semantics identical to a
// single broker via an inter-broker bridge, and drives the result with
// closed- and open-loop load profiles that report machine-readable
// benchmarks. It is the substrate behind `dbox swarm` and
// `Testbed.RunSwarm` — the repo's answer to the paper's "a few devices
// on a laptop to thousands in a cluster" scaling story.
package swarm

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerShard is the number of virtual nodes each shard contributes
// to the hash ring. 256 keeps the per-shard share of key space within
// ~10% of uniform while the ring stays small enough (a few thousand
// points even at high shard counts) to rebuild instantly and search
// with one binary search per publish.
const vnodesPerShard = 256

// ring is a consistent-hash ring mapping string keys (topics, client
// ids) to shard indexes, with health-aware membership: a shard marked
// down keeps its points on the ring but is skipped during the
// successor walk, so its keys re-anchor deterministically onto the
// next alive shard clockwise while every key whose home is alive keeps
// its placement (no reshuffle of healthy placements). Placement only:
// correctness of cross-shard delivery is the bridge's job, so a key
// landing on "the wrong" shard costs a forward, never a lost message.
type ring struct {
	points []ringPoint // sorted by hash
	down   []bool      // down[shard] marks a dead member
	alive  int         // shards not marked down
}

type ringPoint struct {
	hash  uint64
	shard int
}

func newRing(shards int) *ring {
	r := &ring{
		points: make([]ringPoint, 0, shards*vnodesPerShard),
		down:   make([]bool, shards),
		alive:  shards,
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("shard-%d#%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// markDown removes shard s from the alive set. Keys homed on s map to
// their ring successor among survivors until markUp.
func (r *ring) markDown(s int) {
	if s >= 0 && s < len(r.down) && !r.down[s] {
		r.down[s] = true
		r.alive--
	}
}

// markUp restores shard s to the alive set; its original keys re-anchor
// back to it (shardFor is a pure function of the alive set).
func (r *ring) markUp(s int) {
	if s >= 0 && s < len(r.down) && r.down[s] {
		r.down[s] = false
		r.alive++
	}
}

// isDown reports shard s's membership state.
func (r *ring) isDown(s int) bool {
	return s >= 0 && s < len(r.down) && r.down[s]
}

// shardFor maps a key to the first ring point at or after its hash
// whose shard is alive, wrapping at the top of the ring. With every
// shard down it degrades to the raw successor so callers always get a
// valid index.
func (r *ring) shardFor(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	if r.alive > 0 && r.alive < len(r.down) {
		for k := 0; k < len(r.points); k++ {
			p := r.points[(i+k)%len(r.points)]
			if !r.down[p.shard] {
				return p.shard
			}
		}
	}
	return r.points[i].shard
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
