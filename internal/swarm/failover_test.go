package swarm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

// stepUntil drives a virtual pool clock until cond holds, firing due
// timers as fast as they arm. The real-time bound catches a wedged
// monitor without encoding any scheduling guess.
func stepUntil(t *testing.T, v *clock.Virtual, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		if !v.Step(v.Now().Add(time.Hour)) {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// TestFailoverEquivalenceKillRevive is the robustness analogue of
// TestBridgeSemanticsTable: every case runs once against a single
// broker with no faults and once against a 4-shard pool that loses a
// shard mid-sequence — kill, a publish window while the death is
// undetected (guaranteed journal spills), monitor-driven failover on a
// virtual clock, more publishes, an explicit revive, a final batch,
// and late subscribers. The sorted delivery sets must be identical:
// shard loss is invisible to MQTT semantics, message by message, QoS
// bit by QoS bit.
func TestFailoverEquivalenceKillRevive(t *testing.T) {
	cases := []struct {
		name   string
		subs   []subCase
		pubs1  []pubCase // before the kill
		victim string    // ring key (client id or topic) whose shard dies
		window []pubCase // after the kill, before the failover
		pubs2  []pubCase // after the failover
		pubs3  []pubCase // after the revive
		// subsAfter subscribe at the very end — the retained-state-
		// survives-failover path.
		subsAfter []subCase
	}{
		{
			name: "kill the subscriber's shard",
			subs: []subCase{
				{"app-a", "fo/+/status", 1},
				{"app-b", "fo/#", 0},
			},
			pubs1:  []pubCase{{"fo/dev-1/status", "before", 1, false}},
			victim: "app-a",
			window: []pubCase{
				{"fo/dev-1/status", "window-1", 1, false},
				{"fo/dev-2/status", "window-2", 1, false},
				{"fo/dev-3/status", "window-3", 0, false},
			},
			pubs2: []pubCase{{"fo/dev-2/status", "after-failover", 1, false}},
			pubs3: []pubCase{{"fo/dev-3/status", "after-revive", 1, false}},
		},
		{
			name: "kill a topic's home shard",
			subs: []subCase{
				{"app-a", "fo/+/status", 1},
			},
			pubs1:  []pubCase{{"fo/dev-1/status", "before", 1, false}},
			victim: "fo/dev-1/status",
			window: []pubCase{
				{"fo/dev-1/status", "homeless-1", 1, false},
				{"fo/dev-1/status", "homeless-2", 1, false},
			},
			pubs2: []pubCase{{"fo/dev-1/status", "after-failover", 1, false}},
			pubs3: []pubCase{{"fo/dev-1/status", "after-revive", 1, false}},
		},
		{
			name: "retained state survives kill and revive",
			subs: []subCase{
				{"app-a", "fo/+/status", 1},
			},
			pubs1:  []pubCase{{"fo/dev-1/status", "v1", 1, true}},
			victim: "fo/dev-1/status",
			window: []pubCase{{"fo/dev-1/status", "v2", 1, true}},
			pubs2:  []pubCase{{"fo/dev-2/status", "v3", 1, true}},
			pubs3:  nil,
			subsAfter: []subCase{
				{"late", "fo/+/status", 1},
			},
		},
		{
			name: "overlap dedup holds through redelivery",
			subs: []subCase{
				{"app-a", "fo/+/status", 0},
				{"app-a", "fo/#", 1},
			},
			pubs1:  nil,
			victim: "app-a",
			window: []pubCase{{"fo/dev-1/status", "once", 1, false}},
			pubs2:  nil,
			pubs3:  []pubCase{{"fo/dev-1/status", "twice", 1, false}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: a single broker, no faults, same sequence.
			var all []pubCase
			all = append(all, tc.pubs1...)
			all = append(all, tc.window...)
			all = append(all, tc.pubs2...)
			all = append(all, tc.pubs3...)
			want := runSemantics(t, 1, tc.subs, all, tc.subsAfter)

			v := clock.NewVirtual()
			pool := NewPool(PoolOptions{
				Shards: 4,
				Clock:  v,
				Health: HealthOptions{ProbeInterval: 10 * time.Millisecond, FailThreshold: 2, Seed: 5},
			})
			defer pool.Close()
			rec := &recorder{}
			for _, s := range tc.subs {
				if err := pool.Subscribe(s.client, s.filter, s.qos, rec.handler(s.client)); err != nil {
					t.Fatal(err)
				}
			}
			publish := func(pubs []pubCase) {
				for _, p := range pubs {
					if err := pool.Publish("pub", p.topic, []byte(p.payload), p.qos, p.retain); err != nil {
						t.Fatal(err)
					}
				}
			}
			publish(tc.pubs1)
			victim := pool.ShardFor(tc.victim)
			if err := pool.KillShard(victim); err != nil {
				t.Fatal(err)
			}
			// The death is not yet detected: these publishes must park in
			// the journal (or re-anchor at publish time) and come out
			// exactly once.
			publish(tc.window)
			stepUntil(t, v, func() bool {
				return pool.FailoverStats().Failovers == 1
			}, "monitor never ran the failover")
			publish(tc.pubs2)
			if err := pool.ReviveShard(victim); err != nil {
				t.Fatal(err)
			}
			publish(tc.pubs3)
			for _, s := range tc.subsAfter {
				if err := pool.Subscribe(s.client, s.filter, s.qos, rec.handler(s.client)); err != nil {
					t.Fatal(err)
				}
			}

			got := rec.sorted()
			if len(want) == 0 {
				t.Fatal("single-broker run delivered nothing — broken test case")
			}
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("delivery sets differ\nsingle: %v\nfailover pool: %v", want, got)
			}
			if stats := pool.FailoverStats(); stats.Shed != 0 {
				t.Fatalf("journal shed %d messages in a small run", stats.Shed)
			}
			if down := pool.Stats().ShardsDown; len(down) != 0 {
				t.Fatalf("shards still down after revive: %v", down)
			}
		})
	}
}

// TestPartitionHealFlush severs a subscriber shard's bridge links,
// proves cross-shard traffic parks instead of delivering, then heals
// and requires the parked messages to arrive exactly once, in order.
func TestPartitionHealFlush(t *testing.T) {
	pool := NewPool(PoolOptions{Shards: 2, Health: HealthOptions{Disable: true}})
	defer pool.Close()
	rec := &recorder{}
	if err := pool.Subscribe("s", "pz/#", 1, rec.handler("s")); err != nil {
		t.Fatal(err)
	}
	subShard := pool.ShardFor("s")
	if err := pool.PartitionShard(subShard); err != nil {
		t.Fatal(err)
	}
	// Publish only to topics homed on the OTHER shard, so every
	// delivery must cross the severed bridge link.
	var topics []string
	for i := 0; len(topics) < 5; i++ {
		topic := fmt.Sprintf("pz/dev-%d/status", i)
		if pool.ShardFor(topic) != subShard {
			topics = append(topics, topic)
		}
	}
	for seq, topic := range topics {
		if err := pool.Publish("pub", topic, []byte(fmt.Sprintf("m%d", seq)), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.sorted(); len(got) != 0 {
		t.Fatalf("severed bridge delivered %d messages: %v", len(got), got)
	}
	if err := pool.HealShard(subShard); err != nil {
		t.Fatal(err)
	}
	got := rec.sorted()
	if len(got) != len(topics) {
		t.Fatalf("heal flushed %d messages, want %d: %v", len(got), len(topics), got)
	}
	if shed := pool.FailoverStats().Shed; shed != 0 {
		t.Fatalf("shed %d under the journal limit", shed)
	}
}

// TestJournalShedBounded overflows the bounded journal during a
// partition: the limit parks, the excess sheds (counted, never
// blocking), and the heal flushes exactly the parked prefix.
func TestJournalShedBounded(t *testing.T) {
	const limit = 4
	pool := NewPool(PoolOptions{Shards: 2, Health: HealthOptions{Disable: true, PendingLimit: limit}})
	defer pool.Close()
	rec := &recorder{}
	if err := pool.Subscribe("s", "sz/#", 1, rec.handler("s")); err != nil {
		t.Fatal(err)
	}
	subShard := pool.ShardFor("s")
	if err := pool.PartitionShard(subShard); err != nil {
		t.Fatal(err)
	}
	var topics []string
	for i := 0; len(topics) < limit+6; i++ {
		topic := fmt.Sprintf("sz/dev-%d/status", i)
		if pool.ShardFor(topic) != subShard {
			topics = append(topics, topic)
		}
	}
	for seq, topic := range topics {
		if err := pool.Publish("pub", topic, []byte(fmt.Sprintf("m%d", seq)), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	if shed := pool.FailoverStats().Shed; shed != 6 {
		t.Fatalf("shed = %d, want 6 (journal limit %d, %d publishes)", shed, limit, limit+6)
	}
	if err := pool.HealShard(subShard); err != nil {
		t.Fatal(err)
	}
	if got := rec.sorted(); len(got) != limit {
		t.Fatalf("heal flushed %d messages, want the %d parked under the limit", len(got), limit)
	}
	// Shed is monotonic: healing does not forgive what was dropped.
	if shed := pool.FailoverStats().Shed; shed != 6 {
		t.Fatalf("shed = %d after heal, want 6", shed)
	}
}

// TestFailoverRedeliversToMigratedClients pins the redelivery counter:
// forwards parked against a dead subscriber shard surface as
// Redelivered once its clients migrate.
func TestFailoverRedeliversToMigratedClients(t *testing.T) {
	v := clock.NewVirtual()
	pool := NewPool(PoolOptions{
		Shards: 3,
		Clock:  v,
		Health: HealthOptions{ProbeInterval: 5 * time.Millisecond, FailThreshold: 2, Seed: 9},
	})
	defer pool.Close()
	rec := &recorder{}
	if err := pool.Subscribe("s", "rz/#", 1, rec.handler("s")); err != nil {
		t.Fatal(err)
	}
	subShard := pool.ShardFor("s")
	if err := pool.KillShard(subShard); err != nil {
		t.Fatal(err)
	}
	published := 0
	for i := 0; published < 3; i++ {
		topic := fmt.Sprintf("rz/dev-%d/status", i)
		if pool.ShardFor(topic) == subShard {
			continue // homed on the dead shard: that is the replay path, not the forward path
		}
		if err := pool.Publish("pub", topic, []byte("x"), 1, false); err != nil {
			t.Fatal(err)
		}
		published++
	}
	stepUntil(t, v, func() bool {
		return pool.FailoverStats().Failovers == 1
	}, "monitor never ran the failover")
	stats := pool.FailoverStats()
	if stats.Redelivered != int64(published) {
		t.Fatalf("redelivered = %d, want %d", stats.Redelivered, published)
	}
	if got := rec.sorted(); len(got) != published {
		t.Fatalf("subscriber saw %d messages, want %d: %v", len(got), published, got)
	}
	if len(stats.RecoverySec) != 1 || stats.RecoverySec[0] < 0 {
		t.Fatalf("recovery samples = %v, want one non-negative duration", stats.RecoverySec)
	}
}
