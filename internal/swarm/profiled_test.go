package swarm

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/profile"
)

func profiledSpec() LoadSpec {
	return LoadSpec{
		Duration: 2 * time.Second,
		Workers:  3,
		Seed:     17,
		DeviceProfile: &profile.Profile{
			Name: "xspeed",
			Seed: 17,
			Populations: []profile.Population{
				{Kind: "thermostat", Count: 5,
					Cadence: profile.Cadence{Dist: profile.DistPoisson, Mean: 120 * time.Millisecond},
					Fields:  []profile.Field{{Name: "t", Gen: profile.GenSine, Min: 18, Max: 26, Period: time.Minute}}},
				{Kind: "meter", Count: 4,
					Cadence: profile.Cadence{Dist: profile.DistFixed, Mean: 80 * time.Millisecond},
					Fields:  []profile.Field{{Name: "kwh", Gen: profile.GenRandomWalk, Min: 0, Max: 10}}},
				{Kind: "cam", Count: 3,
					Cadence: profile.Cadence{Dist: profile.DistLognormal, Mean: 150 * time.Millisecond, Sigma: 0.5},
					Burst:   &profile.Burst{Every: time.Second, Length: 100 * time.Millisecond, Factor: 4}},
			},
		},
	}
}

type firedMsg struct {
	at      time.Duration
	payload []byte
}

// runProfiledOn drives every worker of a profiled generator on the
// given clock and returns the per-device fire streams. start anchors
// offsets; drive starts the clock's pump after the workers are up.
func runProfiledOn(t *testing.T, clk clock.Clock, drive func(), done func()) map[int][]firedMsg {
	t.Helper()
	var mu sync.Mutex
	streams := map[int][]firedMsg{}
	start := clk.Now()
	g, err := NewGenerator(profiledSpec(), func(device int, _ uint64, payload []byte) {
		mu.Lock()
		streams[device] = append(streams[device], firedMsg{clk.Since(start), append([]byte(nil), payload...)})
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SetClock(clk)
	var wg sync.WaitGroup
	for w := 0; w < g.Workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := g.RunWorker(context.Background(), w); err != nil {
				t.Error(err)
			}
		}(w)
	}
	if drive != nil {
		drive()
	}
	wg.Wait()
	if done != nil {
		done()
	}
	return streams
}

// TestProfiledCrossSpeedDeterminism is the profile determinism table:
// the same (profile, seed) produces byte-identical per-device message
// streams — payloads and scenario-time offsets — on a hand-stepped
// clock.Virtual, a paced clock.Scaled at a finite factor, and an
// unpaced clock.Scaled at SpeedMax; and all of them match the pure
// arithmetic profile.Walk oracle.
func TestProfiledCrossSpeedDeterminism(t *testing.T) {
	// Oracle: the clockless walk.
	spec := profiledSpec()
	oracle := map[int][]firedMsg{}
	err := profile.Walk(spec.DeviceProfile, 0, spec.Seed, spec.Duration,
		func(device int, at time.Duration, payload []byte) {
			oracle[device] = append(oracle[device], firedMsg{at, append([]byte(nil), payload...)})
		})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range oracle {
		total += len(s)
	}
	if total == 0 {
		t.Fatal("oracle walk produced no messages")
	}

	runs := map[string]map[int][]firedMsg{}

	// clock.Virtual, stepped by hand until the workers drain.
	{
		v := clock.NewVirtual()
		var drained sync.WaitGroup
		drained.Add(1)
		finished := make(chan struct{})
		go func() {
			defer drained.Done()
			for {
				select {
				case <-finished:
					return
				default:
				}
				if !v.Step(clock.Epoch.Add(time.Hour)) {
					// No timer armed yet: let the workers arm one.
					runtime.Gosched()
				}
			}
		}()
		runs["virtual"] = runProfiledOn(t, v, nil, func() { close(finished) })
		drained.Wait()
	}

	// clock.Scaled at a finite factor and unpaced.
	for name, factor := range map[string]float64{
		"scaled-10000x": 10000,
		"scaled-max":    clock.SpeedMax,
	} {
		s := clock.NewScaled(factor, nil)
		go s.Drive()
		runs[name] = runProfiledOn(t, s, nil, s.Stop)
	}

	for name, got := range runs {
		if len(got) != len(oracle) {
			t.Fatalf("%s: %d devices fired, oracle has %d", name, len(got), len(oracle))
		}
		for d, want := range oracle {
			g := got[d]
			if len(g) != len(want) {
				t.Fatalf("%s: device %d fired %d messages, oracle %d", name, d, len(g), len(want))
			}
			for i := range want {
				if !bytes.Equal(g[i].payload, want[i].payload) {
					t.Fatalf("%s: device %d message %d payload diverges:\n  got  %s\n  want %s",
						name, d, i, g[i].payload, want[i].payload)
				}
			}
		}
	}
}

// TestProfiledDefaultsAndValidation covers the spec plumbing: setting
// DeviceProfile selects the profiled discipline, explicit population
// counts override the device budget, and an unsatisfiable profile
// fails generator construction.
func TestProfiledDefaultsAndValidation(t *testing.T) {
	spec := profiledSpec().WithDefaults()
	if spec.Profile != ProfileProfiled {
		t.Fatalf("profile = %q, want %q", spec.Profile, ProfileProfiled)
	}
	if spec.Devices != 12 {
		t.Fatalf("devices = %d, want the profile's 12 explicit devices", spec.Devices)
	}

	bad := profiledSpec()
	bad.DeviceProfile.Populations[0].Cadence.Mean = 0
	if _, err := NewGenerator(bad, func(int, uint64, []byte) {}); err == nil {
		t.Fatal("unsatisfiable profile accepted by NewGenerator")
	}
}
