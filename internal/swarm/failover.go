package swarm

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/clock"
)

// This file is the pool's self-healing plane. A health monitor probes
// every shard on the pool clock; when one stops answering it runs a
// failover under the exclusive placement lock: the dead shard's keys
// re-anchor to ring survivors, its in-process subscriptions migrate
// (without retained replay — the clients never unsubscribed), retained
// state the survivors miss is re-replicated, and every message the
// journal parked against the outage is redelivered so QoS 1
// accounting stays exact. Chaos faults (shard-kill / shard-partition /
// shard-revive) and `dbox swarm -kill-shard` drive the same paths.

// HealthOptions tunes shard failure detection and the failover
// journal. The zero value means defaults.
type HealthOptions struct {
	// ProbeInterval is the health probe tick; default 25ms.
	ProbeInterval time.Duration
	// FailThreshold is the number of consecutive failed probes that
	// declares a shard dead and triggers failover; default 3.
	FailThreshold int
	// ReprobeMax caps the exponential backoff between liveness
	// reprobes of a down shard; default 1s.
	ReprobeMax time.Duration
	// PendingLimit bounds the per-shard journal of messages parked
	// during an outage; overflow is shed (counted, never blocking).
	// Default 16384.
	PendingLimit int
	// Seed seeds the reprobe backoff jitter so deterministic harnesses
	// replay identical probe schedules. 0 is a valid (fixed) seed.
	Seed int64
	// Disable skips starting the monitor; KillShard/ReviveShard and
	// the journal still work, detection just never fires on its own.
	// Single-broker tests that close the pool abruptly use this.
	Disable bool
}

func (h HealthOptions) withDefaults() HealthOptions {
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = 25 * time.Millisecond
	}
	if h.FailThreshold <= 0 {
		h.FailThreshold = 3
	}
	if h.ReprobeMax <= 0 {
		h.ReprobeMax = time.Second
	}
	if h.PendingLimit <= 0 {
		h.PendingLimit = 16384
	}
	return h
}

// pendKind says how a journaled message re-enters the pool at flush.
type pendKind uint8

const (
	// pendPublish: the message's home shard was dead at publish time,
	// so nobody saw it. Replay through the re-anchored ring gives it
	// the full fan-out exactly once.
	pendPublish pendKind = iota
	// pendForward: a bridge forward to one shard failed after every
	// other shard already delivered. Redeliver only to the clients
	// that were waiting on the target, never re-fan-out.
	pendForward
)

// pendingMsg is one journaled message.
type pendingMsg struct {
	kind    pendKind
	target  int // shard the message was headed to
	from    string
	topic   string
	payload []byte
	qos     byte
	retain  bool
}

// pendJournal parks messages gated by a shard outage, keyed by the
// gating shard, bounded per shard. Overflow sheds the newest message
// and counts it — graceful degradation over unbounded growth or
// blocking a publish path. Lock order: pool.topo before pendJournal.mu.
type pendJournal struct {
	mu      sync.Mutex
	limit   int
	pending map[int][]pendingMsg
	shed    int64
}

func newPendJournal(limit int) *pendJournal {
	return &pendJournal{limit: limit, pending: map[int][]pendingMsg{}}
}

// spill parks one message against gate. Called from the pool publish
// path (home shard dead) and the bridge forward path (target dead or
// link severed).
func (j *pendJournal) spill(gate int, kind pendKind, target int, from, topic string, payload []byte, qos byte, retain bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	q := j.pending[gate]
	if len(q) >= j.limit {
		j.shed++
		return
	}
	// Copy the payload: broker delivery paths may reuse buffers, and a
	// journaled message outlives its publish call by design.
	buf := make([]byte, len(payload))
	copy(buf, payload)
	j.pending[gate] = append(q, pendingMsg{
		kind: kind, target: target, from: from, topic: topic,
		payload: buf, qos: qos, retain: retain,
	})
}

// drain removes and returns gate's queue in FIFO order.
func (j *pendJournal) drain(gate int) []pendingMsg {
	j.mu.Lock()
	defer j.mu.Unlock()
	q := j.pending[gate]
	delete(j.pending, gate)
	return q
}

// depth returns the total number of parked messages.
func (j *pendJournal) depth() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, q := range j.pending {
		n += len(q)
	}
	return n
}

func (j *pendJournal) shedCount() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.shed
}

// healthMonitor is the pool's failure detector: one goroutine probing
// Broker.Alive on every tick of the pool clock.
type healthMonitor struct {
	p    *Pool
	stop chan struct{}
	done chan struct{}
}

func (p *Pool) startMonitor() *healthMonitor {
	m := &healthMonitor{p: p, stop: make(chan struct{}), done: make(chan struct{})}
	go m.run()
	return m
}

// stopWait signals the monitor and blocks until its goroutine exits —
// the leakcheck contract for Pool.Close.
func (m *healthMonitor) stopWait() {
	close(m.stop)
	<-m.done
}

func (m *healthMonitor) run() {
	defer close(m.done)
	p := m.p
	h := p.opts.Health
	jit := clock.NewJitter(h.Seed)
	n := p.NumShards()
	fails := make([]int, n) // consecutive failed probes, alive shards
	firstFail := make([]time.Time, n)
	backoff := make([]time.Duration, n) // reprobe backoff, down shards
	nextProbe := make([]time.Time, n)
	tick := p.clk.NewTicker(h.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C():
		}
		now := p.clk.Now()
		for i := 0; i < n; i++ {
			if p.ShardDown(i) {
				// Down shard: reprobe for external revival on a capped
				// exponential backoff with full seeded jitter, so a big
				// pool's reprobes never synchronize into a thundering
				// herd against a recovering shard.
				if backoff[i] == 0 {
					backoff[i] = h.ProbeInterval
					nextProbe[i] = now
				}
				if now.Before(nextProbe[i]) {
					continue
				}
				if p.Shard(i).Alive() {
					// Somebody swapped a live broker in without going
					// through ReviveShard — finish the recovery.
					p.ReviveShard(i)
					backoff[i], fails[i] = 0, 0
					continue
				}
				backoff[i] *= 2
				if backoff[i] > h.ReprobeMax {
					backoff[i] = h.ReprobeMax
				}
				nextProbe[i] = now.Add(time.Duration(1 + jit.Int63n(int64(backoff[i]))))
				continue
			}
			backoff[i] = 0
			if p.Shard(i).Alive() {
				fails[i] = 0
				continue
			}
			if fails[i] == 0 {
				firstFail[i] = now
			}
			if fails[i]++; fails[i] >= h.FailThreshold {
				p.failover(i, firstFail[i])
				fails[i] = 0
			}
		}
	}
}

// failover takes over a dead shard: re-anchor its keys and
// subscriptions onto ring survivors, re-replicate retained state the
// survivors miss, and flush the journal so every parked QoS 1 message
// is delivered exactly once per subscriber. Holding topo exclusively
// for the whole sequence is what makes the accounting exact: no pool
// publish can land in a half-migrated topology.
func (p *Pool) failover(dead int, detected time.Time) {
	p.topo.Lock()
	if dead < 0 || dead >= len(p.shards) || p.ring.isDown(dead) || p.ring.alive <= 1 {
		// Already handled, or no survivor exists to take over.
		p.topo.Unlock()
		return
	}
	p.ring.markDown(dead)
	p.bridge.dropShard(dead)
	// The dead broker's trie still names its subscriptions; the pool
	// registry holds the delivery functions. Cross-check them so a
	// registry bug surfaces as a log line, then migrate from the
	// registry (the authoritative side).
	exported := len(p.shards[dead].ExportSubscriptions())
	moved := p.migrated[dead]
	if moved == nil {
		moved = map[string]bool{}
		p.migrated[dead] = moved
	}
	migratedSubs := 0
	for id, pc := range p.reg {
		if pc.owner != dead {
			continue
		}
		newOwner := p.ring.shardFor(id)
		for filter, sub := range pc.subs {
			// Resubscribe, not Subscribe: the client never unsubscribed,
			// so replaying retained messages here would double-deliver.
			if err := p.shards[newOwner].ResubscribeInProcess(id, filter, sub.qos, sub.fn); err != nil {
				p.logf("swarm: failover shard=%d: re-anchor %s %q: %v", dead, id, filter, err)
				continue
			}
			migratedSubs++
		}
		pc.owner = newOwner
		moved[id] = true
	}
	if wire := exported - migratedSubs; wire > 0 {
		// Wire-client subscriptions die with their TCP sessions; their
		// owners reconnect to a live shard and resubscribe themselves
		// (broker client reconnect path). Nothing to take over here.
		p.logf("swarm: failover shard=%d: %d wire subscription(s) left to client reconnect", dead, wire)
	}
	// Re-replicate retained messages the survivors miss. The bridge
	// replicates retained publishes to every shard at route time, so
	// this is normally empty — it covers retained state that raced the
	// shard's death.
	reReplicated := 0
	if dr := p.shards[dead].ExportRetained(); len(dr) > 0 {
		for s, sh := range p.shards {
			if s == dead || !sh.Alive() || p.ring.isDown(s) {
				continue
			}
			have := map[string]bool{}
			for _, m := range sh.ExportRetained() {
				have[m.Topic] = true
			}
			var missing []broker.Message
			for _, m := range dr {
				if !have[m.Topic] {
					missing = append(missing, m)
				}
			}
			sh.ImportRetained(missing)
			reReplicated += len(missing)
		}
	}
	redelivered := p.flushGateLocked(dead, -1)
	p.topo.Unlock()

	elapsed := p.clk.Since(detected).Seconds()
	p.statMu.Lock()
	p.failovers++
	p.recoveries = append(p.recoveries, elapsed)
	p.statMu.Unlock()
	p.failoverTotal.Inc()
	p.failoverSec.Observe(elapsed)
	p.shardUp.With(strconv.Itoa(dead)).Set(0)
	p.opts.Bus.Publish("shard", map[string]any{
		"shard":       dead,
		"state":       "down",
		"recovery_ms": elapsed * 1e3,
		"redelivered": redelivered,
	})
	p.logf("swarm: failover shard=%d complete in %.1fms: %d client(s) re-anchored, %d sub(s) migrated, %d retained re-replicated, %d redelivered",
		dead, elapsed*1000, len(moved), migratedSubs, reReplicated, redelivered)
}

// flushGateLocked drains and replays every message parked against
// gate. Caller holds topo exclusively. skipRetainedTo suppresses
// retained forwards into that shard (it was just seeded from a donor
// replica, which is at least as fresh); pass -1 to keep them.
// Returns the number of messages redelivered directly to migrated
// clients.
func (p *Pool) flushGateLocked(gate, skipRetainedTo int) int {
	redelivered := 0
	for _, m := range p.pend.drain(gate) {
		switch m.kind {
		case pendPublish:
			// Nobody saw this message: replay through the current ring
			// for the full fan-out.
			if err := p.publishLocked(m.from, m.topic, m.payload, m.qos, m.retain); err != nil {
				p.logf("swarm: flush shard=%d: replay %q: %v", gate, m.topic, err)
			}
		case pendForward:
			if m.retain && m.target == skipRetainedTo {
				continue
			}
			if moved := p.migrated[m.target]; len(moved) > 0 {
				// The target's clients migrated: hand the message to
				// exactly those clients, wherever they live now.
				redelivered += p.redeliverLocked(moved, m)
				continue
			}
			if p.shards[m.target].Alive() && !p.ring.isDown(m.target) {
				if err := p.shards[m.target].PublishQoS(bridgePrefix+m.from, m.topic, m.payload, m.qos, m.retain); err == nil {
					continue
				}
			}
			// Target still out (or died again mid-flush): park it back
			// against the target itself.
			p.pend.spill(m.target, pendForward, m.target, m.from, m.topic, m.payload, m.qos, m.retain)
		}
	}
	p.statMu.Lock()
	p.redelivers += int64(redelivered)
	p.statMu.Unlock()
	return redelivered
}

// redeliverLocked delivers one parked forward directly to the
// migrated clients that were waiting on its dead target, applying
// MQTT's per-client overlapping-filter rule: one delivery per client
// at the highest matching subscription QoS (capped by the publish
// QoS). Caller holds topo exclusively.
func (p *Pool) redeliverLocked(moved map[string]bool, m pendingMsg) int {
	n := 0
	for id := range moved {
		pc := p.reg[id]
		if pc == nil {
			continue // client unsubscribed entirely since migration
		}
		var fn func(broker.Message)
		var best byte
		for filter, sub := range pc.subs {
			if broker.MatchTopic(filter, m.topic) && (fn == nil || sub.qos > best) {
				fn, best = sub.fn, sub.qos
			}
		}
		if fn == nil {
			continue
		}
		qos := m.qos
		if best < qos {
			qos = best
		}
		fn(broker.Message{Topic: m.topic, Payload: m.payload, QoS: qos, Retained: m.retain})
		n++
	}
	return n
}

// KillShard closes shard i's broker without telling the pool — the
// chaos shard-kill fault. The health monitor detects the death and
// runs the failover, exactly as it would for a real crash.
func (p *Pool) KillShard(i int) error {
	p.topo.RLock()
	if i < 0 || i >= len(p.shards) {
		p.topo.RUnlock()
		return fmt.Errorf("swarm: kill-shard %d: pool has %d shards", i, len(p.shards))
	}
	sh := p.shards[i]
	p.topo.RUnlock()
	sh.Close()
	p.logf("swarm: chaos killed shard %d", i)
	return nil
}

// ReviveShard replaces a dead shard with a fresh broker, seeds its
// retained replica from a survivor, marks it alive on the ring (its
// original keys re-anchor back — shardFor is a pure function of the
// alive set), and flushes any messages still parked against it.
// Migrated in-process clients stay where failover put them: placement
// is sticky, and the bridge makes placement a performance detail, not
// a correctness one.
func (p *Pool) ReviveShard(i int) error {
	p.topo.Lock()
	if i < 0 || i >= len(p.shards) {
		p.topo.Unlock()
		return fmt.Errorf("swarm: revive-shard %d: pool has %d shards", i, len(p.shards))
	}
	swapped := false
	if !p.shards[i].Alive() {
		nb := p.newShardBroker(i)
		for s, sh := range p.shards {
			if s != i && sh.Alive() && !p.ring.isDown(s) {
				nb.ImportRetained(sh.ExportRetained())
				break
			}
		}
		p.shards[i] = nb
		p.bridge.setShard(i, nb)
		swapped = true
		// Clients still recorded on i never migrated (no survivor was
		// available, e.g. a single-shard pool): re-anchor them onto the
		// fresh broker so their subscriptions live again.
		for id, pc := range p.reg {
			if pc.owner != i {
				continue
			}
			for filter, sub := range pc.subs {
				if err := nb.ResubscribeInProcess(id, filter, sub.qos, sub.fn); err != nil {
					p.logf("swarm: revive shard=%d: re-anchor %s %q: %v", i, id, filter, err)
				}
			}
		}
	}
	if p.ring.isDown(i) {
		p.ring.markUp(i)
	}
	skipRetained := -1
	if swapped {
		skipRetained = i // retained already seeded from the donor replica
	}
	p.flushGateLocked(i, skipRetained)
	p.topo.Unlock()
	p.shardUp.With(strconv.Itoa(i)).Set(1)
	p.opts.Bus.Publish("shard", map[string]any{"shard": i, "state": "up"})
	p.logf("swarm: shard %d revived", i)
	return nil
}

// PartitionShard severs shard i's bridge links in both directions —
// the chaos shard-partition fault. The shard stays alive and serves
// its own clients; cross-shard traffic parks in the journal until
// HealShard.
func (p *Pool) PartitionShard(i int) error {
	p.topo.Lock()
	defer p.topo.Unlock()
	if i < 0 || i >= len(p.shards) {
		return fmt.Errorf("swarm: partition-shard %d: pool has %d shards", i, len(p.shards))
	}
	p.bridge.setSevered(i, true)
	p.logf("swarm: chaos partitioned shard %d (bridge links severed)", i)
	return nil
}

// HealShard restores shard i's bridge links and flushes everything
// the partition parked, in publish order. Concurrent retained writes
// during the partition resolve last-flush-wins.
func (p *Pool) HealShard(i int) error {
	p.topo.Lock()
	defer p.topo.Unlock()
	if i < 0 || i >= len(p.shards) {
		return fmt.Errorf("swarm: heal-shard %d: pool has %d shards", i, len(p.shards))
	}
	p.bridge.setSevered(i, false)
	p.flushGateLocked(i, -1)
	p.logf("swarm: shard %d partition healed", i)
	return nil
}

// FailoverStats is the self-healing slice of a pool's counters.
type FailoverStats struct {
	// Failovers is the number of completed shard takeovers.
	Failovers int64 `json:"failovers"`
	// Redelivered counts journaled messages delivered directly to
	// migrated clients after a takeover.
	Redelivered int64 `json:"redelivered"`
	// Shed counts messages dropped from the bounded journal.
	Shed int64 `json:"shed"`
	// RecoverySec holds one detection→completion duration per
	// failover, in seconds.
	RecoverySec []float64 `json:"recovery_sec,omitempty"`
}

// FailoverStats snapshots the pool's self-healing counters.
func (p *Pool) FailoverStats() FailoverStats {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	out := FailoverStats{
		Failovers:   p.failovers,
		Redelivered: p.redelivers,
		Shed:        p.pend.shedCount(),
	}
	out.RecoverySec = append(out.RecoverySec, p.recoveries...)
	return out
}

// logf logs through the pool's Logf when set.
func (p *Pool) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}
