package swarm

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/broker"
)

// bridgePrefix marks a publish as already bridge-forwarded. A shard's
// RouteHook sees the prefixed publisher identity and stops — forwarding
// is single-hop by construction, so no loop detection is needed.
const bridgePrefix = "swarm!"

// bridge keeps cross-shard delivery semantics identical to a single
// broker. It maintains, per filter, the set of shards holding a live
// subscription (fed by each shard's SubscribeHook) and forwards every
// publish entering one shard to the other shards that need it:
//
//   - shards with a matching subscription — exact-map lookup for
//     concrete filters, a MatchTopic scan over the (small) wildcard
//     set otherwise;
//   - every shard, when the publish is retained — each shard's
//     retained store is a full replica, so wire or in-process
//     subscribers on any shard observe single-broker retained
//     behaviour.
//
// Per-client delivery stays single-broker-equivalent because all of a
// client's subscriptions live on one shard (the pool anchors by client
// id; a wire client is connected to exactly one shard), so exactly one
// broker applies MQTT's per-client overlapping-filter dedup for it.
type bridge struct {
	shards []*broker.Broker

	mu       sync.RWMutex
	concrete map[string]map[int]int // exact filter -> shard -> refcount
	wild     map[string]map[int]int // wildcard filter -> shard -> refcount

	forwards int64 // publishes forwarded shard-to-shard
}

func newBridge() *bridge {
	return &bridge{
		concrete: map[string]map[int]int{},
		wild:     map[string]map[int]int{},
	}
}

// subHook returns the SubscribeHook for shard i.
func (br *bridge) subHook(i int) func(clientID, filter string, add bool) {
	return func(_, filter string, add bool) {
		idx := br.concrete
		if strings.ContainsAny(filter, "+#") {
			idx = br.wild
		}
		br.mu.Lock()
		defer br.mu.Unlock()
		shards := idx[filter]
		if add {
			if shards == nil {
				shards = map[int]int{}
				idx[filter] = shards
			}
			shards[i]++
			return
		}
		if shards == nil {
			return
		}
		if shards[i]--; shards[i] <= 0 {
			delete(shards, i)
		}
		if len(shards) == 0 {
			delete(idx, filter)
		}
	}
}

// routeHook returns the RouteHook for shard i: decide which sibling
// shards need this publish and forward it with the bridge-prefixed
// publisher identity.
func (br *bridge) routeHook(i int) func(from, topic string, payload []byte, qos byte, retain bool) {
	return func(from, topic string, payload []byte, qos byte, retain bool) {
		if strings.HasPrefix(from, bridgePrefix) {
			return // already forwarded once; single hop only
		}
		var targets []int
		if retain {
			// Replicate retained state everywhere.
			for t := range br.shards {
				if t != i {
					targets = append(targets, t)
				}
			}
		} else {
			seen := map[int]bool{i: true}
			br.mu.RLock()
			for t := range br.concrete[topic] {
				if !seen[t] {
					seen[t] = true
					targets = append(targets, t)
				}
			}
			for filter, shards := range br.wild {
				if !broker.MatchTopic(filter, topic) {
					continue
				}
				for t := range shards {
					if !seen[t] {
						seen[t] = true
						targets = append(targets, t)
					}
				}
			}
			br.mu.RUnlock()
		}
		for _, t := range targets {
			atomic.AddInt64(&br.forwards, 1)
			// Validation already passed on the receiving shard; errors
			// here would only repeat it.
			br.shards[t].PublishQoS(bridgePrefix+from, topic, payload, qos, retain)
		}
	}
}

func (br *bridge) forwardCount() int64 {
	return atomic.LoadInt64(&br.forwards)
}
