package swarm

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/broker"
)

// bridgePrefix marks a publish as already bridge-forwarded. A shard's
// RouteHook sees the prefixed publisher identity and stops — forwarding
// is single-hop by construction, so no loop detection is needed.
const bridgePrefix = "swarm!"

// bridge keeps cross-shard delivery semantics identical to a single
// broker. It maintains, per filter, the set of shards holding a live
// subscription (fed by each shard's SubscribeHook) and forwards every
// publish entering one shard to the other shards that need it:
//
//   - shards with a matching subscription — exact-map lookup for
//     concrete filters, a MatchTopic scan over the (small) wildcard
//     set otherwise;
//   - every shard, when the publish is retained — each shard's
//     retained store is a full replica, so wire or in-process
//     subscribers on any shard observe single-broker retained
//     behaviour.
//
// Per-client delivery stays single-broker-equivalent because all of a
// client's subscriptions live on one shard (the pool anchors by client
// id; a wire client is connected to exactly one shard), so exactly one
// broker applies MQTT's per-client overlapping-filter dedup for it.
//
// Failover awareness: a forward whose target shard is dead (closed) or
// whose link is severed by a shard-partition fault is not lost — it is
// spilled into the pool's bounded journal, keyed by the shard whose
// outage gated it, and replayed when that shard fails over or heals.
type bridge struct {
	shards []*broker.Broker

	// spill journals a forward the bridge could not deliver:
	// gate is the shard whose outage caused it (the journal key),
	// target the shard the forward was headed to.
	spill func(gate int, kind pendKind, target int, from, topic string, payload []byte, qos byte, retain bool)

	mu       sync.RWMutex
	concrete map[string]map[int]int // exact filter -> shard -> refcount
	wild     map[string]map[int]int // wildcard filter -> shard -> refcount
	severed  map[int]bool           // shard-partition: links cut both ways

	forwards int64 // publishes forwarded shard-to-shard
}

func newBridge() *bridge {
	return &bridge{
		concrete: map[string]map[int]int{},
		wild:     map[string]map[int]int{},
		severed:  map[int]bool{},
	}
}

// subHook returns the SubscribeHook for shard i.
func (br *bridge) subHook(i int) func(clientID, filter string, add bool) {
	return func(_, filter string, add bool) {
		idx := br.concrete
		if strings.ContainsAny(filter, "+#") {
			idx = br.wild
		}
		br.mu.Lock()
		defer br.mu.Unlock()
		shards := idx[filter]
		if add {
			if shards == nil {
				shards = map[int]int{}
				idx[filter] = shards
			}
			shards[i]++
			return
		}
		if shards == nil {
			return
		}
		if shards[i]--; shards[i] <= 0 {
			delete(shards, i)
		}
		if len(shards) == 0 {
			delete(idx, filter)
		}
	}
}

// routeHook returns the RouteHook for shard i: decide which sibling
// shards need this publish and forward it with the bridge-prefixed
// publisher identity. Targets that are dead or behind a severed link
// are spilled to the journal instead of silently dropped.
func (br *bridge) routeHook(i int) func(from, topic string, payload []byte, qos byte, retain bool) {
	return func(from, topic string, payload []byte, qos byte, retain bool) {
		if strings.HasPrefix(from, bridgePrefix) {
			return // already forwarded once; single hop only
		}
		var targets []int
		br.mu.RLock()
		sourceCut := br.severed[i]
		if retain {
			// Replicate retained state everywhere.
			for t := range br.shards {
				if t != i {
					targets = append(targets, t)
				}
			}
		} else {
			seen := map[int]bool{i: true}
			for t := range br.concrete[topic] {
				if !seen[t] {
					seen[t] = true
					targets = append(targets, t)
				}
			}
			for filter, shards := range br.wild {
				if !broker.MatchTopic(filter, topic) {
					continue
				}
				for t := range shards {
					if !seen[t] {
						seen[t] = true
						targets = append(targets, t)
					}
				}
			}
		}
		// Capture destination brokers and the blocked decision while the
		// lock is held: ReviveShard swaps slice elements under the write
		// lock, so element reads outside it would race the swap.
		blocked := make([]int, 0, len(targets)) // journal gate per target; -1 = deliverable
		dests := make([]*broker.Broker, 0, len(targets))
		for _, t := range targets {
			dests = append(dests, br.shards[t])
			switch {
			case !br.shards[t].Alive() || br.severed[t]:
				blocked = append(blocked, t) // target-side outage gates it
			case sourceCut:
				blocked = append(blocked, i) // our own link is cut
			default:
				blocked = append(blocked, -1)
			}
		}
		br.mu.RUnlock()
		for k, t := range targets {
			if gate := blocked[k]; gate >= 0 {
				br.spill(gate, pendForward, t, from, topic, payload, qos, retain)
				continue
			}
			atomic.AddInt64(&br.forwards, 1)
			// Validation already passed on the receiving shard; the only
			// surviving error is ErrClosed from a shard dying between the
			// liveness check and the forward — journal it like any other
			// dead-target forward.
			if dests[k].PublishQoS(bridgePrefix+from, topic, payload, qos, retain) != nil {
				br.spill(t, pendForward, t, from, topic, payload, qos, retain)
			}
		}
	}
}

// setShard swaps the broker serving shard slot i — ReviveShard's
// replacement of a dead broker. Runs under the bridge write lock so
// in-flight routeHooks never observe a torn slice element.
func (br *bridge) setShard(i int, b *broker.Broker) {
	br.mu.Lock()
	defer br.mu.Unlock()
	br.shards[i] = b
}

// setSevered cuts (or restores) shard i's bridge links in both
// directions — the shard-partition chaos fault.
func (br *bridge) setSevered(i int, cut bool) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if cut {
		br.severed[i] = true
	} else {
		delete(br.severed, i)
	}
}

// isSevered reports whether shard i's links are currently cut.
func (br *bridge) isSevered(i int) bool {
	br.mu.RLock()
	defer br.mu.RUnlock()
	return br.severed[i]
}

// dropShard removes every index entry anchored on shard d — the bridge
// half of failover re-anchoring. The migrated subscriptions re-enter
// the index through the survivors' SubscribeHooks.
func (br *bridge) dropShard(d int) {
	br.mu.Lock()
	defer br.mu.Unlock()
	for _, idx := range []map[string]map[int]int{br.concrete, br.wild} {
		for filter, shards := range idx {
			if _, ok := shards[d]; ok {
				delete(shards, d)
				if len(shards) == 0 {
					delete(idx, filter)
				}
			}
		}
	}
}

func (br *bridge) forwardCount() int64 {
	return atomic.LoadInt64(&br.forwards)
}
