package swarm

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
)

// delivery is one observed message, normalised for comparison.
type delivery struct {
	Client   string
	Topic    string
	Payload  string
	QoS      byte
	Retained bool
}

// recorder collects deliveries across clients, race-safe.
type recorder struct {
	mu  sync.Mutex
	got []delivery
}

func (r *recorder) handler(client string) func(broker.Message) {
	return func(m broker.Message) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.got = append(r.got, delivery{
			Client:   client,
			Topic:    m.Topic,
			Payload:  string(m.Payload),
			QoS:      m.QoS,
			Retained: m.Retained,
		})
	}
}

func (r *recorder) sorted() []delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]delivery(nil), r.got...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		if a.Topic != b.Topic {
			return a.Topic < b.Topic
		}
		if a.Payload != b.Payload {
			return a.Payload < b.Payload
		}
		if a.QoS != b.QoS {
			return a.QoS < b.QoS
		}
		return !a.Retained && b.Retained
	})
	return out
}

type subCase struct {
	client string
	filter string
	qos    byte
}

type pubCase struct {
	topic   string
	payload string
	qos     byte
	retain  bool
}

// TestBridgeSemanticsTable proves the sharded pool delivers the exact
// message set a single broker would, for a table of wildcard cases:
// every (subscriptions, publishes) pair runs once against one broker
// and once against a 3-shard pool, and the sorted delivery sets must
// be identical — topics, payloads, QoS downgrades, retained flags,
// per-client overlapping-filter dedup, and $-topic wildcard hiding
// all included. Client ids and topics are spread so publishes and
// subscriptions land on different shards by construction.
func TestBridgeSemanticsTable(t *testing.T) {
	cases := []struct {
		name string
		subs []subCase
		pubs []pubCase
		// subsAfter subscribe after the publishes — the retained-
		// delivery path.
		subsAfter []subCase
	}{
		{
			name: "plus wildcard across devices",
			subs: []subCase{
				{"app-a", "swarm/+/status", 1},
				{"app-b", "swarm/+/status", 0},
			},
			pubs: []pubCase{
				{"swarm/dev-1/status", "p1", 1, false},
				{"swarm/dev-2/status", "p2", 1, false},
				{"swarm/dev-3/status", "p3", 0, false},
				{"swarm/dev-1/other", "skip", 0, false},
			},
		},
		{
			name: "hash wildcard depth and parent",
			subs: []subCase{
				{"logger", "swarm/#", 1},
				{"leaf", "swarm/dev-1/status", 1},
			},
			pubs: []pubCase{
				{"swarm", "parent", 1, false}, // "swarm/#" matches "swarm"
				{"swarm/dev-1/status", "deep", 1, false},
				{"swarm/a/b/c/d", "deeper", 1, false},
				{"other/dev-1/status", "skip", 1, false},
			},
		},
		{
			name: "overlapping filters dedup to max qos",
			subs: []subCase{
				{"app", "swarm/+/status", 0},
				{"app", "swarm/#", 1},
				{"other", "swarm/dev-9/status", 1},
			},
			pubs: []pubCase{
				{"swarm/dev-9/status", "once", 1, false},
			},
		},
		{
			name: "dollar topics hidden from wildcards",
			subs: []subCase{
				{"wild", "#", 1},
				{"sys", "$SYS/broker/load", 1},
			},
			pubs: []pubCase{
				{"$SYS/broker/load", "internal", 1, false},
				{"normal/topic", "visible", 1, false},
			},
		},
		{
			name: "retained delivered to late subscriber",
			pubs: []pubCase{
				{"swarm/dev-4/status", "state4", 1, true},
				{"swarm/dev-5/status", "state5", 0, true},
				{"swarm/dev-4/status", "live", 0, false},
			},
			subsAfter: []subCase{
				{"late-a", "swarm/+/status", 1},
				{"late-b", "swarm/dev-4/status", 1},
				{"late-c", "swarm/dev-5/#", 0},
			},
		},
		{
			name: "retained overwrite and clear",
			pubs: []pubCase{
				{"swarm/dev-6/status", "v1", 1, true},
				{"swarm/dev-6/status", "v2", 1, true}, // overwrite
				{"swarm/dev-7/status", "gone", 1, true},
				{"swarm/dev-7/status", "", 1, true}, // empty payload clears
			},
			subsAfter: []subCase{
				{"late", "swarm/+/status", 1},
			},
		},
		{
			name: "qos downgrade to subscription",
			subs: []subCase{
				{"q0", "swarm/+/status", 0},
			},
			pubs: []pubCase{
				{"swarm/dev-8/status", "downgraded", 1, false},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			single := runSemantics(t, 1, tc.subs, tc.pubs, tc.subsAfter)
			pooled := runSemantics(t, 3, tc.subs, tc.pubs, tc.subsAfter)
			// Every table case is built to deliver something; an empty
			// set means the case is broken, not that semantics match.
			if len(single) == 0 {
				t.Fatalf("single-broker run delivered nothing — broken test case")
			}
			if fmt.Sprint(single) != fmt.Sprint(pooled) {
				t.Fatalf("delivery sets differ\nsingle: %v\npool:   %v", single, pooled)
			}
		})
	}
}

// runSemantics executes one table case against a pool with the given
// shard count (1 == plain single broker semantics) and returns the
// sorted delivery set.
func runSemantics(t *testing.T, shards int, subs []subCase, pubs []pubCase, subsAfter []subCase) []delivery {
	t.Helper()
	pool := NewPool(PoolOptions{Shards: shards})
	defer pool.Close()
	rec := &recorder{}
	for _, s := range subs {
		if err := pool.Subscribe(s.client, s.filter, s.qos, rec.handler(s.client)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pubs {
		if err := pool.Publish("pub", p.topic, []byte(p.payload), p.qos, p.retain); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range subsAfter {
		if err := pool.Subscribe(s.client, s.filter, s.qos, rec.handler(s.client)); err != nil {
			t.Fatal(err)
		}
	}
	// In-process delivery is synchronous end-to-end (publish → hook →
	// forward → deliver all on the calling goroutine), so no settling
	// wait is needed.
	return rec.sorted()
}

// TestBridgeCrossShardPlacement pins the property the table test
// relies on: with 3 shards, the test's topics and client ids actually
// land on more than one shard, so the equivalence above genuinely
// crosses the bridge.
func TestBridgeCrossShardPlacement(t *testing.T) {
	pool := NewPool(PoolOptions{Shards: 3})
	defer pool.Close()
	shardsSeen := map[int]bool{}
	for i := 0; i < 10; i++ {
		shardsSeen[pool.ShardFor(DeviceTopic("swarm", i))] = true
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("all test topics hash to one shard — table test would not exercise the bridge")
	}
	clients := map[int]bool{}
	for _, id := range []string{"app-a", "app-b", "logger", "leaf", "late-a", "late-b", "late-c"} {
		clients[pool.ShardFor(id)] = true
	}
	if len(clients) < 2 {
		t.Fatalf("all test clients hash to one shard — table test would not exercise the bridge")
	}
}

// TestBridgeIndexCleanup verifies the subscription index drains when
// subscriptions go away via unsubscribe — refcounts, not booleans, so
// two clients on one filter survive one leaving.
func TestBridgeIndexCleanup(t *testing.T) {
	pool := NewPool(PoolOptions{Shards: 2})
	defer pool.Close()
	noop := func(broker.Message) {}
	if err := pool.Subscribe("c1", "a/+/c", 0, noop); err != nil {
		t.Fatal(err)
	}
	if err := pool.Subscribe("c2", "a/+/c", 0, noop); err != nil {
		t.Fatal(err)
	}
	if err := pool.Subscribe("c1", "a/b/c", 0, noop); err != nil {
		t.Fatal(err)
	}
	br := pool.bridge
	br.mu.RLock()
	wild, concrete := len(br.wild), len(br.concrete)
	br.mu.RUnlock()
	if wild != 1 || concrete != 1 {
		t.Fatalf("index = %d wild, %d concrete; want 1, 1", wild, concrete)
	}
	pool.Unsubscribe("c1", "a/+/c")
	if !bridgeHasWild(br, "a/+/c") {
		t.Fatal("filter dropped while c2 still subscribed")
	}
	pool.Unsubscribe("c2", "a/+/c")
	pool.Unsubscribe("c1", "a/b/c")
	waitCondSwarm(t, time.Second, func() bool {
		br.mu.RLock()
		defer br.mu.RUnlock()
		return len(br.wild) == 0 && len(br.concrete) == 0
	}, "bridge index did not drain")
}

func bridgeHasWild(br *bridge, filter string) bool {
	br.mu.RLock()
	defer br.mu.RUnlock()
	return len(br.wild[filter]) > 0
}

// TestBridgeWireClientEquivalence runs wildcard delivery with real
// wire clients attached to different shards: a publisher on shard A's
// listener, subscribers on other shards' listeners, proving the
// bridge serves the TCP path too, not just in-process subscriptions.
func TestBridgeWireClientEquivalence(t *testing.T) {
	pool := NewPool(PoolOptions{Shards: 3})
	defer pool.Close()
	for i := 0; i < pool.NumShards(); i++ {
		if err := pool.Shard(i).ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}
	rec := &recorder{}
	var clients []*broker.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	// One wire subscriber per shard, all on the same wildcard.
	for i := 0; i < pool.NumShards(); i++ {
		c, err := broker.Dial(pool.Shard(i).Addr(), &broker.ClientOptions{ClientID: fmt.Sprintf("wire-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		if err := c.Subscribe("wire/+/status", 1, rec.handler(fmt.Sprintf("wire-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pub, err := broker.Dial(pool.Shard(0).Addr(), &broker.ClientOptions{ClientID: "wire-pub"})
	if err != nil {
		t.Fatal(err)
	}
	clients = append(clients, pub)
	const n = 20
	for i := 0; i < n; i++ {
		if err := pub.Publish(fmt.Sprintf("wire/dev-%d/status", i), []byte("x"), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	want := n * pool.NumShards()
	waitCondSwarm(t, 5*time.Second, func() bool {
		return len(rec.sorted()) == want
	}, "wire subscribers did not receive the full cross-shard set")
}

// waitCondSwarm polls cond until true or the bound elapses.
func waitCondSwarm(t *testing.T, bound time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(bound)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !cond() {
		t.Fatal(msg)
	}
}
