package swarm

import (
	"os"
	"testing"

	"repro/internal/vet/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine (a health
// monitor that outlives its pool, a stuck bridge forward).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
