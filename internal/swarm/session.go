package swarm

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/clock"
	"repro/internal/obs"
)

// loadFrom is the publisher identity every generated message carries.
// A constant — not the device name — so the tracer's per-digi latency
// family gets one "swarm-load" child instead of 10k device children.
const loadFrom = "swarm-load"

// Session is one swarm load run against a pool: it anchors the
// consuming subscribers, paces the generator, and settles the exact
// message accounting into a Report. Create with NewSession, drive
// every worker with RunWorker (concurrently, one per pod or
// goroutine), then call Finish.
type Session struct {
	pool *Pool
	spec LoadSpec
	gen  *Generator
	reg  *obs.Registry
	clk  clock.Clock

	delivered int64
	started   time.Time
	payload   []byte
}

// NewSession defaults and validates spec, subscribes the consumers,
// and prepares the generator. fire overrides how a generated message
// is published; nil means the built-in synthetic publisher (seq+device
// JSON padded to the payload size, QoS from the spec, via the pool).
// The digi swarm-mock fleet passes its own fire to publish stateful
// mock payloads instead.
func NewSession(pool *Pool, spec LoadSpec, reg *obs.Registry, fire Fire) (*Session, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &Session{pool: pool, spec: spec, reg: reg, clk: clock.System}
	s.payload = make([]byte, spec.Payload)
	for i := range s.payload {
		s.payload[i] = 'x'
	}
	if fire == nil {
		fire = s.firePool
	}
	gen, err := NewGenerator(spec, fire)
	if err != nil {
		return nil, err
	}
	s.gen = gen
	// A profiled spec's device count can grow when explicit population
	// counts exceed the budget; keep the report's view in sync with
	// what the sampler actually compiled.
	s.spec.Devices = gen.Spec().Devices
	// Consumers: each holds one wildcard filter matching every device
	// topic, anchored on the shard its client id hashes to — so with
	// multiple subscribers the bridge's cross-shard path is exercised
	// by construction.
	filter := spec.Prefix + "/+/status"
	for k := 0; k < spec.Subs; k++ {
		id := fmt.Sprintf("swarm-sub-%d", k)
		if err := pool.Subscribe(id, filter, spec.QoS, func(broker.Message) {
			atomic.AddInt64(&s.delivered, 1)
		}); err != nil {
			return nil, err
		}
	}
	s.started = s.clk.Now()
	return s, nil
}

// SetClock replaces the session's clock (and its generator's pacing
// clock). Call before RunWorker.
func (s *Session) SetClock(c clock.Clock) {
	s.clk = clock.Or(c)
	s.gen.SetClock(c)
	s.started = s.clk.Now()
}

// firePool is the built-in publisher. Closed/open runs (nil payload)
// synthesize JSON carrying the sequence number and device index,
// padded to the configured payload size. Profiled runs arrive with
// the sampled payload and publish it on the sampler's per-kind device
// topic.
func (s *Session) firePool(device int, seq uint64, payload []byte) {
	topic := DeviceTopic(s.spec.Prefix, device)
	if payload == nil {
		head := fmt.Sprintf(`{"seq":%d,"dev":%d,"pad":"`, seq, device)
		buf := make([]byte, 0, s.spec.Payload+2)
		buf = append(buf, head...)
		if pad := s.spec.Payload - len(head) - 2; pad > 0 {
			buf = append(buf, s.payload[:pad]...)
		}
		payload = append(buf, '"', '}')
	} else if sm := s.gen.Sampler(); sm != nil {
		topic = sm.DeviceTopic(s.spec.Prefix, device)
	}
	// Non-retained: load traffic must not trigger the bridge's
	// retained full-replication path.
	s.pool.Publish(loadFrom, topic, payload, s.spec.QoS, false)
}

// Spec returns the defaulted spec this session runs.
func (s *Session) Spec() LoadSpec { return s.spec }

// Workers returns the worker count; RunWorker accepts 0..Workers-1.
func (s *Session) Workers() int { return s.gen.Workers() }

// RunWorker drives one generator worker to completion.
func (s *Session) RunWorker(ctx context.Context, w int) error {
	return s.gen.RunWorker(ctx, w)
}

// Delivered returns consumer-side deliveries so far.
func (s *Session) Delivered() int64 { return atomic.LoadInt64(&s.delivered) }

// Finish waits (bounded by quiesce) for in-flight deliveries to
// settle, detaches the consumers, and assembles the report. Expected
// deliveries are Published × Subscribers: every consumer's wildcard
// matches every device topic, and in-process QoS 1 delivery has no
// shedding path, so any shortfall is real loss.
func (s *Session) Finish(quiesce time.Duration) *Report {
	published := s.gen.Published()
	expected := published * int64(s.spec.Subs)
	deadline := s.clk.Now().Add(quiesce)
	for s.clk.Now().Before(deadline) && atomic.LoadInt64(&s.delivered) < expected {
		s.clk.Sleep(5 * time.Millisecond)
	}
	elapsed := s.clk.Since(s.started).Seconds()
	filter := s.spec.Prefix + "/+/status"
	for k := 0; k < s.spec.Subs; k++ {
		s.pool.Unsubscribe(fmt.Sprintf("swarm-sub-%d", k), filter)
	}

	delivered := atomic.LoadInt64(&s.delivered)
	stats := s.pool.Stats()
	rep := &Report{
		Profile:        string(s.spec.Profile),
		Devices:        s.spec.Devices,
		Shards:         s.pool.NumShards(),
		Workers:        s.spec.Workers,
		Subscribers:    s.spec.Subs,
		QoS:            int(s.spec.QoS),
		Seed:           s.spec.Seed,
		DurationSec:    elapsed,
		PayloadSize:    s.spec.Payload,
		Published:      published,
		Expected:       expected,
		Delivered:      delivered,
		Lost:           expected - delivered,
		Dropped:        stats.Dropped,
		BridgeForwards: stats.BridgeForwards,
		PerShard:       stats.Shards,
	}
	fo := s.pool.FailoverStats()
	rep.Failovers = fo.Failovers
	rep.Redelivered = fo.Redelivered
	rep.Shed = fo.Shed
	rep.RecoveryP50Ms = quantile(fo.RecoverySec, 0.5) * 1000
	rep.RecoveryP99Ms = quantile(fo.RecoverySec, 0.99) * 1000
	rep.ShardsDown = stats.ShardsDown
	switch s.spec.Profile {
	case ProfileOpen:
		rep.RateTarget = s.spec.Rate
	case ProfileProfiled:
		rep.ProfileName = s.spec.DeviceProfile.Name
	default:
		rep.PeriodSec = s.spec.Period.Seconds()
	}
	if elapsed > 0 {
		rep.PublishRate = float64(published) / elapsed
		rep.DeliveryRate = float64(delivered) / elapsed
	}
	// Failed-over runs settle late deliveries through journal flushes,
	// so re-check the accounting once more after reading pool stats in
	// case a flush landed between the poll loop and the snapshot.
	if late := atomic.LoadInt64(&s.delivered); late > delivered {
		delivered = late
		rep.Delivered = delivered
		rep.Lost = expected - delivered
	}
	if s.reg != nil {
		// The tracer registered this family; re-registration is
		// idempotent (same kind + label schema), so this reads the
		// same histograms the spans fed.
		h := s.reg.HistogramVec(obs.E2ETopicLatencyName,
			"end-to-end publish→deliver MQTT latency by topic class", nil, "class").
			With(obs.TopicClass(DeviceTopic(s.spec.Prefix, 0)))
		rep.LatencySamples = h.Count()
		rep.P50Ms = h.Quantile(0.5) * 1000
		rep.P99Ms = h.Quantile(0.99) * 1000
	}
	return rep
}
