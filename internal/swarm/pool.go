package swarm

import (
	"fmt"
	"sync"

	"repro/internal/broker"
	"repro/internal/clock"
	"repro/internal/obs"
)

// SingleBrokerDeviceGuidance is the device count past which one broker
// shard is considered saturated and a scene should declare
// `swarm: {shards: N}` (vet rule V015 enforces this). It is guidance,
// not a hard limit: the number comes from the fan-out benchmarks —
// past ~1000 publishing devices a single shard's route path becomes
// the bottleneck before the load generator does.
const SingleBrokerDeviceGuidance = 1000

// PoolOptions configures a shard pool.
type PoolOptions struct {
	// Shards is the number of broker shards; 0 means 1.
	Shards int
	// Obs, when set, receives the pool's aggregated metric families
	// (digibox_swarm_*). Individual shards are registered without Obs —
	// their counters are aggregated at gather time instead, so one
	// registry serves any shard count.
	Obs *obs.Registry
	// Tracer is shared by every shard, so publish→deliver spans and
	// e2e latency histograms cover the pool exactly as they would a
	// single broker.
	Tracer *obs.Tracer
	// Logf receives shard debug logs.
	Logf func(format string, args ...any)
	// Clock drives the health monitor's probe tick and backoff timing.
	// Nil means the wall clock; deterministic harnesses inject a
	// clock.Virtual.
	Clock clock.Clock
	// Health tunes failure detection and the failover journal; zero
	// fields are defaulted (see HealthOptions).
	Health HealthOptions
	// Bus, when set, receives a "shard" event on every health
	// transition (down at failover completion, up at revive) so live
	// consumers can track the ring without polling.
	Bus *obs.Bus
}

// poolSub is one in-process subscription the pool placed, kept so a
// shard failover can re-anchor it onto a survivor.
type poolSub struct {
	qos byte
	fn  func(broker.Message)
}

// poolClient is the pool's record of one in-process client: its
// current anchor shard and every filter it holds. This registry — not
// the shards' tries — is the authoritative takeover state: a dead
// broker's trie still names the subscriptions (ExportSubscriptions),
// but only the pool knows the delivery functions to re-anchor.
type poolClient struct {
	owner int
	subs  map[string]poolSub
}

// Pool is a sharded MQTT message plane: publishes and subscriptions
// are placed on shards by consistent topic/client hashing, and the
// inter-broker bridge keeps delivery semantics identical to a single
// broker (see bridge). The pool self-heals: a health monitor probes
// every shard and, when one dies, re-anchors its keys, subscriptions,
// and journaled messages onto the survivors (see failover.go). The
// zero pool is not usable; create with NewPool and release with Close.
type Pool struct {
	opts PoolOptions
	clk  clock.Clock

	// topo is the placement epoch lock: Publish/Subscribe/Unsubscribe
	// hold it shared for their whole operation (placement decision
	// through delivery), failover/recovery/partition hold it exclusive.
	// That exclusion is what makes a failover atomic with respect to
	// in-flight pool publishes — the property the exactly-once
	// redelivery accounting rests on. Wire-client publishes enter a
	// shard directly and do not hold topo; their cross-shard deliveries
	// during the failover instant are at-least-once (journal stragglers
	// flush on revive/heal).
	topo     sync.RWMutex
	shards   []*broker.Broker
	ring     *ring
	bridge   *bridge
	reg      map[string]*poolClient
	migrated map[int]map[string]bool // shard -> clients moved off it at failover

	pend *pendJournal

	monitor *healthMonitor

	statMu     sync.Mutex
	failovers  int64
	redelivers int64
	recoveries []float64 // failover detection→completion, seconds

	failoverTotal *obs.Counter
	failoverSec   *obs.Histogram
	shardUp       *obs.GaugeVec
}

// NewPool creates the shard brokers, wires the bridge between them,
// and starts the health monitor (unless Health.Disable).
func NewPool(opts PoolOptions) *Pool {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	opts.Health = opts.Health.withDefaults()
	p := &Pool{
		opts:     opts,
		clk:      clock.Or(opts.Clock),
		ring:     newRing(opts.Shards),
		bridge:   newBridge(),
		reg:      map[string]*poolClient{},
		migrated: map[int]map[string]bool{},
	}
	p.pend = newPendJournal(opts.Health.PendingLimit)
	for i := 0; i < opts.Shards; i++ {
		p.shards = append(p.shards, p.newShardBroker(i))
	}
	// The bridge gets its own copy of the shard slice: pool-side reads
	// are serialized by topo, bridge-side by its own lock, and sharing
	// a backing array would let a ReviveShard swap race whichever side
	// isn't holding its lock.
	p.bridge.shards = append([]*broker.Broker(nil), p.shards...)
	p.bridge.spill = p.pend.spill
	if opts.Obs != nil {
		p.bindMetrics(opts.Obs)
	}
	if !opts.Health.Disable {
		p.monitor = p.startMonitor()
	}
	return p
}

// newShardBroker builds the broker for shard slot i with the pool's
// bridge hooks — used at pool construction and again when ReviveShard
// replaces a killed shard.
func (p *Pool) newShardBroker(i int) *broker.Broker {
	return broker.NewBroker(&broker.Options{
		Logf:          p.opts.Logf,
		Tracer:        p.opts.Tracer,
		Clock:         p.opts.Clock,
		SubscribeHook: p.bridge.subHook(i),
		RouteHook:     p.bridge.routeHook(i),
	})
}

// bindMetrics registers pool-level families that aggregate over every
// shard at gather time. CounterFunc re-registration replaces the
// gather func, so a fresh pool re-binding to a long-lived registry
// (one swarm run after another) works.
func (p *Pool) bindMetrics(r *obs.Registry) {
	sum := func(pick func(broker.Stats) int64) func() float64 {
		return func() float64 {
			var total int64
			for _, sh := range p.snapshotShards() {
				total += pick(sh.Stats())
			}
			return float64(total)
		}
	}
	r.GaugeFunc("digibox_swarm_shards", "broker shards in the swarm pool",
		func() float64 { return float64(p.NumShards()) })
	r.CounterFunc("digibox_swarm_publishes_total",
		"publishes received across all shards (bridge forwards included)",
		sum(func(s broker.Stats) int64 { return s.PublishesIn }))
	r.CounterFunc("digibox_swarm_deliveries_total",
		"messages delivered to subscribers across all shards",
		sum(func(s broker.Stats) int64 { return s.MessagesOut }))
	r.CounterFunc("digibox_swarm_dropped_total",
		"QoS 0 messages shed on slow sessions across all shards",
		sum(func(s broker.Stats) int64 { return s.Dropped }))
	r.CounterFunc("digibox_swarm_bridge_forwards_total",
		"publishes forwarded shard-to-shard by the bridge",
		func() float64 { return float64(p.bridge.forwardCount()) })
	p.failoverTotal = r.Counter("digibox_swarm_failovers_total",
		"shard failovers completed (detection through redelivery)")
	p.failoverSec = r.Histogram("digibox_swarm_failover_seconds",
		"shard outage detection → failover completion", nil)
	r.CounterFunc("digibox_swarm_shed_total",
		"messages shed from the bounded failover journal on overflow",
		func() float64 { return float64(p.pend.shedCount()) })
	p.shardUp = r.GaugeVec("digibox_swarm_shard_up",
		"per-shard health (1 up, 0 down)", "shard")
	for i := 0; i < p.opts.Shards; i++ {
		p.shardUp.With(fmt.Sprintf("%d", i)).Set(1)
	}
}

// NumShards returns the shard count.
func (p *Pool) NumShards() int {
	p.topo.RLock()
	defer p.topo.RUnlock()
	return len(p.shards)
}

// Shard returns shard i (for tests and for serving wire clients via
// Broker.ListenAndServe).
func (p *Pool) Shard(i int) *broker.Broker {
	p.topo.RLock()
	defer p.topo.RUnlock()
	return p.shards[i]
}

// snapshotShards copies the shard slice under the placement lock so
// gather-time metric funcs never race a ReviveShard swap.
func (p *Pool) snapshotShards() []*broker.Broker {
	p.topo.RLock()
	defer p.topo.RUnlock()
	out := make([]*broker.Broker, len(p.shards))
	copy(out, p.shards)
	return out
}

// ShardFor returns the shard index a key (topic or client id) is
// placed on — among the currently alive shards.
func (p *Pool) ShardFor(key string) int {
	p.topo.RLock()
	defer p.topo.RUnlock()
	return p.ring.shardFor(key)
}

// ShardDown reports whether shard i is currently marked down (its keys
// re-anchored to survivors).
func (p *Pool) ShardDown(i int) bool {
	p.topo.RLock()
	defer p.topo.RUnlock()
	return p.ring.isDown(i)
}

// DownShards lists the shards currently marked down, ascending.
func (p *Pool) DownShards() []int {
	p.topo.RLock()
	defer p.topo.RUnlock()
	var out []int
	for i := range p.shards {
		if p.ring.isDown(i) {
			out = append(out, i)
		}
	}
	return out
}

// Publish routes a message into the pool via its topic's home shard.
// The bridge forwards it to any other shard with a matching
// subscription, so callers never need to know where subscribers live.
// A publish that hits a dead-but-undetected shard is journaled and
// redelivered after failover instead of failing — callers see nil,
// and the exact-accounting gates see the delivery arrive late.
func (p *Pool) Publish(from, topic string, payload []byte, qos byte, retain bool) error {
	p.topo.RLock()
	defer p.topo.RUnlock()
	return p.publishLocked(from, topic, payload, qos, retain)
}

// publishLocked is Publish under a held topo lock (shared or
// exclusive) — the failover flush re-publishes journaled messages
// through it while holding topo exclusively.
func (p *Pool) publishLocked(from, topic string, payload []byte, qos byte, retain bool) error {
	home := p.ring.shardFor(topic)
	err := p.shards[home].PublishQoS(from, topic, payload, qos, retain)
	if err == broker.ErrClosed {
		// The home shard died and the monitor has not converged yet:
		// park the message in the journal; the failover flush replays
		// it through the re-anchored ring, where it fans out to every
		// subscriber exactly once (nobody saw it on the dead shard).
		p.pend.spill(home, pendPublish, home, from, topic, payload, qos, retain)
		return nil
	}
	return err
}

// Subscribe registers an in-process subscription, anchored on the
// shard the client id hashes to. Anchoring by client — not by filter —
// keeps every subscription of one client on one broker, which is what
// preserves MQTT's per-client overlapping-filter dedup across the
// pool. fn must not publish back into the pool synchronously: it runs
// on publisher (and failover-redelivery) goroutines that already hold
// the pool's placement lock.
func (p *Pool) Subscribe(clientID, filter string, qos byte, fn func(broker.Message)) error {
	// Exclusive, not shared: Subscribe mutates the client registry, and
	// it is a setup-path call — publish throughput never goes through it.
	p.topo.Lock()
	defer p.topo.Unlock()
	owner := p.ring.shardFor(clientID)
	if pc := p.reg[clientID]; pc != nil {
		// Sticky anchoring: a client failover moved to a survivor stays
		// there even after its original shard revives — splitting one
		// client across shards would break per-client overlapping-filter
		// dedup. The ring only places a client's first subscription.
		owner = pc.owner
	}
	if err := p.shards[owner].SubscribeInProcess(clientID, filter, qos, fn); err != nil {
		return err
	}
	pc := p.reg[clientID]
	if pc == nil {
		pc = &poolClient{owner: owner, subs: map[string]poolSub{}}
		p.reg[clientID] = pc
	}
	pc.subs[filter] = poolSub{qos: qos, fn: fn}
	return nil
}

// Unsubscribe removes a subscription registered with Subscribe.
func (p *Pool) Unsubscribe(clientID, filter string) bool {
	p.topo.Lock()
	defer p.topo.Unlock()
	owner := p.ring.shardFor(clientID)
	if pc := p.reg[clientID]; pc != nil {
		owner = pc.owner
		delete(pc.subs, filter)
		if len(pc.subs) == 0 {
			delete(p.reg, clientID)
		}
	}
	return p.shards[owner].UnsubscribeInProcess(clientID, filter)
}

// Stats aggregates shard counters. BridgeForwards is the number of
// shard-to-shard forwarded publishes — the pool's scaling overhead.
// Failovers/Shed/Redelivered are the self-healing counters: shard
// takeovers completed, messages dropped from the bounded journal, and
// journaled messages redelivered after takeover.
type Stats struct {
	Shards         []broker.Stats `json:"shards"`
	PublishesIn    int64          `json:"publishes_in"`
	MessagesOut    int64          `json:"messages_out"`
	Dropped        int64          `json:"dropped"`
	BridgeForwards int64          `json:"bridge_forwards"`
	Failovers      int64          `json:"failovers"`
	Shed           int64          `json:"shed"`
	Redelivered    int64          `json:"redelivered"`
	ShardsDown     []int          `json:"shards_down,omitempty"`
}

// Stats snapshots every shard plus the aggregate.
func (p *Pool) Stats() Stats {
	out := Stats{
		BridgeForwards: p.bridge.forwardCount(),
		Shed:           p.pend.shedCount(),
		ShardsDown:     p.DownShards(),
	}
	for _, sh := range p.snapshotShards() {
		s := sh.Stats()
		out.Shards = append(out.Shards, s)
		out.PublishesIn += s.PublishesIn
		out.MessagesOut += s.MessagesOut
		out.Dropped += s.Dropped
	}
	p.statMu.Lock()
	out.Failovers = p.failovers
	out.Redelivered = p.redelivers
	p.statMu.Unlock()
	return out
}

// Close stops the health monitor and shuts every shard down.
func (p *Pool) Close() {
	if p.monitor != nil {
		p.monitor.stopWait()
	}
	for _, sh := range p.snapshotShards() {
		sh.Close()
	}
}

// RequiredShards returns the shard count guidance for a device count:
// ceil(devices / SingleBrokerDeviceGuidance), minimum 1. vet rule V015
// and `dbox swarm` both use it so the hint and the tool agree.
func RequiredShards(devices int) int {
	if devices <= SingleBrokerDeviceGuidance {
		return 1
	}
	return (devices + SingleBrokerDeviceGuidance - 1) / SingleBrokerDeviceGuidance
}

// String implements fmt.Stringer for quick logging.
func (s Stats) String() string {
	return fmt.Sprintf("shards=%d in=%d out=%d dropped=%d forwards=%d failovers=%d shed=%d",
		len(s.Shards), s.PublishesIn, s.MessagesOut, s.Dropped, s.BridgeForwards, s.Failovers, s.Shed)
}
