package swarm

import (
	"fmt"

	"repro/internal/broker"
	"repro/internal/obs"
)

// SingleBrokerDeviceGuidance is the device count past which one broker
// shard is considered saturated and a scene should declare
// `swarm: {shards: N}` (vet rule V015 enforces this). It is guidance,
// not a hard limit: the number comes from the fan-out benchmarks —
// past ~1000 publishing devices a single shard's route path becomes
// the bottleneck before the load generator does.
const SingleBrokerDeviceGuidance = 1000

// PoolOptions configures a shard pool.
type PoolOptions struct {
	// Shards is the number of broker shards; 0 means 1.
	Shards int
	// Obs, when set, receives the pool's aggregated metric families
	// (digibox_swarm_*). Individual shards are registered without Obs —
	// their counters are aggregated at gather time instead, so one
	// registry serves any shard count.
	Obs *obs.Registry
	// Tracer is shared by every shard, so publish→deliver spans and
	// e2e latency histograms cover the pool exactly as they would a
	// single broker.
	Tracer *obs.Tracer
	// Logf receives shard debug logs.
	Logf func(format string, args ...any)
}

// Pool is a sharded MQTT message plane: publishes and subscriptions
// are placed on shards by consistent topic/client hashing, and the
// inter-broker bridge keeps delivery semantics identical to a single
// broker (see bridge). The zero pool is not usable; create with
// NewPool and release with Close.
type Pool struct {
	opts   PoolOptions
	shards []*broker.Broker
	ring   *ring
	bridge *bridge
}

// NewPool creates the shard brokers and wires the bridge between them.
func NewPool(opts PoolOptions) *Pool {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	p := &Pool{
		opts:   opts,
		ring:   newRing(opts.Shards),
		bridge: newBridge(),
	}
	for i := 0; i < opts.Shards; i++ {
		p.shards = append(p.shards, broker.NewBroker(&broker.Options{
			Logf:          opts.Logf,
			Tracer:        opts.Tracer,
			SubscribeHook: p.bridge.subHook(i),
			RouteHook:     p.bridge.routeHook(i),
		}))
	}
	p.bridge.shards = p.shards
	if opts.Obs != nil {
		p.bindMetrics(opts.Obs)
	}
	return p
}

// bindMetrics registers pool-level families that aggregate over every
// shard at gather time. CounterFunc re-registration replaces the
// gather func, so a fresh pool re-binding to a long-lived registry
// (one swarm run after another) works.
func (p *Pool) bindMetrics(r *obs.Registry) {
	sum := func(pick func(broker.Stats) int64) func() float64 {
		return func() float64 {
			var total int64
			for _, sh := range p.shards {
				total += pick(sh.Stats())
			}
			return float64(total)
		}
	}
	r.GaugeFunc("digibox_swarm_shards", "broker shards in the swarm pool",
		func() float64 { return float64(len(p.shards)) })
	r.CounterFunc("digibox_swarm_publishes_total",
		"publishes received across all shards (bridge forwards included)",
		sum(func(s broker.Stats) int64 { return s.PublishesIn }))
	r.CounterFunc("digibox_swarm_deliveries_total",
		"messages delivered to subscribers across all shards",
		sum(func(s broker.Stats) int64 { return s.MessagesOut }))
	r.CounterFunc("digibox_swarm_dropped_total",
		"QoS 0 messages shed on slow sessions across all shards",
		sum(func(s broker.Stats) int64 { return s.Dropped }))
	r.CounterFunc("digibox_swarm_bridge_forwards_total",
		"publishes forwarded shard-to-shard by the bridge",
		func() float64 { return float64(p.bridge.forwardCount()) })
}

// NumShards returns the shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Shard returns shard i (for tests and for serving wire clients via
// Broker.ListenAndServe).
func (p *Pool) Shard(i int) *broker.Broker { return p.shards[i] }

// ShardFor returns the shard index a key (topic or client id) is
// placed on.
func (p *Pool) ShardFor(key string) int { return p.ring.shardFor(key) }

// Publish routes a message into the pool via its topic's home shard.
// The bridge forwards it to any other shard with a matching
// subscription, so callers never need to know where subscribers live.
func (p *Pool) Publish(from, topic string, payload []byte, qos byte, retain bool) error {
	return p.shards[p.ring.shardFor(topic)].PublishQoS(from, topic, payload, qos, retain)
}

// Subscribe registers an in-process subscription, anchored on the
// shard the client id hashes to. Anchoring by client — not by filter —
// keeps every subscription of one client on one broker, which is what
// preserves MQTT's per-client overlapping-filter dedup across the
// pool.
func (p *Pool) Subscribe(clientID, filter string, qos byte, fn func(broker.Message)) error {
	return p.shards[p.ring.shardFor(clientID)].SubscribeInProcess(clientID, filter, qos, fn)
}

// Unsubscribe removes a subscription registered with Subscribe.
func (p *Pool) Unsubscribe(clientID, filter string) bool {
	return p.shards[p.ring.shardFor(clientID)].UnsubscribeInProcess(clientID, filter)
}

// Stats aggregates shard counters. BridgeForwards is the number of
// shard-to-shard forwarded publishes — the pool's scaling overhead.
type Stats struct {
	Shards         []broker.Stats `json:"shards"`
	PublishesIn    int64          `json:"publishes_in"`
	MessagesOut    int64          `json:"messages_out"`
	Dropped        int64          `json:"dropped"`
	BridgeForwards int64          `json:"bridge_forwards"`
}

// Stats snapshots every shard plus the aggregate.
func (p *Pool) Stats() Stats {
	out := Stats{BridgeForwards: p.bridge.forwardCount()}
	for _, sh := range p.shards {
		s := sh.Stats()
		out.Shards = append(out.Shards, s)
		out.PublishesIn += s.PublishesIn
		out.MessagesOut += s.MessagesOut
		out.Dropped += s.Dropped
	}
	return out
}

// Close shuts every shard down.
func (p *Pool) Close() {
	for _, sh := range p.shards {
		sh.Close()
	}
}

// RequiredShards returns the shard count guidance for a device count:
// ceil(devices / SingleBrokerDeviceGuidance), minimum 1. vet rule V015
// and `dbox swarm` both use it so the hint and the tool agree.
func RequiredShards(devices int) int {
	if devices <= SingleBrokerDeviceGuidance {
		return 1
	}
	return (devices + SingleBrokerDeviceGuidance - 1) / SingleBrokerDeviceGuidance
}

// String implements fmt.Stringer for quick logging.
func (s Stats) String() string {
	return fmt.Sprintf("shards=%d in=%d out=%d dropped=%d forwards=%d",
		len(s.Shards), s.PublishesIn, s.MessagesOut, s.Dropped, s.BridgeForwards)
}
