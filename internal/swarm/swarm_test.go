package swarm

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/obs"
)

func TestRingPlacement(t *testing.T) {
	r := newRing(4)
	// Deterministic: same key, same shard, every time.
	for _, key := range []string{"swarm/dev-1/status", "app-a", "x"} {
		first := r.shardFor(key)
		for i := 0; i < 10; i++ {
			if got := r.shardFor(key); got != first {
				t.Fatalf("shardFor(%q) flapped: %d then %d", key, first, got)
			}
		}
	}
	// Roughly uniform: over 10k device topics each of 4 shards should
	// hold a non-trivial share (loose bounds; vnodes keep skew low).
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[r.shardFor(DeviceTopic("swarm", i))]++
	}
	for s, c := range counts {
		if c < 1000 || c > 5000 {
			t.Fatalf("shard %d holds %d of 10000 keys — ring badly skewed: %v", s, c, counts)
		}
	}
}

func TestLoadSpecValidate(t *testing.T) {
	bogus := LoadSpec{Profile: "bogus"}.WithDefaults()
	if err := bogus.Validate(); err == nil {
		t.Fatal("bogus profile accepted")
	}
	defaulted := LoadSpec{}.WithDefaults()
	if err := defaulted.Validate(); err != nil {
		t.Fatalf("defaulted spec rejected: %v", err)
	}
}

// TestOpenLoopDeterminism runs the same seeded open-loop worker twice
// and asserts the generated (device, seq) stream is identical up to
// the shorter run — wall-clock timing may cut the runs at different
// points, but the draw sequence is pinned by the seed.
func TestOpenLoopDeterminism(t *testing.T) {
	run := func() [][]int {
		spec := LoadSpec{
			Profile: ProfileOpen, Devices: 50, Rate: 4000,
			Duration: 150 * time.Millisecond, Workers: 3, Seed: 42,
		}
		perWorker := make([][]int, 3)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			w := w
			g, err := NewGenerator(spec, func(device int, seq uint64, _ []byte) {
				mu.Lock()
				perWorker[w] = append(perWorker[w], device)
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := g.RunWorker(context.Background(), w); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		return perWorker
	}
	a, b := run(), run()
	for w := 0; w < 3; w++ {
		n := len(a[w])
		if len(b[w]) < n {
			n = len(b[w])
		}
		if n == 0 {
			t.Fatalf("worker %d generated nothing", w)
		}
		for i := 0; i < n; i++ {
			if a[w][i] != b[w][i] {
				t.Fatalf("worker %d diverged at %d: %d vs %d", w, i, a[w][i], b[w][i])
			}
		}
	}
}

// TestClosedLoopCoverage checks the closed profile owns every device
// exactly once across workers and cycles each at the period.
func TestClosedLoopCoverage(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	spec := LoadSpec{
		Profile: ProfileClosed, Devices: 23, Period: 40 * time.Millisecond,
		Duration: 140 * time.Millisecond, Workers: 4, Seed: 1,
	}
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		g, err := NewGenerator(spec, func(device int, _ uint64, _ []byte) {
			mu.Lock()
			seen[device]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.RunWorker(context.Background(), w)
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != spec.Devices {
		t.Fatalf("covered %d of %d devices", len(seen), spec.Devices)
	}
	for d, n := range seen {
		// ~3 full cycles fit in the duration; require at least 2 to
		// tolerate scheduling slop, and cap at 5 to catch runaway
		// pacing.
		if n < 2 || n > 5 {
			t.Fatalf("device %d fired %d times in %v at period %v", d, n, spec.Duration, spec.Period)
		}
	}
}

// TestSessionClosedLoop runs a small end-to-end closed-loop session
// over a 3-shard pool and requires exact QoS 1 accounting: zero loss,
// delivered == published × subscribers.
func TestSessionClosedLoop(t *testing.T) {
	testSessionProfile(t, LoadSpec{
		Profile: ProfileClosed, Devices: 40, Period: 30 * time.Millisecond,
		Duration: 200 * time.Millisecond, Workers: 4, QoS: 1, Subs: 3, Seed: 7,
	})
}

// TestSessionOpenLoop does the same for the open-loop Poisson profile.
func TestSessionOpenLoop(t *testing.T) {
	testSessionProfile(t, LoadSpec{
		Profile: ProfileOpen, Devices: 40, Rate: 3000,
		Duration: 200 * time.Millisecond, Workers: 4, QoS: 1, Subs: 3, Seed: 7,
	})
}

func testSessionProfile(t *testing.T, spec LoadSpec) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg)
	tracer.SetSampleInterval(1) // every message, so quantiles have samples
	pool := NewPool(PoolOptions{Shards: 3, Obs: reg, Tracer: tracer})
	defer pool.Close()
	sess, err := NewSession(pool, spec, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < sess.Workers(); w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sess.RunWorker(context.Background(), w); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	rep := sess.Finish(5 * time.Second)
	if rep.Published == 0 {
		t.Fatal("nothing published")
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d of %d expected deliveries: %+v", rep.Lost, rep.Expected, rep)
	}
	if rep.Delivered != rep.Published*int64(spec.Subs) {
		t.Fatalf("delivered %d, want %d", rep.Delivered, rep.Published*int64(spec.Subs))
	}
	if err := rep.Gate(10_000); err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	if rep.LatencySamples == 0 || rep.P99Ms <= 0 {
		t.Fatalf("no latency samples in report: %+v", rep)
	}
	if rep.Shards != 3 || len(rep.PerShard) != 3 {
		t.Fatalf("per-shard stats missing: %+v", rep)
	}
	// With 3 shards and wildcard consumers spread by client hash, the
	// bridge must have forwarded something.
	if rep.BridgeForwards == 0 {
		t.Fatal("bridge forwarded nothing — pool degenerated to one shard")
	}
	// Round-trip the JSON artifact.
	path := t.TempDir() + "/BENCH_swarm.json"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}

// TestRequiredShards pins the guidance function V015 and dbox share.
func TestRequiredShards(t *testing.T) {
	cases := map[int]int{1: 1, 999: 1, 1000: 1, 1001: 2, 2000: 2, 2001: 3, 10000: 10}
	for devices, want := range cases {
		if got := RequiredShards(devices); got != want {
			t.Fatalf("RequiredShards(%d) = %d, want %d", devices, got, want)
		}
	}
}

// TestPoolMetricsFamilies checks the pool registers its aggregate
// families and they gather live values.
func TestPoolMetricsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	pool := NewPool(PoolOptions{Shards: 2, Obs: reg})
	defer pool.Close()
	done := make(chan struct{})
	if err := pool.Subscribe("m", "m/+/x", 0, func(broker.Message) { close(done) }); err != nil {
		t.Fatal(err)
	}
	if err := pool.Publish("p", "m/1/x", []byte("v"), 0, false); err != nil {
		t.Fatal(err)
	}
	<-done
	vals := reg.Values()
	if vals["digibox_swarm_shards"] != 2 {
		t.Fatalf("digibox_swarm_shards = %v", vals["digibox_swarm_shards"])
	}
	if vals["digibox_swarm_publishes_total"] < 1 {
		t.Fatalf("digibox_swarm_publishes_total = %v", vals["digibox_swarm_publishes_total"])
	}
	if vals["digibox_swarm_deliveries_total"] < 1 {
		t.Fatalf("digibox_swarm_deliveries_total = %v", vals["digibox_swarm_deliveries_total"])
	}
}
