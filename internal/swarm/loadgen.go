package swarm

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/profile"
)

// Profile selects the load-generation discipline.
type Profile string

const (
	// ProfileClosed is closed-loop load: N devices each publishing once
	// per period, the classic "device fleet" shape. Offered load is
	// Devices/Period msgs/s; a slow system stretches the cycle instead
	// of queueing unboundedly.
	ProfileClosed Profile = "closed"
	// ProfileOpen is open-loop load: a target message rate with Poisson
	// arrivals, seeded for determinism. Offered load is independent of
	// the system's speed — the profile that exposes saturation.
	ProfileOpen Profile = "open"
	// ProfileProfiled drives a heterogeneous device-profile schedule
	// (LoadSpec.DeviceProfile): per-population cadences, payload
	// schemas, diurnal/burst modulation. The schedule is pure
	// arithmetic on (profile, seed, device), so the fire stream is
	// identical at every -speed factor.
	ProfileProfiled Profile = "profiled"
)

// openQuantum batches open-loop arrivals: each worker draws all
// arrivals falling inside a 5 ms window, fires them as a burst, and
// sleeps to the window boundary. 5 ms keeps timer pressure at 200
// wakeups/s/worker while staying far below the latency floors being
// measured.
const openQuantum = 5 * time.Millisecond

// LoadSpec describes one swarm load run.
type LoadSpec struct {
	Profile  Profile       `json:"profile"`
	Devices  int           `json:"devices"`
	Rate     float64       `json:"rate"`     // open-loop target msgs/s
	Period   time.Duration `json:"period"`   // closed-loop per-device period
	Duration time.Duration `json:"duration"` // total run length
	Workers  int           `json:"workers"`  // generator workers (one pod each)
	Seed     int64         `json:"seed"`
	QoS      byte          `json:"qos"`
	Payload  int           `json:"payload"`     // payload size in bytes
	Subs     int           `json:"subscribers"` // wildcard consumers
	Prefix   string        `json:"prefix"`      // topic prefix, default "swarm"

	// DeviceProfile is the device-population mix for ProfileProfiled
	// runs; setting it selects that profile. Explicit population
	// counts override Devices; weighted populations split the Devices
	// budget.
	DeviceProfile *profile.Profile `json:"device_profile,omitempty"`
}

// WithDefaults fills unset fields with usable values and returns the
// result.
func (s LoadSpec) WithDefaults() LoadSpec {
	if s.DeviceProfile != nil {
		s.Profile = ProfileProfiled
		if s.Devices <= 0 {
			if n := s.DeviceProfile.TotalCount(); n > 0 {
				s.Devices = n
			}
		}
	}
	if s.Profile == "" {
		s.Profile = ProfileClosed
	}
	if s.Devices <= 0 {
		s.Devices = 100
	}
	if s.Rate <= 0 {
		s.Rate = 1000
	}
	if s.Period <= 0 {
		s.Period = time.Second
	}
	if s.Duration <= 0 {
		s.Duration = 10 * time.Second
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.QoS > 1 {
		s.QoS = 1
	}
	if s.Payload <= 0 {
		s.Payload = 64
	}
	if s.Subs <= 0 {
		s.Subs = 2
	}
	if s.Prefix == "" {
		s.Prefix = "swarm"
	}
	return s
}

// Validate rejects specs the generator cannot honour.
func (s LoadSpec) Validate() error {
	switch s.Profile {
	case ProfileClosed, ProfileOpen:
	case ProfileProfiled:
		if s.DeviceProfile == nil {
			return fmt.Errorf("swarm: profiled load needs a DeviceProfile")
		}
		if err := s.DeviceProfile.Validate(); err != nil {
			return fmt.Errorf("swarm: %w", err)
		}
	default:
		return fmt.Errorf("swarm: unknown profile %q (want %q, %q or %q)",
			s.Profile, ProfileClosed, ProfileOpen, ProfileProfiled)
	}
	if s.Devices <= 0 {
		return fmt.Errorf("swarm: devices must be positive")
	}
	if s.Profile == ProfileOpen && s.Rate <= 0 {
		return fmt.Errorf("swarm: open profile needs a positive rate")
	}
	if s.Profile == ProfileClosed && s.Period <= 0 {
		return fmt.Errorf("swarm: closed profile needs a positive period")
	}
	return nil
}

// DeviceTopic returns the status topic for device i under prefix —
// "swarm/dev-7/status" style, a three-level topic so the obs topic
// class collapses every device to one histogram child.
func DeviceTopic(prefix string, i int) string {
	return fmt.Sprintf("%s/dev-%d/status", prefix, i)
}

// Fire is the generator's emit callback: device index, a per-worker
// sequence number, and — for profiled runs — the sampled payload.
// Closed/open runs pass a nil payload and the publisher synthesizes
// one. Fire must be safe for concurrent use across devices; a single
// device is only ever fired by its owning worker.
type Fire func(device int, seq uint64, payload []byte)

// Generator paces fire callbacks according to a LoadSpec. Create with
// NewGenerator, then run each worker (RunWorker) until its context
// ends — typically one worker per kube pod so placement is exercised.
type Generator struct {
	spec    LoadSpec
	fire    Fire
	clk     clock.Clock
	sampler *profile.Sampler
	count   int64
}

// NewGenerator builds a generator over a defaulted, validated spec.
// fire is called for every generated message; it must be safe for
// concurrent use. A profiled spec compiles its device profile here,
// so an unsatisfiable profile fails fast rather than producing a
// silent zero-message run.
func NewGenerator(spec LoadSpec, fire Fire) (*Generator, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, fire: fire, clk: clock.System}
	if spec.Profile == ProfileProfiled {
		s, err := profile.Compile(spec.DeviceProfile, spec.Devices, spec.Seed)
		if err != nil {
			return nil, err
		}
		g.sampler = s
		g.spec.Devices = s.Devices()
	}
	return g, nil
}

// Sampler returns the compiled device-profile sampler (nil unless the
// spec is profiled). Publishers use it to route sampled payloads onto
// per-kind device topics.
func (g *Generator) Sampler() *profile.Sampler { return g.sampler }

// SetClock replaces the generator's pacing clock (default: the wall
// clock). Call before RunWorker; a virtual clock lets a load run be
// driven in compressed time.
func (g *Generator) SetClock(c clock.Clock) { g.clk = clock.Or(c) }

// Spec returns the defaulted spec the generator runs.
func (g *Generator) Spec() LoadSpec { return g.spec }

// Workers returns how many workers RunWorker expects (0..Workers-1).
func (g *Generator) Workers() int { return g.spec.Workers }

// Published returns the number of fire calls made so far.
func (g *Generator) Published() int64 { return atomic.LoadInt64(&g.count) }

// RunWorker drives worker w until the spec's duration elapses or ctx
// is cancelled. Deterministic per (seed, worker): the sequence of
// devices and inter-arrival draws depends only on those, never on
// scheduling.
func (g *Generator) RunWorker(ctx context.Context, w int) error {
	if w < 0 || w >= g.spec.Workers {
		return fmt.Errorf("swarm: worker %d out of range [0,%d)", w, g.spec.Workers)
	}
	// A profiled worker terminates intrinsically: the schedule runs
	// dry when every owned device's next arrival falls past Duration.
	// No clocked cancel is armed, because a cancel firing at exactly
	// the Duration boundary would race the final arrivals and make the
	// emitted message set depend on timer ordering — the one thing a
	// profiled run must never do.
	if g.spec.Profile == ProfileProfiled {
		return g.runProfiled(ctx, w)
	}
	// The run window is g.spec.Duration of *generator-clock* time:
	// context deadlines cannot ride an injected clock, so a clocked
	// AfterFunc cancels the context instead. On the wall clock this is
	// the old wall deadline; on a compressed clock the window tracks
	// scenario time, so a 2s burst at 1000x lasts 2ms of wall time
	// rather than publishing flat-out for 2 wall seconds.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopT := g.clk.AfterFunc(g.spec.Duration, cancel)
	defer stopT.Stop()
	if g.spec.Profile == ProfileOpen {
		return g.runOpen(ctx, w)
	}
	return g.runClosed(ctx, w)
}

// runClosed cycles this worker's device slice once per period. Workers
// own devices round-robin (device d belongs to worker d mod W), and
// each worker staggers its start across the first period so the fleet
// doesn't publish in one synchronized burst.
func (g *Generator) runClosed(ctx context.Context, w int) error {
	var owned []int
	for d := w; d < g.spec.Devices; d += g.spec.Workers {
		owned = append(owned, d)
	}
	if len(owned) == 0 {
		return nil
	}
	stagger := g.spec.Period * time.Duration(w) / time.Duration(g.spec.Workers)
	select {
	case <-g.clk.After(stagger):
	case <-ctx.Done():
		return nil
	}
	ticker := g.clk.NewTicker(g.spec.Period)
	defer ticker.Stop()
	var seq uint64
	cycle := func() {
		for _, d := range owned {
			g.fire(d, seq, nil)
			atomic.AddInt64(&g.count, 1)
			seq++
		}
	}
	cycle()
	for {
		select {
		case <-ticker.C():
			cycle()
		case <-ctx.Done():
			return nil
		}
	}
}

// runOpen generates a Poisson arrival process at Rate/Workers msgs/s:
// exponential inter-arrival draws from a per-worker seeded source,
// batched per quantum. The draw sequence (devices and gaps) is fully
// deterministic for a (seed, worker) pair; wall-clock jitter shifts
// when a burst fires, never what it contains.
func (g *Generator) runOpen(ctx context.Context, w int) error {
	rng := rand.New(rand.NewSource(g.spec.Seed + int64(w)*0x9E3779B9))
	rate := g.spec.Rate / float64(g.spec.Workers)
	start := g.clk.Now()
	next := rng.ExpFloat64() / rate // seconds from start of the next arrival
	var seq uint64
	for {
		elapsed := g.clk.Since(start).Seconds()
		qEnd := elapsed + openQuantum.Seconds()
		for next <= qEnd {
			select {
			case <-ctx.Done():
				return nil
			default:
			}
			g.fire(rng.Intn(g.spec.Devices), seq, nil)
			atomic.AddInt64(&g.count, 1)
			seq++
			next += rng.ExpFloat64() / rate
		}
		sleep := time.Duration((qEnd - g.clk.Since(start).Seconds()) * float64(time.Second))
		if sleep > 0 {
			select {
			case <-g.clk.After(sleep):
			case <-ctx.Done():
				return nil
			}
		} else {
			select {
			case <-ctx.Done():
				return nil
			default:
			}
		}
	}
}

// pendArrival is one scheduled profiled message waiting to fire.
type pendArrival struct {
	at      time.Duration
	device  int
	payload []byte
}

// pendHeap orders pending arrivals by (offset, device) — the device
// tiebreak keeps the within-worker fire order deterministic when two
// devices land on the same instant.
type pendHeap []pendArrival

func (h pendHeap) Len() int { return len(h) }
func (h pendHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].device < h[j].device
}
func (h pendHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendHeap) Push(x any)   { *h = append(*h, x.(pendArrival)) }
func (h *pendHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// runProfiled drives this worker's device slice through the compiled
// sampler schedule: a min-heap of pending arrivals, each fired at its
// sampled offset on the generator clock, each immediately replaced by
// the device's next draw. The message set — contents, per-device
// order, count — is a pure function of (profile, seed, duration);
// the clock only stretches or compresses the waits between firings.
func (g *Generator) runProfiled(ctx context.Context, w int) error {
	var h pendHeap
	for d := w; d < g.spec.Devices; d += g.spec.Workers {
		at, payload := g.sampler.NextFire(d)
		if at < g.spec.Duration {
			heap.Push(&h, pendArrival{at, d, payload})
		}
	}
	start := g.clk.Now()
	var seq uint64
	for h.Len() > 0 {
		next := h[0]
		if sleep := next.at - g.clk.Since(start); sleep > 0 {
			select {
			case <-g.clk.After(sleep):
			case <-ctx.Done():
				return nil
			}
		} else if err := ctx.Err(); err != nil {
			return nil
		}
		heap.Pop(&h)
		g.fire(next.device, seq, next.payload)
		seq++
		atomic.AddInt64(&g.count, 1)
		if at, payload := g.sampler.NextFire(next.device); at < g.spec.Duration {
			heap.Push(&h, pendArrival{at, next.device, payload})
		}
	}
	return nil
}
