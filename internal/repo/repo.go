// Package repo implements the Digibox scene repository (§3.4): a
// content-addressed, versioned store for mock/scene kinds, setup
// configurations, and trace archives, with push/pull between a local
// repository and a remote.
//
// The paper uses Git + GitHub as the repository following
// Infrastructure-as-Code practice; this package substitutes a
// filesystem-backed object store with the same operational surface
// (commit a new version, push it, pull it elsewhere, recreate). Blobs
// are addressed by SHA-256, so push/pull transfers are idempotent and
// verifiable.
package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vet"
)

// RefClass partitions the reference namespace.
type RefClass string

const (
	// Kinds holds mock/scene type definitions ("Lamp/v1").
	Kinds RefClass = "kinds"
	// Setups holds committed testbed configurations ("smartbuilding/v3").
	Setups RefClass = "setups"
	// Traces holds shared trace archives ("building-trace/v1").
	Traces RefClass = "traces"
	// Profiles holds device-population traffic profiles, authored or
	// fitted by capture ("cityscape/v1").
	Profiles RefClass = "profiles"
)

var refClasses = []RefClass{Kinds, Setups, Traces, Profiles}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ErrNotFound is returned when an object or ref does not exist.
var ErrNotFound = errors.New("repo: not found")

// ErrVetFailed is returned by Commit when a setup carries
// error-severity vet diagnostics; ForceCommit bypasses the gate.
var ErrVetFailed = errors.New("repo: setup fails vet")

// Repo is a repository rooted at a directory. Safe for use by multiple
// goroutines as long as they operate on distinct refs (matching Git's
// model); hash-addressed object writes are always safe.
type Repo struct {
	dir string
}

// Open creates (if needed) and opens a repository at dir.
func Open(dir string) (*Repo, error) {
	for _, sub := range []string{"objects"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	for _, c := range refClasses {
		if err := os.MkdirAll(filepath.Join(dir, "refs", string(c)), 0o755); err != nil {
			return nil, err
		}
	}
	return &Repo{dir: dir}, nil
}

// Dir returns the repository root.
func (r *Repo) Dir() string { return r.dir }

// PutObject stores a blob and returns its hash. Idempotent.
func (r *Repo) PutObject(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	path := r.objectPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return hash, nil
}

// GetObject loads a blob by hash, verifying integrity.
func (r *Repo) GetObject(hash string) ([]byte, error) {
	data, err := os.ReadFile(r.objectPath(hash))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: object %s", ErrNotFound, hash)
		}
		return nil, err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hash {
		return nil, fmt.Errorf("repo: object %s corrupt", hash)
	}
	return data, nil
}

func (r *Repo) objectPath(hash string) string {
	if len(hash) < 3 {
		return filepath.Join(r.dir, "objects", "xx", hash)
	}
	return filepath.Join(r.dir, "objects", hash[:2], hash)
}

// Commit stores data as the next version of class/name and returns the
// assigned version ("v1", "v2", ...). If the content is identical to
// the latest version, that version is returned without creating a new
// one (committing an unchanged setup is a no-op, like Git).
//
// Setup and profile commits pass through the vet pre-commit gate: a
// setup (or device profile) with error-severity diagnostics is
// refused. ForceCommit bypasses the gate.
func (r *Repo) Commit(class RefClass, name string, data []byte) (string, error) {
	return r.commit(class, name, data, false)
}

// ForceCommit is Commit without the vet pre-commit gate ("dbox commit
// -f"): the setup is stored even if vet reports error diagnostics.
func (r *Repo) ForceCommit(class RefClass, name string, data []byte) (string, error) {
	return r.commit(class, name, data, true)
}

func (r *Repo) commit(class RefClass, name string, data []byte, force bool) (string, error) {
	if !nameRe.MatchString(name) {
		return "", fmt.Errorf("repo: invalid name %q", name)
	}
	if class == Setups && !force {
		if diags := vet.Errors(vet.RunData(name, data, r.KindSource())); len(diags) > 0 {
			return "", fmt.Errorf("%w: %s (use force to commit anyway): %s", ErrVetFailed, name, vet.Summary(diags))
		}
	}
	if class == Profiles && !force {
		if diags := vet.Errors(vet.RunProfileData(name, data)); len(diags) > 0 {
			return "", fmt.Errorf("%w: %s (use force to commit anyway): %s", ErrVetFailed, name, vet.Summary(diags))
		}
	}
	hash, err := r.PutObject(data)
	if err != nil {
		return "", err
	}
	latest, err := r.Latest(class, name)
	if err == nil {
		cur, err := r.Resolve(class, name, latest)
		if err == nil && cur == hash {
			return latest, nil
		}
	}
	next := "v1"
	if latest != "" {
		n, _ := strconv.Atoi(strings.TrimPrefix(latest, "v"))
		next = "v" + strconv.Itoa(n+1)
	}
	if err := r.Tag(class, name, next, hash); err != nil {
		return "", err
	}
	return next, nil
}

// Tag binds class/name/version to an object hash. Existing versions
// are immutable: re-tagging an existing version to a different hash
// fails.
func (r *Repo) Tag(class RefClass, name, version, hash string) error {
	if !nameRe.MatchString(name) || !nameRe.MatchString(version) {
		return fmt.Errorf("repo: invalid ref %s/%s", name, version)
	}
	refDir := filepath.Join(r.dir, "refs", string(class), name)
	if err := os.MkdirAll(refDir, 0o755); err != nil {
		return err
	}
	refPath := filepath.Join(refDir, version)
	if existing, err := os.ReadFile(refPath); err == nil {
		if strings.TrimSpace(string(existing)) == hash {
			return nil
		}
		return fmt.Errorf("repo: %s %s/%s already exists with different content", class, name, version)
	}
	return os.WriteFile(refPath, []byte(hash+"\n"), 0o644)
}

// Resolve returns the object hash of class/name/version. An empty
// version resolves the latest.
func (r *Repo) Resolve(class RefClass, name, version string) (string, error) {
	if version == "" {
		latest, err := r.Latest(class, name)
		if err != nil {
			return "", err
		}
		version = latest
	}
	data, err := os.ReadFile(filepath.Join(r.dir, "refs", string(class), name, version))
	if err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("%w: %s %s/%s", ErrNotFound, class, name, version)
		}
		return "", err
	}
	return strings.TrimSpace(string(data)), nil
}

// Get loads the content of class/name/version (empty version = latest).
func (r *Repo) Get(class RefClass, name, version string) ([]byte, error) {
	hash, err := r.Resolve(class, name, version)
	if err != nil {
		return nil, err
	}
	return r.GetObject(hash)
}

// Versions lists the versions of class/name in ascending numeric order.
func (r *Repo) Versions(class RefClass, name string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(r.dir, "refs", string(class), name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s %s", ErrNotFound, class, name)
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Slice(out, func(i, j int) bool { return versionNum(out[i]) < versionNum(out[j]) })
	return out, nil
}

func versionNum(v string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(v, "v"))
	if err != nil {
		return 0
	}
	return n
}

// Latest returns the newest version of class/name ("" with ErrNotFound
// if none).
func (r *Repo) Latest(class RefClass, name string) (string, error) {
	vs, err := r.Versions(class, name)
	if err != nil {
		return "", err
	}
	if len(vs) == 0 {
		return "", fmt.Errorf("%w: %s %s has no versions", ErrNotFound, class, name)
	}
	return vs[len(vs)-1], nil
}

// List returns all names under a class, sorted.
func (r *Repo) List(class RefClass) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(r.dir, "refs", string(class)))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// KindSource returns a vet.KindSource view of the repository's kinds
// class, for resolving the schema contracts a setup's kind references
// pin during analysis.
func (r *Repo) KindSource() vet.KindSource {
	return repoKindSource{r}
}

type repoKindSource struct{ r *Repo }

func (k repoKindSource) KindDoc(typ, version string) ([]byte, error) {
	return k.r.Get(Kinds, typ, version)
}

// Push copies class/name (all versions, with objects) to the remote
// repository — "dbox push". Existing identical versions are skipped;
// conflicting versions abort.
func (r *Repo) Push(remote *Repo, class RefClass, name string) error {
	return transfer(r, remote, class, name)
}

// Pull copies class/name (all versions, with objects) from the remote
// repository — "dbox pull".
func (r *Repo) Pull(remote *Repo, class RefClass, name string) error {
	return transfer(remote, r, class, name)
}

func transfer(src, dst *Repo, class RefClass, name string) error {
	versions, err := src.Versions(class, name)
	if err != nil {
		return err
	}
	for _, v := range versions {
		hash, err := src.Resolve(class, name, v)
		if err != nil {
			return err
		}
		data, err := src.GetObject(hash)
		if err != nil {
			return err
		}
		if _, err := dst.PutObject(data); err != nil {
			return err
		}
		if err := dst.Tag(class, name, v, hash); err != nil {
			return err
		}
	}
	return nil
}
