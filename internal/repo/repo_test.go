package repo

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/model"
	"testing/quick"
)

func open(t *testing.T) *Repo {
	t.Helper()
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPutGetObject(t *testing.T) {
	r := open(t)
	data := []byte("meta:\n  type: Lamp\n")
	hash, err := r.PutObject(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hash) != 64 {
		t.Errorf("hash = %q", hash)
	}
	// Idempotent.
	hash2, err := r.PutObject(data)
	if err != nil || hash2 != hash {
		t.Errorf("second put: %q %v", hash2, err)
	}
	back, err := r.GetObject(hash)
	if err != nil || !bytes.Equal(back, data) {
		t.Errorf("GetObject: %q %v", back, err)
	}
	if _, err := r.GetObject("deadbeef" + hash[8:]); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object err = %v", err)
	}
}

func TestGetObjectDetectsCorruption(t *testing.T) {
	r := open(t)
	hash, _ := r.PutObject([]byte("original"))
	if err := os.WriteFile(r.objectPath(hash), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetObject(hash); err == nil {
		t.Error("corrupt object read back without error")
	}
}

func TestCommitAssignsVersions(t *testing.T) {
	r := open(t)
	v1, err := r.Commit(Kinds, "Lamp", []byte("schema v1"))
	if err != nil || v1 != "v1" {
		t.Fatalf("v1 = %q, %v", v1, err)
	}
	v2, err := r.Commit(Kinds, "Lamp", []byte("schema v2"))
	if err != nil || v2 != "v2" {
		t.Fatalf("v2 = %q, %v", v2, err)
	}
	// Unchanged content: no new version.
	again, err := r.Commit(Kinds, "Lamp", []byte("schema v2"))
	if err != nil || again != "v2" {
		t.Fatalf("unchanged commit = %q, %v", again, err)
	}
	vs, err := r.Versions(Kinds, "Lamp")
	if err != nil || !reflect.DeepEqual(vs, []string{"v1", "v2"}) {
		t.Fatalf("versions = %v, %v", vs, err)
	}
	latest, err := r.Latest(Kinds, "Lamp")
	if err != nil || latest != "v2" {
		t.Fatalf("latest = %q, %v", latest, err)
	}
}

func TestVersionOrderingIsNumeric(t *testing.T) {
	r := open(t)
	for i := 0; i < 12; i++ {
		if _, err := r.Commit(Traces, "big", []byte(fmt.Sprintf("content %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	vs, _ := r.Versions(Traces, "big")
	if vs[len(vs)-1] != "v12" || vs[1] != "v2" {
		t.Errorf("versions = %v (lexicographic ordering bug: v10 < v2?)", vs)
	}
}

func TestGetByVersionAndLatest(t *testing.T) {
	r := open(t)
	r.Commit(Kinds, "Fan", []byte("one"))
	r.Commit(Kinds, "Fan", []byte("two"))
	if data, err := r.Get(Kinds, "Fan", "v1"); err != nil || string(data) != "one" {
		t.Errorf("v1 = %q, %v", data, err)
	}
	if data, err := r.Get(Kinds, "Fan", ""); err != nil || string(data) != "two" {
		t.Errorf("latest = %q, %v", data, err)
	}
	if _, err := r.Get(Kinds, "Fan", "v9"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version err = %v", err)
	}
	if _, err := r.Get(Kinds, "Ghost", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing name err = %v", err)
	}
}

func TestTagImmutability(t *testing.T) {
	r := open(t)
	h1, _ := r.PutObject([]byte("a"))
	h2, _ := r.PutObject([]byte("b"))
	if err := r.Tag(Kinds, "X", "v1", h1); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag(Kinds, "X", "v1", h1); err != nil {
		t.Errorf("idempotent re-tag failed: %v", err)
	}
	if err := r.Tag(Kinds, "X", "v1", h2); err == nil {
		t.Error("version rewritten with different content")
	}
}

func TestNameValidation(t *testing.T) {
	r := open(t)
	for _, bad := range []string{"", "../escape", "a/b", ".hidden", "sp ace"} {
		if _, err := r.Commit(Kinds, bad, []byte("x")); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"Lamp", "supply-chain", "room_2", "A.B"} {
		if _, err := r.Commit(Kinds, good, []byte("x")); err != nil {
			t.Errorf("name %q rejected: %v", good, err)
		}
	}
}

func TestPushPull(t *testing.T) {
	local := open(t)
	remote := open(t)
	other := open(t)

	setupV1 := []byte("setup: smartbuilding\nrev: one\n")
	setupV2 := []byte("setup: smartbuilding\nrev: two\n")
	local.Commit(Setups, "smartbuilding", setupV1)
	local.Commit(Setups, "smartbuilding", setupV2)
	if err := local.Push(remote, Setups, "smartbuilding"); err != nil {
		t.Fatal(err)
	}
	// A different developer pulls and sees both versions.
	if err := other.Pull(remote, Setups, "smartbuilding"); err != nil {
		t.Fatal(err)
	}
	data, err := other.Get(Setups, "smartbuilding", "v2")
	if err != nil || !bytes.Equal(data, setupV2) {
		t.Fatalf("pulled = %q, %v", data, err)
	}
	vs, _ := other.Versions(Setups, "smartbuilding")
	if !reflect.DeepEqual(vs, []string{"v1", "v2"}) {
		t.Errorf("pulled versions = %v", vs)
	}
	// Re-push is idempotent.
	if err := local.Push(remote, Setups, "smartbuilding"); err != nil {
		t.Errorf("re-push: %v", err)
	}
	// Push of missing name fails.
	if err := local.Push(remote, Setups, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("push missing = %v", err)
	}
}

func TestPushConflictDetected(t *testing.T) {
	a := open(t)
	b := open(t)
	remote := open(t)
	a.Commit(Kinds, "Lamp", []byte("a's lamp"))
	b.Commit(Kinds, "Lamp", []byte("b's lamp"))
	if err := a.Push(remote, Kinds, "Lamp"); err != nil {
		t.Fatal(err)
	}
	if err := b.Push(remote, Kinds, "Lamp"); err == nil {
		t.Error("conflicting v1 push accepted")
	}
}

func TestList(t *testing.T) {
	r := open(t)
	r.Commit(Kinds, "Lamp", []byte("x"))
	r.Commit(Kinds, "Fan", []byte("y"))
	r.Commit(Setups, "home", []byte("setup: home\n"))
	kinds, err := r.List(Kinds)
	if err != nil || !reflect.DeepEqual(kinds, []string{"Fan", "Lamp"}) {
		t.Errorf("kinds = %v, %v", kinds, err)
	}
	setups, _ := r.List(Setups)
	if !reflect.DeepEqual(setups, []string{"home"}) {
		t.Errorf("setups = %v", setups)
	}
}

func TestCommitVetsSetups(t *testing.T) {
	r := open(t)
	// A setup whose single model attaches a child that does not exist
	// fails vet with an error-severity diagnostic (V001).
	bad := []byte(`setup: broken
---
meta:
  type: Room
  version: v1
  name: room
  attach: [ghost]
`)
	if _, err := r.Commit(Setups, "broken", bad); err == nil {
		t.Fatal("vet-failing setup committed")
	} else if !errors.Is(err, ErrVetFailed) {
		t.Errorf("err = %v, want ErrVetFailed", err)
	}
	// ForceCommit bypasses the gate.
	if v, err := r.ForceCommit(Setups, "broken", bad); err != nil || v != "v1" {
		t.Errorf("ForceCommit = %q, %v", v, err)
	}
	// A clean setup (with its kind committed so the reference resolves)
	// commits normally.
	schema, err := model.EncodeSchema(&model.Schema{Type: "Room", Version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit(Kinds, "Room", schema); err != nil {
		t.Fatal(err)
	}
	good := []byte(`setup: fine
kinds:
  Room: v1
---
meta:
  type: Room
  version: v1
  name: room
`)
	if v, err := r.Commit(Setups, "fine", good); err != nil || v != "v1" {
		t.Errorf("clean Commit = %q, %v", v, err)
	}
	// Non-setup classes are never vetted.
	if _, err := r.Commit(Kinds, "garbage", []byte("not yaml at all: [")); err != nil {
		t.Errorf("kind commit vetted: %v", err)
	}
}

func TestOpenIsReentrant(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1.Commit(Kinds, "Lamp", []byte("x"))
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Get(Kinds, "Lamp", ""); err != nil {
		t.Errorf("reopened repo lost data: %v", err)
	}
}

// Property: any sequence of commits round-trips — the i-th distinct
// content is retrievable at version v(i).
func TestQuickCommitRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := open(t)
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		var contents [][]byte
		for i := 0; i < n; i++ {
			// Ensure distinct content per commit.
			c := []byte(fmt.Sprintf("content-%d-%d", seed, i))
			contents = append(contents, c)
			v, err := r.Commit(Traces, "t", c)
			if err != nil {
				t.Log(err)
				return false
			}
			if v != fmt.Sprintf("v%d", i+1) {
				t.Logf("version = %s at i=%d", v, i)
				return false
			}
		}
		for i, c := range contents {
			got, err := r.Get(Traces, "t", fmt.Sprintf("v%d", i+1))
			if err != nil || !bytes.Equal(got, c) {
				t.Logf("get v%d: %q %v", i+1, got, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectPathSharding(t *testing.T) {
	r := open(t)
	hash, _ := r.PutObject([]byte("shard me"))
	want := filepath.Join(r.Dir(), "objects", hash[:2], hash)
	if r.objectPath(hash) != want {
		t.Errorf("path = %q", r.objectPath(hash))
	}
}

func TestCommitVetsProfiles(t *testing.T) {
	r := open(t)
	// A profile with a zero cadence rate is unsatisfiable (V018) and
	// refused by the pre-commit gate.
	bad := []byte(`profile: deadair
seed: 1
populations:
  - kind: thermostat
    count: 2
    cadence:
      dist: fixed
      mean_ms: 0
`)
	if _, err := r.Commit(Profiles, "deadair", bad); err == nil {
		t.Fatal("unsatisfiable profile committed")
	} else if !errors.Is(err, ErrVetFailed) {
		t.Errorf("err = %v, want ErrVetFailed", err)
	}
	// ForceCommit bypasses the gate.
	if v, err := r.ForceCommit(Profiles, "deadair", bad); err != nil || v != "v1" {
		t.Errorf("ForceCommit = %q, %v", v, err)
	}
	// A satisfiable profile commits and round-trips.
	good := []byte(`profile: city
seed: 7
populations:
  - kind: thermostat
    count: 2
    cadence:
      dist: fixed
      mean_ms: 100
`)
	v, err := r.Commit(Profiles, "city", good)
	if err != nil || v != "v1" {
		t.Fatalf("clean Commit = %q, %v", v, err)
	}
	back, err := r.Get(Profiles, "city", "")
	if err != nil || !bytes.Equal(back, good) {
		t.Errorf("Get = %q, %v", back, err)
	}
}
