/* digibox dashboard: a pure client of the public control surface.
 * State polling:  GET /ctl/status  (one JSON document, every 2 s)
 * Live stream:    GET /ctl/events  (SSE from the testbed event bus)
 */
"use strict";

const $ = (id) => document.getElementById(id);
const STATUS_INTERVAL_MS = 2000;
const TIMELINE_CAP = 200;

/* ---- /ctl/status polling ---- */

let prevShardStats = null; // previous per-shard counters, for rates
let prevStatusAt = 0;

async function pollStatus() {
  let st;
  try {
    const res = await fetch("/ctl/status");
    st = await res.json();
  } catch (err) {
    return; // the SSE badge reports connectivity
  }
  $("buildinfo").textContent =
    (st.version ? "v" + st.version : "") +
    (st.broker_addr ? " · mqtt " + st.broker_addr : "");
  $("models").textContent = st.models;
  $("pods").textContent = st.pods_running + (st.pods_pending ? " (+" + st.pods_pending + " pending)" : "");
  $("violations").textContent = st.violations;
  $("chaos").textContent = num(st.chaos.injected) + " / " + num(st.chaos.recovered);
  $("uptime").textContent = fmtUptime(st.uptime_sec);
  renderTopology(st.topology);
  renderPods(st.pods);
  renderShards(st.swarm);
  if (Array.isArray(st.latency) && st.latency.length) renderLatency(st.latency);
}

function num(v) { return Math.round(v || 0); }

function fmtUptime(sec) {
  if (!sec || sec < 0) return "–";
  if (sec < 90) return Math.round(sec) + "s";
  if (sec < 5400) return Math.round(sec / 60) + "m";
  return (sec / 3600).toFixed(1) + "h";
}

/* Fleet topology: the attach graph as a nested tree. Roots are models
 * that are no model's child. */
function renderTopology(topo) {
  const host = $("topology");
  const nodes = topo.nodes || [];
  const edges = topo.edges || [];
  const children = new Map();
  const isChild = new Set();
  for (const e of edges) {
    if (!children.has(e.parent)) children.set(e.parent, []);
    children.get(e.parent).push(e.child);
    isChild.add(e.child);
  }
  const byName = new Map(nodes.map((n) => [n.name, n]));
  const build = (name, seen) => {
    const li = document.createElement("li");
    const n = byName.get(name);
    const label = document.createElement("span");
    label.textContent = name;
    if (n && n.scene) label.className = "scene";
    li.appendChild(label);
    if (n) {
      const kind = document.createElement("span");
      kind.className = "kind";
      kind.textContent = " " + n.type;
      li.appendChild(kind);
    }
    const kids = children.get(name) || [];
    if (kids.length && !seen.has(name)) {
      seen.add(name);
      const ul = document.createElement("ul");
      for (const k of kids) ul.appendChild(build(k, seen));
      li.appendChild(ul);
    }
    return li;
  };
  const root = document.createElement("ul");
  for (const n of nodes) {
    if (!isChild.has(n.name)) root.appendChild(build(n.name, new Set()));
  }
  if (!nodes.length) root.innerHTML = "<li class='dim'>no models running</li>";
  host.replaceChildren(root);
}

function renderPods(pods) {
  const body = $("podtable").tBodies[0];
  body.replaceChildren();
  for (const p of pods || []) {
    const tr = document.createElement("tr");
    const phase = document.createElement("td");
    phase.textContent = p.phase;
    phase.className = p.phase;
    tr.appendChild(cell(p.name));
    tr.appendChild(phase);
    tr.appendChild(cell(p.node || ""));
    tr.appendChild(cell(String(p.restarts || 0)));
    body.appendChild(tr);
  }
}

function cell(text) {
  const td = document.createElement("td");
  td.textContent = text;
  return td;
}

/* Per-shard throughput bars: successive /ctl/status polls are deltaed
 * into msg/s per shard; a down shard renders red at zero. */
function renderShards(swarm) {
  const host = $("shards");
  const note = $("shardnote");
  const stats = swarm && swarm.stats;
  if (!stats || !stats.shards || !stats.shards.length) {
    host.replaceChildren();
    note.textContent = "no swarm run in flight — POST /ctl/swarm to start one";
    prevShardStats = null;
    return;
  }
  const now = performance.now();
  const down = new Set(stats.shards_down || []);
  const rates = stats.shards.map((s, i) => {
    if (!prevShardStats || !prevShardStats.shards[i] || now <= prevStatusAt) return 0;
    const d = s.publishes_in - prevShardStats.shards[i].publishes_in;
    return Math.max(0, (d * 1000) / (now - prevStatusAt));
  });
  prevShardStats = stats;
  prevStatusAt = now;
  const peak = Math.max(1, ...rates);
  host.replaceChildren();
  stats.shards.forEach((s, i) => {
    const bar = document.createElement("div");
    bar.className = "bar" + (down.has(i) ? " down" : "");
    const fill = document.createElement("div");
    fill.className = "fill";
    fill.style.height = down.has(i) ? "2px" : Math.max(2, (rates[i] / peak) * 100) + "%";
    const tag = document.createElement("div");
    tag.className = "tag";
    tag.textContent = "s" + i + (down.has(i) ? " down" : " " + Math.round(rates[i]));
    bar.appendChild(fill);
    bar.appendChild(tag);
    host.appendChild(bar);
  });
  note.textContent =
    "failovers " + num(swarm.failovers) + " · shed " + num(swarm.shed) +
    " · redelivered " + num(stats.redelivered);
}

/* E2E latency heatlines: one track per topic class, p50 solid and p99
 * translucent, scaled to the slowest class's p99. */
function renderLatency(classes) {
  const host = $("latency");
  const peak = Math.max(1e-3, ...classes.map((c) => c.p99_ms));
  host.replaceChildren();
  for (const c of classes) {
    const row = document.createElement("div");
    row.className = "heatline";
    const cls = document.createElement("span");
    cls.className = "cls";
    cls.textContent = c.class;
    const track = document.createElement("div");
    track.className = "track";
    const p99 = document.createElement("div");
    p99.className = "p99";
    p99.style.width = Math.min(100, (c.p99_ms / peak) * 100) + "%";
    const p50 = document.createElement("div");
    p50.className = "p50";
    p50.style.width = Math.min(100, (c.p50_ms / peak) * 100) + "%";
    track.appendChild(p99);
    track.appendChild(p50);
    const numEl = document.createElement("span");
    numEl.className = "num";
    numEl.textContent = c.p50_ms.toFixed(2) + " / " + c.p99_ms.toFixed(2);
    row.appendChild(cls);
    row.appendChild(track);
    row.appendChild(numEl);
    host.appendChild(row);
  }
}

/* ---- /ctl/events SSE ---- */

function describe(kind, d) {
  switch (kind) {
    case "fault":
      return { cls: d.action === "recover" ? "recover" : "inject", text: d.action + " " + d.fault + " → " + d.target };
    case "shard":
      return { cls: "shard", text: "shard " + d.shard + " " + d.state + (d.recovery_ms ? " (recovered in " + d.recovery_ms.toFixed(1) + " ms)" : "") };
    case "pod":
      return { cls: "pod", text: "pod " + d.pod + " → " + d.phase + (d.node ? " @ " + d.node : "") };
    case "client":
      return { cls: "client", text: "client " + d.client + " " + d.state };
    default:
      return null;
  }
}

function pushTimeline(ev) {
  let data;
  try { data = JSON.parse(ev.data); } catch (err) { return; }
  const desc = describe(data.kind, data.data || {});
  if (!desc) return;
  const li = document.createElement("li");
  const t = document.createElement("span");
  t.className = "t";
  t.textContent = new Date(data.at_ms).toISOString().slice(11, 23);
  const body = document.createElement("span");
  body.className = desc.cls;
  body.textContent = desc.text;
  li.appendChild(t);
  li.appendChild(body);
  const host = $("timeline");
  host.prepend(li);
  while (host.children.length > TIMELINE_CAP) host.removeChild(host.lastChild);
}

function updateLatencyFromEvent(ev) {
  try {
    const data = JSON.parse(ev.data);
    if (data.data && Array.isArray(data.data.classes)) renderLatency(data.data.classes);
  } catch (err) { /* keep the last good render */ }
}

function connect() {
  const es = new EventSource("/ctl/events");
  es.onopen = () => {
    $("conn").textContent = "live";
    $("conn").className = "badge on";
  };
  es.onerror = () => {
    $("conn").textContent = "reconnecting…";
    $("conn").className = "badge off";
  };
  for (const kind of ["fault", "shard", "pod", "client"]) {
    es.addEventListener(kind, pushTimeline);
  }
  es.addEventListener("latency", updateLatencyFromEvent);
}

pollStatus();
setInterval(pollStatus, STATUS_INTERVAL_MS);
connect();
