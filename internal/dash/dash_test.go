package dash

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// The embedded tree must serve the dashboard shell and its assets
// with sensible content types — a broken embed fails here, not at
// first deploy.
func TestHandlerServesEmbeddedAssets(t *testing.T) {
	h := Handler()
	cases := []struct {
		path        string
		wantType    string
		wantContent string
	}{
		{"/", "text/html", "digibox dashboard"},
		{"/", "text/html", "id=\"timeline\""},
		{"/app.js", "text/javascript", "/ctl/events"},
		{"/style.css", "text/css", "--accent"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", tc.path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		res := rec.Result()
		body, _ := io.ReadAll(res.Body)
		if res.StatusCode != 200 {
			t.Fatalf("%s: status %d", tc.path, res.StatusCode)
		}
		if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, tc.wantType) {
			t.Errorf("%s: content-type %q, want %q", tc.path, ct, tc.wantType)
		}
		if !strings.Contains(string(body), tc.wantContent) {
			t.Errorf("%s: body missing %q", tc.path, tc.wantContent)
		}
	}
}

func TestHandlerRejectsMissingFiles(t *testing.T) {
	req := httptest.NewRequest("GET", "/nope.js", nil)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	if rec.Result().StatusCode != 404 {
		t.Fatalf("status %d, want 404", rec.Result().StatusCode)
	}
}
