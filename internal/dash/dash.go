// Package dash is the embedded fleet dashboard: a zero-dependency,
// build-time-embedded web UI served by dboxd at /ctl/dash. It is a
// pure consumer of the public control surface — everything it renders
// comes from GET /ctl/status (one JSON document) and GET /ctl/events
// (the SSE stream of the testbed event bus), the same endpoints the
// blackbox e2e suite drives. No handler here reaches into the testbed.
package dash

import (
	"embed"
	"io/fs"
	"net/http"
)

//go:embed static
var static embed.FS

// Handler serves the embedded dashboard files. The caller mounts it
// under its own prefix (dboxd uses /ctl/dash/); index.html is served
// at the mount root.
func Handler() http.Handler {
	sub, err := fs.Sub(static, "static")
	if err != nil {
		// The embed is part of the build; a missing subtree is a
		// packaging bug, not a runtime condition.
		panic("dash: embedded static tree missing: " + err.Error())
	}
	return http.FileServer(http.FS(sub))
}
