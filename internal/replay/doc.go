// Package replay implements Digibox's deterministic record/replay
// harness (§3.5 "logs everything for replay").
//
// A Scenario declares a scene run — the digis to deploy, scripted
// edits, an optional seeded chaos plan, and a duration. The Engine
// executes the scenario as a single-threaded discrete-event simulation
// over the real digi, broker, kube-placement, and chaos code paths: a
// virtual clock (clock.Virtual, shared with the live runtime's
// injectable time source) replaces tickers and timers, store-watcher
// delivery is serialized into a deterministic propagation queue, and
// every trace record carries virtual timestamps. Two runs of the same
// scenario are byte-identical, verified by a chained digest over the
// normalised records — which turns any example scene into a
// conformance regression test (see the replaytest subpackage).
package replay
