package replay

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/yamlite"
)

// Digi is one row of a scenario's scene table: a mock or scene
// instance, its meta config overrides, and the children to attach.
type Digi struct {
	Type   string
	Name   string
	Config map[string]any
	Attach []string
}

// Edit is one scripted interaction: a merge patch applied to a model
// at a virtual-time offset (the deterministic analogue of "dbox edit"
// mid-run).
type Edit struct {
	At    time.Duration
	Name  string
	Patch map[string]any
}

// Node declares one simulated machine of the scenario's cluster.
type Node struct {
	Name     string
	Capacity int
	Zone     string
}

// Scenario is a declarative, self-contained description of one
// deterministic scene run.
type Scenario struct {
	Name     string
	Duration time.Duration
	// Nodes defaults to one node {"laptop", 4096, "local"} — the
	// testbed default.
	Nodes  []Node
	Digis  []Digi
	Script []Edit
	// Chaos, when set, runs the seeded fault plan against the scene on
	// the virtual clock.
	Chaos *chaos.Plan
}

// Validate checks structural validity: a name, a positive duration,
// uniquely named digis with types, edits targeting declared digis
// inside the run window, and (when present) a valid chaos plan that
// finishes before the run does.
func (sc *Scenario) Validate() error {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	if sc.Name == "" {
		bad("missing scenario name")
	}
	if sc.Duration <= 0 {
		bad("duration_ms must be positive")
	}
	if len(sc.Digis) == 0 {
		bad("no digis declared")
	}
	names := map[string]bool{}
	for i, d := range sc.Digis {
		if d.Type == "" || d.Name == "" {
			bad("digi %d: missing type or name", i)
			continue
		}
		if names[d.Name] {
			bad("digi %d: duplicate name %q", i, d.Name)
		}
		names[d.Name] = true
	}
	for i, d := range sc.Digis {
		for _, child := range d.Attach {
			if !names[child] {
				bad("digi %d (%s): attach target %q not declared", i, d.Name, child)
			}
		}
	}
	for i, e := range sc.Script {
		if e.Name == "" || len(e.Patch) == 0 {
			bad("script step %d: missing edit target or patch", i)
			continue
		}
		if !names[e.Name] {
			bad("script step %d: edit target %q not declared", i, e.Name)
		}
		if e.At < 0 || e.At > sc.Duration {
			bad("script step %d: at_ms outside the run window", i)
		}
	}
	if sc.Chaos != nil {
		if err := sc.Chaos.Validate(); err != nil {
			bad("%v", err)
		} else if end := sc.Chaos.End(); end > sc.Duration {
			bad("chaos plan ends at %v, after the %v run window", end, sc.Duration)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("replay: invalid scenario %q:\n  %s", sc.Name, strings.Join(errs, "\n  "))
	}
	return nil
}

// ParseScenario decodes a YAML scenario document:
//
//	scenario: quickstart
//	duration_ms: 1000
//	digis:
//	  - type: Occupancy
//	    name: O1
//	    config: {interval_ms: 50, seed: 7}
//	  - type: Room
//	    name: MeetingRoom
//	    config: {managed: false}
//	    attach: [O1]
//	script:
//	  - at_ms: 300
//	    edit: MeetingRoom
//	    patch: {human_presence: true}
//	chaos:
//	  plan: drill
//	  seed: 11
//	  events: [...]
func ParseScenario(data []byte) (*Scenario, error) {
	v, err := yamlite.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	sc, err := ScenarioFromValue(v)
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ScenarioFromValue builds a Scenario from a generic decoded value (a
// YAML document or a JSON control-API body). It does not Validate.
func ScenarioFromValue(v any) (*Scenario, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("replay: scenario must be a mapping, got %T", v)
	}
	sc := &Scenario{}
	sc.Name = str(m["scenario"])
	if sc.Name == "" {
		sc.Name = str(m["name"])
	}
	sc.Duration = time.Duration(asInt(m["duration_ms"])) * time.Millisecond
	if ns, ok := m["nodes"].([]any); ok {
		for i, raw := range ns {
			nm, ok := raw.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("replay: node %d must be a mapping, got %T", i, raw)
			}
			sc.Nodes = append(sc.Nodes, Node{
				Name:     str(nm["name"]),
				Capacity: int(asInt(nm["capacity"])),
				Zone:     str(nm["zone"]),
			})
		}
	}
	ds, ok := m["digis"].([]any)
	if !ok && m["digis"] != nil {
		return nil, fmt.Errorf("replay: digis must be a sequence, got %T", m["digis"])
	}
	for i, raw := range ds {
		dm, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("replay: digi %d must be a mapping, got %T", i, raw)
		}
		d := Digi{Type: str(dm["type"]), Name: str(dm["name"])}
		if cfg, ok := dm["config"].(map[string]any); ok {
			d.Config = cfg
		}
		if att, ok := dm["attach"].([]any); ok {
			for _, c := range att {
				d.Attach = append(d.Attach, str(c))
			}
		}
		sc.Digis = append(sc.Digis, d)
	}
	if steps, ok := m["script"].([]any); ok {
		for i, raw := range steps {
			em, ok := raw.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("replay: script step %d must be a mapping, got %T", i, raw)
			}
			e := Edit{
				At:   time.Duration(asInt(em["at_ms"])) * time.Millisecond,
				Name: str(em["edit"]),
			}
			if p, ok := em["patch"].(map[string]any); ok {
				e.Patch = p
			}
			sc.Script = append(sc.Script, e)
		}
	}
	if cv, ok := m["chaos"]; ok && cv != nil {
		p, err := chaos.PlanFromValue(cv)
		if err != nil {
			return nil, err
		}
		sc.Chaos = p
	}
	return sc, nil
}

// Value renders the scenario as a generic value suitable for
// yamlite/JSON encoding — the inverse of ScenarioFromValue.
func (sc *Scenario) Value() any {
	m := map[string]any{
		"scenario":    sc.Name,
		"duration_ms": int64(sc.Duration / time.Millisecond),
	}
	if len(sc.Nodes) > 0 {
		var ns []any
		for _, n := range sc.Nodes {
			ns = append(ns, map[string]any{
				"name": n.Name, "capacity": int64(n.Capacity), "zone": n.Zone,
			})
		}
		m["nodes"] = ns
	}
	var ds []any
	for _, d := range sc.Digis {
		dm := map[string]any{"type": d.Type, "name": d.Name}
		if len(d.Config) > 0 {
			dm["config"] = d.Config
		}
		if len(d.Attach) > 0 {
			var att []any
			for _, c := range d.Attach {
				att = append(att, c)
			}
			dm["attach"] = att
		}
		ds = append(ds, dm)
	}
	if ds != nil {
		m["digis"] = ds
	}
	if len(sc.Script) > 0 {
		var steps []any
		for _, e := range sc.Script {
			steps = append(steps, map[string]any{
				"at_ms": int64(e.At / time.Millisecond),
				"edit":  e.Name,
				"patch": e.Patch,
			})
		}
		m["script"] = steps
	}
	if sc.Chaos != nil {
		m["chaos"] = sc.Chaos.Value()
	}
	return m
}

// Marshal encodes the scenario as a standalone YAML document.
func (sc *Scenario) Marshal() ([]byte, error) {
	return yamlite.Encode(sc.Value())
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

func asInt(v any) int64 {
	switch n := v.(type) {
	case int64:
		return n
	case int:
		return int64(n)
	case float64:
		return int64(n)
	}
	return 0
}
