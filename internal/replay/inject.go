package replay

import (
	"fmt"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/kube"
	"repro/internal/model"
)

// This file adapts the engine's substrates to the chaos injector
// interfaces, so a scenario's fault plan exercises the same chaos
// engine code as a live run — just on the virtual clock.

// brokerInjector adapts the engine's in-process broker (identical to
// the live testbed's adapter).
type brokerInjector struct{ b *broker.Broker }

func (bi brokerInjector) Disconnect(clientID string) bool { return bi.b.Kick(clientID) }

func (bi brokerInjector) AddMessageFault(f chaos.MessageFault) (remove func()) {
	return bi.b.AddFault(broker.FaultRule{
		Client: f.Client, From: f.From, Topic: f.Topic,
		DropRate: f.DropRate, DupRate: f.DupRate, Delay: f.Delay,
	})
}

func (bi brokerInjector) SetPartitions(groups [][]string) { bi.b.SetPartitions(groups) }
func (bi brokerInjector) ClearPartitions()                { bi.b.ClearPartitions() }
func (bi brokerInjector) SetFaultSeed(seed int64)         { bi.b.SetFaultSeed(seed) }

// clusterInjector applies node and pod faults to the engine's
// deterministic pod-liveness view, reusing the live scheduler's
// placement policy (kube.PickNode) for every reschedule.
type clusterInjector struct{ e *Engine }

func (ci clusterInjector) node(name string) (*kube.Node, error) {
	for _, n := range ci.e.nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("replay: node %q not found", name)
}

// KillNode marks the node NotReady and evicts its pods; evicted digis
// are rescheduled immediately if another ready node has capacity, else
// they stay pending until a node comes back.
func (ci clusterInjector) KillNode(name string) error {
	n, err := ci.node(name)
	if err != nil {
		return err
	}
	if !n.Status.Ready {
		return fmt.Errorf("replay: node %q already down", name)
	}
	n.Status.Ready = false
	for _, dn := range ci.e.order {
		if st := ci.e.digis[dn]; st != nil && st.running && st.node == name {
			ci.e.stopDigi(dn, "pod-evicted")
		}
	}
	ci.reschedulePending()
	return nil
}

// ReviveNode marks the node Ready and retries every pending pod.
func (ci clusterInjector) ReviveNode(name string) error {
	n, err := ci.node(name)
	if err != nil {
		return err
	}
	n.Status.Ready = true
	ci.reschedulePending()
	return nil
}

// CrashPod crashes a digi's pod once; the RestartAlways policy
// reschedules it immediately.
func (ci clusterInjector) CrashPod(digi string) error {
	st := ci.e.digis[digi]
	if st == nil || !st.running {
		return fmt.Errorf("replay: %q has no running pod", digi)
	}
	ci.e.stopDigi(digi, "pod-crashed")
	ci.reschedulePending()
	return nil
}

// reschedulePending places every stopped digi that fits somewhere, in
// creation order — the deterministic serialization of the live
// scheduler's retry loop.
func (ci clusterInjector) reschedulePending() {
	for _, dn := range ci.e.order {
		st := ci.e.digis[dn]
		if st == nil || st.running {
			continue
		}
		node, ok := kube.PickNode(ci.e.nodes, nil, ci.e.assigned)
		if !ok {
			continue
		}
		if err := ci.e.startDigi(dn, node); err != nil {
			ci.e.fail(err)
			return
		}
	}
}

// deviceInjector applies sensor fault modes through the model config
// machinery — the same path the live testbed takes — queueing the
// committed updates for propagation after the injecting chaos step.
type deviceInjector struct{ e *Engine }

func (di deviceInjector) SetFault(digi, mode string, value float64) error {
	if !di.e.store.Has(digi) {
		return fmt.Errorf("replay: %q not found", digi)
	}
	u, err := di.e.store.Apply(digi, func(d model.Doc) error {
		d.Set("meta.fault", mode)
		if value != 0 {
			d.Set("meta.fault_value", value)
		}
		return nil
	})
	if err == nil && len(u.Changes) > 0 {
		di.e.queued = append(di.e.queued, u)
	}
	return err
}

func (di deviceInjector) ClearFault(digi string) error {
	if !di.e.store.Has(digi) {
		return fmt.Errorf("replay: %q not found", digi)
	}
	u, err := di.e.store.Apply(digi, func(d model.Doc) error {
		d.Delete("meta.fault")
		d.Delete("meta.fault_value")
		return nil
	})
	if err == nil && len(u.Changes) > 0 {
		di.e.queued = append(di.e.queued, u)
	}
	return err
}
