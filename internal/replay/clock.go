// Package replay implements Digibox's deterministic record/replay
// harness (§3.5 "logs everything for replay").
//
// A Scenario declares a scene run — the digis to deploy, scripted
// edits, an optional seeded chaos plan, and a duration. The Engine
// executes the scenario as a single-threaded discrete-event simulation
// over the real digi, broker, kube-placement, and chaos code paths: a
// virtual clock replaces tickers and timers, store-watcher delivery is
// serialized into a deterministic propagation queue, and every trace
// record carries virtual timestamps. Two runs of the same scenario are
// byte-identical, verified by a chained digest over the normalised
// records — which turns any example scene into a conformance
// regression test (see the replaytest subpackage).
package replay

import (
	"container/heap"
	"time"
)

// epoch is the fixed virtual start time of every deterministic run.
var epoch = time.Unix(0, 0).UTC()

// clock is a virtual clock with a timer min-heap. Timers fire in
// (time, schedule-order) order, so simultaneous timers resolve
// deterministically.
type clock struct {
	now    time.Time
	seq    uint64
	timers timerHeap
}

type timer struct {
	at  time.Time
	seq uint64
	fn  func()
}

func newClock() *clock {
	return &clock{now: epoch}
}

// Now is the injectable time source (trace.NewLogAt).
func (c *clock) Now() time.Time { return c.now }

// Elapsed returns the virtual time since run start.
func (c *clock) Elapsed() time.Duration { return c.now.Sub(epoch) }

// schedule arms fn to fire after d (relative to virtual now).
func (c *clock) schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.seq++
	heap.Push(&c.timers, &timer{at: c.now.Add(d), seq: c.seq, fn: fn})
}

// scheduleAt arms fn to fire at an absolute offset from run start.
func (c *clock) scheduleAt(offset time.Duration, fn func()) {
	at := epoch.Add(offset)
	if at.Before(c.now) {
		at = c.now
	}
	c.seq++
	heap.Push(&c.timers, &timer{at: at, seq: c.seq, fn: fn})
}

// step pops and fires the earliest timer at or before the deadline,
// advancing virtual now to its firing time. It reports whether a timer
// fired.
func (c *clock) step(deadline time.Time) bool {
	if len(c.timers) == 0 {
		return false
	}
	t := c.timers[0]
	if t.at.After(deadline) {
		return false
	}
	heap.Pop(&c.timers)
	if t.at.After(c.now) {
		c.now = t.at
	}
	t.fn()
	return true
}

// timerHeap orders timers by (at, seq).
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
