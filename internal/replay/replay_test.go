package replay

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/device"
	"repro/internal/digi"
	"repro/internal/scene"
	"repro/internal/trace"
)

func testRegistry(t *testing.T) *digi.Registry {
	t.Helper()
	reg := digi.NewRegistry()
	if err := device.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	if err := scene.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

func quickScenario() *Scenario {
	return &Scenario{
		Name:     "quick",
		Duration: 500 * time.Millisecond,
		Digis: []Digi{
			{Type: "Occupancy", Name: "O1",
				Config: map[string]any{"interval_ms": int64(50), "trigger_prob": 1.0, "seed": int64(7)}},
			{Type: "Lamp", Name: "L1"},
			{Type: "Room", Name: "MeetingRoom",
				Config: map[string]any{"managed": false},
				Attach: []string{"O1", "L1"}},
		},
		Script: []Edit{
			{At: 200 * time.Millisecond, Name: "MeetingRoom",
				Patch: map[string]any{"human_presence": true}},
		},
	}
}

func TestEngineDeterministic(t *testing.T) {
	reg := testRegistry(t)
	sc := quickScenario()
	a, err := Record(reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("two runs of the same scenario diverged:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if len(a.Records) == 0 {
		t.Fatal("run produced no records")
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].TS != b.Records[i].TS || a.Records[i].Kind != b.Records[i].Kind {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestEngineRunsTheScene(t *testing.T) {
	reg := testRegistry(t)
	res, err := Record(reg, quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	// The scripted human_presence edit must have driven the lamp on
	// through the Room scene — visible as an action on L1 setting
	// power.intent.
	var lampDriven bool
	var marks, events, messages int
	for _, r := range res.Records {
		switch r.Kind {
		case trace.KindMark:
			marks++
		case trace.KindEvent:
			events++
		case trace.KindMessage:
			messages++
		}
		if r.Kind == trace.KindAction && r.Name == "L1" {
			if v, ok := r.Sets["power.intent"]; ok && v == "on" {
				lampDriven = true
			}
		}
	}
	if !lampDriven {
		t.Error("scripted edit did not drive L1 power.intent on")
	}
	if marks < 5 { // run-start, 3x pod-scheduled, script-edit, run-end
		t.Errorf("want >= 5 mark records, got %d", marks)
	}
	if events == 0 || messages == 0 {
		t.Errorf("want events and messages in the trace, got %d events %d messages", events, messages)
	}
}

func TestEngineChaosDeterministic(t *testing.T) {
	reg := testRegistry(t)
	sc := quickScenario()
	sc.Name = "quick-chaos"
	sc.Chaos = &chaos.Plan{
		Name: "drill",
		Seed: 11,
		Events: []chaos.Event{
			{At: 100 * time.Millisecond, Fault: chaos.FaultDrop, Topic: "digibox/#", Rate: 0.5,
				For: 200 * time.Millisecond},
			{At: 150 * time.Millisecond, Fault: chaos.FaultNodeDown, Node: "laptop",
				For: 150 * time.Millisecond},
			{At: 120 * time.Millisecond, Fault: chaos.FaultDropout, Digi: "O1",
				For: 150 * time.Millisecond},
		},
	}
	a, err := Record(reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("chaos runs diverged:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if a.Report == nil || a.Report.Injected == 0 {
		t.Fatalf("chaos plan did not inject: %+v", a.Report)
	}
	// The node failure must appear in the trace as evictions followed
	// by re-scheduling on revive.
	var evicted, rescheduled bool
	sawDown := false
	for _, r := range a.Records {
		if r.Kind == trace.KindFault && r.Fault == "node-down" {
			sawDown = true
		}
		if r.Kind == trace.KindMark && r.Detail == "pod-evicted" {
			evicted = true
		}
		if sawDown && r.Kind == trace.KindMark && r.Detail == "pod-scheduled" {
			rescheduled = true
		}
	}
	if !evicted || !rescheduled {
		t.Errorf("node-down fault: evicted=%v rescheduled=%v", evicted, rescheduled)
	}
	// The fault signature must match the live-engine contract format.
	sig := chaos.Signature(a.Records)
	if len(sig) == 0 {
		t.Error("no chaos signature lines in the trace")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	reg := testRegistry(t)
	sc := quickScenario()
	res, err := Record(reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(reg, sc, res.Digest); err != nil {
		t.Fatalf("verify against own digest: %v", err)
	}
	if _, err := Verify(reg, sc, "sha256:beef"); err == nil {
		t.Fatal("verify accepted a wrong digest")
	}
}

func TestScenarioYAMLRoundTrip(t *testing.T) {
	sc := quickScenario()
	sc.Chaos = &chaos.Plan{Name: "p", Seed: 3, Events: []chaos.Event{
		{At: 100 * time.Millisecond, Fault: chaos.FaultDropout, Digi: "O1", For: 100 * time.Millisecond},
	}}
	data, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("parse marshalled scenario: %v\n%s", err, data)
	}
	if back.Name != sc.Name || back.Duration != sc.Duration {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Digis) != len(sc.Digis) || len(back.Script) != len(sc.Script) {
		t.Fatalf("shape mismatch: %+v", back)
	}
	if back.Digis[2].Attach[1] != "L1" {
		t.Fatalf("attach lost: %+v", back.Digis[2])
	}
	if back.Chaos == nil || back.Chaos.Seed != 3 {
		t.Fatalf("chaos lost: %+v", back.Chaos)
	}
	// Round-tripping must not change the run's behaviour.
	reg := testRegistry(t)
	a, err := Record(reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(reg, back)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatal("round-tripped scenario produced a different digest")
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "missing scenario name"},
		{"no duration", func(s *Scenario) { s.Duration = 0 }, "duration_ms"},
		{"dup digi", func(s *Scenario) { s.Digis[1].Name = "O1" }, "duplicate name"},
		{"bad attach", func(s *Scenario) { s.Digis[2].Attach = []string{"nope"} }, "not declared"},
		{"bad edit target", func(s *Scenario) { s.Script[0].Name = "nope" }, "not declared"},
		{"edit outside window", func(s *Scenario) { s.Script[0].At = time.Hour }, "outside the run window"},
		{"chaos too long", func(s *Scenario) {
			s.Chaos = &chaos.Plan{Name: "p", Events: []chaos.Event{
				{At: time.Hour, Fault: chaos.FaultDropout, Digi: "O1"}}}
		}, "after the"},
	}
	for _, tc := range cases {
		sc := quickScenario()
		tc.mut(sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := quickScenario().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	reg := testRegistry(t)
	res, err := Record(reg, quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	data, err := ArchiveBytes(res)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := ParseArchiveBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Digest != res.Digest {
		t.Fatalf("digest lost in archive: %s vs %s", ar.Digest, res.Digest)
	}
	if len(ar.Records) != len(res.Records) {
		t.Fatalf("records lost: %d vs %d", len(ar.Records), len(res.Records))
	}
	// The stored records' own digest must match the stored digest.
	d, err := Digest(ar.Records)
	if err != nil {
		t.Fatal(err)
	}
	if d != ar.Digest {
		t.Fatalf("archived records hash to %s, digest file says %s", d, ar.Digest)
	}
	// Re-running the archived scenario must reproduce the digest.
	if _, err := Verify(reg, ar.Scenario, ar.Digest); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseArchiveBytes([]byte("not a zip")); err == nil {
		t.Fatal("parsed garbage as an archive")
	}
}

func TestNormalizeDropsObservational(t *testing.T) {
	recs := []trace.Record{
		{Seq: 1, Kind: trace.KindEvent, Name: "O1"},
		{Seq: 2, Kind: trace.KindSpan, Name: "O1", Topic: "t"},
		{Seq: 3, Kind: trace.KindFault, Name: "runtime", Fault: "broker-gap"},
		{Seq: 4, Kind: trace.KindFault, Name: "O1", Type: "chaos", Fault: "dropout"},
		{Seq: 5, Kind: trace.KindAction, Name: "L1"},
	}
	out := Normalize(recs)
	if len(out) != 3 {
		t.Fatalf("want 3 records, got %d: %+v", len(out), out)
	}
	for i, r := range out {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d not renumbered", i, r.Seq)
		}
	}
	if out[1].Fault != "dropout" {
		t.Errorf("chaos fault record dropped: %+v", out[1])
	}
}

func TestDigestChainOrderSensitive(t *testing.T) {
	a := []trace.Record{{Seq: 1, Kind: trace.KindEvent, Name: "A"}, {Seq: 2, Kind: trace.KindEvent, Name: "B"}}
	b := []trace.Record{{Seq: 1, Kind: trace.KindEvent, Name: "B"}, {Seq: 2, Kind: trace.KindEvent, Name: "A"}}
	da, err := Digest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Digest(b)
	if err != nil {
		t.Fatal(err)
	}
	if da == db {
		t.Fatal("digest ignores record order")
	}
	empty, err := Digest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(empty, "sha256:") {
		t.Fatalf("bad digest format: %s", empty)
	}
}

func TestClockOrdering(t *testing.T) {
	c := clock.NewVirtual()
	var got []int
	c.ScheduleAt(10*time.Millisecond, func() { got = append(got, 1) })
	c.ScheduleAt(10*time.Millisecond, func() { got = append(got, 2) })
	c.ScheduleAt(5*time.Millisecond, func() { got = append(got, 0) })
	deadline := clock.Epoch.Add(time.Second)
	for c.Step(deadline) {
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("timers fired out of order: %v", got)
	}
	if c.Elapsed() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want 10ms", c.Elapsed())
	}
}

func TestWriteArchiveToFile(t *testing.T) {
	reg := testRegistry(t)
	res, err := Record(reg, quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/run.zip"
	if err := SaveArchive(path, res); err != nil {
		t.Fatal(err)
	}
	ar, err := LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Digest != res.Digest {
		t.Fatal("file round trip lost the digest")
	}
	var buf bytes.Buffer
	if err := WriteArchive(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty archive")
	}
}
