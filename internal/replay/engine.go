package replay

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/digi"
	"repro/internal/kube"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/vet"
)

// maxDeliveries bounds update propagation per run, so a non-convergent
// Sim handler fails the run instead of looping forever.
const maxDeliveries = 100000

// Result is the outcome of one deterministic run.
type Result struct {
	Scenario *Scenario
	// Records is the normalized canonical replay log (spans and
	// runtime gap markers dropped, sequence renumbered).
	Records []trace.Record
	// Digest is the chained SHA-256 over Records.
	Digest string
	// Report is the chaos run report (nil without a plan).
	Report *chaos.Report
	// Speed is the pacing factor the run executed at
	// (clock.SpeedMax = unpaced discrete-event firing).
	Speed float64
	// Wall is the wall-clock time the run took. Records and Digest
	// are independent of it — that is the speed-invariance contract.
	Wall time.Duration
}

// ExecOptions selects the execution mode of a run. The zero value is
// unpaced discrete-event execution (speed max), the mode Record has
// always used.
type ExecOptions struct {
	// Speed paces the run against the wall clock: 1 is real time,
	// 100 compresses 100s of scenario time into 1s of wall time, and
	// clock.SpeedMax (or 0) fires timers back-to-back. Pacing never
	// changes firing order or virtual timestamps, so the digest is
	// identical at every speed.
	Speed float64
	// Wall is the pacing reference clock; nil means clock.System.
	Wall clock.Clock
}

// Engine executes a Scenario as a single-threaded discrete-event
// simulation over the real digi/broker/kube-placement/chaos stack.
// Each Engine runs once; its store, broker, and trace log are private
// to the run.
type Engine struct {
	registry *digi.Registry
	sc       *Scenario

	clk   *clock.Virtual
	pacer *clock.Scaled
	wall  clock.Clock
	speed float64
	store *model.Store
	log   *trace.Log
	rt    *digi.Runtime
	brk   *broker.Broker

	// nodes + assigned mirror the scheduler's capacity view; placement
	// goes through kube.PickNode, the live cluster's policy.
	nodes    []*kube.Node
	assigned map[string]int

	digis map[string]*digiState
	order []string // creation order

	// queued collects updates committed outside stepper calls (device
	// fault injection) for propagation after the injecting step.
	queued []model.Update

	// failMu guards failure: fail is called from timer callbacks on
	// the driver goroutine and from Cancel on any goroutine.
	failMu  sync.Mutex
	failure error // sticky first engine error
}

// digiState is the engine's pod-liveness view of one digi.
type digiState struct {
	stepper *digi.Stepper
	node    string
	running bool
	epoch   int // bumped on every stop/restart; stale timers no-op
}

// NewEngine prepares an unpaced deterministic run of sc against the
// kinds in registry.
func NewEngine(registry *digi.Registry, sc *Scenario) (*Engine, error) {
	return NewEngineExec(registry, sc, ExecOptions{})
}

// NewEngineExec prepares a deterministic run in the given execution
// mode. The scenario is validated here. Every run — paced or not —
// drives the same clock.Scaled loop, so there is exactly one
// structural code path to keep digest-equivalent.
func NewEngineExec(registry *digi.Registry, sc *Scenario, opts ExecOptions) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	speed := opts.Speed
	if speed == 0 {
		speed = clock.SpeedMax
	}
	if math.IsNaN(speed) || speed < 0 {
		return nil, fmt.Errorf("replay: invalid speed %v", speed)
	}
	wall := clock.Or(opts.Wall)
	pacer := clock.NewScaled(speed, wall)
	e := &Engine{
		registry: registry,
		sc:       sc,
		clk:      pacer.Virtual,
		pacer:    pacer,
		wall:     wall,
		speed:    speed,
		store:    model.NewStore(),
		assigned: map[string]int{},
		digis:    map[string]*digiState{},
	}
	e.log = trace.NewLogAt(e.clk.Now)
	// The broker shares the run's virtual clock, so fault-injected
	// delivery delays fire on virtual time instead of leaking wall
	//-clock goroutines into the deterministic run.
	e.brk = broker.NewBroker(&broker.Options{Clock: e.clk})
	e.rt = &digi.Runtime{
		Store:    e.store,
		Log:      e.log,
		Registry: registry,
		Broker:   e.brk,
	}
	nodes := sc.Nodes
	if len(nodes) == 0 {
		nodes = []Node{{Name: "laptop", Capacity: 4096, Zone: "local"}}
	}
	for _, n := range nodes {
		zone := n.Zone
		if zone == "" {
			zone = "local"
		}
		capacity := n.Capacity
		if capacity <= 0 {
			capacity = 4096
		}
		e.nodes = append(e.nodes, &kube.Node{
			Name:   n.Name,
			Labels: map[string]string{"zone": zone},
			Spec:   kube.NodeSpec{Capacity: capacity, Zone: zone},
			Status: kube.NodeStatus{Ready: true},
		})
	}
	return e, nil
}

// Run executes the scenario and returns the canonical result. The
// engine is single-use.
func (e *Engine) Run() (*Result, error) {
	wallStart := e.wall.Now()
	e.log.Mark(e.sc.Name, "run-start", map[string]any{
		"digis":       int64(len(e.sc.Digis)),
		"duration_ms": int64(e.sc.Duration / time.Millisecond),
	})

	// Deploy the scene table: every digi is created and placed first,
	// then the attachments are wired parent by parent (the vettest
	// Deploy order, so live and deterministic runs build the same way).
	for _, d := range e.sc.Digis {
		if err := e.createDigi(d); err != nil {
			return nil, err
		}
	}
	for _, d := range e.sc.Digis {
		for _, child := range d.Attach {
			if err := e.attach(child, d.Name); err != nil {
				return nil, err
			}
		}
	}

	// Scripted edits.
	for i := range e.sc.Script {
		ed := e.sc.Script[i]
		e.clk.ScheduleAt(ed.At, func() { e.applyEdit(ed) })
	}

	// Chaos plan: compile once (pure function of plan and seed), walk
	// the schedule on the virtual clock through the engine's injectors.
	var walker *chaos.Walker
	if e.sc.Chaos != nil {
		steps, err := chaos.Compile(e.sc.Chaos)
		if err != nil {
			return nil, err
		}
		ce := &chaos.Engine{
			Broker:  brokerInjector{e.brk},
			Cluster: clusterInjector{e},
			Devices: deviceInjector{e},
			Log:     e.log,
		}
		walker = ce.NewWalker(e.sc.Chaos)
		for i := range steps {
			st := steps[i]
			e.clk.ScheduleAt(st.At, func() {
				walker.Apply(st)
				e.propagate(nil)
			})
		}
	}

	// Drive the event loop to the end of the run window. At SpeedMax
	// the pacer fires timers back-to-back exactly like the old bare
	// Step loop; at finite speeds it inserts wall-clock waits between
	// the same steps.
	deadline := clock.Epoch.Add(e.sc.Duration)
	e.pacer.Run(deadline, func() bool { return e.err() == nil })
	if err := e.err(); err != nil {
		return nil, err
	}
	e.log.Mark(e.sc.Name, "run-end", map[string]any{"records": int64(e.log.Len())})

	recs := Normalize(e.log.Records())
	digest, err := Digest(recs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scenario: e.sc,
		Records:  recs,
		Digest:   digest,
		Speed:    e.speed,
		Wall:     e.wall.Now().Sub(wallStart),
	}
	if walker != nil {
		res.Report = walker.Report()
	}
	return res, nil
}

// Pacer exposes the run's scaled clock so callers can pause, resume,
// or retune the speed of an in-flight run.
func (e *Engine) Pacer() *clock.Scaled { return e.pacer }

// Speed returns the configured pacing factor.
func (e *Engine) Speed() float64 { return e.speed }

// Elapsed returns the scenario time the run has covered so far; safe
// to call from other goroutines while Run is in flight.
func (e *Engine) Elapsed() time.Duration { return e.clk.Elapsed() }

// Cancel aborts an in-flight Run with err (e.g. context cancellation
// from a ctl handler). Safe from any goroutine; idempotent.
func (e *Engine) Cancel(err error) {
	if err == nil {
		err = fmt.Errorf("replay: %s: run cancelled", e.sc.Name)
	}
	e.fail(err)
	e.pacer.Stop()
}

// fail records the first engine error and stops the run.
func (e *Engine) fail(err error) {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	if e.failure == nil && err != nil {
		e.failure = err
	}
}

// err returns the sticky first engine error.
func (e *Engine) err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failure
}

// createDigi mirrors core.Run: instantiate the model (schema defaults
// plus meta config overrides), gate on vet, create it in the store,
// place its pod, and start its stepper.
func (e *Engine) createDigi(d Digi) error {
	kind, ok := e.registry.Get(d.Type)
	if !ok {
		return fmt.Errorf("replay: type %q not registered", d.Type)
	}
	doc := kind.Schema.New(d.Name)
	for k, v := range d.Config {
		doc.Set("meta."+k, v)
	}
	if err := kind.Schema.Validate(doc); err != nil {
		return err
	}
	if diags := vet.Errors(vet.CheckDoc(doc)); len(diags) > 0 {
		return fmt.Errorf("replay: %s fails vet: %s", d.Name, vet.Summary(diags))
	}
	if err := e.store.Create(doc); err != nil {
		return err
	}
	st := &digiState{}
	e.digis[d.Name] = st
	e.order = append(e.order, d.Name)
	node, ok := kube.PickNode(e.nodes, nil, e.assigned)
	if !ok {
		return fmt.Errorf("replay: no node with free capacity for %s", d.Name)
	}
	return e.startDigi(d.Name, node)
}

// startDigi places the digi's pod on node and (re)starts its stepper:
// a fresh seeded Ctx, the self-contained model snapshot, and an
// initial simulation pass — exactly what the live reconciler does when
// its pod starts.
func (e *Engine) startDigi(name, node string) error {
	st := e.digis[name]
	stepper, err := e.rt.NewStepper(context.Background(), name)
	if err != nil {
		return err
	}
	e.assigned[node]++
	st.stepper = stepper
	st.node = node
	st.running = true
	st.epoch++
	e.log.Mark(name, "pod-scheduled", map[string]any{"node": node, "pod": podName(name)})
	stepper.LogSnapshot()
	e.propagate(stepper.Simulate())
	e.scheduleTick(name, st.epoch)
	return nil
}

// stopDigi evicts the digi's pod (node failure, crash); its stepper
// stops ticking and observing updates until restarted.
func (e *Engine) stopDigi(name, detail string) {
	st := e.digis[name]
	if st == nil || !st.running {
		return
	}
	if e.assigned[st.node] > 0 {
		e.assigned[st.node]--
	}
	e.log.Mark(name, detail, map[string]any{"node": st.node, "pod": podName(name)})
	st.running = false
	st.node = ""
	st.epoch++
}

// scheduleTick arms the digi's next Loop firing. The epoch guard makes
// timers of an evicted or restarted digi no-ops.
func (e *Engine) scheduleTick(name string, epoch int) {
	st := e.digis[name]
	interval := st.stepper.Interval()
	e.clk.Schedule(interval, func() {
		cur := e.digis[name]
		if cur == nil || !cur.running || cur.epoch != epoch {
			return
		}
		e.propagate(cur.stepper.Tick())
		e.scheduleTick(name, epoch)
	})
}

// attach mirrors core.Attach: add the child to the parent scene's
// attach list and pause the child's own event generation.
func (e *Engine) attach(child, parent string) error {
	parentDoc, _, ok := e.store.Get(parent)
	if !ok {
		return fmt.Errorf("replay: %q not found", parent)
	}
	parentKind, ok := e.registry.Get(parentDoc.Type())
	if !ok || !parentKind.Scene() {
		return fmt.Errorf("replay: %q is not a scene", parent)
	}
	u, err := e.store.Apply(parent, func(d model.Doc) error {
		att := d.Attach()
		for _, c := range att {
			if c == child {
				return nil
			}
		}
		vals := make([]any, 0, len(att)+1)
		for _, c := range att {
			vals = append(vals, c)
		}
		vals = append(vals, child)
		d.Set("meta.attach", vals)
		return nil
	})
	if err != nil {
		return err
	}
	var updates []model.Update
	if len(u.Changes) > 0 {
		updates = append(updates, u)
	}
	cu, err := e.store.Apply(child, func(d model.Doc) error {
		d.Set("meta.managed", false)
		return nil
	})
	if err != nil {
		return err
	}
	if len(cu.Changes) > 0 {
		updates = append(updates, cu)
	}
	e.propagate(updates)
	return e.err()
}

// applyEdit fires one scripted edit: a mark record, then the merge
// patch (schema-validated, like core.Edit), then propagation.
func (e *Engine) applyEdit(ed Edit) {
	e.log.Mark(ed.Name, "script-edit", ed.Patch)
	doc, _, ok := e.store.Get(ed.Name)
	if !ok {
		e.fail(fmt.Errorf("replay: edit target %q not found", ed.Name))
		return
	}
	kind, _ := e.registry.Get(doc.Type())
	u, err := e.store.Apply(ed.Name, func(d model.Doc) error {
		d.Merge(ed.Patch)
		if kind != nil {
			return kind.Schema.Validate(d)
		}
		return nil
	})
	if err != nil {
		e.fail(fmt.Errorf("replay: edit %s: %w", ed.Name, err))
		return
	}
	if len(u.Changes) > 0 {
		e.propagate([]model.Update{u})
	}
}

// propagate serializes watcher delivery: every committed update is
// handed to each running stepper that would observe it (itself, or a
// scene whose attach list names the target), in creation order. New
// commits join the queue until the ensemble reaches its fixpoint.
func (e *Engine) propagate(updates []model.Update) {
	if e.err() != nil {
		return
	}
	pending := append(updates, e.queued...)
	e.queued = nil
	delivered := 0
	for len(pending) > 0 {
		u := pending[0]
		pending = pending[1:]
		for _, name := range e.order {
			st := e.digis[name]
			if st == nil || !st.running {
				continue
			}
			if !e.watches(name, u.Name) {
				continue
			}
			delivered++
			if delivered > maxDeliveries {
				e.fail(fmt.Errorf("replay: %s: update propagation did not converge after %d deliveries (non-idempotent Sim handler?)", e.sc.Name, maxDeliveries))
				return
			}
			pending = append(pending, st.stepper.HandleUpdate(u)...)
			pending = append(pending, e.queued...)
			e.queued = nil
		}
	}
}

// watches reports whether the named digi's live watcher would observe
// an update to target: its own model, or a child its attach list
// names.
func (e *Engine) watches(name, target string) bool {
	if name == target {
		return true
	}
	doc, _, ok := e.store.Get(name)
	if !ok {
		return false
	}
	for _, c := range doc.Attach() {
		if c == target {
			return true
		}
	}
	return false
}

func podName(digiName string) string {
	return "digi-" + strings.ToLower(digiName)
}

// Record is the one-call surface: run the scenario deterministically
// against the registered kinds and return the canonical result.
func Record(registry *digi.Registry, sc *Scenario) (*Result, error) {
	return RecordExec(registry, sc, ExecOptions{})
}

// RecordExec runs the scenario in the given execution mode. The
// result's Records and Digest are identical at every speed.
func RecordExec(registry *digi.Registry, sc *Scenario, opts ExecOptions) (*Result, error) {
	e, err := NewEngineExec(registry, sc, opts)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// Verify re-executes the scenario and checks the produced digest
// against want (a prior run's digest), returning the fresh result.
func Verify(registry *digi.Registry, sc *Scenario, want string) (*Result, error) {
	res, err := Record(registry, sc)
	if err != nil {
		return nil, err
	}
	if want != "" && res.Digest != want {
		return res, fmt.Errorf("replay: digest mismatch for %s:\n  recorded %s\n  replayed %s", sc.Name, want, res.Digest)
	}
	return res, nil
}
