// Package replaytest is the golden-trace conformance framework: one
// call turns an example scene into a byte-exact regression test.
//
//	func TestGolden(t *testing.T) {
//		replaytest.Golden(t, registry, scenario, "testdata/quickstart.trace.jsonl")
//	}
//
// The scenario is executed twice on the deterministic engine (a
// nondeterministic scene fails immediately), then the normalized trace
// is compared byte-for-byte against the checked-in golden file.
// Running the test with -update rewrites the fixture:
//
//	go test ./examples/quickstart -run TestGolden -update
//
// The flag lives here — not in package replay — so it is only
// registered in test binaries that opt into golden testing.
package replaytest

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/digi"
	"repro/internal/replay"
)

var update = flag.Bool("update", false, "rewrite golden trace fixtures")

// Golden records the scenario, checks determinism across two runs,
// and compares the normalized trace against the golden fixture at
// path (JSONL, one record per line). With -update the fixture is
// rewritten instead. It returns the run result for extra assertions.
func Golden(t *testing.T, registry *digi.Registry, sc *replay.Scenario, path string) *replay.Result {
	t.Helper()
	a, err := replay.Record(registry, sc)
	if err != nil {
		t.Fatalf("replaytest: record %s: %v", sc.Name, err)
	}
	b, err := replay.Record(registry, sc)
	if err != nil {
		t.Fatalf("replaytest: re-record %s: %v", sc.Name, err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("replaytest: scenario %s is nondeterministic:\n  run 1 %s\n  run 2 %s",
			sc.Name, a.Digest, b.Digest)
	}

	// Speed invariance: the same scenario paced against the wall
	// clock must produce the same digest as the unpaced run above, so
	// one canonical fixture covers every execution mode (-update
	// regenerates exactly that one file). Paced speeds that would
	// take unreasonable wall time for this scenario are skipped —
	// long-horizon scenes prove equivalence at high finite factors.
	for _, speed := range []float64{100, 1} {
		if wallCost := time.Duration(float64(sc.Duration) / speed); wallCost > 5*time.Second {
			t.Logf("replaytest: %s: skipping speed %s (%v of wall time)",
				sc.Name, clock.FormatSpeed(speed), wallCost)
			continue
		}
		p, err := replay.RecordExec(registry, sc, replay.ExecOptions{Speed: speed})
		if err != nil {
			t.Fatalf("replaytest: record %s at speed %s: %v", sc.Name, clock.FormatSpeed(speed), err)
		}
		if p.Digest != a.Digest {
			t.Fatalf("replaytest: scenario %s digest is speed-dependent:\n  speed max %s\n  speed %-3s %s",
				sc.Name, a.Digest, clock.FormatSpeed(speed), p.Digest)
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range a.Records {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("replaytest: encode: %v", err)
		}
	}
	got := buf.Bytes()

	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("replaytest: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("replaytest: %v", err)
		}
		t.Logf("replaytest: wrote %s (%d records, %s)", path, len(a.Records), a.Digest)
		return a
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("replaytest: %v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(got, want) {
		line, gotLine, wantLine := firstDiff(got, want)
		t.Fatalf("replaytest: %s diverged from golden %s at record %d:\n  got  %s\n  want %s\n(run with -update to accept the new trace)",
			sc.Name, path, line, gotLine, wantLine)
	}
	return a
}

// GoldenFile is Golden for a scenario stored on disk (the
// scenario.yaml an example ships next to its setup).
func GoldenFile(t *testing.T, registry *digi.Registry, scenarioPath, fixturePath string) *replay.Result {
	t.Helper()
	data, err := os.ReadFile(scenarioPath)
	if err != nil {
		t.Fatalf("replaytest: %v", err)
	}
	sc, err := replay.ParseScenario(data)
	if err != nil {
		t.Fatalf("replaytest: %v", err)
	}
	return Golden(t, registry, sc, fixturePath)
}

// firstDiff locates the first differing line of two JSONL buffers.
func firstDiff(got, want []byte) (line int, g, w string) {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return i + 1, clip(gl[i]), clip(wl[i])
		}
	}
	if len(gl) > len(wl) {
		return len(wl) + 1, clip(gl[len(wl)]), "<end of golden>"
	}
	return len(gl) + 1, "<end of run>", clip(wl[len(gl)])
}

func clip(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
