package replay

import (
	"archive/zip"
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/trace"
)

// Replay archive layout: a shareable zip holding the scenario (so the
// recipient can re-execute the run), the canonical normalized trace,
// and the chained digest (the conformance contract "dbox replay
// -verify" checks).
const (
	archiveScenarioFile = "scenario.yaml"
	archiveTraceFile    = "trace.jsonl"
	archiveDigestFile   = "digest.txt"
)

// WriteArchive packages a run result as a replay archive.
func WriteArchive(w io.Writer, res *Result) error {
	zw := zip.NewWriter(w)
	sf, err := zw.Create(archiveScenarioFile)
	if err != nil {
		return err
	}
	data, err := res.Scenario.Marshal()
	if err != nil {
		return err
	}
	if _, err := sf.Write(data); err != nil {
		return err
	}
	tf, err := zw.Create(archiveTraceFile)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tf)
	if err := writeJSONL(bw, res.Records); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	df, err := zw.Create(archiveDigestFile)
	if err != nil {
		return err
	}
	fmt.Fprintf(df, "digibox-replay v1\nscenario: %s\nrecords: %d\ndigest: %s\n",
		res.Scenario.Name, len(res.Records), res.Digest)
	return zw.Close()
}

func writeJSONL(w io.Writer, recs []trace.Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// SaveArchive writes the archive to a file path.
func SaveArchive(path string, res *Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteArchive(f, res); err != nil {
		return err
	}
	return f.Sync()
}

// ArchiveBytes returns the archive as a byte slice (control API).
func ArchiveBytes(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteArchive(&buf, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Archive is a parsed replay archive.
type Archive struct {
	Scenario *Scenario
	Records  []trace.Record
	Digest   string
}

// ReadArchive parses a replay archive stream.
func ReadArchive(r io.ReaderAt, size int64) (*Archive, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("replay: not a replay archive: %w", err)
	}
	ar := &Archive{}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		switch f.Name {
		case archiveScenarioFile:
			sc, err := ParseScenario(data)
			if err != nil {
				return nil, err
			}
			ar.Scenario = sc
		case archiveTraceFile:
			recs, err := trace.ReadJSONL(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			ar.Records = recs
		case archiveDigestFile:
			for _, line := range strings.Split(string(data), "\n") {
				if v, ok := strings.CutPrefix(line, "digest: "); ok {
					ar.Digest = strings.TrimSpace(v)
				}
			}
		}
	}
	if ar.Scenario == nil {
		return nil, fmt.Errorf("replay: archive has no %s", archiveScenarioFile)
	}
	if ar.Digest == "" {
		return nil, fmt.Errorf("replay: archive has no digest")
	}
	return ar, nil
}

// LoadArchive reads a replay archive from a file path.
func LoadArchive(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return ReadArchive(f, st.Size())
}

// ParseArchiveBytes parses a replay archive held in memory.
func ParseArchiveBytes(data []byte) (*Archive, error) {
	return ReadArchive(bytes.NewReader(data), int64(len(data)))
}
