package replay

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/device"
	"repro/internal/digi"
	"repro/internal/scene"
)

func exampleRegistry(t *testing.T) *digi.Registry {
	t.Helper()
	reg := digi.NewRegistry()
	if err := device.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	if err := scene.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

func loadExampleScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", name, "scenario.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestCrossSpeedDigestEquivalence is the acceptance table: every
// example scenario recorded at speed 1, speed 100, and speed max
// yields byte-identical digests. This is the contract that lets a
// paced live run be verified against an unpaced CI fixture.
func TestCrossSpeedDigestEquivalence(t *testing.T) {
	reg := exampleRegistry(t)
	for _, name := range []string{"quickstart", "smartbuilding", "chaosdrill"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc := loadExampleScenario(t, name)
			ref, err := Record(reg, sc)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Speed != clock.SpeedMax {
				t.Fatalf("Record speed = %v, want SpeedMax", ref.Speed)
			}
			for _, speed := range []float64{100, 1} {
				res, err := RecordExec(reg, sc, ExecOptions{Speed: speed})
				if err != nil {
					t.Fatalf("speed %v: %v", speed, err)
				}
				if res.Digest != ref.Digest {
					t.Errorf("digest at speed %v diverged:\n  max: %s\n  %3v: %s",
						speed, ref.Digest, speed, res.Digest)
				}
				if len(res.Records) != len(ref.Records) {
					t.Errorf("record count at speed %v = %d, want %d",
						speed, len(res.Records), len(ref.Records))
				}
				if res.Speed != speed {
					t.Errorf("Result.Speed = %v, want %v", res.Speed, speed)
				}
				// Speed 1 must actually pace: the run covers
				// sc.Duration of scenario time, so wall time is at
				// least half of it (generous slack — pacing, not
				// precision, is the claim).
				if speed == 1 && res.Wall < sc.Duration/2 {
					t.Errorf("speed-1 run finished in %v wall for %v of scenario; pacing is not happening",
						res.Wall, sc.Duration)
				}
			}
		})
	}
}

// TestMidRunSpeedChangeKeepsDigest: pausing, retuning, and resuming
// the pacer mid-run must not affect the digest — only wall time.
func TestMidRunSpeedChangeKeepsDigest(t *testing.T) {
	reg := exampleRegistry(t)
	sc := loadExampleScenario(t, "quickstart")
	ref, err := Record(reg, sc)
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEngineExec(reg, sc, ExecOptions{Speed: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Toggle the pacer from another goroutine while the run is in
	// flight: pause at ~20% of scenario time, then resume unpaced.
	pause := make(chan struct{})
	done := make(chan struct{})
	e.Pacer().AfterFunc(sc.Duration/5, func() {
		e.Pacer().Pause()
		close(pause)
	})
	go func() {
		defer close(done)
		<-pause
		e.Pacer().SetFactor(clock.SpeedMax)
		e.Pacer().Resume()
	}()
	res, err := e.Run()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != ref.Digest {
		t.Fatalf("mid-run speed change altered the digest:\n  ref %s\n  got %s", ref.Digest, res.Digest)
	}
}

// TestEngineCancelAborts: a cross-goroutine Cancel ends a paced run
// promptly with the cancellation error.
func TestEngineCancelAborts(t *testing.T) {
	reg := exampleRegistry(t)
	sc := loadExampleScenario(t, "quickstart")
	// Speed 0.001 would take ~500000s to finish; Cancel must end it
	// within the test timeout instead.
	e, err := NewEngineExec(reg, sc, ExecOptions{Speed: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := e.Run()
		errc <- err
	}()
	// Cancel is sticky, so it aborts the run no matter how far it has
	// gotten — including before the first pacing wait.
	e.Cancel(nil)
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled run returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}
