package replay

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/trace"
)

// Normalize canonicalizes a trace for conformance comparison: span
// records (observational wall-clock latency evidence) and runtime gap
// markers (whose causes and timing depend on goroutine scheduling) are
// dropped, and sequence numbers are renumbered from 1. Timestamps are
// kept — under the virtual clock they are deterministic and part of
// the conformance contract.
func Normalize(recs []trace.Record) []trace.Record {
	out := make([]trace.Record, 0, len(recs))
	var seq uint64
	for _, r := range recs {
		if r.Kind == trace.KindSpan {
			continue
		}
		if r.Kind == trace.KindFault && r.Name == "runtime" {
			continue
		}
		seq++
		r.Seq = seq
		out = append(out, r)
	}
	return out
}

// Digest computes the chained SHA-256 digest of a normalized trace:
// h_0 = 0, h_i = SHA256(h_{i-1} || canonicalJSON(rec_i)). The chain
// makes the digest order-sensitive — any inserted, dropped, reordered,
// or altered record changes every subsequent link. Canonical bytes
// come from encoding/json, which marshals map keys in sorted order.
func Digest(recs []trace.Record) (string, error) {
	cur := make([]byte, sha256.Size)
	for i, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			return "", fmt.Errorf("replay: digest record %d: %w", i, err)
		}
		h := sha256.New()
		h.Write(cur)
		h.Write(data)
		cur = h.Sum(nil)
	}
	return "sha256:" + hex.EncodeToString(cur), nil
}
