package trace

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/clock"
)

// Archive file layout inside the shared zip (§3.5: "traces are shared
// as a zip file which the recipient Digibox can parse and replay").
const (
	archiveTraceFile = "trace.jsonl"
	archiveMetaFile  = "meta.txt"
)

// WriteArchive packages the log as a shareable zip stream. meta.txt
// makes the archive self-describing: total record count (kept first
// for compatibility), wall-clock start/end, and per-kind counts.
func (l *Log) WriteArchive(w io.Writer) error {
	zw := zip.NewWriter(w)
	meta, err := zw.Create(archiveMetaFile)
	if err != nil {
		return err
	}
	start, end, kinds := l.Bounds()
	fmt.Fprintf(meta, "digibox-trace v1\nrecords: %d\n", l.Len())
	fmt.Fprintf(meta, "start: %s\nend: %s\n",
		start.UTC().Format(time.RFC3339Nano), end.UTC().Format(time.RFC3339Nano))
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, string(k))
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(meta, "kind %s: %d\n", k, kinds[Kind(k)])
	}
	tf, err := zw.Create(archiveTraceFile)
	if err != nil {
		return err
	}
	if err := l.WriteJSONL(tf); err != nil {
		return err
	}
	return zw.Close()
}

// SaveArchive writes the zip to a file path.
func (l *Log) SaveArchive(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.WriteArchive(f); err != nil {
		return err
	}
	return f.Sync()
}

// ReadArchive extracts the records from a trace zip stream.
func ReadArchive(r io.ReaderAt, size int64) ([]Record, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("trace: not a trace archive: %w", err)
	}
	for _, f := range zr.File {
		if f.Name != archiveTraceFile {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		return ReadJSONL(rc)
	}
	return nil, fmt.Errorf("trace: archive has no %s", archiveTraceFile)
}

// LoadArchive reads a trace zip from a file path.
func LoadArchive(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return ReadArchive(f, st.Size())
}

// ArchiveBytes is a convenience returning the zip as a byte slice
// (used by dboxd's trace download endpoint).
func (l *Log) ArchiveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseArchiveBytes parses a zip held in memory.
func ParseArchiveBytes(data []byte) ([]Record, error) {
	return ReadArchive(bytes.NewReader(data), int64(len(data)))
}

// Replayer replays a recorded trace's action records against a sink
// (the live testbed) preserving relative timing, optionally
// accelerated.
type Replayer struct {
	// Apply receives each action record in order. It should apply the
	// record's Sets/Deletes to the named model.
	Apply func(Record) error
	// Speed scales time: 2.0 replays twice as fast. <= 0 means "as
	// fast as possible".
	Speed float64
	// Sleep is injectable for tests; defaults to the system clock's
	// sleep.
	Sleep func(time.Duration)
}

// Run replays the records, honouring inter-record gaps. Only
// KindEvent and KindAction records drive the testbed; messages and
// violations are observational.
func (rp *Replayer) Run(recs []Record) error {
	if rp.Apply == nil {
		return fmt.Errorf("trace: replayer needs an Apply func")
	}
	sleep := rp.Sleep
	if sleep == nil {
		sleep = clock.System.Sleep
	}
	var prev time.Duration
	first := true
	for _, r := range recs {
		if r.Kind != KindAction && r.Kind != KindEvent {
			continue
		}
		if !first && rp.Speed > 0 {
			gap := r.TS - prev
			if gap > 0 {
				sleep(time.Duration(float64(gap) / rp.Speed))
			}
		}
		prev = r.TS
		first = false
		if r.Kind == KindAction {
			if err := rp.Apply(r); err != nil {
				return fmt.Errorf("trace: replay record %d: %w", r.Seq, err)
			}
		}
	}
	return nil
}
