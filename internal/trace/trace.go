// Package trace implements Digibox's logging and replay subsystem
// (§3.5 of the paper).
//
// Every mock and scene logs three record kinds: events (event-generator
// firings like "motion detected"), actions (model changes, as leaf-path
// diffs), and messages (MQTT/REST traffic). Records are appended to an
// in-memory log and can be persisted as a JSONL trace file, packaged as
// a zip for sharing, and replayed against a live testbed so that the
// mocks and scenes reproduce the recorded behaviour with the original
// relative timing (or faster).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Kind classifies a trace record.
type Kind string

const (
	// KindEvent is an event-generator firing (e.g. human presence
	// decided by a building scene).
	KindEvent Kind = "event"
	// KindAction is a committed model change, carried as leaf diffs.
	KindAction Kind = "action"
	// KindMessage is a protocol message sent or received (MQTT/REST).
	KindMessage Kind = "message"
	// KindViolation is a scene-property violation report.
	KindViolation Kind = "violation"
	// KindFault is an injected fault or a recovery from one (chaos
	// engine, runtime gap/recover markers).
	KindFault Kind = "fault"
	// KindSpan is a completed publish→deliver span: the measured
	// end-to-end latency of one MQTT delivery leg, correlated from the
	// obs tracer so replayed traces carry timing evidence. Spans are
	// observational — the replayer skips them.
	KindSpan Kind = "span"
	// KindMark is a harness marker written by the record/replay engine:
	// run boundaries, scripted scenario edits, deterministic pod
	// lifecycle. Marks carry no scene semantics but are part of the
	// canonical replay log, so the conformance digest covers them.
	KindMark Kind = "mark"
)

// Record is one log entry. The wire form is a single JSON object per
// line; the sample trace in the paper's §3.5 corresponds to Fields
// {"triggered": true} etc. with TS relative to trace start.
type Record struct {
	Seq    uint64         `json:"seq"`
	TS     time.Duration  `json:"ts"` // offset from trace start (nanoseconds in JSON)
	Kind   Kind           `json:"kind"`
	Name   string         `json:"name"`           // mock/scene instance
	Type   string         `json:"type,omitempty"` // mock/scene kind
	Fields map[string]any `json:"fields,omitempty"`
	// For KindAction: dotted path -> new value ("" op means set).
	Sets    map[string]any `json:"sets,omitempty"`
	Deletes []string       `json:"deletes,omitempty"`
	// For KindMessage.
	Topic     string `json:"topic,omitempty"`
	Payload   string `json:"payload,omitempty"`
	Direction string `json:"dir,omitempty"` // "send" or "recv"
	// For KindViolation.
	Property string `json:"property,omitempty"`
	Detail   string `json:"detail,omitempty"`
	// For KindFault: the fault kind ("disconnect", "node-down", ...)
	// or a recovery marker ("revert", "broker-gap", "broker-recover").
	Fault string `json:"fault,omitempty"`
}

// Log is an append-only, concurrency-safe trace log for one testbed
// run.
type Log struct {
	mu    sync.Mutex
	start time.Time
	seq   uint64
	recs  []Record
	subs  []func(Record)
	// now is injectable for deterministic tests.
	now func() time.Time
}

// NewLog starts an empty log whose timestamps are relative to now.
func NewLog() *Log {
	l := &Log{now: clock.System.Now}
	l.start = l.now()
	return l
}

// NewLogAt starts a log with an injected clock (tests, replay).
func NewLogAt(now func() time.Time) *Log {
	l := &Log{now: now}
	l.start = l.now()
	return l
}

// Append adds a record, stamping sequence and timestamp.
func (l *Log) Append(r Record) Record {
	l.mu.Lock()
	l.seq++
	r.Seq = l.seq
	r.TS = l.now().Sub(l.start)
	l.recs = append(l.recs, r)
	subs := l.subs
	l.mu.Unlock()
	for _, fn := range subs {
		fn(r)
	}
	return r
}

// Event logs an event-generator firing.
func (l *Log) Event(name, typ string, fields map[string]any) {
	l.Append(Record{Kind: KindEvent, Name: name, Type: typ, Fields: fields})
}

// Action logs a committed model change.
func (l *Log) Action(name, typ string, sets map[string]any, deletes []string) {
	l.Append(Record{Kind: KindAction, Name: name, Type: typ, Sets: sets, Deletes: deletes})
}

// Message logs a protocol message.
func (l *Log) Message(name, topic, payload, direction string) {
	l.Append(Record{Kind: KindMessage, Name: name, Topic: topic, Payload: payload, Direction: direction})
}

// Violation logs a scene-property violation.
func (l *Log) Violation(name, property, detail string) {
	l.Append(Record{Kind: KindViolation, Name: name, Property: property, Detail: detail})
}

// Fault logs an injected fault or a recovery. Fields carry the
// scheduled parameters (scoped target, rates, offsets) so a run's
// fault sequence can be compared across runs and replayed.
func (l *Log) Fault(name, fault, detail string, fields map[string]any) {
	l.Append(Record{Kind: KindFault, Name: name, Fault: fault, Detail: detail, Fields: fields})
}

// Mark logs a harness marker (record/replay engine boundaries).
func (l *Log) Mark(name, detail string, fields map[string]any) {
	l.Append(Record{Kind: KindMark, Name: name, Detail: detail, Fields: fields})
}

// Span logs a completed publish→deliver span. name is the publishing
// digi (or client id), topic the delivered topic, elapsed the
// end-to-end latency.
func (l *Log) Span(name, topic string, elapsed time.Duration) {
	l.Append(Record{Kind: KindSpan, Name: name, Topic: topic,
		Fields: map[string]any{"elapsed_ns": int64(elapsed)}})
}

// Faults returns all fault/recovery records.
func (l *Log) Faults() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.recs {
		if r.Kind == KindFault {
			out = append(out, r)
		}
	}
	return out
}

// Subscribe registers fn to receive every subsequently appended
// record. Used by "dbox watch".
func (l *Log) Subscribe(fn func(Record)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Copy-on-write so Append can iterate without holding the lock.
	subs := make([]func(Record), len(l.subs), len(l.subs)+1)
	copy(subs, l.subs)
	l.subs = append(subs, fn)
}

// Records returns a copy of all records in sequence order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Bounds returns the wall-clock start of the log and the timestamp of
// the last record (equal to start when the log is empty), plus the
// per-kind record counts — the self-describing header data for
// shared archives.
func (l *Log) Bounds() (start, end time.Time, kinds map[Kind]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start, end = l.start, l.start
	if n := len(l.recs); n > 0 {
		end = l.start.Add(l.recs[n-1].TS)
	}
	kinds = map[Kind]int{}
	for _, r := range l.recs {
		kinds[r.Kind]++
	}
	return start, end, kinds
}

// RecordsFor returns records for one mock/scene name.
func (l *Log) RecordsFor(name string) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Violations returns all property-violation records.
func (l *Log) Violations() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.recs {
		if r.Kind == KindViolation {
			out = append(out, r)
		}
	}
	return out
}

// WriteJSONL streams the log as one JSON object per line.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range l.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace stream into records, validating
// sequence monotonicity.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	line := 0
	var lastSeq uint64
	for sc.Scan() {
		line++
		data := sc.Bytes()
		if len(data) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Seq <= lastSeq {
			return nil, fmt.Errorf("trace: line %d: sequence %d not increasing", line, rec.Seq)
		}
		lastSeq = rec.Seq
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary aggregates per-name record counts, useful for "dbox check"
// over a trace.
func Summary(recs []Record) map[string]map[Kind]int {
	out := map[string]map[Kind]int{}
	for _, r := range recs {
		m, ok := out[r.Name]
		if !ok {
			m = map[Kind]int{}
			out[r.Name] = m
		}
		m[r.Kind]++
	}
	return out
}

// Names returns the distinct mock/scene names in a trace, sorted.
func Names(recs []Record) []string {
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
