package trace

import (
	"archive/zip"
	"bytes"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock yields deterministic, strictly increasing timestamps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

// sampleLog builds the §3.5 sample trace from the paper:
//
//	{name:confcenter,num_human:1,ts:00:01}
//	{name:meetingroom,human_presence:false,ts:00:03}
//	{name:kitchen,human_presence:true,ts:00:03}
//	{name:o1,triggered:true,ts:00:04}
//	{name:l1,triggered:true,ts:00:05}
func sampleLog() *Log {
	l := NewLogAt(newFakeClock().now)
	l.Action("confcenter", "Building", map[string]any{"num_human": 1}, nil)
	l.Action("meetingroom", "Room", map[string]any{"human_presence": false}, nil)
	l.Action("kitchen", "Room", map[string]any{"human_presence": true}, nil)
	l.Action("o1", "Occupancy", map[string]any{"triggered": true}, nil)
	l.Action("l1", "Lamp", map[string]any{"triggered": true}, nil)
	return l
}

func TestAppendStampsSeqAndTS(t *testing.T) {
	l := sampleLog()
	recs := l.Records()
	if len(recs) != 5 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("rec %d seq = %d", i, r.Seq)
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TS <= recs[i-1].TS {
			t.Errorf("timestamps not increasing: %v then %v", recs[i-1].TS, recs[i].TS)
		}
	}
}

func TestRecordKindsAndAccessors(t *testing.T) {
	l := NewLog()
	l.Event("o1", "Occupancy", map[string]any{"motion": true})
	l.Message("l1", "digibox/l1/status", `{"power":"on"}`, "send")
	l.Violation("room", "lamp-off-when-empty", "lamp on while unoccupied")
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if got := l.RecordsFor("o1"); len(got) != 1 || got[0].Kind != KindEvent {
		t.Errorf("RecordsFor(o1) = %v", got)
	}
	if v := l.Violations(); len(v) != 1 || v[0].Property != "lamp-off-when-empty" {
		t.Errorf("Violations = %v", v)
	}
}

func TestSubscribeReceivesAppends(t *testing.T) {
	l := NewLog()
	var mu sync.Mutex
	var got []Record
	l.Subscribe(func(r Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	l.Event("x", "T", nil)
	l.Event("y", "T", nil)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Name != "x" || got[1].Name != "y" {
		t.Errorf("subscriber got %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Errorf("lines = %d", n)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := l.Records()
	if len(recs) != len(orig) {
		t.Fatalf("got %d records", len(recs))
	}
	for i := range recs {
		// JSON round-trips numbers as float64; compare shape fields.
		if recs[i].Seq != orig[i].Seq || recs[i].Name != orig[i].Name ||
			recs[i].TS != orig[i].TS || recs[i].Kind != orig[i].Kind {
			t.Errorf("record %d: %+v vs %+v", i, recs[i], orig[i])
		}
	}
}

func TestReadJSONLRejectsBadSeq(t *testing.T) {
	in := `{"seq":1,"ts":0,"kind":"event","name":"a"}
{"seq":1,"ts":0,"kind":"event","name":"b"}`
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Error("non-increasing seq accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := "{\"seq\":1,\"ts\":0,\"kind\":\"event\",\"name\":\"a\"}\n\n{\"seq\":2,\"ts\":0,\"kind\":\"event\",\"name\":\"b\"}\n"
	recs, err := ReadJSONL(strings.NewReader(in))
	if err != nil || len(recs) != 2 {
		t.Errorf("recs=%v err=%v", recs, err)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	l := sampleLog()
	data, err := l.ArchiveBytes()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ParseArchiveBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Name != "confcenter" {
		t.Errorf("recs = %v", recs)
	}
	if _, err := ParseArchiveBytes([]byte("not a zip")); err == nil {
		t.Error("garbage archive accepted")
	}
}

// TestArchiveRoundTripAllKinds exercises every record kind through the
// zip archive, including the replay-engine kinds (fault, span, mark)
// added for record/replay — their kind-specific fields must survive
// packaging verbatim, since the conformance digest covers them.
func TestArchiveRoundTripAllKinds(t *testing.T) {
	l := NewLogAt(newFakeClock().now)
	l.Event("o1", "Occupancy", map[string]any{"triggered": true})
	l.Action("l1", "Lamp", map[string]any{"power.status": "on"}, []string{"note"})
	l.Message("l1", "digibox/l1/status", `{"power":"on"}`, "send")
	l.Violation("room", "lamp-off-when-empty", "lamp on while unoccupied")
	l.Fault("chaos", "drop", "digibox/# at 0.5", map[string]any{"rate": 0.5})
	l.Span("o1", "digibox/o1/status", 3*time.Millisecond)
	l.Mark("replay", "scripted edit", map[string]any{"at_ms": int64(200)})

	data, err := l.ArchiveBytes()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ParseArchiveBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	orig := l.Records()
	if len(recs) != len(orig) {
		t.Fatalf("got %d records, want %d", len(recs), len(orig))
	}
	for i := range recs {
		r, o := recs[i], orig[i]
		if r.Seq != o.Seq || r.TS != o.TS || r.Kind != o.Kind || r.Name != o.Name {
			t.Errorf("record %d shape: %+v vs %+v", i, r, o)
		}
	}
	if f := recs[4]; f.Fault != "drop" || f.Detail != "digibox/# at 0.5" ||
		f.Fields["rate"] != 0.5 {
		t.Errorf("fault record lost fields: %+v", f)
	}
	if s := recs[5]; s.Topic != "digibox/o1/status" ||
		s.Fields["elapsed_ns"] != float64(3*time.Millisecond) {
		t.Errorf("span record lost fields: %+v", s)
	}
	if m := recs[6]; m.Detail != "scripted edit" || m.Fields["at_ms"] != float64(200) {
		t.Errorf("mark record lost fields: %+v", m)
	}
	if d := recs[1]; d.Sets["power.status"] != "on" ||
		len(d.Deletes) != 1 || d.Deletes[0] != "note" {
		t.Errorf("action record lost diffs: %+v", d)
	}
	// The archive is byte-stable for a fixed log: packaging the same
	// records twice yields identical trace.jsonl content.
	recs2, err := ParseArchiveBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, recs2) {
		t.Error("re-parsing the same archive produced different records")
	}
	// And the meta counts see the new kinds.
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range zr.File {
		if f.Name != "meta.txt" {
			continue
		}
		rc, _ := f.Open()
		meta, _ := io.ReadAll(rc)
		rc.Close()
		for _, want := range []string{"kind fault: 1", "kind span: 1", "kind mark: 1"} {
			if !strings.Contains(string(meta), want) {
				t.Errorf("meta.txt missing %q:\n%s", want, meta)
			}
		}
	}
}

func TestArchiveFileRoundTrip(t *testing.T) {
	l := sampleLog()
	path := filepath.Join(t.TempDir(), "trace.zip")
	if err := l.SaveArchive(path); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("len = %d", len(recs))
	}
	if _, err := LoadArchive(filepath.Join(t.TempDir(), "missing.zip")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReplayerAppliesActionsInOrder(t *testing.T) {
	l := sampleLog()
	l.Event("noise", "X", nil) // events are skipped by Apply
	var applied []string
	var slept []time.Duration
	rp := &Replayer{
		Apply: func(r Record) error {
			applied = append(applied, r.Name)
			return nil
		},
		Speed: 1,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	if err := rp.Run(l.Records()); err != nil {
		t.Fatal(err)
	}
	want := []string{"confcenter", "meetingroom", "kitchen", "o1", "l1"}
	if !reflect.DeepEqual(applied, want) {
		t.Errorf("applied = %v", applied)
	}
	// 5 actions + 1 event = 6 drive records -> 5 gaps.
	if len(slept) != 5 {
		t.Errorf("sleeps = %v", slept)
	}
	for _, d := range slept {
		if d != time.Second {
			t.Errorf("gap = %v, want 1s (fake clock ticks 1s per record)", d)
		}
	}
}

func TestReplayerSpeedScaling(t *testing.T) {
	l := sampleLog()
	var slept []time.Duration
	rp := &Replayer{
		Apply: func(Record) error { return nil },
		Speed: 4,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	if err := rp.Run(l.Records()); err != nil {
		t.Fatal(err)
	}
	for _, d := range slept {
		if d != 250*time.Millisecond {
			t.Errorf("gap = %v, want 250ms at 4x", d)
		}
	}
}

func TestReplayerFastPathNoSleep(t *testing.T) {
	l := sampleLog()
	var slept int
	rp := &Replayer{
		Apply: func(Record) error { return nil },
		Speed: 0, // as fast as possible
		Sleep: func(time.Duration) { slept++ },
	}
	if err := rp.Run(l.Records()); err != nil {
		t.Fatal(err)
	}
	if slept != 0 {
		t.Errorf("slept %d times", slept)
	}
}

func TestReplayerErrors(t *testing.T) {
	rp := &Replayer{}
	if err := rp.Run(nil); err == nil {
		t.Error("missing Apply accepted")
	}
	l := sampleLog()
	rp = &Replayer{
		Apply: func(r Record) error {
			if r.Name == "o1" {
				return errTest
			}
			return nil
		},
	}
	err := rp.Run(l.Records())
	if err == nil || !strings.Contains(err.Error(), "test error") {
		t.Errorf("apply error not propagated: %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestSummaryAndNames(t *testing.T) {
	l := sampleLog()
	l.Event("o1", "Occupancy", nil)
	sum := Summary(l.Records())
	if sum["o1"][KindAction] != 1 || sum["o1"][KindEvent] != 1 {
		t.Errorf("summary = %v", sum)
	}
	names := Names(l.Records())
	want := []string{"confcenter", "kitchen", "l1", "meetingroom", "o1"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("names = %v", names)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Event("x", "T", nil)
			}
		}()
	}
	wg.Wait()
	recs := l.Records()
	if len(recs) != 800 {
		t.Fatalf("len = %d", len(recs))
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestSpanRecords(t *testing.T) {
	l := NewLogAt(newFakeClock().now)
	l.Span("L1", "digibox/L1/status", 1500*time.Microsecond)
	recs := l.Records()
	if len(recs) != 1 || recs[0].Kind != KindSpan {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Name != "L1" || recs[0].Topic != "digibox/L1/status" {
		t.Fatalf("span fields: %+v", recs[0])
	}
	if ns, ok := recs[0].Fields["elapsed_ns"].(int64); !ok || ns != int64(1500*time.Microsecond) {
		t.Fatalf("elapsed_ns = %v", recs[0].Fields["elapsed_ns"])
	}
	// Spans must not drive replay.
	rp := &Replayer{Apply: func(Record) error {
		t.Fatal("span record reached Apply")
		return nil
	}}
	if err := rp.Run(recs); err != nil {
		t.Fatal(err)
	}
}

func TestBounds(t *testing.T) {
	l := NewLogAt(newFakeClock().now)
	start, end, kinds := l.Bounds()
	if !start.Equal(end) || len(kinds) != 0 {
		t.Fatalf("empty log bounds: %v %v %v", start, end, kinds)
	}
	l.Event("o1", "Occupancy", nil)
	l.Event("o1", "Occupancy", nil)
	l.Span("o1", "t/x/s", time.Millisecond)
	start, end, kinds = l.Bounds()
	if !end.After(start) {
		t.Fatalf("end %v not after start %v", end, start)
	}
	if kinds[KindEvent] != 2 || kinds[KindSpan] != 1 {
		t.Fatalf("kind counts: %v", kinds)
	}
}

// TestArchiveMeta pins the self-describing meta.txt layout: total
// records (first, for compatibility), start/end timestamps, and
// per-kind counts.
func TestArchiveMeta(t *testing.T) {
	l := sampleLog()
	l.Event("o1", "Occupancy", map[string]any{"triggered": true})
	var buf bytes.Buffer
	if err := l.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	var meta string
	for _, f := range zr.File {
		if f.Name == "meta.txt" {
			rc, err := f.Open()
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				t.Fatal(err)
			}
			meta = string(data)
		}
	}
	if meta == "" {
		t.Fatal("archive has no meta.txt")
	}
	lines := strings.Split(strings.TrimSpace(meta), "\n")
	if lines[0] != "digibox-trace v1" || lines[1] != "records: 6" {
		t.Fatalf("meta header: %q", lines[:2])
	}
	var hasStart, hasEnd bool
	counts := map[string]string{}
	for _, ln := range lines[2:] {
		switch {
		case strings.HasPrefix(ln, "start: "):
			hasStart = true
			if _, err := time.Parse(time.RFC3339Nano, strings.TrimPrefix(ln, "start: ")); err != nil {
				t.Fatalf("start timestamp: %v", err)
			}
		case strings.HasPrefix(ln, "end: "):
			hasEnd = true
		case strings.HasPrefix(ln, "kind "):
			kv := strings.SplitN(strings.TrimPrefix(ln, "kind "), ": ", 2)
			counts[kv[0]] = kv[1]
		}
	}
	if !hasStart || !hasEnd {
		t.Fatalf("meta missing start/end:\n%s", meta)
	}
	if counts["action"] != "5" || counts["event"] != "1" {
		t.Fatalf("kind counts: %v\n%s", counts, meta)
	}
}
