package device

import (
	"repro/internal/digi"
	"repro/internal/model"
)

// NewOccupancy builds the room-level mock occupancy sensor of Fig. 4:
// the event generator flips "triggered" at random; the simulation
// handler publishes the status. Config: trigger_prob (default 0.5).
func NewOccupancy() *digi.Kind {
	return occupancyLike("Occupancy", "Room-level occupancy (motion) sensor.")
}

// NewUnderdesk builds the desk-level occupancy sensor type that the
// Fig. 5 room scene coordinates against the ceiling sensor.
func NewUnderdesk() *digi.Kind {
	return occupancyLike("Underdesk", "Desk-level occupancy sensor.")
}

func occupancyLike(typ, doc string) *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: typ, Version: "v1", Doc: doc,
			Fields: map[string]model.FieldSpec{
				"triggered": {Kind: model.KindBool, Default: false,
					Doc: "whether motion is currently detected"},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			prob := c.ConfigFloat("trigger_prob", 0.5)
			work.Set("triggered", rare(c, prob))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "triggered")
		},
	}
}

// NewTemperatureSensor builds an ambient temperature sensor whose
// reading random-walks inside a configurable band. Config: temp_min
// (default 18), temp_max (default 26), temp_step (default 0.3).
func NewTemperatureSensor() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "TemperatureSensor", Version: "v1",
			Doc: "Ambient temperature sensor (degrees Celsius).",
			Fields: map[string]model.FieldSpec{
				"temperature": {Kind: model.KindFloat, Default: 21.0,
					Doc: "current reading in Celsius"},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			cur, _ := work.GetFloat("temperature")
			work.Set("temperature", walk(c, cur,
				c.ConfigFloat("temp_min", 18),
				c.ConfigFloat("temp_max", 26),
				c.ConfigFloat("temp_step", 0.3)))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "temperature")
		},
	}
}

// NewHumiditySensor builds a relative-humidity sensor (percent).
// Config: hum_min (30), hum_max (70), hum_step (1).
func NewHumiditySensor() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "HumiditySensor", Version: "v1",
			Doc: "Relative humidity sensor (percent).",
			Fields: map[string]model.FieldSpec{
				"humidity": {Kind: model.KindFloat, Default: 45.0,
					Min: model.Bound(0), Max: model.Bound(100)},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			cur, _ := work.GetFloat("humidity")
			work.Set("humidity", walk(c, cur,
				c.ConfigFloat("hum_min", 30),
				c.ConfigFloat("hum_max", 70),
				c.ConfigFloat("hum_step", 1)))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "humidity")
		},
	}
}

// NewCO2Sensor builds a CO2 concentration sensor (ppm). The derived
// "high" flag trips above co2_alert (default 1000 ppm).
func NewCO2Sensor() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "CO2Sensor", Version: "v1",
			Doc: "CO2 concentration sensor (ppm) with a high-level alert flag.",
			Fields: map[string]model.FieldSpec{
				"ppm":  {Kind: model.KindFloat, Default: 420.0, Min: model.Bound(0)},
				"high": {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			cur, _ := work.GetFloat("ppm")
			work.Set("ppm", walk(c, cur,
				c.ConfigFloat("co2_min", 380),
				c.ConfigFloat("co2_max", 1600),
				c.ConfigFloat("co2_step", 40)))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			ppm, _ := work.GetFloat("ppm")
			work.Set("high", ppm >= c.ConfigFloat("co2_alert", 1000))
			return publishFields(c, work, "ppm", "high")
		},
	}
}

// NewSmokeDetector builds a smoke detector: smoke appears rarely
// (smoke_prob, default 0.01 per tick) and clears itself; the alarm
// status follows smoke in simulation.
func NewSmokeDetector() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "SmokeDetector", Version: "v1",
			Doc: "Smoke detector with derived alarm.",
			Fields: map[string]model.FieldSpec{
				"smoke": {Kind: model.KindBool, Default: false},
				"alarm": {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			if work.GetBool("smoke") {
				// Smoke clears with probability 0.5 per tick.
				if rare(c, 0.5) {
					work.Set("smoke", false)
				}
			} else {
				work.Set("smoke", rare(c, c.ConfigFloat("smoke_prob", 0.01)))
			}
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			work.Set("alarm", work.GetBool("smoke"))
			return publishFields(c, work, "smoke", "alarm")
		},
	}
}

// NewWindowSensor builds an open/closed contact sensor. Config:
// toggle_prob (default 0.05 per tick).
func NewWindowSensor() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "WindowSensor", Version: "v1",
			Doc: "Window open/closed contact sensor.",
			Fields: map[string]model.FieldSpec{
				"open": {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			if rare(c, c.ConfigFloat("toggle_prob", 0.05)) {
				work.Set("open", !work.GetBool("open"))
			}
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "open")
		},
	}
}

// NewAirQuality builds a PM2.5 air-quality sensor with a derived AQI
// category ("good", "moderate", "unhealthy").
func NewAirQuality() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "AirQuality", Version: "v1",
			Doc: "PM2.5 air-quality sensor with derived AQI category.",
			Fields: map[string]model.FieldSpec{
				"pm25": {Kind: model.KindFloat, Default: 8.0, Min: model.Bound(0)},
				"aqi": {Kind: model.KindString, Default: "good",
					Enum: []string{"good", "moderate", "unhealthy"}},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			cur, _ := work.GetFloat("pm25")
			work.Set("pm25", walk(c, cur,
				c.ConfigFloat("pm25_min", 2),
				c.ConfigFloat("pm25_max", 120),
				c.ConfigFloat("pm25_step", 4)))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			pm, _ := work.GetFloat("pm25")
			switch {
			case pm <= 12:
				work.Set("aqi", "good")
			case pm <= 35:
				work.Set("aqi", "moderate")
			default:
				work.Set("aqi", "unhealthy")
			}
			return publishFields(c, work, "pm25", "aqi")
		},
	}
}

// NewNoiseSensor builds a sound-level sensor (dB) with a derived
// "loud" flag above noise_alert (default 75 dB).
func NewNoiseSensor() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "NoiseSensor", Version: "v1",
			Doc: "Sound level sensor (dB) with loudness flag.",
			Fields: map[string]model.FieldSpec{
				"db":   {Kind: model.KindFloat, Default: 40.0, Min: model.Bound(0)},
				"loud": {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			cur, _ := work.GetFloat("db")
			work.Set("db", walk(c, cur,
				c.ConfigFloat("db_min", 30),
				c.ConfigFloat("db_max", 95),
				c.ConfigFloat("db_step", 3)))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			db, _ := work.GetFloat("db")
			work.Set("loud", db >= c.ConfigFloat("noise_alert", 75))
			return publishFields(c, work, "db", "loud")
		},
	}
}

// NewLeakSensor builds a water-leak sensor; leaks appear with
// leak_prob (default 0.005 per tick) and persist until an explicit
// reset (setting "leak" back to false, e.g. via dbox edit).
func NewLeakSensor() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "LeakSensor", Version: "v1",
			Doc: "Water leak sensor; latches until reset.",
			Fields: map[string]model.FieldSpec{
				"leak": {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			if !work.GetBool("leak") && rare(c, c.ConfigFloat("leak_prob", 0.005)) {
				work.Set("leak", true)
			}
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "leak")
		},
	}
}
