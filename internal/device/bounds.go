package device

import "repro/internal/vet"

// Declared config bounds for the kind library's device-specific meta
// keys, feeding the vet config-bounds analyzer (rule V011). Generic
// keys (interval_ms, actuation_delay_ms, *_prob, X_min<=X_max pairs)
// are checked by the rule itself; the declarations below capture the
// physically meaningful ranges a mock should stay inside.
func init() {
	// Environmental sensors: plausible physical envelopes.
	vet.DeclareConfigBounds("TemperatureSensor", "temp_min", -50, 100)
	vet.DeclareConfigBounds("TemperatureSensor", "temp_max", -50, 100)
	vet.DeclareConfigBounds("HumiditySensor", "hum_min", 0, 100)
	vet.DeclareConfigBounds("HumiditySensor", "hum_max", 0, 100)
	vet.DeclareConfigBounds("CO2Sensor", "co2_min", 0, 50000)
	vet.DeclareConfigBounds("CO2Sensor", "co2_max", 0, 50000)
	vet.DeclareConfigBounds("CO2Sensor", "co2_alert", 0, 50000)
	vet.DeclareConfigBounds("AirQuality", "pm25_min", 0, 1000)
	vet.DeclareConfigBounds("AirQuality", "pm25_max", 0, 1000)
	vet.DeclareConfigBounds("NoiseSensor", "db_min", 0, 194)
	vet.DeclareConfigBounds("NoiseSensor", "db_max", 0, 194)
	vet.DeclareConfigBounds("NoiseSensor", "noise_alert", 0, 194)

	// Trackers.
	vet.DeclareConfigBounds("EnergyMeter", "watts_min", 0, 1e6)
	vet.DeclareConfigBounds("EnergyMeter", "watts_max", 0, 1e6)
	vet.DeclareConfigBounds("GPSTracker", "cruise_kmh", 0, 400)
	vet.DeclareConfigBounds("GPSTracker", "max_kmh", 0, 400)
	vet.DeclareConfigBounds("CargoSensor", "temp_min", -50, 100)
	vet.DeclareConfigBounds("CargoSensor", "temp_max", -50, 100)

	// Actuators.
	vet.DeclareConfigBounds("HVAC", "thermal_rate", 0, 10)
	vet.DeclareConfigBounds("HVAC", "ambient_temp", -50, 60)
	vet.DeclareConfigBounds("Thermostat", "temp_min", -50, 100)
	vet.DeclareConfigBounds("Thermostat", "temp_max", -50, 100)
	vet.DeclareConfigBounds("Camera", "fps_per_tick", 0, 100000)
	vet.DeclareConfigBounds("SmartPlug", "load_watts", 0, 1e6)
}
