// Package device provides Digibox's library of 20 mock devices —
// sensors, actuators, and trackers spanning the paper's application
// domains (smart spaces, supply-chain logistics, urban sensing).
//
// Each device is a digi.Kind: a model schema (Fig. 3), an optional
// event-generator Loop (Fig. 4 top), and a simulation handler Sim
// (Fig. 4 bottom) that derives status from intent — honouring the
// simulated actuation delay of §6 — and publishes the device's status
// message. Event generation is configurable per instance through meta
// config keys (interval_ms, seed, plus device-specific ranges), so a
// scene can also run every sensor unmanaged and drive it entirely from
// scene logic.
package device

import (
	"time"

	"repro/internal/digi"
	"repro/internal/model"
)

// All returns every device kind in the library.
func All() []*digi.Kind {
	return []*digi.Kind{
		NewOccupancy(),
		NewUnderdesk(),
		NewLamp(),
		NewFan(),
		NewHVAC(),
		NewThermostat(),
		NewTemperatureSensor(),
		NewHumiditySensor(),
		NewCO2Sensor(),
		NewSmokeDetector(),
		NewDoorLock(),
		NewWindowSensor(),
		NewCamera(),
		NewSmartPlug(),
		NewEnergyMeter(),
		NewAirQuality(),
		NewNoiseSensor(),
		NewGPSTracker(),
		NewCargoSensor(),
		NewLeakSensor(),
	}
}

// RegisterAll installs the whole library into a registry.
func RegisterAll(reg *digi.Registry) error {
	for _, k := range All() {
		if err := reg.Register(k); err != nil {
			return err
		}
	}
	return nil
}

// walk advances a value by a bounded random step, clamped to
// [min, max] — the canonical sensor-reading generator. Under an
// injected "outlier" fault mode (chaos engine) the reading
// occasionally spikes out of the configured range: to the meta config
// fault_value if set, else one full range above max.
func walk(c *digi.Ctx, cur, min, max, step float64) float64 {
	if c.FaultMode() == "outlier" && rare(c, c.ConfigFloat("fault_prob", 0.5)) {
		spike := max + (max - min)
		if v := c.ConfigFloat("fault_value", 0); v != 0 {
			spike = v
		}
		return float64(int(spike*100)) / 100
	}
	next := cur + (c.Rand.Float64()*2-1)*step
	if next < min {
		next = min
	}
	if next > max {
		next = max
	}
	// Round to 2 decimals so models stay readable and diffs small.
	return float64(int(next*100)) / 100
}

// rare returns true with the given probability per tick.
func rare(c *digi.Ctx, prob float64) bool {
	return c.Rand.Float64() < prob
}

// actuate applies the configured actuation delay before a status
// change takes effect, modelling real device latency (§6). It returns
// false if the digi stopped while waiting.
func actuate(c *digi.Ctx) bool {
	return c.Sleep(c.ActuationDelay())
}

// publishFields collects the named top-level fields of a model into a
// status message payload.
func publishFields(c *digi.Ctx, work model.Doc, fields ...string) error {
	out := map[string]any{}
	for _, f := range fields {
		if v, ok := work.Get(f); ok {
			out[f] = v
		}
	}
	return c.Publish(out)
}

// defaultTick is the library-wide default loop interval; instances
// override with meta interval_ms.
const defaultTick = 500 * time.Millisecond
