package device

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/digi"
	"repro/internal/model"
	"repro/internal/trace"
)

func TestLibraryHas20DistinctKinds(t *testing.T) {
	kinds := All()
	if len(kinds) != 20 {
		t.Fatalf("library has %d kinds, want 20 (paper: 'currently contains 20 device mocks')", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		typ := k.Type()
		if typ == "" {
			t.Errorf("kind with empty type")
		}
		if seen[typ] {
			t.Errorf("duplicate kind %q", typ)
		}
		seen[typ] = true
		if k.Schema.Doc == "" {
			t.Errorf("%s: schema missing doc string", typ)
		}
		if k.Sim == nil {
			t.Errorf("%s: no simulation handler", typ)
		}
	}
}

func TestRegisterAll(t *testing.T) {
	reg := digi.NewRegistry()
	if err := RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	if got := len(reg.Types()); got != 20 {
		t.Errorf("registered %d types", got)
	}
}

func TestEveryKindSelfValidates(t *testing.T) {
	for _, k := range All() {
		d := k.Schema.New("inst")
		if err := k.Schema.Validate(d); err != nil {
			t.Errorf("%s: fresh instance invalid: %v", k.Type(), err)
		}
	}
}

// simHarness runs a kind's handlers directly with a deterministic Ctx,
// without the full runtime — unit-level behaviour checks.
type simHarness struct {
	rt  *digi.Runtime
	ctx *digi.Ctx
}

func newSimHarness(t *testing.T, k *digi.Kind, name string) (*simHarness, model.Doc) {
	t.Helper()
	reg := digi.NewRegistry()
	if err := reg.Register(k); err != nil {
		t.Fatal(err)
	}
	rt := &digi.Runtime{Store: model.NewStore(), Log: trace.NewLog(), Registry: reg}
	doc := k.Schema.New(name)
	if err := rt.Store.Create(doc); err != nil {
		t.Fatal(err)
	}
	ctx := digi.NewTestCtx(name, k.Type(), rt, rand.New(rand.NewSource(1)), context.Background())
	return &simHarness{rt: rt, ctx: ctx}, doc
}

func TestLampSimFollowsIntent(t *testing.T) {
	k := NewLamp()
	h, doc := newSimHarness(t, k, "L1")
	work := doc.DeepCopy()
	work.SetIntent("power", "on")
	work.SetIntent("intensity", 0.6)
	if err := k.Sim(h.ctx, work, nil); err != nil {
		t.Fatal(err)
	}
	if work.GetString("power.status") != "on" {
		t.Error("power.status did not follow intent")
	}
	if v, _ := work.GetFloat("intensity.status"); v != 0.6 {
		t.Errorf("intensity.status = %v", v)
	}
	work.SetIntent("power", "off")
	if err := k.Sim(h.ctx, work, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := work.GetFloat("intensity.status"); v != 0 {
		t.Errorf("intensity.status after off = %v (Fig. 4: off forces 0)", v)
	}
	// Publish must be logged as a message on the digi's topic.
	msgs := 0
	for _, r := range h.rt.Log.Records() {
		if r.Kind == trace.KindMessage && r.Topic == "digibox/L1/status" {
			msgs++
		}
	}
	if msgs != 2 {
		t.Errorf("logged %d messages, want 2", msgs)
	}
}

func TestFanSpeedZeroWhenOff(t *testing.T) {
	k := NewFan()
	h, doc := newSimHarness(t, k, "F1")
	work := doc.DeepCopy()
	work.SetIntent("power", "on")
	work.SetIntent("speed", int64(3))
	k.Sim(h.ctx, work, nil)
	if v, _ := work.GetInt("speed.status"); v != 3 {
		t.Errorf("speed.status = %d", v)
	}
	work.SetIntent("power", "off")
	k.Sim(h.ctx, work, nil)
	if v, _ := work.GetInt("speed.status"); v != 0 {
		t.Errorf("speed.status when off = %d", v)
	}
}

func TestHVACThermalDrift(t *testing.T) {
	k := NewHVAC()
	h, doc := newSimHarness(t, k, "H1")
	work := doc.DeepCopy()
	work.SetIntent("mode", "heat")
	work.SetIntent("target_temp", 25.0)
	k.Sim(h.ctx, work, nil) // commit intent to status
	start, _ := work.GetFloat("current_temp")
	for i := 0; i < 10; i++ {
		if err := k.Loop(h.ctx, work); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := work.GetFloat("current_temp")
	if after <= start {
		t.Errorf("heating did not raise temperature: %v -> %v", start, after)
	}
	// Cooling drives it back down.
	work.SetIntent("mode", "cool")
	work.SetIntent("target_temp", 16.0)
	k.Sim(h.ctx, work, nil)
	for i := 0; i < 10; i++ {
		k.Loop(h.ctx, work)
	}
	cooled, _ := work.GetFloat("current_temp")
	if cooled >= after {
		t.Errorf("cooling did not lower temperature: %v -> %v", after, cooled)
	}
}

func TestThermostatCalling(t *testing.T) {
	k := NewThermostat()
	h, doc := newSimHarness(t, k, "T1")
	work := doc.DeepCopy()
	work.Set("temperature", 15.0)
	work.SetIntent("setpoint", 21.0)
	k.Sim(h.ctx, work, nil)
	if !work.GetBool("calling") {
		t.Error("cold room should call for heat")
	}
	work.Set("temperature", 23.0)
	k.Sim(h.ctx, work, nil)
	if work.GetBool("calling") {
		t.Error("warm room should not call for heat")
	}
}

func TestDoorLockActuationDelay(t *testing.T) {
	k := NewDoorLock()
	reg := digi.NewRegistry()
	reg.Register(k)
	rt := &digi.Runtime{Store: model.NewStore(), Log: trace.NewLog(), Registry: reg}
	doc := k.Schema.New("D1")
	doc.Set("meta.actuation_delay_ms", 50)
	rt.Store.Create(doc)
	ctx := digi.NewTestCtx("D1", "DoorLock", rt, rand.New(rand.NewSource(1)), context.Background())

	work := doc.DeepCopy()
	work.SetIntent("locked", false)
	start := time.Now()
	if err := k.Sim(ctx, work, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Errorf("actuation took %v, want >= 50ms (simulated device latency, §6)", elapsed)
	}
	if v, _ := work.Status("locked"); v != false {
		t.Errorf("locked.status = %v", v)
	}
}

func TestCameraFramesOnlyWhenOn(t *testing.T) {
	k := NewCamera()
	h, doc := newSimHarness(t, k, "C1")
	work := doc.DeepCopy()
	// Default power is on; frames accumulate.
	k.Sim(h.ctx, work, nil)
	k.Loop(h.ctx, work)
	n1, _ := work.GetInt("frames")
	if n1 <= 0 {
		t.Fatalf("frames = %d", n1)
	}
	work.SetIntent("power", "off")
	k.Sim(h.ctx, work, nil)
	if work.GetBool("motion") {
		t.Error("motion must clear when camera off")
	}
	k.Loop(h.ctx, work)
	n2, _ := work.GetInt("frames")
	if n2 != n1 {
		t.Errorf("frames advanced while off: %d -> %d", n1, n2)
	}
}

func TestSmartPlugWatts(t *testing.T) {
	k := NewSmartPlug()
	h, doc := newSimHarness(t, k, "P1")
	work := doc.DeepCopy()
	work.SetIntent("power", "on")
	k.Sim(h.ctx, work, nil)
	if w, _ := work.GetFloat("watts"); w != 60 {
		t.Errorf("watts = %v, want default load 60", w)
	}
	work.SetIntent("power", "off")
	k.Sim(h.ctx, work, nil)
	if w, _ := work.GetFloat("watts"); w != 0 {
		t.Errorf("watts when off = %v", w)
	}
}

func TestSensorLoopsStayInBounds(t *testing.T) {
	cases := []struct {
		kind     *digi.Kind
		path     string
		min, max float64
	}{
		{NewTemperatureSensor(), "temperature", 18, 26},
		{NewHumiditySensor(), "humidity", 30, 70},
		{NewCO2Sensor(), "ppm", 380, 1600},
		{NewAirQuality(), "pm25", 2, 120},
		{NewNoiseSensor(), "db", 30, 95},
	}
	for _, c := range cases {
		h, doc := newSimHarness(t, c.kind, "S1")
		work := doc.DeepCopy()
		for i := 0; i < 200; i++ {
			if err := c.kind.Loop(h.ctx, work); err != nil {
				t.Fatalf("%s: %v", c.kind.Type(), err)
			}
			v, ok := work.GetFloat(c.path)
			if !ok || v < c.min || v > c.max {
				t.Fatalf("%s: %s = %v out of [%v, %v]", c.kind.Type(), c.path, v, c.min, c.max)
			}
		}
	}
}

func TestCO2DerivedHighFlag(t *testing.T) {
	k := NewCO2Sensor()
	h, doc := newSimHarness(t, k, "S1")
	work := doc.DeepCopy()
	work.Set("ppm", 1500.0)
	k.Sim(h.ctx, work, nil)
	if !work.GetBool("high") {
		t.Error("high flag not set at 1500ppm")
	}
	work.Set("ppm", 500.0)
	k.Sim(h.ctx, work, nil)
	if work.GetBool("high") {
		t.Error("high flag stuck at 500ppm")
	}
}

func TestAirQualityCategories(t *testing.T) {
	k := NewAirQuality()
	h, doc := newSimHarness(t, k, "A1")
	work := doc.DeepCopy()
	for _, c := range []struct {
		pm   float64
		want string
	}{{5, "good"}, {20, "moderate"}, {80, "unhealthy"}} {
		work.Set("pm25", c.pm)
		k.Sim(h.ctx, work, nil)
		if got := work.GetString("aqi"); got != c.want {
			t.Errorf("pm25=%v: aqi=%q, want %q", c.pm, got, c.want)
		}
	}
}

func TestSmokeDetectorAlarmFollowsSmoke(t *testing.T) {
	k := NewSmokeDetector()
	h, doc := newSimHarness(t, k, "S1")
	work := doc.DeepCopy()
	work.Set("smoke", true)
	k.Sim(h.ctx, work, nil)
	if !work.GetBool("alarm") {
		t.Error("alarm must follow smoke")
	}
	work.Set("smoke", false)
	k.Sim(h.ctx, work, nil)
	if work.GetBool("alarm") {
		t.Error("alarm must clear with smoke")
	}
}

func TestLeakSensorLatches(t *testing.T) {
	k := NewLeakSensor()
	reg := digi.NewRegistry()
	reg.Register(k)
	rt := &digi.Runtime{Store: model.NewStore(), Log: trace.NewLog(), Registry: reg}
	doc := k.Schema.New("W1")
	doc.Set("meta.leak_prob", 1.0) // force a leak on the first tick
	rt.Store.Create(doc)
	ctx := digi.NewTestCtx("W1", "LeakSensor", rt, rand.New(rand.NewSource(1)), context.Background())
	work := doc.DeepCopy()
	k.Loop(ctx, work)
	if !work.GetBool("leak") {
		t.Fatal("leak not generated at prob 1")
	}
	// Latched: further loops never clear it.
	for i := 0; i < 50; i++ {
		k.Loop(ctx, work)
	}
	if !work.GetBool("leak") {
		t.Error("leak unlatched by loop")
	}
}

func TestGPSTrackerMovesOnlyWhenMoving(t *testing.T) {
	k := NewGPSTracker()
	h, doc := newSimHarness(t, k, "G1")
	work := doc.DeepCopy()
	lat0, _ := work.GetFloat("lat")
	lon0, _ := work.GetFloat("lon")
	for i := 0; i < 10; i++ {
		k.Loop(h.ctx, work)
	}
	lat1, _ := work.GetFloat("lat")
	lon1, _ := work.GetFloat("lon")
	if lat1 != lat0 || lon1 != lon0 {
		t.Error("stationary tracker moved")
	}
	work.Set("moving", true)
	for i := 0; i < 10; i++ {
		k.Loop(h.ctx, work)
	}
	lat2, _ := work.GetFloat("lat")
	lon2, _ := work.GetFloat("lon")
	if lat2 == lat0 && lon2 == lon0 {
		t.Error("moving tracker did not move")
	}
	if v, _ := work.GetFloat("speed_kmh"); v <= 0 {
		t.Errorf("speed = %v while moving", v)
	}
}

func TestEnergyMeterAccumulates(t *testing.T) {
	k := NewEnergyMeter()
	h, doc := newSimHarness(t, k, "E1")
	work := doc.DeepCopy()
	for i := 0; i < 20; i++ {
		k.Loop(h.ctx, work)
	}
	kwh, _ := work.GetFloat("kwh")
	if kwh <= 0 {
		t.Errorf("kwh = %v after 20 ticks", kwh)
	}
}

func TestCargoSensorShockLatches(t *testing.T) {
	k := NewCargoSensor()
	reg := digi.NewRegistry()
	reg.Register(k)
	rt := &digi.Runtime{Store: model.NewStore(), Log: trace.NewLog(), Registry: reg}
	doc := k.Schema.New("C1")
	doc.Set("meta.shock_prob", 1.0)
	rt.Store.Create(doc)
	ctx := digi.NewTestCtx("C1", "CargoSensor", rt, rand.New(rand.NewSource(1)), context.Background())
	work := doc.DeepCopy()
	k.Loop(ctx, work)
	if !work.GetBool("shock") {
		t.Fatal("shock not generated")
	}
	for i := 0; i < 20; i++ {
		k.Loop(ctx, work)
	}
	if !work.GetBool("shock") {
		t.Error("shock unlatched")
	}
}

func TestOccupancyConfigurableProbability(t *testing.T) {
	k := NewOccupancy()
	reg := digi.NewRegistry()
	reg.Register(k)
	rt := &digi.Runtime{Store: model.NewStore(), Log: trace.NewLog(), Registry: reg}
	doc := k.Schema.New("O1")
	doc.Set("meta.trigger_prob", 0.0)
	rt.Store.Create(doc)
	ctx := digi.NewTestCtx("O1", "Occupancy", rt, rand.New(rand.NewSource(1)), context.Background())
	work := doc.DeepCopy()
	for i := 0; i < 50; i++ {
		k.Loop(ctx, work)
		if work.GetBool("triggered") {
			t.Fatal("triggered at probability 0")
		}
	}
}
