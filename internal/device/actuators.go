package device

import (
	"repro/internal/digi"
	"repro/internal/model"
)

// NewLamp builds the mock lamp of Fig. 4: power and intensity are
// intent/status pairs; the simulation handler sets intensity.status to
// the intent while powered, and to 0 when off, then publishes both.
func NewLamp() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "Lamp", Version: "v1",
			Doc: "Dimmable smart lamp.",
			Fields: map[string]model.FieldSpec{
				"power": {Kind: model.KindIntent, ElemKind: model.KindString,
					Enum: []string{"on", "off"}, Default: "off"},
				"intensity": {Kind: model.KindIntent, ElemKind: model.KindFloat,
					Min: model.Bound(0), Max: model.Bound(1), Default: 0.0},
			},
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			if work.GetString("power.status") != work.GetString("power.intent") {
				if !actuate(c) {
					return nil
				}
			}
			power := work.GetString("power.intent")
			work.SetStatus("power", power)
			if power == "off" {
				work.SetStatus("intensity", 0.0)
			} else {
				v, _ := work.GetFloat("intensity.intent")
				work.SetStatus("intensity", v)
			}
			return publishFields(c, work, "power", "intensity")
		},
	}
}

// NewFan builds a multi-speed fan: power on/off plus a speed level
// 0-3, both intent/status pairs.
func NewFan() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "Fan", Version: "v1",
			Doc: "Multi-speed fan (speed 0-3).",
			Fields: map[string]model.FieldSpec{
				"power": {Kind: model.KindIntent, ElemKind: model.KindString,
					Enum: []string{"on", "off"}, Default: "off"},
				"speed": {Kind: model.KindIntent, ElemKind: model.KindInt,
					Min: model.Bound(0), Max: model.Bound(3), Default: int64(0)},
			},
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			if work.GetString("power.status") != work.GetString("power.intent") {
				if !actuate(c) {
					return nil
				}
			}
			power := work.GetString("power.intent")
			work.SetStatus("power", power)
			if power == "off" {
				work.SetStatus("speed", int64(0))
			} else {
				v, _ := work.GetInt("speed.intent")
				work.SetStatus("speed", v)
			}
			return publishFields(c, work, "power", "speed")
		},
	}
}

// NewHVAC builds an HVAC unit: mode (off/heat/cool) and target
// temperature are intents; the event generator drifts the measured
// current_temp toward the target while running, modelling the room's
// thermal response.
func NewHVAC() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "HVAC", Version: "v1",
			Doc: "HVAC unit with thermal drift toward the target temperature.",
			Fields: map[string]model.FieldSpec{
				"mode": {Kind: model.KindIntent, ElemKind: model.KindString,
					Enum: []string{"off", "heat", "cool"}, Default: "off"},
				"target_temp": {Kind: model.KindIntent, ElemKind: model.KindFloat,
					Min: model.Bound(10), Max: model.Bound(35), Default: 22.0},
				"current_temp": {Kind: model.KindFloat, Default: 21.0},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			cur, _ := work.GetFloat("current_temp")
			mode := work.GetString("mode.status")
			target, _ := work.GetFloat("target_temp.status")
			rate := c.ConfigFloat("thermal_rate", 0.2)
			switch {
			case mode == "heat" && cur < target:
				cur += rate
			case mode == "cool" && cur > target:
				cur -= rate
			default:
				// Ambient drift toward the configured outside temp.
				outside := c.ConfigFloat("ambient_temp", 18)
				if cur > outside {
					cur -= rate / 4
				} else {
					cur += rate / 4
				}
			}
			work.Set("current_temp", float64(int(cur*100))/100)
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			if work.GetString("mode.status") != work.GetString("mode.intent") {
				if !actuate(c) {
					return nil
				}
			}
			work.SetStatus("mode", work.GetString("mode.intent"))
			t, _ := work.GetFloat("target_temp.intent")
			work.SetStatus("target_temp", t)
			return publishFields(c, work, "mode", "target_temp", "current_temp")
		},
	}
}

// NewThermostat builds a thermostat: a setpoint intent and a measured
// temperature that random-walks; "calling" reports whether the
// thermostat is demanding heat.
func NewThermostat() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "Thermostat", Version: "v1",
			Doc: "Thermostat with heat-call output.",
			Fields: map[string]model.FieldSpec{
				"setpoint": {Kind: model.KindIntent, ElemKind: model.KindFloat,
					Min: model.Bound(5), Max: model.Bound(35), Default: 20.0},
				"temperature": {Kind: model.KindFloat, Default: 20.0},
				"calling":     {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			cur, _ := work.GetFloat("temperature")
			work.Set("temperature", walk(c, cur,
				c.ConfigFloat("temp_min", 15),
				c.ConfigFloat("temp_max", 27),
				c.ConfigFloat("temp_step", 0.4)))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			sp, _ := work.GetFloat("setpoint.intent")
			work.SetStatus("setpoint", sp)
			cur, _ := work.GetFloat("temperature")
			work.Set("calling", cur < sp-0.5)
			return publishFields(c, work, "setpoint", "temperature", "calling")
		},
	}
}

// NewDoorLock builds a smart lock: locked is an intent/status pair
// with actuation delay; forced reports a forced-open event.
func NewDoorLock() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "DoorLock", Version: "v1",
			Doc: "Smart door lock with forced-entry detection.",
			Fields: map[string]model.FieldSpec{
				"locked": {Kind: model.KindIntent, ElemKind: model.KindBool, Default: true},
				"forced": {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			// Forced entry is a rare adversarial event.
			if !work.GetBool("forced") && rare(c, c.ConfigFloat("forced_prob", 0.002)) {
				work.Set("forced", true)
			}
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			li, _ := work.Intent("locked")
			ls, _ := work.Status("locked")
			if li != ls {
				if !actuate(c) {
					return nil
				}
				work.SetStatus("locked", li)
			}
			return publishFields(c, work, "locked", "forced")
		},
	}
}

// NewCamera builds a security camera: power intent/status, motion
// detection events while powered, and a frame counter.
func NewCamera() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "Camera", Version: "v1",
			Doc: "Security camera with motion events and frame counter.",
			Fields: map[string]model.FieldSpec{
				"power": {Kind: model.KindIntent, ElemKind: model.KindString,
					Enum: []string{"on", "off"}, Default: "on"},
				"motion": {Kind: model.KindBool, Default: false},
				"frames": {Kind: model.KindInt, Default: int64(0), Min: model.Bound(0)},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			if work.GetString("power.status") != "on" {
				return nil
			}
			n, _ := work.GetInt("frames")
			work.Set("frames", n+c.ConfigInt("fps_per_tick", 15))
			work.Set("motion", rare(c, c.ConfigFloat("motion_prob", 0.2)))
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			if work.GetString("power.status") != work.GetString("power.intent") {
				if !actuate(c) {
					return nil
				}
			}
			work.SetStatus("power", work.GetString("power.intent"))
			if work.GetString("power.status") == "off" {
				work.Set("motion", false)
			}
			return publishFields(c, work, "power", "motion", "frames")
		},
	}
}

// NewSmartPlug builds a metering smart plug: power intent/status and a
// wattage reading equal to the configured load while on.
func NewSmartPlug() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "SmartPlug", Version: "v1",
			Doc: "Metering smart plug.",
			Fields: map[string]model.FieldSpec{
				"power": {Kind: model.KindIntent, ElemKind: model.KindString,
					Enum: []string{"on", "off"}, Default: "off"},
				"watts": {Kind: model.KindFloat, Default: 0.0, Min: model.Bound(0)},
			},
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			if work.GetString("power.status") != work.GetString("power.intent") {
				if !actuate(c) {
					return nil
				}
			}
			power := work.GetString("power.intent")
			work.SetStatus("power", power)
			if power == "on" {
				work.Set("watts", c.ConfigFloat("load_watts", 60))
			} else {
				work.Set("watts", 0.0)
			}
			return publishFields(c, work, "power", "watts")
		},
	}
}
