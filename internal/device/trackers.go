package device

import (
	"repro/internal/digi"
	"repro/internal/model"
)

// NewEnergyMeter builds a cumulative energy meter: instantaneous draw
// random-walks and kWh accumulates per tick (tick assumed to cover
// interval_ms of wall time).
func NewEnergyMeter() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "EnergyMeter", Version: "v1",
			Doc: "Cumulative energy meter (kWh) with instantaneous draw (W).",
			Fields: map[string]model.FieldSpec{
				"watts": {Kind: model.KindFloat, Default: 200.0, Min: model.Bound(0)},
				"kwh":   {Kind: model.KindFloat, Default: 0.0, Min: model.Bound(0)},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			w, _ := work.GetFloat("watts")
			w = walk(c, w,
				c.ConfigFloat("watts_min", 50),
				c.ConfigFloat("watts_max", 2000),
				c.ConfigFloat("watts_step", 80))
			work.Set("watts", w)
			// Integrate: one tick of draw. The simulated hour scale is
			// configurable so benchmarks accumulate visibly.
			hours := c.ConfigFloat("hours_per_tick", 0.001)
			kwh, _ := work.GetFloat("kwh")
			work.Set("kwh", float64(int((kwh+w*hours/1000)*1e6))/1e6)
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "watts", "kwh")
		},
	}
}

// NewGPSTracker builds a mobile GPS tracker: while "moving", position
// advances along a heading with speed_kmh; urban-sensing scenes
// re-attach trackers between street scenes as they move (§5).
func NewGPSTracker() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "GPSTracker", Version: "v1",
			Doc: "Mobile GPS tracker (lat/lon in degrees, speed in km/h).",
			Fields: map[string]model.FieldSpec{
				"lat":       {Kind: model.KindFloat, Default: 37.8715}, // Berkeley
				"lon":       {Kind: model.KindFloat, Default: -122.273},
				"speed_kmh": {Kind: model.KindFloat, Default: 0.0, Min: model.Bound(0)},
				"moving":    {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			if !work.GetBool("moving") {
				work.Set("speed_kmh", 0.0)
				return nil
			}
			speed := walk(c, c.ConfigFloat("cruise_kmh", 30), 5,
				c.ConfigFloat("max_kmh", 60), 5)
			work.Set("speed_kmh", speed)
			// Degrees per tick at this speed; 1 deg latitude ~111 km.
			tickH := c.ConfigFloat("hours_per_tick", 0.01)
			delta := speed * tickH / 111.0
			lat, _ := work.GetFloat("lat")
			lon, _ := work.GetFloat("lon")
			// Heading jitters around the configured bearing.
			if c.Rand.Intn(2) == 0 {
				lat += delta
			} else {
				lon += delta
			}
			work.Set("lat", float64(int(lat*100000))/100000)
			work.Set("lon", float64(int(lon*100000))/100000)
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "lat", "lon", "speed_kmh", "moving")
		},
	}
}

// NewCargoSensor builds a supply-chain cargo condition sensor:
// temperature and humidity of the cargo hold plus a latched shock
// flag, the signals a logistics application audits (§1, §5).
func NewCargoSensor() *digi.Kind {
	return &digi.Kind{
		Schema: &model.Schema{
			Type: "CargoSensor", Version: "v1",
			Doc: "Cargo condition sensor: temperature, humidity, shock.",
			Fields: map[string]model.FieldSpec{
				"temperature": {Kind: model.KindFloat, Default: 4.0},
				"humidity":    {Kind: model.KindFloat, Default: 60.0, Min: model.Bound(0), Max: model.Bound(100)},
				"shock":       {Kind: model.KindBool, Default: false},
			},
		},
		DefaultInterval: defaultTick,
		Loop: func(c *digi.Ctx, work model.Doc) error {
			t, _ := work.GetFloat("temperature")
			work.Set("temperature", walk(c, t,
				c.ConfigFloat("temp_min", 2),
				c.ConfigFloat("temp_max", 8),
				c.ConfigFloat("temp_step", 0.3)))
			h, _ := work.GetFloat("humidity")
			work.Set("humidity", walk(c, h, 40, 80, 2))
			if !work.GetBool("shock") && rare(c, c.ConfigFloat("shock_prob", 0.01)) {
				work.Set("shock", true)
			}
			return nil
		},
		Sim: func(c *digi.Ctx, work model.Doc, _ digi.Atts) error {
			return publishFields(c, work, "temperature", "humidity", "shock")
		},
	}
}
