// Package chaos implements Digibox's scene-driven fault-injection
// engine: deterministic, seeded plans of timed fault events applied to
// the broker, cluster, and device layers of a running testbed.
//
// A Plan is a list of Events, each scheduled at an offset from plan
// start and scoped by digi name, broker client, topic filter, or node.
// The engine resolves all randomness (jitter) up front from the plan
// seed, so a compiled schedule — and therefore the sequence of fault
// records it writes into the trace log — is a pure function of
// (plan, seed) and replays identically across runs.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/yamlite"
)

// Fault enumerates the injectable fault kinds.
type Fault string

const (
	// Broker layer.
	FaultDisconnect Fault = "disconnect" // force-close a client connection
	FaultDrop       Fault = "drop"       // drop matching messages at delivery
	FaultDelay      Fault = "delay"      // delay matching messages at delivery
	FaultDuplicate  Fault = "duplicate"  // duplicate matching messages
	FaultPartition  Fault = "partition"  // split clients into isolated groups
	FaultHeal       Fault = "heal"       // clear a partition
	// Kube layer.
	FaultNodeDown Fault = "node-down" // mark a node NotReady; evict its pods
	FaultNodeUp   Fault = "node-up"   // bring a node back
	FaultPodCrash Fault = "pod-crash" // crash a digi's pod once
	// Device layer.
	FaultStuck   Fault = "stuck"   // sensor reading frozen at current value
	FaultDropout Fault = "dropout" // sensor silent (no events, no publishes)
	FaultOutlier Fault = "outlier" // sensor occasionally spikes out of range
	FaultClear   Fault = "clear"   // clear an injected device fault
	// Swarm layer.
	FaultShardKill      Fault = "shard-kill"      // crash a broker shard; failover takes over
	FaultShardPartition Fault = "shard-partition" // sever a shard's bridge links both ways
	FaultShardRevive    Fault = "shard-revive"    // bring a killed shard back
)

// faultKinds is the closed set of valid Fault values.
var faultKinds = map[Fault]bool{
	FaultDisconnect: true, FaultDrop: true, FaultDelay: true,
	FaultDuplicate: true, FaultPartition: true, FaultHeal: true,
	FaultNodeDown: true, FaultNodeUp: true, FaultPodCrash: true,
	FaultStuck: true, FaultDropout: true, FaultOutlier: true,
	FaultClear: true, FaultShardKill: true, FaultShardPartition: true,
	FaultShardRevive: true,
}

// shardFault reports whether f targets a swarm broker shard.
func shardFault(f Fault) bool {
	return f == FaultShardKill || f == FaultShardPartition || f == FaultShardRevive
}

// Event is one scheduled fault. Which scope and parameter fields are
// meaningful depends on the fault kind; Validate enforces the pairing.
type Event struct {
	// At is the offset from plan start at which the fault fires.
	At time.Duration
	// Fault is the fault kind.
	Fault Fault
	// Digi scopes device faults and pod-crash to a digi by name.
	Digi string
	// Node scopes node-down/node-up to a cluster node.
	Node string
	// Client scopes broker faults to a client ID (receiver side for
	// message faults, the victim for disconnect). Empty = any client.
	Client string
	// From scopes message faults to a publisher identity.
	From string
	// Topic scopes message faults to an MQTT topic filter.
	Topic string
	// Groups lists the partition groups (client/digi identities);
	// clients not listed are unaffected.
	Groups [][]string
	// Rate is the drop/duplicate probability in [0,1].
	Rate float64
	// Delay is the added delivery latency for FaultDelay.
	Delay time.Duration
	// For bounds the fault: the engine schedules the matching revert
	// (remove rule, heal, node-up, clear) at At+For. Zero = until a
	// later event reverts it explicitly.
	For time.Duration
	// Value parameterizes device faults (stuck-at value, outlier
	// magnitude). Zero means "use the sensor's current/default".
	Value float64
	// Jitter widens At by a seeded random offset in [0, Jitter),
	// resolved at compile time so schedules stay deterministic.
	Jitter time.Duration
	// Shard scopes swarm faults (shard-kill, shard-partition,
	// shard-revive) to a broker shard index. -1 when the event does
	// not carry one; 0 is a valid shard.
	Shard int
}

// Plan is a named, seeded fault schedule.
type Plan struct {
	Name   string
	Seed   int64
	Events []Event
}

// Validate checks structural validity: known fault kinds, rates in
// [0,1], non-negative offsets, and required scope fields per kind.
func (p *Plan) Validate() error {
	var errs []string
	bad := func(i int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("event %d: %s", i, fmt.Sprintf(format, args...)))
	}
	for i, ev := range p.Events {
		if !faultKinds[ev.Fault] {
			bad(i, "unknown fault kind %q", ev.Fault)
			continue
		}
		if ev.At < 0 || ev.For < 0 || ev.Delay < 0 || ev.Jitter < 0 {
			bad(i, "%s: negative duration", ev.Fault)
		}
		if ev.Rate < 0 || ev.Rate > 1 {
			bad(i, "%s: rate %v outside [0,1]", ev.Fault, ev.Rate)
		}
		switch ev.Fault {
		case FaultDisconnect:
			if ev.Client == "" {
				bad(i, "disconnect: missing client")
			}
		case FaultDrop, FaultDuplicate:
			if ev.Rate == 0 {
				bad(i, "%s: missing rate", ev.Fault)
			}
		case FaultDelay:
			if ev.Delay == 0 {
				bad(i, "delay: missing delay_ms")
			}
		case FaultPartition:
			if len(ev.Groups) < 2 {
				bad(i, "partition: need at least two groups")
			}
		case FaultNodeDown, FaultNodeUp:
			if ev.Node == "" {
				bad(i, "%s: missing node", ev.Fault)
			}
		case FaultPodCrash, FaultStuck, FaultDropout, FaultOutlier, FaultClear:
			if ev.Digi == "" {
				bad(i, "%s: missing digi", ev.Fault)
			}
		case FaultShardKill, FaultShardPartition, FaultShardRevive:
			if ev.Shard < 0 {
				bad(i, "%s: missing shard", ev.Fault)
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("chaos: invalid plan %q:\n  %s", p.Name, strings.Join(errs, "\n  "))
	}
	return nil
}

// End returns the offset at which the last scheduled event (including
// compiled reverts) fires, ignoring jitter.
func (p *Plan) End() time.Duration {
	var end time.Duration
	for _, ev := range p.Events {
		t := ev.At + ev.For
		if t > end {
			end = t
		}
	}
	return end
}

// ParsePlan decodes a YAML plan document:
//
//	plan: flaky-wifi
//	seed: 42
//	events:
//	  - at_ms: 100
//	    fault: drop
//	    topic: digibox/#
//	    rate: 0.5
//	    for_ms: 400
func ParsePlan(data []byte) (*Plan, error) {
	v, err := yamlite.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p, err := PlanFromValue(v)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// PlanFromValue builds a Plan from a generic decoded value (a YAML
// setup section or a JSON control-API body). It does not Validate.
func PlanFromValue(v any) (*Plan, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("chaos: plan must be a mapping, got %T", v)
	}
	p := &Plan{}
	p.Name, _ = m["plan"].(string)
	if p.Name == "" {
		p.Name, _ = m["name"].(string)
	}
	p.Seed = asInt(m["seed"])
	evs, ok := m["events"].([]any)
	if !ok && m["events"] != nil {
		return nil, fmt.Errorf("chaos: events must be a sequence, got %T", m["events"])
	}
	for i, raw := range evs {
		em, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("chaos: event %d must be a mapping, got %T", i, raw)
		}
		ev := Event{
			At:     time.Duration(asInt(em["at_ms"])) * time.Millisecond,
			Fault:  Fault(str(em["fault"])),
			Digi:   str(em["digi"]),
			Node:   str(em["node"]),
			Client: str(em["client"]),
			From:   str(em["from"]),
			Topic:  str(em["topic"]),
			Rate:   asFloat(em["rate"]),
			Delay:  time.Duration(asInt(em["delay_ms"])) * time.Millisecond,
			For:    time.Duration(asInt(em["for_ms"])) * time.Millisecond,
			Value:  asFloat(em["value"]),
			Jitter: time.Duration(asInt(em["jitter_ms"])) * time.Millisecond,
			Shard:  -1,
		}
		if s, ok := em["shard"]; ok {
			ev.Shard = int(asInt(s))
		}
		if gs, ok := em["groups"].([]any); ok {
			for _, g := range gs {
				members, ok := g.([]any)
				if !ok {
					return nil, fmt.Errorf("chaos: event %d: each partition group must be a sequence", i)
				}
				var group []string
				for _, mem := range members {
					group = append(group, str(mem))
				}
				ev.Groups = append(ev.Groups, group)
			}
		}
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

// Value renders the plan as a generic value suitable for yamlite/JSON
// encoding — the inverse of PlanFromValue.
func (p *Plan) Value() any {
	m := map[string]any{"plan": p.Name}
	if p.Seed != 0 {
		m["seed"] = p.Seed
	}
	var evs []any
	for _, ev := range p.Events {
		em := map[string]any{
			"at_ms": int64(ev.At / time.Millisecond),
			"fault": string(ev.Fault),
		}
		setIf := func(k, v string) {
			if v != "" {
				em[k] = v
			}
		}
		setIf("digi", ev.Digi)
		setIf("node", ev.Node)
		setIf("client", ev.Client)
		setIf("from", ev.From)
		setIf("topic", ev.Topic)
		if ev.Rate != 0 {
			em["rate"] = ev.Rate
		}
		if ev.Delay != 0 {
			em["delay_ms"] = int64(ev.Delay / time.Millisecond)
		}
		if ev.For != 0 {
			em["for_ms"] = int64(ev.For / time.Millisecond)
		}
		if ev.Value != 0 {
			em["value"] = ev.Value
		}
		if ev.Jitter != 0 {
			em["jitter_ms"] = int64(ev.Jitter / time.Millisecond)
		}
		if shardFault(ev.Fault) {
			// Always emitted for shard faults: 0 is a valid shard index,
			// so presence — not non-zero-ness — carries the information.
			em["shard"] = int64(ev.Shard)
		}
		if len(ev.Groups) > 0 {
			var gs []any
			for _, g := range ev.Groups {
				var members []any
				for _, mem := range g {
					members = append(members, mem)
				}
				gs = append(gs, members)
			}
			em["groups"] = gs
		}
		evs = append(evs, em)
	}
	if evs != nil {
		m["events"] = evs
	}
	return m
}

// Marshal encodes the plan as a standalone YAML document.
func (p *Plan) Marshal() ([]byte, error) {
	return yamlite.Encode(p.Value())
}

// Targets returns the distinct digi names and topic filters the plan
// references, for static validation (vet rule V013).
func (p *Plan) Targets() (digis, topics []string) {
	dset, tset := map[string]bool{}, map[string]bool{}
	for _, ev := range p.Events {
		if ev.Digi != "" {
			dset[ev.Digi] = true
		}
		if ev.Topic != "" {
			tset[ev.Topic] = true
		}
	}
	for d := range dset {
		digis = append(digis, d)
	}
	for t := range tset {
		topics = append(topics, t)
	}
	sort.Strings(digis)
	sort.Strings(topics)
	return digis, topics
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

func asInt(v any) int64 {
	switch n := v.(type) {
	case int64:
		return n
	case int:
		return int64(n)
	case float64:
		return int64(n)
	}
	return 0
}

func asFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	case int:
		return float64(n)
	}
	return 0
}
