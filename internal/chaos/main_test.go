package chaos

import (
	"os"
	"testing"

	"repro/internal/vet/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine (a stuck
// engine run, an unreverted delayed-delivery timer).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
