package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/trace"
)

// BrokerInjector is the broker-layer fault surface. *broker.Broker is
// adapted to this interface by the core testbed.
type BrokerInjector interface {
	// Disconnect force-closes a client's connection; reports whether
	// the client was connected.
	Disconnect(clientID string) bool
	// AddMessageFault installs a delivery-time drop/delay/duplicate
	// rule and returns a remover.
	AddMessageFault(f MessageFault) (remove func())
	// SetPartitions isolates the listed identity groups from each
	// other; unlisted identities are unaffected.
	SetPartitions(groups [][]string)
	// ClearPartitions heals any active partition.
	ClearPartitions()
	// SetFaultSeed seeds the broker's per-message fault sampling.
	SetFaultSeed(seed int64)
}

// MessageFault scopes a delivery-time message fault. Empty scope
// fields match any value.
type MessageFault struct {
	Client   string        // receiving client ID
	From     string        // publishing identity
	Topic    string        // topic filter
	DropRate float64       // probability a matching delivery is dropped
	DupRate  float64       // probability a matching delivery is duplicated
	Delay    time.Duration // added delivery latency
}

// ClusterInjector is the kube-layer fault surface.
type ClusterInjector interface {
	KillNode(name string) error
	ReviveNode(name string) error
	// CrashPod crashes the pod backing the named digi once; the
	// cluster's restart policy brings it back.
	CrashPod(digi string) error
}

// DeviceInjector is the device-layer fault surface (sensor fault
// modes applied through the model's config machinery).
type DeviceInjector interface {
	SetFault(digi, mode string, value float64) error
	ClearFault(digi string) error
}

// SwarmInjector is the swarm-layer fault surface. *swarm.Pool
// satisfies it directly: KillShard crashes a shard's broker (the
// pool's health monitor detects the death and fails over),
// ReviveShard brings it back, PartitionShard/HealShard sever and
// restore its bridge links.
type SwarmInjector interface {
	KillShard(shard int) error
	ReviveShard(shard int) error
	PartitionShard(shard int) error
	HealShard(shard int) error
}

// Engine applies compiled plans to a set of injectors and records
// every injected fault and revert into the trace log.
type Engine struct {
	Broker  BrokerInjector
	Cluster ClusterInjector
	Devices DeviceInjector
	Swarm   SwarmInjector
	Log     *trace.Log
	// Obs, when set, counts injected/recovered faults and times
	// inject→revert windows. The recovered counter joins the shared
	// faults-recovered family (see obs.FaultsRecoveredName) under
	// via="revert".
	Obs *obs.Registry
	// Clock is the time source for the real-time schedule walk and
	// recovery-latency timing. Nil means the wall clock; the replay
	// engine drives a Walker directly from its virtual clock instead.
	Clock clock.Clock
	// Bus, when set, receives a "fault" event for every inject and
	// revert so live consumers (the dashboard's SSE stream) see the
	// chaos timeline as it happens.
	Bus *obs.Bus
}

// clk returns the engine's clock, defaulting to the wall clock.
func (e *Engine) clk() clock.Clock { return clock.Or(e.Clock) }

// engineMetrics is resolved once per Run from Engine.Obs.
type engineMetrics struct {
	injected  *obs.CounterVec // by fault kind and target
	recovered *obs.Counter    // shared family, via=revert
	recovery  *obs.Histogram  // inject → revert elapsed
}

func (e *Engine) bindMetrics() *engineMetrics {
	if e.Obs == nil {
		return nil
	}
	return &engineMetrics{
		injected: e.Obs.CounterVec(obs.FaultsInjectedName,
			"faults injected by the chaos engine", "fault", "target"),
		recovered: e.Obs.CounterVec(obs.FaultsRecoveredName,
			"faults recovered (chaos reverts and runtime reconnects)", "via").With("revert"),
		recovery: e.Obs.Histogram("digibox_chaos_recovery_seconds",
			"fault inject → revert elapsed time", nil),
	}
}

// target names the fault's subject for the injected-counter label.
func target(ev Event) string {
	switch {
	case shardFault(ev.Fault):
		return fmt.Sprintf("shard-%d", ev.Shard)
	case ev.Digi != "":
		return ev.Digi
	case ev.Node != "":
		return ev.Node
	case ev.Client != "":
		return ev.Client
	case ev.Topic != "":
		return ev.Topic
	}
	return "broker"
}

// Step is one entry of a compiled schedule: either an Event firing or
// the compiled revert of an earlier bounded event.
type Step struct {
	At       time.Duration
	Event    Event
	Index    int // index into Plan.Events
	RevertOf int // -1 for the event itself; else the Index it reverts
}

// Compile resolves a plan into a deterministic schedule: jitter is
// sampled from the plan seed in event order, and every bounded event
// (For > 0) expands into an explicit revert step at At+For. The result
// is a pure function of (plan, seed).
func Compile(p *Plan) ([]Step, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var steps []Step
	for i, ev := range p.Events {
		at := ev.At
		if ev.Jitter > 0 {
			at += time.Duration(rng.Int63n(int64(ev.Jitter)))
		}
		resolved := ev
		resolved.At = at
		steps = append(steps, Step{At: at, Event: resolved, Index: i, RevertOf: -1})
		if ev.For > 0 && revertible(ev.Fault) {
			steps = append(steps, Step{At: at + ev.For, Event: resolved, Index: i, RevertOf: i})
		}
	}
	sort.SliceStable(steps, func(a, b int) bool { return steps[a].At < steps[b].At })
	return steps, nil
}

// revertible reports whether a For-bounded event of this kind has a
// meaningful compiled revert.
func revertible(f Fault) bool {
	switch f {
	case FaultDrop, FaultDelay, FaultDuplicate, FaultPartition,
		FaultNodeDown, FaultStuck, FaultDropout, FaultOutlier,
		FaultShardKill, FaultShardPartition:
		return true
	}
	return false
}

// Report summarizes one engine run.
type Report struct {
	Plan     string   `json:"plan"`
	Seed     int64    `json:"seed"`
	Injected int      `json:"injected"`
	Reverted int      `json:"reverted"`
	Skipped  []string `json:"skipped,omitempty"`
	// Applied lists the canonical signature line of every fault and
	// revert, in firing order.
	Applied []string `json:"applied,omitempty"`
}

// Run compiles the plan and walks the schedule in real time, applying
// each step through the injectors. It blocks until the last step has
// fired or ctx is cancelled. Injector errors skip the step (recorded
// in the report) rather than aborting the run.
func (e *Engine) Run(ctx context.Context, p *Plan) (*Report, error) {
	steps, err := Compile(p)
	if err != nil {
		return nil, err
	}
	w := e.NewWalker(p)
	clk := e.clk()
	start := clk.Now()
	for _, st := range steps {
		if wait := st.At - clk.Since(start); wait > 0 {
			select {
			case <-clk.After(wait):
			case <-ctx.Done():
				return w.Report(), ctx.Err()
			}
		}
		w.Apply(st)
	}
	return w.Report(), nil
}

// Walker applies a compiled schedule one step at a time, accumulating
// the run report. Run drives it in real time; the deterministic
// replay engine drives the same Walker from a virtual clock, so
// recorded and replayed chaos runs log identical fault sequences.
type Walker struct {
	e       *Engine
	rep     *Report
	metrics *engineMetrics
	reverts map[int]func()
	applied map[int]time.Time // inject wall time, for recovery latency
}

// NewWalker seeds the broker's fault sampling from the plan and
// returns a walker for its compiled schedule.
func (e *Engine) NewWalker(p *Plan) *Walker {
	if e.Broker != nil {
		e.Broker.SetFaultSeed(p.Seed)
	}
	return &Walker{
		e:       e,
		rep:     &Report{Plan: p.Name, Seed: p.Seed},
		metrics: e.bindMetrics(),
		reverts: map[int]func(){},
		applied: map[int]time.Time{},
	}
}

// Report returns the accumulated run report.
func (w *Walker) Report() *Report { return w.rep }

// Apply fires one compiled step through the injectors, logging the
// fault (or revert) and updating the report. Injector errors skip the
// step rather than aborting.
func (w *Walker) Apply(st Step) {
	e, rep, metrics := w.e, w.rep, w.metrics
	if st.RevertOf >= 0 {
		fn := w.reverts[st.RevertOf]
		if fn == nil {
			return
		}
		delete(w.reverts, st.RevertOf)
		fn()
		rep.Reverted++
		if metrics != nil {
			metrics.recovered.Inc()
			if t0, ok := w.applied[st.RevertOf]; ok {
				metrics.recovery.Observe(w.e.clk().Since(t0).Seconds())
			}
		}
		line := revertSignature(st.Event)
		rep.Applied = append(rep.Applied, line)
		e.logFault(st.Event, "revert", line)
		e.Bus.Publish("fault", map[string]any{
			"action":    "recover",
			"fault":     string(st.Event.Fault),
			"target":    target(st.Event),
			"signature": line,
		})
		return
	}
	revert, err := e.apply(st.Event)
	if err != nil {
		rep.Skipped = append(rep.Skipped, fmt.Sprintf("%s: %v", eventSignature(st.Event), err))
		return
	}
	if revert != nil {
		w.reverts[st.Index] = revert
		if metrics != nil {
			w.applied[st.Index] = w.e.clk().Now()
		}
	}
	rep.Injected++
	if metrics != nil {
		metrics.injected.With(string(st.Event.Fault), target(st.Event)).Inc()
	}
	line := eventSignature(st.Event)
	rep.Applied = append(rep.Applied, line)
	e.logFault(st.Event, string(st.Event.Fault), line)
	e.Bus.Publish("fault", map[string]any{
		"action":    "inject",
		"fault":     string(st.Event.Fault),
		"target":    target(st.Event),
		"signature": line,
	})
}

// apply injects one event and returns its revert (nil if the event is
// not For-bounded or not revertible).
func (e *Engine) apply(ev Event) (func(), error) {
	switch ev.Fault {
	case FaultDisconnect:
		if e.Broker == nil {
			return nil, fmt.Errorf("no broker injector")
		}
		if !e.Broker.Disconnect(ev.Client) {
			return nil, fmt.Errorf("client %q not connected", ev.Client)
		}
		return nil, nil
	case FaultDrop, FaultDelay, FaultDuplicate:
		if e.Broker == nil {
			return nil, fmt.Errorf("no broker injector")
		}
		f := MessageFault{Client: ev.Client, From: ev.From, Topic: ev.Topic, Delay: ev.Delay}
		switch ev.Fault {
		case FaultDrop:
			f.DropRate = ev.Rate
		case FaultDuplicate:
			f.DupRate = ev.Rate
		}
		remove := e.Broker.AddMessageFault(f)
		return remove, nil
	case FaultPartition:
		if e.Broker == nil {
			return nil, fmt.Errorf("no broker injector")
		}
		e.Broker.SetPartitions(ev.Groups)
		return e.Broker.ClearPartitions, nil
	case FaultHeal:
		if e.Broker == nil {
			return nil, fmt.Errorf("no broker injector")
		}
		e.Broker.ClearPartitions()
		return nil, nil
	case FaultNodeDown:
		if e.Cluster == nil {
			return nil, fmt.Errorf("no cluster injector")
		}
		if err := e.Cluster.KillNode(ev.Node); err != nil {
			return nil, err
		}
		node := ev.Node
		return func() { _ = e.Cluster.ReviveNode(node) }, nil
	case FaultNodeUp:
		if e.Cluster == nil {
			return nil, fmt.Errorf("no cluster injector")
		}
		return nil, e.Cluster.ReviveNode(ev.Node)
	case FaultPodCrash:
		if e.Cluster == nil {
			return nil, fmt.Errorf("no cluster injector")
		}
		return nil, e.Cluster.CrashPod(ev.Digi)
	case FaultStuck, FaultDropout, FaultOutlier:
		if e.Devices == nil {
			return nil, fmt.Errorf("no device injector")
		}
		if err := e.Devices.SetFault(ev.Digi, string(ev.Fault), ev.Value); err != nil {
			return nil, err
		}
		digi := ev.Digi
		return func() { _ = e.Devices.ClearFault(digi) }, nil
	case FaultClear:
		if e.Devices == nil {
			return nil, fmt.Errorf("no device injector")
		}
		return nil, e.Devices.ClearFault(ev.Digi)
	case FaultShardKill:
		if e.Swarm == nil {
			return nil, fmt.Errorf("no swarm injector")
		}
		if err := e.Swarm.KillShard(ev.Shard); err != nil {
			return nil, err
		}
		shard := ev.Shard
		return func() { _ = e.Swarm.ReviveShard(shard) }, nil
	case FaultShardPartition:
		if e.Swarm == nil {
			return nil, fmt.Errorf("no swarm injector")
		}
		if err := e.Swarm.PartitionShard(ev.Shard); err != nil {
			return nil, err
		}
		shard := ev.Shard
		return func() { _ = e.Swarm.HealShard(shard) }, nil
	case FaultShardRevive:
		if e.Swarm == nil {
			return nil, fmt.Errorf("no swarm injector")
		}
		return nil, e.Swarm.ReviveShard(ev.Shard)
	}
	return nil, fmt.Errorf("unknown fault %q", ev.Fault)
}

// logFault records one applied step. Fields carry only plan-derived
// scalars so two runs of the same compiled schedule log identical
// sequences.
func (e *Engine) logFault(ev Event, fault, detail string) {
	if e.Log == nil {
		return
	}
	fields := map[string]any{"at_ms": int64(ev.At / time.Millisecond)}
	if ev.Digi != "" {
		fields["digi"] = ev.Digi
	}
	if ev.Node != "" {
		fields["node"] = ev.Node
	}
	if ev.Client != "" {
		fields["client"] = ev.Client
	}
	if ev.Topic != "" {
		fields["topic"] = ev.Topic
	}
	if ev.Rate != 0 {
		fields["rate"] = ev.Rate
	}
	if shardFault(ev.Fault) {
		fields["shard"] = int64(ev.Shard)
	}
	name := ev.Digi
	if name == "" {
		name = ev.Node
	}
	if name == "" {
		name = ev.Client
	}
	if name == "" {
		if shardFault(ev.Fault) {
			name = fmt.Sprintf("shard-%d", ev.Shard)
		} else {
			name = "broker"
		}
	}
	e.Log.Append(trace.Record{Kind: trace.KindFault, Name: name, Type: "chaos",
		Fault: fault, Detail: detail, Fields: fields})
}

// eventSignature renders an event as a canonical one-line signature.
func eventSignature(ev Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dms %s", ev.At/time.Millisecond, ev.Fault)
	add := func(k, v string) {
		if v != "" {
			fmt.Fprintf(&b, " %s=%s", k, v)
		}
	}
	add("digi", ev.Digi)
	add("node", ev.Node)
	add("client", ev.Client)
	add("from", ev.From)
	add("topic", ev.Topic)
	if shardFault(ev.Fault) {
		fmt.Fprintf(&b, " shard=%d", ev.Shard)
	}
	if ev.Rate != 0 {
		fmt.Fprintf(&b, " rate=%g", ev.Rate)
	}
	if ev.Delay != 0 {
		fmt.Fprintf(&b, " delay=%dms", ev.Delay/time.Millisecond)
	}
	if ev.For != 0 {
		fmt.Fprintf(&b, " for=%dms", ev.For/time.Millisecond)
	}
	if ev.Value != 0 {
		fmt.Fprintf(&b, " value=%g", ev.Value)
	}
	if len(ev.Groups) > 0 {
		var gs []string
		for _, g := range ev.Groups {
			gs = append(gs, strings.Join(g, "+"))
		}
		fmt.Fprintf(&b, " groups=%s", strings.Join(gs, "|"))
	}
	return b.String()
}

func revertSignature(ev Event) string {
	return fmt.Sprintf("%dms revert %s", (ev.At+ev.For)/time.Millisecond, eventSignature(ev))
}

// Signature extracts the canonical engine-injected fault signature
// lines from a trace, in order. Two runs of the same seeded plan
// produce equal signatures — the replayability contract tests assert
// on. Runtime-emitted fault records (gap markers, whose causes and
// timing depend on scheduling) are excluded.
func Signature(recs []trace.Record) []string {
	var out []string
	for _, r := range recs {
		if r.Kind == trace.KindFault && r.Type == "chaos" {
			out = append(out, r.Fault+": "+r.Detail)
		}
	}
	return out
}
