package chaos

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// fakeInjectors records every injector call in order.
type fakeInjectors struct {
	mu    sync.Mutex
	calls []string
	// failClients simulates disconnect targets that are not connected.
	failClients map[string]bool
}

func (f *fakeInjectors) record(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, fmt.Sprintf(format, args...))
}

func (f *fakeInjectors) Calls() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.calls))
	copy(out, f.calls)
	return out
}

func (f *fakeInjectors) Disconnect(clientID string) bool {
	if f.failClients[clientID] {
		return false
	}
	f.record("disconnect %s", clientID)
	return true
}

func (f *fakeInjectors) AddMessageFault(mf MessageFault) func() {
	f.record("fault client=%s from=%s topic=%s drop=%g dup=%g delay=%s",
		mf.Client, mf.From, mf.Topic, mf.DropRate, mf.DupRate, mf.Delay)
	return func() { f.record("unfault topic=%s", mf.Topic) }
}

func (f *fakeInjectors) SetPartitions(groups [][]string) { f.record("partition %v", groups) }
func (f *fakeInjectors) ClearPartitions()                { f.record("heal") }
func (f *fakeInjectors) SetFaultSeed(seed int64)         { f.record("seed %d", seed) }
func (f *fakeInjectors) KillNode(name string) error      { f.record("node-down %s", name); return nil }
func (f *fakeInjectors) ReviveNode(name string) error    { f.record("node-up %s", name); return nil }
func (f *fakeInjectors) CrashPod(digi string) error      { f.record("crash %s", digi); return nil }
func (f *fakeInjectors) SetFault(digi, mode string, value float64) error {
	f.record("devfault %s %s %g", digi, mode, value)
	return nil
}
func (f *fakeInjectors) ClearFault(digi string) error { f.record("devclear %s", digi); return nil }

func testPlan() *Plan {
	return &Plan{
		Name: "unit",
		Seed: 7,
		Events: []Event{
			{At: 0, Fault: FaultDrop, Topic: "digibox/#", Rate: 0.5, For: 30 * time.Millisecond},
			{At: 5 * time.Millisecond, Fault: FaultDisconnect, Client: "c1", Jitter: 10 * time.Millisecond},
			{At: 10 * time.Millisecond, Fault: FaultNodeDown, Node: "n2", For: 20 * time.Millisecond},
			{At: 15 * time.Millisecond, Fault: FaultStuck, Digi: "S1", Value: 3, For: 10 * time.Millisecond},
			{At: 20 * time.Millisecond, Fault: FaultPodCrash, Digi: "S1"},
		},
	}
}

func runPlan(t *testing.T, p *Plan) (*fakeInjectors, *Report, *trace.Log) {
	t.Helper()
	inj := &fakeInjectors{}
	log := trace.NewLog()
	eng := &Engine{Broker: inj, Cluster: inj, Devices: inj, Log: log}
	rep, err := eng.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return inj, rep, log
}

// The acceptance contract: two runs of the same seeded plan produce
// identical fault-event traces and identical injector call sequences.
func TestRunIsDeterministic(t *testing.T) {
	inj1, rep1, log1 := runPlan(t, testPlan())
	inj2, rep2, log2 := runPlan(t, testPlan())
	if !reflect.DeepEqual(inj1.Calls(), inj2.Calls()) {
		t.Errorf("injector calls diverged:\n%v\n%v", inj1.Calls(), inj2.Calls())
	}
	sig1, sig2 := Signature(log1.Records()), Signature(log2.Records())
	if len(sig1) == 0 {
		t.Fatal("no fault records logged")
	}
	if !reflect.DeepEqual(sig1, sig2) {
		t.Errorf("fault signatures diverged:\n%v\n%v", sig1, sig2)
	}
	if !reflect.DeepEqual(rep1.Applied, rep2.Applied) {
		t.Errorf("reports diverged:\n%v\n%v", rep1.Applied, rep2.Applied)
	}
}

// A different seed moves jittered events — the schedule is seed-driven.
func TestSeedChangesJitteredSchedule(t *testing.T) {
	p1, p2 := testPlan(), testPlan()
	p2.Seed = 8
	s1, err := Compile(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compile(p2)
	if err != nil {
		t.Fatal(err)
	}
	var at1, at2 time.Duration
	for _, st := range s1 {
		if st.Event.Fault == FaultDisconnect {
			at1 = st.At
		}
	}
	for _, st := range s2 {
		if st.Event.Fault == FaultDisconnect {
			at2 = st.At
		}
	}
	if at1 == at2 {
		t.Errorf("jittered event fired at %v under both seeds", at1)
	}
}

func TestCompileExpandsReverts(t *testing.T) {
	steps, err := Compile(testPlan())
	if err != nil {
		t.Fatal(err)
	}
	// 5 events + 3 bounded reverts (drop, node-down, stuck).
	if len(steps) != 8 {
		t.Fatalf("got %d steps, want 8", len(steps))
	}
	reverts := 0
	for _, st := range steps {
		if st.RevertOf >= 0 {
			reverts++
		}
	}
	if reverts != 3 {
		t.Errorf("got %d reverts, want 3", reverts)
	}
}

func TestRunAppliesAndReverts(t *testing.T) {
	inj, rep, _ := runPlan(t, testPlan())
	if rep.Injected != 5 || rep.Reverted != 3 {
		t.Errorf("report = %+v", rep)
	}
	calls := inj.Calls()
	want := map[string]bool{}
	for _, c := range calls {
		want[c] = true
	}
	for _, c := range []string{
		"disconnect c1", "node-down n2", "node-up n2",
		"devfault S1 stuck 3", "devclear S1", "crash S1",
		"unfault topic=digibox/#",
	} {
		if !want[c] {
			t.Errorf("missing injector call %q in %v", c, calls)
		}
	}
}

func TestRunSkipsFailedInjection(t *testing.T) {
	inj := &fakeInjectors{failClients: map[string]bool{"ghost": true}}
	eng := &Engine{Broker: inj, Cluster: inj, Devices: inj}
	rep, err := eng.Run(context.Background(), &Plan{
		Name:   "skip",
		Events: []Event{{Fault: FaultDisconnect, Client: "ghost"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 0 || len(rep.Skipped) != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &Engine{Broker: &fakeInjectors{}}
	_, err := eng.Run(ctx, &Plan{
		Name:   "ctx",
		Events: []Event{{At: time.Hour, Fault: FaultDisconnect, Client: "c1"}},
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	src := []byte(`plan: flaky-wifi
seed: 42
events:
  - at_ms: 100
    fault: drop
    topic: "digibox/#"
    rate: 0.5
    for_ms: 400
  - at_ms: 200
    fault: disconnect
    client: digi-runtime
  - at_ms: 300
    fault: node-down
    node: n2
    for_ms: 250
  - at_ms: 400
    fault: stuck
    digi: S1
    value: 21.5
  - at_ms: 500
    fault: partition
    groups:
      - [a, b]
      - [c]
`)
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "flaky-wifi" || p.Seed != 42 || len(p.Events) != 5 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Events[0].Topic != "digibox/#" || p.Events[0].Rate != 0.5 ||
		p.Events[0].For != 400*time.Millisecond {
		t.Errorf("event 0 = %+v", p.Events[0])
	}
	if got := p.Events[4].Groups; !reflect.DeepEqual(got, [][]string{{"a", "b"}, {"c"}}) {
		t.Errorf("groups = %v", got)
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("round trip changed plan:\n%+v\n%+v", p, p2)
	}
	digis, topics := p.Targets()
	if !reflect.DeepEqual(digis, []string{"S1"}) || !reflect.DeepEqual(topics, []string{"digibox/#"}) {
		t.Errorf("targets = %v %v", digis, topics)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{Events: []Event{{Fault: "meteor"}}},
		{Events: []Event{{Fault: FaultDrop}}},                                 // missing rate
		{Events: []Event{{Fault: FaultDrop, Rate: 1.5}}},                      // rate out of range
		{Events: []Event{{Fault: FaultDisconnect}}},                           // missing client
		{Events: []Event{{Fault: FaultNodeDown}}},                             // missing node
		{Events: []Event{{Fault: FaultStuck}}},                                // missing digi
		{Events: []Event{{Fault: FaultPartition, Groups: [][]string{{"a"}}}}}, // one group
		{Events: []Event{{Fault: FaultDelay}}},                                // missing delay
		{Events: []Event{{Fault: FaultDrop, Rate: 0.5, At: -time.Second}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid plan accepted: %+v", i, p.Events)
		}
	}
	good := testPlan()
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}
