// Package vettest builds iac.Setup fixtures and matching in-memory
// kind sources from declarative tables, for tests that assert a scene
// composition is vet-clean (or deliberately is not). The shipped
// examples declare their scenes with the same tables.
package vettest

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/digi"
	"repro/internal/iac"
	"repro/internal/model"
	"repro/internal/vet"
)

// Digi is one row of a declarative scene table: a mock or scene
// instance, its meta config overrides, and the children its attach
// list names.
type Digi struct {
	Type   string
	Name   string
	Config map[string]any
	Attach []string
}

// Setup builds a setup document and the kind source backing its kind
// references from a table of digis and the kind libraries they draw
// from. Each referenced kind is "committed" at its schema version.
func Setup(name string, kinds []*digi.Kind, digis []Digi) (*iac.Setup, vet.MemKinds, error) {
	byType := map[string]*model.Schema{}
	for _, k := range kinds {
		if k.Schema != nil {
			byType[k.Schema.Type] = k.Schema
		}
	}
	setup := &iac.Setup{Name: name, Kinds: map[string]string{}}
	mem := vet.MemKinds{}
	for _, d := range digis {
		schema, ok := byType[d.Type]
		if !ok {
			return nil, nil, fmt.Errorf("vettest: type %q not in the kind libraries", d.Type)
		}
		doc := schema.New(d.Name)
		for k, v := range d.Config {
			doc.Set("meta."+k, v)
		}
		if len(d.Attach) > 0 {
			children := make([]any, len(d.Attach))
			for i, c := range d.Attach {
				children[i] = c
			}
			doc.Set("meta.attach", children)
		}
		setup.Models = append(setup.Models, doc)
		if _, done := setup.Kinds[d.Type]; !done {
			ver := schema.Version
			if ver == "" {
				ver = "v1"
			}
			data, err := model.EncodeSchema(schema)
			if err != nil {
				return nil, nil, fmt.Errorf("vettest: encode %s schema: %w", d.Type, err)
			}
			setup.Kinds[d.Type] = ver
			mem[d.Type+"/"+ver] = data
		}
	}
	return setup, mem, nil
}

// SetupWithChaos builds the same fixture as Setup with a chaos plan
// attached to the header, for V013 (chaos-target) coverage.
func SetupWithChaos(name string, kinds []*digi.Kind, digis []Digi, plan *chaos.Plan) (*iac.Setup, vet.MemKinds, error) {
	setup, mem, err := Setup(name, kinds, digis)
	if err != nil {
		return nil, nil, err
	}
	setup.Chaos = plan
	return setup, mem, nil
}

// Deploy instantiates a scene table on a live testbed: every digi is
// run first, then the attachments are wired parent by parent.
func Deploy(tb *core.Testbed, digis []Digi) error {
	for _, d := range digis {
		if err := tb.Run(d.Type, d.Name, d.Config); err != nil {
			return fmt.Errorf("vettest: run %s %s: %w", d.Type, d.Name, err)
		}
	}
	for _, d := range digis {
		for _, child := range d.Attach {
			if err := tb.Attach(child, d.Name); err != nil {
				return fmt.Errorf("vettest: attach %s -> %s: %w", child, d.Name, err)
			}
		}
	}
	return nil
}
