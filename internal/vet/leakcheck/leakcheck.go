// Package leakcheck is a hand-rolled goroutine-leak checker for test
// mains, stdlib-only. Snapshot the running goroutines before the tests,
// run them, and diff afterwards: anything new that is not a known
// benign runtime/testing goroutine is a leak. The final check retries
// over a grace window, because goroutines wound down by t.Cleanup or
// Close calls need a moment to exit.
//
// Usage, from a package's TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// stackBuf sizes the runtime.Stack snapshot; grown until the dump fits.
const stackBuf = 1 << 20

// grace is how long Check waits for stragglers to exit before calling
// them leaks.
const grace = 5 * time.Second

// goroutine is one parsed entry of a runtime.Stack(all=true) dump.
type goroutine struct {
	id    int64
	state string
	stack string // full text: header plus frames
}

// snapshot parses the current all-goroutine stack dump.
func snapshot() []goroutine {
	buf := make([]byte, stackBuf)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, entry := range strings.Split(string(buf), "\n\n") {
		g, ok := parseGoroutine(entry)
		if ok {
			out = append(out, g)
		}
	}
	return out
}

// parseGoroutine parses one "goroutine N [state]:" entry.
func parseGoroutine(entry string) (goroutine, bool) {
	entry = strings.TrimSpace(entry)
	if !strings.HasPrefix(entry, "goroutine ") {
		return goroutine{}, false
	}
	header, _, _ := strings.Cut(entry, "\n")
	rest := strings.TrimPrefix(header, "goroutine ")
	idStr, state, ok := strings.Cut(rest, " ")
	if !ok {
		return goroutine{}, false
	}
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		return goroutine{}, false
	}
	state = strings.TrimSuffix(strings.TrimPrefix(state, "["), "]:")
	if i := strings.Index(state, ","); i >= 0 {
		state = state[:i] // "[chan receive, 3 minutes]" -> "chan receive"
	}
	return goroutine{id: id, state: state, stack: entry}, true
}

// benign reports whether a goroutine belongs to the test harness or
// runtime rather than code under test.
func benign(g goroutine) bool {
	for _, marker := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*M).",
		"testing.runTests(",
		"runtime.goexit0",
		"created by runtime",
		"runtime.gc",
		"runtime.MHeap_Scavenger",
		"signal.signal_recv",
		"sigterm.handler",
		"os/signal.loop",
		"runtime.ensureSigM",
	} {
		if strings.Contains(g.stack, marker) {
			return true
		}
	}
	return false
}

// leaked returns the goroutines running now that were not in the
// baseline and are not benign.
func leaked(baseline map[int64]bool) []goroutine {
	var out []goroutine
	for _, g := range snapshot() {
		if baseline[g.id] || benign(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// Check diffs the current goroutines against a baseline ID set,
// retrying over the grace window until no new non-benign goroutines
// remain. It returns an error describing the leaks if any survive.
func Check(baseline map[int64]bool) error {
	deadline := time.Now().Add(grace)
	delay := 1 * time.Millisecond
	var last []goroutine
	for {
		last = leaked(baseline)
		if len(last) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "leakcheck: %d leaked goroutine(s) after %v:\n", len(last), grace)
	for _, g := range last {
		fmt.Fprintf(&b, "\n%s\n", g.stack)
	}
	return fmt.Errorf("%s", b.String())
}

// Baseline captures the IDs of the goroutines running now.
func Baseline() map[int64]bool {
	ids := map[int64]bool{}
	for _, g := range snapshot() {
		ids[g.id] = true
	}
	return ids
}

// Main wraps m.Run with a leak check: it returns m.Run's exit code,
// or 1 if the tests passed but goroutines leaked.
func Main(m interface{ Run() int }) int {
	baseline := Baseline()
	code := m.Run()
	if code != 0 {
		return code
	}
	if err := Check(baseline); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return code
}
