package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestParseGoroutine(t *testing.T) {
	entry := "goroutine 7 [chan receive, 3 minutes]:\nmain.worker()\n\t/src/main.go:10 +0x20"
	g, ok := parseGoroutine(entry)
	if !ok {
		t.Fatal("entry not parsed")
	}
	if g.id != 7 || g.state != "chan receive" {
		t.Errorf("parsed = %+v", g)
	}
	if _, ok := parseGoroutine("not a goroutine header"); ok {
		t.Error("garbage parsed as goroutine")
	}
}

func TestSnapshotSeesSelf(t *testing.T) {
	gs := snapshot()
	if len(gs) == 0 {
		t.Fatal("empty snapshot")
	}
	found := false
	for _, g := range gs {
		if strings.Contains(g.stack, "leakcheck.snapshot") || strings.Contains(g.stack, "TestSnapshotSeesSelf") {
			found = true
		}
	}
	if !found {
		t.Error("snapshot does not include the calling goroutine")
	}
}

func TestCheckCatchesLeak(t *testing.T) {
	baseline := Baseline()
	stop := make(chan struct{})
	go func() { <-stop }() // deliberately parked goroutine
	defer close(stop)

	if got := leaked(baseline); len(got) == 0 {
		t.Fatal("parked goroutine not reported as leaked")
	}
}

func TestCheckPassesAfterGoroutineExits(t *testing.T) {
	baseline := Baseline()
	done := make(chan struct{})
	go func() {
		//dbox:allow sleepytest -- the sleeping goroutine is the test subject: it must exit inside the grace window
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	if err := Check(baseline); err != nil {
		t.Errorf("Check failed for a goroutine that exits within grace: %v", err)
	}
	<-done
}

func TestBenignFiltersTestHarness(t *testing.T) {
	g := goroutine{stack: "goroutine 1 [chan receive]:\ntesting.(*M).Run(...)\n\t/usr/local/go/src/testing/testing.go:100"}
	if !benign(g) {
		t.Error("testing.M goroutine not considered benign")
	}
	g = goroutine{stack: "goroutine 9 [select]:\nrepro/internal/broker.(*Broker).serve(...)"}
	if benign(g) {
		t.Error("application goroutine considered benign")
	}
}
