package vet

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/swarm"
)

// The shipped analyzer suite. V000 (parse-error) is emitted by RunData
// when the config does not parse at all; everything below analyzes a
// parsed setup.
func init() {
	RegisterRule(Rule{
		ID: "V001", Name: "dangling-attach", Severity: Error,
		Doc: "an attach entry references a model that is not in the setup",
		Run: ruleDanglingAttach,
	})
	RegisterRule(Rule{
		ID: "V002", Name: "duplicate-attach", Severity: Error,
		Doc: "a scene's attach list names the same child more than once",
		Run: ruleDuplicateAttach,
	})
	RegisterRule(Rule{
		ID: "V003", Name: "attach-cycle", Severity: Error,
		Doc: "the attach hierarchy contains a cycle",
		Run: ruleAttachCycle,
	})
	RegisterRule(Rule{
		ID: "V004", Name: "orphan-model", Severity: Warning,
		Doc: "a model is not reachable from any root scene",
		Run: ruleOrphanModel,
	})
	RegisterRule(Rule{
		ID: "V005", Name: "missing-kind-ref", Severity: Error,
		Doc: "a model's type has no kind reference in the setup header",
		Run: ruleMissingKindRef,
	})
	RegisterRule(Rule{
		ID: "V006", Name: "kind-unresolved", Severity: Error,
		Doc: "a kind reference pins a version the repository does not have",
		Run: ruleKindUnresolved,
	})
	RegisterRule(Rule{
		ID: "V007", Name: "schema-mismatch", Severity: Error,
		Doc: "a model document does not conform to its committed kind schema",
		Run: ruleSchemaMismatch,
	})
	RegisterRule(Rule{
		ID: "V008", Name: "bad-topic", Severity: Error, Scope: DocScope,
		Doc: "meta.topic or meta.subscribe is not valid MQTT topic syntax",
		Run: ruleBadTopic,
	})
	RegisterRule(Rule{
		ID: "V009", Name: "topic-collision", Severity: Error,
		Doc: "two models publish status on the same MQTT topic",
		Run: ruleTopicCollision,
	})
	RegisterRule(Rule{
		ID: "V010", Name: "subscription-overlap", Severity: Warning,
		Doc: "two models' subscription filters can match the same topic",
		Run: ruleSubscriptionOverlap,
	})
	RegisterRule(Rule{
		ID: "V011", Name: "config-bounds", Severity: Error, Scope: DocScope,
		Doc: "a meta config value is outside its device bounds",
		Run: ruleConfigBounds,
	})
	RegisterRule(Rule{
		ID: "V012", Name: "bad-meta", Severity: Error,
		Doc: "a model document has a broken meta section or a duplicate name",
		Run: ruleBadMeta,
	})
	RegisterRule(Rule{
		ID: "V013", Name: "chaos-target", Severity: Error,
		Doc: "the header chaos plan targets a digi or topic not in the setup",
		Run: ruleChaosTarget,
	})
	RegisterRule(Rule{
		ID: "V014", Name: "unseeded-nondeterminism", Severity: Error,
		Doc: "probabilistic behavior without an explicit seed breaks record/replay",
		Run: ruleUnseededNondeterminism,
	})
	RegisterRule(Rule{
		ID: "V015", Name: "swarm-underprovisioned", Severity: Warning,
		Doc: "the device fleet exceeds single-broker guidance without enough swarm.shards",
		Run: ruleSwarmShards,
	})
	RegisterRule(Rule{
		ID: "V016", Name: "swarm-unsurvivable", Severity: Error,
		Doc: "the chaos plan's shard kills leave no live broker shard for failover to re-anchor onto",
		Run: ruleSwarmUnsurvivable,
	})
	RegisterRule(Rule{
		ID: "V017", Name: "dash-port-collision", Severity: Error,
		Doc: "the header ctl listen address collides with a port a device or broker in the scene declares",
		Run: ruleDashPortCollision,
	})
	RegisterRule(Rule{
		ID: "V018", Name: "profile-unsatisfiable", Severity: Error,
		Doc: "the header device profile has populations that can never emit traffic (zero rate, empty diurnal window, dead mix) or kinds the setup does not pin",
		Run: ruleProfileUnsatisfiable,
	})
}

// modelNames indexes the setup's models by name, skipping documents
// whose meta does not parse (V012 reports those).
func modelNames(ctx *Context) map[string]model.Doc {
	names := map[string]model.Doc{}
	for _, m := range ctx.Setup.Models {
		if n := m.Name(); n != "" {
			names[n] = m
		}
	}
	return names
}

func ruleBadMeta(ctx *Context) []Diagnostic {
	var out []Diagnostic
	seen := map[string]int{}
	for i, m := range ctx.Setup.Models {
		meta, err := m.Meta()
		if err != nil {
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: m.Name(),
				Message: fmt.Sprintf("invalid meta section: %v", err),
			})
			continue
		}
		if first, dup := seen[meta.Name]; dup {
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: meta.Name,
				Message: fmt.Sprintf("duplicate model name %q (first defined in document %d)", meta.Name, first),
			})
			continue
		}
		seen[meta.Name] = i + 1
	}
	return out
}

func ruleDanglingAttach(ctx *Context) []Diagnostic {
	names := modelNames(ctx)
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		reported := map[string]bool{} // repeats are V002's finding
		for _, child := range m.Attach() {
			if _, ok := names[child]; !ok && !reported[child] {
				reported[child] = true
				out = append(out, Diagnostic{
					Severity: Error, Doc: i + 1, Model: m.Name(),
					Message: fmt.Sprintf("%q attaches unknown model %q", m.Name(), child),
				})
			}
		}
	}
	return out
}

func ruleDuplicateAttach(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		seen := map[string]bool{}
		for _, child := range m.Attach() {
			if seen[child] {
				out = append(out, Diagnostic{
					Severity: Error, Doc: i + 1, Model: m.Name(),
					Message: fmt.Sprintf("%q attaches %q more than once", m.Name(), child),
				})
				continue
			}
			seen[child] = true
		}
	}
	return out
}

func ruleAttachCycle(ctx *Context) []Diagnostic {
	names := modelNames(ctx)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var out []Diagnostic
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		for _, child := range names[n].Attach() {
			if _, ok := names[child]; !ok {
				continue // dangling: V001's problem
			}
			switch color[child] {
			case gray:
				out = append(out, Diagnostic{
					Severity: Error, Doc: ctx.docIndex(n), Model: n,
					Message: fmt.Sprintf("attach cycle through %q and %q", n, child),
				})
			case white:
				visit(child)
			}
		}
		color[n] = black
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		if color[n] == white {
			visit(n)
		}
	}
	return out
}

// isScene reports whether a model is a scene: by its committed schema
// when resolvable, by a non-empty attach list otherwise.
func isScene(ctx *Context, m model.Doc) bool {
	if s, ok := ctx.schema(m.Type()); ok {
		return s.Scene
	}
	return len(m.Attach()) > 0
}

func ruleOrphanModel(ctx *Context) []Diagnostic {
	if len(ctx.Setup.Models) <= 1 {
		return nil // a single-model setup has nothing to orphan
	}
	names := modelNames(ctx)
	attached := map[string]bool{}
	for _, m := range ctx.Setup.Models {
		for _, c := range m.Attach() {
			attached[c] = true
		}
	}
	reachable := map[string]bool{}
	var mark func(n string)
	mark = func(n string) {
		if reachable[n] {
			return
		}
		reachable[n] = true
		for _, c := range names[n].Attach() {
			if _, ok := names[c]; ok {
				mark(c)
			}
		}
	}
	for n, m := range names {
		if !attached[n] && isScene(ctx, m) {
			mark(n)
		}
	}
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		n := m.Name()
		if n == "" || reachable[n] {
			continue
		}
		out = append(out, Diagnostic{
			Severity: Warning, Doc: i + 1, Model: n,
			Message: fmt.Sprintf("%q is not reachable from any root scene", n),
		})
	}
	return out
}

func ruleMissingKindRef(ctx *Context) []Diagnostic {
	kinds := ctx.Setup.Kinds
	if kinds == nil {
		return nil
	}
	var out []Diagnostic
	used := map[string]bool{}
	for i, m := range ctx.Setup.Models {
		typ := m.Type()
		if typ == "" {
			continue // V012 reports broken meta
		}
		used[typ] = true
		if _, ok := kinds[typ]; !ok {
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: m.Name(),
				Message: fmt.Sprintf("model %q uses type %q with no kind reference in the header", m.Name(), typ),
			})
		}
	}
	for typ := range kinds {
		if !used[typ] {
			out = append(out, Diagnostic{
				Severity: Info, Doc: 0,
				Message: fmt.Sprintf("kind reference %s/%s is not used by any model", typ, kinds[typ]),
			})
		}
	}
	return out
}

func ruleKindUnresolved(ctx *Context) []Diagnostic {
	if ctx.Kinds == nil || ctx.Setup.Kinds == nil {
		return nil
	}
	types := make([]string, 0, len(ctx.Setup.Kinds))
	for typ := range ctx.Setup.Kinds {
		types = append(types, typ)
	}
	sort.Strings(types)
	var out []Diagnostic
	for _, typ := range types {
		ver := ctx.Setup.Kinds[typ]
		data, err := ctx.Kinds.KindDoc(typ, ver)
		if err != nil {
			out = append(out, Diagnostic{
				Severity: Error, Doc: 0,
				Message: fmt.Sprintf("kind %s/%s is not in the repository: %v", typ, ver, err),
			})
			continue
		}
		s, err := model.DecodeSchema(data)
		if err != nil {
			out = append(out, Diagnostic{
				Severity: Error, Doc: 0,
				Message: fmt.Sprintf("kind %s/%s does not decode as a schema: %v", typ, ver, err),
			})
			continue
		}
		if s.Type != typ {
			out = append(out, Diagnostic{
				Severity: Error, Doc: 0,
				Message: fmt.Sprintf("kind %s/%s declares type %q (version-mismatched or mis-tagged document)", typ, ver, s.Type),
			})
		}
	}
	return out
}

func ruleSchemaMismatch(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		typ := m.Type()
		if typ == "" {
			continue
		}
		s, ok := ctx.schema(typ)
		if !ok || s.Type != typ {
			continue // unresolved or mis-tagged kinds are V006's problem
		}
		if err := s.Validate(m); err != nil {
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: m.Name(),
				Message: fmt.Sprintf("does not conform to kind %s/%s: %v", typ, ctx.Setup.Kinds[typ], err),
			})
		}
	}
	return out
}

// publishTopic resolves the MQTT topic a model's digi publishes status
// on: meta.topic when set, else the runtime default.
func publishTopic(m model.Doc) string {
	if t := m.GetString("meta.topic"); t != "" {
		return t
	}
	if m.Name() == "" {
		return ""
	}
	return "digibox/" + m.Name() + "/status"
}

// subscribeFilters returns the model's declared subscription filters
// (meta.subscribe), plus a diagnostic message for entries that are not
// strings.
func subscribeFilters(m model.Doc) (filters []string, badEntries []string) {
	v, ok := m.Get("meta.subscribe")
	if !ok {
		return nil, nil
	}
	seq, ok := v.([]any)
	if !ok {
		return nil, []string{fmt.Sprintf("meta.subscribe is %T, want a sequence of filters", v)}
	}
	for _, item := range seq {
		s, ok := item.(string)
		if !ok {
			badEntries = append(badEntries, fmt.Sprintf("meta.subscribe entry %v is %T, want string", item, item))
			continue
		}
		filters = append(filters, s)
	}
	return filters, badEntries
}

func ruleBadTopic(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		if t := m.GetString("meta.topic"); t != "" {
			if err := broker.ValidateTopicName(t); err != nil {
				out = append(out, Diagnostic{
					Severity: Error, Doc: i + 1, Model: m.Name(),
					Message: fmt.Sprintf("meta.topic %q: %v", t, err),
				})
			}
		}
		filters, bad := subscribeFilters(m)
		for _, msg := range bad {
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: m.Name(), Message: msg,
			})
		}
		for _, f := range filters {
			if err := broker.ValidateTopicFilter(f); err != nil {
				out = append(out, Diagnostic{
					Severity: Error, Doc: i + 1, Model: m.Name(),
					Message: fmt.Sprintf("meta.subscribe %q: %v", f, err),
				})
			}
		}
	}
	return out
}

func ruleTopicCollision(ctx *Context) []Diagnostic {
	claimed := map[string]string{} // topic -> first claiming model
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		topic := publishTopic(m)
		if topic == "" || broker.ValidateTopicName(topic) != nil {
			continue // syntax problems are V008's
		}
		if first, ok := claimed[topic]; ok {
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: m.Name(),
				Message: fmt.Sprintf("%q publishes on topic %q already claimed by %q", m.Name(), topic, first),
			})
			continue
		}
		claimed[topic] = m.Name()
	}
	return out
}

func ruleSubscriptionOverlap(ctx *Context) []Diagnostic {
	type sub struct {
		modelName string
		doc       int
		filter    string
	}
	var subs []sub
	for i, m := range ctx.Setup.Models {
		filters, _ := subscribeFilters(m)
		for _, f := range filters {
			if broker.ValidateTopicFilter(f) != nil {
				continue // V008 reports the syntax error
			}
			subs = append(subs, sub{m.Name(), i + 1, f})
		}
	}
	var out []Diagnostic
	for i := 0; i < len(subs); i++ {
		for j := i + 1; j < len(subs); j++ {
			a, b := subs[i], subs[j]
			if a.modelName == b.modelName {
				continue
			}
			if broker.FiltersOverlap(a.filter, b.filter) {
				out = append(out, Diagnostic{
					Severity: Warning, Doc: b.doc, Model: b.modelName,
					Message: fmt.Sprintf("%q subscription %q overlaps %q subscription %q", b.modelName, b.filter, a.modelName, a.filter),
				})
			}
		}
	}
	return out
}

func ruleConfigBounds(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		meta, err := m.Meta()
		if err != nil {
			continue
		}
		emit := func(format string, args ...any) {
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: meta.Name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		// Library-wide invariants: loop intervals are at least 1ms,
		// delays are non-negative, probabilities live in [0, 1].
		if v, ok := configFloat(meta.Config, "interval_ms"); ok && v < 1 {
			emit("meta.interval_ms %v must be at least 1", v)
		}
		if v, ok := configFloat(meta.Config, "actuation_delay_ms"); ok && v < 0 {
			emit("meta.actuation_delay_ms %v must not be negative", v)
		}
		keys := make([]string, 0, len(meta.Config))
		for k := range meta.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !strings.HasSuffix(k, "_prob") {
				continue
			}
			if v, ok := configFloat(meta.Config, k); ok && (v < 0 || v > 1) {
				emit("meta.%s %v must be a probability in [0, 1]", k, v)
			}
		}
		// Inverted <p>_min/<p>_max pairs.
		for _, k := range keys {
			if !strings.HasSuffix(k, "_min") {
				continue
			}
			maxKey := strings.TrimSuffix(k, "_min") + "_max"
			lo, okLo := configFloat(meta.Config, k)
			hi, okHi := configFloat(meta.Config, maxKey)
			if okLo && okHi && lo > hi {
				emit("meta.%s %v exceeds meta.%s %v", k, lo, maxKey, hi)
			}
		}
		// Bounds the device library declared for this type.
		for _, k := range keys {
			b, ok := declaredBounds(meta.Type)[k]
			if !ok {
				continue
			}
			if v, ok := configFloat(meta.Config, k); ok && (v < b.Min || v > b.Max) {
				emit("meta.%s %v is outside the %s bounds [%v, %v]", k, v, meta.Type, b.Min, b.Max)
			}
		}
	}
	return out
}

// ruleChaosTarget checks the header chaos plan against the setup: a
// malformed plan is reported event by event, every targeted digi must
// name a model, and every topic filter must be syntactically valid and
// able to match traffic some model publishes or subscribes to — a
// dangling target means the fault would silently hit nothing.
func ruleChaosTarget(ctx *Context) []Diagnostic {
	plan := ctx.Setup.Chaos
	if plan == nil {
		return nil
	}
	var out []Diagnostic
	emit := func(format string, args ...any) {
		out = append(out, Diagnostic{
			Severity: Error, Doc: 0,
			Message: fmt.Sprintf(format, args...),
		})
	}
	if err := plan.Validate(); err != nil {
		emit("chaos plan: %v", err)
	}
	names := modelNames(ctx)
	digis, topics := plan.Targets()
	for _, d := range digis {
		if _, ok := names[d]; !ok {
			emit("chaos plan targets digi %q, which is not in the setup", d)
		}
	}
	for _, f := range topics {
		if err := broker.ValidateTopicFilter(f); err != nil {
			emit("chaos plan topic %q: %v", f, err)
			continue
		}
		matched := false
		for _, m := range ctx.Setup.Models {
			if t := publishTopic(m); t != "" && broker.ValidateTopicName(t) == nil && broker.MatchTopic(f, t) {
				matched = true
				break
			}
			subs, _ := subscribeFilters(m)
			for _, s := range subs {
				if broker.ValidateTopicFilter(s) == nil && broker.FiltersOverlap(f, s) {
					matched = true
					break
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			emit("chaos plan topic %q matches no publish topic or subscription in the setup", f)
		}
	}
	return out
}

// ruleUnseededNondeterminism is the replay-conformance gate: every
// source of randomness in the setup must pin an explicit seed, or a
// recorded run cannot be reproduced byte-identically. A model whose
// config samples a fractional probability must set meta.seed (the
// name-derived fallback silently changes when the digi is renamed),
// and a chaos plan with rate- or jitter-based faults must declare a
// nonzero plan seed.
func ruleUnseededNondeterminism(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for i, m := range ctx.Setup.Models {
		meta, err := m.Meta()
		if err != nil {
			continue // V012 reports broken meta
		}
		if _, seeded := meta.Config["seed"]; seeded {
			continue
		}
		keys := make([]string, 0, len(meta.Config))
		for k := range meta.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !strings.HasSuffix(k, "_prob") {
				continue
			}
			v, ok := configFloat(meta.Config, k)
			if !ok || v <= 0 || v >= 1 {
				continue // 0 and 1 are deterministic outcomes; out of range is V011's
			}
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: meta.Name,
				Message: fmt.Sprintf("meta.%s %v samples randomly but no meta.seed is set; recordings will not replay after a rename", k, v),
			})
		}
	}
	plan := ctx.Setup.Chaos
	if plan != nil && plan.Seed == 0 {
		for _, ev := range plan.Events {
			if (ev.Rate > 0 && ev.Rate < 1) || ev.Jitter > 0 {
				out = append(out, Diagnostic{
					Severity: Error, Doc: 0,
					Message: fmt.Sprintf("chaos plan %q injects probabilistic faults (%s at %v) but declares no seed; the fault walk will not replay deterministically", plan.Name, ev.Fault, ev.At),
				})
			}
		}
	}
	return out
}

// ruleSwarmShards estimates the setup's device fleet size — one device
// per non-scene model, scaled by a meta config "replicas" count when
// one is declared — and warns when it exceeds the single-broker
// guidance without a header swarm section provisioning enough shards.
// The hint names the exact count so the fix is mechanical.
func ruleSwarmShards(ctx *Context) []Diagnostic {
	devices := 0
	for _, m := range ctx.Setup.Models {
		meta, err := m.Meta()
		if err != nil {
			continue // V012 reports broken meta
		}
		if isScene(ctx, m) {
			continue
		}
		n := 1
		if v, ok := configFloat(meta.Config, "replicas"); ok && v > 1 {
			n = int(v)
		}
		devices += n
	}
	if devices <= swarm.SingleBrokerDeviceGuidance {
		return nil
	}
	need := swarm.RequiredShards(devices)
	have := 0
	if ctx.Setup.Swarm != nil {
		have = ctx.Setup.Swarm.Shards
	}
	if have >= need {
		return nil
	}
	var msg string
	if have == 0 {
		msg = fmt.Sprintf("setup declares %d devices, past the single-broker guidance of %d, but no swarm section; add a header `swarm` section with `shards: %d`",
			devices, swarm.SingleBrokerDeviceGuidance, need)
	} else {
		msg = fmt.Sprintf("setup declares %d devices but swarm.shards is %d; raise it to %d (one shard per %d devices)",
			devices, have, need, swarm.SingleBrokerDeviceGuidance)
	}
	return []Diagnostic{{Severity: Warning, Doc: 0, Message: msg}}
}

// ruleSwarmUnsurvivable replays the header chaos plan's shard-kill
// timeline against the declared swarm.shards and reports the first
// instant at which every shard is dead at once: failover needs at
// least one live shard to re-anchor the dead shard's keys onto, so
// such a plan cannot be survived no matter how fast the health
// monitor reacts. Kills bounded by for_ms revive at at+for_ms, and
// explicit shard-revive events bring shards back; revives at the same
// offset as a kill apply first (the plan gets the benefit of the
// doubt). Out-of-range shard indices — faults that would silently hit
// nothing — are reported too, V013-style.
func ruleSwarmUnsurvivable(ctx *Context) []Diagnostic {
	plan := ctx.Setup.Chaos
	if plan == nil {
		return nil
	}
	shards := 0
	if ctx.Setup.Swarm != nil {
		shards = ctx.Setup.Swarm.Shards
	}
	var out []Diagnostic
	emit := func(format string, args ...any) {
		out = append(out, Diagnostic{
			Severity: Error, Doc: 0,
			Message: fmt.Sprintf(format, args...),
		})
	}
	type edge struct {
		at    time.Duration
		kill  bool
		shard int
		event int
	}
	var edges []edge
	maxShard := -1
	for i, ev := range plan.Events {
		switch ev.Fault {
		case chaos.FaultShardKill, chaos.FaultShardPartition, chaos.FaultShardRevive:
		default:
			continue
		}
		if ev.Shard < 0 {
			continue // Validate (surfaced by V013) reports the missing shard
		}
		if ev.Shard > maxShard {
			maxShard = ev.Shard
		}
		if shards > 0 && ev.Shard >= shards {
			emit("chaos plan event %d (%s) targets shard %d, but the setup provisions swarm.shards: %d (valid indices 0..%d)",
				i, ev.Fault, ev.Shard, shards, shards-1)
			continue
		}
		switch ev.Fault {
		case chaos.FaultShardKill:
			edges = append(edges, edge{at: ev.At, kill: true, shard: ev.Shard, event: i})
			if ev.For > 0 {
				edges = append(edges, edge{at: ev.At + ev.For, shard: ev.Shard, event: i})
			}
		case chaos.FaultShardRevive:
			edges = append(edges, edge{at: ev.At, shard: ev.Shard, event: i})
		}
	}
	if maxShard >= 0 && shards == 0 {
		emit("chaos plan injects shard faults but the setup has no swarm section; add a header `swarm` section with `shards: %d` so at least one shard survives",
			maxShard+2)
		return out
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return !edges[i].kill && edges[j].kill
	})
	dead := map[int]bool{}
	for _, e := range edges {
		if !e.kill {
			delete(dead, e.shard)
			continue
		}
		dead[e.shard] = true
		if len(dead) >= shards {
			emit("chaos plan event %d (shard-kill shard %d at %v) leaves all %d swarm shards dead at once, so failover has no live shard to re-anchor onto; stagger the kills with for_ms revive windows or raise swarm.shards to %d",
				e.event, e.shard, e.at, shards, len(dead)+1)
			return out
		}
	}
	return out
}

// ruleDashPortCollision checks the header ctl section: the control
// API (and the dashboard it serves) must not bind a port some model
// in the scene already claims through a `port`-suffixed meta config
// value — a deployed daemon would lose the race for the socket and
// the fleet view with it. A listen address that does not parse as
// host:port is reported too, since nothing downstream would catch it
// before deploy.
func ruleDashPortCollision(ctx *Context) []Diagnostic {
	ctl := ctx.Setup.Ctl
	if ctl == nil {
		return nil
	}
	var out []Diagnostic
	host, portStr, err := net.SplitHostPort(ctl.Listen)
	if err != nil {
		return []Diagnostic{{
			Severity: Error, Doc: 0,
			Message: fmt.Sprintf("ctl.listen %q is not a host:port address: %v", ctl.Listen, err),
		}}
	}
	ctlPort, err := strconv.Atoi(portStr)
	if err != nil || ctlPort < 0 || ctlPort > 65535 {
		return []Diagnostic{{
			Severity: Error, Doc: 0,
			Message: fmt.Sprintf("ctl.listen %q has an invalid port %q", ctl.Listen, portStr),
		}}
	}
	for i, m := range ctx.Setup.Models {
		meta, err := m.Meta()
		if err != nil {
			continue // V012 reports broken meta
		}
		keys := make([]string, 0, len(meta.Config))
		for k := range meta.Config {
			if k == "port" || strings.HasSuffix(k, "_port") {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			v, ok := configFloat(meta.Config, k)
			if !ok || int(v) != ctlPort {
				continue
			}
			out = append(out, Diagnostic{
				Severity: Error, Doc: i + 1, Model: meta.Name,
				Message: fmt.Sprintf("ctl.listen %q collides with meta.%s %d declared by %q; move the control API (e.g. ctl.listen: %q) or change the device port",
					ctl.Listen, k, ctlPort, meta.Name,
					net.JoinHostPort(host, strconv.Itoa(ctlPort+1))),
			})
		}
	}
	return out
}

// ruleProfileUnsatisfiable checks the header device profile: every
// population must be able to emit traffic when compiled into a
// sampler — a non-positive cadence rate, an empty diurnal window, a
// burst clause that never fires, a firmware mix whose shares all sum
// to zero, or an empty population mix each make the profile silently
// produce nothing (or refuse to compile) at run time. Every finding
// carries the profile model's mechanical fix-it hint. When the setup
// pins kind references, population kinds must resolve to one of them
// (case-insensitively): a profiled swarm run maps each population
// onto committed device kinds, and an unknown kind means the traffic
// would impersonate a device the setup cannot recreate.
func ruleProfileUnsatisfiable(ctx *Context) []Diagnostic {
	p := ctx.Setup.Profile
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return []Diagnostic{{
			Severity: Error, Doc: 0,
			Message: fmt.Sprintf("profile does not validate: %v", err),
		}}
	}
	var out []Diagnostic
	for _, prob := range p.Unsatisfiable() {
		msg := prob.Message
		if prob.Population != "" {
			msg = fmt.Sprintf("profile population %q: %s", prob.Population, prob.Message)
		} else {
			msg = "profile: " + msg
		}
		if prob.Fix != "" {
			msg += "; fix: " + prob.Fix
		}
		out = append(out, Diagnostic{Severity: Error, Doc: 0, Message: msg})
	}
	if len(ctx.Setup.Kinds) > 0 {
		refs := make([]string, 0, len(ctx.Setup.Kinds))
		for typ := range ctx.Setup.Kinds {
			refs = append(refs, typ)
		}
		sort.Strings(refs)
		for _, pop := range p.Populations {
			known := false
			for _, typ := range refs {
				if strings.EqualFold(typ, pop.Kind) {
					known = true
					break
				}
			}
			if !known {
				out = append(out, Diagnostic{
					Severity: Error, Doc: 0,
					Message: fmt.Sprintf("profile population %q references a kind with no kind reference in the header (have: %s); fix: add a kinds entry for %q or rename the population",
						pop.Kind, strings.Join(refs, ", "), pop.Kind),
				})
			}
		}
	}
	return out
}

// configFloat reads a numeric meta config value.
func configFloat(config map[string]any, key string) (float64, bool) {
	v, ok := config[key]
	if !ok {
		return 0, false
	}
	switch t := v.(type) {
	case float64:
		return t, true
	case int64:
		return float64(t), true
	case int:
		return float64(t), true
	}
	return 0, false
}
