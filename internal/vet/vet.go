// Package vet implements a static-analysis pass over scene setups: a
// diagnostics engine (rule registry, severities, stable rule IDs,
// document positions, text and JSON output) plus a suite of analyzers
// over iac.Setup documents and the scene repository.
//
// The paper's repository workflow (§3.4) stores testbed setups as
// Git-committed IaC configs; a broken setup — a dangling attach
// reference, a scene-graph cycle, a kind pinned to a version the
// repository doesn't have, two mocks claiming the same MQTT topic —
// otherwise only surfaces when the testbed is deployed. Vet is the
// commit-time analyzer: it runs from "dbox vet", as a pre-commit gate
// in the scene repository, and on deploy paths before run/recreate.
package vet

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/iac"
	"repro/internal/model"
	"repro/internal/profile"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// Info diagnostics are advisory (e.g. an unused kind reference).
	Info Severity = iota
	// Warning diagnostics flag likely mistakes that do not block
	// commit or deploy (e.g. an orphaned model).
	Warning
	// Error diagnostics block repository commits and deploys.
	Error
)

var severityNames = [...]string{"info", "warning", "error"}

func (s Severity) String() string {
	if s < Info || s > Error {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return severityNames[s]
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	name := strings.Trim(string(data), `"`)
	for i, n := range severityNames {
		if n == name {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("vet: unknown severity %q", name)
}

// Diagnostic is one finding. Doc is the document index in the setup's
// multi-document stream: 0 is the header, model i is document i+1.
type Diagnostic struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	File     string   `json:"file,omitempty"`
	Doc      int      `json:"doc"`
	Model    string   `json:"model,omitempty"`
	Message  string   `json:"message"`
}

// String renders the diagnostic in the text output format:
//
//	file#2: V001 error: "Room" attaches unknown model "Ghost"
func (d Diagnostic) String() string {
	pos := d.File
	if pos == "" {
		pos = "setup"
	}
	return fmt.Sprintf("%s#%d: %s %s: %s", pos, d.Doc, d.Rule, d.Severity, d.Message)
}

// Scope declares what a rule needs to run.
type Scope int

const (
	// SetupScope rules analyze a whole setup (graph shape, kind refs,
	// cross-model topic claims).
	SetupScope Scope = iota
	// DocScope rules analyze one model document in isolation and also
	// run on deploy paths for single documents (dbox run).
	DocScope
)

// Rule is one registered analyzer.
type Rule struct {
	// ID is the stable rule identifier ("V001").
	ID string
	// Name is the short kebab-case rule name ("dangling-attach").
	Name string
	// Severity is the severity the rule emits at.
	Severity Severity
	// Scope declares whether the rule runs on single documents too.
	Scope Scope
	// Doc is a one-line description for "dbox vet" help and README.
	Doc string
	// Run analyzes the setup in ctx.
	Run func(ctx *Context) []Diagnostic
}

var (
	rulesMu sync.RWMutex
	rules   []Rule
)

// RegisterRule installs an analyzer. Rules are run in ID order.
// Registering a duplicate ID panics: rule IDs are a stable namespace.
func RegisterRule(r Rule) {
	rulesMu.Lock()
	defer rulesMu.Unlock()
	for _, have := range rules {
		if have.ID == r.ID {
			panic("vet: duplicate rule ID " + r.ID)
		}
	}
	rules = append(rules, r)
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
}

// Rules returns the registered analyzers in ID order.
func Rules() []Rule {
	rulesMu.RLock()
	defer rulesMu.RUnlock()
	return append([]Rule(nil), rules...)
}

// KindSource resolves committed kind documents (the schema contracts
// a setup's kind references pin). The scene repository implements it;
// MemKinds provides an in-memory variant for tests.
type KindSource interface {
	// KindDoc returns the committed document of typ at version.
	KindDoc(typ, version string) ([]byte, error)
}

// MemKinds is an in-memory KindSource keyed "Type/version".
type MemKinds map[string][]byte

// KindDoc implements KindSource.
func (m MemKinds) KindDoc(typ, version string) ([]byte, error) {
	data, ok := m[typ+"/"+version]
	if !ok {
		return nil, fmt.Errorf("vet: kind %s/%s not found", typ, version)
	}
	return data, nil
}

// Context carries one setup through the analyzers.
type Context struct {
	// Setup is the parsed setup under analysis.
	Setup *iac.Setup
	// File is the origin (file path or repository ref) for positions.
	File string
	// Kinds resolves committed kind documents; nil disables the
	// repository-dependent rules (kind-unresolved, schema-mismatch).
	Kinds KindSource

	schemaMu sync.Mutex
	schemas  map[string]*model.Schema // type -> decoded schema (nil if unresolvable)
}

// docIndex returns the document index of the named model (0 = header
// when unknown).
func (ctx *Context) docIndex(name string) int {
	for i, m := range ctx.Setup.Models {
		if m.Name() == name {
			return i + 1
		}
	}
	return 0
}

// schema resolves the committed schema for a type via the setup's kind
// pin and the KindSource, caching results. It returns (nil, false)
// when the context has no KindSource or the kind cannot be resolved —
// resolution failures are reported by their own rule.
func (ctx *Context) schema(typ string) (*model.Schema, bool) {
	if ctx.Kinds == nil || ctx.Setup.Kinds == nil {
		return nil, false
	}
	ctx.schemaMu.Lock()
	defer ctx.schemaMu.Unlock()
	if ctx.schemas == nil {
		ctx.schemas = map[string]*model.Schema{}
	}
	if s, cached := ctx.schemas[typ]; cached {
		return s, s != nil
	}
	var s *model.Schema
	if ver, ok := ctx.Setup.Kinds[typ]; ok {
		if data, err := ctx.Kinds.KindDoc(typ, ver); err == nil {
			if decoded, err := model.DecodeSchema(data); err == nil {
				s = decoded
			}
		}
	}
	ctx.schemas[typ] = s
	return s, s != nil
}

// Run executes every registered rule over the context and returns the
// diagnostics sorted by document, rule, then message.
func Run(ctx *Context) []Diagnostic {
	return run(ctx, func(Rule) bool { return true })
}

func run(ctx *Context, want func(Rule) bool) []Diagnostic {
	var out []Diagnostic
	for _, r := range Rules() {
		if !want(r) {
			continue
		}
		for _, d := range r.Run(ctx) {
			if d.Rule == "" {
				d.Rule = r.ID
			}
			if d.File == "" {
				d.File = ctx.File
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Doc != b.Doc {
			return a.Doc < b.Doc
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}

// RunSetup analyzes an already-parsed setup.
func RunSetup(s *iac.Setup, kinds KindSource) []Diagnostic {
	return Run(&Context{Setup: s, File: s.Name, Kinds: kinds})
}

// RunData parses and analyzes a raw setup configuration. A config that
// does not parse yields the single V000 parse-error diagnostic.
func RunData(file string, data []byte, kinds KindSource) []Diagnostic {
	s, err := iac.Parse(data)
	if err != nil {
		return []Diagnostic{{
			Rule: "V000", Severity: Error, File: file,
			Message: fmt.Sprintf("setup does not parse: %v", err),
		}}
	}
	return Run(&Context{Setup: s, File: file, Kinds: kinds})
}

// RunProfileData parses and analyzes a standalone device-profile
// document — the "dbox vet" path for committed profiles and capture
// output. A profile that does not parse yields the single V000
// parse-error diagnostic; a parsed one runs through the
// profile-unsatisfiable analyzer (V018) wrapped in a synthetic
// header-only setup, so standalone and setup-embedded profiles get
// identical findings.
func RunProfileData(file string, data []byte) []Diagnostic {
	p, err := profile.Parse(data)
	if err != nil {
		return []Diagnostic{{
			Rule: "V000", Severity: Error, File: file,
			Message: fmt.Sprintf("profile does not parse: %v", err),
		}}
	}
	s := &iac.Setup{Name: p.Name, Profile: p}
	return run(&Context{Setup: s, File: file}, func(r Rule) bool {
		return r.ID == "V018"
	})
}

// CheckDoc runs the document-scope rules (topic syntax, config bounds)
// over a single model document — the deploy-path check of "dbox run".
func CheckDoc(doc model.Doc) []Diagnostic {
	s := &iac.Setup{Name: doc.Name(), Models: []model.Doc{doc}}
	return run(&Context{Setup: s, File: doc.Name()}, func(r Rule) bool {
		return r.Scope == DocScope
	})
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Text renders diagnostics one per line.
func Text(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary renders diagnostics on a single line ("; "-joined), for
// embedding in error messages.
func Summary(diags []Diagnostic) string {
	parts := make([]string, len(diags))
	for i, d := range diags {
		parts[i] = fmt.Sprintf("%s %s: %s", d.Rule, d.Severity, d.Message)
	}
	return strings.Join(parts, "; ")
}

// Bounds is an inclusive numeric range for a device config key.
type Bounds struct {
	Min, Max float64
}

var (
	boundsMu     sync.RWMutex
	configBounds = map[string]map[string]Bounds{}
)

// DeclareConfigBounds registers the valid range of a meta config key
// for a device type. Kind libraries (internal/device) declare their
// sensor/actuator bounds here; the config-bounds analyzer checks model
// documents against them.
func DeclareConfigBounds(typ, key string, min, max float64) {
	boundsMu.Lock()
	defer boundsMu.Unlock()
	m, ok := configBounds[typ]
	if !ok {
		m = map[string]Bounds{}
		configBounds[typ] = m
	}
	m[key] = Bounds{Min: min, Max: max}
}

// declaredBounds returns the registered bounds for a type (nil if none).
func declaredBounds(typ string) map[string]Bounds {
	boundsMu.RLock()
	defer boundsMu.RUnlock()
	return configBounds[typ]
}
