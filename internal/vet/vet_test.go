package vet_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/iac"
	"repro/internal/model"
	"repro/internal/vet"
)

func TestSeverityStringsAndJSON(t *testing.T) {
	cases := map[vet.Severity]string{
		vet.Info:    "info",
		vet.Warning: "warning",
		vet.Error:   "error",
	}
	for sev, want := range cases {
		if sev.String() != want {
			t.Errorf("String(%d) = %q", int(sev), sev.String())
		}
		data, err := json.Marshal(sev)
		if err != nil || string(data) != `"`+want+`"` {
			t.Errorf("Marshal(%v) = %s, %v", sev, data, err)
		}
		var back vet.Severity
		if err := json.Unmarshal(data, &back); err != nil || back != sev {
			t.Errorf("Unmarshal(%s) = %v, %v", data, back, err)
		}
	}
	var s vet.Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity unmarshaled without error")
	}
}

func TestRegisteredRuleSuite(t *testing.T) {
	rules := vet.Rules()
	if len(rules) < 8 {
		t.Fatalf("only %d rules registered, want >= 8", len(rules))
	}
	want := map[string]string{
		"V001": "dangling-attach",
		"V002": "duplicate-attach",
		"V003": "attach-cycle",
		"V004": "orphan-model",
		"V005": "missing-kind-ref",
		"V006": "kind-unresolved",
		"V007": "schema-mismatch",
		"V008": "bad-topic",
		"V009": "topic-collision",
		"V010": "subscription-overlap",
		"V011": "config-bounds",
		"V012": "bad-meta",
		"V013": "chaos-target",
		"V014": "unseeded-nondeterminism",
		"V015": "swarm-underprovisioned",
		"V016": "swarm-unsurvivable",
	}
	byID := map[string]vet.Rule{}
	for i, r := range rules {
		byID[r.ID] = r
		if i > 0 && rules[i-1].ID >= r.ID {
			t.Errorf("rules out of ID order: %s before %s", rules[i-1].ID, r.ID)
		}
		if r.Doc == "" {
			t.Errorf("rule %s has no doc line", r.ID)
		}
	}
	for id, name := range want {
		r, ok := byID[id]
		if !ok {
			t.Errorf("rule %s not registered", id)
			continue
		}
		if r.Name != name {
			t.Errorf("rule %s named %q, want %q", id, r.Name, name)
		}
	}
}

func TestRegisterRuleDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate rule ID did not panic")
		}
	}()
	vet.RegisterRule(vet.Rule{ID: "V001", Name: "imposter", Run: func(*vet.Context) []vet.Diagnostic { return nil }})
}

func TestDiagnosticString(t *testing.T) {
	d := vet.Diagnostic{
		Rule: "V001", Severity: vet.Error, File: "conf.yaml", Doc: 2,
		Message: `"Room" attaches unknown model "Ghost"`,
	}
	want := `conf.yaml#2: V001 error: "Room" attaches unknown model "Ghost"`
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
	d.File = ""
	if !strings.HasPrefix(d.String(), "setup#2:") {
		t.Errorf("no-file String() = %q", d.String())
	}
}

func TestRunDataParseFailure(t *testing.T) {
	diags := vet.RunData("broken.yaml", []byte("not a setup header"), nil)
	if len(diags) != 1 || diags[0].Rule != "V000" || diags[0].Severity != vet.Error {
		t.Fatalf("diags = %+v", diags)
	}
	if diags[0].File != "broken.yaml" {
		t.Errorf("file = %q", diags[0].File)
	}
}

func TestRunDataHeaderOnlySetupIsClean(t *testing.T) {
	diags := vet.RunData("minimal", []byte("setup: minimal\n"), nil)
	if len(diags) != 0 {
		t.Errorf("header-only setup produced %+v", diags)
	}
}

func TestHasErrorsAndErrors(t *testing.T) {
	diags := []vet.Diagnostic{
		{Rule: "V004", Severity: vet.Warning},
		{Rule: "V001", Severity: vet.Error},
		{Rule: "V005", Severity: vet.Info},
	}
	if !vet.HasErrors(diags) {
		t.Error("HasErrors = false")
	}
	errs := vet.Errors(diags)
	if len(errs) != 1 || errs[0].Rule != "V001" {
		t.Errorf("Errors = %+v", errs)
	}
	if vet.HasErrors(errs[:0]) {
		t.Error("HasErrors(empty) = true")
	}
}

func TestTextAndSummary(t *testing.T) {
	diags := []vet.Diagnostic{
		{Rule: "V001", Severity: vet.Error, File: "s", Doc: 1, Message: "one"},
		{Rule: "V009", Severity: vet.Error, File: "s", Doc: 2, Message: "two"},
	}
	text := vet.Text(diags)
	if strings.Count(text, "\n") != 2 || !strings.Contains(text, "V009") {
		t.Errorf("Text = %q", text)
	}
	sum := vet.Summary(diags)
	if sum != "V001 error: one; V009 error: two" {
		t.Errorf("Summary = %q", sum)
	}
}

func TestRunSortsAndStampsDiagnostics(t *testing.T) {
	// Two dangling attaches in different documents: output must carry
	// the rule ID and file and come back document-ordered.
	s := &iac.Setup{
		Name:  "sorted",
		Kinds: map[string]string{"Room": "v1"},
		Models: []model.Doc{
			mkdoc("Room", "a", map[string]any{"meta.attach": []any{"nope1"}}),
			mkdoc("Room", "b", map[string]any{"meta.attach": []any{"nope2"}}),
		},
	}
	diags := vet.Run(&vet.Context{Setup: s, File: "sorted.yaml"})
	var v001 []vet.Diagnostic
	for _, d := range diags {
		if d.Rule == "V001" {
			v001 = append(v001, d)
		}
	}
	if len(v001) != 2 {
		t.Fatalf("V001 diags = %+v", diags)
	}
	if v001[0].Doc != 1 || v001[1].Doc != 2 {
		t.Errorf("order = %d, %d", v001[0].Doc, v001[1].Doc)
	}
	for _, d := range v001 {
		if d.File != "sorted.yaml" {
			t.Errorf("file not stamped: %+v", d)
		}
	}
}

func TestCheckDocRunsOnlyDocScopeRules(t *testing.T) {
	// A doc with a bad topic AND a dangling attach: CheckDoc must
	// report the topic (DocScope V008) but not the attach (SetupScope
	// V001), which only makes sense against a whole setup.
	doc := mkdoc("Lamp", "L1", map[string]any{
		"meta.topic":  "bad/+/wildcard",
		"meta.attach": []any{"ghost"},
	})
	diags := vet.CheckDoc(doc)
	ids := ruleIDs(diags)
	if !ids["V008"] {
		t.Errorf("V008 missing: %+v", diags)
	}
	if ids["V001"] {
		t.Errorf("setup-scope rule ran on a single doc: %+v", diags)
	}
}

func TestMemKinds(t *testing.T) {
	mem := vet.MemKinds{"Lamp/v1": []byte("kind: Lamp\n")}
	if data, err := mem.KindDoc("Lamp", "v1"); err != nil || string(data) != "kind: Lamp\n" {
		t.Errorf("KindDoc = %q, %v", data, err)
	}
	if _, err := mem.KindDoc("Lamp", "v2"); err == nil {
		t.Error("missing version resolved")
	}
}

// mkdoc builds a model document with valid meta plus extra paths.
func mkdoc(typ, name string, extra map[string]any) model.Doc {
	d := model.Doc{}
	d.SetMeta(model.Meta{Type: typ, Version: "v1", Name: name, Managed: true})
	for k, v := range extra {
		d.Set(k, v)
	}
	return d
}

// ruleIDs collects the distinct rule IDs in a diagnostic list.
func ruleIDs(diags []vet.Diagnostic) map[string]bool {
	ids := map[string]bool{}
	for _, d := range diags {
		ids[d.Rule] = true
	}
	return ids
}
