package vet_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/iac"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/vet"
)

// setup builds a test setup whose header references every used type at
// v1, so V005 stays quiet unless a test withholds a reference.
func setup(models ...model.Doc) *iac.Setup {
	kinds := map[string]string{}
	for _, m := range models {
		if t := m.Type(); t != "" {
			kinds[t] = "v1"
		}
	}
	return &iac.Setup{Name: "t", Kinds: kinds, Models: models}
}

// exactIDs asserts the distinct rule IDs of the diagnostics are exactly
// the expected set.
func exactIDs(t *testing.T, diags []vet.Diagnostic, want ...string) {
	t.Helper()
	got := make([]string, 0, len(diags))
	for id := range ruleIDs(diags) {
		got = append(got, id)
	}
	sort.Strings(got)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rule IDs = %v, want %v\ndiagnostics:\n%s", got, want, vet.Text(diags))
	}
}

func TestDanglingAttach(t *testing.T) {
	bad := setup(mkdoc("Room", "room", map[string]any{"meta.attach": []any{"ghost"}}))
	exactIDs(t, vet.RunSetup(bad, nil), "V001")

	good := setup(
		mkdoc("Room", "room", map[string]any{"meta.attach": []any{"o1"}}),
		mkdoc("Occupancy", "o1", nil),
	)
	exactIDs(t, vet.RunSetup(good, nil))
}

func TestDuplicateAttach(t *testing.T) {
	bad := setup(
		mkdoc("Room", "room", map[string]any{"meta.attach": []any{"o1", "o1"}}),
		mkdoc("Occupancy", "o1", nil),
	)
	exactIDs(t, vet.RunSetup(bad, nil), "V002")

	// The same child under two DIFFERENT parents is legal (supplychain
	// attaches cargo sensors to both a truck and the cold-chain audit
	// scene) and must not fire.
	multiParent := setup(
		mkdoc("Scene", "top", map[string]any{"meta.attach": []any{"a", "b"}}),
		mkdoc("Scene", "a", map[string]any{"meta.attach": []any{"shared"}}),
		mkdoc("Scene", "b", map[string]any{"meta.attach": []any{"shared"}}),
		mkdoc("Occupancy", "shared", nil),
	)
	exactIDs(t, vet.RunSetup(multiParent, nil))
}

func TestAttachCycle(t *testing.T) {
	// Two scenes attaching each other. The cycle also leaves the pair
	// unreachable from any root, so the orphan warning fires alongside.
	bad := setup(
		mkdoc("Scene", "a", map[string]any{"meta.attach": []any{"b"}}),
		mkdoc("Scene", "b", map[string]any{"meta.attach": []any{"a"}}),
	)
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V003", "V004")
	if !vet.HasErrors(diags) {
		t.Error("cycle not error-severity")
	}

	chain := setup(
		mkdoc("Scene", "a", map[string]any{"meta.attach": []any{"b"}}),
		mkdoc("Scene", "b", map[string]any{"meta.attach": []any{"c"}}),
		mkdoc("Occupancy", "c", nil),
	)
	exactIDs(t, vet.RunSetup(chain, nil))
}

func TestOrphanModel(t *testing.T) {
	bad := setup(
		mkdoc("Room", "room", map[string]any{"meta.attach": []any{"o1"}}),
		mkdoc("Occupancy", "o1", nil),
		mkdoc("Occupancy", "stray", nil),
	)
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V004")
	if vet.HasErrors(diags) {
		t.Error("orphan should be a warning, not an error")
	}

	// Single-model setups have nothing to orphan.
	exactIDs(t, vet.RunSetup(setup(mkdoc("Occupancy", "solo", nil)), nil))
}

func TestMissingKindRef(t *testing.T) {
	bad := setup(mkdoc("Room", "room", nil))
	delete(bad.Kinds, "Room")
	bad.Kinds["Lamp"] = "v3" // referenced but unused: advisory
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V005")
	var sevs []vet.Severity
	for _, d := range diags {
		sevs = append(sevs, d.Severity)
	}
	sort.Slice(sevs, func(i, j int) bool { return sevs[i] < sevs[j] })
	if len(sevs) != 2 || sevs[0] != vet.Info || sevs[1] != vet.Error {
		t.Errorf("severities = %v (want one info for the unused ref, one error for the missing one)", sevs)
	}

	exactIDs(t, vet.RunSetup(setup(mkdoc("Room", "room", nil)), nil))
}

// lampSchema is a minimal committed kind document for V006/V007 tests.
func lampSchema(t *testing.T) []byte {
	t.Helper()
	data, err := model.EncodeSchema(&model.Schema{
		Type: "Lamp", Version: "v1",
		Fields: map[string]model.FieldSpec{
			"brightness": {Kind: model.KindFloat, Min: model.Bound(0), Max: model.Bound(1), Default: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestKindUnresolved(t *testing.T) {
	doc := mkdoc("Lamp", "l1", map[string]any{"brightness": 0.5})
	mem := vet.MemKinds{"Lamp/v1": lampSchema(t)}

	// Pinned version absent from the repository.
	missing := setup(doc)
	missing.Kinds["Lamp"] = "v9"
	exactIDs(t, vet.RunSetup(missing, mem), "V006")

	// Committed doc does not decode as a schema.
	garbage := setup(doc)
	exactIDs(t, vet.RunSetup(garbage, vet.MemKinds{"Lamp/v1": []byte("42\n")}), "V006")

	// Committed doc declares a different type: mis-tagged.
	wrongType, err := model.EncodeSchema(&model.Schema{Type: "Fan", Version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	exactIDs(t, vet.RunSetup(setup(doc), vet.MemKinds{"Lamp/v1": wrongType}), "V006")

	// Resolvable: clean. Without a kind source the rule stays quiet.
	exactIDs(t, vet.RunSetup(setup(doc), mem))
	exactIDs(t, vet.RunSetup(missing, nil))
}

func TestSchemaMismatch(t *testing.T) {
	mem := vet.MemKinds{"Lamp/v1": lampSchema(t)}

	outOfRange := setup(mkdoc("Lamp", "l1", map[string]any{"brightness": 7.5}))
	exactIDs(t, vet.RunSetup(outOfRange, mem), "V007")

	unknownField := setup(mkdoc("Lamp", "l1", map[string]any{"brightness": 0.5, "wattage": 60}))
	exactIDs(t, vet.RunSetup(unknownField, mem), "V007")

	exactIDs(t, vet.RunSetup(setup(mkdoc("Lamp", "l1", map[string]any{"brightness": 0.5})), mem))
}

func TestBadTopic(t *testing.T) {
	wildInName := setup(mkdoc("Lamp", "l1", map[string]any{"meta.topic": "home/+/lamp"}))
	exactIDs(t, vet.RunSetup(wildInName, nil), "V008")

	badFilter := setup(mkdoc("Lamp", "l1", map[string]any{"meta.subscribe": []any{"a/#/b"}}))
	exactIDs(t, vet.RunSetup(badFilter, nil), "V008")

	notAString := setup(mkdoc("Lamp", "l1", map[string]any{"meta.subscribe": []any{int64(3)}}))
	exactIDs(t, vet.RunSetup(notAString, nil), "V008")

	good := setup(mkdoc("Lamp", "l1", map[string]any{
		"meta.topic":     "home/lamp",
		"meta.subscribe": []any{"home/#"},
	}))
	exactIDs(t, vet.RunSetup(good, nil))
}

func TestTopicCollision(t *testing.T) {
	bad := setup(
		mkdoc("Lamp", "l1", map[string]any{"meta.topic": "shared/status"}),
		mkdoc("Fan", "f1", map[string]any{"meta.topic": "shared/status", "meta.attach": []any{"l1"}}),
	)
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V009")
	if !strings.Contains(vet.Text(diags), `"l1"`) {
		t.Errorf("collision does not name the first claimant: %s", vet.Text(diags))
	}

	// Default topics derive from unique model names: no collision.
	good := setup(
		mkdoc("Lamp", "l1", nil),
		mkdoc("Fan", "f1", map[string]any{"meta.attach": []any{"l1"}}),
	)
	exactIDs(t, vet.RunSetup(good, nil))
}

func TestSubscriptionOverlap(t *testing.T) {
	bad := setup(
		mkdoc("Lamp", "l1", map[string]any{"meta.subscribe": []any{"home/+/status"}}),
		mkdoc("Fan", "f1", map[string]any{"meta.subscribe": []any{"home/kitchen/#"}, "meta.attach": []any{"l1"}}),
	)
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V010")
	if vet.HasErrors(diags) {
		t.Error("overlap should be a warning, not an error")
	}

	// Disjoint filters, and overlapping filters within ONE model, are
	// both fine.
	good := setup(
		mkdoc("Lamp", "l1", map[string]any{"meta.subscribe": []any{"home/a", "home/a/#"}}),
		mkdoc("Fan", "f1", map[string]any{"meta.subscribe": []any{"garden/b"}, "meta.attach": []any{"l1"}}),
	)
	exactIDs(t, vet.RunSetup(good, nil))
}

func TestConfigBounds(t *testing.T) {
	for _, c := range []struct {
		name   string
		config map[string]any
	}{
		{"zero interval", map[string]any{"interval_ms": int64(0)}},
		{"negative delay", map[string]any{"actuation_delay_ms": int64(-5)}},
		{"probability above 1", map[string]any{"trigger_prob": 1.5}},
		{"inverted range", map[string]any{"temp_min": 30.0, "temp_max": 20.0}},
	} {
		extra := map[string]any{}
		for k, v := range c.config {
			extra["meta."+k] = v
		}
		diags := vet.RunSetup(setup(mkdoc("Occupancy", "o1", extra)), nil)
		exactIDs(t, diags, "V011")
		if len(diags) == 0 {
			t.Errorf("%s: no diagnostics", c.name)
		}
	}

	// Bounds declared by a kind library.
	vet.DeclareConfigBounds("BoundsTestKind", "gain", 0, 10)
	over := setup(mkdoc("BoundsTestKind", "b1", map[string]any{"meta.gain": 99.0}))
	exactIDs(t, vet.RunSetup(over, nil), "V011")
	within := setup(mkdoc("BoundsTestKind", "b1", map[string]any{"meta.gain": 9.0}))
	exactIDs(t, vet.RunSetup(within, nil))

	good := setup(mkdoc("Occupancy", "o1", map[string]any{
		"meta.interval_ms":  int64(20),
		"meta.trigger_prob": 0.5,
		"meta.seed":         int64(9), // V014 demands a seed beside a fractional prob
		"meta.temp_min":     18.0,
		"meta.temp_max":     26.0,
	}))
	exactIDs(t, vet.RunSetup(good, nil))
}

func TestBadMeta(t *testing.T) {
	noName := model.Doc{"meta": map[string]any{"type": "Lamp"}}
	bad := &iac.Setup{Name: "t", Kinds: map[string]string{"Lamp": "v1"}, Models: []model.Doc{noName}}
	exactIDs(t, vet.RunSetup(bad, nil), "V012")

	dup := setup(
		mkdoc("Lamp", "same", nil),
		mkdoc("Fan", "same", nil),
	)
	diags := vet.RunSetup(dup, nil)
	if !ruleIDs(diags)["V012"] {
		t.Errorf("duplicate name not reported: %s", vet.Text(diags))
	}
}

// The kitchen-sink regression: one deliberately broken setup, one
// exact expected rule-ID set.
func TestBrokenSetupYieldsExactRuleSet(t *testing.T) {
	mem := vet.MemKinds{"Lamp/v1": lampSchema(t)}
	s := &iac.Setup{
		Name:  "broken",
		Kinds: map[string]string{"Lamp": "v1", "Ghost": "v1"},
		Models: []model.Doc{
			// V001 (dangling) + V002 (duplicate child).
			mkdoc("Lamp", "l1", map[string]any{
				"brightness":  0.5,
				"meta.attach": []any{"nope", "l2", "l2"},
			}),
			// V007 (brightness out of range) + V008 (wildcard topic).
			mkdoc("Lamp", "l2", map[string]any{
				"brightness": 9.9,
				"meta.topic": "a/+/b",
			}),
			// V005 (no kind ref for type Stray) + V011 (bad probability).
			mkdoc("Stray", "s1", map[string]any{"meta.smoke_prob": 2.0}),
		},
	}
	diags := vet.RunSetup(s, mem)
	// V005 also flags the unused Ghost reference; V006 flags Ghost/v1
	// missing from the kind source; V004 flags the unattached stray.
	exactIDs(t, diags, "V001", "V002", "V004", "V005", "V006", "V007", "V008", "V011")
}

func TestChaosTarget(t *testing.T) {
	// Targets resolving against model names, default publish topics,
	// and subscription filters are all accepted.
	good := setup(
		mkdoc("Lamp", "l1", nil),
		mkdoc("Fan", "f1", map[string]any{"meta.subscribe": []any{"ctl/fan/#"}, "meta.attach": []any{"l1"}}),
	)
	good.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{Fault: chaos.FaultDropout, Digi: "l1"},
		{Fault: chaos.FaultDrop, Topic: "digibox/l1/status", Rate: 0.5},
		{Fault: chaos.FaultDrop, Topic: "ctl/fan/speed", Rate: 0.5},
	}}
	exactIDs(t, vet.RunSetup(good, nil))

	// Dangling digi, unmatched topic, and invalid filter syntax each
	// get their own diagnostic.
	bad := setup(mkdoc("Lamp", "l1", nil))
	bad.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{Fault: chaos.FaultStuck, Digi: "ghost"},
		{Fault: chaos.FaultDrop, Topic: "nowhere/#", Rate: 0.5},
		{Fault: chaos.FaultDrop, Topic: "bad/+wild", Rate: 1},
	}}
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V013")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3:\n%s", len(diags), vet.Text(diags))
	}
	if !strings.Contains(vet.Text(diags), `"ghost"`) {
		t.Errorf("dangling digi not named: %s", vet.Text(diags))
	}

	// A structurally invalid plan is reported through the same rule.
	malformed := setup(mkdoc("Lamp", "l1", nil))
	malformed.Chaos = &chaos.Plan{Name: "p", Events: []chaos.Event{
		{Fault: chaos.FaultDisconnect}, // missing client
	}}
	exactIDs(t, vet.RunSetup(malformed, nil), "V013")

	// No plan: nothing to check.
	exactIDs(t, vet.RunSetup(setup(mkdoc("Lamp", "l1", nil)), nil))
}

func TestUnseededNondeterminism(t *testing.T) {
	// A fractional probability without meta.seed is rejected.
	unseeded := setup(mkdoc("Occupancy", "o1", map[string]any{"meta.trigger_prob": 0.3}))
	diags := vet.RunSetup(unseeded, nil)
	exactIDs(t, diags, "V014")
	if !strings.Contains(vet.Text(diags), "trigger_prob") {
		t.Errorf("diagnostic does not name the config key: %s", vet.Text(diags))
	}

	// An explicit seed clears it; so do the deterministic edges 0 and 1.
	for _, cfg := range []map[string]any{
		{"meta.trigger_prob": 0.3, "meta.seed": int64(4)},
		{"meta.trigger_prob": 0.0},
		{"meta.trigger_prob": 1.0},
	} {
		exactIDs(t, vet.RunSetup(setup(mkdoc("Occupancy", "o1", cfg)), nil))
	}

	// A chaos plan with rate- or jitter-based faults needs a plan seed.
	rnd := setup(mkdoc("Lamp", "l1", nil))
	rnd.Chaos = &chaos.Plan{Name: "p", Events: []chaos.Event{
		{Fault: chaos.FaultDrop, Topic: "digibox/l1/status", Rate: 0.5},
	}}
	exactIDs(t, vet.RunSetup(rnd, nil), "V014")
	rnd.Chaos.Seed = 11
	exactIDs(t, vet.RunSetup(rnd, nil))

	jitter := setup(mkdoc("Lamp", "l1", nil))
	jitter.Chaos = &chaos.Plan{Name: "p", Events: []chaos.Event{
		{Fault: chaos.FaultDelay, Topic: "digibox/l1/status",
			Delay: 5 * time.Millisecond, Jitter: 5 * time.Millisecond},
	}}
	exactIDs(t, vet.RunSetup(jitter, nil), "V014")

	// Deterministic faults need no seed: rate 1 always fires.
	det := setup(mkdoc("Lamp", "l1", nil))
	det.Chaos = &chaos.Plan{Name: "p", Events: []chaos.Event{
		{Fault: chaos.FaultDrop, Topic: "digibox/l1/status", Rate: 1},
		{Fault: chaos.FaultDropout, Digi: "l1"},
	}}
	exactIDs(t, vet.RunSetup(det, nil))
}

func TestSwarmShards(t *testing.T) {
	fleet := func(replicas int64) *iac.Setup {
		return setup(mkdoc("Occupancy", "fleet", map[string]any{
			"meta.replicas": replicas,
		}))
	}

	// 1500 devices, no swarm section: warn with the shard hint.
	big := fleet(1500)
	diags := vet.RunSetup(big, nil)
	exactIDs(t, diags, "V015")
	if vet.HasErrors(diags) {
		t.Error("underprovisioned swarm should be a warning, not an error")
	}
	if !strings.Contains(diags[0].Message, "shards: 2") {
		t.Errorf("hint missing required shard count: %s", diags[0].Message)
	}

	// Declaring too few shards still warns; enough shards is clean.
	under := fleet(2500)
	under.Swarm = &iac.SwarmConfig{Shards: 2}
	exactIDs(t, vet.RunSetup(under, nil), "V015")

	enough := fleet(2500)
	enough.Swarm = &iac.SwarmConfig{Shards: 3}
	exactIDs(t, vet.RunSetup(enough, nil))

	// At or under the guidance no section is needed, and scenes do not
	// count as devices.
	exactIDs(t, vet.RunSetup(fleet(1000), nil))
	scenes := setup(
		mkdoc("Room", "room", map[string]any{
			"meta.attach":   []any{"o1"},
			"meta.replicas": int64(5000), // a scene's replicas are not devices
		}),
		mkdoc("Occupancy", "o1", nil),
	)
	exactIDs(t, vet.RunSetup(scenes, nil))
}

func TestSwarmUnsurvivable(t *testing.T) {
	base := func() *iac.Setup {
		s := setup(mkdoc("Lamp", "l1", nil))
		s.Swarm = &iac.SwarmConfig{Shards: 2}
		return s
	}

	// Staggered kills whose for_ms windows never overlap keep a
	// survivor at every instant: clean.
	ok := base()
	ok.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{At: time.Second, Fault: chaos.FaultShardKill, Shard: 0, For: time.Second},
		{At: 3 * time.Second, Fault: chaos.FaultShardKill, Shard: 1, For: time.Second},
	}}
	exactIDs(t, vet.RunSetup(ok, nil))

	// Unbounded kills of both shards leave no shard for failover to
	// re-anchor onto: error with the exact fix.
	bad := base()
	bad.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{At: time.Second, Fault: chaos.FaultShardKill, Shard: 0},
		{At: 2 * time.Second, Fault: chaos.FaultShardKill, Shard: 1},
	}}
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V016")
	if !vet.HasErrors(diags) {
		t.Error("unsurvivable plan should be an error")
	}
	if !strings.Contains(diags[0].Message, "swarm.shards to 3") {
		t.Errorf("hint missing the shard fix: %s", diags[0].Message)
	}

	// A for_ms revive landing exactly on the second kill's offset
	// applies first — the plan gets the benefit of the doubt.
	race := base()
	race.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{At: time.Second, Fault: chaos.FaultShardKill, Shard: 0, For: time.Second},
		{At: 2 * time.Second, Fault: chaos.FaultShardKill, Shard: 1},
	}}
	exactIDs(t, vet.RunSetup(race, nil))

	// An explicit shard-revive restores survivability the same way.
	rev := base()
	rev.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{At: time.Second, Fault: chaos.FaultShardKill, Shard: 0},
		{At: 2 * time.Second, Fault: chaos.FaultShardRevive, Shard: 0},
		{At: 3 * time.Second, Fault: chaos.FaultShardKill, Shard: 1},
	}}
	exactIDs(t, vet.RunSetup(rev, nil))

	// A shard index the setup does not provision would silently hit
	// nothing.
	oob := base()
	oob.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{At: time.Second, Fault: chaos.FaultShardKill, Shard: 5},
	}}
	diags = vet.RunSetup(oob, nil)
	exactIDs(t, diags, "V016")
	if !strings.Contains(diags[0].Message, "valid indices 0..1") {
		t.Errorf("out-of-range message missing the valid range: %s", diags[0].Message)
	}

	// Shard faults without any swarm section: the fix names a shard
	// count that leaves a survivor (max index 1 -> shards: 3).
	nosec := setup(mkdoc("Lamp", "l1", nil))
	nosec.Chaos = &chaos.Plan{Name: "p", Seed: 1, Events: []chaos.Event{
		{At: time.Second, Fault: chaos.FaultShardKill, Shard: 1},
	}}
	diags = vet.RunSetup(nosec, nil)
	exactIDs(t, diags, "V016")
	if !strings.Contains(diags[0].Message, "shards: 3") {
		t.Errorf("hint missing the shard count: %s", diags[0].Message)
	}
}

func TestDashPortCollision(t *testing.T) {
	withCtl := func(listen string, models ...model.Doc) *iac.Setup {
		s := setup(models...)
		s.Ctl = &iac.CtlConfig{Listen: listen}
		return s
	}

	// A device claiming the control API's port: error, and the hint
	// names the next free address so the fix is mechanical.
	bad := withCtl("127.0.0.1:7825",
		mkdoc("Gateway", "gw", map[string]any{"meta.port": int64(7825)}))
	diags := vet.RunSetup(bad, nil)
	exactIDs(t, diags, "V017")
	if !strings.Contains(diags[0].Message, "127.0.0.1:7826") {
		t.Errorf("hint missing the next free address: %s", diags[0].Message)
	}

	// _port-suffixed config keys count as claims too.
	suffix := withCtl("127.0.0.1:8080",
		mkdoc("Gateway", "gw", map[string]any{"meta.listen_port": int64(8080)}))
	exactIDs(t, vet.RunSetup(suffix, nil), "V017")

	// Distinct ports coexist; a setup with no ctl section is exempt.
	ok := withCtl("127.0.0.1:7825",
		mkdoc("Gateway", "gw", map[string]any{"meta.port": int64(8080)}))
	exactIDs(t, vet.RunSetup(ok, nil))
	exactIDs(t, vet.RunSetup(setup(mkdoc("Lamp", "l1", nil)), nil))

	// A listen address that is not host:port never reaches deploy.
	exactIDs(t, vet.RunSetup(withCtl("7825", mkdoc("Lamp", "l1", nil)), nil), "V017")
	exactIDs(t, vet.RunSetup(withCtl("127.0.0.1:http", mkdoc("Lamp", "l1", nil)), nil), "V017")
}

// popProfile builds a satisfiable single-population profile for kind.
func popProfile(kind string) *profile.Profile {
	return &profile.Profile{
		Name: "p",
		Seed: 1,
		Populations: []profile.Population{
			{Kind: kind, Count: 2,
				Cadence: profile.Cadence{Dist: profile.DistFixed, Mean: 100 * time.Millisecond}},
		},
	}
}

func TestProfileUnsatisfiable(t *testing.T) {
	// A satisfiable profile whose population kind matches a pinned kind
	// reference (case-insensitively) is clean.
	good := setup(mkdoc("Thermostat", "t1", nil))
	good.Profile = popProfile("thermostat")
	exactIDs(t, vet.RunSetup(good, nil))

	// Zero cadence mean: the population can never fire.
	dead := setup(mkdoc("Thermostat", "t1", nil))
	dead.Profile = popProfile("thermostat")
	dead.Profile.Populations[0].Cadence.Mean = 0
	diags := vet.RunSetup(dead, nil)
	exactIDs(t, diags, "V018")
	if !strings.Contains(vet.Text(diags), "fix:") {
		t.Errorf("V018 diagnostic missing fix-it hint:\n%s", vet.Text(diags))
	}

	// Empty diurnal window.
	night := setup(mkdoc("Thermostat", "t1", nil))
	night.Profile = popProfile("thermostat")
	night.Profile.Populations[0].Cadence.Diurnal = &profile.Diurnal{Start: 9, End: 9}
	exactIDs(t, vet.RunSetup(night, nil), "V018")

	// A population kind with no kind reference in the header.
	ghost := setup(mkdoc("Thermostat", "t1", nil))
	ghost.Profile = popProfile("camera")
	diags = vet.RunSetup(ghost, nil)
	exactIDs(t, diags, "V018")
	if !strings.Contains(vet.Text(diags), "kinds entry") {
		t.Errorf("unknown-kind diagnostic missing fix-it hint:\n%s", vet.Text(diags))
	}

	// A profile that fails structural validation is reported, not
	// silently skipped.
	broken := setup(mkdoc("Thermostat", "t1", nil))
	broken.Profile = popProfile("thermostat")
	broken.Profile.Populations[0].Cadence.Dist = "weibull"
	exactIDs(t, vet.RunSetup(broken, nil), "V018")

	// A setup with no kind references skips the kind check (standalone
	// profiles vet this way).
	free := &iac.Setup{Name: "t", Profile: popProfile("anything")}
	exactIDs(t, vet.RunSetup(free, nil))
}

func TestRunProfileData(t *testing.T) {
	if diags := vet.RunProfileData("p.yaml", []byte(": not yaml")); !ruleIDs(diags)["V000"] {
		t.Fatalf("garbage profile = %v, want V000", diags)
	}

	goodData, err := profile.Marshal(popProfile("thermostat"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := vet.RunProfileData("p.yaml", goodData); len(diags) != 0 {
		t.Fatalf("clean profile = %v, want none", diags)
	}

	bad := popProfile("thermostat")
	bad.Populations[0].Cadence.Mean = 0
	badData, err := profile.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	diags := vet.RunProfileData("p.yaml", badData)
	exactIDs(t, diags, "V018")
	if diags[0].File != "p.yaml" {
		t.Errorf("file = %q, want p.yaml", diags[0].File)
	}
}
