package kube

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// nodeAgent is the per-node "kubelet": it watches pods bound to its
// node, instantiates their workloads from the image registry, runs
// them as goroutines, reports phase transitions, and enforces restart
// policy with exponential backoff.
type nodeAgent struct {
	cluster *Cluster
	name    string

	mu      sync.Mutex
	running map[string]*podRuntime
	// stopping blocks new launches once stop() has begun cancelling;
	// without it a watcher event in flight could insert a runtime
	// after the cancel sweep and leave its workload uncancellable.
	stopping bool

	watcher  *podWatcher
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type podRuntime struct {
	cancel   context.CancelFunc
	finished chan struct{}
	// attemptCancel cancels only the current run attempt (chaos
	// pod-crash); the restart loop then starts the next attempt.
	attemptCancel context.CancelFunc
	// pendingCrash records a crash requested while no attempt was
	// live — the pod is reported Running before the first attempt
	// registers, and between restarts during backoff. The loop
	// honours it as soon as the next attempt starts.
	pendingCrash bool
	// generationStopped guards against restarting a pod whose runtime
	// was explicitly stopped (deletion or node shutdown).
	stopped bool
}

func newNodeAgent(c *Cluster, name string) *nodeAgent {
	return &nodeAgent{
		cluster: c,
		name:    name,
		running: map[string]*podRuntime{},
		done:    make(chan struct{}),
	}
}

func (na *nodeAgent) start() {
	name := na.name
	na.watcher = na.cluster.api.watchPods(func(ev PodEvent) bool {
		return ev.Pod.Status.NodeName == name || ev.Type == Deleted
	})
	na.wg.Add(1)
	go func() {
		defer na.wg.Done()
		for {
			select {
			case ev, ok := <-na.watcher.C:
				if !ok {
					return
				}
				na.handle(ev)
			case <-na.done:
				return
			}
		}
	}()
}

func (na *nodeAgent) stop() {
	na.stopOnce.Do(func() {
		close(na.done)
		na.watcher.Close()
		na.mu.Lock()
		na.stopping = true
		for _, rt := range na.running {
			rt.stopped = true
			rt.cancel()
		}
		na.mu.Unlock()
		na.wg.Wait()
	})
}

func (na *nodeAgent) handle(ev PodEvent) {
	switch ev.Type {
	case Added, Modified:
		if ev.Pod.Status.NodeName != na.name {
			return
		}
		if ev.Pod.Status.Phase == PodPending {
			na.launch(ev.Pod)
		}
	case Deleted:
		na.teardown(ev.Pod.Name)
	}
}

func (na *nodeAgent) teardown(podName string) {
	na.mu.Lock()
	rt, ok := na.running[podName]
	if ok {
		rt.stopped = true
		delete(na.running, podName)
	}
	na.mu.Unlock()
	if ok {
		rt.cancel()
	}
}

// launch starts a pod workload; idempotent per pod name.
func (na *nodeAgent) launch(pod *Pod) {
	na.mu.Lock()
	if _, exists := na.running[pod.Name]; exists || na.stopping {
		na.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &podRuntime{cancel: cancel, finished: make(chan struct{})}
	na.running[pod.Name] = rt
	na.mu.Unlock()

	factory, err := na.cluster.lookupImage(pod.Spec.Image)
	if err != nil {
		na.fail(pod.Name, err.Error())
		na.teardown(pod.Name)
		return
	}

	na.cluster.api.updatePod(pod.Name, func(p *Pod) bool {
		p.Status.Phase = PodRunning
		p.Status.StartAt = na.cluster.clock.Now()
		p.Status.Message = "running on " + na.name
		return true
	})
	na.adjustRunning(+1)

	na.wg.Add(1)
	go func() {
		defer na.wg.Done()
		defer close(rt.finished)
		restarts := 0
		for {
			workload, err := factory(envForPod(pod))
			if err != nil {
				na.adjustRunning(-1)
				na.fail(pod.Name, fmt.Sprintf("image %s: %v", pod.Spec.Image, err))
				return
			}
			// Each attempt gets its own derived context so an injected
			// crash (crashPod) kills only this attempt; the pod context
			// stays live and the restart policy decides what follows.
			attemptCtx, attemptCancel := context.WithCancel(ctx)
			na.mu.Lock()
			rt.attemptCancel = attemptCancel
			if rt.pendingCrash {
				rt.pendingCrash = false
				attemptCancel()
			}
			na.mu.Unlock()
			runErr := runGuarded(attemptCtx, workload)

			na.mu.Lock()
			rt.attemptCancel = nil
			stopped := rt.stopped
			na.mu.Unlock()
			if stopped || ctx.Err() != nil {
				attemptCancel()
				na.adjustRunning(-1)
				return
			}
			if runErr == nil && attemptCtx.Err() != nil {
				// The attempt was cancelled but the pod was not stopped:
				// an injected crash. Surface it as a failure so
				// RestartOnFailure pods restart too.
				runErr = fmt.Errorf("crashed: injected fault")
			}
			attemptCancel()

			policy := pod.Spec.RestartPolicy
			shouldRestart := policy == RestartAlways || (policy == RestartOnFailure && runErr != nil)
			if !shouldRestart {
				na.adjustRunning(-1)
				if runErr != nil {
					na.fail(pod.Name, runErr.Error())
				} else {
					na.cluster.api.updatePod(pod.Name, func(p *Pod) bool {
						p.Status.Phase = PodSucceeded
						p.Status.Message = "completed"
						return true
					})
				}
				return
			}
			restarts++
			if m := na.cluster.getMetrics(); m != nil {
				m.restarts.With(digiLabel(pod)).Inc()
			}
			na.cluster.api.updatePod(pod.Name, func(p *Pod) bool {
				p.Status.Restarts = restarts
				if runErr != nil {
					p.Status.Message = fmt.Sprintf("restarting after error: %v", runErr)
				} else {
					p.Status.Message = "restarting"
				}
				return true
			})
			// Exponential backoff capped at 2s keeps crash loops cheap
			// in simulation while preserving the k8s behaviour shape.
			backoff := time.Duration(1<<uint(min(restarts, 5))) * 25 * time.Millisecond
			select {
			case <-na.cluster.clock.After(backoff):
			case <-ctx.Done():
				na.adjustRunning(-1)
				return
			}
		}
	}()
}

// crashPod cancels the current run attempt of a pod on this node,
// reporting whether the pod was running here.
func (na *nodeAgent) crashPod(podName string) bool {
	na.mu.Lock()
	defer na.mu.Unlock()
	rt, ok := na.running[podName]
	if !ok || rt.stopped {
		return false
	}
	if rt.attemptCancel != nil {
		// Cancelling under the mutex pairs with the loop's
		// register/deregister critical sections, so the cancel always
		// hits the attempt it was fetched for.
		rt.attemptCancel()
		return true
	}
	// The pod is live but between attempts (pre-first-register or
	// restart backoff): defer the crash to the next attempt.
	rt.pendingCrash = true
	return true
}

// runGuarded runs a workload, converting panics into errors so one
// faulty digi cannot take down the node agent.
func runGuarded(ctx context.Context, w Workload) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("workload panic: %v", r)
		}
	}()
	return w.Run(ctx)
}

func (na *nodeAgent) fail(podName, msg string) {
	na.cluster.api.updatePod(podName, func(p *Pod) bool {
		p.Status.Phase = PodFailed
		p.Status.Message = msg
		return true
	})
}

func (na *nodeAgent) adjustRunning(delta int) {
	na.cluster.api.updateNode(na.name, func(n *Node) {
		n.Status.Running += delta
		if n.Status.Running < 0 {
			n.Status.Running = 0
		}
	})
}

func envForPod(pod *Pod) map[string]any {
	env := copyAnyMap(pod.Spec.Env)
	if env == nil {
		env = map[string]any{}
	}
	env["POD_NAME"] = pod.Name
	env["NODE_NAME"] = pod.Status.NodeName
	return env
}
