package kube

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func spreadNodes(specs ...[2]any) []*Node {
	var out []*Node
	for _, s := range specs {
		out = append(out, &Node{
			Name:   s[0].(string),
			Spec:   NodeSpec{Capacity: s[1].(int)},
			Status: NodeStatus{Ready: true},
		})
	}
	return out
}

// TestPickNodeSpreadLeastLoaded pins the policy: fewest committed pods
// wins even when another node has more free capacity.
func TestPickNodeSpreadLeastLoaded(t *testing.T) {
	nodes := spreadNodes([2]any{"big", 100}, [2]any{"small", 4})
	assigned := map[string]int{"big": 3, "small": 1}
	// PickNode (capacity policy) would choose big (97 free vs 3 free);
	// spread chooses small (1 committed vs 3).
	if got, _ := PickNode(nodes, nil, assigned); got != "big" {
		t.Fatalf("PickNode = %q, want big", got)
	}
	if got, ok := PickNodeSpread(nodes, nil, assigned); !ok || got != "small" {
		t.Fatalf("PickNodeSpread = %q, want small", got)
	}
}

// TestPickNodeSpreadTieBreakDeterminism shuffles the node list and
// requires the same winner every time: ties on pod count break by
// node name, not input order.
func TestPickNodeSpreadTieBreakDeterminism(t *testing.T) {
	base := spreadNodes(
		[2]any{"node-c", 10}, [2]any{"node-a", 10},
		[2]any{"node-b", 10}, [2]any{"node-d", 10},
	)
	assigned := map[string]int{"node-a": 2, "node-b": 1, "node-c": 1, "node-d": 1}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		shuffled := append([]*Node(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, ok := PickNodeSpread(shuffled, nil, assigned)
		if !ok || got != "node-b" {
			t.Fatalf("iteration %d: PickNodeSpread = %q (ok=%v), want node-b", i, got, ok)
		}
	}
	// All-equal tie: lexicographically smallest name wins.
	empty := map[string]int{}
	for i := 0; i < 50; i++ {
		shuffled := append([]*Node(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, ok := PickNodeSpread(shuffled, nil, empty)
		if !ok || got != "node-a" {
			t.Fatalf("iteration %d: PickNodeSpread = %q (ok=%v), want node-a", i, got, ok)
		}
	}
}

// TestPickNodeSpreadFiltersAndCapacity: not-ready nodes, selector
// mismatches, and full nodes are skipped; no fit reports false.
func TestPickNodeSpreadFiltersAndCapacity(t *testing.T) {
	nodes := spreadNodes([2]any{"a", 1}, [2]any{"b", 1}, [2]any{"c", 1})
	nodes[0].Status.Ready = false
	nodes[1].Labels = map[string]string{"zone": "edge"}
	assigned := map[string]int{"c": 1} // full
	if got, ok := PickNodeSpread(nodes, map[string]string{"zone": "edge"}, assigned); !ok || got != "b" {
		t.Fatalf("selector pick = %q (ok=%v), want b", got, ok)
	}
	if _, ok := PickNodeSpread(nodes, map[string]string{"zone": "nowhere"}, assigned); ok {
		t.Fatal("impossible selector matched")
	}
	if _, ok := PickNodeSpread(nodes[2:], nil, assigned); ok {
		t.Fatal("full node accepted")
	}
}

// TestSchedulerSpreadStrategy runs the strategy through the live
// scheduler: spread pods land one per node before any node takes a
// second, even with skewed capacities that would make the default
// policy pile onto the big node.
func TestSchedulerSpreadStrategy(t *testing.T) {
	c := NewCluster()
	c.AddNode("wide", 100, "local")
	c.AddNode("mid", 50, "local")
	c.AddNode("thin", 10, "local")
	c.Start()
	t.Cleanup(c.Stop)
	c.RegisterImage("digi/block", blockingImage(nil, nil))

	const n = 9
	for i := 0; i < n; i++ {
		err := c.CreatePod(&Pod{
			Name: fmt.Sprintf("spread-%d", i),
			Spec: PodSpec{Image: "digi/block", Strategy: StrategySpread},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitAllRunning(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range c.ListPods() {
		counts[p.Status.NodeName]++
	}
	if counts["wide"] != n/3 || counts["mid"] != n/3 || counts["thin"] != n/3 {
		t.Errorf("placement = %v, want even %d/%d/%d split", counts, n/3, n/3, n/3)
	}
}
