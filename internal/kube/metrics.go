package kube

import (
	"repro/internal/obs"
)

// clusterMetrics bundles the cluster's instrument handles. The struct
// exists (rather than globals) so two testbeds in one process keep
// independent registries; every instrument is nil-safe so unbound
// clusters skip the whole layer.
type clusterMetrics struct {
	scheduling *obs.Histogram  // pod create → node bind
	restarts   *obs.CounterVec // workload restarts by digi
	evictions  *obs.Counter    // pods evicted off dead nodes
	created    *obs.Counter    // pods submitted
}

// BindMetrics exposes cluster state in r. Gauges are gather-time funcs
// over the API server (no bookkeeping in the scheduling path); the
// scheduling-latency histogram and restart counters are fed from the
// scheduler and node agents. Call before Start.
func (c *Cluster) BindMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("digibox_kube_nodes", "registered nodes", func() float64 {
		return float64(len(c.api.listNodes()))
	})
	r.GaugeFunc("digibox_kube_nodes_ready", "nodes in Ready condition", func() float64 {
		n := 0
		for _, node := range c.api.listNodes() {
			if node.Status.Ready {
				n++
			}
		}
		return float64(n)
	})
	phaseGauge := func(phase PodPhase) func() float64 {
		return func() float64 {
			n := 0
			for _, p := range c.api.listPods() {
				if p.Status.Phase == phase {
					n++
				}
			}
			return float64(n)
		}
	}
	r.GaugeFunc("digibox_kube_pods_running", "pods in Running phase", phaseGauge(PodRunning))
	r.GaugeFunc("digibox_kube_pods_pending", "pods in Pending phase", phaseGauge(PodPending))
	r.GaugeFunc("digibox_kube_pods_failed", "pods in Failed phase", phaseGauge(PodFailed))

	m := &clusterMetrics{
		scheduling: r.Histogram("digibox_kube_scheduling_seconds",
			"pod submission → node binding latency", nil),
		restarts: r.CounterVec("digibox_kube_restarts_total",
			"workload restarts (crash loops, injected crashes)", "digi"),
		evictions: r.Counter("digibox_kube_evictions_total",
			"pods evicted from nodes taken down"),
		created: r.Counter("digibox_kube_pods_created_total",
			"pods submitted to the API server"),
	}
	c.mu.Lock()
	c.metrics = m
	c.mu.Unlock()
}

func (c *Cluster) getMetrics() *clusterMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// digiLabel names the pod's digi for metric labels, falling back to
// the pod name for non-digi workloads.
func digiLabel(p *Pod) string {
	if d, ok := p.Labels["digi"]; ok && d != "" {
		return d
	}
	return p.Name
}
