package kube

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingImage runs until cancelled, recording starts/stops.
func blockingImage(started, stopped *int32) ImageFactory {
	return func(env map[string]any) (Workload, error) {
		return WorkloadFunc(func(ctx context.Context) error {
			if started != nil {
				atomic.AddInt32(started, 1)
			}
			<-ctx.Done()
			if stopped != nil {
				atomic.AddInt32(stopped, 1)
			}
			return nil
		}), nil
	}
}

func testCluster(t *testing.T, nodes ...string) *Cluster {
	t.Helper()
	c := NewCluster()
	for _, n := range nodes {
		if err := c.AddNode(n, 100, "local"); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestPodLifecycle(t *testing.T) {
	c := testCluster(t, "n1")
	var started, stopped int32
	c.RegisterImage("digi/block", blockingImage(&started, &stopped))

	if err := c.CreatePod(&Pod{Name: "p1", Spec: PodSpec{Image: "digi/block"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPodPhase("p1", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	p, err := c.GetPod("p1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Status.NodeName != "n1" || p.Status.Phase != PodRunning {
		t.Errorf("pod status = %+v", p.Status)
	}
	if err := c.DeletePod("p1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return atomic.LoadInt32(&stopped) == 1 }, "workload cancelled")
	if _, err := c.GetPod("p1"); err == nil {
		t.Error("pod should be gone")
	}
	var nf ErrNotFound
	if !errors.As(err, &nf) {
		_, err := c.GetPod("p1")
		if !errors.As(err, &nf) {
			t.Errorf("want ErrNotFound, got %v", err)
		}
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// holds asserts cond stays true for the whole window, failing at the
// first observed violation instead of sleeping blind and sampling once.
func holds(t *testing.T, window time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		if !cond() {
			t.Fatalf("%s violated", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSchedulerSpreadsByLeastLoaded(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", 100, "local")
	c.AddNode("n2", 100, "local")
	c.Start()
	t.Cleanup(c.Stop)
	c.RegisterImage("digi/block", blockingImage(nil, nil))

	const n = 20
	for i := 0; i < n; i++ {
		if err := c.CreatePod(&Pod{Name: fmt.Sprintf("p%02d", i), Spec: PodSpec{Image: "digi/block"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitAllRunning(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range c.ListPods() {
		counts[p.Status.NodeName]++
	}
	if counts["n1"] != n/2 || counts["n2"] != n/2 {
		t.Errorf("placement = %v, want even split", counts)
	}
}

func TestSchedulerRespectsCapacity(t *testing.T) {
	c := NewCluster()
	c.AddNode("tiny", 2, "local")
	c.Start()
	t.Cleanup(c.Stop)
	c.RegisterImage("digi/block", blockingImage(nil, nil))

	for i := 0; i < 4; i++ {
		c.CreatePod(&Pod{Name: fmt.Sprintf("p%d", i), Spec: PodSpec{Image: "digi/block"}})
	}
	waitFor(t, func() bool { return c.Stats().PodsRunning == 2 }, "2 running")
	holds(t, 50*time.Millisecond, func() bool {
		st := c.Stats()
		return st.PodsRunning == 2 && st.PodsPending == 2
	}, "capacity cap (2 running / 2 pending)")
	// Freeing capacity lets a pending pod in.
	var victim string
	for _, p := range c.ListPods() {
		if p.Status.Phase == PodRunning {
			victim = p.Name
			break
		}
	}
	c.DeletePod(victim)
	waitFor(t, func() bool {
		st := c.Stats()
		return st.PodsRunning == 2 && st.PodsPending == 1
	}, "pending pod scheduled after deletion")
}

func TestSchedulerNodeSelector(t *testing.T) {
	c := NewCluster()
	c.AddNode("edge-1", 10, "edge")
	c.AddNode("cloud-1", 10, "cloud")
	c.Start()
	t.Cleanup(c.Stop)
	c.RegisterImage("digi/block", blockingImage(nil, nil))

	c.CreatePod(&Pod{Name: "pinned", Spec: PodSpec{
		Image:        "digi/block",
		NodeSelector: map[string]string{"zone": "cloud"},
	}})
	if err := c.WaitPodPhase("pinned", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	p, _ := c.GetPod("pinned")
	if p.Status.NodeName != "cloud-1" {
		t.Errorf("scheduled to %q, want cloud-1", p.Status.NodeName)
	}
}

func TestPodPendingWithNoFit(t *testing.T) {
	c := testCluster(t, "n1")
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	c.CreatePod(&Pod{Name: "nofit", Spec: PodSpec{
		Image:        "digi/block",
		NodeSelector: map[string]string{"zone": "mars"},
	}})
	holds(t, 50*time.Millisecond, func() bool {
		p, err := c.GetPod("nofit")
		return err == nil && p.Status.Phase == PodPending && p.Status.NodeName == ""
	}, "pod stays pending and unbound with no matching node")
	// Adding a matching node unblocks it.
	if err := c.AddNode("mars-1", 5, "mars"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPodPhase("nofit", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRestartPolicyAlways(t *testing.T) {
	c := testCluster(t, "n1")
	var runs int32
	c.RegisterImage("digi/flaky", func(env map[string]any) (Workload, error) {
		return WorkloadFunc(func(ctx context.Context) error {
			atomic.AddInt32(&runs, 1)
			return errors.New("crash")
		}), nil
	})
	c.CreatePod(&Pod{Name: "crashy", Spec: PodSpec{Image: "digi/flaky", RestartPolicy: RestartAlways}})
	waitFor(t, func() bool { return atomic.LoadInt32(&runs) >= 3 }, "3 restarts")
	p, _ := c.GetPod("crashy")
	if p.Status.Restarts < 2 {
		t.Errorf("restarts = %d", p.Status.Restarts)
	}
}

func TestRestartPolicyNever(t *testing.T) {
	c := testCluster(t, "n1")
	var runs int32
	c.RegisterImage("digi/oneshot", func(env map[string]any) (Workload, error) {
		return WorkloadFunc(func(ctx context.Context) error {
			atomic.AddInt32(&runs, 1)
			return nil
		}), nil
	})
	c.CreatePod(&Pod{Name: "once", Spec: PodSpec{Image: "digi/oneshot", RestartPolicy: RestartNever}})
	if err := c.WaitPodPhase("once", PodSucceeded, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	holds(t, 50*time.Millisecond, func() bool {
		return atomic.LoadInt32(&runs) == 1
	}, "RestartNever pod not restarted")
}

func TestRestartPolicyOnFailure(t *testing.T) {
	c := testCluster(t, "n1")
	var runs int32
	c.RegisterImage("digi/failtwice", func(env map[string]any) (Workload, error) {
		return WorkloadFunc(func(ctx context.Context) error {
			if atomic.AddInt32(&runs, 1) < 3 {
				return errors.New("not yet")
			}
			return nil
		}), nil
	})
	c.CreatePod(&Pod{Name: "ff", Spec: PodSpec{Image: "digi/failtwice", RestartPolicy: RestartOnFailure}})
	if err := c.WaitPodPhase("ff", PodSucceeded, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&runs); n != 3 {
		t.Errorf("runs = %d, want 3", n)
	}
}

func TestWorkloadPanicIsContained(t *testing.T) {
	c := testCluster(t, "n1")
	c.RegisterImage("digi/panics", func(env map[string]any) (Workload, error) {
		return WorkloadFunc(func(ctx context.Context) error {
			panic("boom")
		}), nil
	})
	c.CreatePod(&Pod{Name: "pp", Spec: PodSpec{Image: "digi/panics", RestartPolicy: RestartNever}})
	if err := c.WaitPodPhase("pp", PodFailed, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	p, _ := c.GetPod("pp")
	if p.Status.Message == "" {
		t.Error("failure message empty")
	}
}

func TestMissingImageFailsPod(t *testing.T) {
	c := testCluster(t, "n1")
	c.CreatePod(&Pod{Name: "ghost", Spec: PodSpec{Image: "digi/nonexistent"}})
	if err := c.WaitPodPhase("ghost", PodFailed, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestEnvPassedToWorkload(t *testing.T) {
	c := testCluster(t, "n1")
	got := make(chan map[string]any, 1)
	c.RegisterImage("digi/env", func(env map[string]any) (Workload, error) {
		got <- env
		return blockingWorkload(), nil
	})
	c.CreatePod(&Pod{Name: "envpod", Spec: PodSpec{
		Image: "digi/env",
		Env:   map[string]any{"model": "Lamp"},
	}})
	select {
	case env := <-got:
		if env["model"] != "Lamp" || env["POD_NAME"] != "envpod" || env["NODE_NAME"] != "n1" {
			t.Errorf("env = %v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("workload never created")
	}
}

func blockingWorkload() Workload {
	return WorkloadFunc(func(ctx context.Context) error {
		<-ctx.Done()
		return nil
	})
}

func TestZoneDelays(t *testing.T) {
	c := NewCluster()
	c.AddNode("laptop", 10, "local")
	c.AddNode("ec2-a", 10, "us-east")
	c.AddNode("ec2-b", 10, "us-east")
	c.SetZoneDelay("local", "us-east", 30*time.Millisecond)
	if d := c.PathDelay("laptop", "ec2-a"); d != 30*time.Millisecond {
		t.Errorf("cross-zone delay = %v", d)
	}
	if d := c.PathDelay("ec2-a", "ec2-b"); d != 0 {
		t.Errorf("same-zone delay = %v", d)
	}
	if d := c.PathDelay("laptop", "laptop"); d != 0 {
		t.Errorf("self delay = %v", d)
	}
}

func TestWatchReplaysExistingPods(t *testing.T) {
	c := testCluster(t, "n1")
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	c.CreatePod(&Pod{Name: "pre", Spec: PodSpec{Image: "digi/block"}})
	c.WaitPodPhase("pre", PodRunning, 5*time.Second)

	w := c.WatchPods(nil)
	defer w.Close()
	select {
	case ev := <-w.C():
		if ev.Type != Added || ev.Pod.Name != "pre" {
			t.Errorf("first event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no replayed event")
	}
}

func TestWatchEventsAreCopies(t *testing.T) {
	c := testCluster(t, "n1")
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	w := c.WatchPods(nil)
	defer w.Close()
	c.CreatePod(&Pod{Name: "p", Spec: PodSpec{Image: "digi/block", Env: map[string]any{"k": "v"}}})
	ev := <-w.C()
	ev.Pod.Spec.Env["k"] = "mutated"
	p, _ := c.GetPod("p")
	if p.Spec.Env["k"] != "v" {
		t.Error("watch event shares memory with store")
	}
}

func TestCreatePodValidation(t *testing.T) {
	c := testCluster(t, "n1")
	if err := c.CreatePod(&Pod{Name: "", Spec: PodSpec{Image: "x"}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.CreatePod(&Pod{Name: "x"}); err == nil {
		t.Error("empty image accepted")
	}
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	if err := c.CreatePod(&Pod{Name: "dup", Spec: PodSpec{Image: "digi/block"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreatePod(&Pod{Name: "dup", Spec: PodSpec{Image: "digi/block"}}); err == nil {
		t.Error("duplicate pod accepted")
	}
	if err := c.AddNode("n1", 1, "local"); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := c.AddNode("n2", 0, "local"); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestClusterStopCancelsWorkloads(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", 50, "local")
	c.Start()
	var started, stopped int32
	c.RegisterImage("digi/block", blockingImage(&started, &stopped))
	const n = 10
	for i := 0; i < n; i++ {
		c.CreatePod(&Pod{Name: fmt.Sprintf("p%d", i), Spec: PodSpec{Image: "digi/block"}})
	}
	if err := c.WaitAllRunning(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if got := atomic.LoadInt32(&stopped); got != n {
		t.Errorf("stopped = %d, want %d", got, n)
	}
	c.Stop() // idempotent
}

func TestConcurrentPodChurn(t *testing.T) {
	c := testCluster(t, "n1", "n2", "n3")
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("churn-%d-%d", g, i)
				if err := c.CreatePod(&Pod{Name: name, Spec: PodSpec{Image: "digi/block"}}); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					c.DeletePod(name)
				}
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, func() bool {
		st := c.Stats()
		return st.PodsRunning == 40 && st.PodsPending == 0
	}, "40 survivors running")
}

func TestWaitAllRunningReportsFailure(t *testing.T) {
	c := testCluster(t, "n1")
	c.CreatePod(&Pod{Name: "bad", Spec: PodSpec{Image: "digi/missing"}})
	err := c.WaitAllRunning(3 * time.Second)
	if err == nil {
		t.Fatal("want failure")
	}
}
