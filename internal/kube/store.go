package kube

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// apiServer is the cluster's object store: versioned pods and nodes
// with ordered watch streams. It is the analogue of the Kubernetes API
// server + etcd for the subset of behaviour Digibox needs.
type apiServer struct {
	// now is the cluster's clock (see Cluster.SetClock); pod
	// timestamps come from it so virtual-clock runs stamp virtual
	// times.
	now func() time.Time

	mu      sync.RWMutex
	version uint64
	pods    map[string]*Pod
	nodes   map[string]*Node

	watchMu  sync.Mutex
	watchers map[int]*podWatcher
	nextID   int
}

func newAPIServer() *apiServer {
	return &apiServer{
		pods:     map[string]*Pod{},
		nodes:    map[string]*Node{},
		watchers: map[int]*podWatcher{},
	}
}

// --- pods ---

func (a *apiServer) createPod(p *Pod) error {
	a.mu.Lock()
	if _, exists := a.pods[p.Name]; exists {
		a.mu.Unlock()
		return fmt.Errorf("kube: pod %q already exists", p.Name)
	}
	a.version++
	stored := p.DeepCopy()
	stored.ResourceVersion = a.version
	if stored.Status.Phase == "" {
		stored.Status.Phase = PodPending
	}
	if stored.Status.CreatedAt.IsZero() {
		stored.Status.CreatedAt = a.now()
	}
	if stored.Spec.RestartPolicy == "" {
		stored.Spec.RestartPolicy = RestartAlways
	}
	a.pods[stored.Name] = stored
	a.broadcast(PodEvent{Type: Added, Pod: stored.DeepCopy()})
	a.mu.Unlock()
	return nil
}

func (a *apiServer) getPod(name string) (*Pod, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	p, ok := a.pods[name]
	if !ok {
		return nil, ErrNotFound{"pod", name}
	}
	return p.DeepCopy(), nil
}

// updatePod applies fn to the stored pod under the store lock. If fn
// returns false the update is abandoned without a version bump.
func (a *apiServer) updatePod(name string, fn func(*Pod) bool) (*Pod, error) {
	a.mu.Lock()
	p, ok := a.pods[name]
	if !ok {
		a.mu.Unlock()
		return nil, ErrNotFound{"pod", name}
	}
	if !fn(p) {
		out := p.DeepCopy()
		a.mu.Unlock()
		return out, nil
	}
	a.version++
	p.ResourceVersion = a.version
	out := p.DeepCopy()
	a.broadcast(PodEvent{Type: Modified, Pod: p.DeepCopy()})
	a.mu.Unlock()
	return out, nil
}

func (a *apiServer) deletePod(name string) error {
	a.mu.Lock()
	p, ok := a.pods[name]
	if !ok {
		a.mu.Unlock()
		return ErrNotFound{"pod", name}
	}
	delete(a.pods, name)
	a.version++
	a.broadcast(PodEvent{Type: Deleted, Pod: p.DeepCopy()})
	a.mu.Unlock()
	return nil
}

func (a *apiServer) listPods() []*Pod {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]*Pod, 0, len(a.pods))
	for _, p := range a.pods {
		out = append(out, p.DeepCopy())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- nodes ---

func (a *apiServer) registerNode(n *Node) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.nodes[n.Name]; exists {
		return fmt.Errorf("kube: node %q already exists", n.Name)
	}
	a.version++
	stored := n.DeepCopy()
	stored.ResourceVersion = a.version
	a.nodes[stored.Name] = stored
	return nil
}

func (a *apiServer) getNode(name string) (*Node, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	n, ok := a.nodes[name]
	if !ok {
		return nil, ErrNotFound{"node", name}
	}
	return n.DeepCopy(), nil
}

func (a *apiServer) updateNode(name string, fn func(*Node)) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, ok := a.nodes[name]
	if !ok {
		return ErrNotFound{"node", name}
	}
	fn(n)
	a.version++
	n.ResourceVersion = a.version
	return nil
}

func (a *apiServer) listNodes() []*Node {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]*Node, 0, len(a.nodes))
	for _, n := range a.nodes {
		out = append(out, n.DeepCopy())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- watch ---

// podWatcher delivers pod events in commit order on C, decoupled from
// writers by an unbounded queue (see model.Watcher for rationale).
type podWatcher struct {
	C <-chan PodEvent

	api    *apiServer
	id     int
	filter func(PodEvent) bool

	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []PodEvent
	closed bool
	done   chan struct{}
}

// watchPods registers a watcher; existing pods are replayed first as
// ADDED events (a "list+watch" in one call, like a k8s informer).
func (a *apiServer) watchPods(filter func(PodEvent) bool) *podWatcher {
	ch := make(chan PodEvent)
	w := &podWatcher{C: ch, api: a, filter: filter, done: make(chan struct{})}
	w.qcond = sync.NewCond(&w.qmu)

	// Snapshot + register atomically with respect to writers so no
	// event is missed or duplicated.
	a.mu.Lock()
	var initial []PodEvent
	for _, p := range a.pods {
		initial = append(initial, PodEvent{Type: Added, Pod: p.DeepCopy()})
	}
	sort.Slice(initial, func(i, j int) bool { return initial[i].Pod.Name < initial[j].Pod.Name })
	for _, ev := range initial {
		if filter == nil || filter(ev) {
			w.enqueue(ev)
		}
	}
	a.watchMu.Lock()
	w.id = a.nextID
	a.nextID++
	a.watchers[w.id] = w
	a.watchMu.Unlock()
	a.mu.Unlock()

	go w.pump(ch)
	return w
}

// broadcast is called with a.mu held so that watcher registration
// (which snapshots under a.mu) can never observe an event twice or
// miss one. Enqueueing never blocks on consumers.
func (a *apiServer) broadcast(ev PodEvent) {
	a.watchMu.Lock()
	defer a.watchMu.Unlock()
	for _, w := range a.watchers {
		if w.filter != nil && !w.filter(ev) {
			continue
		}
		w.enqueue(PodEvent{Type: ev.Type, Pod: ev.Pod.DeepCopy()})
	}
}

func (w *podWatcher) enqueue(ev PodEvent) {
	w.qmu.Lock()
	if !w.closed {
		w.queue = append(w.queue, ev)
		w.qcond.Signal()
	}
	w.qmu.Unlock()
}

func (w *podWatcher) pump(ch chan PodEvent) {
	defer close(ch)
	for {
		w.qmu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.qcond.Wait()
		}
		if w.closed && len(w.queue) == 0 {
			w.qmu.Unlock()
			return
		}
		ev := w.queue[0]
		w.queue = w.queue[1:]
		w.qmu.Unlock()
		select {
		case ch <- ev:
		case <-w.done:
			return
		}
	}
}

// Close unregisters the watcher.
func (w *podWatcher) Close() {
	w.api.watchMu.Lock()
	delete(w.api.watchers, w.id)
	w.api.watchMu.Unlock()
	w.qmu.Lock()
	if !w.closed {
		w.closed = true
		close(w.done)
		w.qcond.Signal()
	}
	w.qmu.Unlock()
}
