package kube

import (
	"sync"
)

// scheduler binds pending pods to nodes. Placement is least-loaded
// first among ready nodes with free capacity that satisfy the pod's
// node selector; ties break by node name for determinism. Pods that
// fit nowhere stay Pending and are retried whenever cluster state
// changes.
type scheduler struct {
	api *apiServer

	mu sync.Mutex
	// assigned tracks the scheduler's own view of per-node commitments
	// so a burst of pending pods doesn't overshoot capacity before the
	// agents update node status.
	assigned map[string]int

	watcher *podWatcher
	done    chan struct{}
	wg      sync.WaitGroup

	// metrics resolves the cluster's instrument bundle at observe
	// time (nil getter or nil bundle = unobserved).
	metrics func() *clusterMetrics
}

func newScheduler(api *apiServer) *scheduler {
	return &scheduler{api: api, assigned: map[string]int{}, done: make(chan struct{})}
}

func (s *scheduler) start() {
	s.watcher = s.api.watchPods(nil)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case ev, ok := <-s.watcher.C:
				if !ok {
					return
				}
				s.handle(ev)
			case <-s.done:
				return
			}
		}
	}()
}

func (s *scheduler) stop() {
	close(s.done)
	s.watcher.Close()
	s.wg.Wait()
}

func (s *scheduler) handle(ev PodEvent) {
	switch ev.Type {
	case Added:
		if ev.Pod.Status.NodeName == "" && ev.Pod.Status.Phase == PodPending {
			s.schedule(ev.Pod.Name)
			return
		}
		// Replayed pod that is already bound (scheduler restarted over
		// live state): account for its capacity.
		if ev.Pod.Status.NodeName != "" &&
			ev.Pod.Status.Phase != PodSucceeded && ev.Pod.Status.Phase != PodFailed {
			s.mu.Lock()
			s.assigned[ev.Pod.Status.NodeName]++
			s.mu.Unlock()
		}
	case Deleted:
		if node := ev.Pod.Status.NodeName; node != "" {
			s.release(node)
			// Freed capacity: retry anything still pending.
			s.retryPending()
		}
	case Modified:
		p := ev.Pod
		// An evicted pod comes back unbound and Pending: re-place it.
		if p.Status.NodeName == "" && p.Status.Phase == PodPending {
			s.schedule(p.Name)
			return
		}
		if p.Status.Phase == PodSucceeded || p.Status.Phase == PodFailed {
			// Terminal pods keep their binding record in the API but
			// no longer consume scheduler-tracked capacity.
			if p.Status.NodeName != "" {
				s.release(p.Status.NodeName)
				s.retryPending()
			}
		}
	}
}

// releaseAll clears the scheduler's capacity accounting for a node
// whose pods were evicted (node failure).
func (s *scheduler) releaseAll(node string) {
	s.mu.Lock()
	s.assigned[node] = 0
	s.mu.Unlock()
}

func (s *scheduler) release(node string) {
	s.mu.Lock()
	if s.assigned[node] > 0 {
		s.assigned[node]--
	}
	s.mu.Unlock()
}

func (s *scheduler) retryPending() {
	for _, p := range s.api.listPods() {
		if p.Status.NodeName == "" && p.Status.Phase == PodPending {
			s.schedule(p.Name)
		}
	}
}

// PickNode is the cluster's placement policy as a pure function:
// least-loaded ready node with free capacity that satisfies the
// selector, ties broken by iteration order (callers pass nodes sorted
// by name). assigned maps node name to committed pod count. The bool
// is false when no node fits. Exported so the deterministic replay
// engine places pods with the exact policy the live scheduler uses.
func PickNode(nodes []*Node, selector map[string]string, assigned map[string]int) (string, bool) {
	var best *Node
	bestFree := 0
	for _, n := range nodes {
		if !n.Status.Ready || !selectorMatches(selector, n.Labels) {
			continue
		}
		free := n.Spec.Capacity - assigned[n.Name]
		if free <= 0 {
			continue
		}
		if best == nil || free > bestFree {
			best = n
			bestFree = free
		}
	}
	if best == nil {
		return "", false
	}
	return best.Name, true
}

// PickNodeSpread is the spread placement policy as a pure function:
// among ready nodes with free capacity that satisfy the selector, pick
// the one with the fewest committed pods; ties break by node name, so
// the choice is deterministic regardless of input order. Swarm
// placement uses it to put one generator pod per node before doubling
// up anywhere.
func PickNodeSpread(nodes []*Node, selector map[string]string, assigned map[string]int) (string, bool) {
	var best *Node
	bestCount := 0
	for _, n := range nodes {
		if !n.Status.Ready || !selectorMatches(selector, n.Labels) {
			continue
		}
		if n.Spec.Capacity-assigned[n.Name] <= 0 {
			continue
		}
		count := assigned[n.Name]
		if best == nil || count < bestCount || (count == bestCount && n.Name < best.Name) {
			best = n
			bestCount = count
		}
	}
	if best == nil {
		return "", false
	}
	return best.Name, true
}

// pickFor dispatches on the pod's placement strategy.
func pickFor(pod *Pod, nodes []*Node, assigned map[string]int) (string, bool) {
	if pod.Spec.Strategy == StrategySpread {
		return PickNodeSpread(nodes, pod.Spec.NodeSelector, assigned)
	}
	return PickNode(nodes, pod.Spec.NodeSelector, assigned)
}

// schedule picks a node for the named pod and binds it.
func (s *scheduler) schedule(name string) {
	pod, err := s.api.getPod(name)
	if err != nil || pod.Status.NodeName != "" {
		return
	}
	nodes := s.api.listNodes()
	s.mu.Lock()
	target, ok := pickFor(pod, nodes, s.assigned)
	if !ok {
		s.mu.Unlock()
		return // stays Pending; retried on the next state change
	}
	s.assigned[target]++
	s.mu.Unlock()

	bound := false
	s.api.updatePod(name, func(p *Pod) bool {
		if p.Status.NodeName != "" {
			return false
		}
		p.Status.NodeName = target
		p.Status.Message = "scheduled to " + target
		bound = true
		return true
	})
	if !bound {
		s.release(target)
		return
	}
	if s.metrics != nil {
		if m := s.metrics(); m != nil && !pod.Status.CreatedAt.IsZero() {
			// Re-schedules after eviction observe again, measured from
			// creation: the pod's cumulative time-to-placement.
			m.scheduling.Observe(s.api.now().Sub(pod.Status.CreatedAt).Seconds())
		}
	}
}

func selectorMatches(selector, labels map[string]string) bool {
	for k, v := range selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}
