package kube

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
)

// Cluster is the public face of the orchestrator: an API server, a
// scheduler, and one node agent per node, all in-process.
//
//	c := kube.NewCluster()
//	c.RegisterImage("digi/lamp", lampFactory)
//	c.AddNode("laptop", 100, "local")
//	c.Start()
//	defer c.Stop()
//	c.CreatePod(&kube.Pod{Name: "l1", Spec: kube.PodSpec{Image: "digi/lamp"}})
type Cluster struct {
	api   *apiServer
	clock clock.Clock

	mu       sync.Mutex
	images   map[string]ImageFactory
	agents   map[string]*nodeAgent
	zones    map[zonePair]time.Duration
	sched    *scheduler
	metrics  *clusterMetrics // nil until BindMetrics
	busWatch *PodWatch       // nil until BindBus; closed by Stop
	started  bool
	stopped  bool
}

type zonePair struct{ a, b string }

// NewCluster returns an idle cluster with no nodes.
func NewCluster() *Cluster {
	c := &Cluster{
		api:    newAPIServer(),
		clock:  clock.System,
		images: map[string]ImageFactory{},
		agents: map[string]*nodeAgent{},
		zones:  map[zonePair]time.Duration{},
	}
	c.api.now = c.clock.Now
	return c
}

// SetClock replaces the cluster's time source (pod timestamps, crash
// backoff, wait polling). Call before Start.
func (c *Cluster) SetClock(clk clock.Clock) {
	c.clock = clock.Or(clk)
	c.api.now = c.clock.Now
}

// RegisterImage installs a workload factory under an image name.
// Registering the same name twice replaces the factory.
func (c *Cluster) RegisterImage(name string, f ImageFactory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.images[name] = f
}

func (c *Cluster) lookupImage(name string) (ImageFactory, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.images[name]
	if !ok {
		return nil, fmt.Errorf("kube: image %q not found", name)
	}
	return f, nil
}

// AddNode registers a ready node. Capacity is the maximum number of
// concurrently running pods; zone groups nodes for network-delay
// simulation. Nodes may be added before or after Start.
func (c *Cluster) AddNode(name string, capacity int, zone string) error {
	if capacity <= 0 {
		return fmt.Errorf("kube: node capacity must be positive")
	}
	node := &Node{
		Name:   name,
		Labels: map[string]string{"zone": zone},
		Spec:   NodeSpec{Capacity: capacity, Zone: zone},
		Status: NodeStatus{Ready: true},
	}
	if err := c.api.registerNode(node); err != nil {
		return err
	}
	agent := newNodeAgent(c, name)
	c.mu.Lock()
	c.agents[name] = agent
	started := c.started
	c.mu.Unlock()
	if started {
		agent.start()
		// New capacity may unblock pending pods.
		c.sched.retryPending()
	}
	return nil
}

// SetZoneDelay declares the simulated one-way network delay between
// two zones (symmetric). Same-zone delay defaults to zero.
func (c *Cluster) SetZoneDelay(zoneA, zoneB string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.zones[zonePair{zoneA, zoneB}] = d
	c.zones[zonePair{zoneB, zoneA}] = d
}

// ZoneDelay returns the simulated one-way delay between two zones.
func (c *Cluster) ZoneDelay(zoneA, zoneB string) time.Duration {
	if zoneA == zoneB {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.zones[zonePair{zoneA, zoneB}]
}

// NodeZone returns the zone of a node ("" if unknown).
func (c *Cluster) NodeZone(nodeName string) string {
	n, err := c.api.getNode(nodeName)
	if err != nil {
		return ""
	}
	return n.Spec.Zone
}

// PathDelay returns the simulated one-way delay between two nodes.
func (c *Cluster) PathDelay(nodeA, nodeB string) time.Duration {
	return c.ZoneDelay(c.NodeZone(nodeA), c.NodeZone(nodeB))
}

// Start launches the scheduler and all node agents.
func (c *Cluster) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.sched = newScheduler(c.api)
	c.sched.metrics = c.getMetrics
	agents := make([]*nodeAgent, 0, len(c.agents))
	for _, a := range c.agents {
		agents = append(agents, a)
	}
	c.mu.Unlock()
	c.sched.start()
	for _, a := range agents {
		a.start()
	}
}

// Stop tears down agents (cancelling all workloads) and the scheduler.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if !c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	agents := make([]*nodeAgent, 0, len(c.agents))
	for _, a := range c.agents {
		agents = append(agents, a)
	}
	sched := c.sched
	busWatch := c.busWatch
	c.mu.Unlock()
	for _, a := range agents {
		a.stop()
	}
	sched.stop()
	if busWatch != nil {
		busWatch.Close()
	}
}

// SetNodeReady marks a node ready or not-ready (fault injection, the
// "faults/failures" axis of the paper's §6). Taking a node down stops
// its agent, cancelling every workload on it; the affected pods are
// returned to Pending with their binding cleared so the scheduler
// re-places them on surviving nodes. Bringing the node back up
// restarts its agent and makes its capacity schedulable again.
func (c *Cluster) SetNodeReady(name string, ready bool) error {
	node, err := c.api.getNode(name)
	if err != nil {
		return err
	}
	if node.Status.Ready == ready {
		return nil
	}
	c.mu.Lock()
	agent := c.agents[name]
	started := c.started
	c.mu.Unlock()

	if !ready {
		// Stop the agent first so its workloads cancel and it stops
		// reacting to pod events.
		if agent != nil && started {
			agent.stop()
		}
		c.api.updateNode(name, func(n *Node) {
			n.Status.Ready = false
			n.Status.Running = 0
		})
		// Evict: return this node's pods to the scheduler.
		m := c.getMetrics()
		for _, p := range c.api.listPods() {
			if p.Status.NodeName != name {
				continue
			}
			c.api.updatePod(p.Name, func(pod *Pod) bool {
				pod.Status.NodeName = ""
				pod.Status.Phase = PodPending
				pod.Status.Message = "evicted: node " + name + " down"
				return true
			})
			if m != nil {
				m.evictions.Inc()
			}
		}
		if c.sched != nil {
			c.sched.releaseAll(name)
			c.sched.retryPending()
		}
		return nil
	}
	c.api.updateNode(name, func(n *Node) {
		n.Status.Ready = true
	})
	fresh := newNodeAgent(c, name)
	c.mu.Lock()
	c.agents[name] = fresh
	c.mu.Unlock()
	if started {
		fresh.start()
		if c.sched != nil {
			c.sched.retryPending()
		}
	}
	return nil
}

// KillNode takes a node down (chaos verb): its agent stops, its pods
// are evicted back to Pending, and the scheduler re-places them on
// surviving nodes.
func (c *Cluster) KillNode(name string) error {
	return c.SetNodeReady(name, false)
}

// ReviveNode brings a killed node back; its capacity becomes
// schedulable again.
func (c *Cluster) ReviveNode(name string) error {
	return c.SetNodeReady(name, true)
}

// CrashPod kills the named pod's current run attempt in place (chaos
// verb). Unlike DeletePod the pod object survives; the node agent's
// restart policy decides whether the workload comes back (digi pods
// run with RestartPolicy Always). The pod's restart counter records
// the crash.
func (c *Cluster) CrashPod(name string) error {
	p, err := c.api.getPod(name)
	if err != nil {
		return err
	}
	if p.Status.Phase != PodRunning || p.Status.NodeName == "" {
		return fmt.Errorf("kube: pod %q is not running", name)
	}
	c.mu.Lock()
	agent := c.agents[p.Status.NodeName]
	c.mu.Unlock()
	if agent == nil || !agent.crashPod(name) {
		return fmt.Errorf("kube: pod %q has no live attempt on node %q", name, p.Status.NodeName)
	}
	return nil
}

// CreatePod submits a pod. The scheduler binds it asynchronously; use
// WaitPodPhase to block until it runs.
func (c *Cluster) CreatePod(p *Pod) error {
	if p.Name == "" {
		return fmt.Errorf("kube: pod name required")
	}
	if p.Spec.Image == "" {
		return fmt.Errorf("kube: pod image required")
	}
	if err := c.api.createPod(p); err != nil {
		return err
	}
	if m := c.getMetrics(); m != nil {
		m.created.Inc()
	}
	return nil
}

// DeletePod removes a pod; its workload context is cancelled.
func (c *Cluster) DeletePod(name string) error {
	return c.api.deletePod(name)
}

// GetPod returns a deep copy of the named pod.
func (c *Cluster) GetPod(name string) (*Pod, error) {
	return c.api.getPod(name)
}

// ListPods returns deep copies of all pods, sorted by name.
func (c *Cluster) ListPods() []*Pod {
	return c.api.listPods()
}

// ListNodes returns deep copies of all nodes, sorted by name.
func (c *Cluster) ListNodes() []*Node {
	return c.api.listNodes()
}

// WatchPods registers a pod watcher. A nil filter receives everything.
// The initial state is replayed as ADDED events.
func (c *Cluster) WatchPods(filter func(PodEvent) bool) *PodWatch {
	return &PodWatch{w: c.api.watchPods(filter)}
}

// PodWatch is an active pod watch stream.
type PodWatch struct{ w *podWatcher }

// C delivers events until Close.
func (pw *PodWatch) C() <-chan PodEvent { return pw.w.C }

// Close terminates the stream.
func (pw *PodWatch) Close() { pw.w.Close() }

// WaitPodPhase blocks until the pod reaches the phase or the timeout
// elapses.
func (c *Cluster) WaitPodPhase(name string, phase PodPhase, timeout time.Duration) error {
	deadline := c.clock.Now().Add(timeout)
	w := c.api.watchPods(func(ev PodEvent) bool { return ev.Pod.Name == name })
	defer w.Close()
	for {
		remain := deadline.Sub(c.clock.Now())
		if remain <= 0 {
			return fmt.Errorf("kube: timeout waiting for pod %q to reach %s", name, phase)
		}
		select {
		case ev, ok := <-w.C:
			if !ok {
				return fmt.Errorf("kube: watch closed waiting for pod %q", name)
			}
			if ev.Type != Deleted && ev.Pod.Status.Phase == phase {
				return nil
			}
			if ev.Type == Deleted {
				return fmt.Errorf("kube: pod %q deleted while waiting for %s", name, phase)
			}
		case <-c.clock.After(remain):
			// On a time-compressed clock the scenario deadline can
			// expire in the same wall instant as the goroutine chain
			// still propagating the transition (scheduler → agent →
			// watch). The clocked timeout bounds the *schedule*, not
			// the host's goroutine latency, so grant a short
			// wall-clock grace before declaring failure.
			grace := clock.System.After(2 * time.Second)
			for {
				select {
				case ev, ok := <-w.C:
					if !ok {
						return fmt.Errorf("kube: watch closed waiting for pod %q", name)
					}
					if ev.Type == Deleted {
						return fmt.Errorf("kube: pod %q deleted while waiting for %s", name, phase)
					}
					if ev.Pod.Status.Phase == phase {
						return nil
					}
				case <-grace:
					return fmt.Errorf("kube: timeout waiting for pod %q to reach %s", name, phase)
				}
			}
		}
	}
}

// WaitAllRunning blocks until every pod currently in the store is
// Running (or terminal-failure, which is reported as an error).
func (c *Cluster) WaitAllRunning(timeout time.Duration) error {
	deadline := c.clock.Now().Add(timeout)
	for {
		allRunning := true
		for _, p := range c.api.listPods() {
			switch p.Status.Phase {
			case PodFailed:
				return fmt.Errorf("kube: pod %q failed: %s", p.Name, p.Status.Message)
			case PodRunning:
			default:
				allRunning = false
			}
		}
		if allRunning {
			return nil
		}
		if c.clock.Now().After(deadline) {
			pending := 0
			for _, p := range c.api.listPods() {
				if p.Status.Phase != PodRunning {
					pending++
				}
			}
			return fmt.Errorf("kube: timeout with %d pods not running", pending)
		}
		c.clock.Sleep(5 * time.Millisecond)
	}
}

// Stats summarises cluster state.
type ClusterStats struct {
	Nodes       int
	PodsRunning int
	PodsPending int
	PodsFailed  int
}

// Stats returns a snapshot of cluster state.
func (c *Cluster) Stats() ClusterStats {
	var st ClusterStats
	st.Nodes = len(c.api.listNodes())
	for _, p := range c.api.listPods() {
		switch p.Status.Phase {
		case PodRunning:
			st.PodsRunning++
		case PodPending:
			st.PodsPending++
		case PodFailed:
			st.PodsFailed++
		}
	}
	return st
}
