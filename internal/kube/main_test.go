package kube

import (
	"os"
	"testing"

	"repro/internal/vet/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine (a
// reconciler loop or pod-phase watcher that outlives its test).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
