package kube

import (
	"fmt"
	"testing"
	"time"
)

func TestNodeFailureEvictsAndReschedules(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", 50, "local")
	c.AddNode("n2", 50, "local")
	c.Start()
	t.Cleanup(c.Stop)
	var started, stopped int32
	c.RegisterImage("digi/block", blockingImage(&started, &stopped))

	const n = 10
	for i := 0; i < n; i++ {
		if err := c.CreatePod(&Pod{Name: fmt.Sprintf("p%d", i), Spec: PodSpec{Image: "digi/block"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitAllRunning(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Take n1 down: its pods must move to n2.
	if err := c.SetNodeReady("n1", false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, p := range c.ListPods() {
			if p.Status.Phase != PodRunning || p.Status.NodeName != "n2" {
				return false
			}
		}
		return true
	}, "all pods rescheduled to n2")

	// Bring n1 back: new pods can land on it again.
	if err := c.SetNodeReady("n1", true); err != nil {
		t.Fatal(err)
	}
	if err := c.CreatePod(&Pod{Name: "late", Spec: PodSpec{Image: "digi/block"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPodPhase("late", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	p, _ := c.GetPod("late")
	if p.Status.NodeName != "n1" {
		t.Errorf("late pod on %q, want the recovered (least-loaded) n1", p.Status.NodeName)
	}
}

func TestNodeFailureWithNoSurvivorLeavesPending(t *testing.T) {
	c := NewCluster()
	c.AddNode("only", 50, "local")
	c.Start()
	t.Cleanup(c.Stop)
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	c.CreatePod(&Pod{Name: "p", Spec: PodSpec{Image: "digi/block"}})
	if err := c.WaitPodPhase("p", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeReady("only", false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		p, err := c.GetPod("p")
		return err == nil && p.Status.Phase == PodPending
	}, "pod evicted to pending")
	holds(t, 50*time.Millisecond, func() bool {
		p, err := c.GetPod("p")
		return err == nil && p.Status.Phase == PodPending && p.Status.NodeName == ""
	}, "pod stays pending with no ready node")
	// Recovery: the pod comes back on the same node.
	if err := c.SetNodeReady("only", true); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPodPhase("p", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSetNodeReadyIdempotentAndUnknown(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", 10, "local")
	c.Start()
	t.Cleanup(c.Stop)
	if err := c.SetNodeReady("n1", true); err != nil {
		t.Errorf("ready->ready: %v", err)
	}
	if err := c.SetNodeReady("ghost", false); err == nil {
		t.Error("unknown node accepted")
	}
	// Down twice, up twice: no panics, capacity intact.
	if err := c.SetNodeReady("n1", false); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeReady("n1", false); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeReady("n1", true); err != nil {
		t.Fatal(err)
	}
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	c.CreatePod(&Pod{Name: "p", Spec: PodSpec{Image: "digi/block"}})
	if err := c.WaitPodPhase("p", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestCrashPodRestartsInPlace(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", 10, "local")
	c.Start()
	t.Cleanup(c.Stop)
	var started, stopped int32
	c.RegisterImage("digi/block", blockingImage(&started, &stopped))
	c.CreatePod(&Pod{Name: "p", Spec: PodSpec{Image: "digi/block", RestartPolicy: RestartAlways}})
	if err := c.WaitPodPhase("p", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.CrashPod("p"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		p, _ := c.GetPod("p")
		return p != nil && p.Status.Restarts >= 1 && p.Status.Phase == PodRunning
	}, "pod restarted in place after crash")
	p, _ := c.GetPod("p")
	if p.Status.NodeName != "n1" {
		t.Errorf("pod moved to %q; CrashPod must restart in place", p.Status.NodeName)
	}

	// The chaos verbs wrap node readiness.
	if err := c.KillNode("n1"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.api.getNode("n1"); n.Status.Ready {
		t.Error("node still ready after KillNode")
	}
	if err := c.ReviveNode("n1"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPodPhase("p", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestCrashPodErrors(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", 10, "local")
	c.Start()
	t.Cleanup(c.Stop)
	if err := c.CrashPod("ghost"); err == nil {
		t.Error("crash of unknown pod accepted")
	}
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	// A pod on a dead node has no live attempt to crash.
	c.CreatePod(&Pod{Name: "p", Spec: PodSpec{Image: "digi/block"}})
	c.WaitPodPhase("p", PodRunning, 5*time.Second)
	c.KillNode("n1")
	if err := c.CrashPod("p"); err == nil {
		t.Error("crash of evicted pod accepted")
	}
}

// A crash on a RestartOnFailure pod restarts too: the injected crash
// is surfaced as a failure even when the workload returns nil.
func TestCrashPodCountsAsFailure(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", 10, "local")
	c.Start()
	t.Cleanup(c.Stop)
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	c.CreatePod(&Pod{Name: "p", Spec: PodSpec{Image: "digi/block", RestartPolicy: RestartOnFailure}})
	if err := c.WaitPodPhase("p", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashPod("p"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		p, _ := c.GetPod("p")
		return p != nil && p.Status.Restarts >= 1 && p.Status.Phase == PodRunning
	}, "OnFailure pod restarted after injected crash")
}

func TestClusterStopAfterNodeDown(t *testing.T) {
	// Cluster.Stop must not double-stop an agent already stopped by a
	// node failure.
	c := NewCluster()
	c.AddNode("n1", 10, "local")
	c.Start()
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	c.CreatePod(&Pod{Name: "p", Spec: PodSpec{Image: "digi/block"}})
	c.WaitPodPhase("p", PodRunning, 5*time.Second)
	if err := c.SetNodeReady("n1", false); err != nil {
		t.Fatal(err)
	}
	c.Stop() // must not panic
}
