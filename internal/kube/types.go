// Package kube is Digibox's container-orchestration substrate: an
// in-process substitute for the Kubernetes + Docker + dSpace stack the
// paper deploys on (§4).
//
// It reproduces the control-plane shape Digibox relies on — an API
// server holding versioned objects with watch streams, nodes with pod
// capacity, a scheduler binding pods to nodes, and per-node agents
// (kubelets) that run pod workloads and enforce restart policy — while
// running each "container" as a goroutine. Multi-machine deployments
// are modelled as multiple nodes in zones with configurable inter-zone
// network delay, which is how the paper's 2×EC2 deployment point is
// simulated.
package kube

import (
	"context"
	"fmt"
	"time"
)

// PodPhase is the lifecycle phase of a pod.
type PodPhase string

const (
	PodPending   PodPhase = "Pending"
	PodRunning   PodPhase = "Running"
	PodSucceeded PodPhase = "Succeeded"
	PodFailed    PodPhase = "Failed"
)

// RestartPolicy controls what the node agent does when a pod's
// workload returns.
type RestartPolicy string

const (
	RestartAlways    RestartPolicy = "Always"
	RestartNever     RestartPolicy = "Never"
	RestartOnFailure RestartPolicy = "OnFailure"
)

// Pod is the unit of scheduling: one digi (mock or scene controller)
// microservice.
type Pod struct {
	Name            string
	ResourceVersion uint64
	Labels          map[string]string
	Spec            PodSpec
	Status          PodStatus
}

// PodSpec declares what to run and where it may run.
type PodSpec struct {
	// Image names a workload factory in the cluster's image registry
	// (the stand-in for a container image reference).
	Image string
	// Env is passed to the workload factory.
	Env map[string]any
	// NodeSelector, when non-empty, restricts scheduling to nodes
	// whose labels include every entry.
	NodeSelector  map[string]string
	RestartPolicy RestartPolicy
	// Strategy selects the placement policy: "" (default) is
	// most-free-capacity (PickNode), StrategySpread is least-loaded by
	// committed pod count (PickNodeSpread) — what swarm uses to fan
	// its generator pods across every node.
	Strategy string
}

// StrategySpread selects PickNodeSpread placement: the ready node with
// the fewest committed pods, ties broken by name.
const StrategySpread = "spread"

// PodStatus is maintained by the scheduler and node agents.
type PodStatus struct {
	Phase    PodPhase
	NodeName string // bound node, "" while pending
	Restarts int
	Message  string // human-readable reason for the current phase
	// CreatedAt is stamped by the API server on submission; the gap to
	// node binding is the scheduling-latency metric.
	CreatedAt time.Time
	StartAt   time.Time
}

// DeepCopy returns an independent copy of the pod.
func (p *Pod) DeepCopy() *Pod {
	out := *p
	out.Labels = copyStringMap(p.Labels)
	out.Spec.Env = copyAnyMap(p.Spec.Env)
	out.Spec.NodeSelector = copyStringMap(p.Spec.NodeSelector)
	return &out
}

// Node is a simulated machine with bounded pod capacity.
type Node struct {
	Name            string
	ResourceVersion uint64
	Labels          map[string]string
	Spec            NodeSpec
	Status          NodeStatus
}

// NodeSpec declares capacity and placement attributes.
type NodeSpec struct {
	// Capacity is the maximum number of pods the node can run.
	Capacity int
	// Zone groups nodes for network-delay simulation; requests that
	// cross zones incur the cluster's inter-zone delay.
	Zone string
}

// NodeStatus is maintained by the node agent.
type NodeStatus struct {
	Ready   bool
	Running int // pods currently running
}

// DeepCopy returns an independent copy of the node.
func (n *Node) DeepCopy() *Node {
	out := *n
	out.Labels = copyStringMap(n.Labels)
	return &out
}

func copyStringMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyAnyMap(m map[string]any) map[string]any {
	if m == nil {
		return nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Workload is the running body of a pod: Run blocks until the workload
// finishes or ctx is cancelled. Returning nil means Succeeded;
// returning an error means Failed (and triggers restart policy).
type Workload interface {
	Run(ctx context.Context) error
}

// WorkloadFunc adapts a function to the Workload interface.
type WorkloadFunc func(ctx context.Context) error

// Run implements Workload.
func (f WorkloadFunc) Run(ctx context.Context) error { return f(ctx) }

// ImageFactory constructs a pod's workload from its Env. It is the
// stand-in for pulling and instantiating a container image.
type ImageFactory func(env map[string]any) (Workload, error)

// EventType tags watch events.
type EventType string

const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// PodEvent is one pod watch event.
type PodEvent struct {
	Type EventType
	Pod  *Pod // deep copy, receiver-owned
}

// ErrNotFound is returned for lookups of missing objects.
type ErrNotFound struct{ Kind, Name string }

func (e ErrNotFound) Error() string {
	return fmt.Sprintf("kube: %s %q not found", e.Kind, e.Name)
}
