package kube

import "repro/internal/obs"

// BindBus streams pod phase transitions onto the event bus as "pod"
// events (pod name, phase, bound node, restart count). Only phase
// changes are published — a watch MODIFIED that leaves the phase
// unchanged (a restart-count bump mid-phase, a label edit) is
// suppressed so the stream carries lifecycle signal, not churn.
// Deletions surface with phase "Deleted". The underlying watch is
// closed by Cluster.Stop; BindBus after Stop is a no-op.
func (c *Cluster) BindBus(bus *obs.Bus) {
	if bus == nil {
		return
	}
	c.mu.Lock()
	if c.stopped || c.busWatch != nil {
		c.mu.Unlock()
		return
	}
	w := &PodWatch{w: c.api.watchPods(nil)}
	c.busWatch = w
	c.mu.Unlock()
	go func() {
		last := map[string]PodPhase{}
		for ev := range w.C() {
			name := ev.Pod.Name
			if ev.Type == Deleted {
				delete(last, name)
				bus.Publish("pod", map[string]any{"pod": name, "phase": "Deleted"})
				continue
			}
			phase := ev.Pod.Status.Phase
			if last[name] == phase {
				continue
			}
			last[name] = phase
			bus.Publish("pod", map[string]any{
				"pod":      name,
				"phase":    string(phase),
				"node":     ev.Pod.Status.NodeName,
				"restarts": ev.Pod.Status.Restarts,
			})
		}
	}()
}
