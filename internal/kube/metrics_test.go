package kube

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestClusterMetrics drives a small cluster through create, crash,
// and node-down cycles and checks the bound registry reflects each.
func TestClusterMetrics(t *testing.T) {
	r := obs.NewRegistry()
	c := NewCluster()
	c.BindMetrics(r)
	c.AddNode("n1", 50, "local")
	c.AddNode("n2", 50, "local")
	c.RegisterImage("digi/block", blockingImage(nil, nil))
	c.Start()
	t.Cleanup(c.Stop)

	pod := &Pod{
		Name:   "digi-l1",
		Labels: map[string]string{"digi": "L1"},
		Spec:   PodSpec{Image: "digi/block", RestartPolicy: RestartAlways},
	}
	if err := c.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitPodPhase("digi-l1", PodRunning, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	if got := r.Value("digibox_kube_pods_created_total"); got != 1 {
		t.Fatalf("pods created = %v", got)
	}
	if got := r.Value("digibox_kube_pods_running"); got != 1 {
		t.Fatalf("pods running gauge = %v", got)
	}
	if got := r.Value("digibox_kube_nodes_ready"); got != 2 {
		t.Fatalf("nodes ready = %v", got)
	}
	if got := r.Value("digibox_kube_scheduling_seconds"); got < 1 {
		t.Fatalf("scheduling latency observations = %v, want >= 1", got)
	}

	// A crash must surface as a restart under the digi label.
	if err := c.CrashPod("digi-l1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return r.Value("digibox_kube_restarts_total") >= 1
	}, "restart counted")
	fs := r.Snapshot().Family("digibox_kube_restarts_total")
	if fs == nil || len(fs.Metrics) != 1 || fs.Metrics[0].LabelValues[0] != "L1" {
		t.Fatalf("restart labels: %+v", fs)
	}

	// Node down: the pod is evicted and rescheduled, which observes
	// scheduling latency again.
	before := r.Value("digibox_kube_scheduling_seconds")
	if err := c.SetNodeReady("n1", false); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeReady("n2", false); err != nil {
		// One of the two nodes hosted the pod; killing both guarantees
		// an eviction regardless of placement.
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return r.Value("digibox_kube_evictions_total") >= 1
	}, "eviction counted")
	if got := r.Value("digibox_kube_nodes_ready"); got != 0 {
		t.Fatalf("nodes ready after double kill = %v", got)
	}
	if err := c.SetNodeReady("n1", true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return r.Value("digibox_kube_scheduling_seconds") > before
	}, "rescheduling observed")
}
