package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run loads the packages under root matched by patterns and applies
// every analyzer, returning the surviving findings sorted by position.
// Findings covered by a //dbox:allow directive are suppressed; broken
// or unused directives become findings themselves (analyzer "allow").
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, root, patterns)
	if err != nil {
		return nil, err
	}
	return RunPackages(fset, pkgs, analyzers), nil
}

// RunPackages applies analyzers to already-loaded packages — the
// entry point for the test harness, which builds fixture packages with
// synthetic import paths.
func RunPackages(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var directives []*directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			directives = append(directives, collectDirectives(fset, f)...)
		}
	}

	var raw []Finding
	report := func(f Finding) { raw = append(raw, f) }
	states := map[string]map[string]any{}
	for _, a := range analyzers {
		states[a.Name] = map[string]any{}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg.ImportPath,
				Files:    pkg.Files,
				State:    states[a.Name],
				report:   report,
			})
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(states[a.Name], report)
		}
	}

	var out []Finding
	for _, f := range raw {
		if !suppressed(directives, f) {
			out = append(out, f)
		}
	}

	// Directive hygiene: syntax problems always; unknown names always;
	// unused only for analyzers that actually ran (a partial run must
	// not flag the others' directives).
	for _, d := range directives {
		switch {
		case d.bad != "":
			out = append(out, directiveFinding(d, d.bad))
		case !known[d.analyzer]:
			out = append(out, directiveFinding(d,
				fmt.Sprintf("dbox:allow names unknown analyzer %q", d.analyzer)))
		case running[d.analyzer] && !d.used:
			out = append(out, directiveFinding(d,
				fmt.Sprintf("unused dbox:allow directive: %s reports nothing here", d.analyzer)))
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

func directiveFinding(d *directive, msg string) Finding {
	return Finding{
		Analyzer: directiveAnalyzer,
		File:     d.file,
		Line:     d.line,
		Col:      d.col,
		Message:  msg,
	}
}
