package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of parsed Go files.
type Package struct {
	// ImportPath is module path + "/" + repo-relative dir.
	ImportPath string
	// Dir is relative to the repo root ("." for the root package).
	Dir   string
	Files []*File
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// Load parses every package under root matched by patterns. Patterns
// follow the go tool's shape: "./..." (everything), "./dir/..."
// (subtree), "./dir" (one package). testdata, vendor, hidden, and
// _-prefixed directories are skipped, matching the go tool.
func Load(fset *token.FileSet, root string, patterns []string) ([]*Package, error) {
	module, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if !matchAny(patterns, rel) {
			return nil
		}
		pkg, err := loadDir(fset, root, rel, module)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func loadDir(fset *token.FileSet, root, rel, module string) (*Package, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := rel + "/" + e.Name()
		if rel == "." {
			path = e.Name()
		}
		f, err := parser.ParseFile(fset, path, readFile(filepath.Join(dir, e.Name())), parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, &File{
			Path:   path,
			AST:    f,
			IsTest: strings.HasSuffix(e.Name(), "_test.go"),
		})
	}
	if len(files) == 0 {
		return nil, nil
	}
	importPath := module
	if rel != "." {
		importPath = module + "/" + rel
	}
	return &Package{ImportPath: importPath, Dir: rel, Files: files}, nil
}

// readFile returns the file contents or nil (ParseFile then reads the
// path itself and surfaces the I/O error with position info).
func readFile(path string) any {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return data
}

func matchAny(patterns []string, rel string) bool {
	for _, p := range patterns {
		if matchPattern(p, rel) {
			return true
		}
	}
	return false
}

// matchPattern matches one go-tool-style pattern against a repo-
// relative directory.
func matchPattern(pattern, rel string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	if pattern == "" {
		pattern = "."
	}
	if pattern == "..." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return rel == pattern
}

// inspectFiles walks every file of the pass with fn (a convenience
// wrapper over ast.Inspect).
func inspectFiles(files []*File, fn func(f *File, n ast.Node) bool) {
	for _, f := range files {
		file := f
		ast.Inspect(f.AST, func(n ast.Node) bool { return fn(file, n) })
	}
}
