// Package analysis is Digibox's in-house static-analysis framework: a
// small go/analysis-style multichecker built on the standard library's
// go/ast and go/parser only, so the repo stays dependency-free.
//
// Analyzers are purely syntactic (no type checking): each receives a
// parsed package and reports findings at token positions. The runner
// handles package discovery, //dbox:allow suppression directives, and
// ordering, and is exposed to users as `dbox analyze`.
//
// The framework exists because the properties it checks are invariants
// the rest of the repo depends on — most importantly that runtime
// packages never read the wall clock directly (the replay engine's
// digest stability depends on every time source being injectable; see
// DESIGN.md).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// A Finding is one diagnostic produced by an analyzer, positioned in a
// file relative to the repo root.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// An Analyzer checks one property over every loaded package.
type Analyzer struct {
	// Name is the identifier used in findings and //dbox:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is a one-line description for catalogues and -help output.
	Doc string
	// Run inspects one package and reports findings via the pass.
	Run func(*Pass)
	// Finish, if set, runs once after every package has been analyzed.
	// Cross-package checks (e.g. duplicate metric registrations)
	// accumulate into the pass State maps and report here.
	Finish func(state map[string]any, report func(Finding))
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the package's import path (module path + relative dir).
	Pkg string
	// Files holds every parsed file of the package, tests included;
	// analyzers filter by IsTest when they care.
	Files []*File
	// State is scratch shared across all of this analyzer's passes
	// within one Run invocation, for cross-package checks.
	State map[string]any

	report func(Finding)
}

// A File pairs a parsed AST with its repo-relative path.
type File struct {
	// Path is relative to the repo root, using forward slashes.
	Path string
	AST  *ast.File
	// IsTest reports whether the file name ends in _test.go.
	IsTest bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// timeImportName returns the local name under which f imports the
// standard "time" package, or "" when it is not imported (or is
// imported as _ or .). Analyzers use it to resolve time.Now-style
// selector references without type information.
func timeImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"time"` {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return "time"
	}
	return ""
}

// isPkgCall reports whether call is pkgName.funcName(...) for a
// package imported under pkgName.
func isPkgCall(call *ast.CallExpr, pkgName, funcName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	return ok && ident.Name == pkgName && sel.Sel.Name == funcName
}
