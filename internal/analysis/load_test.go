package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, rel string
		want         bool
	}{
		{"./...", "internal/broker", true},
		{"./...", ".", true},
		{"...", "cmd/dbox", true},
		{"./internal/...", "internal/broker", true},
		{"./internal/...", "internal", true},
		{"./internal/...", "cmd/dbox", false},
		{"./internal/broker", "internal/broker", true},
		{"./internal/broker", "internal/brokerette", false},
		{"./internal/broker", "internal/broker/sub", false},
		{"internal/broker", "internal/broker", true},
	}
	for _, c := range cases {
		if got := matchPattern(c.pattern, c.rel); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pattern, c.rel, got, c.want)
		}
	}
}

func parseOne(t *testing.T, src string) (*token.FileSet, *File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &File{Path: "fix.go", AST: f}
}

func TestCollectDirectives(t *testing.T) {
	fset, f := parseOne(t, `package p

//dbox:allow wallclock -- deadline math needs the kernel clock
var a int

//dbox:allow errwrap
var b int

//dbox:allowance is not a directive
var c int
`)
	ds := collectDirectives(fset, f)
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(ds), ds)
	}
	if ds[0].analyzer != "wallclock" || ds[0].reason == "" || ds[0].bad != "" {
		t.Errorf("first directive: %+v", ds[0])
	}
	if ds[1].analyzer != "errwrap" || ds[1].bad == "" {
		t.Errorf("reasonless directive not flagged: %+v", ds[1])
	}
}

func TestSuppressedCoversSameAndNextLine(t *testing.T) {
	fset, f := parseOne(t, `package p

//dbox:allow wallclock -- covers the next line
var a int
`)
	ds := collectDirectives(fset, f)
	if len(ds) != 1 {
		t.Fatalf("directives: %+v", ds)
	}
	next := Finding{Analyzer: "wallclock", File: "fix.go", Line: 4}
	if !suppressed(ds, next) {
		t.Error("next-line finding not suppressed")
	}
	same := Finding{Analyzer: "wallclock", File: "fix.go", Line: 3}
	if !suppressed(ds, same) {
		t.Error("same-line finding not suppressed")
	}
	far := Finding{Analyzer: "wallclock", File: "fix.go", Line: 9}
	if suppressed(ds, far) {
		t.Error("distant finding suppressed")
	}
	other := Finding{Analyzer: "sleepytest", File: "fix.go", Line: 4}
	if suppressed(ds, other) {
		t.Error("other analyzer's finding suppressed")
	}
}
