package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// errwrapScope maps a package to the name of its malformed-input
// helper: every parse/decode error must be built either by that helper
// or by fmt.Errorf with a %w verb, so errors.Is(err, ErrMalformed)
// holds all the way up. This is the bug class the wire-format fuzzers
// keep finding: a bare errors.New deep in a decoder that callers (and
// the fuzz harness's error-taxonomy check) cannot classify.
var errwrapScope = map[string]string{
	"repro/internal/broker":  "malformed",
	"repro/internal/yamlite": "errf",
}

// errwrapFuncPattern selects the decode-side functions the rule
// applies to. Encoding and runtime paths construct domain errors that
// have nothing to do with malformed input.
var errwrapFuncPattern = regexp.MustCompile(`^(Read|read|Decode|decode|Parse|parse|Unmarshal|unmarshal)`)

// Errwrap flags parse/decode errors that do not wrap the package's
// malformed-input sentinel.
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "wire-decoder and yamlite parse errors must wrap ErrMalformed (via the package helper or fmt.Errorf %w)",
	Run:  runErrwrap,
}

func runErrwrap(p *Pass) {
	helper, ok := errwrapScope[p.Pkg]
	if !ok {
		return
	}
	for _, f := range p.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !errwrapFuncPattern.MatchString(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isPkgCall(call, "errors", "New"):
					p.Reportf(call.Pos(),
						"%s builds a parse error with errors.New; use %s(...) so it wraps ErrMalformed",
						fn.Name.Name, helper)
				case isPkgCall(call, "fmt", "Errorf") && !errorfWraps(call):
					p.Reportf(call.Pos(),
						"%s builds a parse error with fmt.Errorf but no %%w; use %s(...) or wrap ErrMalformed",
						fn.Name.Name, helper)
				}
				return true
			})
		}
	}
}

// errorfWraps reports whether a fmt.Errorf call's literal format
// string contains a %w verb. Non-literal formats are assumed
// compliant — the analyzer is syntactic and cannot chase them.
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}
