package analysis

import (
	"go/ast"
)

// wallclockPackages are the runtime packages whose behaviour must be
// reproducible under the replay engine's virtual clock: any direct
// wall-clock read here is a determinism hole. internal/clock itself is
// the boundary (it owns the one legitimate time.Now), and leaf
// tooling (cmd, examples, rest, ctl, vet, property, yamlite, model)
// never runs under replay.
var wallclockPackages = map[string]bool{
	"repro/internal/broker": true,
	"repro/internal/chaos":  true,
	"repro/internal/core":   true,
	"repro/internal/digi":   true,
	"repro/internal/kube":   true,
	"repro/internal/obs":    true,
	"repro/internal/replay": true,
	"repro/internal/swarm":  true,
	"repro/internal/trace":  true,
}

// wallclockFuncs are the time-package entry points that read or wait
// on the wall clock. Formatting/arithmetic helpers (time.Duration,
// time.Unix, time.Date, ...) are pure and stay allowed.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock flags direct wall-clock access in runtime packages: calls
// (and function-value references, e.g. `now: time.Now`) of time.Now,
// time.Sleep, time.Since, time.Until, time.After, time.AfterFunc,
// time.Tick, time.NewTimer, and time.NewTicker. Route them through an
// injected clock.Clock instead so replay and time-compressed runs
// observe identical timelines. Test files are exempt (sleepytest
// handles their failure mode).
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "runtime packages must use the injected clock, not the time package, for reading or waiting on time",
	Run:  runWallclock,
}

func runWallclock(p *Pass) {
	if !wallclockPackages[p.Pkg] {
		return
	}
	for _, f := range p.Files {
		if f.IsTest {
			continue
		}
		timeName := timeImportName(f.AST)
		if timeName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || ident.Name != timeName || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(),
				"direct time.%s in runtime package %s; use the injected clock.Clock so replay stays deterministic",
				sel.Sel.Name, p.Pkg)
			return true
		})
	}
}
