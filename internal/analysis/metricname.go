package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricMethods are the obs.Registry constructors, mapped to the
// metric kind they create. The analyzer is syntactic: any call whose
// selector matches one of these names with a string first argument is
// treated as a registration.
var metricMethods = map[string]string{
	"Counter":      "counter",
	"CounterFunc":  "counter",
	"CounterVec":   "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gauge",
	"GaugeVec":     "gauge",
	"Histogram":    "histogram",
	"HistogramVec": "histogram",
}

// metricNamePattern is the repo convention: Prometheus-conformant,
// snake_case, digibox_-prefixed (checked separately for a sharper
// message).
var metricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Metricname enforces the metric naming conventions the Grafana
// dashboards and CI metric gates key on: digibox_ prefix, snake_case,
// counters end in _total, histograms in _seconds, and every family
// name is registered at exactly one site — shared families must go
// through a named constant (the obs.FaultsRecoveredName pattern) so
// the schema lives in one place.
var Metricname = &Analyzer{
	Name:   "metricname",
	Doc:    "obs registry names must be digibox_-prefixed snake_case with kind-correct suffixes, each registered at one site (or via a shared named constant)",
	Run:    runMetricname,
	Finish: finishMetricname,
}

// metricSite records one registration call site.
type metricSite struct {
	pkg  string
	file string
	line int
	col  int
	kind string // counter | gauge | histogram
	// name is the resolved family name ("" when the argument is a
	// dynamic expression the analyzer cannot resolve).
	name string
	// constKey identifies the named constant the site referenced
	// ("pkg/path.ConstName"); "" for string literals.
	constKey string
}

const (
	stateSites  = "sites"  // []*metricSite
	stateConsts = "consts" // map[string]string: "pkg/path.Name" -> value
)

func runMetricname(p *Pass) {
	sites, _ := p.State[stateSites].([]*metricSite)
	consts, _ := p.State[stateConsts].(map[string]string)
	if consts == nil {
		consts = map[string]string{}
	}

	for _, f := range p.Files {
		if f.IsTest {
			continue
		}
		collectStringConsts(p.Pkg, f.AST, consts)
	}
	for _, f := range p.Files {
		if f.IsTest {
			continue
		}
		imports := importMap(f.AST)
		file := f
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := metricMethods[sel.Sel.Name]
			if !ok {
				return true
			}
			// Skip pkg.Func calls (e.g. fmt.Histogram would be absurd,
			// but more to the point obs_test-style helpers): a
			// registration is a method on a registry value, and a
			// package-qualified selector is not one.
			if x, ok := sel.X.(*ast.Ident); ok && imports[x.Name] != "" {
				return true
			}
			site := &metricSite{pkg: p.Pkg, kind: kind}
			pos := p.Fset.Position(call.Args[0].Pos())
			site.file, site.line, site.col = file.Path, pos.Line, pos.Column

			switch arg := call.Args[0].(type) {
			case *ast.BasicLit:
				if arg.Kind != token.STRING {
					return true
				}
				if v, err := strconv.Unquote(arg.Value); err == nil {
					site.name = v
				}
			case *ast.Ident:
				site.constKey = p.Pkg + "." + arg.Name
			case *ast.SelectorExpr:
				x, ok := arg.X.(*ast.Ident)
				if !ok {
					return true
				}
				path := imports[x.Name]
				if path == "" {
					return true
				}
				site.constKey = path + "." + arg.Sel.Name
			default:
				// Dynamic name (parameter, concatenation): the
				// registry's own forwarding helpers land here; nothing
				// to check syntactically.
				return true
			}
			sites = append(sites, site)
			return true
		})
	}

	p.State[stateSites] = sites
	p.State[stateConsts] = consts
}

func finishMetricname(state map[string]any, report func(Finding)) {
	sites, _ := state[stateSites].([]*metricSite)
	consts, _ := state[stateConsts].(map[string]string)

	byName := map[string][]*metricSite{}
	for _, s := range sites {
		if s.constKey != "" {
			if v, ok := consts[s.constKey]; ok {
				s.name = v
			}
		}
		if s.name == "" {
			// Unresolvable constant (package outside the analyzed set);
			// group by identity so duplicates through it still collapse.
			byName[s.constKey] = append(byName[s.constKey], s)
			continue
		}
		if msg := checkMetricName(s.kind, s.name); msg != "" {
			report(metricFinding(s, msg))
		}
		byName[s.name] = append(byName[s.name], s)
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		group := byName[n]
		if len(group) < 2 || sharedConst(group) {
			continue
		}
		sort.Slice(group, func(i, j int) bool {
			if group[i].file != group[j].file {
				return group[i].file < group[j].file
			}
			return group[i].line < group[j].line
		})
		first := group[0]
		for _, s := range group[1:] {
			report(metricFinding(s,
				"metric "+strconv.Quote(n)+" already registered at "+
					first.file+":"+strconv.Itoa(first.line)+
					"; share one named constant (see obs.FaultsRecoveredName)"))
		}
	}
}

// sharedConst reports whether every site in the group references the
// same named constant — the sanctioned way to share a family.
func sharedConst(group []*metricSite) bool {
	key := group[0].constKey
	if key == "" {
		return false
	}
	for _, s := range group[1:] {
		if s.constKey != key {
			return false
		}
	}
	return true
}

func checkMetricName(kind, name string) string {
	if !metricNamePattern.MatchString(name) {
		return "metric " + strconv.Quote(name) + " is not snake_case ([a-z0-9_], starting with a letter)"
	}
	if !strings.HasPrefix(name, "digibox_") {
		return "metric " + strconv.Quote(name) + " lacks the digibox_ prefix"
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return "counter " + strconv.Quote(name) + " must end in _total"
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") {
			return "histogram " + strconv.Quote(name) + " must end in _seconds (durations only; pick the base unit)"
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_seconds") {
			return "gauge " + strconv.Quote(name) + " must not carry a counter/histogram suffix"
		}
	}
	return ""
}

func metricFinding(s *metricSite, msg string) Finding {
	return Finding{
		Analyzer: "metricname",
		File:     s.file,
		Line:     s.line,
		Col:      s.col,
		Message:  msg,
	}
}

// collectStringConsts records every package-level string constant with
// a literal value as "pkg.Name" -> value.
func collectStringConsts(pkg string, f *ast.File, out map[string]string) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != len(vs.Values) {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				if v, err := strconv.Unquote(lit.Value); err == nil {
					out[pkg+"."+name.Name] = v
				}
			}
		}
	}
}

// importMap maps local import names to import paths for one file.
func importMap(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		out[name] = path
	}
	return out
}
