// Fixture: an aliased time import must still be caught.
package broker

import stdtime "time"

func aliased() {
	stdtime.Sleep(stdtime.Second) // want `direct time\.Sleep`
}
