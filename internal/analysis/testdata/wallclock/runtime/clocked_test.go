// Fixture: test files are exempt from wallclock (sleepytest owns
// their failure mode), even inside runtime packages.
package broker

import "time"

func TestUsesWallClock() {
	_ = time.Now()
}
