// Fixture: loaded by analyzertest as a runtime package
// (repro/internal/broker), where direct wall-clock access is banned.
package broker

import "time"

func hits() {
	_ = time.Now()                   // want `direct time\.Now`
	time.Sleep(time.Millisecond)     // want `direct time\.Sleep`
	<-time.After(time.Second)        // want `direct time\.After`
	_ = time.NewTicker(time.Second)  // want `direct time\.NewTicker`
	_ = time.Since(time.Time{})      // want `direct time\.Since`
	_ = time.AfterFunc(0, func() {}) // want `direct time\.AfterFunc`
}

// A bare function-value reference is as much of a determinism hole as
// a call.
var nowFunc = time.Now // want `direct time\.Now`

func allowedTrailing(deadline time.Time) {
	_ = time.Now() //dbox:allow wallclock -- net.Conn deadlines compare against the kernel's wall clock
}

func allowedStandalone() {
	//dbox:allow wallclock -- context.WithDeadline compares against the wall clock
	_ = time.Now()
}

// Pure time arithmetic and types never touch the wall clock.
func pure(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d * 3)
}
