// Fixture: loaded as a runtime package (repro/internal/core) — the
// scaled-clock driver idiom. Time-compressed execution splits time
// into two domains: the injected clock owns the *schedule* (timer
// firing order, scenario timeouts), while clock.System legitimately
// bounds *wall-domain* work (TCP round-trips, goroutine handoffs)
// that does not compress with the scenario. The analyzer must keep
// flagging direct time-package access while leaving both the injected
// clock and explicit clock.System references alone — clock.System is
// an auditable, named decision; a bare time.Now is a silent leak.
package core

import (
	"time"

	"repro/internal/clock"
)

type driver struct {
	clk clock.Clock
}

// waitScheduled is the clean shape: the scenario deadline rides the
// injected clock, and once it expires the wall-domain work in flight
// gets a grace period measured on the explicit wall clock.
func (d *driver) waitScheduled(timeout time.Duration, done func() bool) bool {
	deadline := d.clk.Now().Add(timeout)
	for !done() {
		if d.clk.Now().After(deadline) {
			graceStart := clock.System.Now()
			for !done() {
				if clock.System.Since(graceStart) > time.Second {
					return false
				}
				clock.System.Sleep(time.Millisecond)
			}
		}
		d.clk.Sleep(5 * time.Millisecond)
	}
	return true
}

// waitLeaky is the regression this fixture pins: mixing direct
// time-package reads into a scaled driver silently anchors the
// schedule to the wall and breaks digest equivalence across speeds.
func (d *driver) waitLeaky(timeout time.Duration, done func() bool) bool {
	deadline := time.Now().Add(timeout) // want `direct time\.Now`
	for !done() {
		if time.Now().After(deadline) { // want `direct time\.Now`
			return false
		}
		time.Sleep(5 * time.Millisecond) // want `direct time\.Sleep`
	}
	return true
}

// pacing anchors are pure duration arithmetic — never flagged.
func pacingGap(virtual time.Duration, speed float64) time.Duration {
	return time.Duration(float64(virtual) / speed)
}
