// Fixture: loaded as a non-runtime package (repro/internal/yamlite),
// where wall-clock access is fine — nothing here ever runs under the
// replay engine.
package leaf

import "time"

func stamp() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
