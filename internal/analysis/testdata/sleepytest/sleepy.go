// Fixture: non-test files are out of sleepytest's scope (wallclock
// owns them in runtime packages).
package sleepy

import "time"

func backoff() {
	time.Sleep(time.Second)
}
