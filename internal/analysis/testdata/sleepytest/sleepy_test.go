// Fixture: bare sleeps in tests are flaky-or-slow by construction;
// poll-loop backoff sleeps and allowed workload sleeps are not.
package sleepy

import "time"

func TestBareSleep() {
	time.Sleep(50 * time.Millisecond) // want `bare time\.Sleep`
}

func TestPollLoop() {
	for i := 0; i < 100; i++ {
		if ready() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAllowedSleep() {
	//dbox:allow sleepytest -- the sleeping goroutine is the workload under test
	time.Sleep(time.Millisecond)
}

func ready() bool { return false }
