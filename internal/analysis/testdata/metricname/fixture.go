// Fixture: obs.Registry-style registrations and the naming
// conventions the metric gates key on.
package metrics

const sharedName = "digibox_shared_family_total"

func register(r registry) {
	r.Counter("digibox_good_total", "ok")
	r.Histogram("digibox_lat_seconds", "ok", nil)
	r.Gauge("digibox_depth", "ok")

	r.Counter("digibox_bad", "missing suffix")       // want `must end in _total`
	r.Histogram("digibox_lat_ms", "wrong unit", nil) // want `must end in _seconds`
	r.Gauge("digibox_queue_total", "gauge suffixed") // want `must not carry`
	r.Counter("Digibox_case_total", "camel case")    // want `not snake_case`
	r.Counter("mything_total", "foreign prefix")     // want `lacks the digibox_ prefix`

	r.Counter("digibox_dup_total", "first site")
	r.Counter("digibox_dup_total", "second site") // want `already registered`

	// Sharing a family through one named constant is the sanctioned
	// pattern — the schema lives in a single declaration.
	r.Counter(sharedName, "tracer side")
	r.Counter(sharedName, "report side")

	r.Gauge("digibox_legacy_seconds", "grandfathered") //dbox:allow metricname -- pre-convention name baked into dashboards

	// Dynamic names are invisible to a syntactic check.
	r.Counter(dynamicName(), "computed")
}

func dynamicName() string { return "digibox_dynamic_total" }
