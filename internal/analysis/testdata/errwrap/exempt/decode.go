// Fixture: loaded as repro/internal/rest — not a wire decoder, so
// errwrap does not apply even to parse-named functions.
package exempt

import "errors"

func parseQuery(s string) error {
	return errors.New("bad query")
}
