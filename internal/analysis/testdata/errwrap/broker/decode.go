// Fixture: loaded as repro/internal/broker, where decode-side
// functions must build errors through malformed() (or fmt.Errorf %w)
// so errors.Is(err, ErrMalformed) classifies every parse failure.
package broker

import (
	"errors"
	"fmt"
)

var ErrMalformed = errors.New("mqtt: malformed packet")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

func decodeHeader(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty header") // want `errors\.New`
	}
	if b[0] == 0xff {
		return fmt.Errorf("reserved type %#x", b[0]) // want `fmt\.Errorf but no %w`
	}
	if b[0] == 0x01 {
		return malformed("bad flags %#x", b[0])
	}
	return fmt.Errorf("%w: trailing garbage", ErrMalformed)
}

func readLength(b []byte) (int, error) {
	//dbox:allow errwrap -- io.EOF pass-through, not malformed input
	return 0, errors.New("short read")
}

// Encode-side and runtime errors are out of the rule's scope: the
// function-name filter only covers Read/read/Decode/decode/Parse/
// parse/Unmarshal/unmarshal.
func Encode(v any) error {
	return errors.New("cannot encode")
}
