// Fixture: the escape hatch itself is linted — reasonless, unknown,
// and unused directives are findings (analyzer "allow"), so
// suppressions cannot rot silently. Run with the sleepytest analyzer.
package hygiene

import "time"

func TestUsedDirective() {
	//dbox:allow sleepytest -- the sleep is the workload under test
	time.Sleep(time.Millisecond)
}

func TestUnusedDirective() {
	//dbox:allow sleepytest -- nothing below sleeps // want `unused dbox:allow`
	_ = time.Now()
}

func TestReasonlessDirective() {
	//dbox:allow sleepytest // want `needs a reason`
	time.Sleep(time.Millisecond) // want `bare time\.Sleep`
}

func TestUnknownAnalyzer() {
	//dbox:allow nosuchcheck -- no such rule exists // want `unknown analyzer`
	_ = time.Now()
}
