package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestWallclockRuntimePackage(t *testing.T) {
	analyzertest.Run(t, analysis.Wallclock, fixture("wallclock", "runtime"), "repro/internal/broker")
}

// TestWallclockScaledDriver pins the time-compression domain split:
// a runtime package pacing schedules on the injected clock may reach
// for clock.System to bound wall-domain work (reconnect dials, pod
// handoffs), but any direct time-package read in the same driver is
// still a determinism leak.
func TestWallclockScaledDriver(t *testing.T) {
	analyzertest.Run(t, analysis.Wallclock, fixture("wallclock", "scaled"), "repro/internal/core")
}

func TestWallclockExemptPackage(t *testing.T) {
	analyzertest.Run(t, analysis.Wallclock, fixture("wallclock", "exempt"), "repro/internal/yamlite")
}

func TestErrwrapDecoder(t *testing.T) {
	analyzertest.Run(t, analysis.Errwrap, fixture("errwrap", "broker"), "repro/internal/broker")
}

func TestErrwrapExemptPackage(t *testing.T) {
	analyzertest.Run(t, analysis.Errwrap, fixture("errwrap", "exempt"), "repro/internal/rest")
}

func TestMetricname(t *testing.T) {
	analyzertest.Run(t, analysis.Metricname, fixture("metricname"), "repro/internal/obs")
}

func TestSleepytest(t *testing.T) {
	analyzertest.Run(t, analysis.Sleepytest, fixture("sleepytest"), "repro/internal/broker")
}

func TestAllowDirectiveHygiene(t *testing.T) {
	analyzertest.Run(t, analysis.Sleepytest, fixture("allow"), "repro/internal/broker")
}

// TestRepoIsClean is the self-gate: the multichecker over the whole
// repo must report nothing. This is the same bar CI's analyze job
// enforces via `dbox analyze ./...`.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(root, nil, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestRunPatternScoping(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	// A subtree pattern must load without error and stay clean too.
	findings, err := analysis.Run(root, []string{"./internal/broker"}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("broker-only run: %v", findings)
	}
}
