// Package analyzertest runs analyzers against fixture packages and
// checks their findings against golden "// want" annotations, in the
// style of golang.org/x/tools/go/analysis/analysistest but built on
// the in-house framework.
//
// A fixture is a directory of Go files (under testdata, so the go tool
// never builds them). Every line that should produce a finding carries
// a trailing comment:
//
//	time.Sleep(time.Second) // want `bare time\.Sleep`
//
// The backquoted text is a regexp matched against the finding message;
// multiple want comments on one line expect multiple findings. Lines
// without a want comment must produce no finding, so each fixture
// simultaneously pins hits, misses, and //dbox:allow suppressions.
package analyzertest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantPattern = regexp.MustCompile("// want `([^`]*)`")

// Run applies one analyzer to the fixture directory, which is loaded
// as a package with the given import path (so package-scoped analyzers
// like wallclock can be pointed at runtime and non-runtime paths).
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	pkg := loadFixture(t, fset, dir, importPath)
	findings := analysis.RunPackages(fset, []*analysis.Package{pkg}, []*analysis.Analyzer{a})
	checkWants(t, dir, findings)
}

func loadFixture(t *testing.T, fset *token.FileSet, dir, importPath string) *analysis.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	pkg := &analysis.Package{ImportPath: importPath, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		pkg.Files = append(pkg.Files, &analysis.File{
			Path:   path,
			AST:    f,
			IsTest: strings.HasSuffix(e.Name(), "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	return pkg
}

// checkWants compares findings against the fixture's want comments.
func checkWants(t *testing.T, dir string, findings []analysis.Finding) {
	t.Helper()
	type want struct {
		file    string
		line    int
		pattern *regexp.Regexp
		matched bool
	}
	var wants []*want
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantPattern.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: path, line: i + 1, pattern: re})
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
