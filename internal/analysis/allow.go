package analysis

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive:
//
//	//dbox:allow <analyzer> -- <reason>
//
// A directive suppresses findings of the named analyzer on its own
// line (trailing comment) or on the line immediately below (standalone
// comment above the offending statement). The reason is mandatory —
// the directive documents why the rule does not apply, and the runner
// flags reasonless, unknown-analyzer, and unused directives so escape
// hatches cannot rot silently.
const allowPrefix = "//dbox:allow"

// directiveAnalyzer is the reserved analyzer name under which the
// runner reports problems with the directives themselves. Findings
// from it are never suppressible.
const directiveAnalyzer = "allow"

type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
	col      int
	used     bool
	// bad records a syntax problem ("" when well-formed); bad
	// directives never suppress anything.
	bad string
}

// collectDirectives extracts every dbox:allow directive from a file's
// comments, including malformed ones.
func collectDirectives(fset *token.FileSet, f *File) []*directive {
	var out []*directive
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := &directive{file: f.Path, line: pos.Line, col: pos.Column}
			out = append(out, d)
			if text != "" && !strings.HasPrefix(text, " ") {
				// e.g. //dbox:allowed — not a directive for us.
				out = out[:len(out)-1]
				continue
			}
			name, reason, found := strings.Cut(strings.TrimSpace(text), "--")
			d.analyzer = strings.TrimSpace(name)
			d.reason = strings.TrimSpace(reason)
			switch {
			case d.analyzer == "":
				d.bad = "dbox:allow directive names no analyzer (want //dbox:allow <analyzer> -- <reason>)"
			case !found || d.reason == "":
				d.bad = "dbox:allow directive needs a reason: //dbox:allow " + d.analyzer + " -- <why>"
			}
		}
	}
	return out
}

// suppressed reports whether finding f is covered by a well-formed
// directive, marking the directive used.
func suppressed(directives []*directive, f Finding) bool {
	hit := false
	for _, d := range directives {
		if d.bad != "" || d.analyzer != f.Analyzer || d.file != f.File {
			continue
		}
		if d.line == f.Line || d.line == f.Line-1 {
			d.used = true
			hit = true
		}
	}
	return hit
}
