package analysis

// All returns every analyzer in the multichecker, in catalogue order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, Errwrap, Metricname, Sleepytest}
}
