package analysis

import (
	"go/ast"
	"go/token"
)

// Sleepytest flags bare time.Sleep waits in _test.go files. A
// straight-line sleep encodes a guess about scheduling latency: too
// short and the test flakes under load, too long and the suite crawls.
// Poll a condition with a deadline instead (the repo's waitCond/holds
// helpers). Sleeps inside a for loop are exempt — they are the
// backoff of exactly such a poll loop.
var Sleepytest = &Analyzer{
	Name: "sleepytest",
	Doc:  "tests must not wait with bare time.Sleep; poll with waitCond/holds-style deadlines",
	Run:  runSleepytest,
}

func runSleepytest(p *Pass) {
	for _, f := range p.Files {
		if !f.IsTest {
			continue
		}
		timeName := timeImportName(f.AST)
		if timeName == "" {
			continue
		}
		var loops []posRange
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, posRange{n.Pos(), n.End()})
			}
			return true
		})
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgCall(call, timeName, "Sleep") {
				return true
			}
			if inAnyRange(loops, call.Pos()) {
				return true
			}
			p.Reportf(call.Pos(),
				"bare time.Sleep in test; poll the condition with a waitCond/holds-style deadline loop")
			return true
		})
	}
}

type posRange struct{ from, to token.Pos }

func inAnyRange(ranges []posRange, pos token.Pos) bool {
	for _, r := range ranges {
		if r.from <= pos && pos < r.to {
			return true
		}
	}
	return false
}
