package profile

import (
	"bytes"
	"testing"
	"time"
)

// TestSamplerDeterminism compiles the same profile twice and walks
// both schedules in different device orders: every (offset, payload)
// stream must be byte-identical, because the schedule is pure
// arithmetic on (profile, seed, device).
func TestSamplerDeterminism(t *testing.T) {
	p := testProfile()
	s1, err := Compile(p, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compile(testProfile(), 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Devices() != s2.Devices() {
		t.Fatalf("device counts differ: %d vs %d", s1.Devices(), s2.Devices())
	}
	// Walk s1 forward, s2 backward over devices: interleaving across
	// devices must not matter, only per-device call order.
	type msg struct {
		at      time.Duration
		payload []byte
	}
	walk := func(s *Sampler, reverse bool) map[int][]msg {
		out := map[int][]msg{}
		order := make([]int, s.Devices())
		for i := range order {
			if reverse {
				order[i] = s.Devices() - 1 - i
			} else {
				order[i] = i
			}
		}
		for _, d := range order {
			for {
				at, payload := s.NextFire(d)
				if at >= 2*time.Second {
					break
				}
				out[d] = append(out[d], msg{at, payload})
			}
		}
		return out
	}
	m1, m2 := walk(s1, false), walk(s2, true)
	total := 0
	for d := 0; d < s1.Devices(); d++ {
		a, b := m1[d], m2[d]
		if len(a) != len(b) {
			t.Fatalf("device %d: %d vs %d messages", d, len(a), len(b))
		}
		total += len(a)
		for i := range a {
			if a[i].at != b[i].at || !bytes.Equal(a[i].payload, b[i].payload) {
				t.Fatalf("device %d message %d diverges: (%v, %s) vs (%v, %s)",
					d, i, a[i].at, a[i].payload, b[i].at, b[i].payload)
			}
		}
	}
	if total == 0 {
		t.Fatal("no messages sampled")
	}
}

// TestDigestStable pins the digest of the reference profile: any
// change to the sampling arithmetic shows up here before it shows up
// as a cross-speed or golden-trace failure in the examples.
func TestDigestStable(t *testing.T) {
	d1, n1, err := Digest(testProfile(), 12, 0, 2*time.Second, "swarm")
	if err != nil {
		t.Fatal(err)
	}
	d2, n2, err := Digest(testProfile(), 12, 0, 2*time.Second, "swarm")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || n1 != n2 {
		t.Fatalf("digest not reproducible: %s/%d vs %s/%d", d1, n1, d2, n2)
	}
	d3, _, err := Digest(testProfile(), 12, 99, 2*time.Second, "swarm")
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Fatal("profile seed 42 should shadow the fallback seed, but digests differ")
	}
	unseeded := testProfile()
	unseeded.Seed = 0
	d4, _, err := Digest(unseeded, 12, 5, 2*time.Second, "swarm")
	if err != nil {
		t.Fatal(err)
	}
	d5, _, err := Digest(unseeded, 12, 6, 2*time.Second, "swarm")
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d5 {
		t.Fatal("fallback seed has no effect on an unseeded profile")
	}
}

// TestExpectedCountsMatchMeanRate sanity-checks the schedule volume:
// a fixed 100ms cadence over 10 seconds is 100 messages per device.
func TestExpectedCountsMatchMeanRate(t *testing.T) {
	p := &Profile{
		Name: "flat",
		Seed: 3,
		Populations: []Population{{
			Kind: "meter", Count: 5,
			Cadence: Cadence{Dist: DistFixed, Mean: 100 * time.Millisecond},
		}},
	}
	counts, err := ExpectedCounts(p, 0, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// First fire lands at 100ms, last below 10s: exactly 99..100 per
	// device depending on the boundary.
	if got := counts["meter"]; got < 5*99 || got > 5*100 {
		t.Fatalf("expected ~500 meter messages, got %d", got)
	}
}

// TestBurstAmplifies verifies the burst window multiplies the rate:
// a bursty population must emit measurably more than its flat twin.
func TestBurstAmplifies(t *testing.T) {
	flat := &Profile{
		Name: "flat", Seed: 9,
		Populations: []Population{{
			Kind: "cam", Count: 4,
			Cadence: Cadence{Dist: DistFixed, Mean: 50 * time.Millisecond},
		}},
	}
	bursty := &Profile{
		Name: "bursty", Seed: 9,
		Populations: []Population{{
			Kind: "cam", Count: 4,
			Cadence: Cadence{Dist: DistFixed, Mean: 50 * time.Millisecond},
			Burst:   &Burst{Every: time.Second, Length: 500 * time.Millisecond, Factor: 10},
		}},
	}
	fc, err := ExpectedCounts(flat, 0, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := ExpectedCounts(bursty, 0, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bc["cam"] < 2*fc["cam"] {
		t.Fatalf("burst x10 for half of every second should at least double volume: flat %d bursty %d",
			fc["cam"], bc["cam"])
	}
}
