package profile

// Traffic capture: observe live broker/swarm messages on an injected
// clock and fit them back into a Profile. The fit is per topic class
// (device topics collapse by stripping the per-device "-<idx>" suffix
// from the middle segment), aggregating inter-arrival gap statistics,
// payload field ranges, firmware skew, and a windowed burst detector.
// The fitted profile is an ordinary Profile value: committable to the
// scene repository, checkable by `dbox vet`, replayable by the swarm
// generator with the same seed.

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
)

// burstWindow buckets arrivals for the burst detector: one scenario
// second is coarse enough to be cheap and fine enough to catch the
// multi-second burst shapes the Burst model expresses.
const burstWindow = time.Second

// topicAgg is one concrete topic's arrival state.
type topicAgg struct {
	last    time.Duration
	n       int64
	lastStr map[string]string // enum fields: last observed value
}

// fieldAgg aggregates one payload field across a class.
type fieldAgg struct {
	numeric  bool
	min, max float64
	n        int64
	states   map[string]int64
	changes  int64 // string-value transitions (enum PChange estimate)
	strN     int64
}

// classAgg aggregates one topic class.
type classAgg struct {
	topics map[string]*topicAgg
	count  int64

	// Gap statistics (seconds): linear and log moments, so the fit can
	// pick fixed/poisson/lognormal and parameterize each.
	gapN              int64
	gapSum, gapSumSq  float64
	logSum, logSumSq  float64
	firstAt, lastAt   time.Duration
	windows           map[int64]int64
	firmware          map[string]int64
	fields            map[string]*fieldAgg
	fieldOrder        []string
	sawPayload        bool
	malformedPayloads int64
}

// Capture records traffic into per-class aggregates. Observe is safe
// for concurrent use; arrival offsets come from the injected clock, so
// a capture on a time-compressed testbed measures scenario time, not
// wall time.
type Capture struct {
	clk   clock.Clock
	mu    sync.Mutex
	start time.Time
	total int64
	byCls map[string]*classAgg
}

// NewCapture starts a capture at the clock's current time.
func NewCapture(clk clock.Clock) *Capture {
	clk = clock.Or(clk)
	return &Capture{clk: clk, start: clk.Now(), byCls: map[string]*classAgg{}}
}

// ClassOf maps a topic to its capture class: the second topic level
// with any trailing "-<digits>" device index stripped, so
// "swarm/thermostat-17/status" and "swarm/thermostat-3/status" fit one
// population. Topics with a single level class as themselves.
func ClassOf(topic string) string {
	seg := topic
	if i := strings.IndexByte(topic, '/'); i >= 0 {
		seg = topic[i+1:]
		if j := strings.IndexByte(seg, '/'); j >= 0 {
			seg = seg[:j]
		}
	}
	if i := strings.LastIndexByte(seg, '-'); i > 0 && isDigits(seg[i+1:]) {
		seg = seg[:i]
	}
	if seg == "" {
		return "device"
	}
	return seg
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Observe records one message arrival.
func (c *Capture) Observe(topic string, payload []byte) {
	at := c.clk.Since(c.start)
	cls := ClassOf(topic)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	agg := c.byCls[cls]
	if agg == nil {
		agg = &classAgg{
			topics:   map[string]*topicAgg{},
			windows:  map[int64]int64{},
			firmware: map[string]int64{},
			fields:   map[string]*fieldAgg{},
			firstAt:  at,
		}
		c.byCls[cls] = agg
	}
	agg.count++
	agg.lastAt = at
	agg.windows[int64(at/burstWindow)]++

	ta := agg.topics[topic]
	if ta == nil {
		ta = &topicAgg{lastStr: map[string]string{}}
		agg.topics[topic] = ta
	} else {
		gap := (at - ta.last).Seconds()
		if gap > 0 {
			agg.gapN++
			agg.gapSum += gap
			agg.gapSumSq += gap * gap
			lg := math.Log(gap)
			agg.logSum += lg
			agg.logSumSq += lg * lg
		}
	}
	ta.last = at
	ta.n++

	c.observePayload(agg, ta, payload)
}

// observePayload folds one JSON payload into the class's field
// aggregates. Non-JSON payloads count as malformed and contribute no
// schema; "seq" and "kind" are bookkeeping, "fw" feeds firmware skew.
func (c *Capture) observePayload(agg *classAgg, ta *topicAgg, payload []byte) {
	var doc map[string]any
	if err := json.Unmarshal(payload, &doc); err != nil {
		agg.malformedPayloads++
		return
	}
	agg.sawPayload = true
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := doc[k]
		switch k {
		case "seq", "kind":
			continue
		case "fw":
			if s, ok := v.(string); ok {
				agg.firmware[s]++
				continue
			}
		}
		fa := agg.fields[k]
		if fa == nil {
			fa = &fieldAgg{min: math.Inf(1), max: math.Inf(-1), states: map[string]int64{}}
			agg.fields[k] = fa
			agg.fieldOrder = append(agg.fieldOrder, k)
		}
		switch val := v.(type) {
		case float64:
			fa.numeric = true
			fa.n++
			if val < fa.min {
				fa.min = val
			}
			if val > fa.max {
				fa.max = val
			}
		case string:
			fa.strN++
			fa.states[val]++
			if prev, ok := ta.lastStr[k]; ok && prev != val {
				fa.changes++
			}
			ta.lastStr[k] = val
		}
	}
}

// Total returns the number of observed messages.
func (c *Capture) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// ClassCounts returns observed message counts per class.
func (c *Capture) ClassCounts() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.byCls))
	for cls, agg := range c.byCls {
		out[cls] = agg.count
	}
	return out
}

// FitOptions parameterize Fit.
type FitOptions struct {
	// Name is the fitted profile's name; "" defaults to "captured".
	Name string
	// Seed is stamped into the profile so a replay is reproducible;
	// 0 defaults to 1.
	Seed int64
}

// Fit distills the capture into a profile: one population per topic
// class, its device count from the distinct topics seen, its cadence
// from the gap moments (coefficient of variation picks fixed vs
// poisson vs lognormal), numeric fields as bounded random walks,
// string fields as enum machines with the measured transition rate,
// firmware skew from observed shares, and a Burst entry when the
// windowed arrival counts show a >=3x hot window. Returns nil when
// nothing was captured.
func (c *Capture) Fit(opts FitOptions) *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total == 0 {
		return nil
	}
	name := opts.Name
	if name == "" {
		name = "captured"
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Profile{Name: name, Seed: seed}

	classes := make([]string, 0, len(c.byCls))
	for cls := range c.byCls {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	for _, cls := range classes {
		agg := c.byCls[cls]
		pop := Population{Kind: cls, Count: len(agg.topics)}
		pop.Cadence = fitCadence(agg)
		pop.Burst = fitBurst(agg)
		if len(agg.firmware) > 0 {
			pop.Firmware = map[string]float64{}
			for vsn, n := range agg.firmware {
				pop.Firmware[vsn] = float64(n) / float64(agg.count)
			}
		}
		for _, k := range agg.fieldOrder {
			fa := agg.fields[k]
			switch {
			case fa.numeric && fa.n > 0:
				f := Field{Name: k, Gen: GenRandomWalk, Min: fa.min, Max: fa.max}
				if f.Max < f.Min { // single non-finite guard
					f.Min, f.Max = 0, 0
				}
				pop.Fields = append(pop.Fields, f)
			case fa.strN > 0:
				states := make([]string, 0, len(fa.states))
				for s := range fa.states {
					states = append(states, s)
				}
				// Most frequent first: the initial state of the fitted
				// machine is the mode of the observed stream.
				sort.Slice(states, func(i, j int) bool {
					if fa.states[states[i]] != fa.states[states[j]] {
						return fa.states[states[i]] > fa.states[states[j]]
					}
					return states[i] < states[j]
				})
				f := Field{Name: k, Gen: GenEnum, States: states}
				if fa.strN > 1 {
					f.PChange = float64(fa.changes) / float64(fa.strN)
				}
				pop.Fields = append(pop.Fields, f)
			}
		}
		p.Populations = append(p.Populations, pop)
	}
	return p
}

// fitCadence picks a distribution from the gap moments. The
// coefficient of variation separates the three shapes the model
// expresses: a ticker has cv ~ 0, Poisson arrivals have cv ~ 1, and a
// heavy tail pushes cv past that.
func fitCadence(agg *classAgg) Cadence {
	if agg.gapN == 0 {
		// One message per topic (or one topic, one message): the only
		// cadence evidence is the observation span itself.
		span := agg.lastAt - agg.firstAt
		if span <= 0 {
			span = time.Second
		}
		return Cadence{Dist: DistFixed, Mean: span}
	}
	mean := agg.gapSum / float64(agg.gapN)
	variance := agg.gapSumSq/float64(agg.gapN) - mean*mean
	if variance < 0 {
		variance = 0
	}
	cv := 0.0
	if mean > 0 {
		cv = math.Sqrt(variance) / mean
	}
	switch {
	case cv < 0.25:
		return Cadence{Dist: DistFixed, Mean: durSec(mean)}
	case math.Abs(cv-1) <= 0.4:
		return Cadence{Dist: DistPoisson, Mean: durSec(mean)}
	default:
		logMean := agg.logSum / float64(agg.gapN)
		logVar := agg.logSumSq/float64(agg.gapN) - logMean*logMean
		if logVar < 0 {
			logVar = 0
		}
		// Median-anchored, matching the sampler's lognormal draw.
		return Cadence{Dist: DistLognormal, Mean: durSec(math.Exp(logMean)), Sigma: math.Sqrt(logVar)}
	}
}

// fitBurst reports a Burst when some one-second window carried at
// least 3x the average arrival count over at least 5 windows — the
// signature of a correlated burst rather than ordinary jitter.
func fitBurst(agg *classAgg) *Burst {
	if len(agg.windows) < 5 {
		return nil
	}
	var total, max int64
	for _, n := range agg.windows {
		total += n
		if n > max {
			max = n
		}
	}
	avg := float64(total) / float64(len(agg.windows))
	if avg <= 0 || float64(max) < 3*avg {
		return nil
	}
	span := agg.lastAt - agg.firstAt
	if span < burstWindow {
		span = burstWindow
	}
	return &Burst{
		Every:  span.Round(burstWindow),
		Length: burstWindow,
		Factor: math.Round(float64(max) / avg),
	}
}

// durSec converts seconds to a millisecond-rounded duration (profiles
// serialize cadence at millisecond resolution).
func durSec(sec float64) time.Duration {
	d := time.Duration(sec * float64(time.Second)).Round(time.Millisecond)
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}
