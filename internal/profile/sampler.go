package profile

// The compiled half of a profile: a Sampler owns one small state
// struct per device and answers "when does device d speak next, and
// what does it say" as pure offsets from run start. Nothing here
// touches a clock — pacing belongs to the swarm load generator, which
// sleeps the sampled gaps on whatever clock.Clock it was injected
// with. That split is what makes profiled runs digest-invariant
// across -speed factors: the schedule is decided by arithmetic on
// (profile, seed, device index), and the clock only decides how much
// wall time each already-decided gap costs.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"
)

// minGap floors every sampled inter-message gap. A pathological
// modulation stack (deep trough × heavy lognormal left tail) could
// otherwise sample denormal gaps and melt a run into a spin; 1ms is
// three orders below any cadence a fleet profile plausibly declares.
const minGap = time.Millisecond

// rng64 is the compact splitmix64 PRNG (8 bytes of state per stream;
// math/rand's default source would cost ~4.8 KiB per device).
type rng64 uint64

func (s *rng64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// seedStream derives device idx's starting state from (seed, idx)
// through the splitmix64 finalizer. A plain seed+idx·GOLDEN offset
// would make device i+1's stream a one-draw shift of device i's —
// next() advances the state by the same GOLDEN increment — collapsing
// the whole fleet onto one shared draw sequence (and biasing every
// population's realized rate by that single sequence's luck).
func seedStream(seed, idx uint64) rng64 {
	z := seed + idx*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return rng64(z ^ (z >> 31))
}

// float64 returns a uniform draw in [0, 1).
func (s *rng64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// norm returns a standard normal draw (Box-Muller on two uniforms).
func (s *rng64) norm() float64 {
	u1 := s.float64()
	for u1 == 0 {
		u1 = s.float64()
	}
	u2 := s.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// exp returns a unit-mean exponential draw.
func (s *rng64) exp() float64 {
	u := s.float64()
	for u == 0 {
		u = s.float64()
	}
	return -math.Log(u)
}

// fieldState is one field generator's mutable state.
type fieldState struct {
	value float64 // randomwalk/spike current, enum state index
	phase float64 // sine phase offset in [0,1)
}

// devState is one compiled device: everything NextFire needs, and
// nothing else — the whole point of swarm mode is that 10k devices
// cost 10k small structs.
type devState struct {
	pop    int
	kind   string
	fw     string
	rng    rng64
	at     time.Duration
	seq    uint64
	burst  time.Duration // per-device burst phase offset
	fields []fieldState
}

// Sampler is a compiled profile: a deterministic traffic schedule for
// a concrete device count. NextFire mutates per-device state, so each
// device index must be driven by at most one goroutine at a time —
// the load generator's round-robin device ownership (device d belongs
// to worker d mod W) guarantees that.
type Sampler struct {
	prof *Profile
	devs []devState
}

// Compile resolves the population mix against a device budget and
// seeds every device stream. devices <= 0 uses the profile's explicit
// counts; otherwise explicit counts are honored first and the
// remaining budget splits across weighted populations by largest
// remainder. seed is the fallback when the profile itself carries no
// seed, so `-seed` still steers an unseeded profile.
func Compile(p *Profile, devices int, seed int64) (*Sampler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if probs := p.Unsatisfiable(); len(probs) > 0 {
		return nil, fmt.Errorf("profile: unsatisfiable: %s", probs[0].Message)
	}
	if p.Seed != 0 {
		seed = p.Seed
	}
	if seed == 0 {
		seed = 1
	}
	counts := assign(p, devices)
	s := &Sampler{prof: p}
	for pi := range p.Populations {
		pop := &p.Populations[pi]
		versions, cum := pop.firmwareVersions()
		for k := 0; k < counts[pi]; k++ {
			idx := len(s.devs)
			d := devState{
				pop:  pi,
				kind: pop.Kind,
				// Device streams derive from (seed, global index), so two
				// samplers compiled from equal inputs are byte-identical.
				rng:    seedStream(uint64(seed), uint64(idx)),
				fields: make([]fieldState, len(pop.Fields)),
			}
			if len(versions) > 0 {
				u := d.rng.float64()
				d.fw = versions[len(versions)-1]
				for i, c := range cum {
					if u < c {
						d.fw = versions[i]
						break
					}
				}
			}
			if b := pop.Burst; b != nil {
				d.burst = time.Duration(d.rng.float64() * float64(b.Every))
			}
			for fi, f := range pop.Fields {
				st := &d.fields[fi]
				switch f.Gen {
				case GenEnum:
					st.value = 0
				case GenSine:
					st.phase = d.rng.float64()
				default: // randomwalk, spike, ""
					st.value = f.Min + d.rng.float64()*(f.Max-f.Min)
				}
			}
			s.devs = append(s.devs, d)
		}
	}
	if len(s.devs) == 0 {
		return nil, fmt.Errorf("profile: %s compiles to zero devices", p.Name)
	}
	return s, nil
}

// assign splits a device budget across populations: explicit counts
// first, then the remainder by weight (largest remainder, stable
// declaration-order tie break).
func assign(p *Profile, devices int) []int {
	counts := make([]int, len(p.Populations))
	used := 0
	var weights float64
	for i, pop := range p.Populations {
		if pop.Count > 0 {
			counts[i] = pop.Count
			used += pop.Count
		} else {
			weights += pop.Weight
		}
	}
	rest := devices - used
	if rest <= 0 || weights <= 0 {
		return counts
	}
	type slot struct {
		i    int
		frac float64
	}
	var slots []slot
	assigned := 0
	for i, pop := range p.Populations {
		if pop.Count > 0 || pop.Weight <= 0 {
			continue
		}
		exact := float64(rest) * pop.Weight / weights
		counts[i] = int(exact)
		assigned += counts[i]
		slots = append(slots, slot{i, exact - float64(counts[i])})
	}
	sort.SliceStable(slots, func(a, b int) bool { return slots[a].frac > slots[b].frac })
	for k := 0; k < rest-assigned && k < len(slots); k++ {
		counts[slots[k].i]++
	}
	return counts
}

// Devices returns the compiled device count.
func (s *Sampler) Devices() int { return len(s.devs) }

// Profile returns the profile this sampler was compiled from.
func (s *Sampler) Profile() *Profile { return s.prof }

// Kind returns device d's population kind.
func (s *Sampler) Kind(d int) string { return s.devs[d%len(s.devs)].kind }

// DeviceTopic returns device d's status topic: three levels
// ("prefix/kind-idx/status") so the obs topic class stays collapsed
// and the swarm session's "+" wildcard filter still matches.
func (s *Sampler) DeviceTopic(prefix string, d int) string {
	d = d % len(s.devs)
	return prefix + "/" + s.devs[d].kind + "-" + strconv.Itoa(d) + "/status"
}

// NextFire advances device d one message: it returns the offset from
// run start at which the message fires and the payload bytes. Offsets
// are strictly increasing per device. The caller stops scheduling a
// device once the returned offset passes its run window — the sampler
// itself has no horizon.
func (s *Sampler) NextFire(d int) (time.Duration, []byte) {
	st := &s.devs[d%len(s.devs)]
	pop := &s.prof.Populations[st.pop]
	st.at += s.gap(st, pop)
	st.seq++
	return st.at, s.payload(st, pop)
}

// gap samples the next inter-message gap for a device at its current
// offset: a base draw from the cadence distribution divided by the
// modulation (diurnal × burst) in force at that offset. When the
// diurnal window is closed the device skips to the next opening.
func (s *Sampler) gap(st *devState, pop *Population) time.Duration {
	cad := &pop.Cadence
	base := float64(cad.Mean)
	switch cad.Dist {
	case DistPoisson:
		base *= st.rng.exp()
	case DistLognormal:
		sigma := cad.Sigma
		if sigma <= 0 {
			sigma = 0.5
		}
		// Median-anchored: exp(sigma·z) has median 1, so Mean stays the
		// typical gap instead of being dragged by the heavy tail.
		base *= math.Exp(sigma * st.rng.norm())
	}
	at := st.at
	if d := cad.Diurnal; d != nil {
		// Closed window: jump to the next opening, then modulate there.
		if !d.open(hourOf(at)) {
			at = d.nextOpen(at)
		}
		base /= d.factor(hourOf(at))
	}
	if b := pop.Burst; b != nil {
		if phase := (at + st.burst) % b.Every; phase < b.Length {
			base /= b.Factor
		}
	}
	gap := time.Duration(base)
	if gap < minGap {
		gap = minGap
	}
	return (at - st.at) + gap
}

// hourOf maps an offset from run start to the scenario hour of day.
func hourOf(at time.Duration) float64 {
	return math.Mod(at.Hours(), 24)
}

// open reports whether hour h falls inside the diurnal window.
func (d *Diurnal) open(h float64) bool {
	if d.Start == 0 && d.End == 0 {
		return true
	}
	return h >= d.Start && h < d.End
}

// factor is the rate multiplier at hour h inside the window: a
// half-sine ramp from Trough at the edges to 1 mid-window.
func (d *Diurnal) factor(h float64) float64 {
	if d.Start == 0 && d.End == 0 {
		return 1
	}
	trough := d.Trough
	if trough <= 0 {
		trough = 1
	}
	span := d.End - d.Start
	if span <= 0 {
		return trough
	}
	return trough + (1-trough)*math.Sin(math.Pi*(h-d.Start)/span)
}

// nextOpen returns the first offset at or after `at` whose hour of day
// is inside the window.
func (d *Diurnal) nextOpen(at time.Duration) time.Duration {
	h := hourOf(at)
	day := at - time.Duration(h*float64(time.Hour))
	if h < d.Start {
		return day + time.Duration(d.Start*float64(time.Hour))
	}
	return day + time.Duration((24+d.Start)*float64(time.Hour))
}

// payload builds the device's next message: compact JSON with the
// per-device sequence number, kind, firmware pin, and every schema
// field in declaration order.
func (s *Sampler) payload(st *devState, pop *Population) []byte {
	buf := make([]byte, 0, 64+24*len(pop.Fields))
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, st.seq, 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, st.kind...)
	buf = append(buf, '"')
	if st.fw != "" {
		buf = append(buf, `,"fw":"`...)
		buf = append(buf, st.fw...)
		buf = append(buf, '"')
	}
	for fi := range pop.Fields {
		f := &pop.Fields[fi]
		fst := &st.fields[fi]
		buf = append(buf, ',', '"')
		buf = append(buf, f.Name...)
		buf = append(buf, '"', ':')
		switch f.Gen {
		case GenEnum:
			p := f.PChange
			if p <= 0 {
				p = 0.1
			}
			if st.rng.float64() < p && len(f.States) > 1 {
				// Uniform jump to one of the other states.
				jump := 1 + int(st.rng.float64()*float64(len(f.States)-1))
				fst.value = math.Mod(fst.value+float64(jump), float64(len(f.States)))
			}
			buf = append(buf, '"')
			buf = append(buf, f.States[int(fst.value)]...)
			buf = append(buf, '"')
		case GenSine:
			period := f.Period
			if period <= 0 {
				period = 24 * time.Hour
			}
			mid := (f.Min + f.Max) / 2
			amp := (f.Max - f.Min) / 2
			v := mid + amp*math.Sin(2*math.Pi*(float64(st.at)/float64(period)+fst.phase))
			buf = strconv.AppendFloat(buf, v, 'f', 4, 64)
		case GenSpike:
			p := f.P
			if p <= 0 {
				p = 0.01
			}
			v := f.Min
			if st.rng.float64() < p {
				v = f.Min + st.rng.float64()*(f.Max-f.Min)
			}
			buf = strconv.AppendFloat(buf, v, 'f', 4, 64)
		default: // randomwalk and unnamed
			step := f.Step
			if step <= 0 {
				step = 0.05
			}
			fst.value += (st.rng.float64() - 0.5) * 2 * step * (f.Max - f.Min)
			if fst.value < f.Min {
				fst.value = f.Min
			}
			if fst.value > f.Max {
				fst.value = f.Max
			}
			buf = strconv.AppendFloat(buf, fst.value, 'f', 4, 64)
		}
	}
	buf = append(buf, '}')
	return buf
}

// Walk replays the full schedule of a freshly compiled sampler up to
// (but excluding) duration, calling fn for every message in per-device
// order. It is the pure-arithmetic twin of a live profiled run: same
// profile, seed, device budget and duration produce the identical
// message set at any -speed, because there is no clock here at all.
func Walk(p *Profile, devices int, seed int64, duration time.Duration, fn func(device int, at time.Duration, payload []byte)) error {
	s, err := Compile(p, devices, seed)
	if err != nil {
		return err
	}
	for d := 0; d < s.Devices(); d++ {
		for {
			at, payload := s.NextFire(d)
			if at >= duration {
				break
			}
			fn(d, at, payload)
		}
	}
	return nil
}

// Digest chains the full schedule into one SHA-256 hex digest: each
// device's (offset, topic, payload) stream hashes into a per-device
// chain, and the chains fold together in device order — so the digest
// is independent of worker interleaving and of the clock that paces a
// live run. It returns the digest and the total message count.
func Digest(p *Profile, devices int, seed int64, duration time.Duration, prefix string) (string, int64, error) {
	s, err := Compile(p, devices, seed)
	if err != nil {
		return "", 0, err
	}
	if prefix == "" {
		prefix = "swarm"
	}
	var total int64
	fold := sha256.New()
	var nanos [8]byte
	for d := 0; d < s.Devices(); d++ {
		chain := sha256.New()
		topic := s.DeviceTopic(prefix, d)
		for {
			at, payload := s.NextFire(d)
			if at >= duration {
				break
			}
			binary.BigEndian.PutUint64(nanos[:], uint64(at))
			chain.Write(nanos[:])
			chain.Write([]byte(topic))
			chain.Write(payload)
			total++
		}
		fold.Write(chain.Sum(nil))
	}
	return hex.EncodeToString(fold.Sum(nil)), total, nil
}

// ExpectedCounts walks the schedule and tallies messages per
// population kind — the oracle the capture round-trip acceptance
// compares live per-topic-class counts against.
func ExpectedCounts(p *Profile, devices int, seed int64, duration time.Duration) (map[string]int64, error) {
	s, err := Compile(p, devices, seed)
	if err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for d := 0; d < s.Devices(); d++ {
		kind := s.Kind(d)
		for {
			at, _ := s.NextFire(d)
			if at >= duration {
				break
			}
			out[kind]++
		}
	}
	return out, nil
}
