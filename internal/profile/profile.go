// Package profile models heterogeneous device populations: a seeded,
// YAML-serializable description of what a fleet *sends* — per-kind
// payload schemas with field generators, inter-message cadence
// distributions, diurnal and burst modulation, firmware-version skew,
// and population mixes — compiled into a deterministic sampler whose
// schedule is a pure function of (profile, seed, device). The sampler
// emits offsets from run start, never wall timestamps, so the swarm
// generator can pace it on any injected clock and the resulting digest
// is identical at -speed 1 and -speed max.
//
// The second half is capture: a Capture observes live broker/swarm
// traffic (on the same injected clock) and fits it back into a
// Profile — per-topic-class cadence statistics, payload field ranges,
// burst detection — so recorded traffic round-trips through the scene
// repository as a committable, vettable, replayable object.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/yamlite"
)

// Cadence distribution names.
const (
	DistFixed     = "fixed"     // constant gap
	DistPoisson   = "poisson"   // exponential gaps (memoryless arrivals)
	DistLognormal = "lognormal" // heavy-tailed gaps, Sigma is the log-stddev
)

// Field generator names.
const (
	GenRandomWalk = "randomwalk" // bounded random walk, Step per message
	GenSine       = "sine"       // sinusoid over Period with phase jitter
	GenEnum       = "enum"       // state machine over States, PChange per message
	GenSpike      = "spike"      // baseline Min with probability-P spikes to [Min,Max]
)

// Profile describes a device population mix. The zero value is not
// usable; build one by hand, Parse one from YAML, or Fit one from a
// Capture.
type Profile struct {
	// Name identifies the profile in the scene repository.
	Name string
	// Seed derives every per-device generator state. A profile is
	// replayable because the seed travels with it.
	Seed int64
	// Populations are the device groups in the mix.
	Populations []Population
}

// Population is one homogeneous device group.
type Population struct {
	// Kind names the device class; it becomes the middle topic segment
	// ("swarm/<kind>-<idx>/status") and must be a single MQTT level.
	Kind string
	// Count is the explicit device count. When 0 the population takes a
	// Weight share of whatever device budget the compiler is given.
	Count int
	// Weight is the share of the unallocated device budget this
	// population claims when Count is 0 (normalized across such
	// populations).
	Weight float64
	// Firmware maps version strings to population shares; each device
	// is pinned to one version at compile time and reports it in every
	// payload. Empty means no firmware field.
	Firmware map[string]float64
	// Cadence is the inter-message gap distribution.
	Cadence Cadence
	// Burst optionally multiplies the rate during periodic windows.
	Burst *Burst
	// Fields are the payload schema, emitted in declaration order.
	Fields []Field
}

// Cadence is an inter-message gap distribution, optionally modulated
// by a diurnal curve.
type Cadence struct {
	// Dist is the distribution name (DistFixed, DistPoisson,
	// DistLognormal). Empty defaults to DistFixed.
	Dist string
	// Mean is the mean inter-message gap.
	Mean time.Duration
	// Sigma is the lognormal log-stddev (ignored by other dists).
	Sigma float64
	// Diurnal optionally gates and shapes the rate over the scenario
	// day.
	Diurnal *Diurnal
}

// Diurnal modulates a cadence over the 24-hour scenario day: messages
// flow only inside the [Start, End) hour window, ramped by a
// half-sine from Trough at the window edges to full rate mid-window.
type Diurnal struct {
	// Start and End bound the active window in scenario hours of day
	// [0, 24]; Start must be strictly less than End (an empty window
	// can never fire — vet rule V018).
	Start, End float64
	// Trough is the rate multiplier at the window edges, in (0, 1];
	// 0 defaults to 1 (flat window).
	Trough float64
}

// Burst is periodic rate amplification: every Every of scenario time,
// the rate multiplies by Factor for Length. Each device gets a seeded
// phase so a population's bursts are correlated in width, not aligned
// to the second.
type Burst struct {
	Every  time.Duration
	Length time.Duration
	Factor float64
}

// Field is one payload field generator.
type Field struct {
	// Name is the JSON key.
	Name string
	// Gen is the generator name (GenRandomWalk, GenSine, GenEnum,
	// GenSpike).
	Gen string
	// Min and Max bound numeric generators.
	Min, Max float64
	// Step is the random-walk step as a fraction of the range per
	// message; 0 defaults to 0.05.
	Step float64
	// Period is the sine period; 0 defaults to 24h.
	Period time.Duration
	// States are the enum states (first is the initial state).
	States []string
	// PChange is the enum per-message transition probability; 0
	// defaults to 0.1.
	PChange float64
	// P is the spike per-message probability; 0 defaults to 0.01.
	P float64
}

// TotalCount sums the explicit population counts.
func (p *Profile) TotalCount() int {
	n := 0
	for _, pop := range p.Populations {
		n += pop.Count
	}
	return n
}

// Validate checks structural well-formedness: names present, known
// distribution and generator identifiers, sane bounds. Satisfiability
// (can this profile ever emit a message?) is vet rule V018's job —
// see Unsatisfiable.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile: name required")
	}
	if len(p.Populations) == 0 {
		return fmt.Errorf("profile: at least one population required")
	}
	seen := map[string]bool{}
	for i, pop := range p.Populations {
		where := fmt.Sprintf("population %d (%s)", i, pop.Kind)
		if pop.Kind == "" {
			return fmt.Errorf("profile: population %d has no kind", i)
		}
		if strings.ContainsAny(pop.Kind, "/+#") {
			return fmt.Errorf("profile: %s: kind must be a single MQTT topic level", where)
		}
		if seen[pop.Kind] {
			return fmt.Errorf("profile: duplicate population kind %q", pop.Kind)
		}
		seen[pop.Kind] = true
		if pop.Count < 0 {
			return fmt.Errorf("profile: %s: negative count", where)
		}
		if pop.Weight < 0 {
			return fmt.Errorf("profile: %s: negative weight", where)
		}
		switch pop.Cadence.Dist {
		case "", DistFixed, DistPoisson, DistLognormal:
		default:
			return fmt.Errorf("profile: %s: unknown cadence dist %q (want %s, %s or %s)",
				where, pop.Cadence.Dist, DistFixed, DistPoisson, DistLognormal)
		}
		if pop.Cadence.Sigma < 0 {
			return fmt.Errorf("profile: %s: negative cadence sigma", where)
		}
		if d := pop.Cadence.Diurnal; d != nil {
			if d.Start < 0 || d.End > 24 || d.Trough < 0 || d.Trough > 1 {
				return fmt.Errorf("profile: %s: diurnal window must sit inside [0,24] with trough in [0,1]", where)
			}
		}
		for vsn, share := range pop.Firmware {
			if vsn == "" {
				return fmt.Errorf("profile: %s: empty firmware version", where)
			}
			if share < 0 {
				return fmt.Errorf("profile: %s: firmware %q has a negative share", where, vsn)
			}
		}
		fields := map[string]bool{}
		for _, f := range pop.Fields {
			if f.Name == "" {
				return fmt.Errorf("profile: %s: field with no name", where)
			}
			if fields[f.Name] {
				return fmt.Errorf("profile: %s: duplicate field %q", where, f.Name)
			}
			fields[f.Name] = true
			switch f.Gen {
			case "", GenRandomWalk, GenSine, GenSpike:
				if f.Max < f.Min {
					return fmt.Errorf("profile: %s: field %q has max < min", where, f.Name)
				}
			case GenEnum:
				if len(f.States) == 0 {
					return fmt.Errorf("profile: %s: enum field %q needs at least one state", where, f.Name)
				}
			default:
				return fmt.Errorf("profile: %s: field %q has unknown generator %q (want %s, %s, %s or %s)",
					where, f.Name, f.Gen, GenRandomWalk, GenSine, GenEnum, GenSpike)
			}
		}
	}
	return nil
}

// Problem is one satisfiability finding: a profile clause that can
// never produce (or always suppresses) traffic, with a mechanical fix.
type Problem struct {
	// Population is the offending population kind ("" for profile-wide
	// problems like a zero mix).
	Population string
	// Message states what can never fire.
	Message string
	// Fix is the mechanical fix-it hint.
	Fix string
}

// Unsatisfiable reports every clause of the profile that can never
// emit a message — the substance of vet rule V018. A structurally
// invalid profile (Validate fails) reports that single problem.
func (p *Profile) Unsatisfiable() []Problem {
	if err := p.Validate(); err != nil {
		return []Problem{{Message: err.Error(), Fix: "fix the structural error first"}}
	}
	var out []Problem
	anyDevices := false
	anyWeight := false
	for _, pop := range p.Populations {
		if pop.Count > 0 {
			anyDevices = true
		}
		if pop.Count == 0 && pop.Weight > 0 {
			anyWeight = true
		}
		if pop.Cadence.Mean <= 0 {
			out = append(out, Problem{
				Population: pop.Kind,
				Message:    fmt.Sprintf("cadence mean_ms %d is not positive, so the rate is <= 0 and no message can ever fire", pop.Cadence.Mean.Milliseconds()),
				Fix:        "set cadence.mean_ms to a positive inter-message gap (e.g. 1000 for one message per second)",
			})
		}
		if d := pop.Cadence.Diurnal; d != nil && d.End <= d.Start {
			out = append(out, Problem{
				Population: pop.Kind,
				Message:    fmt.Sprintf("diurnal window [%g, %g) is empty, so the population is never active", d.Start, d.End),
				Fix:        "set diurnal.end_hour strictly greater than diurnal.start_hour (or drop the diurnal section for always-on)",
			})
		}
		if b := pop.Burst; b != nil && (b.Every <= 0 || b.Length <= 0 || b.Factor <= 0) {
			out = append(out, Problem{
				Population: pop.Kind,
				Message: fmt.Sprintf("burst every_ms=%d length_ms=%d factor=%g can never fire a burst window",
					b.Every.Milliseconds(), b.Length.Milliseconds(), b.Factor),
				Fix: "give burst positive every_ms, length_ms and factor (or drop the burst section)",
			})
		}
		if len(pop.Firmware) > 0 {
			total := 0.0
			for _, share := range pop.Firmware {
				total += share
			}
			if total <= 0 {
				out = append(out, Problem{
					Population: pop.Kind,
					Message:    "firmware shares sum to 0, so no device can be assigned a version",
					Fix:        "give at least one firmware version a positive share",
				})
			}
		}
	}
	if !anyDevices && !anyWeight {
		out = append(out, Problem{
			Message: "population mix is empty: every count is 0 and every weight is 0, so no device exists",
			Fix:     "give at least one population a positive count or weight",
		})
	}
	return out
}

// Value renders the profile as the plain yamlite value tree (the
// inverse of FromValue). Durations serialize as integral milliseconds.
func (p *Profile) Value() any {
	pops := make([]any, 0, len(p.Populations))
	for _, pop := range p.Populations {
		m := map[string]any{"kind": pop.Kind}
		if pop.Count != 0 {
			m["count"] = int64(pop.Count)
		}
		if pop.Weight != 0 {
			m["weight"] = pop.Weight
		}
		if len(pop.Firmware) > 0 {
			fw := map[string]any{}
			for vsn, share := range pop.Firmware {
				fw[vsn] = share
			}
			m["firmware"] = fw
		}
		cad := map[string]any{"mean_ms": pop.Cadence.Mean.Milliseconds()}
		if pop.Cadence.Dist != "" {
			cad["dist"] = pop.Cadence.Dist
		}
		if pop.Cadence.Sigma != 0 {
			cad["sigma"] = pop.Cadence.Sigma
		}
		if d := pop.Cadence.Diurnal; d != nil {
			dm := map[string]any{"start_hour": d.Start, "end_hour": d.End}
			if d.Trough != 0 {
				dm["trough"] = d.Trough
			}
			cad["diurnal"] = dm
		}
		m["cadence"] = cad
		if b := pop.Burst; b != nil {
			m["burst"] = map[string]any{
				"every_ms":  b.Every.Milliseconds(),
				"length_ms": b.Length.Milliseconds(),
				"factor":    b.Factor,
			}
		}
		if len(pop.Fields) > 0 {
			fields := make([]any, 0, len(pop.Fields))
			for _, f := range pop.Fields {
				fm := map[string]any{"name": f.Name}
				if f.Gen != "" {
					fm["gen"] = f.Gen
				}
				switch f.Gen {
				case GenEnum:
					states := make([]any, len(f.States))
					for i, s := range f.States {
						states[i] = s
					}
					fm["states"] = states
					if f.PChange != 0 {
						fm["p_change"] = f.PChange
					}
				default:
					if f.Min != 0 {
						fm["min"] = f.Min
					}
					if f.Max != 0 {
						fm["max"] = f.Max
					}
					if f.Step != 0 {
						fm["step"] = f.Step
					}
					if f.Period != 0 {
						fm["period_ms"] = f.Period.Milliseconds()
					}
					if f.P != 0 {
						fm["p"] = f.P
					}
				}
				fields = append(fields, fm)
			}
			m["fields"] = fields
		}
		pops = append(pops, m)
	}
	out := map[string]any{
		"profile":     p.Name,
		"populations": pops,
	}
	if p.Seed != 0 {
		out["seed"] = p.Seed
	}
	return out
}

// IsProfileValue reports whether a decoded yamlite document looks like
// a profile (top-level "profile" name plus a "populations" list) —
// how `dbox vet` and the repository distinguish profile objects from
// setups.
func IsProfileValue(v any) bool {
	m, ok := v.(map[string]any)
	if !ok {
		return false
	}
	_, hasName := m["profile"].(string)
	_, hasPops := m["populations"].([]any)
	return hasName && hasPops
}

// FromValue rebuilds a profile from its yamlite value tree.
func FromValue(v any) (*Profile, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("profile: document must be a mapping")
	}
	name, _ := m["profile"].(string)
	if name == "" {
		return nil, fmt.Errorf("profile: missing profile name")
	}
	p := &Profile{Name: name, Seed: asInt64(m["seed"])}
	rawPops, ok := m["populations"].([]any)
	if !ok {
		return nil, fmt.Errorf("profile: populations must be a list")
	}
	for i, rp := range rawPops {
		pm, ok := rp.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("profile: population %d must be a mapping", i)
		}
		pop := Population{
			Kind:   stringOr(pm["kind"], ""),
			Count:  int(asInt64(pm["count"])),
			Weight: asFloat(pm["weight"]),
		}
		if fw, ok := pm["firmware"].(map[string]any); ok {
			pop.Firmware = map[string]float64{}
			for vsn, share := range fw {
				pop.Firmware[vsn] = asFloat(share)
			}
		}
		if cad, ok := pm["cadence"].(map[string]any); ok {
			pop.Cadence = Cadence{
				Dist:  stringOr(cad["dist"], ""),
				Mean:  time.Duration(asInt64(cad["mean_ms"])) * time.Millisecond,
				Sigma: asFloat(cad["sigma"]),
			}
			if dm, ok := cad["diurnal"].(map[string]any); ok {
				pop.Cadence.Diurnal = &Diurnal{
					Start:  asFloat(dm["start_hour"]),
					End:    asFloat(dm["end_hour"]),
					Trough: asFloat(dm["trough"]),
				}
			}
		}
		if bm, ok := pm["burst"].(map[string]any); ok {
			pop.Burst = &Burst{
				Every:  time.Duration(asInt64(bm["every_ms"])) * time.Millisecond,
				Length: time.Duration(asInt64(bm["length_ms"])) * time.Millisecond,
				Factor: asFloat(bm["factor"]),
			}
		}
		if rawFields, ok := pm["fields"].([]any); ok {
			for j, rf := range rawFields {
				fm, ok := rf.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("profile: population %d field %d must be a mapping", i, j)
				}
				f := Field{
					Name:    stringOr(fm["name"], ""),
					Gen:     stringOr(fm["gen"], ""),
					Min:     asFloat(fm["min"]),
					Max:     asFloat(fm["max"]),
					Step:    asFloat(fm["step"]),
					Period:  time.Duration(asInt64(fm["period_ms"])) * time.Millisecond,
					PChange: asFloat(fm["p_change"]),
					P:       asFloat(fm["p"]),
				}
				if states, ok := fm["states"].([]any); ok {
					for _, s := range states {
						f.States = append(f.States, stringOr(s, ""))
					}
				}
				pop.Fields = append(pop.Fields, f)
			}
		}
		p.Populations = append(p.Populations, pop)
	}
	sortFirmwareStable(p)
	return p, nil
}

// sortFirmwareStable is a no-op hook kept for clarity: firmware maps
// are consumed in sorted-key order everywhere (compile, marshal), so
// map iteration order never leaks into sampler output.
func sortFirmwareStable(*Profile) {}

// Marshal renders the profile as a single-document YAML object after
// validating it.
func Marshal(p *Profile) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return yamlite.Encode(p.Value())
}

// Parse decodes a YAML profile document without validating
// satisfiability; Validate gates structure only.
func Parse(data []byte) (*Profile, error) {
	v, err := yamlite.Decode(data)
	if err != nil {
		return nil, err
	}
	p, err := FromValue(v)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Kinds returns the population kinds in declaration order.
func (p *Profile) Kinds() []string {
	out := make([]string, len(p.Populations))
	for i, pop := range p.Populations {
		out[i] = pop.Kind
	}
	return out
}

// firmwareVersions returns a population's versions in sorted order with
// their cumulative shares normalized to 1 — the stable lookup table a
// device's compile-time draw lands in.
func (pop *Population) firmwareVersions() ([]string, []float64) {
	if len(pop.Firmware) == 0 {
		return nil, nil
	}
	versions := make([]string, 0, len(pop.Firmware))
	for vsn := range pop.Firmware {
		versions = append(versions, vsn)
	}
	sort.Strings(versions)
	total := 0.0
	for _, vsn := range versions {
		total += pop.Firmware[vsn]
	}
	if total <= 0 {
		return nil, nil
	}
	cum := make([]float64, len(versions))
	acc := 0.0
	for i, vsn := range versions {
		acc += pop.Firmware[vsn] / total
		cum[i] = acc
	}
	return versions, cum
}

func asInt64(v any) int64 {
	switch n := v.(type) {
	case int64:
		return n
	case int:
		return int64(n)
	case float64:
		return int64(n)
	}
	return 0
}

func asFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	case int:
		return float64(n)
	}
	return 0
}

func stringOr(v any, def string) string {
	if s, ok := v.(string); ok {
		return s
	}
	return def
}
