package profile

import (
	"testing"
)

// FuzzParse holds the profile parser to the same contract as the rest
// of the YAML surface: arbitrary input never panics, and anything that
// parses and validates must survive a Marshal→Parse round trip with
// an identical compiled schedule.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"profile: city\npopulations:\n  - kind: a\n    count: 1\n    cadence: {mean_ms: 100}\n",
		"profile: x\nseed: 7\npopulations:\n  - kind: t\n    weight: 2\n    cadence: {dist: poisson, mean_ms: 250}\n",
		"profile: d\npopulations:\n  - kind: s\n    count: 2\n    cadence: {dist: lognormal, mean_ms: 500, sigma: 0.7, diurnal: {start_hour: 8, end_hour: 18, trough: 0.2}}\n",
		"profile: b\npopulations:\n  - kind: cam\n    count: 3\n    burst: {every_ms: 2000, length_ms: 200, factor: 5}\n    cadence: {mean_ms: 50}\n",
		"profile: f\npopulations:\n  - kind: lock\n    count: 4\n    firmware: {\"1.0\": 0.8, \"1.1\": 0.2}\n    cadence: {mean_ms: 100}\n    fields:\n      - {name: temp, gen: sine, min: 18, max: 26, period_ms: 60000}\n      - {name: mode, gen: enum, states: [on, off], p_change: 0.1}\n",
		"profile: ''\npopulations: []\n",
		"profile: deep\npopulations:\n  - kind: [nested, list]\n",
		"not a profile at all",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		out, err := Marshal(p)
		if err != nil {
			t.Fatalf("parsed profile does not marshal: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("marshaled profile does not parse back: %v\n%s", err, out)
		}
		if len(back.Populations) != len(p.Populations) {
			t.Fatalf("round trip changed population count: %d vs %d",
				len(p.Populations), len(back.Populations))
		}
		// A satisfiable profile must compile identically after the
		// round trip.
		if len(p.Unsatisfiable()) == 0 {
			d1, _, err1 := Digest(p, 4, 1, 500000000, "swarm")
			d2, _, err2 := Digest(back, 4, 1, 500000000, "swarm")
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("compile divergence: %v vs %v", err1, err2)
			}
			if err1 == nil && d1 != d2 {
				t.Fatalf("round trip changed the schedule digest")
			}
		}
	})
}
