package profile

import (
	"math"
	"testing"
	"time"

	"repro/internal/clock"
)

// feed walks a profile's schedule into a capture as if it were live
// traffic: every sampled message lands at its scheduled offset on a
// virtual clock.
func feed(t *testing.T, cap *Capture, clk *clock.Virtual, p *Profile, devices int, duration time.Duration) {
	t.Helper()
	type ev struct {
		at      time.Duration
		topic   string
		payload []byte
	}
	var evs []ev
	s, err := Compile(p, devices, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < s.Devices(); d++ {
		topic := s.DeviceTopic("swarm", d)
		for {
			at, payload := s.NextFire(d)
			if at >= duration {
				break
			}
			evs = append(evs, ev{at, topic, payload})
		}
	}
	// Deliver in global time order, advancing the virtual clock so the
	// capture sees true scenario-time gaps.
	for {
		best := -1
		for i := range evs {
			if evs[i].payload == nil {
				continue
			}
			if best < 0 || evs[i].at < evs[best].at {
				best = i
			}
		}
		if best < 0 {
			break
		}
		clk.AdvanceTo(clock.Epoch.Add(evs[best].at))
		cap.Observe(evs[best].topic, evs[best].payload)
		evs[best].payload = nil
	}
}

// TestCaptureRoundTrip is the acceptance property in miniature:
// capture a run, fit a profile, replay the fitted profile with its
// seed, and the per-topic-class message counts agree within 5%.
func TestCaptureRoundTrip(t *testing.T) {
	src := &Profile{
		Name: "src",
		Seed: 21,
		Populations: []Population{
			{Kind: "thermostat", Count: 8, Cadence: Cadence{Dist: DistFixed, Mean: 250 * time.Millisecond},
				Fields: []Field{{Name: "temp_c", Gen: GenSine, Min: 18, Max: 26, Period: time.Minute}}},
			{Kind: "meter", Count: 5, Cadence: Cadence{Dist: DistFixed, Mean: 100 * time.Millisecond},
				Fields: []Field{{Name: "kwh", Gen: GenRandomWalk, Min: 0, Max: 10}}},
		},
	}
	const duration = 60 * time.Second
	clk := clock.NewVirtual()
	cap := NewCapture(clk)
	feed(t, cap, clk, src, 0, duration)

	observed := cap.ClassCounts()
	if len(observed) != 2 {
		t.Fatalf("want 2 captured classes, got %v", observed)
	}
	fitted := cap.Fit(FitOptions{Name: "fitted", Seed: 21})
	if fitted == nil {
		t.Fatal("empty fit")
	}
	if err := fitted.Validate(); err != nil {
		t.Fatalf("fitted profile invalid: %v", err)
	}
	if probs := fitted.Unsatisfiable(); len(probs) > 0 {
		t.Fatalf("fitted profile unsatisfiable: %v", probs)
	}
	// Round-trip through YAML: the fitted object must be committable.
	data, err := Marshal(fitted)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ExpectedCounts(back, 0, 0, duration)
	if err != nil {
		t.Fatal(err)
	}
	for cls, want := range observed {
		got := replayed[cls]
		if want == 0 {
			t.Fatalf("class %s observed zero messages", cls)
		}
		if delta := math.Abs(float64(got-want)) / float64(want); delta > 0.05 {
			t.Errorf("class %s: captured %d, replay %d (%.1f%% off, budget 5%%)",
				cls, want, got, delta*100)
		}
	}
	// Device counts round-trip exactly: distinct topics per class.
	for _, pop := range back.Populations {
		var want int
		for _, sp := range src.Populations {
			if sp.Kind == pop.Kind {
				want = sp.Count
			}
		}
		if pop.Count != want {
			t.Errorf("class %s fitted %d devices, want %d", pop.Kind, pop.Count, want)
		}
	}
	// Field schema survives: thermostat keeps a numeric temp_c within
	// the source bounds.
	for _, pop := range back.Populations {
		if pop.Kind != "thermostat" {
			continue
		}
		if len(pop.Fields) == 0 || pop.Fields[0].Name != "temp_c" {
			t.Fatalf("thermostat lost its temp_c field: %+v", pop.Fields)
		}
		f := pop.Fields[0]
		if f.Min < 17.9 || f.Max > 26.1 {
			t.Errorf("temp_c range [%g, %g] escaped the source [18, 26]", f.Min, f.Max)
		}
	}
}

// TestCaptureFitsPoisson checks the distribution chooser: exponential
// gaps must fit as poisson, constant gaps as fixed.
func TestCaptureFitsPoisson(t *testing.T) {
	src := &Profile{
		Name: "p",
		Seed: 4,
		Populations: []Population{
			{Kind: "rnd", Count: 6, Cadence: Cadence{Dist: DistPoisson, Mean: 100 * time.Millisecond}},
			{Kind: "tick", Count: 6, Cadence: Cadence{Dist: DistFixed, Mean: 100 * time.Millisecond}},
		},
	}
	clk := clock.NewVirtual()
	cap := NewCapture(clk)
	feed(t, cap, clk, src, 0, 30*time.Second)
	fitted := cap.Fit(FitOptions{Name: "f"})
	dists := map[string]string{}
	for _, pop := range fitted.Populations {
		dists[pop.Kind] = pop.Cadence.Dist
	}
	if dists["rnd"] != DistPoisson {
		t.Errorf("exponential gaps fitted as %q, want poisson", dists["rnd"])
	}
	if dists["tick"] != DistFixed {
		t.Errorf("constant gaps fitted as %q, want fixed", dists["tick"])
	}
}

// TestCaptureDetectsBurst feeds a synthetic stream that is quiet for
// most of the window and 10x hot for one second: the fit must carry a
// Burst entry.
func TestCaptureDetectsBurst(t *testing.T) {
	clk := clock.NewVirtual()
	cap := NewCapture(clk)
	at := time.Duration(0)
	step := func(d time.Duration) {
		at += d
		clk.AdvanceTo(clock.Epoch.Add(at))
	}
	payload := []byte(`{"seq":1,"v":0.5}`)
	for at < 20*time.Second {
		if at >= 10*time.Second && at < 11*time.Second {
			step(20 * time.Millisecond) // 50 msg/s burst
		} else {
			step(500 * time.Millisecond) // 2 msg/s baseline
		}
		cap.Observe("swarm/cam-0/status", payload)
	}
	fitted := cap.Fit(FitOptions{Name: "b"})
	if len(fitted.Populations) != 1 {
		t.Fatalf("want one population, got %+v", fitted.Populations)
	}
	b := fitted.Populations[0].Burst
	if b == nil {
		t.Fatal("burst not detected")
	}
	if b.Factor < 3 {
		t.Fatalf("burst factor %g too small", b.Factor)
	}
}

// TestCaptureFirmwareSkew checks the fw field lands as firmware shares
// rather than an enum field.
func TestCaptureFirmwareSkew(t *testing.T) {
	src := &Profile{
		Name: "fw",
		Seed: 8,
		Populations: []Population{{
			Kind: "lock", Count: 20,
			Firmware: map[string]float64{"2.0": 0.75, "2.1": 0.25},
			Cadence:  Cadence{Dist: DistFixed, Mean: 500 * time.Millisecond},
		}},
	}
	clk := clock.NewVirtual()
	cap := NewCapture(clk)
	feed(t, cap, clk, src, 0, 20*time.Second)
	fitted := cap.Fit(FitOptions{Name: "f"})
	fw := fitted.Populations[0].Firmware
	if len(fw) != 2 {
		t.Fatalf("want 2 firmware versions, got %v", fw)
	}
	if fw["2.0"] < 0.5 || fw["2.0"] > 0.95 {
		t.Errorf("version 2.0 share %g far from the 0.75 skew", fw["2.0"])
	}
	if len(fitted.Populations[0].Fields) != 0 {
		t.Errorf("fw leaked into the field schema: %+v", fitted.Populations[0].Fields)
	}
}
