package profile

import (
	"strings"
	"testing"
	"time"
)

// testProfile is a three-population mix exercising every generator and
// distribution at least once.
func testProfile() *Profile {
	return &Profile{
		Name: "test-city",
		Seed: 42,
		Populations: []Population{
			{
				Kind:     "thermostat",
				Count:    6,
				Firmware: map[string]float64{"1.0": 0.7, "1.1": 0.3},
				Cadence:  Cadence{Dist: DistPoisson, Mean: 200 * time.Millisecond},
				Fields: []Field{
					{Name: "temp_c", Gen: GenSine, Min: 18, Max: 26, Period: time.Hour},
					{Name: "mode", Gen: GenEnum, States: []string{"idle", "heat", "cool"}, PChange: 0.2},
				},
			},
			{
				Kind:    "meter",
				Count:   4,
				Cadence: Cadence{Dist: DistFixed, Mean: 100 * time.Millisecond},
				Fields: []Field{
					{Name: "kwh", Gen: GenRandomWalk, Min: 0, Max: 10, Step: 0.1},
				},
			},
			{
				Kind:    "camera",
				Weight:  1,
				Cadence: Cadence{Dist: DistLognormal, Mean: 300 * time.Millisecond, Sigma: 0.4},
				Burst:   &Burst{Every: 2 * time.Second, Length: 200 * time.Millisecond, Factor: 5},
				Fields: []Field{
					{Name: "motion", Gen: GenSpike, Min: 0, Max: 1, P: 0.05},
				},
			},
		},
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	p := testProfile()
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("fitted YAML does not parse back: %v\n%s", err, data)
	}
	// The round-tripped profile must compile to the identical schedule:
	// digest equality is a stronger check than struct equality because
	// it covers everything the sampler consumes.
	d1, n1, err := Digest(p, 12, 0, 3*time.Second, "swarm")
	if err != nil {
		t.Fatal(err)
	}
	d2, n2, err := Digest(back, 12, 0, 3*time.Second, "swarm")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || n1 != n2 {
		t.Fatalf("round-trip changed the schedule: %s/%d vs %s/%d", d1, n1, d2, n2)
	}
	if n1 == 0 {
		t.Fatal("empty schedule")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
		want string
	}{
		{"no name", func(p *Profile) { p.Name = "" }, "name required"},
		{"no populations", func(p *Profile) { p.Populations = nil }, "at least one population"},
		{"slash kind", func(p *Profile) { p.Populations[0].Kind = "a/b" }, "single MQTT topic level"},
		{"dup kind", func(p *Profile) { p.Populations[1].Kind = "thermostat" }, "duplicate population kind"},
		{"bad dist", func(p *Profile) { p.Populations[0].Cadence.Dist = "zipf" }, "unknown cadence dist"},
		{"bad gen", func(p *Profile) { p.Populations[1].Fields[0].Gen = "brownian" }, "unknown generator"},
		{"enum no states", func(p *Profile) { p.Populations[0].Fields[1].States = nil }, "at least one state"},
		{"max < min", func(p *Profile) { p.Populations[1].Fields[0].Max = -1 }, "max < min"},
		{"dup field", func(p *Profile) {
			p.Populations[0].Fields = append(p.Populations[0].Fields, Field{Name: "temp_c"})
		}, "duplicate field"},
	}
	for _, tc := range cases {
		p := testProfile()
		tc.mut(p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestUnsatisfiable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
		want string
	}{
		{"zero mean", func(p *Profile) { p.Populations[0].Cadence.Mean = 0 }, "rate is <= 0"},
		{"empty diurnal", func(p *Profile) {
			p.Populations[0].Cadence.Diurnal = &Diurnal{Start: 9, End: 9}
		}, "diurnal window"},
		{"dead burst", func(p *Profile) { p.Populations[2].Burst.Factor = 0 }, "burst"},
		{"zero firmware", func(p *Profile) {
			p.Populations[0].Firmware = map[string]float64{"1.0": 0}
		}, "firmware shares sum to 0"},
		{"empty mix", func(p *Profile) {
			for i := range p.Populations {
				p.Populations[i].Count = 0
				p.Populations[i].Weight = 0
			}
		}, "population mix is empty"},
	}
	for _, tc := range cases {
		p := testProfile()
		tc.mut(p)
		probs := p.Unsatisfiable()
		found := false
		for _, pr := range probs {
			if strings.Contains(pr.Message, tc.want) {
				found = true
				if pr.Fix == "" {
					t.Errorf("%s: problem has no fix-it hint", tc.name)
				}
			}
		}
		if !found {
			t.Errorf("%s: problems %v miss substring %q", tc.name, probs, tc.want)
		}
	}
	if probs := testProfile().Unsatisfiable(); len(probs) != 0 {
		t.Fatalf("clean profile reported unsatisfiable: %v", probs)
	}
}

func TestAssignWeights(t *testing.T) {
	p := &Profile{
		Name: "w",
		Populations: []Population{
			{Kind: "a", Count: 10, Cadence: Cadence{Mean: time.Second}},
			{Kind: "b", Weight: 3, Cadence: Cadence{Mean: time.Second}},
			{Kind: "c", Weight: 1, Cadence: Cadence{Mean: time.Second}},
		},
	}
	s, err := Compile(p, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for d := 0; d < s.Devices(); d++ {
		counts[s.Kind(d)]++
	}
	if counts["a"] != 10 || counts["b"] != 15 || counts["c"] != 5 {
		t.Fatalf("mix split wrong: %v", counts)
	}
}

func TestClassOf(t *testing.T) {
	cases := map[string]string{
		"swarm/thermostat-17/status": "thermostat",
		"swarm/dev-3/status":         "dev",
		"swarm/gateway/status":       "gateway",
		"digibox/lamp-1/status":      "lamp",
		"single":                     "single",
		"a/b/c/d":                    "b",
	}
	for topic, want := range cases {
		if got := ClassOf(topic); got != want {
			t.Errorf("ClassOf(%q) = %q, want %q", topic, got, want)
		}
	}
}

func TestDiurnalWindowGates(t *testing.T) {
	p := &Profile{
		Name: "night-silent",
		Seed: 7,
		Populations: []Population{{
			Kind:    "sensor",
			Count:   3,
			Cadence: Cadence{Dist: DistFixed, Mean: time.Minute, Diurnal: &Diurnal{Start: 8, End: 18, Trough: 0.5}},
		}},
	}
	err := Walk(p, 0, 0, 24*time.Hour, func(_ int, at time.Duration, _ []byte) {
		h := at.Hours()
		if h < 8 || h >= 18.2 { // small tolerance: the gap lands just past a modulated draw
			t.Fatalf("message at hour %.2f outside the [8,18) window", h)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
