package broker

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Message is a received application message.
type Message struct {
	Topic    string
	Payload  []byte
	QoS      byte
	Retained bool
	// Dup marks a retransmitted (or chaos-duplicated) delivery.
	Dup bool
}

// Handler consumes messages delivered to a subscription. Handlers run
// on the client's single dispatch goroutine: a slow handler delays
// later messages for the same client but never corrupts state.
type Handler func(Message)

// ClientOptions configures Dial.
type ClientOptions struct {
	ClientID  string
	KeepAlive time.Duration // 0 disables client keepalive
	// ConnectTimeout bounds the TCP dial plus CONNECT handshake.
	ConnectTimeout time.Duration
	// AckTimeout bounds waiting for SUBACK/UNSUBACK/PUBACK.
	AckTimeout time.Duration
	// PublishRetries is how many times a QoS 1 publish is
	// retransmitted (with the DUP flag, same packet ID) after an ack
	// timeout before failing. 0 means the default (2); negative
	// disables retransmission.
	PublishRetries int
	// AutoReconnect keeps the client alive across connection losses:
	// it redials with capped exponential backoff plus jitter,
	// re-establishes every registered subscription, and flushes
	// publishes buffered while disconnected. Without it a lost
	// connection closes the client (the pre-chaos behaviour).
	AutoReconnect bool
	// ReconnectMin/ReconnectMax bound the reconnect backoff.
	// Defaults: 50ms and 2s.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// PublishBuffer bounds the publishes buffered while disconnected
	// (AutoReconnect only); beyond it, QoS 0 messages are discarded
	// and QoS 1 publishes fail. Default 256.
	PublishBuffer int
	// OnConnectionState, when set, receives connection transitions:
	// (false, cause) when the connection is lost, (true, nil) once a
	// (re)connect — including resubscription and buffered-publish
	// flush — completes. Further listeners can be added with OnState.
	OnConnectionState func(connected bool, cause error)
	// Dialer overrides the TCP dial (tests, chaos connection hooks).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Clock is the time source for keepalive pings, ack timeouts, and
	// reconnect backoff. Nil means the wall clock (clock.System);
	// deterministic harnesses inject a clock.Virtual.
	Clock clock.Clock
	// JitterSeed seeds the reconnect-backoff jitter so a session's
	// reconnect timeline is a pure function of its seed (chaos replays
	// reproduce identical backoff sequences). 0 derives a stable seed
	// from the client ID.
	JitterSeed int64
}

func (o *ClientOptions) withDefaults() ClientOptions {
	out := ClientOptions{
		KeepAlive:      30 * time.Second,
		ConnectTimeout: 5 * time.Second,
		AckTimeout:     5 * time.Second,
		PublishRetries: 2,
		ReconnectMin:   50 * time.Millisecond,
		ReconnectMax:   2 * time.Second,
		PublishBuffer:  256,
	}
	if o != nil {
		if o.ClientID != "" {
			out.ClientID = o.ClientID
		}
		if o.KeepAlive != 0 {
			out.KeepAlive = o.KeepAlive
		}
		if o.ConnectTimeout > 0 {
			out.ConnectTimeout = o.ConnectTimeout
		}
		if o.AckTimeout > 0 {
			out.AckTimeout = o.AckTimeout
		}
		if o.PublishRetries > 0 {
			out.PublishRetries = o.PublishRetries
		}
		if o.PublishRetries < 0 {
			out.PublishRetries = 0
		}
		out.AutoReconnect = o.AutoReconnect
		if o.ReconnectMin > 0 {
			out.ReconnectMin = o.ReconnectMin
		}
		if o.ReconnectMax > 0 {
			out.ReconnectMax = o.ReconnectMax
		}
		if o.PublishBuffer > 0 {
			out.PublishBuffer = o.PublishBuffer
		}
		out.OnConnectionState = o.OnConnectionState
		out.Dialer = o.Dialer
		out.Clock = o.Clock
		out.JitterSeed = o.JitterSeed
	}
	out.Clock = clock.Or(out.Clock)
	return out
}

// errAckTimeout is the retryable "no ack arrived in time" condition.
var errAckTimeout = errors.New("mqtt: ack timeout")

// clientSub is one registered subscription, kept so reconnects can
// re-establish it.
type clientSub struct {
	qos byte
	h   Handler
}

// Client is an MQTT 3.1.1 client. Safe for concurrent use. With
// ClientOptions.AutoReconnect it survives connection loss: it keeps
// its subscriptions registered, buffers publishes, redials with
// backoff, resubscribes, and flushes the buffer.
type Client struct {
	opts ClientOptions
	addr string

	writeMu sync.Mutex // serialises packet writes

	mu        sync.Mutex
	conn      net.Conn // nil while disconnected
	connDone  chan struct{}
	connected bool
	subs      map[string]clientSub // filter -> subscription
	pending   map[uint16]chan *Packet
	nextID    uint16
	buffered  []*Packet // publishes parked while disconnected
	stateFns  []func(connected bool, cause error)
	closed    bool
	closeErr  error
	lastErr   error // most recent connection-loss cause

	clk    clock.Clock
	jitter *clock.Jitter

	done chan struct{}
	wg   sync.WaitGroup
}

// clientSeq numbers anonymous clients; a process-local counter instead
// of a wall-clock stamp keeps default client IDs deterministic.
var clientSeq atomic.Uint64

// Dial connects and completes the MQTT handshake. The initial dial is
// not retried; AutoReconnect governs what happens after the first
// successful connect.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	o := opts.withDefaults()
	if o.ClientID == "" {
		o.ClientID = fmt.Sprintf("dbox-%d", clientSeq.Add(1))
	}
	seed := o.JitterSeed
	if seed == 0 {
		seed = clock.SeedString(o.ClientID)
	}
	c := &Client{
		opts:    o,
		addr:    addr,
		subs:    map[string]clientSub{},
		pending: map[uint16]chan *Packet{},
		clk:     o.Clock,
		jitter:  clock.NewJitter(seed),
		done:    make(chan struct{}),
	}
	if o.OnConnectionState != nil {
		c.stateFns = []func(bool, error){o.OnConnectionState}
	}
	conn, err := c.handshake()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.conn = conn
	c.connected = true
	c.connDone = make(chan struct{})
	connDone := c.connDone
	c.mu.Unlock()
	c.startLoops(conn, connDone)
	return c, nil
}

// handshake dials and completes CONNECT/CONNACK, returning the ready
// connection.
func (c *Client) handshake() (net.Conn, error) {
	dial := c.opts.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(c.addr, c.opts.ConnectTimeout)
	if err != nil {
		return nil, err
	}
	connect := &Packet{
		Type:         CONNECT,
		ClientID:     c.opts.ClientID,
		CleanSession: true,
		KeepAliveSec: uint16(c.opts.KeepAlive / time.Second),
	}
	data, err := connect.Encode()
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.opts.ConnectTimeout)) //dbox:allow wallclock -- net.Conn deadlines compare against the kernel's wall clock
	if _, err := conn.Write(data); err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := ReadPacket(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mqtt: handshake: %w", err)
	}
	if ack.Type != CONNACK {
		conn.Close()
		return nil, fmt.Errorf("mqtt: expected CONNACK, got %v", ack.Type)
	}
	if ack.ReturnCode != ConnAccepted {
		conn.Close()
		return nil, fmt.Errorf("mqtt: connection refused (code %d)", ack.ReturnCode)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

func (c *Client) startLoops(conn net.Conn, connDone chan struct{}) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.readLoop(conn)
	}()
	if c.opts.KeepAlive > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.pingLoop(connDone)
		}()
	}
}

func (c *Client) write(p *Packet) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("mqtt: not connected: %w", c.err())
	}
	data, err := p.Encode()
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	_, err = conn.Write(data)
	c.writeMu.Unlock()
	if err != nil {
		c.connLost(conn, err)
	}
	return err
}

func (c *Client) readLoop(conn net.Conn) {
	for {
		pkt, err := ReadPacket(conn)
		if err != nil {
			c.connLost(conn, err)
			return
		}
		switch pkt.Type {
		case PUBLISH:
			c.dispatch(pkt)
			if pkt.QoS == 1 {
				c.write(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
			}
		case PUBACK, SUBACK, UNSUBACK:
			c.mu.Lock()
			ch := c.pending[pkt.PacketID]
			delete(c.pending, pkt.PacketID)
			c.mu.Unlock()
			if ch != nil {
				ch <- pkt
			}
		case PINGRESP:
			// keepalive satisfied
		default:
			// Ignore everything else; 3.1.1 clients never receive
			// CONNECT/SUBSCRIBE.
		}
	}
}

func (c *Client) dispatch(pkt *Packet) {
	c.mu.Lock()
	var h Handler
	for filter, sub := range c.subs {
		if MatchTopic(filter, pkt.Topic) {
			h = sub.h
			break
		}
	}
	c.mu.Unlock()
	if h != nil {
		h(Message{Topic: pkt.Topic, Payload: pkt.Payload, QoS: pkt.QoS, Retained: pkt.Retain, Dup: pkt.Dup})
	}
}

// pingLoop sends keepalive pings until its connection ends (connDone)
// or the client closes.
func (c *Client) pingLoop(connDone chan struct{}) {
	interval := c.opts.KeepAlive / 2
	if interval < time.Second {
		interval = time.Second
	}
	t := c.clk.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C():
			if err := c.write(&Packet{Type: PINGREQ}); err != nil {
				return
			}
		case <-connDone:
			return
		case <-c.done:
			return
		}
	}
}

// connLost handles the end of one connection: it fails in-flight
// awaits with the real cause, then either closes the client (default)
// or hands off to the reconnect loop (AutoReconnect).
func (c *Client) connLost(conn net.Conn, err error) {
	c.mu.Lock()
	if c.closed || c.conn != conn {
		// Already closed, or a stale connection's loop reporting after
		// a reconnect — nothing to do.
		c.mu.Unlock()
		return
	}
	c.conn = nil
	c.connected = false
	c.lastErr = err
	connDone := c.connDone
	c.connDone = nil
	pend := c.pending
	c.pending = map[uint16]chan *Packet{}
	auto := c.opts.AutoReconnect
	fns := c.stateFns
	c.mu.Unlock()
	if connDone != nil {
		close(connDone)
	}
	conn.Close()
	for _, ch := range pend {
		close(ch)
	}
	for _, fn := range fns {
		fn(false, err)
	}
	if !auto {
		c.permanentClose(fmt.Errorf("mqtt: connection lost: %w", err))
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.reconnectLoop()
	}()
}

// reconnectLoop redials with capped exponential backoff plus jitter,
// then resubscribes every registered filter and flushes buffered
// publishes. It exits on success (a later loss starts a new loop) or
// when the client closes.
func (c *Client) reconnectLoop() {
	backoff := c.opts.ReconnectMin
	for {
		// Full jitter: the wait is uniform in (0, backoff], where
		// backoff is the capped exponential term — so a fleet of
		// clients kicked at once spreads its reconnects across the
		// whole window instead of stacking up at the cap. The jitter
		// source is seeded (per client, or from the session seed), so
		// replays walk the same backoff sequence.
		wait := time.Duration(1 + c.jitter.Int63n(int64(backoff)))
		select {
		case <-c.done:
			return
		case <-c.clk.After(wait):
		}
		conn, err := c.handshake()
		if err != nil {
			c.mu.Lock()
			c.lastErr = err
			c.mu.Unlock()
			backoff *= 2
			if backoff > c.opts.ReconnectMax {
				backoff = c.opts.ReconnectMax
			}
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		c.connected = true
		c.connDone = make(chan struct{})
		connDone := c.connDone
		type sub struct {
			filter string
			qos    byte
		}
		subs := make([]sub, 0, len(c.subs))
		for f, s := range c.subs {
			subs = append(subs, sub{f, s.qos})
		}
		sort.Slice(subs, func(i, j int) bool { return subs[i].filter < subs[j].filter })
		buffered := c.buffered
		c.buffered = nil
		fns := c.stateFns
		c.mu.Unlock()
		c.startLoops(conn, connDone)
		// Re-establish subscriptions. SUBACKs are consumed by the read
		// loop; these filters were accepted before, so the acks are
		// not awaited. A write failure here means the new connection
		// already broke — its connLost spawns the next reconnect loop.
		for _, s := range subs {
			pkt := &Packet{Type: SUBSCRIBE, PacketID: c.bareID(),
				Filters: []string{s.filter}, QoSs: []byte{s.qos}}
			if err := c.write(pkt); err != nil {
				return
			}
		}
		for _, pkt := range buffered {
			if pkt.QoS == 0 {
				if err := c.write(pkt); err != nil {
					return
				}
				continue
			}
			if err := c.publish1(pkt); err != nil {
				return
			}
		}
		for _, fn := range fns {
			fn(true, nil)
		}
		return
	}
}

// permanentClose finishes the client for good.
func (c *Client) permanentClose(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.closeErr = err
	conn := c.conn
	c.conn = nil
	c.connected = false
	connDone := c.connDone
	c.connDone = nil
	pend := c.pending
	c.pending = map[uint16]chan *Packet{}
	c.buffered = nil
	c.mu.Unlock()
	close(c.done)
	if connDone != nil {
		close(connDone)
	}
	if conn != nil {
		conn.Close()
	}
	for _, ch := range pend {
		close(ch)
	}
}

func (c *Client) allocID() (uint16, chan *Packet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		c.nextID++
		if c.nextID == 0 {
			c.nextID = 1
		}
		if _, busy := c.pending[c.nextID]; !busy {
			ch := make(chan *Packet, 1)
			c.pending[c.nextID] = ch
			return c.nextID, ch
		}
	}
}

// bareID allocates a packet ID without registering an ack channel;
// the matching ack is consumed and discarded by the read loop.
func (c *Client) bareID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		c.nextID++
		if c.nextID == 0 {
			c.nextID = 1
		}
		if _, busy := c.pending[c.nextID]; !busy {
			return c.nextID
		}
	}
}

// await waits for the ack on ch. On timeout it returns errAckTimeout,
// leaving the pending entry in place when keep is set (so a QoS 1
// retransmission reuses the packet ID); otherwise the entry is
// discarded. A closed channel or client yields the real
// connection-loss cause.
func (c *Client) await(id uint16, ch chan *Packet, want PacketType, keep bool) (*Packet, error) {
	select {
	case pkt, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("mqtt: connection lost while waiting for %v: %w", want, c.err())
		}
		if pkt.Type != want {
			return nil, fmt.Errorf("mqtt: expected %v, got %v", want, pkt.Type)
		}
		return pkt, nil
	case <-clock.System.After(c.opts.AckTimeout):
		// Deliberately the wall clock, like the net.Conn deadlines:
		// the ack guards a real network round-trip, whose latency does
		// not compress with the scenario clock. On a time-compressed
		// testbed a clocked wait would expire in microseconds of wall
		// time — long before any real broker could answer.
		if !keep {
			c.discardPending(id)
		}
		return nil, fmt.Errorf("%w waiting for %v", errAckTimeout, want)
	case <-c.done:
		return nil, fmt.Errorf("mqtt: client closed while waiting for %v: %w", want, c.err())
	}
}

func (c *Client) discardPending(id uint16) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// bufferPublish parks a publish for the next reconnect flush. It
// reports false when buffering does not apply (client closed, not in
// auto-reconnect mode, or currently connected).
func (c *Client) bufferPublish(pkt *Packet) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || !c.opts.AutoReconnect || c.connected {
		return false
	}
	if len(c.buffered) >= c.opts.PublishBuffer {
		if pkt.QoS == 0 {
			// Fire-and-forget overflow is silently shed, like a full
			// broker queue would.
			return true
		}
		return false
	}
	c.buffered = append(c.buffered, pkt)
	return true
}

// Publish sends an application message. QoS 1 blocks until the broker
// acknowledges (at-least-once), retransmitting with the DUP flag on
// ack timeout; QoS 0 is fire-and-forget. While disconnected with
// AutoReconnect, the message is buffered and flushed on reconnect.
func (c *Client) Publish(topic string, payload []byte, qos byte, retain bool) error {
	if qos > 1 {
		return fmt.Errorf("mqtt: QoS %d not supported", qos)
	}
	pkt := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if c.bufferPublish(pkt) {
		return nil
	}
	if qos == 0 {
		return c.write(pkt)
	}
	return c.publish1(pkt)
}

// publish1 runs the QoS 1 at-least-once exchange: send, await PUBACK,
// retransmit with DUP on timeout. A connection loss mid-exchange
// buffers the message for the reconnect flush when auto-reconnect is
// on.
func (c *Client) publish1(pkt *Packet) error {
	id, ch := c.allocID()
	pkt.PacketID = id
	attempts := c.opts.PublishRetries + 1
	var lastErr error
	for i := 0; i < attempts; i++ {
		pkt.Dup = i > 0
		if err := c.write(pkt); err != nil {
			c.discardPending(id)
			if c.bufferPublish(pkt) {
				return nil
			}
			return err
		}
		_, err := c.await(id, ch, PUBACK, true)
		if err == nil {
			return nil
		}
		if errors.Is(err, errAckTimeout) {
			lastErr = err
			continue
		}
		// Connection lost or client closed: pending already cleared.
		if c.bufferPublish(pkt) {
			return nil
		}
		return err
	}
	c.discardPending(id)
	return lastErr
}

// Subscribe registers a handler for a topic filter and blocks until
// the broker acknowledges. Retained messages matching the filter are
// delivered asynchronously after subscription. While disconnected
// with AutoReconnect the registration succeeds immediately and the
// subscription is established on reconnect.
func (c *Client) Subscribe(filter string, qos byte, h Handler) error {
	if err := ValidateTopicFilter(filter); err != nil {
		return err
	}
	if qos > 1 {
		qos = 1
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.err()
	}
	c.subs[filter] = clientSub{qos: qos, h: h}
	deferred := !c.connected && c.opts.AutoReconnect
	c.mu.Unlock()
	if deferred {
		return nil
	}
	id, ch := c.allocID()
	pkt := &Packet{Type: SUBSCRIBE, PacketID: id, Filters: []string{filter}, QoSs: []byte{qos}}
	if err := c.write(pkt); err != nil {
		if c.subscribeDeferred() {
			return nil
		}
		return err
	}
	ack, err := c.await(id, ch, SUBACK, false)
	if err != nil {
		if c.subscribeDeferred() {
			return nil
		}
		return err
	}
	if len(ack.QoSs) != 1 || ack.QoSs[0] == 0x80 {
		c.mu.Lock()
		delete(c.subs, filter)
		c.mu.Unlock()
		return errors.New("mqtt: subscription rejected")
	}
	return nil
}

// subscribeDeferred reports whether a failed subscribe exchange can be
// left to the reconnect loop (which resubscribes every registered
// filter).
func (c *Client) subscribeDeferred() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.AutoReconnect && !c.closed && !c.connected
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(filter string) error {
	c.mu.Lock()
	delete(c.subs, filter)
	disconnected := !c.connected
	auto := c.opts.AutoReconnect
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return c.err()
	}
	if disconnected && auto {
		// Nothing on the wire to undo; the filter simply will not be
		// re-established on reconnect.
		return nil
	}
	id, ch := c.allocID()
	if err := c.write(&Packet{Type: UNSUBSCRIBE, PacketID: id, Filters: []string{filter}}); err != nil {
		return err
	}
	_, err := c.await(id, ch, UNSUBACK, false)
	return err
}

// OnState adds a connection-state listener (see
// ClientOptions.OnConnectionState). Listeners added after Dial see
// only subsequent transitions.
func (c *Client) OnState(fn func(connected bool, cause error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fns := make([]func(bool, error), len(c.stateFns), len(c.stateFns)+1)
	copy(fns, c.stateFns)
	c.stateFns = append(fns, fn)
}

// IsConnected reports whether the client currently has a live
// connection.
func (c *Client) IsConnected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connected
}

// Close sends DISCONNECT and tears the client down for good; the
// reconnect loop, if any, stops.
func (c *Client) Close() error {
	c.write(&Packet{Type: DISCONNECT})
	c.permanentClose(errors.New("mqtt: client closed"))
	c.wg.Wait()
	return nil
}

// Done is closed when the client terminates for good. With
// AutoReconnect, individual connection losses do not close it — only
// Close does; use OnState to observe connectivity.
func (c *Client) Done() <-chan struct{} { return c.done }

// err returns the most specific known cause of the client's current
// state: the close cause, else the latest connection-loss error.
func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeErr != nil {
		return c.closeErr
	}
	if c.lastErr != nil {
		return c.lastErr
	}
	return errors.New("mqtt: client closed")
}
