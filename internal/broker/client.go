package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Message is a received application message.
type Message struct {
	Topic    string
	Payload  []byte
	QoS      byte
	Retained bool
}

// Handler consumes messages delivered to a subscription. Handlers run
// on the client's single dispatch goroutine: a slow handler delays
// later messages for the same client but never corrupts state.
type Handler func(Message)

// ClientOptions configures Dial.
type ClientOptions struct {
	ClientID  string
	KeepAlive time.Duration // 0 disables client keepalive
	// ConnectTimeout bounds the TCP dial plus CONNECT handshake.
	ConnectTimeout time.Duration
	// AckTimeout bounds waiting for SUBACK/UNSUBACK/PUBACK.
	AckTimeout time.Duration
}

func (o *ClientOptions) withDefaults() ClientOptions {
	out := ClientOptions{
		KeepAlive:      30 * time.Second,
		ConnectTimeout: 5 * time.Second,
		AckTimeout:     5 * time.Second,
	}
	if o != nil {
		if o.ClientID != "" {
			out.ClientID = o.ClientID
		}
		if o.KeepAlive != 0 {
			out.KeepAlive = o.KeepAlive
		}
		if o.ConnectTimeout > 0 {
			out.ConnectTimeout = o.ConnectTimeout
		}
		if o.AckTimeout > 0 {
			out.AckTimeout = o.AckTimeout
		}
	}
	return out
}

// Client is an MQTT 3.1.1 client. Safe for concurrent use.
type Client struct {
	opts ClientOptions
	conn net.Conn

	writeMu sync.Mutex // serialises packet writes

	mu       sync.Mutex
	subs     map[string]Handler // filter -> handler
	pending  map[uint16]chan *Packet
	nextID   uint16
	closed   bool
	closeErr error

	done chan struct{}
	wg   sync.WaitGroup
}

// Dial connects and completes the MQTT handshake.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	o := opts.withDefaults()
	if o.ClientID == "" {
		o.ClientID = fmt.Sprintf("dbox-%d", time.Now().UnixNano())
	}
	conn, err := net.DialTimeout("tcp", addr, o.ConnectTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		opts:    o,
		conn:    conn,
		subs:    map[string]Handler{},
		pending: map[uint16]chan *Packet{},
		done:    make(chan struct{}),
	}
	connect := &Packet{
		Type:         CONNECT,
		ClientID:     o.ClientID,
		CleanSession: true,
		KeepAliveSec: uint16(o.KeepAlive / time.Second),
	}
	conn.SetDeadline(time.Now().Add(o.ConnectTimeout))
	if err := c.write(connect); err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := ReadPacket(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mqtt: handshake: %w", err)
	}
	if ack.Type != CONNACK {
		conn.Close()
		return nil, fmt.Errorf("mqtt: expected CONNACK, got %v", ack.Type)
	}
	if ack.ReturnCode != ConnAccepted {
		conn.Close()
		return nil, fmt.Errorf("mqtt: connection refused (code %d)", ack.ReturnCode)
	}
	conn.SetDeadline(time.Time{})
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.readLoop()
	}()
	if o.KeepAlive > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.pingLoop()
		}()
	}
	return c, nil
}

func (c *Client) write(p *Packet) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err = c.conn.Write(data)
	return err
}

func (c *Client) readLoop() {
	for {
		pkt, err := ReadPacket(c.conn)
		if err != nil {
			c.shutdown(err)
			return
		}
		switch pkt.Type {
		case PUBLISH:
			c.dispatch(pkt)
			if pkt.QoS == 1 {
				c.write(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
			}
		case PUBACK, SUBACK, UNSUBACK:
			c.mu.Lock()
			ch := c.pending[pkt.PacketID]
			delete(c.pending, pkt.PacketID)
			c.mu.Unlock()
			if ch != nil {
				ch <- pkt
			}
		case PINGRESP:
			// keepalive satisfied
		default:
			// Ignore everything else; 3.1.1 clients never receive
			// CONNECT/SUBSCRIBE.
		}
	}
}

func (c *Client) dispatch(pkt *Packet) {
	c.mu.Lock()
	var h Handler
	for filter, handler := range c.subs {
		if MatchTopic(filter, pkt.Topic) {
			h = handler
			break
		}
	}
	c.mu.Unlock()
	if h != nil {
		h(Message{Topic: pkt.Topic, Payload: pkt.Payload, QoS: pkt.QoS, Retained: pkt.Retain})
	}
}

func (c *Client) pingLoop() {
	interval := c.opts.KeepAlive / 2
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := c.write(&Packet{Type: PINGREQ}); err != nil {
				c.shutdown(err)
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *Client) allocID() (uint16, chan *Packet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		c.nextID++
		if c.nextID == 0 {
			c.nextID = 1
		}
		if _, busy := c.pending[c.nextID]; !busy {
			ch := make(chan *Packet, 1)
			c.pending[c.nextID] = ch
			return c.nextID, ch
		}
	}
}

func (c *Client) await(id uint16, ch chan *Packet, want PacketType) (*Packet, error) {
	select {
	case pkt, ok := <-ch:
		if !ok {
			return nil, c.err()
		}
		if pkt.Type != want {
			return nil, fmt.Errorf("mqtt: expected %v, got %v", want, pkt.Type)
		}
		return pkt, nil
	case <-time.After(c.opts.AckTimeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("mqtt: timeout waiting for %v", want)
	case <-c.done:
		return nil, c.err()
	}
}

// Publish sends an application message. QoS 1 blocks until the broker
// acknowledges (at-least-once); QoS 0 is fire-and-forget.
func (c *Client) Publish(topic string, payload []byte, qos byte, retain bool) error {
	if qos > 1 {
		return fmt.Errorf("mqtt: QoS %d not supported", qos)
	}
	pkt := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if qos == 0 {
		return c.write(pkt)
	}
	id, ch := c.allocID()
	pkt.PacketID = id
	if err := c.write(pkt); err != nil {
		return err
	}
	_, err := c.await(id, ch, PUBACK)
	return err
}

// Subscribe registers a handler for a topic filter and blocks until
// the broker acknowledges. Retained messages matching the filter are
// delivered asynchronously after subscription.
func (c *Client) Subscribe(filter string, qos byte, h Handler) error {
	if err := ValidateTopicFilter(filter); err != nil {
		return err
	}
	if qos > 1 {
		qos = 1
	}
	c.mu.Lock()
	c.subs[filter] = h
	c.mu.Unlock()
	id, ch := c.allocID()
	pkt := &Packet{Type: SUBSCRIBE, PacketID: id, Filters: []string{filter}, QoSs: []byte{qos}}
	if err := c.write(pkt); err != nil {
		return err
	}
	ack, err := c.await(id, ch, SUBACK)
	if err != nil {
		return err
	}
	if len(ack.QoSs) != 1 || ack.QoSs[0] == 0x80 {
		return errors.New("mqtt: subscription rejected")
	}
	return nil
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(filter string) error {
	c.mu.Lock()
	delete(c.subs, filter)
	c.mu.Unlock()
	id, ch := c.allocID()
	if err := c.write(&Packet{Type: UNSUBSCRIBE, PacketID: id, Filters: []string{filter}}); err != nil {
		return err
	}
	_, err := c.await(id, ch, UNSUBACK)
	return err
}

// Close sends DISCONNECT and tears the connection down.
func (c *Client) Close() error {
	c.write(&Packet{Type: DISCONNECT})
	c.shutdown(errors.New("mqtt: client closed"))
	c.wg.Wait()
	return nil
}

func (c *Client) shutdown(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.closeErr = err
	pend := c.pending
	c.pending = map[uint16]chan *Packet{}
	c.mu.Unlock()
	close(c.done)
	c.conn.Close()
	for _, ch := range pend {
		close(ch)
	}
}

// Done is closed when the client connection terminates.
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeErr != nil {
		return c.closeErr
	}
	return errors.New("mqtt: client closed")
}
