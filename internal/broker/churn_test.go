package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTrieChurnConcurrent races subscribe/unsubscribe/publish/
// removeClient against each other on one broker. It asserts nothing
// about delivery counts (subscriptions come and go mid-publish by
// design) — the point is that the trie's locking holds up under -race
// and that the structure is consistent afterwards: once churn stops,
// the surviving subscriptions match exactly what a sequential replay
// of the survivors would.
func TestTrieChurnConcurrent(t *testing.T) {
	b := NewBroker(nil)
	defer b.Close()

	const (
		churners = 8
		rounds   = 400
	)
	filters := []string{
		"churn/+/status", "churn/#", "churn/dev/status",
		"churn/dev/+", "+/dev/status", "#",
	}
	var delivered int64
	var pubWg, churnWg sync.WaitGroup
	stop := make(chan struct{})

	// Publishers: hammer topics that hit all the filters above.
	for p := 0; p < 2; p++ {
		pubWg.Add(1)
		go func(p int) {
			defer pubWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				topic := "churn/dev/status"
				if p == 1 {
					topic = "churn/other/status"
				}
				if err := b.Publish(topic, []byte("x"), false); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}

	// Churners: subscribe/unsubscribe random filters, occasionally
	// ripping out the whole client via removeClient (the session-
	// teardown path).
	for c := 0; c < churners; c++ {
		churnWg.Add(1)
		go func(c int) {
			defer churnWg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			client := fmt.Sprintf("churner-%d", c)
			for i := 0; i < rounds; i++ {
				f := filters[rng.Intn(len(filters))]
				switch rng.Intn(3) {
				case 0:
					if err := b.SubscribeInProcess(client, f, byte(rng.Intn(2)), func(Message) {
						atomic.AddInt64(&delivered, 1)
					}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					b.UnsubscribeInProcess(client, f)
				case 2:
					b.subs.removeClient(client)
				}
			}
			// Leave each churner with exactly one known subscription.
			b.subs.removeClient(client)
			if err := b.SubscribeInProcess(client, filters[c%len(filters)], 0, func(Message) {
				atomic.AddInt64(&delivered, 1)
			}); err != nil {
				t.Error(err)
			}
		}(c)
	}

	done := make(chan struct{})
	go func() {
		churnWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("churn did not finish")
	}
	close(stop)
	pubWg.Wait()

	// Post-churn consistency: each churner holds exactly its final
	// subscription, so the trie must count exactly `churners` subs and
	// a publish matching all filters must reach each client once.
	if got := b.subs.countSubscriptions(); got != churners {
		t.Fatalf("subscriptions after churn = %d, want %d", got, churners)
	}
	before := atomic.LoadInt64(&delivered)
	if err := b.Publish("churn/dev/status", []byte("final"), false); err != nil {
		t.Fatal(err)
	}
	// Every final filter matches churn/dev/status, in-process delivery
	// is synchronous, and per-client dedup collapses duplicates.
	if got := atomic.LoadInt64(&delivered) - before; got != churners {
		t.Fatalf("final publish delivered %d, want %d", got, churners)
	}
}
