package broker

import (
	"fmt"
	"strings"
	"sync"
)

// ValidateTopicName checks a concrete topic used in PUBLISH: non-empty,
// no wildcards, no NUL, within the length limit (spec §4.7).
func ValidateTopicName(topic string) error {
	if topic == "" {
		return fmt.Errorf("mqtt: empty topic")
	}
	if len(topic) > maxTopicLength {
		return fmt.Errorf("mqtt: topic too long (%d bytes)", len(topic))
	}
	if strings.ContainsAny(topic, "+#") {
		return fmt.Errorf("mqtt: wildcards not allowed in topic name %q", topic)
	}
	if strings.ContainsRune(topic, 0) {
		return fmt.Errorf("mqtt: NUL in topic name")
	}
	return nil
}

// ValidateTopicFilter checks a subscription filter: "+" must occupy a
// whole level; "#" must be the final level (spec §4.7.1).
func ValidateTopicFilter(filter string) error {
	if filter == "" {
		return fmt.Errorf("mqtt: empty topic filter")
	}
	if len(filter) > maxTopicLength {
		return fmt.Errorf("mqtt: filter too long (%d bytes)", len(filter))
	}
	if strings.ContainsRune(filter, 0) {
		return fmt.Errorf("mqtt: NUL in topic filter")
	}
	levels := strings.Split(filter, "/")
	for i, lv := range levels {
		switch {
		case lv == "#":
			if i != len(levels)-1 {
				return fmt.Errorf("mqtt: '#' must be the last level in %q", filter)
			}
		case lv == "+":
			// ok anywhere as a full level
		case strings.ContainsAny(lv, "+#"):
			return fmt.Errorf("mqtt: wildcard must occupy a whole level in %q", filter)
		}
	}
	return nil
}

// MatchTopic reports whether a concrete topic matches a filter,
// following MQTT semantics: "#" also matches the parent level
// ("a/#" matches "a"), and "+" matches exactly one level including the
// empty level. Topics starting with "$" are not matched by wildcards
// at the first level (spec §4.7.2).
func MatchTopic(filter, topic string) bool {
	if strings.HasPrefix(topic, "$") && (strings.HasPrefix(filter, "+") || strings.HasPrefix(filter, "#")) {
		return false
	}
	return matchLevels(strings.Split(filter, "/"), strings.Split(topic, "/"))
}

func matchLevels(filter, topic []string) bool {
	for i, f := range filter {
		if f == "#" {
			return true
		}
		if i >= len(topic) {
			return false
		}
		if f != "+" && f != topic[i] {
			return false
		}
	}
	return len(topic) == len(filter)
}

// FiltersOverlap reports whether two subscription filters can match a
// common concrete topic — e.g. "a/+/c" and "a/b/#" both match "a/b/c".
// The $-prefix rule carries over: a filter whose first level is a
// literal "$..." level never overlaps one starting with a wildcard,
// because wildcards at the first level cannot match "$" topics.
func FiltersOverlap(a, b string) bool {
	al := strings.Split(a, "/")
	bl := strings.Split(b, "/")
	dollar := func(l []string) bool { return strings.HasPrefix(l[0], "$") }
	wild := func(l []string) bool { return l[0] == "+" || l[0] == "#" }
	if (dollar(al) && wild(bl)) || (dollar(bl) && wild(al)) {
		return false
	}
	return overlapLevels(al, bl)
}

func overlapLevels(a, b []string) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	// "x/#" matches "x" itself, so an exhausted side still overlaps a
	// remainder that is exactly ["#"].
	if len(a) == 0 {
		return len(b) == 1 && b[0] == "#"
	}
	if len(b) == 0 {
		return len(a) == 1 && a[0] == "#"
	}
	if a[0] == "#" || b[0] == "#" {
		return true
	}
	if a[0] == "+" || b[0] == "+" || a[0] == b[0] {
		return overlapLevels(a[1:], b[1:])
	}
	return false
}

// subTrie indexes subscriptions by topic filter for O(levels) matching
// instead of scanning every subscription per publish. Each node maps a
// topic level to children, with the special child keys "+" and "#".
type subTrie struct {
	mu   sync.RWMutex
	root *trieNode
}

type trieNode struct {
	children map[string]*trieNode
	subs     map[string]*subscription // keyed by client id
}

type subscription struct {
	clientID string
	filter   string
	qos      byte
	deliver  func(*Packet) // enqueue on the session's outbound path
}

func newSubTrie() *subTrie {
	return &subTrie{root: newTrieNode()}
}

func newTrieNode() *trieNode {
	return &trieNode{children: map[string]*trieNode{}}
}

// subscribe inserts or replaces a client's subscription to filter.
func (t *subTrie) subscribe(sub *subscription) {
	levels := strings.Split(sub.filter, "/")
	t.mu.Lock()
	defer t.mu.Unlock()
	node := t.root
	for _, lv := range levels {
		next, ok := node.children[lv]
		if !ok {
			next = newTrieNode()
			node.children[lv] = next
		}
		node = next
	}
	if node.subs == nil {
		node.subs = map[string]*subscription{}
	}
	node.subs[sub.clientID] = sub
}

// unsubscribe removes a client's subscription to filter, pruning empty
// branches. It reports whether the subscription existed.
func (t *subTrie) unsubscribe(clientID, filter string) bool {
	levels := strings.Split(filter, "/")
	t.mu.Lock()
	defer t.mu.Unlock()
	return unsubscribeAt(t.root, levels, clientID)
}

func unsubscribeAt(node *trieNode, levels []string, clientID string) bool {
	if len(levels) == 0 {
		if node.subs == nil {
			return false
		}
		if _, ok := node.subs[clientID]; !ok {
			return false
		}
		delete(node.subs, clientID)
		return true
	}
	child, ok := node.children[levels[0]]
	if !ok {
		return false
	}
	removed := unsubscribeAt(child, levels[1:], clientID)
	if removed && len(child.children) == 0 && len(child.subs) == 0 {
		delete(node.children, levels[0])
	}
	return removed
}

// removeClient drops every subscription held by a client (on clean
// disconnect) and returns the removed filters so callers can fire
// unsubscribe hooks for each.
func (t *subTrie) removeClient(clientID string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []string
	pruneClient(t.root, clientID, &removed)
	return removed
}

func pruneClient(node *trieNode, clientID string, removed *[]string) {
	if sub, ok := node.subs[clientID]; ok {
		*removed = append(*removed, sub.filter)
		delete(node.subs, clientID)
	}
	for lv, child := range node.children {
		pruneClient(child, clientID, removed)
		if len(child.children) == 0 && len(child.subs) == 0 {
			delete(node.children, lv)
		}
	}
}

// match collects all subscriptions whose filter matches topic. The
// returned slice is freshly allocated; duplicate client subscriptions
// via overlapping filters are all included (the broker de-duplicates
// per-client at delivery time, matching MQTT overlapping-subscription
// semantics of delivering at the highest QoS).
func (t *subTrie) match(topic string) []*subscription {
	levels := strings.Split(topic, "/")
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*subscription
	skipWild := strings.HasPrefix(topic, "$")
	matchAt(t.root, levels, skipWild, &out)
	return out
}

func matchAt(node *trieNode, levels []string, firstLevelNoWild bool, out *[]*subscription) {
	if len(levels) == 0 {
		for _, s := range node.subs {
			*out = append(*out, s)
		}
		// "a/#" matches "a": a child "#" at the exact end also fires.
		if hash, ok := node.children["#"]; ok {
			for _, s := range hash.subs {
				*out = append(*out, s)
			}
		}
		return
	}
	lv := levels[0]
	if child, ok := node.children[lv]; ok {
		matchAt(child, levels[1:], false, out)
	}
	if !firstLevelNoWild {
		if child, ok := node.children["+"]; ok {
			matchAt(child, levels[1:], false, out)
		}
		if child, ok := node.children["#"]; ok {
			for _, s := range child.subs {
				*out = append(*out, s)
			}
		}
	}
}

// exportAll walks the trie and returns every stored subscription, in
// trie order (callers sort). Used by Broker.ExportSubscriptions for
// shard-takeover snapshots.
func (t *subTrie) exportAll() []*subscription {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*subscription
	exportAt(t.root, &out)
	return out
}

func exportAt(node *trieNode, out *[]*subscription) {
	for _, s := range node.subs {
		*out = append(*out, s)
	}
	for _, c := range node.children {
		exportAt(c, out)
	}
}

// countSubscriptions returns the total number of stored subscriptions
// (used by tests and broker stats).
func (t *subTrie) countSubscriptions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return countAt(t.root)
}

func countAt(node *trieNode) int {
	n := len(node.subs)
	for _, c := range node.children {
		n += countAt(c)
	}
	return n
}
