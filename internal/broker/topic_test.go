package broker

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateTopicName(t *testing.T) {
	good := []string{"a", "a/b", "home/room 1/lamp", "$SYS/broker", "a//b"}
	for _, s := range good {
		if err := ValidateTopicName(s); err != nil {
			t.Errorf("ValidateTopicName(%q) = %v", s, err)
		}
	}
	bad := []string{"", "a/+", "#", "a/#", "a\x00b", strings.Repeat("x", 70000)}
	for _, s := range bad {
		if err := ValidateTopicName(s); err == nil {
			t.Errorf("ValidateTopicName(%q) passed", s)
		}
	}
}

func TestValidateTopicFilter(t *testing.T) {
	good := []string{"a", "a/b", "+", "#", "a/+/b", "a/#", "+/+", "a/+/#"}
	for _, s := range good {
		if err := ValidateTopicFilter(s); err != nil {
			t.Errorf("ValidateTopicFilter(%q) = %v", s, err)
		}
	}
	bad := []string{"", "a/#/b", "#/a", "a+", "a/b+", "a/#b", "a\x00"}
	for _, s := range bad {
		if err := ValidateTopicFilter(s); err == nil {
			t.Errorf("ValidateTopicFilter(%q) passed", s)
		}
	}
}

func TestMatchTopic(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/+", "a/b", true},
		{"a/+", "a/b/c", false},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true}, // '#' matches the parent level
		{"#", "a/b", true},
		{"+/+", "a/b", true},
		{"+/+", "a", false},
		{"+", "a", true},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"#", "$SYS/x", false}, // $-topics hidden from wildcards
		{"+/x", "$SYS/x", false},
		{"$SYS/#", "$SYS/x", true},
		{"a//b", "a//b", true},
		{"a/+/b", "a//b", true}, // '+' matches the empty level
	}
	for _, c := range cases {
		if got := MatchTopic(c.filter, c.topic); got != c.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

// Wildcard edge cases pinned as a regression suite: '#' at the root,
// '+' adjacent to '#', empty levels, and $-prefixed topics.
func TestMatchTopicWildcardEdgeCases(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		// '#' at the root matches everything not $-prefixed, including
		// topics with empty levels.
		{"#", "a", true},
		{"#", "a/b/c/d", true},
		{"#", "/", true},
		{"#", "", true},
		{"#", "$internal", false},
		// '+' adjacent to '#'.
		{"+/#", "a", true}, // '+' consumes "a", then '#' matches the parent
		{"+/#", "a/b", true},
		{"+/#", "a/b/c", true},
		{"+/#", "/", true},     // '+' matches the empty first level
		{"a/+/#", "a/b", true}, // '#' matches the parent "a/b"
		{"a/+/#", "a", false},  // nothing for '+' to consume
		{"+/+/#", "a/b", true}, // parent-level '#': "a/b" has exactly 2 levels
		{"+/+/#", "a", false},
		// Empty levels are real levels.
		{"a//b", "a/b", false},
		{"a/+/b", "a//b", true},
		{"+", "", true}, // "" is one empty level
		{"+/+", "/", true},
		{"a/b/", "a/b", false},  // trailing empty level is distinct
		{"a/b/+", "a/b/", true}, // '+' matches the trailing empty level
		// $-prefixed topics are invisible to first-level wildcards only.
		{"$SYS/#", "$SYS/broker/load", true},
		{"$SYS/+", "$SYS/x", true},
		{"+/broker", "$SYS/broker", false},
		{"#", "$SYS", false},
		{"a/$x", "a/$x", true}, // '$' only special at the first level
		{"a/+", "a/$x", true},
	}
	for _, c := range cases {
		if got := MatchTopic(c.filter, c.topic); got != c.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func TestFiltersOverlap(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/+", "a/b", true},
		{"a/+/c", "a/b/#", true}, // both match a/b/c
		{"a/#", "b/#", false},
		{"#", "anything/at/all", true},
		{"#", "+", true},
		{"+", "a", true},
		{"+", "a/b", false}, // one level vs two
		{"a/#", "a", true},  // "a/#" matches "a" itself
		{"a/b/#", "a/b", true},
		{"a/b/#", "a", false},     // "a/b/#" can't match the single level "a"
		{"a/+/c", "+/b/+", true},  // both match a/b/c
		{"a/+/c", "+/b/d", false}, // last level differs
		{"a//b", "a/+/b", true},   // '+' matches the empty level
		// $-prefixed literal first levels never overlap wildcard first
		// levels (wildcards can't match $ topics).
		{"$SYS/x", "+/x", false},
		{"$SYS/x", "#", false},
		{"$SYS/x", "$SYS/+", true}, // literal $ level on both sides is fine
		{"$SYS/#", "$SYS/broker", true},
	}
	for _, c := range cases {
		if got := FiltersOverlap(c.a, c.b); got != c.want {
			t.Errorf("FiltersOverlap(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := FiltersOverlap(c.b, c.a); got != c.want {
			t.Errorf("FiltersOverlap(%q, %q) = %v, want %v (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

// Property: if both filters match a common random topic, FiltersOverlap
// must report true (it may also be true for pairs whose witness topic
// the generator never produced, so only one direction is checked).
func TestQuickFiltersOverlapSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genTopic(r, true)
		b := genTopic(r, true)
		for trial := 0; trial < 20; trial++ {
			topic := genTopic(r, false)
			if MatchTopic(a, topic) && MatchTopic(b, topic) && !FiltersOverlap(a, b) {
				t.Logf("filters %q and %q both match %q but FiltersOverlap is false", a, b, topic)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func collectClients(subs []*subscription) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range subs {
		if !seen[s.clientID] {
			seen[s.clientID] = true
			out = append(out, s.clientID)
		}
	}
	sort.Strings(out)
	return out
}

func TestTrieSubscribeMatch(t *testing.T) {
	trie := newSubTrie()
	add := func(client, filter string) {
		trie.subscribe(&subscription{clientID: client, filter: filter})
	}
	add("c1", "home/+/lamp")
	add("c2", "home/#")
	add("c3", "home/kitchen/lamp")
	add("c4", "other/topic")

	got := collectClients(trie.match("home/kitchen/lamp"))
	want := []string{"c1", "c2", "c3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("match = %v, want %v", got, want)
	}
	if got := collectClients(trie.match("home")); fmt.Sprint(got) != "[c2]" {
		t.Errorf("parent-level # match = %v", got)
	}
	if got := trie.match("nomatch"); len(got) != 0 {
		t.Errorf("unexpected matches %v", got)
	}
}

func TestTrieUnsubscribePrunes(t *testing.T) {
	trie := newSubTrie()
	trie.subscribe(&subscription{clientID: "c1", filter: "a/b/c"})
	trie.subscribe(&subscription{clientID: "c2", filter: "a/b"})
	if !trie.unsubscribe("c1", "a/b/c") {
		t.Fatal("unsubscribe failed")
	}
	if trie.unsubscribe("c1", "a/b/c") {
		t.Error("double unsubscribe should return false")
	}
	if n := trie.countSubscriptions(); n != 1 {
		t.Errorf("count = %d", n)
	}
	// The a/b/c branch must be pruned but a/b intact.
	if got := collectClients(trie.match("a/b")); fmt.Sprint(got) != "[c2]" {
		t.Errorf("match after prune = %v", got)
	}
}

func TestTrieRemoveClient(t *testing.T) {
	trie := newSubTrie()
	trie.subscribe(&subscription{clientID: "c1", filter: "a/+"})
	trie.subscribe(&subscription{clientID: "c1", filter: "b/#"})
	trie.subscribe(&subscription{clientID: "c2", filter: "a/x"})
	trie.removeClient("c1")
	if n := trie.countSubscriptions(); n != 1 {
		t.Errorf("count = %d after removeClient", n)
	}
	if got := collectClients(trie.match("a/x")); fmt.Sprint(got) != "[c2]" {
		t.Errorf("match = %v", got)
	}
}

func TestTrieResubscribeReplaces(t *testing.T) {
	trie := newSubTrie()
	trie.subscribe(&subscription{clientID: "c1", filter: "a", qos: 0})
	trie.subscribe(&subscription{clientID: "c1", filter: "a", qos: 1})
	subs := trie.match("a")
	if len(subs) != 1 || subs[0].qos != 1 {
		t.Errorf("resubscribe did not replace: %+v", subs)
	}
}

// Property: trie matching agrees with the reference MatchTopic on
// random filters and topics.
func TestQuickTrieAgreesWithMatchTopic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		trie := newSubTrie()
		filters := make([]string, 1+r.Intn(8))
		for i := range filters {
			filters[i] = genTopic(r, true)
			trie.subscribe(&subscription{
				clientID: fmt.Sprintf("c%d", i),
				filter:   filters[i],
			})
		}
		for trial := 0; trial < 10; trial++ {
			topic := genTopic(r, false)
			got := map[string]bool{}
			for _, s := range trie.match(topic) {
				got[s.filter] = true
			}
			for _, fl := range filters {
				want := MatchTopic(fl, topic)
				if got[fl] != want {
					t.Logf("filter %q topic %q: trie=%v ref=%v", fl, topic, got[fl], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
