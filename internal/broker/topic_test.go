package broker

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateTopicName(t *testing.T) {
	good := []string{"a", "a/b", "home/room 1/lamp", "$SYS/broker", "a//b"}
	for _, s := range good {
		if err := ValidateTopicName(s); err != nil {
			t.Errorf("ValidateTopicName(%q) = %v", s, err)
		}
	}
	bad := []string{"", "a/+", "#", "a/#", "a\x00b", strings.Repeat("x", 70000)}
	for _, s := range bad {
		if err := ValidateTopicName(s); err == nil {
			t.Errorf("ValidateTopicName(%q) passed", s)
		}
	}
}

func TestValidateTopicFilter(t *testing.T) {
	good := []string{"a", "a/b", "+", "#", "a/+/b", "a/#", "+/+", "a/+/#"}
	for _, s := range good {
		if err := ValidateTopicFilter(s); err != nil {
			t.Errorf("ValidateTopicFilter(%q) = %v", s, err)
		}
	}
	bad := []string{"", "a/#/b", "#/a", "a+", "a/b+", "a/#b", "a\x00"}
	for _, s := range bad {
		if err := ValidateTopicFilter(s); err == nil {
			t.Errorf("ValidateTopicFilter(%q) passed", s)
		}
	}
}

func TestMatchTopic(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/+", "a/b", true},
		{"a/+", "a/b/c", false},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true}, // '#' matches the parent level
		{"#", "a/b", true},
		{"+/+", "a/b", true},
		{"+/+", "a", false},
		{"+", "a", true},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"#", "$SYS/x", false}, // $-topics hidden from wildcards
		{"+/x", "$SYS/x", false},
		{"$SYS/#", "$SYS/x", true},
		{"a//b", "a//b", true},
		{"a/+/b", "a//b", true}, // '+' matches the empty level
	}
	for _, c := range cases {
		if got := MatchTopic(c.filter, c.topic); got != c.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func collectClients(subs []*subscription) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range subs {
		if !seen[s.clientID] {
			seen[s.clientID] = true
			out = append(out, s.clientID)
		}
	}
	sort.Strings(out)
	return out
}

func TestTrieSubscribeMatch(t *testing.T) {
	trie := newSubTrie()
	add := func(client, filter string) {
		trie.subscribe(&subscription{clientID: client, filter: filter})
	}
	add("c1", "home/+/lamp")
	add("c2", "home/#")
	add("c3", "home/kitchen/lamp")
	add("c4", "other/topic")

	got := collectClients(trie.match("home/kitchen/lamp"))
	want := []string{"c1", "c2", "c3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("match = %v, want %v", got, want)
	}
	if got := collectClients(trie.match("home")); fmt.Sprint(got) != "[c2]" {
		t.Errorf("parent-level # match = %v", got)
	}
	if got := trie.match("nomatch"); len(got) != 0 {
		t.Errorf("unexpected matches %v", got)
	}
}

func TestTrieUnsubscribePrunes(t *testing.T) {
	trie := newSubTrie()
	trie.subscribe(&subscription{clientID: "c1", filter: "a/b/c"})
	trie.subscribe(&subscription{clientID: "c2", filter: "a/b"})
	if !trie.unsubscribe("c1", "a/b/c") {
		t.Fatal("unsubscribe failed")
	}
	if trie.unsubscribe("c1", "a/b/c") {
		t.Error("double unsubscribe should return false")
	}
	if n := trie.countSubscriptions(); n != 1 {
		t.Errorf("count = %d", n)
	}
	// The a/b/c branch must be pruned but a/b intact.
	if got := collectClients(trie.match("a/b")); fmt.Sprint(got) != "[c2]" {
		t.Errorf("match after prune = %v", got)
	}
}

func TestTrieRemoveClient(t *testing.T) {
	trie := newSubTrie()
	trie.subscribe(&subscription{clientID: "c1", filter: "a/+"})
	trie.subscribe(&subscription{clientID: "c1", filter: "b/#"})
	trie.subscribe(&subscription{clientID: "c2", filter: "a/x"})
	trie.removeClient("c1")
	if n := trie.countSubscriptions(); n != 1 {
		t.Errorf("count = %d after removeClient", n)
	}
	if got := collectClients(trie.match("a/x")); fmt.Sprint(got) != "[c2]" {
		t.Errorf("match = %v", got)
	}
}

func TestTrieResubscribeReplaces(t *testing.T) {
	trie := newSubTrie()
	trie.subscribe(&subscription{clientID: "c1", filter: "a", qos: 0})
	trie.subscribe(&subscription{clientID: "c1", filter: "a", qos: 1})
	subs := trie.match("a")
	if len(subs) != 1 || subs[0].qos != 1 {
		t.Errorf("resubscribe did not replace: %+v", subs)
	}
}

// Property: trie matching agrees with the reference MatchTopic on
// random filters and topics.
func TestQuickTrieAgreesWithMatchTopic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		trie := newSubTrie()
		filters := make([]string, 1+r.Intn(8))
		for i := range filters {
			filters[i] = genTopic(r, true)
			trie.subscribe(&subscription{
				clientID: fmt.Sprintf("c%d", i),
				filter:   filters[i],
			})
		}
		for trial := 0; trial < 10; trial++ {
			topic := genTopic(r, false)
			got := map[string]bool{}
			for _, s := range trie.match(topic) {
				got[s.filter] = true
			}
			for _, fl := range filters {
				want := MatchTopic(fl, topic)
				if got[fl] != want {
					t.Logf("filter %q topic %q: trie=%v ref=%v", fl, topic, got[fl], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
