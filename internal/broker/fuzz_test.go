package broker

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzReadPacket throws arbitrary bytes at the MQTT wire decoder. Two
// properties must hold for every input: the decoder never panics (it
// returns ErrMalformed or an io error instead), and any packet it does
// accept re-encodes to a canonical form that decodes back to the same
// packet — the fixpoint the broker's read/write loops rely on.
func FuzzReadPacket(f *testing.F) {
	// Seed with one valid encoding of every packet shape the broker
	// speaks, plus a few deliberately truncated or oversized frames.
	seeds := []*Packet{
		{Type: CONNECT, ClientID: "digi-runtime", KeepAliveSec: 30, CleanSession: true},
		{Type: CONNACK, ReturnCode: 0, SessionPresent: true},
		{Type: PUBLISH, Topic: "digibox/O1/status", Payload: []byte(`{"triggered":true}`)},
		{Type: PUBLISH, Topic: "a/b", Payload: []byte("x"), QoS: 1, PacketID: 7, Retain: true, Dup: true},
		{Type: PUBACK, PacketID: 7},
		{Type: SUBSCRIBE, PacketID: 2, Filters: []string{"digibox/#", "ctl/+/set"}, QoSs: []byte{0, 1}},
		{Type: SUBACK, PacketID: 2, QoSs: []byte{0, 1}},
		{Type: UNSUBSCRIBE, PacketID: 3, Filters: []string{"digibox/#"}},
		{Type: UNSUBACK, PacketID: 3},
		{Type: PINGREQ},
		{Type: PINGRESP},
		{Type: DISCONNECT},
	}
	for _, p := range seeds {
		data, err := p.Encode()
		if err != nil {
			f.Fatalf("seed %v does not encode: %v", p.Type, err)
		}
		f.Add(data)
		f.Add(data[:len(data)-1]) // truncated body
	}
	f.Add([]byte{0x10, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // 5-byte remaining length
	f.Add([]byte{0x00, 0x00})                         // reserved packet type

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPacket(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, errBadVersion) &&
				!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		canon, err := p.Encode()
		if err != nil {
			return // decodable but not re-encodable shapes are allowed
		}
		q, err := ReadPacket(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v\npacket: %+v\nbytes: %x", err, p, canon)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("decode(encode(p)) != p:\n  p = %+v\n  q = %+v", p, q)
		}
	})
}
