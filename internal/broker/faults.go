package broker

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FaultRule is a delivery-time message fault installed by the chaos
// engine: matching publishes are dropped, duplicated, or delayed on
// their way to a subscriber. Empty scope fields match any value.
type FaultRule struct {
	// Client matches the receiving session's client ID.
	Client string
	// From matches the publishing identity (the wire client ID, or
	// the name passed to PublishFrom for in-process publishes).
	From string
	// Topic is an MQTT topic filter matched against the message topic.
	Topic string
	// DropRate is the probability a matching delivery is dropped.
	DropRate float64
	// DupRate is the probability a matching delivery is duplicated.
	DupRate float64
	// Delay is added latency before a matching delivery.
	Delay time.Duration
}

// faultState holds the broker's installed fault rules and partition
// groups. The hot routing path checks a single atomic flag before
// touching any of it, so a fault-free broker pays nothing.
type faultState struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  map[int]FaultRule
	nextID int
	// groups maps a client/publisher identity to its partition group;
	// identities in different groups cannot reach each other.
	groups map[string]int
}

// faultsActive reports whether any rule or partition is installed.
func (b *Broker) faultsActive() bool {
	return atomic.LoadInt32(&b.faultsOn) != 0
}

func (b *Broker) refreshFaultFlag() {
	// Callers hold b.faults.mu.
	if len(b.faults.rules) > 0 || b.faults.groups != nil {
		atomic.StoreInt32(&b.faultsOn, 1)
	} else {
		atomic.StoreInt32(&b.faultsOn, 0)
	}
}

// AddFault installs a message-fault rule and returns its remover.
func (b *Broker) AddFault(r FaultRule) (remove func()) {
	f := &b.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rules == nil {
		f.rules = map[int]FaultRule{}
	}
	id := f.nextID
	f.nextID++
	f.rules[id] = r
	b.refreshFaultFlag()
	return func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		delete(f.rules, id)
		b.refreshFaultFlag()
	}
}

// SetPartitions splits the listed identities into mutually isolated
// groups: a message from an identity in one group is not delivered to
// sessions in another. Identities not listed are unaffected, as are
// publishes with no identity.
func (b *Broker) SetPartitions(groups [][]string) {
	f := &b.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	f.groups = map[string]int{}
	for i, g := range groups {
		for _, id := range g {
			f.groups[id] = i
		}
	}
	b.refreshFaultFlag()
}

// ClearPartitions heals any active partition.
func (b *Broker) ClearPartitions() {
	f := &b.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	f.groups = nil
	b.refreshFaultFlag()
}

// SetFaultSeed seeds per-message fault sampling so a fault run's
// drop/duplicate decisions are reproducible given the same delivery
// order.
func (b *Broker) SetFaultSeed(seed int64) {
	f := &b.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
}

// faultAction is the routing decision for one delivery.
type faultAction struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// decideFault evaluates the installed rules and partitions for a
// delivery from `from` to client `to` on `topic`.
func (b *Broker) decideFault(from, to, topic string) faultAction {
	f := &b.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	var act faultAction
	if f.groups != nil && from != "" {
		gf, okf := f.groups[from]
		gt, okt := f.groups[to]
		if okf && okt && gf != gt {
			act.drop = true
			return act
		}
	}
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(1))
	}
	// Evaluate rules in installation order so the seeded sampling
	// sequence does not depend on map iteration.
	ids := make([]int, 0, len(f.rules))
	for id := range f.rules {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := f.rules[id]
		if r.Client != "" && r.Client != to {
			continue
		}
		if r.From != "" && r.From != from {
			continue
		}
		if r.Topic != "" && !MatchTopic(r.Topic, topic) {
			continue
		}
		if r.DropRate > 0 && f.rng.Float64() < r.DropRate {
			act.drop = true
			return act
		}
		if r.DupRate > 0 && f.rng.Float64() < r.DupRate {
			act.dup = true
		}
		if r.Delay > act.delay {
			act.delay = r.Delay
		}
	}
	return act
}
