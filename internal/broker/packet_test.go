package broker

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode(%+v): %v", p, err)
	}
	back, err := ReadPacket(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadPacket after Encode(%+v): %v", p, err)
	}
	return back
}

func TestEncodeDecodeConnect(t *testing.T) {
	p := &Packet{Type: CONNECT, ClientID: "sensor-1", KeepAliveSec: 30, CleanSession: true}
	got := roundTrip(t, p)
	if got.ClientID != "sensor-1" || got.KeepAliveSec != 30 || !got.CleanSession {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodeConnack(t *testing.T) {
	p := &Packet{Type: CONNACK, ReturnCode: ConnAccepted, SessionPresent: true}
	got := roundTrip(t, p)
	if got.ReturnCode != ConnAccepted || !got.SessionPresent {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodePublishQoS0(t *testing.T) {
	p := &Packet{Type: PUBLISH, Topic: "home/room/lamp", Payload: []byte(`{"power":"on"}`), Retain: true}
	got := roundTrip(t, p)
	if got.Topic != p.Topic || !bytes.Equal(got.Payload, p.Payload) || !got.Retain || got.QoS != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodePublishQoS1(t *testing.T) {
	p := &Packet{Type: PUBLISH, Topic: "a/b", Payload: []byte("x"), QoS: 1, PacketID: 77, Dup: true}
	got := roundTrip(t, p)
	if got.PacketID != 77 || got.QoS != 1 || !got.Dup {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodeSubscribe(t *testing.T) {
	p := &Packet{Type: SUBSCRIBE, PacketID: 5, Filters: []string{"a/+", "b/#"}, QoSs: []byte{0, 1}}
	got := roundTrip(t, p)
	if !reflect.DeepEqual(got.Filters, p.Filters) || !bytes.Equal(got.QoSs, p.QoSs) || got.PacketID != 5 {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodeSuback(t *testing.T) {
	p := &Packet{Type: SUBACK, PacketID: 5, QoSs: []byte{1, 0x80}}
	got := roundTrip(t, p)
	if got.PacketID != 5 || !bytes.Equal(got.QoSs, p.QoSs) {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodeUnsubscribe(t *testing.T) {
	p := &Packet{Type: UNSUBSCRIBE, PacketID: 9, Filters: []string{"a/b", "c"}}
	got := roundTrip(t, p)
	if got.PacketID != 9 || !reflect.DeepEqual(got.Filters, p.Filters) {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodeEmptyBodied(t *testing.T) {
	for _, typ := range []PacketType{PINGREQ, PINGRESP, DISCONNECT} {
		got := roundTrip(t, &Packet{Type: typ})
		if got.Type != typ {
			t.Errorf("got %+v", got)
		}
	}
	got := roundTrip(t, &Packet{Type: PUBACK, PacketID: 3})
	if got.PacketID != 3 {
		t.Errorf("puback got %+v", got)
	}
	got = roundTrip(t, &Packet{Type: UNSUBACK, PacketID: 4})
	if got.PacketID != 4 {
		t.Errorf("unsuback got %+v", got)
	}
}

func TestRemainingLengthBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 16383, 16384, 2097151, 2097152} {
		var buf []byte
		buf = encodeRemainingLength(buf, n)
		got, err := readRemainingLength(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got != n {
			t.Errorf("n=%d round-tripped to %d", n, got)
		}
	}
}

func TestRemainingLengthTooLong(t *testing.T) {
	if _, err := readRemainingLength(bytes.NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x01})); err == nil {
		t.Error("5-byte varint should be rejected")
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := [][]byte{
		{},                                 // empty
		{0x10},                             // CONNECT with no length
		{0x30, 0x02, 0x00},                 // PUBLISH truncated topic length
		{0x30, 0x04, 0x00, 0x05, 'a', 'b'}, // topic shorter than declared
		{0x82, 0x02, 0x00, 0x01},           // SUBSCRIBE with no filters
		{0xC0, 0x01, 0x00},                 // PINGREQ with body
		{0xF0, 0x00},                       // reserved type 15
	}
	for _, data := range cases {
		if _, err := ReadPacket(bytes.NewReader(data)); err == nil {
			t.Errorf("ReadPacket(% x) succeeded, want error", data)
		}
	}
}

func TestDecodeRejectsQoS2(t *testing.T) {
	// PUBLISH with QoS 2 flag bits (0x04).
	data := []byte{0x34, 0x06, 0x00, 0x01, 'a', 0x00, 0x01, 'x'}
	if _, err := ReadPacket(bytes.NewReader(data)); err == nil {
		t.Error("QoS 2 publish should be rejected")
	}
}

func TestDecodeRejectsBadProtocolVersion(t *testing.T) {
	p := &Packet{Type: CONNECT, ClientID: "c", CleanSession: true}
	data, _ := p.Encode()
	// Protocol level byte sits right after the "MQTT" string: byte 8.
	data[8] = 3
	_, err := ReadPacket(bytes.NewReader(data))
	if !errors.Is(err, errBadVersion) {
		t.Errorf("err = %v, want errBadVersion", err)
	}
}

func TestEncodeRejectsWildcardPublish(t *testing.T) {
	p := &Packet{Type: PUBLISH, Topic: "a/+/b"}
	if _, err := p.Encode(); err == nil {
		t.Error("publishing to a wildcard topic should fail")
	}
}

func TestPacketTypeString(t *testing.T) {
	for _, typ := range []PacketType{CONNECT, CONNACK, PUBLISH, PUBACK, SUBSCRIBE, SUBACK, UNSUBSCRIBE, UNSUBACK, PINGREQ, PINGRESP, DISCONNECT} {
		if typ.String() == "" || typ.String()[0] == 'P' && typ.String() == "PacketType(0)" {
			t.Errorf("bad String for %d", typ)
		}
	}
	if PacketType(0).String() != "PacketType(0)" {
		t.Error("unknown type String")
	}
}

// Property: any syntactically valid PUBLISH round-trips exactly.
func TestQuickPublishRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topic := genTopic(r, false)
		payload := make([]byte, r.Intn(512))
		r.Read(payload)
		p := &Packet{
			Type:    PUBLISH,
			Topic:   topic,
			Payload: payload,
			QoS:     byte(r.Intn(2)),
			Retain:  r.Intn(2) == 0,
		}
		if p.QoS == 1 {
			p.PacketID = uint16(1 + r.Intn(65534))
		}
		data, err := p.Encode()
		if err != nil {
			t.Logf("encode %+v: %v", p, err)
			return false
		}
		back, err := ReadPacket(bytes.NewReader(data))
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if back.Topic != p.Topic || !bytes.Equal(back.Payload, p.Payload) ||
			back.QoS != p.QoS || back.Retain != p.Retain || back.PacketID != p.PacketID {
			t.Logf("mismatch %+v vs %+v", p, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadPacket never panics on random bytes; it returns a
// packet or an error.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on % x: %v", data, r)
			}
		}()
		ReadPacket(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func genTopic(r *rand.Rand, allowWild bool) string {
	levels := 1 + r.Intn(4)
	var parts []string
	words := []string{"home", "room", "lamp", "o1", "x", "status", "a-b", "42"}
	for i := 0; i < levels; i++ {
		w := words[r.Intn(len(words))]
		if allowWild && r.Intn(5) == 0 {
			w = "+"
		}
		parts = append(parts, w)
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += "/" + p
	}
	if allowWild && r.Intn(5) == 0 {
		s += "/#"
	}
	return s
}
