package broker

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// BenchmarkCodecPublish measures wire-format encode+decode of a
// typical status PUBLISH.
func BenchmarkCodecPublish(b *testing.B) {
	p := &Packet{
		Type:     PUBLISH,
		Topic:    "digibox/occupancy-042/status",
		Payload:  []byte(`{"triggered":true}`),
		QoS:      1,
		PacketID: 7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := p.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReadPacket(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrieMatch measures subscription matching against a trie
// populated with per-device filters plus wildcards — the broker's
// per-publish hot path.
func BenchmarkTrieMatch(b *testing.B) {
	trie := newSubTrie()
	for i := 0; i < 1000; i++ {
		trie.subscribe(&subscription{
			clientID: fmt.Sprintf("c%d", i),
			filter:   fmt.Sprintf("digibox/dev%04d/status", i),
		})
	}
	trie.subscribe(&subscription{clientID: "app", filter: "digibox/+/status"})
	trie.subscribe(&subscription{clientID: "logger", filter: "digibox/#"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subs := trie.match(fmt.Sprintf("digibox/dev%04d/status", i%1000))
		if len(subs) != 3 {
			b.Fatalf("matched %d", len(subs))
		}
	}
}

// BenchmarkEndToEndQoS0 measures broker throughput: one publisher, one
// wildcard subscriber, QoS 0 over loopback TCP.
func BenchmarkEndToEndQoS0(b *testing.B) {
	br := NewBroker(nil)
	if err := br.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer br.Close()
	pub, err := Dial(br.Addr(), &ClientOptions{ClientID: "pub"})
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	sub, err := Dial(br.Addr(), &ClientOptions{ClientID: "sub"})
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()

	var received int64
	if err := sub.Subscribe("bench/#", 0, func(Message) {
		atomic.AddInt64(&received, 1)
	}); err != nil {
		b.Fatal(err)
	}
	payload := []byte(`{"triggered":true}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench/topic", payload, 0, false); err != nil {
			b.Fatal(err)
		}
	}
	// Drain until deliveries stall: QoS 0 permits drops under
	// back-pressure, so waiting for exactly b.N would hang.
	drainUntilStall(&received, int64(b.N))
	b.StopTimer()
	b.ReportMetric(float64(atomic.LoadInt64(&received))/b.Elapsed().Seconds(), "msgs/s")
}

// drainUntilStall waits until count reaches want or stops growing for
// 200ms (whichever comes first), bounded at 10s.
func drainUntilStall(count *int64, want int64) {
	deadline := time.Now().Add(10 * time.Second)
	last := int64(-1)
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		cur := atomic.LoadInt64(count)
		if cur >= want {
			return
		}
		if cur != last {
			last = cur
			lastChange = time.Now()
		} else if time.Since(lastChange) > 200*time.Millisecond {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkEndToEndQoS1 measures acked round-trip publishing.
func BenchmarkEndToEndQoS1(b *testing.B) {
	br := NewBroker(nil)
	if err := br.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer br.Close()
	pub, err := Dial(br.Addr(), &ClientOptions{ClientID: "pub"})
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	payload := []byte(`{"power":"on"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench/topic", payload, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsOverhead quantifies what the observability layer
// costs on the broker's publish hot path: the same one-publisher
// one-subscriber QoS 0 wire workload, with the registry + span tracer
// bound versus bare. The instrumented path must stay within 5% of the
// bare path: counters are gather-time closures over the broker's own
// atomics (zero hot-path cost), and latency spans sample 1-in-8
// messages, so the per-message additions amortize to one atomic add
// plus an eighth of a span's slot write and histogram observes.
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, opts *Options) {
		br := NewBroker(opts)
		if err := br.ListenAndServe("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer br.Close()
		pub, err := Dial(br.Addr(), &ClientOptions{ClientID: "pub"})
		if err != nil {
			b.Fatal(err)
		}
		defer pub.Close()
		sub, err := Dial(br.Addr(), &ClientOptions{ClientID: "sub"})
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Close()
		var received int64
		if err := sub.Subscribe("bench/#", 0, func(Message) {
			atomic.AddInt64(&received, 1)
		}); err != nil {
			b.Fatal(err)
		}
		payload := []byte(`{"triggered":true}`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pub.Publish("bench/topic", payload, 0, false); err != nil {
				b.Fatal(err)
			}
		}
		drainUntilStall(&received, int64(b.N))
		b.StopTimer()
		b.ReportMetric(float64(atomic.LoadInt64(&received))/b.Elapsed().Seconds(), "msgs/s")
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) {
		r := obs.NewRegistry()
		run(b, &Options{Obs: r, Tracer: obs.NewTracer(r)})
	})
}

// BenchmarkFanout measures high-fanout delivery: one in-process
// publisher, many wire subscribers all matching the same wildcard
// filter, so each publish multiplies into fanout socket writes. This
// is the hot path the sized buffered writer with flush-on-idle
// optimises — without it every outbound packet is one conn.Write
// syscall.
func BenchmarkFanout(b *testing.B) {
	for _, fanout := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("subs=%d", fanout), func(b *testing.B) {
			benchFanout(b, fanout)
		})
	}
}

func benchFanout(b *testing.B, fanout int) {
	br := NewBroker(nil)
	if err := br.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer br.Close()

	var received int64
	clients := make([]*Client, 0, fanout)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < fanout; i++ {
		c, err := Dial(br.Addr(), &ClientOptions{ClientID: fmt.Sprintf("fan-sub-%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		clients = append(clients, c)
		if err := c.Subscribe("fan/#", 0, func(Message) {
			atomic.AddInt64(&received, 1)
		}); err != nil {
			b.Fatal(err)
		}
	}

	payload := []byte(`{"seq":1,"v":0.42}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish("fan/load", payload, false); err != nil {
			b.Fatal(err)
		}
	}
	// QoS 0 permits drops under back-pressure, so drain until the
	// delivery count stalls rather than insisting on b.N×fanout.
	drainUntilStall(&received, int64(b.N)*int64(fanout))
	b.StopTimer()
	b.ReportMetric(float64(atomic.LoadInt64(&received))/b.Elapsed().Seconds(), "deliveries/s")
}

// BenchmarkAblationInProcessVsWire quantifies the design choice of
// letting co-located mocks publish through the broker in-process (the
// digi runtime's fast path) versus over the MQTT wire: both paths end
// at the same subscriber.
func BenchmarkAblationInProcessVsWire(b *testing.B) {
	setup := func(b *testing.B) (*Broker, *Client, *int64) {
		br := NewBroker(nil)
		if err := br.ListenAndServe("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(br.Close)
		sub, err := Dial(br.Addr(), &ClientOptions{ClientID: "sub"})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { sub.Close() })
		var received int64
		if err := sub.Subscribe("abl/#", 0, func(Message) {
			atomic.AddInt64(&received, 1)
		}); err != nil {
			b.Fatal(err)
		}
		return br, sub, &received
	}
	payload := []byte(`{"triggered":true}`)
	drain := func(b *testing.B, received *int64) {
		drainUntilStall(received, int64(b.N))
	}

	b.Run("in-process", func(b *testing.B) {
		br, _, received := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := br.Publish("abl/t", payload, false); err != nil {
				b.Fatal(err)
			}
		}
		drain(b, received)
	})
	b.Run("wire", func(b *testing.B) {
		br, _, received := setup(b)
		pub, err := Dial(br.Addr(), &ClientOptions{ClientID: "pub"})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { pub.Close() })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pub.Publish("abl/t", payload, 0, false); err != nil {
				b.Fatal(err)
			}
		}
		drain(b, received)
	})
}
