package broker

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func subscribeChan(t *testing.T, c *Client, filter string) chan Message {
	t.Helper()
	ch := make(chan Message, 64)
	if err := c.Subscribe(filter, 0, func(m Message) { ch <- m }); err != nil {
		t.Fatal(err)
	}
	return ch
}

// A DropRate-1 rule suppresses every matching delivery; removing the
// rule restores traffic.
func TestFaultRuleDropsMessages(t *testing.T) {
	b := startBroker(t, nil)
	sub := dialClient(t, b, "sub")
	msgs := subscribeChan(t, sub, "t/#")

	remove := b.AddFault(FaultRule{Topic: "t/#", DropRate: 1})
	for i := 0; i < 5; i++ {
		if err := b.Publish("t/a", []byte(fmt.Sprint(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case m := <-msgs:
		t.Fatalf("message delivered through drop rule: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
	if st := b.Stats(); st.FaultDrops != 5 {
		t.Errorf("FaultDrops = %d, want 5", st.FaultDrops)
	}

	remove()
	if err := b.Publish("t/a", []byte("after"), false); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, msgs, "message after rule removal"); string(m.Payload) != "after" {
		t.Errorf("payload = %q", m.Payload)
	}
}

// A DupRate-1 rule delivers every matching message twice.
func TestFaultRuleDuplicatesMessages(t *testing.T) {
	b := startBroker(t, nil)
	sub := dialClient(t, b, "sub")
	msgs := subscribeChan(t, sub, "t/#")

	defer b.AddFault(FaultRule{Topic: "t/#", DupRate: 1})()
	if err := b.Publish("t/a", []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	waitMsg(t, msgs, "first copy")
	waitMsg(t, msgs, "duplicate copy")
}

// A Delay rule holds matching deliveries back by roughly the delay.
func TestFaultRuleDelaysMessages(t *testing.T) {
	b := startBroker(t, nil)
	sub := dialClient(t, b, "sub")
	msgs := subscribeChan(t, sub, "t/#")

	defer b.AddFault(FaultRule{Topic: "t/#", Delay: 150 * time.Millisecond})()
	start := time.Now()
	if err := b.Publish("t/a", []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	waitMsg(t, msgs, "delayed message")
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~150ms", elapsed)
	}
}

// Rules scoped to one receiving client leave other clients untouched.
func TestFaultRuleScopedToClient(t *testing.T) {
	b := startBroker(t, nil)
	lucky := dialClient(t, b, "lucky")
	unlucky := dialClient(t, b, "unlucky")
	luckyMsgs := subscribeChan(t, lucky, "t/#")
	unluckyMsgs := subscribeChan(t, unlucky, "t/#")

	defer b.AddFault(FaultRule{Client: "unlucky", DropRate: 1})()
	if err := b.Publish("t/a", []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	waitMsg(t, luckyMsgs, "message to unscoped client")
	select {
	case m := <-unluckyMsgs:
		t.Fatalf("scoped client received %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
}

// Partition groups block cross-group traffic both ways while
// intra-group and unlisted traffic flows; ClearPartitions heals.
func TestPartitionIsolatesGroups(t *testing.T) {
	b := startBroker(t, nil)
	a := dialClient(t, b, "a")
	c := dialClient(t, b, "c")
	outside := dialClient(t, b, "outside")
	aMsgs := subscribeChan(t, a, "t/#")
	cMsgs := subscribeChan(t, c, "t/#")
	outsideMsgs := subscribeChan(t, outside, "t/#")

	b.SetPartitions([][]string{{"a", "b"}, {"c"}})
	if err := a.Publish("t/x", []byte("from-a"), 0, false); err != nil {
		t.Fatal(err)
	}
	// a's own delivery (same group) and the unlisted client both get it.
	waitMsg(t, aMsgs, "intra-group delivery")
	waitMsg(t, outsideMsgs, "delivery to unlisted client")
	select {
	case m := <-cMsgs:
		t.Fatalf("cross-partition delivery: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}

	b.ClearPartitions()
	if err := a.Publish("t/x", []byte("healed"), 0, false); err != nil {
		t.Fatal(err)
	}
	for {
		m := waitMsg(t, cMsgs, "delivery after heal")
		if string(m.Payload) == "healed" {
			break
		}
	}
}

// PublishFrom gives in-process publishes a partitionable identity.
func TestPublishFromParticipatesInPartitions(t *testing.T) {
	b := startBroker(t, nil)
	app := dialClient(t, b, "app")
	msgs := subscribeChan(t, app, "digibox/#")

	b.SetPartitions([][]string{{"S1"}, {"app"}})
	if err := b.PublishFrom("S1", "digibox/S1/status", []byte("cut"), false); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		t.Fatalf("partitioned in-process publish delivered: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
	// Anonymous publishes are unaffected by partitions.
	if err := b.Publish("digibox/S1/status", []byte("anon"), false); err != nil {
		t.Fatal(err)
	}
	waitMsg(t, msgs, "anonymous publish during partition")
}

// A seeded ~50% drop rate is reproducible: the same seed and delivery
// order drops the same messages.
func TestFaultSamplingIsSeeded(t *testing.T) {
	run := func() []string {
		b := startBroker(t, nil)
		sub := dialClient(t, b, "sub")
		msgs := subscribeChan(t, sub, "t/#")
		b.SetFaultSeed(99)
		defer b.AddFault(FaultRule{Topic: "t/#", DropRate: 0.5})()
		for i := 0; i < 20; i++ {
			if err := b.Publish("t/a", []byte(fmt.Sprint(i)), false); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		for {
			select {
			case m := <-msgs:
				got = append(got, string(m.Payload))
			case <-time.After(200 * time.Millisecond):
				return got
			}
		}
	}
	first := run()
	second := run()
	if len(first) == 0 || len(first) == 20 {
		t.Fatalf("drop rate 0.5 delivered %d/20 messages", len(first))
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("seeded sampling diverged:\n%v\n%v", first, second)
	}
}

// ConnHook wraps every accepted connection before the handshake.
func TestConnHookWrapsConnections(t *testing.T) {
	var hooked int32
	b := startBroker(t, &Options{
		ConnHook: func(conn net.Conn) net.Conn {
			atomic.AddInt32(&hooked, 1)
			return conn
		},
	})
	dialClient(t, b, "c1")
	dialClient(t, b, "c2")
	if n := atomic.LoadInt32(&hooked); n != 2 {
		t.Errorf("hook saw %d connections, want 2", n)
	}
}
