// Package broker implements an MQTT 3.1.1 message broker and client.
//
// Digibox uses MQTT as the device-to-application message plane (the
// paper deploys EMQX). This package is a from-scratch substitute built
// on the standard library's net package: a TCP broker with sessions,
// QoS 0/1 delivery, retained messages, topic wildcards (+ and #), and
// keepalive enforcement, plus a small client used by mocks and by
// applications under test.
//
// The subset implemented is the portion of MQTT 3.1.1 exercised by IoT
// prototyping workloads; QoS 2, wills, and persistent (non-clean)
// sessions are not supported and are rejected at CONNECT/SUBSCRIBE
// time rather than silently accepted.
package broker

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
)

// PacketType is the MQTT control packet type (spec §2.2.1).
type PacketType byte

const (
	CONNECT     PacketType = 1
	CONNACK     PacketType = 2
	PUBLISH     PacketType = 3
	PUBACK      PacketType = 4
	SUBSCRIBE   PacketType = 8
	SUBACK      PacketType = 9
	UNSUBSCRIBE PacketType = 10
	UNSUBACK    PacketType = 11
	PINGREQ     PacketType = 12
	PINGRESP    PacketType = 13
	DISCONNECT  PacketType = 14
)

func (t PacketType) String() string {
	switch t {
	case CONNECT:
		return "CONNECT"
	case CONNACK:
		return "CONNACK"
	case PUBLISH:
		return "PUBLISH"
	case PUBACK:
		return "PUBACK"
	case SUBSCRIBE:
		return "SUBSCRIBE"
	case SUBACK:
		return "SUBACK"
	case UNSUBSCRIBE:
		return "UNSUBSCRIBE"
	case UNSUBACK:
		return "UNSUBACK"
	case PINGREQ:
		return "PINGREQ"
	case PINGRESP:
		return "PINGRESP"
	case DISCONNECT:
		return "DISCONNECT"
	default:
		return fmt.Sprintf("PacketType(%d)", byte(t))
	}
}

// CONNACK return codes (spec §3.2.2.3).
const (
	ConnAccepted          byte = 0
	ConnRefusedVersion    byte = 1
	ConnRefusedIdentifier byte = 2
	ConnRefusedUnavail    byte = 3
)

// Protocol limits.
const (
	maxRemainingLength = 268435455 // 256 MB - 1, the varint ceiling
	maxTopicLength     = 65535
)

// Packet is a decoded MQTT control packet. Fields are a union across
// the packet types; the relevant subset per type is documented on the
// constructors below.
type Packet struct {
	Type PacketType

	// PUBLISH
	Topic   string
	Payload []byte
	QoS     byte
	Retain  bool
	Dup     bool

	// PUBLISH (QoS 1), PUBACK, SUBSCRIBE, SUBACK, UNSUBSCRIBE, UNSUBACK
	PacketID uint16

	// CONNECT
	ClientID     string
	KeepAliveSec uint16
	CleanSession bool

	// CONNACK
	ReturnCode     byte
	SessionPresent bool

	// SUBSCRIBE / UNSUBSCRIBE
	Filters []string
	QoSs    []byte // requested (SUBSCRIBE) or granted (SUBACK) QoS per filter

	// span carries the publish→deliver span id from routing to the
	// delivering writeLoop. In-process only: it is not encoded on the
	// wire, and 0 means untraced.
	span obs.SpanID
}

// ErrMalformed is wrapped by all decoding errors.
var ErrMalformed = errors.New("mqtt: malformed packet")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// encodeRemainingLength appends the MQTT varint length encoding.
func encodeRemainingLength(buf []byte, n int) []byte {
	for {
		b := byte(n % 128)
		n /= 128
		if n > 0 {
			b |= 0x80
		}
		buf = append(buf, b)
		if n == 0 {
			return buf
		}
	}
}

// readRemainingLength reads the varint remaining-length field.
func readRemainingLength(r io.Reader) (int, error) {
	mult := 1
	value := 0
	var one [1]byte
	for i := 0; i < 4; i++ {
		if _, err := io.ReadFull(r, one[:]); err != nil {
			return 0, err
		}
		b := one[0]
		value += int(b&0x7F) * mult
		if b&0x80 == 0 {
			return value, nil
		}
		mult *= 128
	}
	return 0, malformed("remaining length exceeds 4 bytes")
}

func appendUint16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendString(buf []byte, s string) []byte {
	buf = appendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) uint16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, malformed("short uint16")
	}
	v := uint16(r.buf[r.pos])<<8 | uint16(r.buf[r.pos+1])
	r.pos += 2
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uint16()
	if err != nil {
		return "", err
	}
	if r.remaining() < int(n) {
		return "", malformed("short string")
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, malformed("short byte")
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// Encode serialises the packet into wire format.
func (p *Packet) Encode() ([]byte, error) {
	var flags byte
	var body []byte
	switch p.Type {
	case CONNECT:
		body = appendString(body, "MQTT")
		body = append(body, 4) // protocol level 3.1.1
		var connectFlags byte
		if p.CleanSession {
			connectFlags |= 0x02
		}
		body = append(body, connectFlags)
		body = appendUint16(body, p.KeepAliveSec)
		body = appendString(body, p.ClientID)
	case CONNACK:
		var ack byte
		if p.SessionPresent {
			ack = 1
		}
		body = append(body, ack, p.ReturnCode)
	case PUBLISH:
		if p.QoS > 1 {
			return nil, fmt.Errorf("mqtt: QoS %d not supported", p.QoS)
		}
		if err := ValidateTopicName(p.Topic); err != nil {
			return nil, err
		}
		flags = p.QoS << 1
		if p.Retain {
			flags |= 0x01
		}
		if p.Dup {
			flags |= 0x08
		}
		body = appendString(body, p.Topic)
		if p.QoS > 0 {
			body = appendUint16(body, p.PacketID)
		}
		body = append(body, p.Payload...)
	case PUBACK, UNSUBACK:
		body = appendUint16(body, p.PacketID)
	case SUBSCRIBE:
		flags = 0x02 // reserved bits per spec
		body = appendUint16(body, p.PacketID)
		for i, f := range p.Filters {
			body = appendString(body, f)
			var q byte
			if i < len(p.QoSs) {
				q = p.QoSs[i]
			}
			body = append(body, q)
		}
	case SUBACK:
		body = appendUint16(body, p.PacketID)
		body = append(body, p.QoSs...)
	case UNSUBSCRIBE:
		flags = 0x02
		body = appendUint16(body, p.PacketID)
		for _, f := range p.Filters {
			body = appendString(body, f)
		}
	case PINGREQ, PINGRESP, DISCONNECT:
		// no body
	default:
		return nil, fmt.Errorf("mqtt: cannot encode packet type %v", p.Type)
	}
	if len(body) > maxRemainingLength {
		return nil, fmt.Errorf("mqtt: packet too large (%d bytes)", len(body))
	}
	out := make([]byte, 0, 2+len(body))
	out = append(out, byte(p.Type)<<4|flags)
	out = encodeRemainingLength(out, len(body))
	return append(out, body...), nil
}

// ReadPacket reads and decodes one packet from r.
func ReadPacket(r io.Reader) (*Packet, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, err
	}
	ptype := PacketType(first[0] >> 4)
	flags := first[0] & 0x0F
	n, err := readRemainingLength(r)
	if err != nil {
		return nil, err
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return decodeBody(ptype, flags, body)
}

func decodeBody(ptype PacketType, flags byte, body []byte) (*Packet, error) {
	p := &Packet{Type: ptype}
	rd := &reader{buf: body}
	switch ptype {
	case CONNECT:
		proto, err := rd.str()
		if err != nil {
			return nil, err
		}
		if proto != "MQTT" {
			return nil, malformed("protocol name %q", proto)
		}
		level, err := rd.byte()
		if err != nil {
			return nil, err
		}
		if level != 4 {
			// Signalled to the caller so the broker can CONNACK with
			// the "unacceptable protocol version" return code.
			return nil, fmt.Errorf("%w: protocol level %d", errBadVersion, level)
		}
		cf, err := rd.byte()
		if err != nil {
			return nil, err
		}
		if cf&0x01 != 0 {
			return nil, malformed("reserved connect flag set")
		}
		if cf&0x04 != 0 {
			return nil, malformed("will flag not supported")
		}
		p.CleanSession = cf&0x02 != 0
		if p.KeepAliveSec, err = rd.uint16(); err != nil {
			return nil, err
		}
		if p.ClientID, err = rd.str(); err != nil {
			return nil, err
		}
	case CONNACK:
		ack, err := rd.byte()
		if err != nil {
			return nil, err
		}
		p.SessionPresent = ack&0x01 != 0
		if p.ReturnCode, err = rd.byte(); err != nil {
			return nil, err
		}
	case PUBLISH:
		p.QoS = (flags >> 1) & 0x03
		p.Retain = flags&0x01 != 0
		p.Dup = flags&0x08 != 0
		if p.QoS > 1 {
			return nil, malformed("QoS %d not supported", p.QoS)
		}
		var err error
		if p.Topic, err = rd.str(); err != nil {
			return nil, err
		}
		if err := ValidateTopicName(p.Topic); err != nil {
			return nil, malformed("%v", err)
		}
		if p.QoS > 0 {
			if p.PacketID, err = rd.uint16(); err != nil {
				return nil, err
			}
			if p.PacketID == 0 {
				return nil, malformed("zero packet id on QoS>0 publish")
			}
		}
		p.Payload = append([]byte(nil), rd.buf[rd.pos:]...)
	case PUBACK, UNSUBACK:
		var err error
		if p.PacketID, err = rd.uint16(); err != nil {
			return nil, err
		}
	case SUBSCRIBE:
		if flags != 0x02 {
			return nil, malformed("bad SUBSCRIBE flags %#x", flags)
		}
		var err error
		if p.PacketID, err = rd.uint16(); err != nil {
			return nil, err
		}
		for rd.remaining() > 0 {
			f, err := rd.str()
			if err != nil {
				return nil, err
			}
			q, err := rd.byte()
			if err != nil {
				return nil, err
			}
			if err := ValidateTopicFilter(f); err != nil {
				return nil, malformed("%v", err)
			}
			p.Filters = append(p.Filters, f)
			p.QoSs = append(p.QoSs, q)
		}
		if len(p.Filters) == 0 {
			return nil, malformed("SUBSCRIBE with no filters")
		}
	case SUBACK:
		var err error
		if p.PacketID, err = rd.uint16(); err != nil {
			return nil, err
		}
		p.QoSs = append([]byte(nil), rd.buf[rd.pos:]...)
	case UNSUBSCRIBE:
		if flags != 0x02 {
			return nil, malformed("bad UNSUBSCRIBE flags %#x", flags)
		}
		var err error
		if p.PacketID, err = rd.uint16(); err != nil {
			return nil, err
		}
		for rd.remaining() > 0 {
			f, err := rd.str()
			if err != nil {
				return nil, err
			}
			p.Filters = append(p.Filters, f)
		}
		if len(p.Filters) == 0 {
			return nil, malformed("UNSUBSCRIBE with no filters")
		}
	case PINGREQ, PINGRESP, DISCONNECT:
		if len(body) != 0 {
			return nil, malformed("%v with body", ptype)
		}
	default:
		return nil, malformed("unknown packet type %d", ptype)
	}
	return p, nil
}

var errBadVersion = errors.New("mqtt: unacceptable protocol version")
