package broker

import (
	"os"
	"testing"

	"repro/internal/vet/leakcheck"
)

// TestMain fails the package if any test leaks a goroutine (a stuck
// session writer, an unclosed listener accept loop).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
