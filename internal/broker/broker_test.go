package broker

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startBroker launches a broker on a random loopback port.
func startBroker(t *testing.T, opts *Options) *Broker {
	t.Helper()
	b := NewBroker(opts)
	if err := b.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func dialClient(t *testing.T, b *Broker, id string) *Client {
	t.Helper()
	c, err := Dial(b.Addr(), &ClientOptions{ClientID: id, KeepAlive: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitMsg(t *testing.T, ch <-chan Message, what string) Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(3 * time.Second):
		t.Fatalf("timeout waiting for %s", what)
		return Message{}
	}
}

// waitCond polls until cond holds, replacing fixed sleeps that made
// these tests timing-sensitive on slow machines.
func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// holds asserts cond stays true for a short settle window — the
// negative-assertion counterpart of waitCond, failing fast at the
// first violation instead of sleeping blind.
func holds(t *testing.T, window time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		if !cond() {
			t.Fatalf("%s violated", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPublishSubscribeQoS0(t *testing.T) {
	b := startBroker(t, nil)
	pub := dialClient(t, b, "pub")
	sub := dialClient(t, b, "sub")

	ch := make(chan Message, 8)
	if err := sub.Subscribe("room/+/status", 0, func(m Message) { ch <- m }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("room/lamp1/status", []byte("on"), 0, false); err != nil {
		t.Fatal(err)
	}
	m := waitMsg(t, ch, "publish")
	if m.Topic != "room/lamp1/status" || string(m.Payload) != "on" {
		t.Errorf("got %+v", m)
	}
	if err := pub.Publish("other/topic", []byte("x"), 0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		t.Errorf("unexpected delivery %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestPublishQoS1Acked(t *testing.T) {
	b := startBroker(t, nil)
	pub := dialClient(t, b, "pub")
	sub := dialClient(t, b, "sub")
	ch := make(chan Message, 1)
	if err := sub.Subscribe("q1/topic", 1, func(m Message) { ch <- m }); err != nil {
		t.Fatal(err)
	}
	// Publish blocks until PUBACK arrives; an unacked publish would
	// time out and fail the test.
	if err := pub.Publish("q1/topic", []byte("hello"), 1, false); err != nil {
		t.Fatal(err)
	}
	m := waitMsg(t, ch, "QoS1 message")
	if m.QoS != 1 || string(m.Payload) != "hello" {
		t.Errorf("got %+v", m)
	}
}

func TestQoSDowngradeToSubscriberLevel(t *testing.T) {
	b := startBroker(t, nil)
	pub := dialClient(t, b, "pub")
	sub := dialClient(t, b, "sub")
	ch := make(chan Message, 1)
	if err := sub.Subscribe("dg/t", 0, func(m Message) { ch <- m }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("dg/t", []byte("x"), 1, false); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, ch, "downgraded message"); m.QoS != 0 {
		t.Errorf("QoS = %d, want 0", m.QoS)
	}
}

func TestRetainedMessageDelivery(t *testing.T) {
	b := startBroker(t, nil)
	pub := dialClient(t, b, "pub")
	if err := pub.Publish("state/lamp", []byte("on"), 0, true); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return b.Stats().Retained == 1 }, "retained message stored")

	late := dialClient(t, b, "late")
	ch := make(chan Message, 1)
	if err := late.Subscribe("state/#", 0, func(m Message) { ch <- m }); err != nil {
		t.Fatal(err)
	}
	m := waitMsg(t, ch, "retained message")
	if !m.Retained || string(m.Payload) != "on" {
		t.Errorf("got %+v", m)
	}

	// Zero-payload retained publish clears it.
	if err := pub.Publish("state/lamp", nil, 0, true); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return b.Stats().Retained == 0 }, "retained message cleared")
	late2 := dialClient(t, b, "late2")
	ch2 := make(chan Message, 1)
	if err := late2.Subscribe("state/#", 0, func(m Message) { ch2 <- m }); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch2:
		t.Errorf("retained message not cleared: %+v", m)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := startBroker(t, nil)
	pub := dialClient(t, b, "pub")
	sub := dialClient(t, b, "sub")
	ch := make(chan Message, 8)
	if err := sub.Subscribe("u/t", 0, func(m Message) { ch <- m }); err != nil {
		t.Fatal(err)
	}
	pub.Publish("u/t", []byte("1"), 0, false)
	waitMsg(t, ch, "first message")
	if err := sub.Unsubscribe("u/t"); err != nil {
		t.Fatal(err)
	}
	pub.Publish("u/t", []byte("2"), 0, false)
	select {
	case m := <-ch:
		t.Errorf("delivery after unsubscribe: %+v", m)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestOverlappingSubscriptionsDeliverOnce(t *testing.T) {
	b := startBroker(t, nil)
	pub := dialClient(t, b, "pub")
	sub := dialClient(t, b, "sub")
	var count int32
	h := func(m Message) { atomic.AddInt32(&count, 1) }
	if err := sub.Subscribe("ov/#", 0, h); err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe("ov/+", 0, h); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("ov/x", []byte("x"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return atomic.LoadInt32(&count) >= 1 }, "first delivery")
	holds(t, 50*time.Millisecond, func() bool { return atomic.LoadInt32(&count) == 1 },
		"exactly-once delivery across overlapping subscriptions")
}

func TestClientTakeover(t *testing.T) {
	b := startBroker(t, nil)
	c1, err := Dial(b.Addr(), &ClientOptions{ClientID: "same"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2 := dialClient(t, b, "same")
	_ = c2
	select {
	case <-c1.Done():
	case <-time.After(3 * time.Second):
		t.Fatal("first session not terminated on takeover")
	}
	if st := b.Stats(); st.Connections != 1 {
		t.Errorf("connections = %d, want 1", st.Connections)
	}
}

func TestInProcessPublish(t *testing.T) {
	b := startBroker(t, nil)
	sub := dialClient(t, b, "sub")
	ch := make(chan Message, 1)
	if err := sub.Subscribe("inproc/t", 0, func(m Message) { ch <- m }); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("inproc/t", []byte("fast"), false); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, ch, "in-process publish"); string(m.Payload) != "fast" {
		t.Errorf("got %+v", m)
	}
	if err := b.Publish("bad/+/topic", nil, false); err == nil {
		t.Error("wildcard in-process publish should fail")
	}
}

func TestBrokerStats(t *testing.T) {
	b := startBroker(t, nil)
	pub := dialClient(t, b, "pub")
	sub := dialClient(t, b, "sub")
	sub.Subscribe("s/t", 0, func(Message) {})
	pub.Publish("s/t", []byte("x"), 0, false)
	waitCond(t, func() bool {
		st := b.Stats()
		return st.PublishesIn >= 1 && st.MessagesOut >= 1
	}, "publish counters")
	st := b.Stats()
	if st.Connections != 2 {
		t.Errorf("connections = %d", st.Connections)
	}
	if st.Subscriptions != 1 {
		t.Errorf("subscriptions = %d", st.Subscriptions)
	}
	if st.PublishesIn < 1 || st.MessagesOut < 1 {
		t.Errorf("counters = %+v", st)
	}
}

func TestKeepAliveTimeoutDisconnects(t *testing.T) {
	b := startBroker(t, &Options{GraceKeepAlive: 1.5})
	// Raw connection that sends CONNECT with 1s keepalive, then goes
	// silent: the broker must drop it after ~1.5s.
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt := &Packet{Type: CONNECT, ClientID: "quiet", CleanSession: true, KeepAliveSec: 1}
	data, _ := pkt.Encode()
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPacket(conn); err != nil { // CONNACK
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := ReadPacket(conn); err == nil {
		t.Fatal("expected connection drop")
	}
	if elapsed := time.Since(start); elapsed < 1*time.Second {
		t.Errorf("dropped too early: %v", elapsed)
	}
}

func TestRejectsOldProtocolVersion(t *testing.T) {
	b := startBroker(t, nil)
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt := &Packet{Type: CONNECT, ClientID: "old", CleanSession: true}
	data, _ := pkt.Encode()
	data[8] = 3 // MQTT 3.1
	conn.Write(data)
	ack, err := ReadPacket(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != CONNACK || ack.ReturnCode != ConnRefusedVersion {
		t.Errorf("got %+v", ack)
	}
}

func TestManyClientsFanOut(t *testing.T) {
	b := startBroker(t, nil)
	const n = 20
	var wg sync.WaitGroup
	received := make(chan string, n)
	for i := 0; i < n; i++ {
		c := dialClient(t, b, fmt.Sprintf("sub-%d", i))
		id := fmt.Sprintf("sub-%d", i)
		if err := c.Subscribe("fan/out", 0, func(m Message) { received <- id }); err != nil {
			t.Fatal(err)
		}
	}
	pub := dialClient(t, b, "pub")
	if err := pub.Publish("fan/out", []byte("go"), 0, false); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		select {
		case id := <-received:
			seen[id] = true
		case <-time.After(3 * time.Second):
			t.Fatalf("only %d/%d deliveries", len(seen), n)
		}
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("duplicate deliveries: %d unique of %d", len(seen), n)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := startBroker(t, nil)
	sub := dialClient(t, b, "sub")
	var count int32
	if err := sub.Subscribe("load/#", 0, func(m Message) { atomic.AddInt32(&count, 1) }); err != nil {
		t.Fatal(err)
	}
	const pubs, each = 5, 40
	var wg sync.WaitGroup
	for i := 0; i < pubs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialClient(t, b, fmt.Sprintf("pub-%d", i))
			for j := 0; j < each; j++ {
				// QoS 1 so completion implies broker processing.
				if err := c.Publish(fmt.Sprintf("load/%d", i), []byte("x"), 1, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	deadline := time.After(5 * time.Second)
	for atomic.LoadInt32(&count) < pubs*each {
		select {
		case <-deadline:
			t.Fatalf("received %d of %d", atomic.LoadInt32(&count), pubs*each)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestBrokerCloseTerminatesSessions(t *testing.T) {
	b := NewBroker(nil)
	if err := b.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(b.Addr(), &ClientOptions{ClientID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b.Close()
	select {
	case <-c.Done():
	case <-time.After(3 * time.Second):
		t.Fatal("client not disconnected on broker close")
	}
	// Double close must be safe.
	b.Close()
}

func TestClientPublishAfterClose(t *testing.T) {
	b := startBroker(t, nil)
	c := dialClient(t, b, "x")
	c.Close()
	if err := c.Publish("a/b", []byte("x"), 1, false); err == nil {
		t.Error("publish after close should fail")
	}
}

func TestEmptyClientIDGetsAnonymousSession(t *testing.T) {
	b := startBroker(t, nil)
	c, err := Dial(b.Addr(), &ClientOptions{ClientID: "", KeepAlive: time.Minute})
	// Dial fills in a client id itself, so force an empty one at the
	// wire level instead.
	if err == nil {
		c.Close()
	}
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, _ := (&Packet{Type: CONNECT, ClientID: "", CleanSession: true}).Encode()
	conn.Write(data)
	ack, err := ReadPacket(conn)
	if err != nil || ack.ReturnCode != ConnAccepted {
		t.Fatalf("anon connect: %v %+v", err, ack)
	}
}

func TestKickDisconnectsClient(t *testing.T) {
	b := startBroker(t, nil)
	c := dialClient(t, b, "victim")
	if err := c.Subscribe("k/t", 0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if got := b.Clients(); len(got) != 1 || got[0] != "victim" {
		t.Fatalf("clients = %v", got)
	}
	if !b.Kick("victim") {
		t.Fatal("kick failed")
	}
	select {
	case <-c.Done():
	case <-time.After(3 * time.Second):
		t.Fatal("kicked client still connected")
	}
	// Session gone, subscriptions dropped.
	deadline := time.Now().Add(3 * time.Second)
	for b.Stats().Connections != 0 || b.Stats().Subscriptions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stats after kick: %+v", b.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if b.Kick("victim") {
		t.Error("second kick reported success")
	}
	if b.Kick("never-existed") {
		t.Error("kick of unknown client reported success")
	}
}
