package broker

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// The reconnect backoff is full jitter over a capped exponential
// window: attempt k sleeps uniform in (0, min(ReconnectMin·2^(k-1),
// ReconnectMax)], drawn from the client's seeded jitter stream. On a
// clock.Virtual the retry timeline is therefore a pure function of
// (JitterSeed, ReconnectMin, ReconnectMax): this test replays the same
// stream with clock.NewJitter and demands the virtual dial times match
// it exactly — pinning determinism, the (0, backoff] bounds, and the
// cap in one pass.
func TestReconnectFullJitterScheduleOnVirtualClock(t *testing.T) {
	b := startBroker(t, nil)

	const (
		seed     int64 = 99
		failures       = 6 // injected dial failures before one succeeds
		floor          = 10 * time.Millisecond
		cap            = 80 * time.Millisecond
	)

	v := clock.NewVirtual()
	var (
		mu       sync.Mutex
		attempts []time.Duration // virtual elapsed at each dial
	)
	states := make(chan bool, 16)
	c, err := Dial(b.Addr(), &ClientOptions{
		ClientID:      "jitterer",
		AutoReconnect: true,
		ReconnectMin:  floor,
		ReconnectMax:  cap,
		Clock:         v,
		JitterSeed:    seed,
		Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
			mu.Lock()
			n := len(attempts)
			attempts = append(attempts, v.Elapsed())
			mu.Unlock()
			if n > 0 && n <= failures { // n == 0 is the initial Dial
				return nil, errors.New("injected dial failure")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
		OnConnectionState: func(connected bool, cause error) { states <- connected },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if !b.Kick("jitterer") {
		t.Fatal("kick failed")
	}
	waitState(t, states, false, "disconnect notification")

	// Drive the virtual clock. The step deadline stays at one virtual
	// second so only reconnect timers fire (the whole schedule sums to
	// under 400ms; the stale keepalive tick parked at 15s never runs).
	// Step reports false while the loop is mid-handshake — no timer
	// armed yet — so poll with a real deadline instead of assuming
	// lockstep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(attempts)
		mu.Unlock()
		if n >= failures+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("made %d dial attempts, want %d", n, failures+2)
		}
		if !v.Step(clock.Epoch.Add(time.Second)) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitState(t, states, true, "reconnect notification")

	mu.Lock()
	got := append([]time.Duration(nil), attempts...)
	mu.Unlock()

	if got[0] != 0 {
		t.Errorf("initial dial at virtual %v, want 0", got[0])
	}
	jit := clock.NewJitter(seed)
	backoff := floor
	at := time.Duration(0)
	for k := 1; k < len(got); k++ {
		want := time.Duration(1 + jit.Int63n(int64(backoff)))
		if want <= 0 || want > backoff {
			t.Fatalf("attempt %d: wait %v outside (0, %v]", k, want, backoff)
		}
		at += want
		if got[k] != at {
			t.Errorf("attempt %d at virtual %v, want %v (window %v)", k, got[k], at, backoff)
		}
		backoff *= 2
		if backoff > cap {
			backoff = cap
		}
	}
	// failures is sized so the exponential ramp 10→20→40→80ms runs
	// into the cap with attempts to spare; if the doubling or the cap
	// regresses, the exact-match loop above has already failed, but
	// make the intent explicit.
	if backoff != cap {
		t.Fatalf("final backoff window %v never reached the cap %v", backoff, cap)
	}
}
