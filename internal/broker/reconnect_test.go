package broker

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// dialReconnecting dials a client with auto-reconnect and a channel of
// connection-state transitions.
func dialReconnecting(t *testing.T, b *Broker, id string) (*Client, chan bool) {
	t.Helper()
	states := make(chan bool, 16)
	c, err := Dial(b.Addr(), &ClientOptions{
		ClientID:      id,
		KeepAlive:     5 * time.Second,
		AutoReconnect: true,
		ReconnectMin:  10 * time.Millisecond,
		ReconnectMax:  100 * time.Millisecond,
		OnConnectionState: func(connected bool, cause error) {
			states <- connected
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, states
}

func waitState(t *testing.T, states chan bool, want bool, what string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case got := <-states:
			if got == want {
				return
			}
		case <-deadline:
			t.Fatalf("timeout waiting for %s", what)
		}
	}
}

// A kicked auto-reconnect client comes back, re-establishes its
// subscriptions, and receives both the retained state and new traffic.
func TestClientAutoReconnectResubscribes(t *testing.T) {
	b := startBroker(t, nil)
	if err := b.Publish("digibox/S1/status", []byte(`{"v":1}`), true); err != nil {
		t.Fatal(err)
	}

	c, states := dialReconnecting(t, b, "app")
	msgs := make(chan Message, 16)
	if err := c.Subscribe("digibox/#", 1, func(m Message) { msgs <- m }); err != nil {
		t.Fatal(err)
	}
	if m := waitMsg(t, msgs, "retained before kick"); !m.Retained {
		t.Errorf("expected retained message, got %+v", m)
	}

	if !b.Kick("app") {
		t.Fatal("kick failed")
	}
	waitState(t, states, false, "disconnect notification")
	waitState(t, states, true, "reconnect notification")
	if !c.IsConnected() {
		t.Error("client not connected after reconnect notification")
	}

	// The resubscription triggers retained redelivery...
	if m := waitMsg(t, msgs, "retained redelivery after reconnect"); !m.Retained {
		t.Errorf("expected retained message, got %+v", m)
	}
	// ...and live traffic flows again.
	if err := b.Publish("digibox/S1/status", []byte(`{"v":2}`), false); err != nil {
		t.Fatal(err)
	}
	m := waitMsg(t, msgs, "live message after reconnect")
	if m.Retained || string(m.Payload) != `{"v":2}` {
		t.Errorf("live message = %+v", m)
	}
}

// Publishes issued while disconnected are buffered and flushed on
// reconnect, QoS 1 included.
func TestClientBuffersPublishesWhileDisconnected(t *testing.T) {
	b := startBroker(t, nil)
	c, states := dialReconnecting(t, b, "pub")

	sub := dialClient(t, b, "sub")
	msgs := make(chan Message, 16)
	if err := sub.Subscribe("t/+", 1, func(m Message) { msgs <- m }); err != nil {
		t.Fatal(err)
	}

	if !b.Kick("pub") {
		t.Fatal("kick failed")
	}
	waitState(t, states, false, "disconnect notification")
	if err := c.Publish("t/a", []byte("buffered-0"), 0, false); err != nil {
		t.Errorf("buffered QoS0 publish: %v", err)
	}
	if err := c.Publish("t/b", []byte("buffered-1"), 1, false); err != nil {
		t.Errorf("buffered QoS1 publish: %v", err)
	}
	waitState(t, states, true, "reconnect notification")

	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		m := waitMsg(t, msgs, "flushed publish")
		got[string(m.Payload)] = true
	}
	if !got["buffered-0"] || !got["buffered-1"] {
		t.Errorf("flushed payloads = %v", got)
	}
}

// Without auto-reconnect a connection loss still closes the client —
// the pre-chaos contract — and the close cause is the real error.
func TestClientWithoutAutoReconnectClosesOnLoss(t *testing.T) {
	b := startBroker(t, nil)
	c := dialClient(t, b, "victim")
	if !b.Kick("victim") {
		t.Fatal("kick failed")
	}
	select {
	case <-c.Done():
	case <-time.After(3 * time.Second):
		t.Fatal("client did not close on connection loss")
	}
	err := c.Publish("t", nil, 1, false)
	if err == nil {
		t.Fatal("publish on dead client succeeded")
	}
	if !strings.Contains(err.Error(), "connection lost") {
		t.Errorf("error does not carry the real cause: %v", err)
	}
}

// fakeServer accepts one MQTT connection and hands packets to fn;
// anything fn returns is written back.
func fakeServer(t *testing.T, fn func(*Packet) []*Packet) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			pkt, err := ReadPacket(conn)
			if err != nil {
				return
			}
			if pkt.Type == CONNECT {
				data, _ := (&Packet{Type: CONNACK, ReturnCode: ConnAccepted}).Encode()
				conn.Write(data)
				continue
			}
			for _, out := range fn(pkt) {
				data, _ := out.Encode()
				conn.Write(data)
			}
		}
	}()
	t.Cleanup(wg.Wait)
	return ln.Addr().String()
}

// The QoS 1 publish path retransmits with the DUP flag and the same
// packet ID when the ack does not arrive in time.
func TestPublishQoS1RetriesWithDup(t *testing.T) {
	var mu sync.Mutex
	var seen []*Packet
	addr := fakeServer(t, func(pkt *Packet) []*Packet {
		if pkt.Type != PUBLISH {
			return nil
		}
		mu.Lock()
		seen = append(seen, pkt)
		n := len(seen)
		mu.Unlock()
		if n == 1 {
			return nil // swallow the first attempt's ack
		}
		return []*Packet{{Type: PUBACK, PacketID: pkt.PacketID}}
	})
	c, err := Dial(addr, &ClientOptions{
		ClientID:   "retrier",
		KeepAlive:  0,
		AckTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish("t", []byte("x"), 1, false); err != nil {
		t.Fatalf("publish failed despite retry: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("broker saw %d publishes, want 2", len(seen))
	}
	if seen[0].Dup || !seen[1].Dup {
		t.Errorf("dup flags = %v, %v; want false, true", seen[0].Dup, seen[1].Dup)
	}
	if seen[0].PacketID != seen[1].PacketID {
		t.Errorf("retransmission changed packet ID: %d -> %d", seen[0].PacketID, seen[1].PacketID)
	}
}

// When every retransmission times out, Publish fails with the ack
// timeout.
func TestPublishQoS1FailsAfterRetriesExhausted(t *testing.T) {
	addr := fakeServer(t, func(pkt *Packet) []*Packet { return nil })
	c, err := Dial(addr, &ClientOptions{
		ClientID:       "nohope",
		KeepAlive:      0,
		AckTimeout:     50 * time.Millisecond,
		PublishRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Publish("t", []byte("x"), 1, false)
	if !errors.Is(err, errAckTimeout) {
		t.Fatalf("err = %v, want ack timeout", err)
	}
}
