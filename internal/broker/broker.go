package broker

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// Stats is a snapshot of broker counters.
type Stats struct {
	Connections   int   `json:"connections"`   // currently connected sessions
	Subscriptions int   `json:"subscriptions"` // live subscriptions across all sessions
	Retained      int   `json:"retained"`      // retained messages held
	PublishesIn   int64 `json:"publishes_in"`  // PUBLISH packets received
	MessagesOut   int64 `json:"messages_out"`  // PUBLISH packets delivered to subscribers
	Dropped       int64 `json:"dropped"`       // messages dropped on slow/full sessions
	FaultDrops    int64 `json:"fault_drops"`   // messages dropped by injected fault rules/partitions
}

// Options configures a Broker.
type Options struct {
	// OutboundQueue bounds each session's outbound message queue.
	// When full, QoS 0 messages to that session are dropped (counted
	// in Stats.Dropped); this mirrors broker back-pressure behaviour.
	OutboundQueue int
	// GraceKeepAlive is the multiplier on the negotiated keepalive
	// after which an idle session is terminated. MQTT mandates 1.5.
	GraceKeepAlive float64
	// Logf, when set, receives debug log lines.
	Logf func(format string, args ...any)
	// ConnHook, when set, wraps every accepted connection before the
	// MQTT handshake — an injection point for chaos proxies (latency,
	// corruption) and tests. Closing the returned conn must close the
	// underlying one.
	ConnHook func(net.Conn) net.Conn
	// Obs, when set, exposes the broker's counters as metric families.
	// The counters are the same atomics the broker already maintains,
	// registered as gather-time funcs — enabling metrics adds no cost
	// to the publish hot path.
	Obs *obs.Registry
	// Tracer, when set, opens a publish→deliver span per routed
	// message and closes one leg per subscriber delivery, feeding
	// end-to-end latency histograms. Usually shared testbed-wide.
	Tracer *obs.Tracer
	// SubscribeHook, when set, observes every subscription change on
	// this broker: wire SUBSCRIBE/UNSUBSCRIBE, in-process
	// subscribe/unsubscribe, and session teardown (one call per filter
	// the departing client held). add is true on subscribe. The swarm
	// bridge uses it to maintain its cross-shard wildcard index. Called
	// outside the trie lock; must not block.
	SubscribeHook func(clientID, filter string, add bool)
	// RouteHook, when set, observes every PUBLISH entering route(),
	// before subscription matching (so it fires even when this broker
	// has no local subscriber). The swarm bridge uses it to forward
	// publishes to sibling shards. Must not block; re-entrant publishes
	// into other brokers are allowed, into this broker are not.
	RouteHook func(from, topic string, payload []byte, qos byte, retain bool)
	// Clock is the time source for fan-out timing and fault-injected
	// delivery delays. Nil means the wall clock; the deterministic
	// replay engine injects its virtual clock so chaos delay faults
	// fire on virtual time.
	Clock clock.Clock
	// Bus, when set, receives a "client" event per wire-session
	// connect and disconnect. Session churn is orders of magnitude
	// rarer than publishes, so this stays off the routing hot path.
	Bus *obs.Bus
}

func (o *Options) withDefaults() Options {
	out := Options{OutboundQueue: 256, GraceKeepAlive: 1.5}
	if o != nil {
		if o.OutboundQueue > 0 {
			out.OutboundQueue = o.OutboundQueue
		}
		if o.GraceKeepAlive > 0 {
			out.GraceKeepAlive = o.GraceKeepAlive
		}
		out.Logf = o.Logf
		out.ConnHook = o.ConnHook
		out.Obs = o.Obs
		out.Tracer = o.Tracer
		out.SubscribeHook = o.SubscribeHook
		out.RouteHook = o.RouteHook
		out.Clock = o.Clock
		out.Bus = o.Bus
	}
	out.Clock = clock.Or(out.Clock)
	return out
}

// Broker is an MQTT 3.1.1 broker. Create with NewBroker, start with
// Serve or ListenAndServe, stop with Close.
type Broker struct {
	opts Options

	subs     *subTrie
	retained sync.Map // topic -> *Packet (with Retain set)

	mu       sync.Mutex
	sessions map[string]*session
	listener net.Listener
	closed   bool
	// closedFlag mirrors closed as an atomic so the publish hot path
	// can reject publishes into a dead broker without taking mu — the
	// signal the swarm pool's failover journaling rides.
	closedFlag int32
	wg         sync.WaitGroup

	publishesIn int64
	messagesOut int64
	dropped     int64
	retainCount int64
	retransIn   int64 // DUP PUBLISH packets received (client retransmits)
	connects    int64 // sessions accepted (CONNACK sent)
	disconnects int64 // sessions ended (any cause)

	// Observability (nil when Options.Obs is unset; all uses are
	// nil-safe no-ops).
	tracer *obs.Tracer
	fanout *obs.Histogram

	// Chaos fault injection (see faults.go). faultsOn is an atomic
	// fast-path flag so fault-free routing never takes faults.mu.
	faultsOn   int32
	faultDrops int64
	faults     faultState
}

// NewBroker returns an idle broker.
func NewBroker(opts *Options) *Broker {
	b := &Broker{
		opts:     opts.withDefaults(),
		subs:     newSubTrie(),
		sessions: map[string]*session{},
	}
	b.tracer = b.opts.Tracer
	if r := b.opts.Obs; r != nil {
		b.bindMetrics(r)
	}
	return b
}

// bindMetrics registers the broker's counters as families in r. The
// funcs read the broker's existing atomics at gather time, so the
// publish path pays nothing for them.
func (b *Broker) bindMetrics(r *obs.Registry) {
	load := func(p *int64) func() float64 {
		return func() float64 { return float64(atomic.LoadInt64(p)) }
	}
	r.CounterFunc("digibox_broker_publishes_total",
		"PUBLISH packets received (wire and in-process)", load(&b.publishesIn))
	r.CounterFunc("digibox_broker_deliveries_total",
		"PUBLISH packets delivered to subscribers", load(&b.messagesOut))
	r.CounterFunc("digibox_broker_dropped_total",
		"messages dropped on slow/full sessions", load(&b.dropped))
	r.CounterFunc("digibox_broker_fault_drops_total",
		"messages dropped by injected fault rules/partitions", load(&b.faultDrops))
	r.CounterFunc("digibox_broker_retransmits_total",
		"DUP PUBLISH packets received (QoS 1 client retransmits)", load(&b.retransIn))
	r.CounterFunc("digibox_broker_connects_total",
		"client sessions accepted", load(&b.connects))
	r.CounterFunc("digibox_broker_disconnects_total",
		"client sessions ended (clean or broken)", load(&b.disconnects))
	r.GaugeFunc("digibox_broker_connections",
		"currently connected sessions", func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.sessions))
		})
	r.GaugeFunc("digibox_broker_subscriptions",
		"live subscriptions across all sessions", func() float64 {
			return float64(b.subs.countSubscriptions())
		})
	r.GaugeFunc("digibox_broker_retained",
		"retained messages held", load(&b.retainCount))
	b.fanout = r.Histogram("digibox_broker_fanout_seconds",
		"time to fan one PUBLISH out to all matching subscribers", nil)
}

// ListenAndServe binds addr (e.g. "127.0.0.1:0") and serves until
// Close. It returns once the listener is bound; serving continues in
// the background. Use Addr for the bound address.
func (b *Broker) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return errors.New("mqtt: broker closed")
	}
	b.listener = ln
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.acceptLoop(ln)
	}()
	return nil
}

// Addr returns the bound listener address, or "" before ListenAndServe.
func (b *Broker) Addr() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.listener == nil {
		return ""
	}
	return b.listener.Addr().String()
}

func (b *Broker) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serveConn(conn)
		}()
	}
}

// Close stops the listener and terminates all sessions.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	atomic.StoreInt32(&b.closedFlag, 1)
	ln := b.listener
	sessions := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		s.terminate()
	}
	b.wg.Wait()
}

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	conns := len(b.sessions)
	b.mu.Unlock()
	return Stats{
		Connections:   conns,
		Subscriptions: b.subs.countSubscriptions(),
		Retained:      int(atomic.LoadInt64(&b.retainCount)),
		PublishesIn:   atomic.LoadInt64(&b.publishesIn),
		MessagesOut:   atomic.LoadInt64(&b.messagesOut),
		Dropped:       atomic.LoadInt64(&b.dropped),
		FaultDrops:    atomic.LoadInt64(&b.faultDrops),
	}
}

func (b *Broker) logf(format string, args ...any) {
	if b.opts.Logf != nil {
		b.opts.Logf(format, args...)
	}
}

// session is one connected client.
type session struct {
	broker   *Broker
	conn     net.Conn
	clientID string

	outbound  chan *Packet
	closeOnce sync.Once
	closedCh  chan struct{}

	keepAlive time.Duration
}

func (b *Broker) serveConn(conn net.Conn) {
	if b.opts.ConnHook != nil {
		conn = b.opts.ConnHook(conn)
	}
	defer conn.Close()
	// The first packet must be CONNECT, within a handshake deadline.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //dbox:allow wallclock -- net.Conn deadlines compare against the kernel's wall clock
	pkt, err := ReadPacket(conn)
	if err != nil {
		if errors.Is(err, errBadVersion) {
			ack, _ := (&Packet{Type: CONNACK, ReturnCode: ConnRefusedVersion}).Encode()
			conn.Write(ack)
		}
		return
	}
	if pkt.Type != CONNECT {
		return
	}
	if pkt.ClientID == "" {
		if !pkt.CleanSession {
			ack, _ := (&Packet{Type: CONNACK, ReturnCode: ConnRefusedIdentifier}).Encode()
			conn.Write(ack)
			return
		}
		pkt.ClientID = fmt.Sprintf("anon-%s", conn.RemoteAddr())
	}

	s := &session{
		broker:   b,
		conn:     conn,
		clientID: pkt.ClientID,
		outbound: make(chan *Packet, b.opts.OutboundQueue),
		closedCh: make(chan struct{}),
	}
	if pkt.KeepAliveSec > 0 {
		s.keepAlive = time.Duration(float64(pkt.KeepAliveSec)*b.opts.GraceKeepAlive) * time.Second
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if old, ok := b.sessions[s.clientID]; ok {
		// MQTT: a second CONNECT with the same client id takes over.
		b.mu.Unlock()
		old.terminate()
		b.mu.Lock()
	}
	b.sessions[s.clientID] = s
	b.mu.Unlock()

	defer func() {
		b.mu.Lock()
		if b.sessions[s.clientID] == s {
			delete(b.sessions, s.clientID)
		}
		b.mu.Unlock()
		removed := b.subs.removeClient(s.clientID)
		if hook := b.opts.SubscribeHook; hook != nil {
			for _, f := range removed {
				hook(s.clientID, f, false)
			}
		}
		s.terminate()
		atomic.AddInt64(&b.disconnects, 1)
		b.opts.Bus.Publish("client", map[string]any{"client": s.clientID, "state": "disconnected"})
	}()

	ack, err := (&Packet{Type: CONNACK, ReturnCode: ConnAccepted}).Encode()
	if err != nil {
		return
	}
	if _, err := conn.Write(ack); err != nil {
		return
	}
	atomic.AddInt64(&b.connects, 1)
	b.opts.Bus.Publish("client", map[string]any{"client": s.clientID, "state": "connected"})
	b.logf("mqtt: session %s connected from %s", s.clientID, conn.RemoteAddr())

	go s.writeLoop()
	s.readLoop()
}

func (s *session) terminate() {
	s.closeOnce.Do(func() {
		close(s.closedCh)
		s.conn.Close()
	})
}

// writeBufSize sizes each session's outbound buffered writer: large
// enough to coalesce a burst of status publishes into one syscall,
// small enough that per-session memory stays negligible at 10k+
// sessions.
const writeBufSize = 4096

func (s *session) writeLoop() {
	// Buffered flush-on-idle: drain every packet already queued,
	// writing each into the buffer, and only flush when the queue goes
	// empty. Under high fanout this turns one syscall per packet into
	// one syscall per burst; under light load the queue is empty after
	// each packet so latency is unchanged. Spans are ended after the
	// flush that actually commits their bytes to the socket, keeping
	// e2e latency honest.
	bw := bufio.NewWriterSize(s.conn, writeBufSize)
	spans := make([]obs.SpanID, 0, 16)
	write := func(pkt *Packet) bool {
		data, err := pkt.Encode()
		if err != nil {
			s.broker.logf("mqtt: encode to %s: %v", s.clientID, err)
			return true
		}
		if _, err := bw.Write(data); err != nil {
			s.terminate()
			return false
		}
		if pkt.span != 0 {
			spans = append(spans, pkt.span)
		}
		return true
	}
	for {
		select {
		case pkt := <-s.outbound:
			if !write(pkt) {
				return
			}
		drain:
			for {
				select {
				case pkt := <-s.outbound:
					if !write(pkt) {
						return
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				s.terminate()
				return
			}
			for _, id := range spans {
				s.broker.tracer.End(id)
			}
			spans = spans[:0]
		case <-s.closedCh:
			return
		}
	}
}

// send enqueues a packet for the session; drops QoS0 publishes when
// the queue is full, blocks (briefly) otherwise to preserve acks.
func (s *session) send(pkt *Packet) {
	select {
	case s.outbound <- pkt:
	default:
		if pkt.Type == PUBLISH && pkt.QoS == 0 {
			atomic.AddInt64(&s.broker.dropped, 1)
			return
		}
		select {
		case s.outbound <- pkt:
		case <-s.closedCh:
		}
	}
}

func (s *session) readLoop() {
	for {
		if s.keepAlive > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.keepAlive)) //dbox:allow wallclock -- net.Conn deadlines compare against the kernel's wall clock
		} else {
			s.conn.SetReadDeadline(time.Time{})
		}
		pkt, err := ReadPacket(s.conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				s.broker.logf("mqtt: read from %s: %v", s.clientID, err)
			}
			return
		}
		switch pkt.Type {
		case PUBLISH:
			atomic.AddInt64(&s.broker.publishesIn, 1)
			if pkt.Dup {
				atomic.AddInt64(&s.broker.retransIn, 1)
			}
			s.broker.route(s.clientID, pkt)
			if pkt.QoS == 1 {
				s.send(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
			}
		case SUBSCRIBE:
			granted := make([]byte, len(pkt.Filters))
			for i, f := range pkt.Filters {
				q := pkt.QoSs[i]
				if q > 1 {
					q = 1 // downgrade: QoS 2 not supported
				}
				granted[i] = q
				s.broker.subs.subscribe(&subscription{
					clientID: s.clientID,
					filter:   f,
					qos:      q,
					deliver:  s.send,
				})
				if hook := s.broker.opts.SubscribeHook; hook != nil {
					hook(s.clientID, f, true)
				}
			}
			s.send(&Packet{Type: SUBACK, PacketID: pkt.PacketID, QoSs: granted})
			// Retained messages are delivered after the SUBACK.
			s.broker.deliverRetained(pkt.Filters, s)
		case UNSUBSCRIBE:
			for _, f := range pkt.Filters {
				if s.broker.subs.unsubscribe(s.clientID, f) {
					if hook := s.broker.opts.SubscribeHook; hook != nil {
						hook(s.clientID, f, false)
					}
				}
			}
			s.send(&Packet{Type: UNSUBACK, PacketID: pkt.PacketID})
		case PINGREQ:
			s.send(&Packet{Type: PINGRESP})
		case PUBACK:
			// QoS 1 broker->client ack; at-least-once bookkeeping is
			// the client's concern in this implementation.
		case DISCONNECT:
			return
		default:
			s.broker.logf("mqtt: unexpected %v from %s", pkt.Type, s.clientID)
			return
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// route fans a PUBLISH out to matching subscribers and updates the
// retained store. from identifies the publisher (wire client ID or
// PublishFrom name; "" for anonymous in-process publishes) and scopes
// injected fault rules and partition checks.
func (b *Broker) route(from string, pkt *Packet) {
	if hook := b.opts.RouteHook; hook != nil {
		// Before the retained-store update and match short-circuit, so
		// the bridge sees every publish — including ones this shard has
		// no local subscriber for.
		hook(from, pkt.Topic, pkt.Payload, pkt.QoS, pkt.Retain)
	}
	if pkt.Retain {
		key := pkt.Topic
		if len(pkt.Payload) == 0 {
			if _, loaded := b.retained.LoadAndDelete(key); loaded {
				atomic.AddInt64(&b.retainCount, -1)
			}
		} else {
			stored := *pkt
			stored.Dup = false
			if _, loaded := b.retained.Swap(key, &stored); !loaded {
				atomic.AddInt64(&b.retainCount, 1)
			}
		}
	}
	matches := b.subs.match(pkt.Topic)
	if len(matches) == 0 {
		return
	}
	// The span is stamped here — publish time, after the match check
	// so unrouted messages cost nothing — and closed by each
	// subscriber's writeLoop after the socket write: true end-to-end
	// delivery latency. A nil tracer returns 0 and the stamps below
	// are no-ops.
	sid := b.tracer.Start(from, pkt.Topic)
	// Fan-out timing rides the tracer's sampling interval (every
	// message when no tracer is bound) so unsampled messages skip both
	// clock reads.
	measureFan := b.fanout != nil && (sid != 0 || b.tracer == nil)
	var fanStart time.Time
	if measureFan {
		fanStart = b.opts.Clock.Now()
	}
	// Overlapping filters: deliver once per client at the max QoS.
	perClient := make(map[string]*subscription, len(matches))
	for _, sub := range matches {
		if cur, ok := perClient[sub.clientID]; !ok || sub.qos > cur.qos {
			perClient[sub.clientID] = sub
		}
	}
	for _, sub := range perClient {
		out := &Packet{
			Type:    PUBLISH,
			Topic:   pkt.Topic,
			Payload: pkt.Payload,
			QoS:     min(pkt.QoS, sub.qos),
			span:    sid,
			// Retain flag is false on live routing per spec §3.3.1.3.
		}
		if out.QoS > 0 {
			out.PacketID = nextBrokerPacketID()
		}
		if b.faultsActive() {
			act := b.decideFault(from, sub.clientID, pkt.Topic)
			if act.drop {
				atomic.AddInt64(&b.faultDrops, 1)
				continue
			}
			if act.delay > 0 {
				deliver, pkt := sub.deliver, out
				dup := act.dup
				b.opts.Clock.AfterFunc(act.delay, func() {
					atomic.AddInt64(&b.messagesOut, 1)
					deliver(pkt)
					if dup {
						d := *pkt
						d.Dup = d.QoS > 0
						atomic.AddInt64(&b.messagesOut, 1)
						deliver(&d)
					}
				})
				continue
			}
			if act.dup {
				d := *out
				d.Dup = d.QoS > 0
				atomic.AddInt64(&b.messagesOut, 1)
				sub.deliver(&d)
			}
		}
		atomic.AddInt64(&b.messagesOut, 1)
		sub.deliver(out)
	}
	if measureFan {
		b.fanout.Observe(b.opts.Clock.Since(fanStart).Seconds())
	}
}

var brokerPacketID uint32

func nextBrokerPacketID() uint16 {
	for {
		id := uint16(atomic.AddUint32(&brokerPacketID, 1))
		if id != 0 {
			return id
		}
	}
}

// deliverRetained sends stored retained messages matching any of the
// new filters to the subscribing session, with the retain flag set.
func (b *Broker) deliverRetained(filters []string, s *session) {
	b.retained.Range(func(key, value any) bool {
		topic := key.(string)
		stored := value.(*Packet)
		for _, f := range filters {
			if MatchTopic(f, topic) {
				out := *stored
				out.Retain = true
				if out.QoS > 0 {
					out.PacketID = nextBrokerPacketID()
				}
				atomic.AddInt64(&b.messagesOut, 1)
				s.send(&out)
				break
			}
		}
		return true
	})
}

// Kick forcibly disconnects a client session, emulating a network
// connectivity fault between a device and the broker (§6 "network
// connectivity between devices"). It reports whether the session
// existed. The client sees a broken connection; its subscriptions are
// dropped with the session (clean-session semantics).
func (b *Broker) Kick(clientID string) bool {
	b.mu.Lock()
	s, ok := b.sessions[clientID]
	b.mu.Unlock()
	if !ok {
		return false
	}
	s.terminate()
	return true
}

// Clients returns the ids of currently connected sessions, sorted.
func (b *Broker) Clients() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.sessions))
	for id := range b.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Publish injects a message into the broker from within the process,
// without a client connection. Mocks co-located with the broker use
// this fast path; the wire path behaves identically.
func (b *Broker) Publish(topic string, payload []byte, retain bool) error {
	return b.PublishFrom("", topic, payload, retain)
}

// PublishFrom is Publish with a publisher identity, so in-process
// publishes participate in partition groups and From-scoped fault
// rules the same way wire clients do. The digi runtime passes the
// publishing digi's name.
func (b *Broker) PublishFrom(from, topic string, payload []byte, retain bool) error {
	return b.PublishQoS(from, topic, payload, 0, retain)
}

// ErrClosed is returned by PublishQoS once the broker has been closed
// (or killed by a chaos shard fault). The swarm pool treats it as the
// "shard is dead" signal and journals the message for redelivery after
// failover instead of losing it.
var ErrClosed = errors.New("mqtt: broker closed")

// PublishQoS is PublishFrom with an explicit QoS: subscribers receive
// the message at min(qos, subscription qos), exactly as if a wire
// client had published it. The swarm load generator and bridge use
// QoS 1 so deliveries are never shed under back-pressure and loss
// accounting stays exact.
func (b *Broker) PublishQoS(from, topic string, payload []byte, qos byte, retain bool) error {
	if !b.Alive() {
		return ErrClosed
	}
	if err := ValidateTopicName(topic); err != nil {
		return err
	}
	if qos > 1 {
		qos = 1 // QoS 2 not supported; downgrade like SUBSCRIBE does
	}
	atomic.AddInt64(&b.publishesIn, 1)
	b.route(from, &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain})
	return nil
}

// SubscribeInProcess registers a subscription delivered by direct
// function call instead of an MQTT session: fn runs synchronously on
// the publisher's goroutine (or the fault-delay timer's). This is the
// fast path the swarm pool and its loss accounting ride — no socket,
// no outbound queue, so a QoS 1 delivery cannot be shed. Matching
// retained messages are delivered (with Retained set) before
// SubscribeInProcess returns, mirroring wire SUBACK semantics.
// Subsequent calls with the same clientID and filter replace fn.
func (b *Broker) SubscribeInProcess(clientID, filter string, qos byte, fn func(Message)) error {
	if err := ValidateTopicFilter(filter); err != nil {
		return err
	}
	if qos > 1 {
		qos = 1
	}
	b.subs.subscribe(&subscription{
		clientID: clientID,
		filter:   filter,
		qos:      qos,
		deliver: func(pkt *Packet) {
			fn(Message{
				Topic:    pkt.Topic,
				Payload:  pkt.Payload,
				QoS:      pkt.QoS,
				Retained: pkt.Retain,
				Dup:      pkt.Dup,
			})
			if pkt.span != 0 {
				b.tracer.End(pkt.span)
			}
		},
	})
	if hook := b.opts.SubscribeHook; hook != nil {
		hook(clientID, filter, true)
	}
	for _, m := range b.RetainedMatching(filter) {
		fn(m)
	}
	return nil
}

// UnsubscribeInProcess removes a subscription registered with
// SubscribeInProcess. It reports whether the subscription existed.
func (b *Broker) UnsubscribeInProcess(clientID, filter string) bool {
	ok := b.subs.unsubscribe(clientID, filter)
	if ok {
		if hook := b.opts.SubscribeHook; hook != nil {
			hook(clientID, filter, false)
		}
	}
	return ok
}

// Alive reports whether the broker is still accepting publishes — the
// liveness probe the swarm pool's health monitor polls. It flips false
// on Close (including a chaos shard-kill) and never recovers; revival
// swaps in a fresh broker.
func (b *Broker) Alive() bool {
	return atomic.LoadInt32(&b.closedFlag) == 0
}

// SubscriptionExport is one live subscription, exported for takeover.
type SubscriptionExport struct {
	ClientID string `json:"client_id"`
	Filter   string `json:"filter"`
	QoS      byte   `json:"qos"`
}

// ExportSubscriptions snapshots every live subscription (wire and
// in-process), sorted by client then filter. The swarm pool reads a
// dead shard's table during failover to cross-check its own migration
// registry; the trie stays readable after Close, so the export works
// on a killed broker.
func (b *Broker) ExportSubscriptions() []SubscriptionExport {
	var out []SubscriptionExport
	for _, s := range b.subs.exportAll() {
		out = append(out, SubscriptionExport{ClientID: s.clientID, Filter: s.filter, QoS: s.qos})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ClientID != out[j].ClientID {
			return out[i].ClientID < out[j].ClientID
		}
		return out[i].Filter < out[j].Filter
	})
	return out
}

// ResubscribeInProcess is SubscribeInProcess without the retained
// sweep: the swarm pool uses it when it re-anchors an existing
// subscription onto a surviving shard during failover. The client
// never unsubscribed, so takeover must not replay retained state the
// subscriber already holds — that would break exactly-once accounting.
func (b *Broker) ResubscribeInProcess(clientID, filter string, qos byte, fn func(Message)) error {
	if err := ValidateTopicFilter(filter); err != nil {
		return err
	}
	if qos > 1 {
		qos = 1
	}
	b.subs.subscribe(&subscription{
		clientID: clientID,
		filter:   filter,
		qos:      qos,
		deliver: func(pkt *Packet) {
			fn(Message{
				Topic:    pkt.Topic,
				Payload:  pkt.Payload,
				QoS:      pkt.QoS,
				Retained: pkt.Retain,
				Dup:      pkt.Dup,
			})
			if pkt.span != 0 {
				b.tracer.End(pkt.span)
			}
		},
	})
	if hook := b.opts.SubscribeHook; hook != nil {
		hook(clientID, filter, true)
	}
	return nil
}

// ExportRetained snapshots every retained message (no filter — "$"
// topics included). Failover re-replication reads a survivor's full
// replica through this to seed a revived shard.
func (b *Broker) ExportRetained() []Message {
	var out []Message
	b.retained.Range(func(key, value any) bool {
		stored := value.(*Packet)
		out = append(out, Message{
			Topic:    key.(string),
			Payload:  stored.Payload,
			QoS:      stored.QoS,
			Retained: true,
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}

// ImportRetained stores retained messages directly — no routing, no
// subscriber deliveries, no bridge forwards. The swarm pool uses it to
// re-replicate retained state onto a shard joining (or rejoining) the
// pool; silent import is what keeps re-replication from double-
// delivering to live subscribers.
func (b *Broker) ImportRetained(msgs []Message) {
	for _, m := range msgs {
		if len(m.Payload) == 0 {
			continue
		}
		stored := &Packet{Type: PUBLISH, Topic: m.Topic, Payload: m.Payload, QoS: m.QoS, Retain: true}
		if _, loaded := b.retained.Swap(m.Topic, stored); !loaded {
			atomic.AddInt64(&b.retainCount, 1)
		}
	}
}

// RetainedMatching returns the retained messages whose topics match
// filter, with Retained set. The swarm pool uses it to sweep sibling
// shards when a wildcard subscription lands, so pool-level retained
// semantics match a single broker's.
func (b *Broker) RetainedMatching(filter string) []Message {
	var out []Message
	b.retained.Range(func(key, value any) bool {
		topic := key.(string)
		stored := value.(*Packet)
		if MatchTopic(filter, topic) {
			out = append(out, Message{
				Topic:    topic,
				Payload:  stored.Payload,
				QoS:      stored.QoS,
				Retained: true,
			})
		}
		return true
	})
	return out
}
