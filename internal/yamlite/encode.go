package yamlite

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Encode renders a value decoded by Decode (or assembled from the same
// dynamic types) as a YAML document. Map keys are emitted in sorted
// order so output is deterministic and diff-friendly, which the scene
// repository relies on for content addressing.
func Encode(v any) ([]byte, error) {
	var b strings.Builder
	if err := encodeValue(&b, v, 0, false); err != nil {
		return nil, err
	}
	s := b.String()
	if s == "" {
		s = "null\n"
	}
	return []byte(s), nil
}

// EncodeAll renders a multi-document stream separated by "---" lines.
func EncodeAll(docs []any) ([]byte, error) {
	var b strings.Builder
	for i, d := range docs {
		if i > 0 {
			b.WriteString("---\n")
		}
		enc, err := Encode(d)
		if err != nil {
			return nil, err
		}
		b.Write(enc)
	}
	return []byte(b.String()), nil
}

func encodeValue(b *strings.Builder, v any, indent int, inline bool) error {
	switch t := v.(type) {
	case nil:
		b.WriteString("null\n")
	case map[string]any:
		if len(t) == 0 {
			b.WriteString("{}\n")
			return nil
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 || !inline {
				writeIndent(b, indent)
			}
			b.WriteString(encodeKey(k))
			val := t[k]
			if isComposite(val) && !isEmptyComposite(val) {
				b.WriteString(":\n")
				if err := encodeValue(b, val, indent+2, false); err != nil {
					return err
				}
			} else {
				b.WriteString(": ")
				if err := encodeValue(b, val, indent, true); err != nil {
					return err
				}
			}
		}
	case []any:
		if len(t) == 0 {
			b.WriteString("[]\n")
			return nil
		}
		if allScalars(t) {
			b.WriteString(encodeFlowSeq(t))
			b.WriteString("\n")
			return nil
		}
		for i, item := range t {
			if i > 0 || !inline {
				writeIndent(b, indent)
			}
			b.WriteString("-")
			if isComposite(item) && !isEmptyComposite(item) {
				b.WriteString(" ")
				if err := encodeValue(b, item, indent+2, true); err != nil {
					return err
				}
			} else {
				b.WriteString(" ")
				if err := encodeValue(b, item, indent, true); err != nil {
					return err
				}
			}
		}
	case string:
		b.WriteString(encodeString(t))
		b.WriteString("\n")
	case bool:
		b.WriteString(strconv.FormatBool(t))
		b.WriteString("\n")
	case int:
		b.WriteString(strconv.Itoa(t))
		b.WriteString("\n")
	case int64:
		b.WriteString(strconv.FormatInt(t, 10))
		b.WriteString("\n")
	case float64:
		b.WriteString(encodeFloat(t))
		b.WriteString("\n")
	default:
		return fmt.Errorf("yamlite: cannot encode %T", v)
	}
	return nil
}

func writeIndent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteByte(' ')
	}
}

func isComposite(v any) bool {
	switch t := v.(type) {
	case map[string]any:
		return true
	case []any:
		return !allScalars(t)
	}
	return false
}

func isEmptyComposite(v any) bool {
	switch t := v.(type) {
	case map[string]any:
		return len(t) == 0
	case []any:
		return len(t) == 0
	}
	return false
}

func allScalars(seq []any) bool {
	for _, v := range seq {
		switch v.(type) {
		case map[string]any, []any:
			return false
		}
	}
	return true
}

func encodeFlowSeq(seq []any) string {
	parts := make([]string, len(seq))
	for i, v := range seq {
		switch t := v.(type) {
		case nil:
			parts[i] = "null"
		case string:
			parts[i] = encodeString(t)
		case bool:
			parts[i] = strconv.FormatBool(t)
		case int:
			parts[i] = strconv.Itoa(t)
		case int64:
			parts[i] = strconv.FormatInt(t, 10)
		case float64:
			parts[i] = encodeFloat(t)
		default:
			parts[i] = fmt.Sprintf("%v", v)
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func encodeFloat(f float64) string {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		// The decoder keeps these as strings; encode symmetrically.
		return strconv.Quote(strconv.FormatFloat(f, 'g', -1, 64))
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Make sure the value re-decodes as a float, not an int.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func encodeKey(k string) string {
	if needsQuoting(k) || k == "" {
		return strconv.Quote(k)
	}
	return k
}

func encodeString(s string) string {
	if s == "" || needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}

// needsQuoting reports whether a plain rendering of s would fail to
// round-trip (would re-decode as a different type or break parsing).
func needsQuoting(s string) bool {
	switch s {
	case "", "null", "~", "Null", "NULL", "true", "false", "True", "False", "TRUE", "FALSE":
		return true
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil && looksNumeric(s) {
		return true
	}
	if strings.ContainsAny(s, ":#[]{}\"'\n\t,") {
		return true
	}
	if s[0] == ' ' || s[len(s)-1] == ' ' || s[0] == '-' || s[0] == '&' || s[0] == '*' || s[0] == '!' {
		return true
	}
	return false
}
