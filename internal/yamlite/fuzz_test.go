package yamlite

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary documents at the parser. Properties:
// the parser never panics (malformed input yields a SyntaxError), and
// the package's documented round-trip contract holds — Encode accepts
// every value Decode produces, and decoding the encoding yields the
// same value.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		"a: 1\nb: two\n",
		"digis:\n  - type: Occupancy\n    name: O1\n    config: {interval_ms: 50, seed: 7}\n",
		"list: [1, 2.5, true, null, \"q\"]\n",
		"nested:\n  deep:\n    - a\n    - b: {c: d}\n",
		"'single': \"double\"\n",
		"# comment\n---\nsecond: doc\n",
		"seq:\n- no indent\n- items\n",
		"flow: {a: [1, {b: 2}], c: }\n",
		"scalar only",
		"key:\n  - 1\n  -\n",
		"\t: tab\n",
		// Device-profile documents (internal/profile rides this parser):
		// a full population with cadence, diurnal window, burst, and
		// generator fields, plus degenerate profile shapes.
		"profile: city\nseed: 42\npopulations:\n  - kind: thermostat\n    count: 40\n    weight: 2\n    firmware: {\"1.0\": 3, \"1.1\": 1}\n    cadence:\n      dist: poisson\n      mean_ms: 30000\n      diurnal: {start_hour: 7, end_hour: 22, trough: 0.2}\n    burst: {every: 5m, length: 10s, factor: 4}\n    fields:\n      - {name: temp_c, gen: randomwalk, min: 15, max: 30, step: 0.2}\n      - {name: mode, gen: enum, states: [heat, cool, \"off\"], p_change: 0.05}\n",
		"profile: dead\nseed: 1\npopulations:\n  - kind: x\n    count: 1\n    cadence: {dist: fixed, mean_ms: 0}\n",
		"profile: odd\npopulations:\n  - cadence: {dist: lognormal, mean_ms: 250, sigma: 0.6}\n    fields: [{name: s, gen: sine, min: -1, max: 1, period: 60s}]\n",
		"profile: [not, a, name]\nseed: {nested: true}\npopulations: scalar\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		docs, err := DecodeAll(data)
		if err != nil {
			var syn *SyntaxError
			if !errors.As(err, &syn) {
				t.Fatalf("non-SyntaxError failure: %v", err)
			}
			return
		}
		out, err := EncodeAll(docs)
		if err != nil {
			t.Fatalf("EncodeAll rejects a DecodeAll result: %v\nvalue: %#v", err, docs)
		}
		redocs, err := DecodeAll(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded:\n%s", err, out)
		}
		if len(docs) == 0 {
			// An all-blank stream encodes to nothing; done.
			if len(redocs) != 0 {
				t.Fatalf("empty stream re-decoded to %#v", redocs)
			}
			return
		}
		if !reflect.DeepEqual(docs, redocs) {
			t.Fatalf("round trip changed the value:\n  in  %#v\n  out %#v\nencoded:\n%s", docs, redocs, out)
		}
	})
}
