package yamlite

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary documents at the parser. Properties:
// the parser never panics (malformed input yields a SyntaxError), and
// the package's documented round-trip contract holds — Encode accepts
// every value Decode produces, and decoding the encoding yields the
// same value.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		"a: 1\nb: two\n",
		"digis:\n  - type: Occupancy\n    name: O1\n    config: {interval_ms: 50, seed: 7}\n",
		"list: [1, 2.5, true, null, \"q\"]\n",
		"nested:\n  deep:\n    - a\n    - b: {c: d}\n",
		"'single': \"double\"\n",
		"# comment\n---\nsecond: doc\n",
		"seq:\n- no indent\n- items\n",
		"flow: {a: [1, {b: 2}], c: }\n",
		"scalar only",
		"key:\n  - 1\n  -\n",
		"\t: tab\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		docs, err := DecodeAll(data)
		if err != nil {
			var syn *SyntaxError
			if !errors.As(err, &syn) {
				t.Fatalf("non-SyntaxError failure: %v", err)
			}
			return
		}
		out, err := EncodeAll(docs)
		if err != nil {
			t.Fatalf("EncodeAll rejects a DecodeAll result: %v\nvalue: %#v", err, docs)
		}
		redocs, err := DecodeAll(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded:\n%s", err, out)
		}
		if len(docs) == 0 {
			// An all-blank stream encodes to nothing; done.
			if len(redocs) != 0 {
				t.Fatalf("empty stream re-decoded to %#v", redocs)
			}
			return
		}
		if !reflect.DeepEqual(docs, redocs) {
			t.Fatalf("round trip changed the value:\n  in  %#v\n  out %#v\nencoded:\n%s", docs, redocs, out)
		}
	})
}
