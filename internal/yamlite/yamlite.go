// Package yamlite implements a small YAML subset used throughout
// Digibox for model documents, Infrastructure-as-Code configuration
// files, and scene-repository objects.
//
// The subset covers everything that appears in the paper's Fig. 3 model
// files and the generated setup configs:
//
//   - block mappings and block sequences nested by indentation
//   - flow sequences ("[L1, O1]") and flow mappings ("{a: 1, b: 2}")
//   - plain, single-quoted, and double-quoted scalars
//   - bool, int, float, and null scalar typing with string fallback
//   - "#" comments and blank lines
//   - multi-document streams separated by "---"
//
// Decoded values use the dynamic Go forms map[string]any, []any,
// string, int64, float64, bool, and nil. Encode is the inverse and
// round-trips every value Decode can produce.
package yamlite

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrMalformed is wrapped by every parse error, so callers can gate on
// errors.Is(err, yamlite.ErrMalformed) without caring whether the
// failure carries a line number.
var ErrMalformed = errors.New("yamlite: malformed document")

// A SyntaxError describes a malformed document and the line on which
// the problem was detected (1-based).
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("yamlite: line %d: %s", e.Line, e.Msg)
}

// Unwrap makes every SyntaxError match ErrMalformed.
func (e *SyntaxError) Unwrap() error { return ErrMalformed }

func errf(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Decode parses a single-document stream. It fails if the stream
// contains more than one document; use DecodeAll for multi-document
// streams. An empty stream decodes to nil.
func Decode(data []byte) (any, error) {
	docs, err := DecodeAll(data)
	if err != nil {
		return nil, err
	}
	switch len(docs) {
	case 0:
		return nil, nil
	case 1:
		return docs[0], nil
	default:
		return nil, fmt.Errorf("%w: expected one document, found %d", ErrMalformed, len(docs))
	}
}

// DecodeAll parses a (possibly multi-document) stream and returns one
// value per document.
func DecodeAll(data []byte) ([]any, error) {
	lines := splitLines(string(data))
	var docs []any
	i := 0
	for i < len(lines) {
		// Skip leading blanks/comments and document separators.
		for i < len(lines) && (lines[i].blank || lines[i].text == "---") {
			i++
		}
		if i >= len(lines) {
			break
		}
		p := &parser{lines: lines}
		v, next, err := p.parseBlock(i, lines[i].indent)
		if err != nil {
			return nil, err
		}
		docs = append(docs, v)
		i = next
	}
	return docs, nil
}

// line is one physical line with its indentation pre-computed.
type line struct {
	num    int    // 1-based line number
	indent int    // count of leading spaces
	text   string // content with indentation stripped, comments removed
	blank  bool   // blank or comment-only
}

func splitLines(s string) []line {
	raw := strings.Split(s, "\n")
	out := make([]line, 0, len(raw))
	for i, r := range raw {
		r = strings.TrimRight(r, "\r")
		indent := 0
		for indent < len(r) && r[indent] == ' ' {
			indent++
		}
		body := r[indent:]
		if strings.HasPrefix(body, "\t") {
			// Normalise tabs to two spaces to be forgiving; YAML
			// proper forbids tabs in indentation.
			expanded := strings.ReplaceAll(r, "\t", "  ")
			indent = 0
			for indent < len(expanded) && expanded[indent] == ' ' {
				indent++
			}
			body = expanded[indent:]
		}
		body = stripComment(body)
		body = strings.TrimRight(body, " ")
		out = append(out, line{
			num:    i + 1,
			indent: indent,
			text:   body,
			blank:  body == "",
		})
	}
	return out
}

// stripComment removes a trailing "# ..." comment, respecting quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ') {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

type parser struct {
	lines []line
}

// parseBlock parses the block value starting at index i whose items
// must be indented exactly `indent` spaces. It returns the value and
// the index of the first line after the block.
func (p *parser) parseBlock(i, indent int) (any, int, error) {
	// Decide the block kind from the first significant line.
	ln := p.lines[i]
	switch {
	case strings.HasPrefix(ln.text, "- ") || ln.text == "-":
		return p.parseSequence(i, indent)
	default:
		if keyOf(ln.text) != "" {
			return p.parseMapping(i, indent)
		}
		// Bare scalar document.
		v, err := parseScalar(ln.text, ln.num)
		return v, i + 1, err
	}
}

func (p *parser) parseSequence(i, indent int) (any, int, error) {
	var seq []any
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.blank {
			i++
			continue
		}
		if ln.text == "---" || ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, errf(ln.num, "unexpected indentation %d (sequence expects %d)", ln.indent, indent)
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			break // end of the sequence; a sibling mapping key follows
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// The item's value is the nested block on following lines.
			j := nextSignificant(p.lines, i+1)
			if j >= len(p.lines) || p.lines[j].indent <= indent {
				seq = append(seq, nil)
				i++
				continue
			}
			v, next, err := p.parseBlock(j, p.lines[j].indent)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		// "- key: value" and "- - item" start an inline block (mapping
		// or nested sequence) whose lines align after the "- ".
		if keyOf(rest) != "" || rest == "-" || strings.HasPrefix(rest, "- ") {
			inner := p.cloneShiftedItem(i, indent+2, rest)
			v, _, err := inner.parseBlock(0, 0)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i += 1 + inner.consumedFollowers
			continue
		}
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, i, err
		}
		seq = append(seq, v)
		i++
	}
	return seq, i, nil
}

// cloneShiftedItem builds a sub-parser for a "- key: value" sequence
// item: the first virtual line is the text after "- ", and subsequent
// lines belonging to the item (indent >= itemIndent) are re-based so
// the sub-parser sees a standalone mapping at indent 0.
type itemParser struct {
	parser
	consumedFollowers int
}

func (p *parser) cloneShiftedItem(i, itemIndent int, first string) *itemParser {
	ip := &itemParser{}
	ip.lines = append(ip.lines, line{num: p.lines[i].num, indent: 0, text: first})
	j := i + 1
	for j < len(p.lines) {
		ln := p.lines[j]
		if ln.blank {
			ip.lines = append(ip.lines, ln)
			j++
			continue
		}
		if ln.text == "---" || ln.indent < itemIndent {
			break
		}
		shifted := ln
		shifted.indent -= itemIndent
		ip.lines = append(ip.lines, shifted)
		j++
	}
	ip.consumedFollowers = j - (i + 1)
	return ip
}

func (p *parser) parseMapping(i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.blank {
			i++
			continue
		}
		if ln.text == "---" || ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, errf(ln.num, "unexpected indentation %d (mapping expects %d)", ln.indent, indent)
		}
		key := keyOf(ln.text)
		if key == "" {
			return nil, i, errf(ln.num, "expected 'key: value', got %q", ln.text)
		}
		rawKey, rest := splitKey(ln.text)
		k, err := unquoteKey(rawKey, ln.num)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[k]; dup {
			return nil, i, errf(ln.num, "duplicate key %q", k)
		}
		if rest == "" {
			// Value is a nested block (or null if nothing deeper).
			j := nextSignificant(p.lines, i+1)
			if j >= len(p.lines) || p.lines[j].text == "---" || p.lines[j].indent <= indent {
				m[k] = nil
				i++
				continue
			}
			v, next, err := p.parseBlock(j, p.lines[j].indent)
			if err != nil {
				return nil, i, err
			}
			m[k] = v
			i = next
			continue
		}
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, i, err
		}
		m[k] = v
		i++
	}
	return m, i, nil
}

func nextSignificant(lines []line, i int) int {
	for i < len(lines) && lines[i].blank {
		i++
	}
	return i
}

// keyOf returns the raw key if the line looks like "key: ..." or
// "key:", otherwise "".
func keyOf(s string) string {
	k, _ := splitKey(s)
	return k
}

// splitKey splits "key: value" respecting quoted keys and flow
// brackets. Returns ("", "") if the line is not a mapping entry.
func splitKey(s string) (key, rest string) {
	inS, inD := false, false
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\\':
			if inD {
				i++ // an escaped character cannot close the string
			}
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[', '{':
			if !inS && !inD {
				depth++
			}
		case ']', '}':
			if !inS && !inD {
				depth--
			}
		case ':':
			if inS || inD || depth > 0 {
				continue
			}
			if i+1 == len(s) {
				return strings.TrimSpace(s[:i]), ""
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:])
			}
		}
	}
	return "", ""
}

func unquoteKey(k string, lnum int) (string, error) {
	if len(k) >= 2 && (k[0] == '"' || k[0] == '\'') {
		v, err := parseScalar(k, lnum)
		if err != nil {
			return "", err
		}
		s, ok := v.(string)
		if !ok {
			return "", errf(lnum, "invalid quoted key %q", k)
		}
		return s, nil
	}
	if k == "" {
		return "", errf(lnum, "empty mapping key")
	}
	return k, nil
}

// parseScalar parses a flow value: scalar, flow sequence, or flow map.
func parseScalar(s string, lnum int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return parseFlowSeq(s, lnum)
	case s[0] == '{':
		return parseFlowMap(s, lnum)
	case s[0] == '"':
		if len(s) < 2 || s[len(s)-1] != '"' {
			return nil, errf(lnum, "unterminated double-quoted string %q", s)
		}
		return unescapeDouble(s[1:len(s)-1], lnum)
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, errf(lnum, "unterminated single-quoted string %q", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && looksNumeric(s) {
		return f, nil
	}
	return s, nil
}

// looksNumeric guards against ParseFloat accepting exotic spellings
// ("Inf", "nan") that we prefer to keep as strings.
func looksNumeric(s string) bool {
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E':
		default:
			return false
		}
	}
	return true
}

func unescapeDouble(s string, lnum int) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", errf(lnum, "dangling escape in %q", s)
		}
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case 'a':
			b.WriteByte('\a')
		case 'b':
			b.WriteByte('\b')
		case 'f':
			b.WriteByte('\f')
		case 'v':
			b.WriteByte('\v')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		// The hex and unicode forms the encoder's strconv.Quote
		// rendering produces for non-printable content.
		case 'x':
			v, err := hexEscape(s, i+1, 2, lnum)
			if err != nil {
				return "", err
			}
			b.WriteByte(byte(v))
			i += 2
		case 'u':
			v, err := hexEscape(s, i+1, 4, lnum)
			if err != nil {
				return "", err
			}
			b.WriteRune(rune(v))
			i += 4
		case 'U':
			v, err := hexEscape(s, i+1, 8, lnum)
			if err != nil {
				return "", err
			}
			if v > 0x10FFFF {
				return "", errf(lnum, "escape \\U%08x is not a rune", v)
			}
			b.WriteRune(rune(v))
			i += 8
		default:
			return "", errf(lnum, "unsupported escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

// hexEscape reads the n hex digits of a \x, \u, or \U escape.
func hexEscape(s string, start, n, lnum int) (uint64, error) {
	if start+n > len(s) {
		return 0, errf(lnum, "truncated hex escape in %q", s)
	}
	v, err := strconv.ParseUint(s[start:start+n], 16, 64)
	if err != nil {
		return 0, errf(lnum, "bad hex escape %q", s[start:start+n])
	}
	return v, nil
}

// parseFlowSeq parses "[a, b, [c]]".
func parseFlowSeq(s string, lnum int) (any, error) {
	items, err := splitFlow(s, '[', ']', lnum)
	if err != nil {
		return nil, err
	}
	seq := make([]any, 0, len(items))
	for _, it := range items {
		v, err := parseScalar(it, lnum)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// parseFlowMap parses "{a: 1, b: two}".
func parseFlowMap(s string, lnum int) (any, error) {
	items, err := splitFlow(s, '{', '}', lnum)
	if err != nil {
		return nil, err
	}
	m := make(map[string]any, len(items))
	for _, it := range items {
		rawKey, rest := splitKey(it)
		if rawKey == "" {
			// Accept "key:value" without a space inside flow maps.
			if idx := strings.Index(it, ":"); idx > 0 {
				rawKey, rest = strings.TrimSpace(it[:idx]), strings.TrimSpace(it[idx+1:])
			} else {
				return nil, errf(lnum, "invalid flow map entry %q", it)
			}
		}
		k, err := unquoteKey(rawKey, lnum)
		if err != nil {
			return nil, err
		}
		v, err := parseScalar(rest, lnum)
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// splitFlow splits the comma-separated items of a flow collection,
// respecting nesting and quotes.
func splitFlow(s string, open, close byte, lnum int) ([]string, error) {
	if len(s) < 2 || s[0] != open || s[len(s)-1] != close {
		return nil, errf(lnum, "malformed flow collection %q", s)
	}
	body := s[1 : len(s)-1]
	var items []string
	depth := 0
	inS, inD := false, false
	start := 0
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch c {
		case '\\':
			if inD {
				i++ // an escaped character cannot close the string
			}
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[', '{':
			if !inS && !inD {
				depth++
			}
		case ']', '}':
			if !inS && !inD {
				depth--
			}
		case ',':
			if !inS && !inD && depth == 0 {
				items = append(items, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 || inS || inD {
		return nil, errf(lnum, "unbalanced flow collection %q", s)
	}
	last := strings.TrimSpace(body[start:])
	if last != "" || len(items) > 0 {
		items = append(items, last)
	}
	// Drop a trailing empty item from "[a, ]".
	if n := len(items); n > 0 && items[n-1] == "" {
		items = items[:n-1]
	}
	return items, nil
}
