package yamlite

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustDecode(t *testing.T, src string) any {
	t.Helper()
	v, err := Decode([]byte(src))
	if err != nil {
		t.Fatalf("Decode(%q): %v", src, err)
	}
	return v
}

func TestDecodeScalars(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"3.14", 3.14},
		{"1e3", float64(1000)},
		{"true", true},
		{"false", false},
		{"null", nil},
		{"~", nil},
		{"hello", "hello"},
		{"\"on\"", "on"},
		{"'off'", "off"},
		{"\"a\\nb\"", "a\nb"},
		{"'it''s'", "it's"},
		{"v1", "v1"},
		{"00:03", "00:03"},
	}
	for _, c := range cases {
		if got := mustDecode(t, c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decode(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestDecodeMapping(t *testing.T) {
	v := mustDecode(t, "name: L1\ncount: 3\nratio: 0.5\nok: true\n")
	want := map[string]any{"name": "L1", "count": int64(3), "ratio": 0.5, "ok": true}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v, want %#v", v, want)
	}
}

func TestDecodeNestedMapping(t *testing.T) {
	src := `
power:
  intent: "on"
  status: "off"
intensity:
  intent: 0.2
  status: 0.4
`
	v := mustDecode(t, src)
	want := map[string]any{
		"power":     map[string]any{"intent": "on", "status": "off"},
		"intensity": map[string]any{"intent": 0.2, "status": 0.4},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v, want %#v", v, want)
	}
}

func TestDecodeFig3Models(t *testing.T) {
	// The exact documents from the paper's Fig. 3 (with the "..more
	// config" comment elided), as a multi-document stream.
	src := `meta:
  type: Occupancy
  version: v1
  name: O1
  managed: true
# ..more config
triggered: true
---
meta:
  type: Room
  version: v2
  name: MeetingRoom
  managed: true
human_presence: true
attach: [L1, O1]
---
meta:
  type: Building
  version: v3
  name: ConfCenter
  managed: false
num_human: 2
attach: [MeetingRoom]
`
	docs, err := DecodeAll([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("got %d docs, want 3", len(docs))
	}
	occ := docs[0].(map[string]any)
	if occ["triggered"] != true {
		t.Errorf("occupancy triggered = %v", occ["triggered"])
	}
	meta := occ["meta"].(map[string]any)
	if meta["type"] != "Occupancy" || meta["version"] != "v1" || meta["name"] != "O1" || meta["managed"] != true {
		t.Errorf("bad meta: %#v", meta)
	}
	room := docs[1].(map[string]any)
	att, ok := room["attach"].([]any)
	if !ok || len(att) != 2 || att[0] != "L1" || att[1] != "O1" {
		t.Errorf("bad attach: %#v", room["attach"])
	}
	bld := docs[2].(map[string]any)
	if bld["num_human"] != int64(2) {
		t.Errorf("num_human = %#v", bld["num_human"])
	}
	if bld["meta"].(map[string]any)["managed"] != false {
		t.Errorf("building should be unmanaged")
	}
}

func TestDecodeBlockSequence(t *testing.T) {
	src := `
mocks:
  - name: L1
    type: Lamp
  - name: O1
    type: Occupancy
scenes:
  - MeetingRoom
  - Kitchen
`
	v := mustDecode(t, src).(map[string]any)
	mocks := v["mocks"].([]any)
	if len(mocks) != 2 {
		t.Fatalf("mocks = %#v", mocks)
	}
	m0 := mocks[0].(map[string]any)
	if m0["name"] != "L1" || m0["type"] != "Lamp" {
		t.Errorf("mocks[0] = %#v", m0)
	}
	scenes := v["scenes"].([]any)
	if !reflect.DeepEqual(scenes, []any{"MeetingRoom", "Kitchen"}) {
		t.Errorf("scenes = %#v", scenes)
	}
}

func TestDecodeSequenceOfNestedBlocks(t *testing.T) {
	src := `
items:
  -
    a: 1
  - b: 2
    c:
      d: 3
`
	v := mustDecode(t, src).(map[string]any)
	items := v["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("items = %#v", items)
	}
	if items[0].(map[string]any)["a"] != int64(1) {
		t.Errorf("items[0] = %#v", items[0])
	}
	second := items[1].(map[string]any)
	if second["b"] != int64(2) || second["c"].(map[string]any)["d"] != int64(3) {
		t.Errorf("items[1] = %#v", second)
	}
}

func TestDecodeFlowCollections(t *testing.T) {
	v := mustDecode(t, "attach: [L1, O1, 'x y', 3]\nopts: {seed: 42, interval: 0.5}")
	m := v.(map[string]any)
	if !reflect.DeepEqual(m["attach"], []any{"L1", "O1", "x y", int64(3)}) {
		t.Errorf("attach = %#v", m["attach"])
	}
	opts := m["opts"].(map[string]any)
	if opts["seed"] != int64(42) || opts["interval"] != 0.5 {
		t.Errorf("opts = %#v", opts)
	}
}

func TestDecodeNestedFlow(t *testing.T) {
	v := mustDecode(t, "grid: [[1, 2], [3, 4]]")
	grid := v.(map[string]any)["grid"].([]any)
	if !reflect.DeepEqual(grid[0], []any{int64(1), int64(2)}) {
		t.Errorf("grid = %#v", grid)
	}
}

func TestDecodeComments(t *testing.T) {
	src := "# leading comment\na: 1 # trailing\nb: \"# not a comment\"\n"
	v := mustDecode(t, src).(map[string]any)
	if v["a"] != int64(1) || v["b"] != "# not a comment" {
		t.Fatalf("got %#v", v)
	}
}

func TestDecodeEmpty(t *testing.T) {
	if v := mustDecode(t, ""); v != nil {
		t.Errorf("empty stream = %#v", v)
	}
	if v := mustDecode(t, "\n# only a comment\n"); v != nil {
		t.Errorf("comment-only stream = %#v", v)
	}
}

func TestDecodeNullValue(t *testing.T) {
	v := mustDecode(t, "a:\nb: 2").(map[string]any)
	if v["a"] != nil || v["b"] != int64(2) {
		t.Fatalf("got %#v", v)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"a: 1\na: 2",          // duplicate key
		"a: \"unterminated",   // bad string
		"a: [1, 2",            // unbalanced flow
		"a: 1\n   b: 2\nc: 3", // stray indent under scalar value
		"key: {a 1}",          // invalid flow map entry
		"- 1\n    - too deep", // bad sequence indent
	}
	for _, src := range bad {
		if _, err := Decode([]byte(src)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorLineNumbers(t *testing.T) {
	_, err := Decode([]byte("ok: 1\nbad: \"x\nok2: 2"))
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T (%v)", err, err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Errorf("message %q should mention line", se.Error())
	}
}

func TestEncodeDeterministic(t *testing.T) {
	v := map[string]any{"b": int64(2), "a": int64(1), "c": []any{"x", "y"}}
	out1, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := Encode(v)
	if string(out1) != string(out2) {
		t.Errorf("non-deterministic encoding:\n%s\nvs\n%s", out1, out2)
	}
	if !strings.HasPrefix(string(out1), "a: 1\n") {
		t.Errorf("keys not sorted:\n%s", out1)
	}
}

func TestEncodeQuotesAmbiguousStrings(t *testing.T) {
	// "on"/"off" must survive; YAML 1.1 booleans are not re-typed but
	// strings that look like ints/floats/bools must be quoted.
	for _, s := range []string{"true", "42", "3.14", "null", "a: b", "- dash", "", " pad "} {
		enc, err := Encode(map[string]any{"k": s})
		if err != nil {
			t.Fatal(err)
		}
		back := mustDecode(t, string(enc)).(map[string]any)
		if back["k"] != s {
			t.Errorf("string %q round-tripped to %#v (encoded %q)", s, back["k"], enc)
		}
	}
}

func TestRoundTripDocuments(t *testing.T) {
	docs := []any{
		map[string]any{
			"meta":      map[string]any{"type": "Lamp", "name": "L1", "version": "v1", "managed": true},
			"power":     map[string]any{"intent": "on", "status": "off"},
			"intensity": map[string]any{"intent": 0.2, "status": 0.4},
		},
		map[string]any{
			"attach": []any{"L1", "O1"},
			"rooms": []any{
				map[string]any{"name": "MeetingRoom", "humans": int64(2)},
				map[string]any{"name": "Kitchen", "humans": int64(0)},
			},
		},
		[]any{int64(1), "two", 3.5, true, nil},
		"bare scalar",
		int64(7),
	}
	for _, d := range docs {
		enc, err := Encode(d)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", d, err)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of encoded %#v: %v\n%s", d, err, enc)
		}
		if !reflect.DeepEqual(back, d) {
			t.Errorf("round-trip mismatch:\n in: %#v\nout: %#v\nenc:\n%s", d, back, enc)
		}
	}
}

func TestEncodeAllRoundTrip(t *testing.T) {
	docs := []any{
		map[string]any{"a": int64(1)},
		map[string]any{"b": []any{"x"}},
	}
	enc, err := EncodeAll(docs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAll(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, docs) {
		t.Errorf("EncodeAll round trip: %#v -> %#v", docs, back)
	}
}

// genValue builds a random value of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) any {
	if depth <= 0 {
		return genScalar(r)
	}
	switch r.Intn(4) {
	case 0:
		n := r.Intn(4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[genKey(r)] = genValue(r, depth-1)
		}
		return m
	case 1:
		n := r.Intn(4)
		s := make([]any, n)
		for i := range s {
			s[i] = genValue(r, depth-1)
		}
		return s
	default:
		return genScalar(r)
	}
}

func genKey(r *rand.Rand) string {
	const letters = "abcdefgh_"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func genScalar(r *rand.Rand) any {
	switch r.Intn(6) {
	case 0:
		return int64(r.Intn(2000) - 1000)
	case 1:
		return float64(r.Intn(100)) + 0.25
	case 2:
		return r.Intn(2) == 0
	case 3:
		return nil
	case 4:
		words := []string{"on", "off", "lamp", "room", "x y", "v1", "true-ish", "00:03", "a#b", "", "  spaced"}
		return words[r.Intn(len(words))]
	default:
		return genKey(r)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Property: Decode(Encode(v)) == v for any value in the dynamic
	// domain. Uses testing/quick's iteration driver with our own
	// generator for better shrinkage of the value space.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := genValue(r, 3)
		enc, err := Encode(v)
		if err != nil {
			t.Logf("encode error for %#v: %v", v, err)
			return false
		}
		back, err := Decode(enc)
		if err != nil {
			t.Logf("decode error for %#v: %v\n%s", v, err, enc)
			return false
		}
		if !equalValue(back, v) {
			t.Logf("mismatch:\n in: %#v\nout: %#v\nenc:\n%s", v, back, enc)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// equalValue compares with nil-slice/nil-map tolerance: an empty map
// and sequence re-decode as empty (not nil) collections.
func equalValue(a, b any) bool {
	am, aok := a.(map[string]any)
	bm, bok := b.(map[string]any)
	if aok && bok {
		if len(am) != len(bm) {
			return false
		}
		for k, av := range am {
			bv, ok := bm[k]
			if !ok || !equalValue(av, bv) {
				return false
			}
		}
		return true
	}
	as, aok := a.([]any)
	bs, bok := b.([]any)
	if aok && bok {
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !equalValue(as[i], bs[i]) {
				return false
			}
		}
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestDecodeAllSeparators(t *testing.T) {
	docs, err := DecodeAll([]byte("---\na: 1\n---\n---\nb: 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs: %#v", len(docs), docs)
	}
}

func TestDecodeRejectsMultiDoc(t *testing.T) {
	if _, err := Decode([]byte("a: 1\n---\nb: 2\n")); err == nil {
		t.Fatal("Decode should reject multi-document streams")
	}
}

func TestTabsNormalised(t *testing.T) {
	v := mustDecode(t, "a:\n\tb: 1\n").(map[string]any)
	inner, ok := v["a"].(map[string]any)
	if !ok || inner["b"] != int64(1) {
		t.Fatalf("got %#v", v)
	}
}
