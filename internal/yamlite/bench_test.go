package yamlite

import "testing"

var benchSrc = []byte(`meta:
  type: Room
  version: v2
  name: MeetingRoom
  managed: true
  attach: [L1, O1, D1, D2]
  interval_ms: 500
human_presence: true
occupancy:
  ceiling: 1
  desks: [0, 1, 0]
notes: "scene for the smart building walkthrough"
`)

func BenchmarkDecodeModelDoc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeModelDoc(b *testing.B) {
	v, err := Decode(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}
