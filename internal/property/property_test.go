package property

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

type mapState map[string]model.Doc

func (m mapState) GetModel(name string) (model.Doc, bool) {
	d, ok := m[name]
	return d, ok
}

func lampState(power string, triggered bool) mapState {
	lamp := model.Doc{}
	lamp.Set("power.status", power)
	occ := model.Doc{}
	occ.Set("triggered", triggered)
	return mapState{"L1": lamp, "O1": occ}
}

func TestTermEval(t *testing.T) {
	st := mapState{"M": model.Doc{"n": int64(5), "s": "on", "b": true, "f": 2.5}}
	cases := []struct {
		term Term
		want bool
	}{
		{Term{"M", "s", Eq, "on"}, true},
		{Term{"M", "s", Ne, "off"}, true},
		{Term{"M", "n", Eq, 5}, true}, // int/int64 tolerance
		{Term{"M", "n", Lt, 6}, true},
		{Term{"M", "n", Le, 5}, true},
		{Term{"M", "n", Gt, 5}, false},
		{Term{"M", "n", Ge, 5}, true},
		{Term{"M", "f", Lt, 3}, true},
		{Term{"M", "b", Eq, true}, true},
		{Term{"M", "missing", Exists, nil}, false},
		{Term{"M", "n", Exists, nil}, true},
		{Term{"M", "missing", Absent, nil}, true},
		{Term{"Ghost", "x", Absent, nil}, true},
		{Term{"Ghost", "x", Eq, 1}, false},
		{Term{"M", "s", Lt, 5}, false}, // non-numeric comparison
		{Term{"M", "missing", Eq, 1}, false},
	}
	for _, c := range cases {
		if got := c.term.eval(st); got != c.want {
			t.Errorf("%v = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestConditionConjunction(t *testing.T) {
	st := lampState("on", true)
	cond := Condition{
		{Model: "L1", Path: "power.status", Op: Eq, Value: "on"},
		{Model: "O1", Path: "triggered", Op: Eq, Value: true},
	}
	if !cond.Eval(st) {
		t.Error("conjunction should hold")
	}
	cond[1].Value = false
	if cond.Eval(st) {
		t.Error("conjunction should fail")
	}
	if !(Condition{}).Eval(st) {
		t.Error("empty condition is true")
	}
	if s := cond.String(); !strings.Contains(s, "&&") {
		t.Errorf("String = %q", s)
	}
}

func TestPropertyValidate(t *testing.T) {
	good := []*Property{
		{Name: "p1", Kind: Never, Cond: Condition{{Model: "M", Path: "x", Op: Eq, Value: 1}}},
		{Name: "p2", Kind: Always, Cond: Condition{{Model: "M", Path: "x", Op: Exists}}},
		{Name: "p3", Kind: LeadsTo, Within: time.Second,
			Trigger:  Condition{{Model: "M", Path: "x", Op: Eq, Value: 1}},
			Response: Condition{{Model: "M", Path: "y", Op: Eq, Value: 1}}},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := []*Property{
		{Name: "", Kind: Never, Cond: Condition{{Model: "M", Path: "x", Op: Eq}}},
		{Name: "x", Kind: Never},
		{Name: "x", Kind: LeadsTo, Within: time.Second},
		{Name: "x", Kind: LeadsTo,
			Trigger:  Condition{{Model: "M", Path: "x", Op: Eq}},
			Response: Condition{{Model: "M", Path: "y", Op: Eq}}},
		{Name: "x", Kind: "bogus"},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d] validated", i)
		}
	}
}

// The paper's example: "the lamp should always be turned off when the
// occupancy sensor is not triggered", as a disallowed state.
func paperProperty() *Property {
	return &Property{
		Name: "lamp-off-when-unoccupied",
		Kind: Never,
		Cond: Condition{
			{Model: "O1", Path: "triggered", Op: Eq, Value: false},
			{Model: "L1", Path: "power.status", Op: Eq, Value: "on"},
		},
	}
}

func newCheckedStore(t *testing.T) (*model.Store, *trace.Log, *Checker) {
	t.Helper()
	store := model.NewStore()
	lamp := model.Doc{}
	lamp.SetMeta(model.Meta{Type: "Lamp", Name: "L1"})
	lamp.Set("power.status", "off")
	occ := model.Doc{}
	occ.SetMeta(model.Meta{Type: "Occupancy", Name: "O1"})
	occ.Set("triggered", false)
	if err := store.Create(lamp); err != nil {
		t.Fatal(err)
	}
	if err := store.Create(occ); err != nil {
		t.Fatal(err)
	}
	log := trace.NewLog()
	ch := NewChecker(store, log)
	return store, log, ch
}

func waitViolations(t *testing.T, c *Checker, n int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Violations()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s (have %d violations)", what, len(c.Violations()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// holds asserts cond stays true for the whole window, failing at the
// first observed violation instead of sleeping blind and sampling once.
func holds(t *testing.T, window time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		if !cond() {
			t.Fatalf("%s violated", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCheckerNeverViolation(t *testing.T) {
	store, log, ch := newCheckedStore(t)
	if err := ch.Add(paperProperty()); err != nil {
		t.Fatal(err)
	}
	ch.Start()
	defer ch.Stop()

	// Legal transition: occupied then lamp on.
	store.Patch("O1", map[string]any{"triggered": true})
	store.Patch("L1", map[string]any{"power": map[string]any{"status": "on"}})
	holds(t, 80*time.Millisecond, func() bool {
		return len(ch.Violations()) == 0
	}, "no violation on legal state")

	// Sensor clears while lamp stays on: disallowed state.
	store.Patch("O1", map[string]any{"triggered": false})
	waitViolations(t, ch, 1, "disallowed state")
	v := ch.Violations()[0]
	if v.Property != "lamp-off-when-unoccupied" {
		t.Errorf("violation = %+v", v)
	}
	if len(log.Violations()) != 1 {
		t.Errorf("trace log has %d violations", len(log.Violations()))
	}
}

func TestCheckerEdgeTriggeredReporting(t *testing.T) {
	store, _, ch := newCheckedStore(t)
	ch.Add(paperProperty())
	ch.Start()
	defer ch.Stop()

	store.Patch("L1", map[string]any{"power": map[string]any{"status": "on"}})
	waitViolations(t, ch, 1, "first violation")
	// More commits while still in the bad state must not re-report.
	store.Patch("L1", map[string]any{"note": "still bad"})
	store.Patch("L1", map[string]any{"note2": "still bad"})
	holds(t, 100*time.Millisecond, func() bool {
		return len(ch.Violations()) == 1
	}, "no re-report while the bad state persists")
	// Leaving and re-entering the bad state reports again. The checker
	// samples current store state on wake-up, so it must get a chance to
	// observe the off state before we flip back — this sleep creates the
	// intermediate state, it is not a synchronization wait.
	store.Patch("L1", map[string]any{"power": map[string]any{"status": "off"}})
	//dbox:allow sleepytest -- creates the intermediate off state; the checker exposes nothing to poll for having sampled it
	time.Sleep(50 * time.Millisecond)
	store.Patch("L1", map[string]any{"power": map[string]any{"status": "on"}})
	waitViolations(t, ch, 2, "re-entry violation")
}

func TestCheckerAlways(t *testing.T) {
	store, _, ch := newCheckedStore(t)
	ch.Add(&Property{
		Name: "sensor-must-exist",
		Kind: Always,
		Cond: Condition{{Model: "O1", Path: "triggered", Op: Exists}},
	})
	ch.Start()
	defer ch.Stop()
	store.Apply("O1", func(d model.Doc) error {
		d.Delete("triggered")
		return nil
	})
	waitViolations(t, ch, 1, "always violation")
}

func TestCheckerLeadsToSatisfied(t *testing.T) {
	store, _, ch := newCheckedStore(t)
	ch.Add(&Property{
		Name:     "lamp-follows-occupancy",
		Kind:     LeadsTo,
		Within:   200 * time.Millisecond,
		Trigger:  Condition{{Model: "O1", Path: "triggered", Op: Eq, Value: true}},
		Response: Condition{{Model: "L1", Path: "power.status", Op: Eq, Value: "on"}},
	})
	ch.Start()
	defer ch.Stop()
	store.Patch("O1", map[string]any{"triggered": true})
	//dbox:allow sleepytest -- simulates response latency inside the Within window; there is no condition to poll
	time.Sleep(30 * time.Millisecond)
	store.Patch("L1", map[string]any{"power": map[string]any{"status": "on"}})
	// Hold past the Within deadline: a checker that missed the response
	// would report exactly when the obligation expires.
	holds(t, 300*time.Millisecond, func() bool {
		return len(ch.Violations()) == 0
	}, "satisfied leads-to stays violation-free")
}

func TestCheckerLeadsToExpires(t *testing.T) {
	store, _, ch := newCheckedStore(t)
	ch.Add(&Property{
		Name:     "lamp-follows-occupancy",
		Kind:     LeadsTo,
		Within:   60 * time.Millisecond,
		Trigger:  Condition{{Model: "O1", Path: "triggered", Op: Eq, Value: true}},
		Response: Condition{{Model: "L1", Path: "power.status", Op: Eq, Value: "on"}},
	})
	ch.Start()
	defer ch.Stop()
	store.Patch("O1", map[string]any{"triggered": true})
	waitViolations(t, ch, 1, "expired response window")
}

func TestCheckerAddValidation(t *testing.T) {
	_, _, ch := newCheckedStore(t)
	if err := ch.Add(&Property{Name: "x", Kind: Never}); err == nil {
		t.Error("invalid property accepted")
	}
	p := paperProperty()
	if err := ch.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := ch.Add(paperProperty()); err == nil {
		t.Error("duplicate property accepted")
	}
	if got := ch.Properties(); len(got) != 1 || got[0] != p.Name {
		t.Errorf("Properties = %v", got)
	}
}

// buildTrace assembles action records with explicit timestamps.
func buildTrace(steps []struct {
	ts   time.Duration
	name string
	sets map[string]any
}) []trace.Record {
	recs := make([]trace.Record, 0, len(steps))
	for i, s := range steps {
		recs = append(recs, trace.Record{
			Seq: uint64(i + 1), TS: s.ts, Kind: trace.KindAction,
			Name: s.name, Sets: s.sets,
		})
	}
	return recs
}

func TestCheckTraceNever(t *testing.T) {
	recs := buildTrace([]struct {
		ts   time.Duration
		name string
		sets map[string]any
	}{
		{0, "O1", map[string]any{"triggered": true}},
		{time.Second, "L1", map[string]any{"power.status": "on"}},
		{2 * time.Second, "O1", map[string]any{"triggered": false}}, // bad
		{3 * time.Second, "L1", map[string]any{"power.status": "off"}},
	})
	vs, err := CheckTrace(recs, []*Property{paperProperty()})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].At.Sub(time.Unix(0, 0)) != 2*time.Second {
		t.Errorf("violation at %v", vs[0].At)
	}
}

func TestCheckTraceLeadsTo(t *testing.T) {
	prop := &Property{
		Name:     "resp",
		Kind:     LeadsTo,
		Within:   time.Second,
		Trigger:  Condition{{Model: "O1", Path: "triggered", Op: Eq, Value: true}},
		Response: Condition{{Model: "L1", Path: "power.status", Op: Eq, Value: "on"}},
	}
	// Response arrives in 500ms: no violation.
	ok := buildTrace([]struct {
		ts   time.Duration
		name string
		sets map[string]any
	}{
		{0, "O1", map[string]any{"triggered": true}},
		{500 * time.Millisecond, "L1", map[string]any{"power.status": "on"}},
	})
	vs, err := CheckTrace(ok, []*Property{prop})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations = %+v", vs)
	}
	// Response arrives after 2s: violation.
	late := buildTrace([]struct {
		ts   time.Duration
		name string
		sets map[string]any
	}{
		{0, "O1", map[string]any{"triggered": true}},
		{2 * time.Second, "L1", map[string]any{"power.status": "on"}},
	})
	vs, err = CheckTrace(late, []*Property{prop})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestCheckTraceLeadsToPendingAtEnd(t *testing.T) {
	prop := &Property{
		Name:     "resp",
		Kind:     LeadsTo,
		Within:   time.Second,
		Trigger:  Condition{{Model: "O1", Path: "triggered", Op: Eq, Value: true}},
		Response: Condition{{Model: "L1", Path: "power.status", Op: Eq, Value: "on"}},
	}
	recs := buildTrace([]struct {
		ts   time.Duration
		name string
		sets map[string]any
	}{
		{0, "O1", map[string]any{"triggered": true}},
		{5 * time.Second, "O1", map[string]any{"noise": 1}},
	})
	vs, err := CheckTrace(recs, []*Property{prop})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestCheckTraceValidates(t *testing.T) {
	if _, err := CheckTrace(nil, []*Property{{Name: "bad", Kind: Never}}); err == nil {
		t.Error("invalid property accepted")
	}
}
