package property

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// CheckTrace evaluates properties offline against a recorded trace
// (§3.5): model states are reconstructed by replaying the trace's
// action records, and each property is checked after every state
// change using the recorded timestamps. This lets a developer validate
// a shared experiment without re-running the scene.
func CheckTrace(recs []trace.Record, props []*Property) ([]Violation, error) {
	for _, p := range props {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	state := traceState{docs: map[string]model.Doc{}}
	var out []Violation
	active := map[string]bool{}
	pending := map[string]time.Duration{} // property -> deadline (trace time)
	base := time.Unix(0, 0)

	check := func(ts time.Duration) {
		now := base.Add(ts)
		for _, p := range props {
			switch p.Kind {
			case Never, Always:
				bad := p.Cond.Eval(state)
				if p.Kind == Always {
					bad = !bad
				}
				if bad && !active[p.Name] {
					detail := "disallowed state reached: " + p.Cond.String()
					if p.Kind == Always {
						detail = "required state violated: " + p.Cond.String()
					}
					out = append(out, Violation{Property: p.Name, At: now, Detail: detail})
				}
				active[p.Name] = bad
			case LeadsTo:
				triggered := p.Trigger.Eval(state)
				responded := p.Response.Eval(state)
				deadline, armed := pending[p.Name]
				switch {
				case armed && responded && ts <= deadline:
					delete(pending, p.Name)
				case armed && ts > deadline:
					delete(pending, p.Name)
					out = append(out, Violation{
						Property: p.Name,
						At:       now,
						Detail: fmt.Sprintf("response %q not reached within %v of trigger %q",
							p.Response.String(), p.Within, p.Trigger.String()),
					})
				case !armed && triggered && !responded:
					pending[p.Name] = ts + p.Within
				}
			}
		}
	}

	var lastTS time.Duration
	for _, r := range recs {
		lastTS = r.TS
		if r.Kind != trace.KindAction {
			continue
		}
		state.apply(r)
		check(r.TS)
	}
	// Expire leads-to windows still pending at trace end.
	for name, deadline := range pending {
		if lastTS > deadline {
			for _, p := range props {
				if p.Name == name {
					out = append(out, Violation{
						Property: name,
						At:       base.Add(deadline),
						Detail:   "response window expired at end of trace",
					})
				}
			}
		}
	}
	return out, nil
}

// traceState reconstructs model documents from action records.
type traceState struct {
	docs map[string]model.Doc
}

func (ts traceState) GetModel(name string) (model.Doc, bool) {
	d, ok := ts.docs[name]
	return d, ok
}

func (ts traceState) apply(r trace.Record) {
	d, ok := ts.docs[r.Name]
	if !ok {
		d = model.Doc{}
		ts.docs[r.Name] = d
	}
	for path, v := range r.Sets {
		d.Set(path, v)
	}
	for _, path := range r.Deletes {
		d.Delete(path)
	}
}
