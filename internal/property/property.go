// Package property implements Digibox's scene-property checking
// (§3.3): developers declare conditions over model states — e.g. "the
// lamp must be off whenever the occupancy sensor is not triggered" —
// and Digibox evaluates them at run time, reporting violations to the
// trace log.
//
// The paper's shipped mechanism is disallowed model states expressed
// as k-v pairs; it names temporal-logic support (as in AutoTap [53])
// as in-progress work. This package implements both: state properties
// (Never/Always over a conjunction of terms) and a bounded "leads-to"
// temporal operator (trigger ⇒ response within d), which is the
// fragment of LTL bounded-response that run-time monitoring can check
// without lookahead.
package property

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// Op is a term comparison operator.
type Op string

const (
	Eq     Op = "=="
	Ne     Op = "!="
	Lt     Op = "<"
	Le     Op = "<="
	Gt     Op = ">"
	Ge     Op = ">="
	Exists Op = "exists"
	Absent Op = "absent"
)

// Term is one comparison over a model path: "<model>.<path> <op> <value>".
type Term struct {
	Model string // model instance name, e.g. "L1"
	Path  string // dotted path within the model, e.g. "power.status"
	Op    Op
	Value any // comparison operand (ignored for Exists/Absent)
}

func (t Term) String() string {
	switch t.Op {
	case Exists, Absent:
		return fmt.Sprintf("%s.%s %s", t.Model, t.Path, t.Op)
	default:
		return fmt.Sprintf("%s.%s %s %v", t.Model, t.Path, t.Op, t.Value)
	}
}

// Condition is a conjunction of terms. An empty condition is true.
type Condition []Term

func (c Condition) String() string {
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = t.String()
	}
	return strings.Join(parts, " && ")
}

// State resolves model snapshots during evaluation.
type State interface {
	GetModel(name string) (model.Doc, bool)
}

// Eval reports whether the condition holds in the given state.
func (c Condition) Eval(s State) bool {
	for _, t := range c {
		if !t.eval(s) {
			return false
		}
	}
	return true
}

func (t Term) eval(s State) bool {
	doc, ok := s.GetModel(t.Model)
	if !ok {
		return t.Op == Absent
	}
	v, has := doc.Get(t.Path)
	switch t.Op {
	case Exists:
		return has
	case Absent:
		return !has
	}
	if !has {
		return false
	}
	switch t.Op {
	case Eq:
		return looseEqual(v, t.Value)
	case Ne:
		return !looseEqual(v, t.Value)
	case Lt, Le, Gt, Ge:
		a, aok := toFloat(v)
		b, bok := toFloat(t.Value)
		if !aok || !bok {
			return false
		}
		switch t.Op {
		case Lt:
			return a < b
		case Le:
			return a <= b
		case Gt:
			return a > b
		default:
			return a >= b
		}
	}
	return false
}

func looseEqual(a, b any) bool {
	if a == b {
		return true
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	return aok && bok && af == bf
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	case float64:
		return t, true
	}
	return 0, false
}

// Kind selects the property semantics.
type Kind string

const (
	// Never: the condition is a disallowed state; holding is a
	// violation. This is the paper's shipped k-v mechanism.
	Never Kind = "never"
	// Always: the negation of the condition is disallowed.
	Always Kind = "always"
	// LeadsTo: whenever Trigger holds, Response must hold within
	// Within (bounded response, the temporal-logic extension).
	LeadsTo Kind = "leads-to"
)

// Property is one declared scene property.
type Property struct {
	Name string
	Kind Kind
	// Cond is used by Never and Always.
	Cond Condition
	// Trigger/Response/Within are used by LeadsTo.
	Trigger  Condition
	Response Condition
	Within   time.Duration
}

// Validate checks structural sanity.
func (p *Property) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("property: name required")
	}
	switch p.Kind {
	case Never, Always:
		if len(p.Cond) == 0 {
			return fmt.Errorf("property %s: condition required", p.Name)
		}
	case LeadsTo:
		if len(p.Trigger) == 0 || len(p.Response) == 0 {
			return fmt.Errorf("property %s: trigger and response required", p.Name)
		}
		if p.Within <= 0 {
			return fmt.Errorf("property %s: positive Within required", p.Name)
		}
	default:
		return fmt.Errorf("property %s: unknown kind %q", p.Name, p.Kind)
	}
	return nil
}

// Violation is one reported property failure.
type Violation struct {
	Property string
	At       time.Time
	Detail   string
}

// Checker evaluates properties against a live model store, reporting
// violations to the trace log and keeping its own list. Create with
// NewChecker, then Start/Stop.
type Checker struct {
	store *model.Store
	log   *trace.Log

	mu         sync.Mutex
	props      []*Property
	pending    map[string]time.Time // armed leads-to deadlines by property name
	violations []Violation
	// edge state for Never/Always so a persistent bad state is
	// reported once per entry, not once per model commit.
	active map[string]bool

	watcher *model.Watcher
	done    chan struct{}
	wg      sync.WaitGroup
	now     func() time.Time
}

// NewChecker builds a checker over a store; log may be nil.
func NewChecker(store *model.Store, log *trace.Log) *Checker {
	return &Checker{
		store:   store,
		log:     log,
		pending: map[string]time.Time{},
		active:  map[string]bool{},
		now:     time.Now,
	}
}

// Add registers a property (before or after Start).
func (c *Checker) Add(p *Property) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, existing := range c.props {
		if existing.Name == p.Name {
			return fmt.Errorf("property %q already registered", p.Name)
		}
	}
	c.props = append(c.props, p)
	return nil
}

// storeState adapts the model store to State.
type storeState struct{ s *model.Store }

func (ss storeState) GetModel(name string) (model.Doc, bool) {
	d, _, ok := ss.s.Get(name)
	return d, ok
}

// StoreState adapts a live model store to the State interface so
// callers outside this package (e.g. testbed test cases) can evaluate
// conditions against current models.
func StoreState(s *model.Store) State { return storeState{s} }

// Start begins watching the store. Idempotent Stop via Stop.
func (c *Checker) Start() {
	c.watcher = c.store.Watch(nil)
	c.done = make(chan struct{})
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case _, ok := <-c.watcher.C:
				if !ok {
					return
				}
				c.evaluate()
			case <-ticker.C:
				// Deadline expiry for leads-to must fire even when the
				// store goes quiet.
				c.checkDeadlines()
			case <-c.done:
				return
			}
		}
	}()
}

// Stop terminates the watch loop.
func (c *Checker) Stop() {
	if c.done == nil {
		return
	}
	close(c.done)
	c.watcher.Close()
	c.wg.Wait()
	c.done = nil
}

// evaluate runs all properties against the current store state.
func (c *Checker) evaluate() {
	st := storeState{c.store}
	now := c.now()
	c.mu.Lock()
	props := append([]*Property(nil), c.props...)
	c.mu.Unlock()
	for _, p := range props {
		switch p.Kind {
		case Never:
			c.edgeReport(p, p.Cond.Eval(st), now, "disallowed state reached: "+p.Cond.String())
		case Always:
			c.edgeReport(p, !p.Cond.Eval(st), now, "required state violated: "+p.Cond.String())
		case LeadsTo:
			c.evalLeadsTo(p, st, now)
		}
	}
	c.checkDeadlines()
}

// edgeReport reports a state property on its rising edge only.
func (c *Checker) edgeReport(p *Property, bad bool, now time.Time, detail string) {
	c.mu.Lock()
	wasBad := c.active[p.Name]
	c.active[p.Name] = bad
	c.mu.Unlock()
	if bad && !wasBad {
		c.report(p.Name, now, detail)
	}
}

func (c *Checker) evalLeadsTo(p *Property, st State, now time.Time) {
	triggered := p.Trigger.Eval(st)
	responded := p.Response.Eval(st)
	c.mu.Lock()
	deadline, armed := c.pending[p.Name]
	switch {
	case armed && responded && !now.After(deadline):
		delete(c.pending, p.Name)
	case armed && now.After(deadline):
		delete(c.pending, p.Name)
		c.mu.Unlock()
		c.report(p.Name, now, fmt.Sprintf("response %q not reached within %v of trigger %q",
			p.Response.String(), p.Within, p.Trigger.String()))
		return
	case !armed && triggered && !responded:
		c.pending[p.Name] = now.Add(p.Within)
	}
	c.mu.Unlock()
}

// checkDeadlines expires armed leads-to windows.
func (c *Checker) checkDeadlines() {
	st := storeState{c.store}
	now := c.now()
	c.mu.Lock()
	props := append([]*Property(nil), c.props...)
	c.mu.Unlock()
	for _, p := range props {
		if p.Kind == LeadsTo {
			c.evalLeadsTo(p, st, now)
		}
	}
}

func (c *Checker) report(name string, at time.Time, detail string) {
	c.mu.Lock()
	c.violations = append(c.violations, Violation{Property: name, At: at, Detail: detail})
	c.mu.Unlock()
	if c.log != nil {
		c.log.Violation("checker", name, detail)
	}
}

// Violations returns a copy of all reported violations.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Properties returns the registered property names, in order.
func (c *Checker) Properties() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.props))
	for i, p := range c.props {
		out[i] = p.Name
	}
	return out
}

// PropertyList returns the registered properties themselves, enabling
// offline re-checking of the same properties against a trace.
func (c *Checker) PropertyList() []*Property {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Property(nil), c.props...)
}
