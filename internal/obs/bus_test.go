package obs

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func TestBusFanOutAndOrder(t *testing.T) {
	r := NewRegistry()
	b := NewBus(r, nil)
	defer b.Close()
	a := b.Subscribe(16)
	c := b.Subscribe(16)
	for i := 0; i < 5; i++ {
		b.Publish("fault", map[string]any{"i": i})
	}
	for _, s := range []*Sub{a, c} {
		for i := 0; i < 5; i++ {
			ev := <-s.C()
			if ev.Kind != "fault" || ev.Data["i"] != i {
				t.Fatalf("got %+v, want fault i=%d", ev, i)
			}
			if ev.Seq != uint64(i+1) {
				t.Fatalf("seq %d, want %d", ev.Seq, i+1)
			}
		}
	}
	if got := r.Value("digibox_events_published_total"); got != 5 {
		t.Fatalf("published counter = %v, want 5", got)
	}
}

func TestBusShedsSlowSubscriberWithoutBlocking(t *testing.T) {
	r := NewRegistry()
	b := NewBus(r, nil)
	defer b.Close()
	slow := b.Subscribe(2) // never drained
	live := b.Subscribe(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			b.Publish("tick", map[string]any{"i": i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a full subscriber")
	}
	for i := 0; i < 50; i++ {
		ev := <-live.C()
		if ev.Data["i"] != i {
			t.Fatalf("live consumer saw %+v at position %d", ev, i)
		}
	}
	if got := slow.Dropped(); got != 48 {
		t.Fatalf("slow.Dropped() = %d, want 48", got)
	}
	if live.Dropped() != 0 {
		t.Fatalf("live consumer dropped %d events", live.Dropped())
	}
	if got := r.Value("digibox_events_dropped_total"); got != 48 {
		t.Fatalf("dropped counter = %v, want 48", got)
	}
}

func TestBusSubClose(t *testing.T) {
	b := NewBus(nil, nil)
	defer b.Close()
	s := b.Subscribe(4)
	s.Close()
	s.Close()           // idempotent
	b.Publish("x", nil) // must not panic on the closed sub
	if _, ok := <-s.C(); ok {
		t.Fatal("closed sub's channel still delivers")
	}
	if b.Subscribers() != 0 {
		t.Fatalf("subscribers = %d, want 0", b.Subscribers())
	}
}

func TestBusCloseClosesSubscribers(t *testing.T) {
	b := NewBus(nil, nil)
	s := b.Subscribe(4)
	b.Close()
	b.Close() // idempotent
	if _, ok := <-s.C(); ok {
		t.Fatal("channel open after bus close")
	}
	if late := b.Subscribe(4); late != nil {
		if _, ok := <-late.C(); ok {
			t.Fatal("subscribe after close returned a live channel")
		}
	}
	b.Publish("x", nil) // no-op, must not panic
}

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	b.Publish("x", nil)
	b.Close()
	if b.Subscribers() != 0 {
		t.Fatal("nil bus has subscribers")
	}
	s := b.Subscribe(4)
	if _, ok := <-s.C(); ok {
		t.Fatal("nil bus subscription delivered")
	}
	s.Close()
}

func TestBusSampleMetricsDeltasAndLatency(t *testing.T) {
	r := NewRegistry()
	b := NewBus(r, clock.System)
	sub := b.Subscribe(256)
	ctr := r.Counter("digibox_sample_probe_total", "test")
	b.SampleMetrics(r, 2*time.Millisecond)

	ctr.Inc()
	ev := recvKind(t, sub, "metrics")
	vals := ev.Data["values"].(map[string]any)
	if vals["digibox_sample_probe_total"] != 1.0 {
		t.Fatalf("metrics delta = %v", vals)
	}

	// Span observations surface as a per-class latency event.
	r.HistogramVec(E2ETopicLatencyName, "test", nil, "class").
		With("digibox/+/status").Observe(0.002)
	lat := recvKind(t, sub, "latency")
	classes := lat.Data["classes"].([]LatencyClass)
	if len(classes) != 1 || classes[0].Class != "digibox/+/status" || classes[0].Count != 1 {
		t.Fatalf("latency classes = %+v", classes)
	}
	if classes[0].P99Ms <= 0 {
		t.Fatalf("p99 = %v, want > 0", classes[0].P99Ms)
	}
	b.Close()
}

// recvKind drains sub until an event of the wanted kind arrives.
func recvKind(t *testing.T, sub *Sub, kind string) Event {
	t.Helper()
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatalf("bus closed before a %q event", kind)
			}
			if ev.Kind == kind {
				return ev
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no %q event", kind)
		}
	}
}

func TestLatencyClassesEmptyRegistry(t *testing.T) {
	r := NewRegistry()
	if classes, total := r.LatencyClasses(); classes != nil || total != 0 {
		t.Fatalf("got %v/%d from empty registry", classes, total)
	}
	var nilr *Registry
	if classes, total := nilr.LatencyClasses(); classes != nil || total != 0 {
		t.Fatalf("got %v/%d from nil registry", classes, total)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	if got := RegisterBuildInfo(r); got != Version {
		t.Fatalf("RegisterBuildInfo = %q, want %q", got, Version)
	}
	if v := r.Value("digibox_build_info"); v != 1 {
		t.Fatalf("digibox_build_info = %v, want 1", v)
	}
}
