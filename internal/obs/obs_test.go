package obs

import (
	"encoding/json"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("digibox_test_total", "a counter")
	c.Inc()
	c.Add(2)
	c.Add(-5) // negative adds ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Idempotent re-registration returns the same series.
	if got := r.Counter("digibox_test_total", "a counter").Value(); got != 3 {
		t.Fatalf("re-registered counter = %v, want 3", got)
	}

	g := r.Gauge("digibox_test_gauge", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(3)
	r.Histogram("x", "", nil).Observe(1)
	r.CounterVec("x", "", "l").With("v").Inc()
	r.GaugeVec("x", "", "l").With("v").Add(1)
	r.HistogramVec("x", "", nil, "l").With("v").Observe(1)
	r.CounterFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
	if v := r.Value("x"); v != 0 {
		t.Fatalf("nil registry Value = %v", v)
	}
	if s := r.Snapshot(); len(s.Families) != 0 {
		t.Fatalf("nil registry snapshot has %d families", len(s.Families))
	}
	var tr *Tracer
	tr.SetSampleInterval(1)
	if id := tr.Start("a", "b"); id != 0 {
		t.Fatalf("nil tracer Start = %d", id)
	}
	tr.End(1)
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) should be nil")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("digibox_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("digibox_conflict", "")
}

// TestHistogramBucketBoundaries pins the le-inclusive convention: an
// observation exactly at a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("digibox_test_seconds", "bounds", []float64{0.1, 0.5, 1})
	h.Observe(0.1)  // == first bound -> bucket le=0.1
	h.Observe(0.11) // just above -> bucket le=0.5
	h.Observe(0.5)  // == second bound -> bucket le=0.5
	h.Observe(1.0)  // == last bound -> bucket le=1
	h.Observe(2.0)  // beyond -> +Inf
	h.Observe(0)    // below all -> first bucket

	fs := r.Snapshot().Family("digibox_test_seconds")
	if fs == nil {
		t.Fatal("family missing from snapshot")
	}
	got := fs.Metrics[0].Buckets
	want := []uint64{2, 2, 1, 1} // le=0.1, le=0.5, le=1, +Inf
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if fs.Metrics[0].Sum != 0.1+0.11+0.5+1+2 {
		t.Fatalf("sum = %v", fs.Metrics[0].Sum)
	}
}

func TestDefBucketsStrictlyIncreasing(t *testing.T) {
	for i := 1; i < len(DefBuckets); i++ {
		if DefBuckets[i] <= DefBuckets[i-1] {
			t.Fatalf("DefBuckets[%d]=%v <= DefBuckets[%d]=%v",
				i, DefBuckets[i], i-1, DefBuckets[i-1])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("digibox_q_seconds", "", []float64{1, 2, 3, 4})
	// 100 observations uniform in (0,4]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-2.0) > 0.05 {
		t.Fatalf("p50 = %v, want ~2.0", p50)
	}
	if p99 := h.Quantile(0.99); math.Abs(p99-3.96) > 0.05 {
		t.Fatalf("p99 = %v, want ~3.96", p99)
	}
	// All mass beyond the last bound clamps to it.
	h2 := r.Histogram("digibox_q2_seconds", "", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2 (last bound)", got)
	}
	// Empty histogram.
	h3 := r.Histogram("digibox_q3_seconds", "", []float64{1})
	if got := h3.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestWriteTextAndParseBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("digibox_a_total", "as counted").Add(7)
	r.GaugeVec("digibox_b", "bees", "hive").With("north").Set(2.5)
	r.Histogram("digibox_c_seconds", "sees", []float64{0.5, 1}).Observe(0.7)
	r.CounterFunc("digibox_d_total", "dees", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE digibox_a_total counter",
		"digibox_a_total 7",
		`digibox_b{hive="north"} 2.5`,
		"# TYPE digibox_c_seconds histogram",
		`digibox_c_seconds_bucket{le="0.5"} 0`,
		`digibox_c_seconds_bucket{le="1"} 1`,
		`digibox_c_seconds_bucket{le="+Inf"} 1`,
		"digibox_c_seconds_sum 0.7",
		"digibox_c_seconds_count 1",
		"digibox_d_total 42",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, families, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(families) != 4 {
		t.Fatalf("parsed %d families, want 4: %v", len(families), families)
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		if s.Labels == nil {
			byName[s.Name] = s
		}
	}
	if byName["digibox_a_total"].Value != 7 {
		t.Fatalf("round-trip a_total = %v", byName["digibox_a_total"].Value)
	}
	var found bool
	for _, s := range samples {
		if s.Name == "digibox_b" && s.Labels["hive"] == "north" && s.Value == 2.5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("labelled gauge not round-tripped: %+v", samples)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("digibox_esc_total", "", "t").With(`a"b\c`).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, _, err := ParseText(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Labels["t"] != `a"b\c` {
		t.Fatalf("escaped label round-trip failed: %+v", samples)
	}
}

// TestParseTextMalformed pins the failure modes of the scrape parser:
// every rejected input names the offending line, and tolerated
// oddities (comments, blank lines, unknown HELP text) never error.
func TestParseTextMalformed(t *testing.T) {
	bad := []struct {
		name, in, wantErr string
	}{
		{"no separator", "digibox_a_total", "line 1: no value separator"},
		{"non-numeric value", "digibox_a_total x", "line 1"},
		{"empty value", "digibox_a_total ", "line 1"},
		{"bad label pair", `digibox_b{hive} 1`, `bad label "hive"`},
		{"bad line cites position", "digibox_a_total 1\n\ndigibox_c nope", "line 3"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseText(tc.in)
			if err == nil {
				t.Fatalf("ParseText(%q) accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	ok := []struct {
		name, in string
		samples  int
		families int
	}{
		{"empty input", "", 0, 0},
		{"comments only", "# HELP x y\n# TYPE digibox_a_total counter\n", 0, 1},
		{"short comment", "#\n# TYPE\n", 0, 0},
		{"duplicate TYPE counted once", "# TYPE digibox_a_total counter\n# TYPE digibox_a_total counter\ndigibox_a_total 1\n", 1, 1},
		{"inf and nan values", "digibox_a_total +Inf\ndigibox_b_total NaN\n", 2, 0},
		{"label value with comma", `digibox_a{t="x,y"} 1`, 1, 0},
	}
	for _, tc := range ok {
		t.Run(tc.name, func(t *testing.T) {
			samples, families, err := ParseText(tc.in)
			if err != nil {
				t.Fatalf("ParseText(%q): %v", tc.in, err)
			}
			if len(samples) != tc.samples || len(families) != tc.families {
				t.Fatalf("got %d samples / %d families, want %d / %d",
					len(samples), len(families), tc.samples, tc.families)
			}
		})
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Histogram("digibox_h_seconds", "", []float64{1, 2}).Observe(1.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	fs := snap.Family("digibox_h_seconds")
	if fs == nil || fs.Metrics[0].Count != 1 || fs.Metrics[0].P50 == 0 {
		t.Fatalf("JSON round-trip lost histogram detail: %s", data)
	}
}

func TestValuesSingleSweep(t *testing.T) {
	r := NewRegistry()
	r.Counter("digibox_v1_total", "").Add(3)
	r.CounterVec("digibox_v2_total", "", "l").With("a").Add(1)
	r.CounterVec("digibox_v2_total", "", "l").With("b").Add(2)
	r.Histogram("digibox_v3_seconds", "", []float64{1}).Observe(0.5)
	vals := r.Values()
	if vals["digibox_v1_total"] != 3 {
		t.Fatalf("v1 = %v", vals["digibox_v1_total"])
	}
	if vals["digibox_v2_total"] != 3 { // summed across children
		t.Fatalf("v2 = %v", vals["digibox_v2_total"])
	}
	if vals["digibox_v3_seconds"] != 1 { // histograms report count
		t.Fatalf("v3 = %v", vals["digibox_v3_seconds"])
	}
	if r.Value("digibox_v2_total") != 3 || r.Value("absent") != 0 {
		t.Fatal("Value mismatch")
	}
}

func TestTopicClass(t *testing.T) {
	cases := map[string]string{
		"digibox/L1/status":        "digibox/+/status",
		"digibox/a/b/c/status":     "digibox/+/status",
		"digibox/status":           "digibox/status",
		"status":                   "status",
		"home/kitchen/lamp/bright": "home/+/bright",
	}
	for in, want := range cases {
		if got := TopicClass(in); got != want {
			t.Fatalf("TopicClass(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	tr.SetSampleInterval(1)
	var gotFrom, gotTopic string
	var gotElapsed time.Duration
	tr.OnSpan(func(from, topic string, elapsed time.Duration) {
		gotFrom, gotTopic, gotElapsed = from, topic, elapsed
	})

	// Drive the tracer from a virtual clock so the elapsed time is
	// exact rather than a lower bound on a real sleep.
	v := clock.NewVirtual()
	tr.clk = v

	id := tr.Start("L1", "digibox/L1/status")
	if id == 0 {
		t.Fatal("span id 0")
	}
	v.AdvanceTo(clock.Epoch.Add(2 * time.Millisecond))
	tr.End(id)
	tr.End(id) // second fan-out leg: non-destructive
	tr.End(id + 999)

	if gotFrom != "L1" || gotTopic != "digibox/L1/status" || gotElapsed < 2*time.Millisecond {
		t.Fatalf("OnSpan saw %q %q %v", gotFrom, gotTopic, gotElapsed)
	}
	snap := r.Snapshot()
	digi := snap.Family("digibox_e2e_latency_seconds")
	if digi == nil || digi.Metrics[0].Count != 2 {
		t.Fatalf("per-digi histogram: %+v", digi)
	}
	if digi.Metrics[0].LabelValues[0] != "L1" {
		t.Fatalf("digi label = %v", digi.Metrics[0].LabelValues)
	}
	class := snap.Family("digibox_e2e_topic_latency_seconds")
	if class == nil || class.Metrics[0].LabelValues[0] != "digibox/+/status" {
		t.Fatalf("class histogram: %+v", class)
	}
	if v := r.Value("digibox_spans_started_total"); v != 1 {
		t.Fatalf("spans started = %v", v)
	}
	if v := r.Value("digibox_spans_completed_total"); v != 2 {
		t.Fatalf("spans completed = %v", v)
	}
}

// TestSpanDigiAttribution pins how spans map to digi labels: the
// digibox/<name>/... namespace names the digi in the topic (the
// runtime multiplexes all digis over one session), anything else is
// credited to the publishing client.
func TestSpanDigiAttribution(t *testing.T) {
	cases := []struct{ from, topic, want string }{
		{"digi-runtime", "digibox/O1/status", "O1"},
		{"digi-runtime", "digibox/MeetingRoom/status", "MeetingRoom"},
		{"sensor-42", "home/kitchen/temp", "sensor-42"},
		{"c1", "digibox/bare", "c1"}, // no sub-topic: not the status convention
	}
	for _, c := range cases {
		if got := spanDigi(c.from, c.topic); got != c.want {
			t.Errorf("spanDigi(%q, %q) = %q, want %q", c.from, c.topic, got, c.want)
		}
	}
	r := NewRegistry()
	tr := NewTracer(r)
	tr.SetSampleInterval(1)
	tr.End(tr.Start("digi-runtime", "digibox/O1/status"))
	fs := r.Snapshot().Family("digibox_e2e_latency_seconds")
	if fs == nil || fs.Metrics[0].LabelValues[0] != "O1" {
		t.Fatalf("runtime-session span not attributed to digi: %+v", fs)
	}
}

// TestSpanSampling pins the default 1-in-8 sampling: counters of
// routed messages stay exact elsewhere, but only every 8th Start
// opens a span.
func TestSpanSampling(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	opened := 0
	for i := 0; i < 16; i++ {
		if id := tr.Start("d", "a/b"); id != 0 {
			tr.End(id)
			opened++
		}
	}
	if opened != 2 {
		t.Fatalf("opened %d spans in 16 publishes, want 2 (1-in-8)", opened)
	}
	if v := r.Value("digibox_spans_started_total"); v != 2 {
		t.Fatalf("spans started = %v", v)
	}
	tr.SetSampleInterval(0) // clamps to 1: every message
	if tr.Start("d", "a/b") == 0 {
		t.Fatal("interval 1 still sampling out")
	}
}

// TestTracerAnonymousPublisher pins the "(app)" label for in-process
// publishes without an identity.
func TestTracerAnonymousPublisher(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	tr.SetSampleInterval(1)
	tr.End(tr.Start("", "t/x/y"))
	fs := r.Snapshot().Family("digibox_e2e_latency_seconds")
	if fs == nil || fs.Metrics[0].LabelValues[0] != "(app)" {
		t.Fatalf("anonymous label: %+v", fs)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	tr.SetSampleInterval(1)
	c := r.Counter("digibox_cc_total", "")
	h := r.Histogram("digibox_ch_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				tr.End(tr.Start("d", "a/b/c"))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %v, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %v, want 8000", got)
	}
}
