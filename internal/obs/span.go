package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// SpanID identifies an in-flight publish→deliver span; 0 is invalid
// (not sampled, or tracing off).
type SpanID uint64

// spanSlots sizes the tracer's ring. A span lives from broker routing
// to the subscriber's socket write — microseconds to a few
// milliseconds — so 4096 in-flight spans covers far beyond the
// broker's per-session queue depth; an overwritten slot just loses
// that one sample (End finds a mismatched id and drops it).
const spanSlots = 4096

// defaultSpanSampling traces one in N routed messages. Counters stay
// exact regardless (they are the broker's own atomics exposed at
// gather time); only the latency histograms are sampled, which keeps
// the per-message cost of the publish hot path under 5% while the
// quantiles remain statistically sound. SetSampleInterval(1) restores
// full tracing.
const defaultSpanSampling = 8

// Tracer stamps spans on messages at publish time and closes them at
// subscriber delivery, feeding per-digi and per-topic-class
// end-to-end latency histograms. A nil *Tracer is a no-op.
//
// Slots are a fixed ring indexed by span id; End is non-destructive
// so a fan-out of N subscribers yields N latency samples from one
// span.
type Tracer struct {
	clk   clock.Clock
	ids   atomic.Uint64
	every atomic.Uint64 // sample 1-in-every messages; >= 1
	slots [spanSlots]spanSlot

	started   *Counter
	completed *Counter
	byDigi    *HistogramVec
	byClass   *HistogramVec

	mu     sync.Mutex
	onSpan func(from, topic string, elapsed time.Duration)

	// cached With lookups for repeat label tuples, so End costs one
	// RLock-free map read instead of a family-lock map access.
	cacheMu sync.RWMutex
	digiH   map[string]*Histogram
	classH  map[string]*Histogram
}

type spanSlot struct {
	mu    sync.Mutex
	id    uint64
	from  string
	topic string
	start time.Time
}

// NewTracer wires a tracer into the registry. Returns nil when r is
// nil, so callers can pass the result around unconditionally.
func NewTracer(r *Registry) *Tracer {
	if r == nil {
		return nil
	}
	t := &Tracer{
		clk:       clock.System,
		started:   r.Counter("digibox_spans_started_total", "publish→deliver spans opened at broker routing"),
		completed: r.Counter("digibox_spans_completed_total", "span closures observed at subscriber delivery (one per fan-out leg)"),
		byDigi: r.HistogramVec("digibox_e2e_latency_seconds",
			"end-to-end publish→deliver MQTT latency by digi (from the digibox/<name>/... topic, else the publishing client)", nil, "digi"),
		byClass: r.HistogramVec(E2ETopicLatencyName,
			"end-to-end publish→deliver MQTT latency by topic class", nil, "class"),
		digiH:  map[string]*Histogram{},
		classH: map[string]*Histogram{},
	}
	t.every.Store(defaultSpanSampling)
	return t
}

// SetClock points the tracer at the testbed clock, so span timestamps
// and latency samples advance on scenario time under time-compressed
// execution instead of leaking wall time. Call before the first span
// opens.
func (t *Tracer) SetClock(clk clock.Clock) {
	if t == nil || clk == nil {
		return
	}
	t.clk = clk
}

// SetSampleInterval makes the tracer open a span for one in every n
// routed messages (n < 1 is clamped to 1 = trace everything).
func (t *Tracer) SetSampleInterval(n uint64) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.every.Store(n)
}

// OnSpan registers a callback invoked on every span closure — the
// hook core uses to correlate spans into trace.Log.
func (t *Tracer) OnSpan(fn func(from, topic string, elapsed time.Duration)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onSpan = fn
	t.mu.Unlock()
}

// Start opens a span for a message published by from (a digi name or
// wire client id; "" for anonymous in-process publishes) on topic.
// Returns the id to stamp on the outbound message copies, or 0 when
// this message falls outside the sampling interval.
func (t *Tracer) Start(from, topic string) SpanID {
	if t == nil {
		return 0
	}
	id := t.ids.Add(1)
	if e := t.every.Load(); e > 1 && id%e != 0 {
		return 0
	}
	s := &t.slots[id%spanSlots]
	now := t.clk.Now()
	s.mu.Lock()
	s.id, s.from, s.topic, s.start = id, from, topic, now
	s.mu.Unlock()
	t.started.Inc()
	return SpanID(id)
}

// End closes one delivery leg of a span, observing the elapsed time
// into the latency histograms. Safe to call multiple times for the
// same id (once per subscriber); a stale or overwritten id is
// silently dropped.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	s := &t.slots[uint64(id)%spanSlots]
	s.mu.Lock()
	if s.id != uint64(id) {
		s.mu.Unlock()
		return
	}
	from, topic, start := s.from, s.topic, s.start
	s.mu.Unlock()
	elapsed := t.clk.Since(start)

	sec := elapsed.Seconds()
	t.digiHist(spanDigi(from, topic)).Observe(sec)
	t.classHist(TopicClass(topic)).Observe(sec)
	t.completed.Inc()

	t.mu.Lock()
	fn := t.onSpan
	t.mu.Unlock()
	if fn != nil {
		fn(from, topic, elapsed)
	}
}

// spanDigi attributes a span to a digi. Messages in the runtime's
// digibox/<name>/... namespace are credited to the digi named in the
// topic — one wire session ("digi-runtime") multiplexes every digi, so
// the publisher id alone cannot tell them apart. Everything else is
// credited to the publishing client.
func spanDigi(from, topic string) string {
	if rest, ok := strings.CutPrefix(topic, "digibox/"); ok {
		if i := strings.IndexByte(rest, '/'); i > 0 {
			return rest[:i]
		}
	}
	return from
}

func (t *Tracer) digiHist(from string) *Histogram {
	if from == "" {
		from = "(app)" // anonymous in-process publisher
	}
	t.cacheMu.RLock()
	h, ok := t.digiH[from]
	t.cacheMu.RUnlock()
	if ok {
		return h
	}
	h = t.byDigi.With(from)
	t.cacheMu.Lock()
	t.digiH[from] = h
	t.cacheMu.Unlock()
	return h
}

func (t *Tracer) classHist(class string) *Histogram {
	t.cacheMu.RLock()
	h, ok := t.classH[class]
	t.cacheMu.RUnlock()
	if ok {
		return h
	}
	h = t.byClass.With(class)
	t.cacheMu.Lock()
	t.classH[class] = h
	t.cacheMu.Unlock()
	return h
}
