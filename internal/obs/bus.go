package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Event is one item on the fan-out bus: a monotonically increasing
// sequence number, a bus-clock timestamp, a kind tag ("fault",
// "shard", "pod", "client", "metrics", "latency"), and a small
// JSON-serialisable payload.
//
// AtMs is scenario time (the injected bus clock), so events line up
// with trace records and spans under time-compressed execution; WallMs
// is the secondary wall-clock stamp for correlating with logs outside
// the testbed. On a real-time bus the two agree.
type Event struct {
	Seq    uint64         `json:"seq"`
	AtMs   int64          `json:"at_ms"`
	WallMs int64          `json:"wall_ms"`
	Kind   string         `json:"kind"`
	Data   map[string]any `json:"data,omitempty"`
}

// Bus is a bounded fan-out event bus. Publishers (broker, chaos
// engine, swarm health monitor, kube node agents) call Publish;
// consumers call Subscribe and read from the returned Sub's channel.
//
// Backpressure contract, mirroring the swarm pend journal: every
// subscriber owns a bounded buffer, Publish never blocks, and when a
// subscriber's buffer is full the event is shed for that subscriber
// only and a monotonic drop counter advances. A slow SSE consumer can
// therefore never stall the broker's hot path or starve its peers.
//
// All methods are nil-receiver-safe so subsystems publish
// unconditionally and a nil *Bus collapses the layer to no-ops.
type Bus struct {
	clk       clock.Clock
	wall      clock.Clock
	published *Counter
	dropped   *Counter

	mu     sync.Mutex
	seq    uint64
	subs   map[*Sub]struct{}
	closed bool

	stop     chan struct{}
	samplers sync.WaitGroup
}

// Sub is one bus subscription with a bounded buffer.
type Sub struct {
	bus     *Bus
	c       chan Event
	dropped atomic.Uint64
}

// NewBus returns a bus stamping events from clk (nil means the system
// clock) and counting publishes/sheds into reg (nil disables metrics,
// not the bus).
func NewBus(reg *Registry, clk clock.Clock) *Bus {
	return &Bus{
		clk:       clock.Or(clk),
		wall:      clock.System,
		published: reg.Counter("digibox_events_published_total", "Events published onto the fan-out bus."),
		dropped:   reg.Counter("digibox_events_dropped_total", "Events shed because a subscriber's bounded buffer was full."),
		subs:      map[*Sub]struct{}{},
		stop:      make(chan struct{}),
	}
}

// SetWallClock overrides the secondary wall-time stamp source
// (tests). The primary AtMs clock stays as constructed.
func (b *Bus) SetWallClock(wall clock.Clock) {
	if b == nil || wall == nil {
		return
	}
	b.wall = wall
}

// Publish stamps and fans an event out to every subscriber,
// non-blocking: a full subscriber buffer sheds the event for that
// subscriber and advances its drop counter.
func (b *Bus) Publish(kind string, data map[string]any) {
	if b == nil {
		return
	}
	now := b.clk.Now().UnixMilli()
	wall := b.wall.Now().UnixMilli()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	ev := Event{Seq: b.seq, AtMs: now, WallMs: wall, Kind: kind, Data: data}
	b.published.Inc()
	for s := range b.subs {
		select {
		case s.c <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Inc()
		}
	}
}

// Subscribe registers a consumer with a bounded buffer of the given
// size (minimum 1). On a closed (or nil) bus the returned Sub's
// channel is already closed, so consumers uniformly range to EOF.
func (b *Bus) Subscribe(buffer int) *Sub {
	if buffer < 1 {
		buffer = 1
	}
	s := &Sub{bus: b, c: make(chan Event, buffer)}
	if b == nil {
		close(s.c)
		return s
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.c)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// C is the subscription's event channel; it closes when the Sub or
// the bus closes.
func (s *Sub) C() <-chan Event { return s.c }

// Dropped reports how many events were shed for this subscriber.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Safe to
// call more than once; publishes after Close are simply not seen.
func (s *Sub) Close() {
	if s == nil || s.bus == nil {
		return
	}
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.c)
	}
}

// Subscribers reports the current number of attached consumers.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close stops samplers, detaches every subscriber (closing their
// channels), and makes further publishes no-ops.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.samplers.Wait()
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.subs {
		close(s.c)
	}
	b.subs = map[*Sub]struct{}{}
}

// SampleMetrics starts a sampler goroutine that every interval
// publishes a "metrics" event carrying the registry values that
// changed since the previous tick (name -> new value), and — when
// e2e spans have landed — a "latency" event with per-topic-class
// p50/p99 derived from the span tracer's shared histogram family.
// The sampler stops when the bus closes.
func (b *Bus) SampleMetrics(reg *Registry, interval time.Duration) {
	if b == nil || reg == nil || interval <= 0 {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.samplers.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.samplers.Done()
		t := b.clk.NewTicker(interval)
		defer t.Stop()
		// The bus's own counters advance whenever the sampler itself
		// publishes; including them in the delta would make every tick
		// dirty and the stream self-perpetuating.
		selfNames := map[string]bool{
			"digibox_events_published_total": true,
			"digibox_events_dropped_total":   true,
		}
		prev := map[string]float64{}
		var prevSpans uint64
		for {
			select {
			case <-b.stop:
				return
			case <-t.C():
			}
			cur := reg.Values()
			changed := map[string]any{}
			for name, v := range cur {
				if !selfNames[name] && v != prev[name] {
					changed[name] = v
				}
			}
			prev = cur
			if len(changed) > 0 {
				b.Publish("metrics", map[string]any{"values": changed})
			}
			classes, total := reg.LatencyClasses()
			if total != prevSpans && len(classes) > 0 {
				prevSpans = total
				b.Publish("latency", map[string]any{"classes": classes})
			}
		}
	}()
}

// LatencyClass is one topic class's e2e latency summary.
type LatencyClass struct {
	Class string  `json:"class"`
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// LatencyClasses summarises the span tracer's per-topic-class e2e
// latency family (E2ETopicLatencyName) into sorted p50/p99 rows plus
// the total observation count across classes.
func (r *Registry) LatencyClasses() ([]LatencyClass, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	f, ok := r.families[E2ETopicLatencyName]
	r.mu.Unlock()
	if !ok || f.kind != KindHistogram {
		return nil, 0
	}
	f.mu.Lock()
	kids := make(map[string]*child, len(f.kids))
	for k, c := range f.kids {
		kids[k] = c
	}
	f.mu.Unlock()
	var out []LatencyClass
	var total uint64
	for _, c := range kids {
		counts := snapshotHist(c, f.bounds)
		n := c.count.Load()
		total += n
		class := ""
		if len(c.labelVals) > 0 {
			class = c.labelVals[0]
		}
		out = append(out, LatencyClass{
			Class: class,
			Count: n,
			P50Ms: quantile(counts, f.bounds, 0.50) * 1e3,
			P99Ms: quantile(counts, f.bounds, 0.99) * 1e3,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out, total
}
