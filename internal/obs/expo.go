package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText writes every family in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, then one sample
// line per child, histograms expanded into cumulative _bucket{le=...}
// series plus _sum and _count. Families and children are emitted in
// sorted order so output is diffable.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, fs := range r.Snapshot().Families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			fs.Name, fs.Help, fs.Name, fs.Kind); err != nil {
			return err
		}
		for _, m := range fs.Metrics {
			if err := writeTextMetric(w, fs, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTextMetric(w io.Writer, fs FamilySnapshot, m MetricSnapshot) error {
	if fs.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			fs.Name, labelBlock(fs.Labels, m.LabelValues, "", 0), formatValue(m.Value))
		return err
	}
	var cum uint64
	for i, n := range m.Buckets {
		cum += n
		le := "+Inf"
		if i < len(fs.Buckets) {
			le = formatValue(fs.Buckets[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			fs.Name, labelBlockLe(fs.Labels, m.LabelValues, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		fs.Name, labelBlock(fs.Labels, m.LabelValues, "", 0), formatValue(m.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		fs.Name, labelBlock(fs.Labels, m.LabelValues, "", 0), m.Count)
	return err
}

func labelBlockLe(names, vals []string, le string) string {
	return labelBlock(names, vals, le, 1)
}

// labelBlock renders {a="x",b="y"} (empty string when no labels);
// extraLe > 0 appends le="...".
func labelBlock(names, vals []string, le string, extraLe int) string {
	if len(names) == 0 && extraLe == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(vals[i]))
		sb.WriteByte('"')
	}
	if extraLe > 0 {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`le="`)
		sb.WriteString(le)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is a point-in-time copy of the whole registry, shaped for
// JSON (GET /ctl/metrics.json) and for dbox top. Histogram children
// carry precomputed p50/p99 so consumers don't reimplement
// interpolation.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    Kind             `json:"kind"`
	Labels  []string         `json:"labels,omitempty"`
	Buckets []float64        `json:"buckets,omitempty"` // histogram upper bounds
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one child time series.
type MetricSnapshot struct {
	LabelValues []string `json:"labelValues,omitempty"`
	Value       float64  `json:"value,omitempty"` // counter/gauge
	// Histogram fields.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []uint64 `json:"bucketCounts,omitempty"` // per-bucket (not cumulative)
	P50     float64  `json:"p50,omitempty"`
	P99     float64  `json:"p99,omitempty"`
}

// Snapshot captures every family. Families and children are sorted by
// name / label tuple.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:    f.name,
			Help:    f.help,
			Kind:    f.kind,
			Labels:  append([]string(nil), f.labels...),
			Buckets: append([]float64(nil), f.bounds...),
		}
		// The family lock is held across the child sweep so the fn
		// pointers and child set are read consistently; the values
		// themselves are atomics.
		f.mu.Lock()
		kids := make([]*child, 0, len(f.kids))
		for _, c := range f.kids {
			kids = append(kids, c)
		}
		sort.Slice(kids, func(i, j int) bool {
			return strings.Join(kids[i].labelVals, "\x1f") < strings.Join(kids[j].labelVals, "\x1f")
		})
		for _, c := range kids {
			m := MetricSnapshot{LabelValues: append([]string(nil), c.labelVals...)}
			if f.kind == KindHistogram {
				m.Buckets = snapshotHist(c, f.bounds)
				m.Count = c.count.Load()
				m.Sum = math.Float64frombits(c.sumBits.Load())
				m.P50 = quantile(m.Buckets, f.bounds, 0.50)
				m.P99 = quantile(m.Buckets, f.bounds, 0.99)
			} else if c.fn != nil {
				m.Value = c.fn()
			} else {
				m.Value = math.Float64frombits(c.bits.Load())
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		f.mu.Unlock()
		out.Families = append(out.Families, fs)
	}
	return out
}

// Family returns the snapshot of one family by name (nil if absent).
func (s Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Label returns the metric's value for a named label, "" if absent.
func (m MetricSnapshot) Label(fs *FamilySnapshot, name string) string {
	for i, n := range fs.Labels {
		if n == name && i < len(m.LabelValues) {
			return m.LabelValues[i]
		}
	}
	return ""
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string            // sample name as written (may carry _bucket/_sum/_count)
	Labels map[string]string // nil when unlabelled
	Value  float64
}

// ParseText parses Prometheus text exposition into samples, returning
// them with the set of family names seen in # TYPE headers. It
// understands exactly the subset WriteText emits — enough for tests
// and dbox top to scrape a live daemon without a client library.
func ParseText(text string) (samples []Sample, families []string, err error) {
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" && !seen[fields[2]] {
				seen[fields[2]] = true
				families = append(families, fields[2])
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, nil, fmt.Errorf("obs: parse line %d: no value separator", ln+1)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: parse line %d: %w", ln+1, err)
		}
		s := Sample{Name: line[:sp], Value: val}
		if i := strings.IndexByte(s.Name, '{'); i >= 0 {
			labelText := strings.TrimSuffix(s.Name[i+1:], "}")
			s.Name = s.Name[:i]
			s.Labels = map[string]string{}
			for _, pair := range splitLabelPairs(labelText) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					return nil, nil, fmt.Errorf("obs: parse line %d: bad label %q", ln+1, pair)
				}
				s.Labels[pair[:eq]] = unescapeLabel(strings.Trim(pair[eq+1:], `"`))
			}
		}
		samples = append(samples, s)
	}
	return samples, families, nil
}

// splitLabelPairs splits a="x",b="y" at commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var sb strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, sb.String())
			sb.Reset()
			continue
		}
		sb.WriteRune(r)
	}
	if sb.Len() > 0 {
		out = append(out, sb.String())
	}
	return out
}

func unescapeLabel(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	v = strings.ReplaceAll(v, `\"`, `"`)
	v = strings.ReplaceAll(v, `\n`, "\n")
	return strings.ReplaceAll(v, `\\`, `\`)
}
