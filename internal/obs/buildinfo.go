package obs

// Version identifies the digibox build; surfaced on /healthz,
// /readyz, /ctl/status and as the digibox_build_info gauge so
// scrapers and the dashboard can correlate behaviour with a build.
const Version = "0.8.0"

// RegisterBuildInfo registers the constant digibox_build_info gauge
// (value 1, labelled by version — the Prometheus build-info idiom)
// and returns the version it stamped.
func RegisterBuildInfo(r *Registry) string {
	r.GaugeVec("digibox_build_info", "Constant 1 labelled with the digibox build version.", "version").
		With(Version).Set(1)
	return Version
}
