// Package obs is Digibox's dependency-free metrics substrate: atomic
// counters, gauges, and fixed-bucket histograms collected in a
// Registry and exposed in Prometheus text format or as a JSON
// snapshot, plus a lightweight publish→deliver span tracer (span.go)
// that turns broker deliveries into true end-to-end MQTT latency
// histograms.
//
// Design constraints, in order:
//
//  1. Zero hot-path cost when disabled: every constructor and method
//     is nil-receiver-safe, so code instruments unconditionally and a
//     nil *Registry collapses the whole layer to predictable no-ops.
//  2. Near-zero cost when enabled: instruments are single atomic adds;
//     values that subsystems already maintain (broker counters, pod
//     phases) are registered as Func metrics read only at gather time.
//  3. No dependencies: the exposition format is the small, stable
//     subset of the Prometheus text format that real scrapers accept.
package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// A Kind classifies a metric family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Shared family names incremented from more than one layer. The chaos
// engine counts explicit fault reverts and the digi runtime counts
// broker-session recoveries into the same recovered family (label
// "via" tells them apart); CI gates on recovered >= injected.
const (
	FaultsInjectedName  = "digibox_faults_injected_total"
	FaultsRecoveredName = "digibox_faults_recovered_total"

	// E2ETopicLatencyName is fed by the tracer and re-read by swarm
	// session reports (registration is idempotent for an identical
	// kind + label schema).
	E2ETopicLatencyName = "digibox_e2e_topic_latency_seconds"
)

// DefBuckets are the default latency buckets in seconds, spanning the
// in-process publish path (~1µs) through wire round-trips and chaos
// recovery windows (~seconds).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

// Registry holds metric families. The zero value is not usable; a nil
// *Registry is, and yields no-op instruments everywhere.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric family: a fixed kind, label schema, and
// (for histograms) bucket bounds, with one child instrument per
// distinct label-value tuple. Unlabelled families have a single child
// under the empty key.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram upper bounds, strictly increasing

	mu   sync.Mutex
	kids map[string]*child
}

// child is one concrete time series.
type child struct {
	labelVals []string

	// counter/gauge state: value is fixed-point in the sense that
	// integer Adds dominate; stored as float bits for gauge Set.
	bits atomic.Uint64

	// fn, when set, supersedes bits at gather time (Func metrics).
	fn func() float64

	// histogram state.
	counts  []atomic.Uint64 // one per bound, plus +Inf at the end
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func (f *family) get(vals []string) *child {
	key := strings.Join(vals, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.kids[key]
	if !ok {
		c = &child{labelVals: append([]string(nil), vals...)}
		if f.kind == KindHistogram {
			c.counts = make([]atomic.Uint64, len(f.bounds)+1)
		}
		f.kids[key] = c
	}
	return c
}

// register returns the named family, creating it on first use.
// Registration is idempotent so independent layers can share a family
// (see FaultsRecoveredName); a kind or label-schema mismatch is a
// programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: conflicting registration of %s: %s%v vs %s%v",
				name, f.kind, f.labels, kind, labels))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		kids:   map[string]*child{},
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- Counter ----

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Counter registers (or finds) an unlabelled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, KindCounter, nil, nil)
	return &Counter{c: f.get(nil)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; negative adds are ignored).
func (c *Counter) Add(n float64) {
	if c == nil || n < 0 {
		return
	}
	addFloat(&c.c.bits, n)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.c.bits.Load())
}

// ---- Gauge ----

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Gauge registers (or finds) an unlabelled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, KindGauge, nil, nil)
	return &Gauge{c: f.get(nil)}
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.c.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n float64) {
	if g == nil {
		return
	}
	addFloat(&g.c.bits, n)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.c.bits.Load())
}

// addFloat is a lock-free float64 accumulate (CAS loop; contention on
// these cells is low because hot counters are per-child).
func addFloat(bits *atomic.Uint64, n float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + n)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ---- Func metrics ----

// CounterFunc registers a counter whose value is computed at gather
// time — the pattern for exposing counters a subsystem already
// maintains (broker atomics) with zero added hot-path cost.
// Re-registering the same name replaces the function (a restarted
// broker rebinding its views).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, KindCounter, nil, nil)
	c := f.get(nil)
	f.mu.Lock()
	c.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge computed at gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, KindGauge, nil, nil)
	c := f.get(nil)
	f.mu.Lock()
	c.fn = fn
	f.mu.Unlock()
}

// ---- Histogram ----

// Histogram counts observations into fixed buckets. Bucket bounds are
// inclusive upper bounds in the observation's unit (seconds for all
// latency families here), per the Prometheus "le" convention.
type Histogram struct {
	c      *child
	bounds []float64
}

// Histogram registers (or finds) an unlabelled histogram family.
// bounds must be strictly increasing; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.register(name, help, KindHistogram, nil, bounds)
	return &Histogram{c: f.get(nil), bounds: f.bounds}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	observe(h.c, h.bounds, v)
}

func observe(c *child, bounds []float64, v float64) {
	// Bucket search is linear: bucket counts are small (~20) and the
	// common observations land in the first third, beating a binary
	// search's branch misses at this size.
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	c.counts[i].Add(1)
	c.count.Add(1)
	addFloat(&c.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.c.count.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the bucket that crosses the target rank —
// the same estimate PromQL's histogram_quantile produces. Returns 0
// with no observations; observations beyond the last bound clamp to
// that bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantile(snapshotHist(h.c, h.bounds), h.bounds, q)
}

// quantile works on a consistent copy of cumulative-free bucket counts.
func quantile(counts []uint64, bounds []float64, q float64) float64 {
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, n := range counts {
		cum += n
		if float64(cum) >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1] // +Inf bucket clamps
			}
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			upper := bounds[i]
			if n == 0 {
				return upper
			}
			frac := (rank - float64(cum-n)) / float64(n)
			return lower + (upper-lower)*frac
		}
	}
	return bounds[len(bounds)-1]
}

func snapshotHist(c *child, bounds []float64) []uint64 {
	out := make([]uint64, len(bounds)+1)
	for i := range c.counts {
		out[i] = c.counts[i].Load()
	}
	return out
}

// ---- Labelled vectors ----

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{c: v.f.get(vals)}
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{c: v.f.get(vals)}
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, bounds)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{c: v.f.get(vals), bounds: v.f.bounds}
}

// ---- Whole-registry reads ----

// Value returns the summed value of a family across its children
// (histograms sum observation counts). It is the single-pass read
// Testbed.Stats uses: one registry lock, every family read in the
// same sweep.
func (r *Registry) Value(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return f.sum()
}

// Values returns every family's summed value in one locked sweep, so
// callers get a mutually consistent snapshot (no family is read at a
// later instant than another by more than the sweep itself).
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(fams))
	for _, f := range fams {
		out[f.name] = f.sum()
	}
	return out
}

func (f *family) sum() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var total float64
	for _, c := range f.kids {
		switch {
		case f.kind == KindHistogram:
			total += float64(c.count.Load())
		case c.fn != nil:
			total += c.fn()
		default:
			total += math.Float64frombits(c.bits.Load())
		}
	}
	return total
}

// TopicClass generalises an MQTT topic into a class by replacing the
// middle segments with "+": "digibox/L1/status" -> "digibox/+/status".
// One- and two-segment topics are their own class. Latency histograms
// are keyed by class so per-device topics don't explode cardinality.
func TopicClass(topic string) string {
	first := strings.IndexByte(topic, '/')
	last := strings.LastIndexByte(topic, '/')
	if first < 0 || first == last {
		return topic
	}
	return topic[:first] + "/+" + topic[last:]
}
