package core

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/property"
)

// TestCase is an input/expected-output pair over the testbed, the
// §3.3 testing workflow: "developers can pause event generation in the
// scene ... and add input-output pairs (i.e., scene status and the
// expected mock status)".
type TestCase struct {
	Name string
	// Input merge-patches are applied per model (typically scene
	// status, e.g. {"MeetingRoom": {"human_presence": true}}).
	Input map[string]map[string]any
	// Expect must hold within Within (typically mock status, e.g.
	// O1.triggered == true).
	Expect property.Condition
	// Within bounds convergence; default 5s.
	Within time.Duration
	// KeepManaged leaves event generation running during the case.
	// The default pauses every Input model first, so random events
	// cannot race the asserted outputs.
	KeepManaged bool
}

// RunTestCase executes one input/expected-output pair: pause the input
// models' event generators, apply the inputs, and wait for the
// expected condition. On timeout the error describes which terms of
// the expectation failed.
func (tb *Testbed) RunTestCase(tc TestCase) error {
	if tc.Name == "" {
		return fmt.Errorf("core: test case needs a name")
	}
	if len(tc.Expect) == 0 {
		return fmt.Errorf("core: test case %q has no expectation", tc.Name)
	}
	within := tc.Within
	if within <= 0 {
		within = 5 * time.Second
	}
	if !tc.KeepManaged {
		for name := range tc.Input {
			if !tb.Store.Has(name) {
				return fmt.Errorf("core: test case %q: input model %q not found", tc.Name, name)
			}
			if _, err := tb.Store.Apply(name, func(d model.Doc) error {
				d.Set("meta.managed", false)
				return nil
			}); err != nil {
				return err
			}
		}
	}
	for name, patch := range tc.Input {
		if err := tb.Edit(name, patch); err != nil {
			return fmt.Errorf("core: test case %q: input %s: %w", tc.Name, name, err)
		}
	}
	state := property.StoreState(tb.Store)
	deadline := tb.clk.Now().Add(within)
	for {
		if tc.Expect.Eval(state) {
			return nil
		}
		if tb.clk.Now().After(deadline) {
			return fmt.Errorf("core: test case %q failed: %s",
				tc.Name, describeFailure(tc.Expect, state))
		}
		tb.clk.Sleep(5 * time.Millisecond)
	}
}

// RunTestCases executes cases in order, stopping at the first failure.
func (tb *Testbed) RunTestCases(cases []TestCase) error {
	for _, tc := range cases {
		if err := tb.RunTestCase(tc); err != nil {
			return err
		}
	}
	return nil
}

// describeFailure reports the first unmet terms of a condition with
// the actual values, for actionable test-case failures.
func describeFailure(cond property.Condition, state property.State) string {
	for _, term := range cond {
		single := property.Condition{term}
		if single.Eval(state) {
			continue
		}
		doc, ok := state.GetModel(term.Model)
		if !ok {
			return fmt.Sprintf("expected %s, but model %q does not exist", term, term.Model)
		}
		actual, has := doc.Get(term.Path)
		if !has {
			return fmt.Sprintf("expected %s, but path is absent", term)
		}
		return fmt.Sprintf("expected %s, got %v", term, actual)
	}
	return "condition not satisfied"
}
