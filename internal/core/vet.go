package core

import (
	"repro/internal/repo"
	"repro/internal/vet"
)

// VetSetup implements "dbox vet NAME": run the analyzers over a
// committed setup (empty version = latest) against the local
// repository's kinds.
func (tb *Testbed) VetSetup(name, version string) ([]vet.Diagnostic, error) {
	if err := tb.requireRepos(false); err != nil {
		return nil, err
	}
	data, err := tb.localRepo.Get(repo.Setups, name, version)
	if err != nil {
		return nil, err
	}
	return vet.RunData(name, data, tb.localRepo.KindSource()), nil
}

// VetAll implements "dbox vet --all": analyze the latest version of
// every committed setup. The map is keyed by setup name; setups with
// no diagnostics map to a nil slice, so callers can render clean
// setups too.
func (tb *Testbed) VetAll() (map[string][]vet.Diagnostic, error) {
	if err := tb.requireRepos(false); err != nil {
		return nil, err
	}
	names, err := tb.localRepo.List(repo.Setups)
	if err != nil {
		return nil, err
	}
	out := map[string][]vet.Diagnostic{}
	for _, name := range names {
		diags, err := tb.VetSetup(name, "")
		if err != nil {
			return nil, err
		}
		out[name] = diags
	}
	return out, nil
}
