// Package core implements Digibox's primary contribution: the
// scene-centric prototyping testbed.
//
// A Testbed assembles the substrates — model store, digi runtime, MQTT
// broker, REST gateway, kube cluster, trace log, property checker, and
// scene repository — and exposes the dbox verb set of Table 1:
//
//	Run / Stop        run or stop a mock or scene (as a pod)
//	Check / Watch     inspect or stream a model
//	Attach / Detach   wire mocks into scenes, scenes into scenes
//	Edit              set intents (emulating user interaction)
//	CommitKind        version a mock/scene type in the repository
//	CommitScene       version a scene subtree as a shareable setup
//	Push / Pull       share setups via a remote repository
//	Recreate          instantiate a pulled setup
//	Replay            replay a recorded trace against live digis
//
// The package is deliberately thin over the substrates: scene-centric
// semantics live in the digi runtime and the kind libraries; this
// package provides composition, lifecycle, and the workflow verbs.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/clock"
	"repro/internal/digi"
	"repro/internal/kube"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/property"
	"repro/internal/repo"
	"repro/internal/rest"
	"repro/internal/swarm"
	"repro/internal/trace"
)

// NodeSpec declares one simulated machine for the testbed cluster.
type NodeSpec struct {
	Name     string
	Capacity int
	Zone     string
}

// ZoneDelay declares a simulated one-way delay between two zones.
type ZoneDelay struct {
	A, B  string
	Delay time.Duration
}

// Options configures a Testbed. The zero value gives a single-node
// "laptop" deployment with an in-process broker and gateway on
// ephemeral loopback ports.
type Options struct {
	// Nodes defaults to one node {"laptop", 4096, "local"}.
	Nodes []NodeSpec
	// ZoneDelays declares inter-zone network delays.
	ZoneDelays []ZoneDelay
	// GatewayZone is the zone the REST gateway (and the application
	// under test) is considered to run in; requests to mocks on nodes
	// in other zones incur the inter-zone delay. Defaults to the first
	// node's zone.
	GatewayZone string
	// BrokerAddr / RESTAddr default to "127.0.0.1:0". Empty string
	// selects the default; "none" disables the listener (in-process
	// use only).
	BrokerAddr string
	RESTAddr   string
	// LocalRepoDir / RemoteRepoDir, when set, open scene repositories
	// for commit/push/pull. Unset leaves repository verbs disabled.
	LocalRepoDir  string
	RemoteRepoDir string
	// ReadyTimeout bounds digi startup waits; default 10s.
	ReadyTimeout time.Duration
	// RuntimeMQTT routes digi status publishes through a real MQTT
	// client session (auto-reconnecting, QoS 1) instead of the
	// in-process fast path — required for chaos plans that disconnect
	// or partition the runtime, and for observing reconnect behaviour.
	RuntimeMQTT bool
	// DisableMetrics turns the observability layer off: no registry,
	// no spans, and Stats falls back to per-subsystem snapshots.
	DisableMetrics bool
	// Observer, when set, connects a wire MQTT client subscribed to
	// "#" (QoS 1) so every publish has at least one wire delivery.
	// This closes publish→deliver spans even when no application
	// client is attached, making end-to-end latency histograms live
	// from the first publish.
	Observer bool
	// TimeScale runs the whole testbed on a scaled scenario clock:
	// keepalive timers, chaos schedules, swarm pacing, kube backoff,
	// span and trace timestamps all advance at TimeScale× wall speed.
	// 0 and 1 mean real time (the wall clock, no pacing goroutine);
	// clock.SpeedMax fires timers back-to-back, freezing scenario
	// time while the heap is idle — suitable for bounded drills, not
	// long-lived daemons. Finite values must be positive.
	TimeScale float64
}

// Testbed is one Digibox prototyping environment.
type Testbed struct {
	opts Options

	Store    *model.Store
	Log      *trace.Log
	Registry *digi.Registry
	Runtime  *digi.Runtime
	Broker   *broker.Broker
	Cluster  *kube.Cluster
	Gateway  *rest.Gateway
	Checker  *property.Checker

	// Obs is the testbed-wide metrics registry (nil when
	// Options.DisableMetrics); every layer registers its families
	// here and GET /ctl/metrics exposes it. Tracer stamps
	// publish→deliver spans through the broker.
	Obs    *obs.Registry
	Tracer *obs.Tracer

	// Bus is the testbed-wide fan-out event bus (nil when
	// Options.DisableMetrics): the broker, chaos engine, swarm health
	// monitor, and kube cluster publish fault/shard/pod/client events
	// into it, and GET /ctl/events streams it out as SSE. Version is
	// the build stamp surfaced on /healthz and /ctl/status.
	Bus     *obs.Bus
	Version string

	// startedAt is stamped by Start for uptime reporting.
	startedAt time.Time

	localRepo  *repo.Repo
	remoteRepo *repo.Repo

	// runtimeClient is the digi runtime's MQTT session (RuntimeMQTT);
	// observer is the wildcard subscriber session (Options.Observer).
	runtimeClient *broker.Client
	observer      *broker.Client

	mu      sync.Mutex
	started bool
	stopped bool
	// swarmMu serializes RunSwarm sessions: one load run owns the
	// swarm-worker image and pod names at a time.
	swarmMu sync.Mutex
	// activeSwarm is the pool of the RunSwarm session in flight, when
	// one is: chaos shard faults and the /readyz shard-health probe
	// address it. Guarded by mu (not swarmMu — readers must not block
	// on a running session).
	activeSwarm *swarm.Pool
	// podNode caches digi -> node placements for delay lookups.
	podNode sync.Map // name -> node name

	// clk drives the testbed's own poll loops (WaitConverged, test-case
	// deadlines, swarm waits) and is injected into every runtime
	// component, so one clock carries the whole testbed. It is
	// clock.System in real time and scaled under Options.TimeScale.
	clk clock.Clock
	// scaled is non-nil under Options.TimeScale; Start launches its
	// Drive loop and Stop ends it.
	scaled *clock.Scaled

	// scenMu guards the most recent RunScenario execution, surfaced
	// as the /ctl/status timewarp section.
	scenMu   sync.Mutex
	scenario *scenarioRun
}

// New assembles a testbed; call Start to bring it up.
func New(opts Options) (*Testbed, error) {
	if len(opts.Nodes) == 0 {
		opts.Nodes = []NodeSpec{{Name: "laptop", Capacity: 4096, Zone: "local"}}
	}
	if opts.GatewayZone == "" {
		opts.GatewayZone = opts.Nodes[0].Zone
	}
	if opts.BrokerAddr == "" {
		opts.BrokerAddr = "127.0.0.1:0"
	}
	if opts.RESTAddr == "" {
		opts.RESTAddr = "127.0.0.1:0"
	}
	if opts.ReadyTimeout <= 0 {
		opts.ReadyTimeout = 10 * time.Second
	}

	var clk clock.Clock = clock.System
	var scaled *clock.Scaled
	switch ts := opts.TimeScale; {
	case ts == 0 || ts == 1:
		// Real time: no pacing goroutine, System everywhere.
	case math.IsNaN(ts) || ts < 0:
		return nil, fmt.Errorf("core: invalid TimeScale %v", ts)
	default:
		scaled = clock.NewScaled(ts, nil)
		clk = scaled
	}

	tb := &Testbed{
		opts:     opts,
		Store:    model.NewStore(),
		Registry: digi.NewRegistry(),
		clk:      clk,
		scaled:   scaled,
	}
	// The trace log stamps scenario time, so records from a
	// compressed run carry the same timestamps a real-time run would.
	tb.Log = trace.NewLogAt(tb.clk.Now)
	if !opts.DisableMetrics {
		tb.Obs = obs.NewRegistry()
		tb.Tracer = obs.NewTracer(tb.Obs)
		// Spans and bus events stamp scenario time (wall time rides
		// along as the bus's secondary wall_ms field).
		tb.Tracer.SetClock(tb.clk)
		tb.Version = obs.RegisterBuildInfo(tb.Obs)
		tb.Bus = obs.NewBus(tb.Obs, tb.clk)
		// Correlate completed spans into the trace log so shared and
		// replayed traces carry delivery-timing evidence (§3.5).
		log := tb.Log
		tb.Tracer.OnSpan(func(from, topic string, elapsed time.Duration) {
			log.Span(from, topic, elapsed)
		})
	}
	tb.Runtime = &digi.Runtime{
		Store:    tb.Store,
		Log:      tb.Log,
		Registry: tb.Registry,
		Clock:    tb.clk,
	}
	tb.Runtime.BindObs(tb.Obs)
	tb.Cluster = kube.NewCluster()
	tb.Cluster.SetClock(tb.clk)
	if tb.Obs != nil {
		tb.Cluster.BindMetrics(tb.Obs)
	}
	tb.Cluster.RegisterImage("digi", tb.Runtime.ImageFactory())
	for _, n := range opts.Nodes {
		if err := tb.Cluster.AddNode(n.Name, n.Capacity, n.Zone); err != nil {
			return nil, err
		}
	}
	for _, zd := range opts.ZoneDelays {
		tb.Cluster.SetZoneDelay(zd.A, zd.B, zd.Delay)
	}
	tb.Checker = property.NewChecker(tb.Store, tb.Log)
	if tb.Obs != nil {
		tb.Obs.GaugeFunc("digibox_models", "models in the store", func() float64 {
			return float64(len(tb.Store.List()))
		})
		tb.Obs.GaugeFunc("digibox_trace_records", "records in the trace log", func() float64 {
			return float64(tb.Log.Len())
		})
		tb.Obs.GaugeFunc("digibox_violations", "property violations recorded", func() float64 {
			return float64(len(tb.Checker.Violations()))
		})
	}

	if opts.LocalRepoDir != "" {
		r, err := repo.Open(opts.LocalRepoDir)
		if err != nil {
			return nil, err
		}
		tb.localRepo = r
	}
	if opts.RemoteRepoDir != "" {
		r, err := repo.Open(opts.RemoteRepoDir)
		if err != nil {
			return nil, err
		}
		tb.remoteRepo = r
	}
	return tb, nil
}

// Start brings up the broker, cluster, gateway, and checker.
func (tb *Testbed) Start() error {
	tb.mu.Lock()
	if tb.started {
		tb.mu.Unlock()
		return nil
	}
	tb.started = true
	tb.startedAt = tb.clk.Now()
	tb.mu.Unlock()

	if tb.opts.BrokerAddr != "none" {
		tb.Broker = broker.NewBroker(&broker.Options{
			Obs:    tb.Obs,
			Tracer: tb.Tracer,
			Bus:    tb.Bus,
			Clock:  tb.clk,
		})
		if err := tb.Broker.ListenAndServe(tb.opts.BrokerAddr); err != nil {
			return fmt.Errorf("core: broker: %w", err)
		}
		tb.Runtime.Broker = tb.Broker
		if tb.opts.RuntimeMQTT {
			c, err := broker.Dial(tb.Broker.Addr(), &broker.ClientOptions{
				ClientID:      "digi-runtime",
				AutoReconnect: true,
				Clock:         tb.clk,
			})
			if err != nil {
				return fmt.Errorf("core: runtime mqtt: %w", err)
			}
			tb.runtimeClient = c
			tb.Runtime.BindClient(c)
		}
		if tb.opts.Observer {
			if err := tb.startObserver(); err != nil {
				return fmt.Errorf("core: observer: %w", err)
			}
		}
	}
	tb.Cluster.Start()
	tb.Cluster.BindBus(tb.Bus)
	if tb.opts.RESTAddr != "none" {
		tb.Gateway = &rest.Gateway{
			Store: tb.Store,
			Log:   tb.Log,
			Delay: tb.gatewayDelay,
		}
		if err := tb.Gateway.ListenAndServe(tb.opts.RESTAddr); err != nil {
			return fmt.Errorf("core: gateway: %w", err)
		}
	}
	tb.Checker.Start()
	// Under TimeScale the scaled clock gets its driver only once every
	// component is connected: timers armed during Start just pend.
	// Launching it earlier would let an unpaced clock (SpeedMax) churn
	// through hours of virtual time during the wall milliseconds the
	// broker dials and handshakes take.
	if tb.scaled != nil {
		go tb.scaled.Drive()
	}
	return nil
}

// startObserver dials the wildcard observer session. Its deliveries
// close publish→deliver spans; the received counter doubles as a
// delivery liveness signal.
func (tb *Testbed) startObserver() error {
	c, err := broker.Dial(tb.Broker.Addr(), &broker.ClientOptions{
		ClientID:      "dbox-observer",
		AutoReconnect: true,
		Clock:         tb.clk,
	})
	if err != nil {
		return err
	}
	received := tb.Obs.Counter("digibox_observer_received_total",
		"messages delivered to the wildcard observer session")
	if err := c.Subscribe("#", 1, func(broker.Message) {
		received.Inc()
	}); err != nil {
		c.Close()
		return err
	}
	tb.observer = c
	return nil
}

// gatewayDelay computes the simulated one-way delay from the gateway's
// zone to the node hosting the named digi's pod.
func (tb *Testbed) gatewayDelay(name string) time.Duration {
	nodeName, ok := tb.podNode.Load(name)
	if !ok {
		pod, err := tb.Cluster.GetPod(podName(name))
		if err != nil || pod.Status.NodeName == "" {
			return 0
		}
		nodeName = pod.Status.NodeName
		tb.podNode.Store(name, nodeName)
	}
	return tb.Cluster.ZoneDelay(tb.opts.GatewayZone, tb.Cluster.NodeZone(nodeName.(string)))
}

// Stop tears the testbed down. Safe to call more than once.
func (tb *Testbed) Stop() {
	tb.mu.Lock()
	if !tb.started || tb.stopped {
		tb.mu.Unlock()
		return
	}
	tb.stopped = true
	tb.mu.Unlock()

	tb.Checker.Stop()
	if tb.Gateway != nil {
		tb.Gateway.Close()
	}
	tb.Cluster.Stop()
	if tb.observer != nil {
		tb.observer.Close()
	}
	if tb.runtimeClient != nil {
		tb.runtimeClient.Close()
	}
	if tb.Broker != nil {
		tb.Broker.Close()
	}
	tb.Bus.Close()
	if tb.scaled != nil {
		tb.scaled.Stop()
	}
}

// TimeScale returns the configured execution speed factor (1 for real
// time).
func (tb *Testbed) TimeScale() float64 {
	if tb.scaled == nil {
		return 1
	}
	return tb.scaled.Factor()
}

// Clock returns the testbed's time source: clock.System in real time,
// the scaled scenario clock under Options.TimeScale.
func (tb *Testbed) Clock() clock.Clock { return tb.clk }

// StartedAt returns when Start was called (zero before Start).
func (tb *Testbed) StartedAt() time.Time {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.startedAt
}

// Uptime is the elapsed time since Start (zero before Start).
func (tb *Testbed) Uptime() time.Duration {
	tb.mu.Lock()
	at := tb.startedAt
	tb.mu.Unlock()
	if at.IsZero() {
		return 0
	}
	return tb.clk.Since(at)
}

// BrokerAddr returns the MQTT listener address ("" if disabled).
func (tb *Testbed) BrokerAddr() string {
	if tb.Broker == nil {
		return ""
	}
	return tb.Broker.Addr()
}

// RESTAddr returns the REST gateway address ("" if disabled).
func (tb *Testbed) RESTAddr() string {
	if tb.Gateway == nil {
		return ""
	}
	return tb.Gateway.Addr()
}

// RESTClient returns a client bound to the gateway.
func (tb *Testbed) RESTClient() *rest.Client {
	return &rest.Client{Base: "http://" + tb.RESTAddr()}
}

// RegisterKind installs a mock/scene kind (a "type" in Table 1 terms).
func (tb *Testbed) RegisterKind(k *digi.Kind) error {
	return tb.Registry.Register(k)
}

// podName is the kube pod name of a digi instance.
func podName(digiName string) string {
	return "digi-" + strings.ToLower(digiName)
}

// Stats summarises testbed state for "dbox check" without arguments.
type Stats struct {
	Models      int
	PodsRunning int
	PodsPending int
	Violations  int
	TraceLen    int
	Broker      broker.Stats
}

// Stats returns a state snapshot. With metrics enabled the snapshot
// is computed from a single registry sweep — every family is read in
// one locked pass, so broker and cluster counts are mutually
// consistent even mid-chaos. Without metrics it falls back to
// per-subsystem snapshots taken at slightly different instants.
func (tb *Testbed) Stats() Stats {
	if tb.Obs == nil {
		cs := tb.Cluster.Stats()
		st := Stats{
			Models:      len(tb.Store.List()),
			PodsRunning: cs.PodsRunning,
			PodsPending: cs.PodsPending,
			Violations:  len(tb.Checker.Violations()),
			TraceLen:    tb.Log.Len(),
		}
		if tb.Broker != nil {
			st.Broker = tb.Broker.Stats()
		}
		return st
	}
	v := tb.Obs.Values()
	return Stats{
		Models:      int(v["digibox_models"]),
		PodsRunning: int(v["digibox_kube_pods_running"]),
		PodsPending: int(v["digibox_kube_pods_pending"]),
		Violations:  int(v["digibox_violations"]),
		TraceLen:    int(v["digibox_trace_records"]),
		Broker: broker.Stats{
			Connections:   int(v["digibox_broker_connections"]),
			Subscriptions: int(v["digibox_broker_subscriptions"]),
			Retained:      int(v["digibox_broker_retained"]),
			PublishesIn:   int64(v["digibox_broker_publishes_total"]),
			MessagesOut:   int64(v["digibox_broker_deliveries_total"]),
			Dropped:       int64(v["digibox_broker_dropped_total"]),
			FaultDrops:    int64(v["digibox_broker_fault_drops_total"]),
		},
	}
}

// Names returns all model names, sorted.
func (tb *Testbed) Names() []string {
	names := tb.Store.List()
	sort.Strings(names)
	return names
}
