package core

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// twoTestbeds builds a developer testbed and a reproducer testbed
// sharing one remote repository (the Fig. 1 rightmost-column flow).
func twoTestbeds(t *testing.T) (dev, other *Testbed) {
	t.Helper()
	remote := t.TempDir()
	dev = newTestbed(t, Options{
		LocalRepoDir:  filepath.Join(t.TempDir(), "dev-repo"),
		RemoteRepoDir: remote,
	})
	other = newTestbed(t, Options{
		LocalRepoDir:  filepath.Join(t.TempDir(), "other-repo"),
		RemoteRepoDir: remote,
	})
	return dev, other
}

func buildMeetingRoom(t *testing.T, tb *Testbed) {
	t.Helper()
	for _, r := range [][2]string{
		{"Occupancy", "O1"}, {"Lamp", "L1"}, {"Room", "MeetingRoom"},
	} {
		cfg := map[string]any{}
		if r[0] == "Room" {
			cfg["managed"] = false
		}
		if err := tb.Run(r[0], r[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Attach("O1", "MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Attach("L1", "MeetingRoom"); err != nil {
		t.Fatal(err)
	}
}

func TestCommitPushPullRecreate(t *testing.T) {
	dev, other := twoTestbeds(t)
	buildMeetingRoom(t, dev)

	ver, err := dev.CommitScene("MeetingRoom")
	if err != nil {
		t.Fatal(err)
	}
	if ver != "v1" {
		t.Errorf("version = %q", ver)
	}
	if err := dev.Push("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if err := other.Pull("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if err := other.Recreate("MeetingRoom", ""); err != nil {
		t.Fatal(err)
	}

	// The recreated testbed has the same hierarchy, live.
	names := other.Names()
	if len(names) != 3 {
		t.Fatalf("recreated models = %v", names)
	}
	room, err := other.Check("MeetingRoom")
	if err != nil {
		t.Fatal(err)
	}
	att := room.Attach()
	if len(att) != 2 {
		t.Errorf("attach = %v", att)
	}
	// Ensemble behaviour works on the recreated side.
	if err := other.Edit("MeetingRoom", map[string]any{"human_presence": true}); err != nil {
		t.Fatal(err)
	}
	if err := other.WaitConverged(10*time.Second, func() bool {
		o1, _ := other.Check("O1")
		return o1 != nil && o1.GetBool("triggered")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitSceneIsIdempotent(t *testing.T) {
	dev, _ := twoTestbeds(t)
	buildMeetingRoom(t, dev)
	v1, err := dev.CommitScene("MeetingRoom")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := dev.CommitScene("MeetingRoom")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("unchanged setup re-versioned: %s -> %s", v1, v2)
	}
	// A change (customising the scene) produces a new version.
	if err := dev.Run("Underdesk", "D1", nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.Attach("D1", "MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	v3, err := dev.CommitScene("MeetingRoom")
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v2 {
		t.Error("customised setup did not version")
	}
}

func TestCommitKindVersioning(t *testing.T) {
	dev, _ := twoTestbeds(t)
	v, err := dev.CommitKind("Lamp")
	if err != nil {
		t.Fatal(err)
	}
	if v != "v1" {
		t.Errorf("version = %q", v)
	}
	again, _ := dev.CommitKind("Lamp")
	if again != "v1" {
		t.Errorf("unchanged kind re-versioned: %q", again)
	}
	if _, err := dev.CommitKind("NoSuchType"); err == nil {
		t.Error("unknown type committed")
	}
}

func TestRepoVerbsRequireRepos(t *testing.T) {
	tb := newTestbed(t, Options{})
	if _, err := tb.CommitKind("Lamp"); err == nil {
		t.Error("commit without repo succeeded")
	}
	if err := tb.Push("x"); err == nil {
		t.Error("push without repo succeeded")
	}
	if err := tb.Pull("x"); err == nil {
		t.Error("pull without repo succeeded")
	}
	if err := tb.Recreate("x", ""); err == nil {
		t.Error("recreate without repo succeeded")
	}
}

func TestTraceRecordReplayAcrossTestbeds(t *testing.T) {
	dev, other := twoTestbeds(t)
	buildMeetingRoom(t, dev)

	// Drive the developer-side scene through a presence cycle.
	dev.Edit("MeetingRoom", map[string]any{"human_presence": true})
	if err := dev.WaitConverged(10*time.Second, func() bool {
		o1, _ := dev.Check("O1")
		return o1 != nil && o1.GetBool("triggered")
	}); err != nil {
		t.Fatal(err)
	}
	dev.Edit("MeetingRoom", map[string]any{"human_presence": false})
	if err := dev.WaitConverged(10*time.Second, func() bool {
		o1, _ := dev.Check("O1")
		return o1 != nil && !o1.GetBool("triggered")
	}); err != nil {
		t.Fatal(err)
	}

	// Share setup + trace.
	if _, err := dev.CommitScene("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Push("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.PushTrace("meetingroom-trace"); err != nil {
		t.Fatal(err)
	}

	// Reproducer: pull setup, recreate, pull trace, replay.
	if err := other.Pull("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if err := other.Recreate("MeetingRoom", ""); err != nil {
		t.Fatal(err)
	}
	recs, err := other.PullTrace("meetingroom-trace", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	if err := other.Replay(recs, 0); err != nil {
		t.Fatal(err)
	}
	// Replay pauses event generation on every traced digi.
	for _, n := range []string{"MeetingRoom", "O1", "L1"} {
		if d, err := other.Check(n); err == nil && d.Managed() {
			t.Errorf("%s still managed after replay", n)
		}
	}
	// The replayed final state matches the recorded final state: the
	// presence cycle ended with an un-triggered sensor.
	if err := other.WaitConverged(10*time.Second, func() bool {
		o1, _ := other.Check("O1")
		return o1 != nil && !o1.GetBool("triggered")
	}); err != nil {
		t.Fatal(err)
	}
	// And the replayed run observed the triggered=true state at some
	// point (the trace's middle), visible in the reproducer's own log
	// (the reconcilers log asynchronously, so poll).
	if err := other.WaitConverged(10*time.Second, func() bool {
		for _, r := range other.Log.Records() {
			if r.Kind == trace.KindAction && r.Name == "O1" {
				if v, ok := r.Sets["triggered"]; ok && v == true {
					return true
				}
			}
		}
		return false
	}); err != nil {
		t.Error("replay never passed through the recorded triggered state")
	}
}

func TestSaveTraceArchive(t *testing.T) {
	tb := newTestbed(t, Options{})
	tb.Run("Occupancy", "O1", map[string]any{"interval_ms": int64(20)})
	tb.WaitConverged(5*time.Second, func() bool { return tb.Log.Len() > 3 })
	path := filepath.Join(t.TempDir(), "trace.zip")
	if err := tb.SaveTrace(path); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("archive empty")
	}
}

func TestRecreateRejectsIncompatibleSchema(t *testing.T) {
	dev, other := twoTestbeds(t)
	buildMeetingRoom(t, dev)
	if _, err := dev.CommitScene("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Push("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	if err := other.Pull("MeetingRoom"); err != nil {
		t.Fatal(err)
	}
	// The reproducer's Lamp kind diverges (field added): recreate must
	// refuse rather than run with an incompatible image.
	lampKind, _ := other.Registry.Get("Lamp")
	mutated := *lampKind
	mutatedSchema := *lampKind.Schema
	fields := map[string]model.FieldSpec{}
	for k, v := range lampKind.Schema.Fields {
		fields[k] = v
	}
	fields["extra"] = model.FieldSpec{Kind: model.KindBool, Default: false}
	mutatedSchema.Fields = fields
	mutated.Schema = &mutatedSchema
	other.Registry.Register(&mutated)
	err := other.Recreate("MeetingRoom", "")
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("err = %v, want incompatible-image error", err)
	}
}
