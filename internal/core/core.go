package core
